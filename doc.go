// Package repro is a full reproduction of "Adaptive Approaches to
// Relieving Broadcast Storms in a Wireless Multihop Mobile Ad Hoc
// Network" (Tseng, Ni, Shih; ICDCS 2001 / IEEE ToC May 2003).
//
// The library lives under internal/: a deterministic discrete-event
// simulator (sim), unit-disk radio channel (phy), IEEE 802.11-like DCF
// (mac), random-turn mobility (mobility), HELLO neighbor discovery
// (neighbor), the paper's rebroadcast schemes (scheme), the assembled
// network (manet), and the per-figure reproduction harness (experiment).
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure of the paper's evaluation.
package repro
