package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Regression for the NaN-poisoning hazard: a zero-reach record (r = 0,
// possible when a source is torn down before holding its own packet, or
// through misuse) must yield finite per-record ratios, and its presence
// in a run must leave every aggregate finite.
func TestSRBZeroReachFiniteAggregates(t *testing.T) {
	z := rec(0, 0, 0)
	if got := z.SRB(); got != 0 {
		t.Fatalf("zero-reach SRB = %v, want 0", got)
	}
	if got := z.RE(); got != 0 {
		t.Fatalf("zero-reach RE = %v, want 0", got)
	}
	// Misreported t > r clamps instead of going negative.
	if got := rec(10, 4, 7).SRB(); got != 0 {
		t.Fatalf("t>r SRB = %v, want 0 (clamped)", got)
	}
	s := Summarize([]*BroadcastRecord{rec(10, 10, 4), z, rec(8, 6, 2)})
	for name, v := range map[string]float64{
		"MeanRE": s.MeanRE, "MeanSRB": s.MeanSRB,
		"StdRE": s.StdRE, "StdSRB": s.StdSRB,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v with a zero-reach record present", name, v)
		}
	}
	// The streaming path must agree.
	var st Stream
	for _, r := range []*BroadcastRecord{rec(10, 10, 4), z, rec(8, 6, 2)} {
		st.Fold(r)
	}
	if got := st.Summary(); got != s {
		t.Fatalf("stream summary %+v != summarize %+v", got, s)
	}
}

// randomRecords draws a population of plausible (and some degenerate)
// completed records.
func randomRecords(rng *rand.Rand, n int) []*BroadcastRecord {
	recs := make([]*BroadcastRecord, n)
	for i := range recs {
		e := rng.Intn(50)
		r := 0
		if e > 0 {
			r = 1 + rng.Intn(e)
		}
		tx := 0
		if r > 0 {
			tx = rng.Intn(r + 1)
		}
		br := NewBroadcastRecord(packet.BroadcastID{Source: packet.NodeID(i), Seq: uint32(i + 1)},
			sim.Time(rng.Int63n(1e9)), e)
		br.Received = r
		br.Transmitted = tx
		br.NoteActivity(br.Start.Add(sim.Duration(rng.Int63n(1e8))))
		recs[i] = br
	}
	return recs
}

// The streaming fold must reproduce Summarize bit for bit when records
// are folded in the same order Summarize iterates them — this is the
// exactness contract the dense network path's eager folding rests on.
func TestStreamMatchesSummarizeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		recs := randomRecords(rng, rng.Intn(200))
		var st Stream
		for _, r := range recs {
			st.Fold(r)
		}
		if st.Len() != len(recs) {
			t.Fatalf("Len = %d, want %d", st.Len(), len(recs))
		}
		want := Summarize(recs)
		if got := st.Summary(); got != want {
			t.Fatalf("trial %d: stream %+v != summarize %+v", trial, got, want)
		}
	}
}

// Folding in two stages (some eagerly, the rest later) must not change
// the result: the network folds records as their broadcasts complete and
// the stragglers at summarize time.
func TestStreamIncrementalFold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	recs := randomRecords(rng, 120)
	var st Stream
	for _, r := range recs[:70] {
		st.Fold(r)
	}
	mid := st.Summary() // reading mid-stream must not disturb the fold
	if mid.Broadcasts != 70 {
		t.Fatalf("mid-stream Broadcasts = %d, want 70", mid.Broadcasts)
	}
	for _, r := range recs[70:] {
		st.Fold(r)
	}
	if got, want := st.Summary(), Summarize(recs); got != want {
		t.Fatalf("two-stage fold %+v != summarize %+v", got, want)
	}
}

func TestRunningWelford(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		xs := make([]float64, n)
		var r Running
		sum := 0.0
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 1
			r.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var varSum float64
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		std := math.Sqrt(varSum / float64(n))
		if r.Count() != n {
			t.Fatalf("Count = %d, want %d", r.Count(), n)
		}
		if math.Abs(r.Mean()-mean) > 1e-9 {
			t.Fatalf("Mean = %v, want %v", r.Mean(), mean)
		}
		if math.Abs(r.Std()-std) > 1e-9 {
			t.Fatalf("Std = %v, want %v", r.Std(), std)
		}
		// Merging arbitrary splits must agree with the single aggregate.
		cut := rng.Intn(n + 1)
		var a, b Running
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.Count() != n || math.Abs(a.Mean()-mean) > 1e-9 || math.Abs(a.Std()-std) > 1e-9 {
			t.Fatalf("merged (cut %d): n=%d mean=%v std=%v, want n=%d mean=%v std=%v",
				cut, a.Count(), a.Mean(), a.Std(), n, mean, std)
		}
	}
	var empty, other Running
	other.Add(2)
	empty.Merge(other)
	if empty.Count() != 1 || empty.Mean() != 2 {
		t.Fatalf("merge into empty: %+v", empty)
	}
	var z Running
	if z.Mean() != 0 || z.Std() != 0 || z.Count() != 0 {
		t.Fatalf("zero Running not zero: %+v", z)
	}
}

// The Stream's running views track the folded samples.
func TestStreamRunningViews(t *testing.T) {
	var st Stream
	for _, r := range []*BroadcastRecord{rec(10, 10, 10), rec(10, 5, 1)} {
		st.Fold(r)
	}
	if got := st.RunningRE().Count(); got != 2 {
		t.Fatalf("RunningRE count = %d, want 2", got)
	}
	wantMean := (1.0 + 0.5) / 2
	if got := st.RunningRE().Mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("RunningRE mean = %v, want %v", got, wantMean)
	}
	if got := st.RunningSRB().Count(); got != 2 {
		t.Fatalf("RunningSRB count = %d, want 2", got)
	}
}
