// Package metrics defines the paper's performance measures and their
// per-broadcast bookkeeping:
//
//   - RE (reachability): r/e, where r is the number of hosts that
//     received the broadcast packet and e the number of hosts reachable
//     (graph-connected) from the source when the broadcast started.
//   - SRB (saved rebroadcasts): (r-t)/r, where t is the number of hosts
//     that actually transmitted the packet.
//   - Latency: from broadcast initiation to the last host finishing its
//     rebroadcast or deciding not to rebroadcast.
//
// The source host counts in r, e, and t (it trivially has the packet and
// always transmits it), which makes flooding's SRB exactly 0 and keeps
// RE = 1 for an isolated source.
package metrics

import (
	"math"
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// BroadcastRecord accumulates one broadcast operation's outcome.
type BroadcastRecord struct {
	ID    packet.BroadcastID
	Start sim.Time

	// Reachable is e: hosts connected to the source at initiation time,
	// including the source itself.
	Reachable int
	// Received is r: hosts holding an intact copy, including the source.
	Received int
	// Transmitted is t: hosts that put the packet on the air, including
	// the source.
	Transmitted int

	// lastActivity is the time of the latest rebroadcast completion or
	// inhibit decision attributed to this broadcast.
	lastActivity sim.Time
}

// NewBroadcastRecord starts bookkeeping for one broadcast of id initiated
// at start with e reachable hosts.
func NewBroadcastRecord(id packet.BroadcastID, start sim.Time, reachable int) *BroadcastRecord {
	return &BroadcastRecord{ID: id, Start: start, Reachable: reachable, lastActivity: start}
}

// MakeBroadcastRecord is NewBroadcastRecord by value, for callers that
// store records in an arena rather than behind per-record pointers.
func MakeBroadcastRecord(id packet.BroadcastID, start sim.Time, reachable int) BroadcastRecord {
	return BroadcastRecord{ID: id, Start: start, Reachable: reachable, lastActivity: start}
}

// NoteActivity extends the broadcast's completion time.
func (r *BroadcastRecord) NoteActivity(at sim.Time) {
	if at > r.lastActivity {
		r.lastActivity = at
	}
}

// RE returns the reachability ratio r/e, clamped to [0, 1]: host
// mobility can carry the packet to hosts that were outside the source's
// component when the broadcast started, making raw r/e exceed one.
func (r *BroadcastRecord) RE() float64 {
	if r.Reachable == 0 {
		return 0
	}
	re := float64(r.Received) / float64(r.Reachable)
	if re > 1 {
		re = 1
	}
	return re
}

// SRB returns the saved-rebroadcast ratio (r-t)/r, clamped to [0, 1]
// like RE: a zero-reach record (r = 0) yields 0 rather than NaN, and a
// record misreporting t > r yields 0 rather than a negative ratio, so a
// single degenerate broadcast can never poison MeanSRB/StdSRB across a
// whole run.
func (r *BroadcastRecord) SRB() float64 {
	if r.Received == 0 {
		return 0
	}
	srb := float64(r.Received-r.Transmitted) / float64(r.Received)
	if srb < 0 {
		return 0
	}
	return srb
}

// Latency returns the broadcast completion latency.
func (r *BroadcastRecord) Latency() sim.Duration {
	return r.lastActivity.Sub(r.Start)
}

// Summary aggregates a whole simulation run.
type Summary struct {
	Broadcasts int

	MeanRE      float64
	MeanSRB     float64
	MeanLatency sim.Duration
	StdRE       float64
	StdSRB      float64

	// LatencyP50 and LatencyP95 are per-broadcast latency percentiles.
	// Under Merge they are combined as broadcast-weighted averages of
	// the replica percentiles — an approximation that is accurate when
	// replicas are identically distributed, which they are here.
	LatencyP50 sim.Duration
	LatencyP95 sim.Duration

	// HelloSent counts HELLO transmissions during the run (fig. 12b).
	HelloSent int
	// RepairsRequested/RepairsDelivered count the reliable-broadcast
	// extension's NACKs and successful retransmissions.
	RepairsRequested int
	RepairsDelivered int
	// Channel-level counters.
	Transmissions int
	Deliveries    int
	Collisions    int
	// SimulatedTime is the virtual length of the run.
	SimulatedTime sim.Duration
	// Events is the number of simulator events executed.
	Events uint64
}

// Summarize computes run-level aggregates over per-broadcast records.
// Broadcasts whose source was isolated (Reachable <= 1) still count: the
// paper's definition gives them RE = 1 trivially, which matches r = e = 1.
func Summarize(records []*BroadcastRecord) Summary {
	s := Summary{Broadcasts: len(records)}
	if len(records) == 0 {
		return s
	}
	var sumRE, sumSRB float64
	var sumLat sim.Duration
	for _, r := range records {
		sumRE += r.RE()
		sumSRB += r.SRB()
		sumLat += r.Latency()
	}
	n := float64(len(records))
	s.MeanRE = sumRE / n
	s.MeanSRB = sumSRB / n
	s.MeanLatency = sim.Duration(float64(sumLat) / n)

	var varRE, varSRB float64
	for _, r := range records {
		dre := r.RE() - s.MeanRE
		dsrb := r.SRB() - s.MeanSRB
		varRE += dre * dre
		varSRB += dsrb * dsrb
	}
	s.StdRE = math.Sqrt(varRE / n)
	s.StdSRB = math.Sqrt(varSRB / n)

	lats := make([]sim.Duration, len(records))
	for i, r := range records {
		lats[i] = r.Latency()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.LatencyP50 = percentile(lats, 0.50)
	s.LatencyP95 = percentile(lats, 0.95)
	return s
}

// percentile returns the p-quantile of a sorted latency slice using the
// nearest-rank method.
func percentile(sorted []sim.Duration, p float64) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Merge combines summaries from independent replicas, weighting each by
// its broadcast count. Standard deviations are combined as the pooled
// within-replica deviation (adequate for reporting; the harness averages
// over replicas primarily for the means).
func Merge(summaries []Summary) Summary {
	var out Summary
	if len(summaries) == 0 {
		return out
	}
	var wRE, wSRB, wStdRE, wStdSRB float64
	var wLat, wP50, wP95 float64
	total := 0
	for _, s := range summaries {
		w := float64(s.Broadcasts)
		total += s.Broadcasts
		wRE += s.MeanRE * w
		wSRB += s.MeanSRB * w
		wLat += float64(s.MeanLatency) * w
		wP50 += float64(s.LatencyP50) * w
		wP95 += float64(s.LatencyP95) * w
		wStdRE += s.StdRE * s.StdRE * w
		wStdSRB += s.StdSRB * s.StdSRB * w
		out.HelloSent += s.HelloSent
		out.RepairsRequested += s.RepairsRequested
		out.RepairsDelivered += s.RepairsDelivered
		out.Transmissions += s.Transmissions
		out.Deliveries += s.Deliveries
		out.Collisions += s.Collisions
		out.SimulatedTime += s.SimulatedTime
		out.Events += s.Events
	}
	out.Broadcasts = total
	if total > 0 {
		n := float64(total)
		out.MeanRE = wRE / n
		out.MeanSRB = wSRB / n
		out.MeanLatency = sim.Duration(wLat / n)
		out.LatencyP50 = sim.Duration(wP50 / n)
		out.LatencyP95 = sim.Duration(wP95 / n)
		out.StdRE = math.Sqrt(wStdRE / n)
		out.StdSRB = math.Sqrt(wStdSRB / n)
	}
	return out
}
