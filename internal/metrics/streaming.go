package metrics

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Running is a mergeable running aggregate (Welford's algorithm): mean
// and variance in O(1) state, combinable across shards with the
// parallel-variance update of Chan et al. It is the pure-streaming
// counterpart to Stream below — use it where per-sample history must
// not be retained at all (live gauges, future spatially-sharded runs
// that merge per-shard aggregates instead of shipping records).
type Running struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one sample into the aggregate.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge folds another aggregate into this one.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.mean += d * float64(o.n) / float64(n)
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.n = n
}

// Count returns the number of samples folded in.
func (r Running) Count() int { return r.n }

// Mean returns the running mean (0 before any sample).
func (r Running) Mean() float64 { return r.mean }

// Std returns the population standard deviation (0 before any sample).
func (r Running) Std() float64 {
	if r.n == 0 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Stream folds completed BroadcastRecords into run aggregates so the
// records themselves can be released: per broadcast it retains only the
// (RE, SRB, latency) triple — 24 bytes — instead of the full record
// behind a map entry and a pointer. Records MUST be folded in arrival
// order and only once final: Summary then reproduces metrics.Summarize
// over the same records byte for byte (same summation order, same
// two-pass variance, same nearest-rank percentiles), which is what lets
// the dense network path fold eagerly and still match the map-based
// oracle exactly.
//
// The triples are what exactness costs: StdRE/StdSRB need a second pass
// and the latency percentiles need a sort, so the history cannot be
// collapsed further without changing results. Callers that can accept
// running aggregates instead use the embedded Running views (RunningRE,
// RunningSRB), which are maintained alongside and need no history.
type Stream struct {
	res  []float64
	srbs []float64
	lats []sim.Duration

	re, srb Running
}

// Fold absorbs one completed record. The record is not retained; the
// caller may release or reuse it immediately.
func (s *Stream) Fold(r *BroadcastRecord) {
	re, srb := r.RE(), r.SRB()
	s.res = append(s.res, re)
	s.srbs = append(s.srbs, srb)
	s.lats = append(s.lats, r.Latency())
	s.re.Add(re)
	s.srb.Add(srb)
}

// Len returns the number of records folded so far.
func (s *Stream) Len() int { return len(s.res) }

// RunningRE returns the live Welford aggregate over folded RE samples.
func (s *Stream) RunningRE() Running { return s.re }

// RunningSRB returns the live Welford aggregate over folded SRB samples.
func (s *Stream) RunningSRB() Running { return s.srb }

// Summary computes the run aggregates over everything folded so far,
// with arithmetic identical to Summarize over the same records in fold
// order. The channel-level counters (HelloSent, Transmissions, ...) are
// outside the per-broadcast stream; the caller fills them in.
func (s *Stream) Summary() Summary {
	out := Summary{Broadcasts: len(s.res)}
	if len(s.res) == 0 {
		return out
	}
	var sumRE, sumSRB float64
	var sumLat sim.Duration
	for i := range s.res {
		sumRE += s.res[i]
		sumSRB += s.srbs[i]
		sumLat += s.lats[i]
	}
	n := float64(len(s.res))
	out.MeanRE = sumRE / n
	out.MeanSRB = sumSRB / n
	out.MeanLatency = sim.Duration(float64(sumLat) / n)

	var varRE, varSRB float64
	for i := range s.res {
		dre := s.res[i] - out.MeanRE
		dsrb := s.srbs[i] - out.MeanSRB
		varRE += dre * dre
		varSRB += dsrb * dsrb
	}
	out.StdRE = math.Sqrt(varRE / n)
	out.StdSRB = math.Sqrt(varSRB / n)

	lats := make([]sim.Duration, len(s.lats))
	copy(lats, s.lats)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out.LatencyP50 = percentile(lats, 0.50)
	out.LatencyP95 = percentile(lats, 0.95)
	return out
}
