package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

func rec(e, r, t int) *BroadcastRecord {
	br := NewBroadcastRecord(packet.BroadcastID{Source: 1, Seq: 1}, 0, e)
	br.Received = r
	br.Transmitted = t
	return br
}

func TestREDefinition(t *testing.T) {
	if got := rec(10, 8, 3).RE(); got != 0.8 {
		t.Errorf("RE = %v, want 0.8", got)
	}
	// Isolated source: e = r = 1.
	if got := rec(1, 1, 1).RE(); got != 1 {
		t.Errorf("isolated source RE = %v, want 1", got)
	}
	// Degenerate zero reachable set.
	if got := rec(0, 0, 0).RE(); got != 0 {
		t.Errorf("zero-reachable RE = %v", got)
	}
}

func TestSRBDefinition(t *testing.T) {
	// Flooding: everyone who receives transmits -> SRB 0.
	if got := rec(10, 10, 10).SRB(); got != 0 {
		t.Errorf("flooding SRB = %v, want 0", got)
	}
	if got := rec(10, 10, 4).SRB(); got != 0.6 {
		t.Errorf("SRB = %v, want 0.6", got)
	}
	if got := rec(5, 0, 0).SRB(); got != 0 {
		t.Errorf("no-receiver SRB = %v", got)
	}
}

func TestLatencyTracking(t *testing.T) {
	br := NewBroadcastRecord(packet.BroadcastID{}, sim.Time(100), 5)
	br.NoteActivity(sim.Time(300))
	br.NoteActivity(sim.Time(200)) // earlier activity must not shrink it
	if got := br.Latency(); got != 200 {
		t.Errorf("latency = %v, want 200", got)
	}
	fresh := NewBroadcastRecord(packet.BroadcastID{}, sim.Time(50), 1)
	if fresh.Latency() != 0 {
		t.Errorf("fresh record latency = %v, want 0", fresh.Latency())
	}
}

func TestSummarize(t *testing.T) {
	a := rec(10, 10, 10) // RE 1.0, SRB 0
	b := rec(10, 5, 1)   // RE 0.5, SRB 0.8
	a.NoteActivity(sim.Time(100))
	b.NoteActivity(sim.Time(300))
	s := Summarize([]*BroadcastRecord{a, b})
	if s.Broadcasts != 2 {
		t.Fatalf("broadcasts = %d", s.Broadcasts)
	}
	if math.Abs(s.MeanRE-0.75) > 1e-12 {
		t.Errorf("mean RE = %v, want 0.75", s.MeanRE)
	}
	if math.Abs(s.MeanSRB-0.4) > 1e-12 {
		t.Errorf("mean SRB = %v, want 0.4", s.MeanSRB)
	}
	if s.MeanLatency != 200 {
		t.Errorf("mean latency = %v, want 200", s.MeanLatency)
	}
	if math.Abs(s.StdRE-0.25) > 1e-12 {
		t.Errorf("std RE = %v, want 0.25", s.StdRE)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Broadcasts != 0 || s.MeanRE != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestMergeWeighting(t *testing.T) {
	s1 := Summary{Broadcasts: 1, MeanRE: 1.0, MeanSRB: 0.0, MeanLatency: 100, HelloSent: 5}
	s2 := Summary{Broadcasts: 3, MeanRE: 0.5, MeanSRB: 0.4, MeanLatency: 300, HelloSent: 7}
	m := Merge([]Summary{s1, s2})
	if m.Broadcasts != 4 {
		t.Fatalf("merged broadcasts = %d", m.Broadcasts)
	}
	if math.Abs(m.MeanRE-0.625) > 1e-12 {
		t.Errorf("merged RE = %v, want 0.625", m.MeanRE)
	}
	if math.Abs(m.MeanSRB-0.3) > 1e-12 {
		t.Errorf("merged SRB = %v, want 0.3", m.MeanSRB)
	}
	if m.MeanLatency != 250 {
		t.Errorf("merged latency = %v, want 250", m.MeanLatency)
	}
	if m.HelloSent != 12 {
		t.Errorf("merged hello count = %d", m.HelloSent)
	}
}

func TestMergeEmpty(t *testing.T) {
	if m := Merge(nil); m.Broadcasts != 0 {
		t.Errorf("merge of nothing = %+v", m)
	}
}

// TestMetricBoundsProperty: RE in [0,1] and SRB in [0,1] for any
// consistent record (t <= r <= e).
func TestMetricBoundsProperty(t *testing.T) {
	prop := func(e8, r8, t8 uint8) bool {
		e := int(e8%50) + 1
		r := int(r8) % (e + 1)
		tt := 0
		if r > 0 {
			tt = int(t8) % (r + 1)
		}
		br := rec(e, r, tt)
		re, srb := br.RE(), br.SRB()
		return re >= 0 && re <= 1 && srb >= 0 && srb <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var recs []*BroadcastRecord
	for i := 1; i <= 100; i++ {
		r := NewBroadcastRecord(packet.BroadcastID{Seq: uint32(i)}, 0, 2)
		r.Received = 2
		r.NoteActivity(sim.Time(i) * 1000)
		recs = append(recs, r)
	}
	s := Summarize(recs)
	if s.LatencyP50 != 50*1000 {
		t.Errorf("p50 = %v, want 50ms-equivalent (50000us)", s.LatencyP50)
	}
	if s.LatencyP95 != 95*1000 {
		t.Errorf("p95 = %v, want 95000us", s.LatencyP95)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile nonzero")
	}
	one := []sim.Duration{42}
	if percentile(one, 0.5) != 42 || percentile(one, 0.95) != 42 {
		t.Error("single-element percentile wrong")
	}
}

func TestMergePercentiles(t *testing.T) {
	a := Summary{Broadcasts: 1, LatencyP50: 100, LatencyP95: 200}
	b := Summary{Broadcasts: 3, LatencyP50: 300, LatencyP95: 400}
	m := Merge([]Summary{a, b})
	if m.LatencyP50 != 250 {
		t.Errorf("merged p50 = %v, want weighted 250", m.LatencyP50)
	}
	if m.LatencyP95 != 350 {
		t.Errorf("merged p95 = %v, want weighted 350", m.LatencyP95)
	}
}

// TestMergeSkipsZeroBroadcastReplicas: a replica that completed no
// broadcasts (e.g. a warmup-only run) contributes weight 0 to the
// weighted means but still adds its channel counters.
func TestMergeSkipsZeroBroadcastReplicas(t *testing.T) {
	real := Summary{Broadcasts: 4, MeanRE: 0.8, MeanSRB: 0.4, MeanLatency: 100,
		LatencyP50: 90, LatencyP95: 180, Transmissions: 40}
	empty := Summary{Broadcasts: 0, Transmissions: 7, HelloSent: 3}
	m := Merge([]Summary{empty, real, empty})
	if m.Broadcasts != 4 {
		t.Fatalf("Broadcasts = %d, want 4", m.Broadcasts)
	}
	if m.MeanRE != 0.8 || m.MeanSRB != 0.4 || m.MeanLatency != 100 {
		t.Errorf("zero-broadcast replicas perturbed means: %+v", m)
	}
	if m.LatencyP50 != 90 || m.LatencyP95 != 180 {
		t.Errorf("zero-broadcast replicas perturbed percentiles: %+v", m)
	}
	if m.Transmissions != 54 || m.HelloSent != 6 {
		t.Errorf("counters not summed over all replicas: %+v", m)
	}
}

// TestMergeAllZeroBroadcasts: merging only zero-broadcast replicas must
// not divide by zero.
func TestMergeAllZeroBroadcasts(t *testing.T) {
	m := Merge([]Summary{{Transmissions: 1}, {Transmissions: 2}})
	if m.Broadcasts != 0 || m.MeanRE != 0 || m.Transmissions != 3 {
		t.Errorf("all-zero merge = %+v", m)
	}
}

// TestSummarizeSingleRecord: with one record every percentile is that
// record's latency and both deviations are zero.
func TestSummarizeSingleRecord(t *testing.T) {
	r := NewBroadcastRecord(packet.BroadcastID{Seq: 1}, 0, 3)
	r.Received = 3
	r.Transmitted = 2
	r.NoteActivity(500)
	s := Summarize([]*BroadcastRecord{r})
	if s.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d", s.Broadcasts)
	}
	if s.LatencyP50 != 500 || s.LatencyP95 != 500 || s.MeanLatency != 500 {
		t.Errorf("single-record latency stats: %+v", s)
	}
	if s.StdRE != 0 || s.StdSRB != 0 {
		t.Errorf("single-record deviations nonzero: %+v", s)
	}
}
