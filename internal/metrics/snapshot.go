package metrics

import "repro/internal/sim"

// Checkpoint accessors. A BroadcastRecord's lastActivity and a Stream's
// folded history are deliberately unexported — models mutate them only
// through NoteActivity/Fold — so checkpointing gets its own narrow
// window into them here.

// LastActivity returns the time of the latest rebroadcast completion or
// inhibit decision attributed to this broadcast, for checkpointing.
func (r *BroadcastRecord) LastActivity() sim.Time { return r.lastActivity }

// RestoreActivity overwrites the record's completion time with a
// checkpointed value.
func (r *BroadcastRecord) RestoreActivity(at sim.Time) { r.lastActivity = at }

// StreamState is a Stream's checkpointed history: the (RE, SRB, latency)
// triple of every record folded so far, in fold order. The running
// Welford aggregates are not stored — refolding the triples in order
// reconstructs them bit for bit, since Add is deterministic in its
// sample sequence.
type StreamState struct {
	RE  []float64
	SRB []float64
	Lat []sim.Duration
}

// Snapshot captures the stream's folded history. The returned slices
// alias the stream's storage; callers serialize them without mutating.
func (s *Stream) Snapshot() StreamState {
	return StreamState{RE: s.res, SRB: s.srbs, Lat: s.lats}
}

// Restore overwrites the stream with a checkpointed history, rebuilding
// the running aggregates by refolding every triple in order. A stream
// restored this way produces a Summary byte-identical to the stream the
// state was captured from.
func (s *Stream) Restore(st StreamState) {
	s.res = append(s.res[:0], st.RE...)
	s.srbs = append(s.srbs[:0], st.SRB...)
	s.lats = append(s.lats[:0], st.Lat...)
	s.re = Running{}
	s.srb = Running{}
	for i := range s.res {
		s.re.Add(s.res[i])
		s.srb.Add(s.srbs[i])
	}
}
