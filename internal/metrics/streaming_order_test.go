package metrics

import (
	"sort"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestStreamFoldOrderInvariance is the property the speculative
// engine's commit path rests on: broadcast completions produced in
// per-lane batches, in any batch interleaving, reproduce the batch
// Summarize byte for byte once they are merged back into global
// completion (time, seq) order before folding. The fold order — not
// the production order — is what fixes the summation order, the
// two-pass variance, and the percentile ranks.
func TestStreamFoldOrderInvariance(t *testing.T) {
	rng := sim.NewRNG(42)
	const nRec = 257 // odd, so batches split unevenly

	type completion struct {
		rec BroadcastRecord
		at  sim.Time // completion time
		seq uint64   // tiebreak for equal completion times
	}
	completions := make([]completion, nRec)
	for i := range completions {
		start := sim.Time(rng.IntN(10_000)) * sim.Time(sim.Millisecond)
		reach := 1 + rng.IntN(100)
		bid := packet.BroadcastID{Source: packet.NodeID(rng.IntN(64)), Seq: uint32(i + 1)}
		rec := MakeBroadcastRecord(bid, start, reach)
		rec.Received = 1 + rng.IntN(reach)
		rec.Transmitted = 1 + rng.IntN(rec.Received)
		// A quarter of the completions share a timestamp, so the seq
		// tiebreak is actually exercised.
		at := start.Add(sim.Duration(rng.IntN(4)) * 25 * sim.Millisecond)
		rec.NoteActivity(at)
		completions[i] = completion{rec: rec, at: at, seq: uint64(i)}
	}

	// The oracle: every completion in global (time, seq) order, folded
	// once, summarized by the batch path.
	canonical := make([]completion, nRec)
	copy(canonical, completions)
	sort.Slice(canonical, func(i, j int) bool {
		if canonical[i].at != canonical[j].at {
			return canonical[i].at < canonical[j].at
		}
		return canonical[i].seq < canonical[j].seq
	})
	oracleRecs := make([]*BroadcastRecord, nRec)
	for i := range canonical {
		oracleRecs[i] = &canonical[i].rec
	}
	want := Summarize(oracleRecs)

	for trial := 0; trial < 20; trial++ {
		// Cut the canonical stream into batches (per-lane output) and
		// permute the batch order — the interleaving a parallel window
		// hands the merge.
		batchSize := 1 + rng.IntN(64)
		var batches [][]completion
		for lo := 0; lo < nRec; lo += batchSize {
			hi := lo + batchSize
			if hi > nRec {
				hi = nRec
			}
			batches = append(batches, canonical[lo:hi])
		}
		for i := len(batches) - 1; i > 0; i-- {
			j := rng.IntN(i + 1)
			batches[i], batches[j] = batches[j], batches[i]
		}
		var permuted []completion
		for _, b := range batches {
			permuted = append(permuted, b...)
		}

		// The merge the commit path performs: restore global (time, seq)
		// order, then fold into the stream.
		sort.Slice(permuted, func(i, j int) bool {
			if permuted[i].at != permuted[j].at {
				return permuted[i].at < permuted[j].at
			}
			return permuted[i].seq < permuted[j].seq
		})
		var s Stream
		for i := range permuted {
			s.Fold(&permuted[i].rec)
		}
		if got := s.Summary(); got != want {
			t.Fatalf("trial %d (batch size %d): merged fold diverged from batch Summarize:\nstream: %+v\nbatch:  %+v",
				trial, batchSize, got, want)
		}
	}
}
