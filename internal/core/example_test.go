package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scheme"
)

// core.Run is the one-call entry point: scheme, map size, broadcast
// count, seed.
func ExampleRun() {
	s, err := core.Run(scheme.NeighborCoverage{}, 3, 15, 11)
	if err != nil {
		panic(err)
	}
	fmt.Println("broadcasts:", s.Broadcasts)
	fmt.Println("reached most hosts:", s.MeanRE > 0.9)
	// Output:
	// broadcasts: 15
	// reached most hosts: true
}
