// Package core documents the layering of the reproduction and provides
// the one-call entry point most users want: build a network for a
// scheme, run the paper's workload, get the paper's metrics.
//
// The paper's primary contribution — the adaptive rebroadcast schemes —
// lives in internal/scheme; the simulation substrate spans internal/sim,
// phy, mac, mobility, neighbor, and manet; the evaluation harness is
// internal/experiment. This package stitches them together for
// programmatic use without touching the layers individually.
package core

import (
	"repro/internal/manet"
	"repro/internal/metrics"
	"repro/internal/scheme"
)

// Run simulates one broadcast workload: hosts roaming a units x units
// map (one unit = the 500 m radio radius), issuing requests broadcasts
// under the given scheme, with the paper's default parameters for
// everything else. It is the programmatic equivalent of cmd/stormsim.
func Run(sch scheme.Scheme, units, requests int, seed uint64) (metrics.Summary, error) {
	n, err := manet.New(manet.Config{
		Scheme:   sch,
		MapUnits: units,
		Requests: requests,
		Seed:     seed,
	})
	if err != nil {
		return metrics.Summary{}, err
	}
	return n.Run(), nil
}

// Schemes returns one representative instance of every scheme in the
// study, in the paper's presentation order: the baselines from the
// MOBICOM '99 work and this paper's adaptive schemes.
func Schemes() []scheme.Scheme {
	return []scheme.Scheme{
		scheme.Flooding{},
		scheme.Probabilistic{P: 0.7},
		scheme.Counter{C: 3},
		scheme.Distance{D: 40},
		scheme.Location{A: 0.0469},
		scheme.Cluster{},
		scheme.AdaptiveCounter{},
		scheme.AdaptiveLocation{},
		scheme.NeighborCoverage{},
	}
}
