package core

import (
	"testing"

	"repro/internal/scheme"
)

func TestRunEndToEnd(t *testing.T) {
	s, err := Run(scheme.AdaptiveCounter{}, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Broadcasts != 10 {
		t.Errorf("broadcasts = %d", s.Broadcasts)
	}
	if s.MeanRE <= 0 || s.MeanRE > 1 {
		t.Errorf("RE = %v out of range", s.MeanRE)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(scheme.Flooding{}, -1, 10, 1); err == nil {
		t.Error("negative map accepted")
	}
}

func TestSchemesComplete(t *testing.T) {
	ss := Schemes()
	if len(ss) != 9 {
		t.Fatalf("scheme roster = %d, want 9", len(ss))
	}
	names := map[string]bool{}
	for _, s := range ss {
		if names[s.Name()] {
			t.Errorf("duplicate scheme %s", s.Name())
		}
		names[s.Name()] = true
	}
	for _, want := range []string{"flooding", "AC", "AL", "NC"} {
		if !names[want] {
			t.Errorf("roster missing %s", want)
		}
	}
}
