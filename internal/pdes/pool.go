// Package pdes supplies the parallel discrete-event-simulation substrate
// for the sharded engine: a bounded-channel worker pool with barrier
// semantics, and a band-parallel connected-component walker used for
// reachability queries over the spatial grid.
//
// Design note — what is and is not parallelized on the event spine: the
// MAC grants immediate channel access at the current instant (zero
// lookahead), and carrier-sense transitions cascade across hops within a
// single timestamp, so the global (time, seq) tie order that the
// byte-identical oracle contract pins cannot be reproduced for radio
// events without serializing exactly the events a parallel executor
// would need to reorder. The sharded engine therefore splits each
// conservative barrier window by event class: shard-local mobility
// turns — pure host-local work with lookahead of at least one minimum
// turn duration — drain concurrently, one pool worker per shard wheel
// (sim.DrainShardUntil), while every radio, HELLO, and record event
// runs on the sequential merged drain, the deterministic border lane
// (see manet's parallel.go for the exactness argument). The pool also
// drives batched construction, snapshot evaluation, and reachability
// walks. Shard synchronization happens at conservative barrier windows
// derived from the minimum frame airtime plus the speed bound, widened
// adaptively when no in-flight transmission is border-proximate; at
// each barrier, cancellation and the cross-shard monotonicity audit
// run.
package pdes

import "sync"

// job is one contiguous index range dispatched to a worker.
type job struct {
	lo, hi int
	f      func(shard, lo, hi int)
}

// Pool is a fixed set of workers fed over bounded channels. Do splits an
// index range across the workers and blocks until every slice is done
// (a barrier). After Close, Do degrades to inline sequential execution,
// so late callers (post-run accessors) keep working without leaking
// goroutines.
type Pool struct {
	work []chan job
	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts n workers. n must be positive.
func NewPool(n int) *Pool {
	if n <= 0 {
		panic("pdes: pool size must be positive")
	}
	p := &Pool{
		work: make([]chan job, n),
		done: make(chan struct{}, n),
	}
	for i := range p.work {
		// Capacity 1: a dispatch never blocks the caller, and a worker
		// never holds more than one outstanding job.
		p.work[i] = make(chan job, 1)
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(shard int) {
	defer p.wg.Done()
	for j := range p.work[shard] {
		j.f(shard, j.lo, j.hi)
		p.done <- struct{}{}
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.work) }

// Do partitions [0, n) into len(workers) contiguous slices and runs
// f(shard, lo, hi) on each worker, blocking until all return. Shards
// whose slice is empty still run (with lo == hi) so per-shard state
// transitions stay in lockstep. On a closed pool the slices run inline
// on the caller's goroutine, in shard order.
func (p *Pool) Do(n int, f func(shard, lo, hi int)) {
	w := len(p.work)
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		for i := 0; i < w; i++ {
			lo, hi := i*n/w, (i+1)*n/w
			f(i, lo, hi)
		}
		return
	}
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		p.work[i] <- job{lo: lo, hi: hi, f: f}
	}
	for i := 0; i < w; i++ {
		<-p.done
	}
}

// Close shuts the workers down and waits for them to exit. It is
// idempotent and must not race a Do in flight.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for i := range p.work {
		close(p.work[i])
	}
	p.wg.Wait()
}
