package pdes

import (
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

func TestPoolDoCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, n)
			p.Do(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					if seen[i].Swap(true) {
						t.Errorf("workers=%d n=%d: index %d visited twice", workers, n, i)
					}
					hits.Add(1)
				}
			})
			if got := hits.Load(); got != int64(n) {
				t.Fatalf("workers=%d: covered %d of %d indices", workers, got, n)
			}
		}
		p.Close()
		p.Close() // idempotent
		// Closed pool degrades to inline execution.
		var inline int
		p.Do(5, func(_, lo, hi int) { inline += hi - lo })
		if inline != 5 {
			t.Fatalf("closed pool covered %d of 5", inline)
		}
	}
}

// TestWalkerMatchesSequential grows random unit-disk graphs at several
// densities and checks the band-parallel component count against the
// sequential walk from every source, across pool sizes.
func TestWalkerMatchesSequential(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		pool := NewPool(workers)
		par := NewWalker(pool)
		seq := NewWalker(nil)
		for seed := uint64(1); seed <= 4; seed++ {
			rng := sim.NewRNG(seed)
			n := 60 + rng.IntN(300)
			side := 2000.0
			radius := 120 + rng.UniformFloat(0, 160)
			snap := make([]geom.Point, n)
			for i := range snap {
				snap[i] = geom.Point{
					X: rng.UniformFloat(0, side),
					Y: rng.UniformFloat(0, side),
				}
			}
			var grid geom.Grid
			grid.Rebuild(snap, radius)
			neigh := func(u int, buf []int) []int { return grid.Neighbors(u, radius, buf) }
			for src := 0; src < n; src += 7 {
				want := seq.Count(&grid, seed, snap, src, neigh)
				got := par.Count(&grid, seed, snap, src, neigh)
				if got != want {
					t.Fatalf("workers=%d seed=%d src=%d: parallel count %d, sequential %d",
						workers, seed, src, got, want)
				}
			}
		}
		pool.Close()
	}
}

// TestWalkerSpillOverflow forces a dense single-row graph so crossings
// overflow the bounded channels and exercise the spill path.
func TestWalkerSpillOverflow(t *testing.T) {
	// Two tall columns of tightly packed nodes with a narrow bridge: most
	// discoveries cross band borders.
	const n = 2000
	snap := make([]geom.Point, n)
	rng := sim.NewRNG(99)
	for i := range snap {
		snap[i] = geom.Point{X: rng.UniformFloat(0, 50), Y: rng.UniformFloat(0, 2000)}
	}
	radius := 120.0
	var grid geom.Grid
	grid.Rebuild(snap, radius)
	pool := NewPool(4)
	defer pool.Close()
	par := NewWalker(pool)
	seq := NewWalker(nil)
	neigh := func(u int, buf []int) []int { return grid.Neighbors(u, radius, buf) }
	for src := 0; src < n; src += 97 {
		want := seq.Count(&grid, 1, snap, src, neigh)
		if got := par.Count(&grid, 1, snap, src, neigh); got != want {
			t.Fatalf("src=%d: parallel count %d, sequential %d", src, got, want)
		}
	}
}

// TestWalkerStaleBanding drives the walker the way phy does under a
// stale snapshot: band ownership comes from an outdated position set
// while adjacency is answered from the live one. Nodes may sit up to
// two bands away from their edges' endpoints, so crossings are no
// longer confined to adjacent bands; membership must not change.
func TestWalkerStaleBanding(t *testing.T) {
	const n = 1500
	rng := sim.NewRNG(7)
	radius := 150.0
	stale := make([]geom.Point, n)
	live := make([]geom.Point, n)
	for i := range stale {
		stale[i] = geom.Point{X: rng.UniformFloat(0, 1500), Y: rng.UniformFloat(0, 1500)}
		// Drift each node by up to two cell edges between the snapshot
		// and the query instant.
		live[i] = geom.Point{
			X: stale[i].X + rng.UniformFloat(-2*radius, 2*radius),
			Y: stale[i].Y + rng.UniformFloat(-2*radius, 2*radius),
		}
	}
	var staleGrid, liveGrid geom.Grid
	staleGrid.Rebuild(stale, radius)
	liveGrid.Rebuild(live, radius)
	neigh := func(u int, buf []int) []int { return liveGrid.Neighbors(u, radius, buf) }
	pool := NewPool(4)
	defer pool.Close()
	par := NewWalker(pool)
	seq := NewWalker(nil)
	for src := 0; src < n; src += 53 {
		want := seq.Count(&staleGrid, 1, stale, src, neigh)
		if got := par.Count(&staleGrid, 1, stale, src, neigh); got != want {
			t.Fatalf("src=%d: parallel count %d, sequential %d", src, got, want)
		}
	}
}
