package pdes

import "repro/internal/geom"

// crossCap bounds each border channel. Crossings beyond the capacity
// spill to a phase-local slice the owner drains at the next barrier, so
// a send never blocks and the protocol cannot deadlock.
const crossCap = 256

// NeighborFunc answers a walk's adjacency query: it appends u's
// neighbors to buf and returns the extended slice. Band workers call it
// concurrently, so it must be safe for simultaneous calls with distinct
// buffers (pure reads of shared state are fine).
type NeighborFunc func(u int, buf []int) []int

// Walker computes connected-component sizes using a band-parallel
// breadth-first walk. The map is cut into horizontal bands of grid
// rows, one per pool worker; each band owns the nodes whose snapshot
// cell row falls inside it and is the only writer of their visited
// marks. Discoveries that cross a band border are handed to the owning
// band over a bounded channel (spilling to a phase-local slice when the
// channel is full); the pool barrier between the expand and deliver
// phases makes the spill slices safely visible to their readers. With a
// fresh snapshot a neighbor is at most one cell row away, so crossings
// target adjacent bands; with a stale one they can reach one band
// further, which the channel indexing handles the same way.
//
// Adjacency comes from the caller's NeighborFunc — typically an
// exact-over-stale query that filters grid candidates by live position —
// so the snapshot only decides band ownership, never membership. The
// walk returns exactly the component cardinality a sequential BFS over
// the same NeighborFunc produces (band decomposition changes visit
// order, never membership), which is what keeps the sharded engine's
// summaries byte-identical to the sequential oracle's.
type Walker struct {
	pool *Pool

	// Band-partition cache: bandOf is valid for exactly one
	// (grid, rev, bands, n) tuple. Reachability is queried once per
	// broadcast record, far more often than the snapshot is rebuilt, so
	// most walks reuse the partition and skip the per-node CellOf pass.
	cachedGrid  *geom.Grid
	cachedRev   uint64
	cachedBands int
	cachedN     int

	visited []bool
	bandOf  []uint8
	stack   [][]int32 // per-band local work stack (expand phase)
	next    [][]int32 // per-band frontier for the next round
	spill   [][]int32 // [src*bands+dst] overflow crossings
	cross   []chan int32
	nbr     [][]int // per-band grid query scratch
	counts  []int
}

// NewWalker returns a walker running on the given pool. A nil pool
// yields a purely sequential walker.
func NewWalker(pool *Pool) *Walker {
	return &Walker{pool: pool}
}

// Count returns the number of nodes connected to src (including src)
// under the adjacency relation neigh defines. grid must be built over
// snap; it partitions the nodes into bands but contributes no edges.
// rev identifies the snapshot the grid was built over: callers bump it
// on every rebuild, and equal (grid, rev) pairs may reuse the walker's
// cached band partition.
func (w *Walker) Count(grid *geom.Grid, rev uint64, snap []geom.Point, src int, neigh NeighborFunc) int {
	n := len(snap)
	if n == 0 {
		return 0
	}
	_, rows := grid.Cells()
	bands := 0
	if w.pool != nil {
		bands = min(w.pool.Workers(), rows)
	}
	if bands <= 1 {
		return w.countSequential(n, src, neigh)
	}
	w.prepare(n, bands)

	// Band assignment, in parallel over disjoint index ranges — skipped
	// entirely when the partition cache still matches the snapshot.
	// floor(cy*bands/rows) moves by at most one band per cell row,
	// which is the adjacency bound the border protocol relies on.
	if w.cachedGrid != grid || w.cachedRev != rev || w.cachedBands != bands || w.cachedN != n {
		w.pool.Do(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				_, cy := grid.CellOf(snap[i])
				w.bandOf[i] = uint8(cy * bands / rows)
			}
		})
		w.cachedGrid, w.cachedRev = grid, rev
		w.cachedBands, w.cachedN = bands, n
	}
	clear(w.visited)

	home := int(w.bandOf[src])
	w.visited[src] = true
	w.counts[home] = 1
	w.stack[home] = append(w.stack[home], int32(src))

	for {
		// Expand: each band runs its local stack to closure, marking
		// same-band discoveries immediately and handing cross-band ones
		// to the owner (channel first, spill on overflow). Do partitions
		// the band range across workers, so each band's state has exactly
		// one writer per phase.
		w.pool.Do(bands, func(_, blo, bhi int) {
			for b := blo; b < bhi; b++ {
				stack := w.stack[b]
				for len(stack) > 0 {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					w.nbr[b] = neigh(int(u), w.nbr[b][:0])
					for _, v := range w.nbr[b] {
						d := int(w.bandOf[v])
						if d == b {
							if !w.visited[v] {
								w.visited[v] = true
								w.counts[b]++
								stack = append(stack, int32(v))
							}
							continue
						}
						select {
						case w.cross[d] <- int32(v):
						default:
							w.spill[b*bands+d] = append(w.spill[b*bands+d], int32(v))
						}
					}
				}
				w.stack[b] = stack[:0]
			}
		})
		// Deliver: each band drains its channel and every spill slice
		// aimed at it, deduplicating against its own visited marks.
		w.pool.Do(bands, func(_, blo, bhi int) {
			for b := blo; b < bhi; b++ {
				next := w.next[b]
			drain:
				for {
					select {
					case v := <-w.cross[b]:
						if !w.visited[v] {
							w.visited[v] = true
							w.counts[b]++
							next = append(next, v)
						}
					default:
						break drain
					}
				}
				for s := 0; s < bands; s++ {
					sl := w.spill[s*bands+b]
					for _, v := range sl {
						if !w.visited[v] {
							w.visited[v] = true
							w.counts[b]++
							next = append(next, v)
						}
					}
					w.spill[s*bands+b] = sl[:0]
				}
				w.next[b] = next
			}
		})
		total := 0
		for d := 0; d < bands; d++ {
			w.stack[d], w.next[d] = w.next[d], w.stack[d][:0]
			total += len(w.stack[d])
		}
		if total == 0 {
			break
		}
	}
	count := 0
	for _, c := range w.counts {
		count += c
	}
	return count
}

// prepare sizes the per-band state for n nodes and the given band count.
func (w *Walker) prepare(n, bands int) {
	if cap(w.visited) < n {
		w.visited = make([]bool, n)
		w.bandOf = make([]uint8, n)
	}
	w.visited = w.visited[:n]
	w.bandOf = w.bandOf[:n]
	for len(w.stack) < bands {
		w.stack = append(w.stack, nil)
		w.next = append(w.next, nil)
		w.nbr = append(w.nbr, nil)
	}
	if len(w.spill) < bands*bands {
		w.spill = make([][]int32, bands*bands)
	}
	for len(w.cross) < bands {
		w.cross = append(w.cross, make(chan int32, crossCap))
	}
	if cap(w.counts) < bands {
		w.counts = make([]int, bands)
	}
	w.counts = w.counts[:bands]
	for i := range w.counts {
		w.counts[i] = 0
	}
	for i := 0; i < bands; i++ {
		w.stack[i] = w.stack[i][:0]
		w.next[i] = w.next[i][:0]
	}
}

// countSequential is the single-threaded fallback (and oracle) walk.
func (w *Walker) countSequential(n, src int, neigh NeighborFunc) int {
	if cap(w.visited) < n {
		w.visited = make([]bool, n)
		w.bandOf = make([]uint8, n)
	}
	w.visited = w.visited[:n]
	for i := range w.visited {
		w.visited[i] = false
	}
	if len(w.stack) == 0 {
		w.stack = append(w.stack, nil)
		w.nbr = append(w.nbr, nil)
	}
	stack := w.stack[0][:0]
	w.visited[src] = true
	count := 1
	stack = append(stack, int32(src))
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		w.nbr[0] = neigh(int(u), w.nbr[0][:0])
		for _, v := range w.nbr[0] {
			if !w.visited[v] {
				w.visited[v] = true
				count++
				stack = append(stack, int32(v))
			}
		}
	}
	w.stack[0] = stack[:0]
	return count
}
