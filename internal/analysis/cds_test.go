package analysis

import (
	"testing"

	"repro/internal/geom"
)

const radius = 500.0

// verifyCDS checks that cds dominates and is connected within src's
// component.
func verifyCDS(t *testing.T, adj [][]int, src int, cds []int) {
	t.Helper()
	comp := Component(adj, src)
	inCDS := make(map[int]bool, len(cds))
	for _, v := range cds {
		inCDS[v] = true
	}
	if !inCDS[src] {
		t.Error("CDS does not contain the source")
	}
	// Domination.
	for _, v := range comp {
		if inCDS[v] {
			continue
		}
		dominated := false
		for _, w := range adj[v] {
			if inCDS[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("vertex %d not dominated", v)
		}
	}
	// Connectivity of the CDS subgraph.
	if len(cds) > 0 {
		seen := map[int]bool{cds[0]: true}
		stack := []int{cds[0]}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if inCDS[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if len(seen) != len(cds) {
			t.Errorf("CDS not connected: reached %d of %d", len(seen), len(cds))
		}
	}
}

func chainPoints(n int, gap float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * gap}
	}
	return pts
}

func TestCDSOnChain(t *testing.T) {
	// 7-host chain at 450 m spacing: optimal CDS is the 5 interior hosts
	// (plus the source if it is an endpoint).
	pts := chainPoints(7, 450)
	adj := UnitDiskAdjacency(pts, radius)
	for _, construct := range []func([][]int, int) []int{BFSTreeCDS, GreedyCDS} {
		cds := construct(adj, 0)
		verifyCDS(t, adj, 0, cds)
		if len(cds) > 6 {
			t.Errorf("chain CDS size %d, expected <= 6", len(cds))
		}
	}
}

func TestCDSOnClique(t *testing.T) {
	// All hosts within range: {src} dominates.
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 200}, {Y: 100}, {Y: 200}}
	adj := UnitDiskAdjacency(pts, radius)
	cds := GreedyCDS(adj, 2)
	verifyCDS(t, adj, 2, cds)
	if len(cds) != 1 {
		t.Errorf("clique CDS = %v, want just the source", cds)
	}
}

func TestCDSOnStar(t *testing.T) {
	// Center at origin, 5 leaves at 450 m in different directions, leaves
	// out of range of each other: CDS from a leaf = {leaf, center}.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 450}, {X: -450}, {Y: 450}, {Y: -450}}
	adj := UnitDiskAdjacency(pts, radius)
	cds := GreedyCDS(adj, 1)
	verifyCDS(t, adj, 1, cds)
	if len(cds) != 2 {
		t.Errorf("star CDS from leaf = %v, want size 2", cds)
	}
}

func TestCDSIsolatedVertex(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 5000}}
	adj := UnitDiskAdjacency(pts, radius)
	cds := GreedyCDS(adj, 0)
	if len(cds) != 1 || cds[0] != 0 {
		t.Errorf("isolated CDS = %v", cds)
	}
	if got := SRBUpperBound(pts, radius, 0); got != 0 {
		t.Errorf("isolated SRB bound = %v, want 0", got)
	}
}

func TestCDSRandomTopologies(t *testing.T) {
	// Property: both constructions always produce valid CDSs on random
	// topologies, and greedy is never larger than 2x BFS-tree.
	rng := newTestRNG(7)
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.IntN(40)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{
				X: rng.UniformFloat(0, 3000),
				Y: rng.UniformFloat(0, 3000),
			}
		}
		adj := UnitDiskAdjacency(pts, radius)
		src := rng.IntN(n)
		bfs := BFSTreeCDS(adj, src)
		greedy := GreedyCDS(adj, src)
		verifyCDS(t, adj, src, bfs)
		verifyCDS(t, adj, src, greedy)
		if len(greedy) > 2*len(bfs)+1 {
			t.Errorf("greedy CDS %d wildly larger than BFS %d", len(greedy), len(bfs))
		}
	}
}

func TestSRBUpperBoundChain(t *testing.T) {
	// Chain of 10: component 10, best CDS ~9 (interior + endpoint src)
	// so the bound is small — chains admit almost no saving.
	pts := chainPoints(10, 450)
	bound := SRBUpperBound(pts, radius, 0)
	if bound > 0.2 {
		t.Errorf("chain SRB bound = %v, chains cannot save much", bound)
	}
	// Clique of 10: everyone but the source can stay silent.
	clique := make([]geom.Point, 10)
	for i := range clique {
		clique[i] = geom.Point{X: float64(i) * 10}
	}
	bound = SRBUpperBound(clique, radius, 0)
	if bound < 0.89 {
		t.Errorf("clique SRB bound = %v, want 0.9", bound)
	}
}
