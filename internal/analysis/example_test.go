package analysis_test

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/geom"
)

// The CDS oracle bounds how many rebroadcasts any scheme could save: on
// a chain almost everyone must relay, in a clique only the source needs
// to transmit.
func ExampleSRBUpperBound() {
	chain := []geom.Point{{X: 0}, {X: 450}, {X: 900}, {X: 1350}, {X: 1800}}
	clique := []geom.Point{{X: 0}, {X: 50}, {X: 100}, {X: 150}, {X: 200}}
	fmt.Printf("chain:  %.2f\n", analysis.SRBUpperBound(chain, 500, 0))
	fmt.Printf("clique: %.2f\n", analysis.SRBUpperBound(clique, 500, 0))
	// Output:
	// chain:  0.20
	// clique: 0.80
}
