package analysis

import (
	"repro/internal/geom"
)

// This file provides an oracle bound for the rebroadcast-saving metric:
// a broadcast reaches every host in the source's component if and only
// if the set of transmitters dominates the component and is connected
// (every non-transmitter neighbors a transmitter, and the transmitters
// form a connected relay backbone containing the source). The smallest
// such set is a minimum connected dominating set (MCDS) — NP-hard, so we
// compute greedy approximations. |CDS| / |component| lower-bounds the
// fraction of hosts that must transmit, i.e. 1 - |CDS|/|component| is an
// upper bound on the SRB any scheme can achieve at full reachability.

// UnitDiskAdjacency builds the adjacency lists of the unit-disk graph on
// the given points with radio radius r.
func UnitDiskAdjacency(points []geom.Point, r float64) [][]int {
	n := len(points)
	adj := make([][]int, n)
	r2 := r * r
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].Dist2(points[j]) <= r2 {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

// Component returns the vertices of src's connected component.
func Component(adj [][]int, src int) []int {
	visited := make([]bool, len(adj))
	visited[src] = true
	stack := []int{src}
	var out []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, w := range adj[v] {
			if !visited[w] {
				visited[w] = true
				stack = append(stack, w)
			}
		}
	}
	return out
}

// BFSTreeCDS returns a connected dominating set of src's component: the
// internal (non-leaf) vertices of a BFS tree rooted at src, always
// including src itself. It is a simple constructive upper bound on the
// MCDS.
func BFSTreeCDS(adj [][]int, src int) []int {
	n := len(adj)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, n)
	visited[src] = true
	queue := []int{src}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			if !visited[w] {
				visited[w] = true
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	internal := make(map[int]bool, len(order))
	internal[src] = true
	for _, v := range order {
		if parent[v] >= 0 {
			internal[parent[v]] = true
		}
	}
	out := make([]int, 0, len(internal))
	for _, v := range order { // deterministic order
		if internal[v] {
			out = append(out, v)
		}
	}
	return out
}

// GreedyCDS returns a connected dominating set of src's component using
// the classic greedy coloring: grow a black (selected) backbone from
// src, at each step blackening the gray (covered, adjacent-to-backbone)
// vertex that covers the most still-uncovered vertices. It typically
// beats the BFS-tree bound.
func GreedyCDS(adj [][]int, src int) []int {
	comp := Component(adj, src)
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	covered := make(map[int]bool, len(comp)) // dominated vertices
	frontier := make(map[int]bool)           // gray: covered and adjacent to backbone
	var cds []int

	blacken := func(v int) {
		cds = append(cds, v)
		covered[v] = true
		delete(frontier, v)
		for _, w := range adj[v] {
			if !inComp[w] {
				continue
			}
			if !covered[w] {
				covered[w] = true
			}
			found := false
			for _, x := range cds {
				if x == w {
					found = true
					break
				}
			}
			if !found {
				frontier[w] = true
			}
		}
	}
	gain := func(v int) int {
		g := 0
		for _, w := range adj[v] {
			if inComp[w] && !covered[w] {
				g++
			}
		}
		return g
	}

	blacken(src)
	for len(covered) < len(comp) {
		best, bestGain := -1, -1
		// Deterministic tie-break: smallest vertex id.
		for _, v := range comp {
			if !frontier[v] {
				continue
			}
			if g := gain(v); g > bestGain || (g == bestGain && best >= 0 && v < best) {
				best, bestGain = v, g
			}
		}
		if best < 0 {
			break // should not happen in a connected component
		}
		blacken(best)
	}
	return cds
}

// SRBUpperBound returns the best saved-rebroadcast ratio achievable at
// full reachability for a broadcast from src on the given topology:
// 1 - |CDS|/|component|, using the smaller of the greedy and BFS-tree
// CDS constructions. Components of size 1 return 0 (the source must
// still transmit under every scheme modeled here).
func SRBUpperBound(points []geom.Point, r float64, src int) float64 {
	adj := UnitDiskAdjacency(points, r)
	comp := Component(adj, src)
	if len(comp) <= 1 {
		return 0
	}
	g := len(GreedyCDS(adj, src))
	b := len(BFSTreeCDS(adj, src))
	best := g
	if b < best {
		best = b
	}
	return 1 - float64(best)/float64(len(comp))
}
