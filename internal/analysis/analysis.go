// Package analysis reproduces the paper's closed-form and Monte-Carlo
// analyses of the broadcast storm problem (Section 2.2):
//
//   - EAC(k), the expected additional coverage of a rebroadcast after
//     hearing the same packet k times (the paper's Fig. 1);
//   - cf(n, k), the probability that exactly k of n receivers of a
//     broadcast experience no contention when rebroadcasting (Fig. 2).
//
// Both follow the paper's own experimental procedure: hosts are placed
// uniformly at random inside the transmitter's disk.
package analysis

import (
	"math"

	"repro/internal/geom"
	"repro/internal/sim"
)

// randomInDisk places a point uniformly inside the disk of radius r
// around center, by the standard sqrt-radius transform.
func randomInDisk(rng *sim.RNG, center geom.Point, r float64) geom.Point {
	rad := r * math.Sqrt(rng.Float64())
	ang := rng.Angle()
	return geom.Point{
		X: center.X + rad*math.Cos(ang),
		Y: center.Y + rad*math.Sin(ang),
	}
}

// EAC estimates EAC(k)/(pi r^2): the expected additional coverage
// fraction a host's rebroadcast provides after it heard the same packet
// from k hosts placed uniformly at random within its transmission range.
// trials controls the Monte-Carlo sample count and resolution the
// coverage grid (see geom.UncoveredFraction).
func EAC(k, trials, resolution int, rng *sim.RNG) float64 {
	if k < 0 {
		panic("analysis: negative k")
	}
	if trials < 1 {
		trials = 1
	}
	const r = 1.0 // scale-free
	center := geom.Point{}
	sum := 0.0
	senders := make([]geom.Point, k)
	for t := 0; t < trials; t++ {
		for i := range senders {
			senders[i] = randomInDisk(rng, center, r)
		}
		sum += geom.UncoveredFraction(center, senders, r, resolution)
	}
	return sum / float64(trials)
}

// EACSeries computes EAC(k) for k = 1..maxK (the full Fig. 1 series).
func EACSeries(maxK, trials, resolution int, rng *sim.RNG) []float64 {
	out := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		out[k-1] = EAC(k, trials, resolution, rng)
	}
	return out
}

// ContentionFree estimates the distribution cf(n, k) for k = 0..n: place
// n receivers uniformly in the transmitter's disk; a receiver is
// contention-free when no other receiver lies within its own
// transmission range (the paper's S_{A and B} condition). The returned
// slice has n+1 entries, cf[k] = P(exactly k contention-free hosts).
func ContentionFree(n, trials int, rng *sim.RNG) []float64 {
	if n < 1 {
		panic("analysis: need at least one receiver")
	}
	if trials < 1 {
		trials = 1
	}
	const r = 1.0
	center := geom.Point{}
	counts := make([]int, n+1)
	pts := make([]geom.Point, n)
	for t := 0; t < trials; t++ {
		for i := range pts {
			pts[i] = randomInDisk(rng, center, r)
		}
		free := 0
		for i := range pts {
			clear := true
			for j := range pts {
				if i != j && pts[i].Dist2(pts[j]) <= r*r {
					clear = false
					break
				}
			}
			if clear {
				free++
			}
		}
		counts[free]++
	}
	out := make([]float64, n+1)
	for k := range out {
		out[k] = float64(counts[k]) / float64(trials)
	}
	return out
}

// ContentionFreeTable computes cf(n, k) for n = 1..maxN; row n-1 holds
// the distribution for n receivers (the full Fig. 2 family).
func ContentionFreeTable(maxN, trials int, rng *sim.RNG) [][]float64 {
	out := make([][]float64, maxN)
	for n := 1; n <= maxN; n++ {
		out[n-1] = ContentionFree(n, trials, rng)
	}
	return out
}
