package analysis

import (
	"math"
	"testing"

	"repro/internal/sim"
)

const (
	trials = 4000
	grid   = 40
)

// TestEAC1MatchesAnalytic: EAC(1) must be ~0.41, the paper's closed-form
// average additional coverage for one random prior sender.
func TestEAC1MatchesAnalytic(t *testing.T) {
	got := EAC(1, trials, grid, sim.NewRNG(1))
	if math.Abs(got-0.41) > 0.02 {
		t.Errorf("EAC(1) = %v, want ~0.41", got)
	}
}

// TestEAC2MatchesPaper: EAC(2) ~ 0.187, the constant the adaptive
// location scheme uses as its threshold ceiling.
func TestEAC2MatchesPaper(t *testing.T) {
	got := EAC(2, trials, grid, sim.NewRNG(2))
	if math.Abs(got-0.187) > 0.02 {
		t.Errorf("EAC(2) = %v, want ~0.187", got)
	}
}

// TestEACBelow5PercentFromK4: the paper's Fig. 1 observation that for
// k >= 4 the expected additional coverage drops below 5%.
func TestEACBelow5PercentFromK4(t *testing.T) {
	for k := 4; k <= 6; k++ {
		got := EAC(k, trials, grid, sim.NewRNG(uint64(k)))
		if got >= 0.05 {
			t.Errorf("EAC(%d) = %v, paper says < 0.05 for k >= 4", k, got)
		}
	}
}

func TestEACMonotoneDecreasing(t *testing.T) {
	series := EACSeries(6, trials, grid, sim.NewRNG(9))
	for i := 1; i < len(series); i++ {
		if series[i] > series[i-1]+0.01 {
			t.Errorf("EAC not decreasing: EAC(%d)=%v > EAC(%d)=%v",
				i+1, series[i], i, series[i-1])
		}
	}
}

func TestEACZeroSenders(t *testing.T) {
	if got := EAC(0, 10, grid, sim.NewRNG(3)); got != 1 {
		t.Errorf("EAC(0) = %v, want 1 (nothing covered yet)", got)
	}
}

func TestEACNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EAC(-1) did not panic")
		}
	}()
	EAC(-1, 1, grid, sim.NewRNG(1))
}

// TestCF2MatchesPairwiseContention: cf(2,0) is the probability both of
// two receivers contend, i.e. they are within range of each other: the
// paper's ~59%.
func TestCF2MatchesPairwiseContention(t *testing.T) {
	cf := ContentionFree(2, 20000, sim.NewRNG(4))
	if math.Abs(cf[0]-0.59) > 0.02 {
		t.Errorf("cf(2,0) = %v, want ~0.59", cf[0])
	}
	// cf(2,1) = 0: if one of two hosts is free of the other, so is the
	// other one of it (symmetry).
	if cf[1] != 0 {
		t.Errorf("cf(2,1) = %v, want exactly 0", cf[1])
	}
	if math.Abs(cf[0]+cf[2]-1) > 1e-9 {
		t.Errorf("cf(2,*) does not sum to 1: %v", cf)
	}
}

// TestCFAllContendLikelyWhenCrowded: the paper's Fig. 2 observation that
// cf(n,0) exceeds 0.8 once n >= 6.
func TestCFAllContendLikelyWhenCrowded(t *testing.T) {
	for _, n := range []int{6, 8} {
		cf := ContentionFree(n, 5000, sim.NewRNG(uint64(n)))
		if cf[0] < 0.8 {
			t.Errorf("cf(%d,0) = %v, paper says > 0.8 for n >= 6", n, cf[0])
		}
	}
}

// TestCFNMinusOneImpossible: having exactly n-1 contention-free hosts is
// impossible (the last host would be free too).
func TestCFNMinusOneImpossible(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		cf := ContentionFree(n, 3000, sim.NewRNG(uint64(100+n)))
		if cf[n-1] != 0 {
			t.Errorf("cf(%d,%d) = %v, want exactly 0", n, n-1, cf[n-1])
		}
	}
}

func TestCFDistributionSumsToOne(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7} {
		cf := ContentionFree(n, 2000, sim.NewRNG(uint64(200+n)))
		sum := 0.0
		for _, p := range cf {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("cf(%d,*) sums to %v", n, sum)
		}
	}
}

func TestCFSingleReceiverAlwaysFree(t *testing.T) {
	cf := ContentionFree(1, 100, sim.NewRNG(5))
	if cf[1] != 1 || cf[0] != 0 {
		t.Errorf("single receiver: cf = %v, want [0 1]", cf)
	}
}

func TestCFTableShape(t *testing.T) {
	table := ContentionFreeTable(4, 500, sim.NewRNG(6))
	if len(table) != 4 {
		t.Fatalf("table rows = %d", len(table))
	}
	for n := 1; n <= 4; n++ {
		if len(table[n-1]) != n+1 {
			t.Errorf("row %d has %d entries, want %d", n, len(table[n-1]), n+1)
		}
	}
}

func TestContentionFreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ContentionFree(0) did not panic")
		}
	}()
	ContentionFree(0, 10, sim.NewRNG(1))
}

func TestEACDeterministicGivenSeed(t *testing.T) {
	a := EAC(3, 500, grid, sim.NewRNG(77))
	b := EAC(3, 500, grid, sim.NewRNG(77))
	if a != b {
		t.Error("EAC not deterministic for a fixed seed")
	}
}

// newTestRNG gives CDS tests a deterministic source without reimporting.
func newTestRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }
