// Package viz renders simulation topologies as ASCII maps for CLI
// output and debugging: a density grid of host positions and a summary
// of the unit-disk connectivity structure.
package viz

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/geom"
)

// Topology renders host positions on a width x height meter area as a
// character grid with the given number of columns (rows follow from the
// aspect ratio). Each cell shows its host count: '.' for none, digits
// 1-9, '+' for ten or more. The origin is the bottom-left corner, as in
// the geometry.
func Topology(points []geom.Point, width, height float64, cols int) string {
	if cols < 2 {
		cols = 2
	}
	if width <= 0 || height <= 0 {
		return "(empty area)\n"
	}
	// Terminal cells are roughly twice as tall as wide; halve the row
	// count for a visually square map.
	rows := int(float64(cols) * height / width / 2)
	if rows < 1 {
		rows = 1
	}
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, cols)
	}
	for _, p := range points {
		c := int(p.X / width * float64(cols))
		r := int(p.Y / height * float64(rows))
		c = clampInt(c, 0, cols-1)
		r = clampInt(r, 0, rows-1)
		grid[r][c]++
	}
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- { // top row = largest Y
		for c := 0; c < cols; c++ {
			switch n := grid[r][c]; {
			case n == 0:
				b.WriteByte('.')
			case n < 10:
				b.WriteByte(byte('0' + n))
			default:
				b.WriteByte('+')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ConnectivitySummary describes the unit-disk graph built on the given
// positions: component count and sizes, mean degree, and isolated hosts.
func ConnectivitySummary(points []geom.Point, radius float64) string {
	adj := analysis.UnitDiskAdjacency(points, radius)
	n := len(points)
	if n == 0 {
		return "no hosts\n"
	}
	visited := make([]bool, n)
	var sizes []int
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		comp := analysis.Component(adj, i)
		for _, v := range comp {
			visited[v] = true
		}
		sizes = append(sizes, len(comp))
	}
	degSum, isolated, largest := 0, 0, 0
	for i := range adj {
		degSum += len(adj[i])
		if len(adj[i]) == 0 {
			isolated++
		}
	}
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	return fmt.Sprintf(
		"%d hosts, %d component(s), largest %d, mean degree %.1f, %d isolated\n",
		n, len(sizes), largest, float64(degSum)/float64(n), isolated)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
