package viz_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/viz"
)

// Topology renders host positions as a density grid (bottom-left origin).
func ExampleTopology() {
	pts := []geom.Point{
		{X: 50, Y: 50}, {X: 60, Y: 55}, // two hosts, bottom-left cell
		{X: 950, Y: 950}, // one host, top-right cell
	}
	fmt.Print(viz.Topology(pts, 1000, 1000, 8))
	// Output:
	// .......1
	// ........
	// ........
	// 2.......
}
