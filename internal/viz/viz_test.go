package viz

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestTopologyPlacesHosts(t *testing.T) {
	pts := []geom.Point{
		{X: 10, Y: 10},   // bottom-left
		{X: 990, Y: 990}, // top-right
		{X: 990, Y: 985}, // same cell as above
	}
	out := Topology(pts, 1000, 1000, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 10 cols * (1000/1000) / 2
		t.Fatalf("rows = %d, want 5:\n%s", len(lines), out)
	}
	// Bottom-left host renders in the last line's first column.
	if lines[len(lines)-1][0] != '1' {
		t.Errorf("bottom-left cell = %c, want 1\n%s", lines[len(lines)-1][0], out)
	}
	// Two hosts share the top-right cell.
	if lines[0][len(lines[0])-1] != '2' {
		t.Errorf("top-right cell = %c, want 2\n%s", lines[0][len(lines[0])-1], out)
	}
}

func TestTopologyDenseCellSaturates(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.Point{X: 5, Y: 5})
	}
	out := Topology(pts, 1000, 1000, 10)
	if !strings.Contains(out, "+") {
		t.Errorf("15 hosts in one cell should render '+':\n%s", out)
	}
}

func TestTopologyDegenerateInputs(t *testing.T) {
	if out := Topology(nil, 0, 100, 10); !strings.Contains(out, "empty") {
		t.Errorf("degenerate area output: %q", out)
	}
	// Out-of-bounds points must clamp, not panic.
	out := Topology([]geom.Point{{X: -50, Y: 2000}}, 1000, 1000, 4)
	if !strings.Contains(out, "1") {
		t.Errorf("out-of-bounds host not clamped into the grid:\n%s", out)
	}
}

func TestConnectivitySummary(t *testing.T) {
	pts := []geom.Point{
		{X: 0}, {X: 400}, {X: 800}, // one chain component
		{X: 5000}, // isolated
	}
	out := ConnectivitySummary(pts, 500)
	for _, want := range []string{"4 hosts", "2 component(s)", "largest 3", "1 isolated"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
	if got := ConnectivitySummary(nil, 500); !strings.Contains(got, "no hosts") {
		t.Errorf("empty summary: %q", got)
	}
}
