// Package stats provides the small statistical toolkit the experiment
// harness uses to report uncertainty: means, standard deviations, and
// t-based 95% confidence intervals over replica means.
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SampleStd returns the sample (n-1) standard deviation; 0 for fewer
// than two values.
func SampleStd(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// t95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1-30); larger dof use the normal approximation.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% t critical value for the given
// degrees of freedom.
func TCritical95(dof int) float64 {
	if dof < 1 {
		return math.NaN()
	}
	if dof <= len(t95) {
		return t95[dof-1]
	}
	return 1.960
}

// CI95 returns the mean and the half-width of the t-based 95% confidence
// interval of the mean over independent samples. With fewer than two
// samples the half-width is 0 (no spread information).
func CI95(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	se := SampleStd(xs) / math.Sqrt(float64(n))
	return mean, TCritical95(n-1) * se
}
