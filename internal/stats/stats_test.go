package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean nonzero")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestSampleStd(t *testing.T) {
	if SampleStd([]float64{5}) != 0 {
		t.Error("single-sample std nonzero")
	}
	// Known value: {2,4,4,4,5,5,7,9} has sample std sqrt(32/7).
	got := SampleStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("std = %v, want %v", got, want)
	}
}

func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 2: 4.303, 10: 2.228, 30: 2.042, 1000: 1.960}
	for dof, want := range cases {
		if got := TCritical95(dof); got != want {
			t.Errorf("t(%d) = %v, want %v", dof, got, want)
		}
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestCI95KnownCase(t *testing.T) {
	// Three identical values: zero-width interval.
	if _, half := CI95([]float64{3, 3, 3}); half != 0 {
		t.Errorf("identical values: half = %v", half)
	}
	// Two values a, b: mean (a+b)/2, half = t(1)*std/sqrt(2).
	mean, half := CI95([]float64{0, 2})
	if mean != 1 {
		t.Errorf("mean = %v", mean)
	}
	want := 12.706 * math.Sqrt2 / math.Sqrt2 // std of {0,2} is sqrt(2)
	if math.Abs(half-want) > 1e-9 {
		t.Errorf("half = %v, want %v", half, want)
	}
}

func TestCI95ContainsMeanProperty(t *testing.T) {
	// The interval is symmetric around the mean and non-negative.
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		mean, half := CI95(xs)
		if half < 0 {
			return false
		}
		if len(xs) == 0 {
			return mean == 0
		}
		return !math.IsNaN(mean)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCI95SingleSample(t *testing.T) {
	mean, half := CI95([]float64{7})
	if mean != 7 || half != 0 {
		t.Errorf("single sample: %v ± %v", mean, half)
	}
}
