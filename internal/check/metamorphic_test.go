package check_test

import (
	"math"
	"testing"

	"repro/internal/check"
	"repro/internal/manet"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/scheme"
)

// The metamorphic layer encodes identities the paper's scheme
// definitions imply. Each is an exact equality on metrics.Summary: the
// scheme judges draw no random numbers (the per-reception uniform draw
// happens in the host layer for every scheme), so two schemes that make
// identical decisions produce identical event streams.

func runSummary(t *testing.T, cfg manet.Config) metrics.Summary {
	t.Helper()
	n, err := manet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n.Run()
}

// TestCounterInfinityEqualsFlooding: a counter threshold no reception
// count can reach never inhibits, which is flooding by definition.
func TestCounterInfinityEqualsFlooding(t *testing.T) {
	for _, static := range []bool{false, true} {
		for seed := uint64(1); seed <= 2; seed++ {
			flood := runSummary(t, matrixConfig(scheme.Flooding{}, static, seed))
			inf := runSummary(t, matrixConfig(scheme.Counter{C: math.MaxInt32}, static, seed))
			if flood != inf {
				t.Errorf("static=%v seed=%d:\n flooding %+v\n counter  %+v", static, seed, flood, inf)
			}
		}
	}
}

// TestLocationZeroEqualsFlooding: with threshold A=0 no additional-
// coverage estimate can fall below it, so the location scheme never
// inhibits either.
func TestLocationZeroEqualsFlooding(t *testing.T) {
	for _, static := range []bool{false, true} {
		for seed := uint64(1); seed <= 2; seed++ {
			flood := runSummary(t, matrixConfig(scheme.Flooding{}, static, seed))
			loc := runSummary(t, matrixConfig(scheme.Location{A: 0}, static, seed))
			if flood != loc {
				t.Errorf("static=%v seed=%d:\n flooding %+v\n location %+v", static, seed, flood, loc)
			}
		}
	}
}

// TestSeedDeterminism: the same configuration and seed reproduce the
// summary exactly; a different seed produces a different workload.
func TestSeedDeterminism(t *testing.T) {
	for _, sc := range []scheme.Scheme{scheme.Flooding{}, scheme.AdaptiveCounter{}} {
		a := runSummary(t, matrixConfig(sc, false, 1))
		b := runSummary(t, matrixConfig(sc, false, 1))
		if a != b {
			t.Errorf("%s: same seed diverged:\n %+v\n %+v", sc.Name(), a, b)
		}
		c := runSummary(t, matrixConfig(sc, false, 2))
		if a.SimulatedTime == c.SimulatedTime && a.Events == c.Events {
			t.Errorf("%s: seeds 1 and 2 produced identical runs", sc.Name())
		}
	}
}

// TestAuditTransparency: attaching the auditor must not change a single
// byte of the summary — it schedules no events and draws no randomness.
func TestAuditTransparency(t *testing.T) {
	schemes := []scheme.Scheme{
		scheme.Flooding{},
		scheme.Counter{C: 3},
		scheme.Location{A: 0.0469},
		scheme.AdaptiveCounter{},
		scheme.NeighborCoverage{},
	}
	for _, sc := range schemes {
		plain := runSummary(t, matrixConfig(sc, false, 1))
		cfg := matrixConfig(sc, false, 1)
		a := check.New()
		cfg.Audit = a
		audited := runSummary(t, cfg)
		if plain != audited {
			t.Errorf("%s: auditor perturbed the run:\n off %+v\n on  %+v", sc.Name(), plain, audited)
		}
		if err := a.Err(); err != nil {
			t.Errorf("%s: %v", sc.Name(), err)
		}
	}
}

// TestSummaryPermutationInvariance: metrics.Summarize must not depend on
// host identity — relabeling every broadcast's source under a permutation
// yields the identical aggregate.
func TestSummaryPermutationInvariance(t *testing.T) {
	cfg := matrixConfig(scheme.AdaptiveCounter{}, false, 1)
	cfg.RetainRecords = true // the permutation below needs the full record set
	n, err := manet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	recs := n.Records()
	if len(recs) == 0 {
		t.Fatal("no broadcast records")
	}
	base := metrics.Summarize(recs)
	hosts := packet.NodeID(cfg.Hosts)
	for _, rec := range recs {
		rec.ID.Source = hosts - 1 - rec.ID.Source // reverse permutation
	}
	permuted := metrics.Summarize(recs)
	if base != permuted {
		t.Errorf("summary depends on host labels:\n base     %+v\n permuted %+v", base, permuted)
	}
}
