// Package check is the runtime invariant auditor: a passive observer
// that attaches to the simulator's existing hook points (the scheduler's
// audit hook, the channel/MAC/manet pool and outcome callbacks) and
// verifies conservation laws on every event of a live run.
//
// The zero-allocation event core (pooled frames, recycled event and
// transmission records, bound-once closures) is exactly the kind of
// machinery where a use-after-release or a dropped reception corrupts
// results silently instead of crashing. The auditor turns those silent
// corruptions into reported violations:
//
//   - Packet conservation: every transmission resolves to exactly one of
//     delivered / collided / lost per in-range receiver, and the totals
//     reconcile with the channel counters in metrics.Summary.
//   - Scheduler monotonicity: event timestamps never decrease, and
//     same-instant events fire in strict scheduling (seq) order.
//   - Pool lifecycle: no double-release and no use-after-release of phy
//     transmission records, mac pending records, or manet frames,
//     tracked per record with generation counters.
//   - Neighbor-table soundness: every table entry was heard within its
//     staleness bound and is still within the drift-expanded radio
//     range of its owner.
//   - Metric sanity: RE and SRB in [0, 1], latencies non-negative,
//     per-broadcast counts consistent (t <= r, r >= 1).
//
// An Auditor is pure observation: it schedules no events, draws no
// random numbers, and mutates no simulation state, so an audited run
// produces a byte-identical metrics.Summary to an unaudited one
// (asserted by the metamorphic suite in this package). When no auditor
// is attached every hook point is a nil check, so the disabled cost is
// zero allocations and a single predictable branch per hook.
package check

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// DefaultMaxViolations bounds how many violations an Auditor records in
// full detail; further violations are counted but not stored, so a
// systemically broken run cannot exhaust memory with diagnostics.
const DefaultMaxViolations = 100

// Violation is one observed invariant breach, stamped with the
// simulated time it was detected at so it can be lined up against an
// internal/trace timeline of the same run.
type Violation struct {
	At        sim.Time
	Invariant string // which conservation law broke (e.g. "pool-lifecycle")
	Detail    string
}

// String formats the violation for logs and test failures.
func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At, v.Invariant, v.Detail)
}

// Invariant names used in Violation.Invariant.
const (
	InvScheduler    = "scheduler-monotonicity"
	InvPool         = "pool-lifecycle"
	InvConservation = "packet-conservation"
	InvNeighbor     = "neighbor-soundness"
	InvMobility     = "mobility-bound"
	InvMetrics      = "metric-sanity"
	InvShard        = "shard-barrier"
)

// recState tracks one pooled record's lifecycle. The generation counter
// increments on every acquire, so a violation can report which tenancy
// of a recycled record broke the contract.
type recState struct {
	pool string
	live bool
	gen  uint64
}

// Auditor verifies runtime invariants over one simulation run. Build it
// with New, attach it via manet.Config.Audit (or the individual layer
// SetAudit hooks), and read Violations or Err after the run. Like the
// simulation it observes, an Auditor is single-use and not safe for
// concurrent use; replica-level parallelism uses one Auditor per
// replica.
type Auditor struct {
	max        int
	violations []Violation
	total      int

	// Scheduler monotonicity state.
	haveEvent bool
	lastAt    sim.Time
	lastSeq   uint64

	// Pool lifecycle: record identity -> state.
	recs map[any]*recState

	// Packet conservation counters. inflightCopies tracks copies of
	// transmissions whose airtime has not ended yet: a run stopped at its
	// deadline legitimately leaves transmissions (HELLO beacons, tail-end
	// rebroadcasts) in flight, and their copies are excluded from the
	// end-of-run reconciliation rather than reported as unaccounted.
	transmissions  int
	inRangeCopies  int
	inflightCopies int
	delivered      int
	collided       int
	lost           int

	// Cross-shard barrier monotonicity state.
	haveBarrier bool
	lastBarrier sim.Time

	summaryChecked bool
}

// New returns an empty auditor recording up to DefaultMaxViolations
// violations in detail.
func New() *Auditor {
	return &Auditor{max: DefaultMaxViolations, recs: make(map[any]*recState)}
}

// SetMaxViolations overrides how many violations are stored in detail
// (further ones are only counted). n < 1 panics.
func (a *Auditor) SetMaxViolations(n int) {
	if n < 1 {
		panic("check: max violations must be positive")
	}
	a.max = n
}

// report records one violation, respecting the detail cap.
func (a *Auditor) report(at sim.Time, invariant, format string, args ...any) {
	a.total++
	if len(a.violations) >= a.max {
		return
	}
	a.violations = append(a.violations, Violation{
		At:        at,
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Violations returns the recorded violations in detection order. The
// slice is the auditor's storage; callers must not modify it.
func (a *Auditor) Violations() []Violation { return a.violations }

// Total returns how many violations were detected, including any beyond
// the detail cap.
func (a *Auditor) Total() int { return a.total }

// Ok reports whether no invariant was violated.
func (a *Auditor) Ok() bool { return a.total == 0 }

// Err returns nil when no invariant was violated, or an error listing
// every recorded violation.
func (a *Auditor) Err() error {
	if a.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s)", a.total)
	for _, v := range a.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if a.total > len(a.violations) {
		fmt.Fprintf(&b, "\n  ... and %d more", a.total-len(a.violations))
	}
	return errors.New(b.String())
}

// --- Scheduler monotonicity (sim.Scheduler.SetAuditHook) ---

// AuditEvent observes one event firing. The scheduler contract is that
// timestamps never decrease and that same-instant events fire in strict
// scheduling order, so seq must strictly increase within one instant.
func (a *Auditor) AuditEvent(at sim.Time, seq uint64) {
	if a.haveEvent {
		switch {
		case at < a.lastAt:
			a.report(at, InvScheduler, "clock moved backwards: event at %v after %v", at, a.lastAt)
		case at == a.lastAt && seq <= a.lastSeq:
			a.report(at, InvScheduler, "same-instant FIFO broken: seq %d fired after seq %d", seq, a.lastSeq)
		}
	}
	a.haveEvent = true
	a.lastAt = at
	a.lastSeq = seq
}

// --- Cross-shard time monotonicity (manet sharded engine barriers) ---

// AuditShardBarrier observes one conservative barrier of the sharded
// engine. Barriers must advance monotonically and the merged clock must
// never pass the barrier it just ran to.
func (a *Auditor) AuditShardBarrier(now, barrier sim.Time) {
	if a.haveBarrier && barrier < a.lastBarrier {
		a.report(now, InvShard, "barrier %v precedes previous barrier %v", barrier, a.lastBarrier)
	}
	a.haveBarrier = true
	a.lastBarrier = barrier
	if now > barrier {
		a.report(now, InvShard, "clock %v passed barrier %v", now, barrier)
	}
}

// AuditShardHead checks one shard wheel's head event against the merged
// clock at a barrier: a head in the past means the merged pop skipped
// an event that was due.
func (a *Auditor) AuditShardHead(now sim.Time, shard int, head sim.Time) {
	if head < now {
		a.report(now, InvShard, "shard %d head %v lags clock %v", shard, head, now)
	}
}

// --- Pool lifecycle (phy/mac/manet acquire-release-use hooks) ---

// state returns (creating if needed) the lifecycle record for rec.
func (a *Auditor) state(pool string, rec any) *recState {
	st, ok := a.recs[rec]
	if !ok {
		st = &recState{pool: pool}
		a.recs[rec] = st
	}
	return st
}

// AuditAcquire observes a pooled record being handed out (freshly
// allocated or recycled). Acquiring a record that is already live means
// the pool handed the same record to two owners.
func (a *Auditor) AuditAcquire(at sim.Time, pool string, rec any) {
	st := a.state(pool, rec)
	if st.live {
		a.report(at, InvPool, "%s: record acquired while still live (gen %d)", pool, st.gen)
	}
	st.live = true
	st.gen++
}

// AuditRelease observes a record returning to its pool. Releasing a
// record that is not live is a double release.
func (a *Auditor) AuditRelease(at sim.Time, pool string, rec any) {
	st := a.state(pool, rec)
	if !st.live {
		a.report(at, InvPool, "%s: double release (gen %d)", pool, st.gen)
	}
	st.live = false
}

// AuditUse observes a record being dereferenced at a point where it must
// be live (a frame going on the air, a transmission record finishing, a
// pending record starting). Records the auditor never saw acquired are
// ignored: layers without pooling (control frames, routing frames) pass
// through the same use points.
func (a *Auditor) AuditUse(at sim.Time, pool string, rec any) {
	st, ok := a.recs[rec]
	if !ok {
		return
	}
	if !st.live {
		a.report(at, InvPool, "%s: use after release (gen %d)", pool, st.gen)
	}
}

// LiveRecords returns how many tracked records are currently live
// (acquired and not released) — in-flight state at the moment of the
// call, useful for leak assertions in tests.
func (a *Auditor) LiveRecords() int {
	n := 0
	for _, st := range a.recs {
		if st.live {
			n++
		}
	}
	return n
}

// --- Packet conservation (phy.Channel.SetAudit) ---

// AuditTransmit observes a frame going on the air with the given number
// of in-range receivers.
func (a *Auditor) AuditTransmit(at sim.Time, sender, receivers int) {
	if receivers < 0 {
		a.report(at, InvConservation, "transmission from radio %d with negative receiver count %d", sender, receivers)
		return
	}
	a.transmissions++
	a.inRangeCopies += receivers
	a.inflightCopies += receivers
}

// AuditTransmitEnd observes a transmission's airtime ending, after every
// copy resolved to an outcome.
func (a *Auditor) AuditTransmitEnd(at sim.Time, sender, receivers int) {
	a.inflightCopies -= receivers
	if a.inflightCopies < 0 {
		a.report(at, InvConservation, "transmission from radio %d ended %d more copies than started", sender, -a.inflightCopies)
		a.inflightCopies = 0
	}
}

// AuditDelivered observes one in-range copy arriving intact.
func (a *Auditor) AuditDelivered(at sim.Time, receiver int) { a.delivered++ }

// AuditCollided observes one in-range copy destroyed by overlap.
func (a *Auditor) AuditCollided(at sim.Time, receiver int) { a.collided++ }

// AuditLost observes one in-range copy dropped by the random loss model.
func (a *Auditor) AuditLost(at sim.Time, receiver int) { a.lost++ }

// --- Neighbor-table soundness (manet periodic sweep) ---

// AuditNeighborEntry checks one neighbor-table entry against ground
// truth: the entry must have been refreshed within its staleness bound
// (age <= bound), and the announced neighbor must still be within
// maxDist of the owner — the radio radius inflated by the maximum
// distance both hosts can have drifted since the HELLO was actually
// in range. The caller computes dist and maxDist from live positions.
func (a *Auditor) AuditNeighborEntry(at sim.Time, owner, id packet.NodeID, age, bound sim.Duration, dist, maxDist float64) {
	if age < 0 {
		a.report(at, InvNeighbor, "%v's entry for %v heard in the future (age %v)", owner, id, age)
		return
	}
	if age > bound {
		a.report(at, InvNeighbor, "%v's entry for %v stale: age %v exceeds bound %v", owner, id, age, bound)
	}
	if dist > maxDist {
		a.report(at, InvNeighbor, "%v's entry for %v unreachable: %.1fm apart, drift bound %.1fm", owner, id, dist, maxDist)
	}
}

// AuditMoverSpeed checks one host's instantaneous speed against the
// configured mobility bound. The bound is load-bearing, not cosmetic:
// the channel's spatial index converts it into a drift budget that
// decides how long a position snapshot stays valid, so a mobility model
// that exceeds it silently serves stale range queries. A tiny epsilon
// absorbs float round-off in speed reconstruction (hypot of velocity
// components).
func (a *Auditor) AuditMoverSpeed(at sim.Time, id packet.NodeID, speed, bound float64) {
	const eps = 1e-9
	if speed < 0 {
		a.report(at, InvMobility, "%v: negative speed %.3f m/s", id, speed)
		return
	}
	if speed > bound+eps {
		a.report(at, InvMobility, "%v: speed %.3f m/s exceeds configured bound %.3f m/s", id, speed, bound)
	}
}

// --- Metric sanity and end-of-run reconciliation (manet.summarize) ---

// AuditRecord checks one finished per-broadcast record: every
// transmitter first received the packet (t <= r), the source holds it
// (r >= 1), and the derived ratios and latency are in range.
func (a *Auditor) AuditRecord(at sim.Time, rec *metrics.BroadcastRecord) {
	if rec.Received < 1 {
		a.report(at, InvMetrics, "%v: received count %d < 1 (source holds the packet)", rec.ID, rec.Received)
	}
	if rec.Reachable < 1 {
		a.report(at, InvMetrics, "%v: reachable count %d < 1 (source is reachable from itself)", rec.ID, rec.Reachable)
	}
	if rec.Transmitted > rec.Received {
		a.report(at, InvMetrics, "%v: transmitted %d exceeds received %d", rec.ID, rec.Transmitted, rec.Received)
	}
	if re := rec.RE(); re < 0 || re > 1 {
		a.report(at, InvMetrics, "%v: RE %g outside [0, 1]", rec.ID, re)
	}
	if srb := rec.SRB(); srb < 0 || srb > 1 {
		a.report(at, InvMetrics, "%v: SRB %g outside [0, 1]", rec.ID, srb)
	}
	if lat := rec.Latency(); lat < 0 {
		a.report(at, InvMetrics, "%v: negative latency %v", rec.ID, lat)
	}
}

// AuditSummary reconciles the run summary against the per-copy
// accounting: every in-range copy must have resolved to exactly one
// outcome, and the channel counters the summary reports must equal the
// outcomes the auditor observed. lost is the channel's own count of
// copies dropped by the loss model (not surfaced in the Summary).
func (a *Auditor) AuditSummary(at sim.Time, sum metrics.Summary, lost int) {
	a.summaryChecked = true
	if got := a.delivered + a.collided + a.lost; got != a.inRangeCopies-a.inflightCopies {
		a.report(at, InvConservation,
			"copies unaccounted for: %d in-range copies (%d still in flight), %d resolved (%d delivered + %d collided + %d lost)",
			a.inRangeCopies, a.inflightCopies, got, a.delivered, a.collided, a.lost)
	}
	if sum.Transmissions != a.transmissions {
		a.report(at, InvConservation, "summary reports %d transmissions, audited %d", sum.Transmissions, a.transmissions)
	}
	if sum.Deliveries != a.delivered {
		a.report(at, InvConservation, "summary reports %d deliveries, audited %d", sum.Deliveries, a.delivered)
	}
	if sum.Collisions != a.collided {
		a.report(at, InvConservation, "summary reports %d collisions, audited %d", sum.Collisions, a.collided)
	}
	if lost != a.lost {
		a.report(at, InvConservation, "channel reports %d lost copies, audited %d", lost, a.lost)
	}
	if sum.MeanRE < 0 || sum.MeanRE > 1 {
		a.report(at, InvMetrics, "MeanRE %g outside [0, 1]", sum.MeanRE)
	}
	if sum.MeanSRB < 0 || sum.MeanSRB > 1 {
		a.report(at, InvMetrics, "MeanSRB %g outside [0, 1]", sum.MeanSRB)
	}
	if sum.MeanLatency < 0 || sum.LatencyP50 < 0 || sum.LatencyP95 < 0 {
		a.report(at, InvMetrics, "negative latency aggregate: mean %v p50 %v p95 %v",
			sum.MeanLatency, sum.LatencyP50, sum.LatencyP95)
	}
	if sum.HelloSent < 0 || sum.Broadcasts < 0 {
		a.report(at, InvMetrics, "negative counter: hello %d broadcasts %d", sum.HelloSent, sum.Broadcasts)
	}
}

// SummaryChecked reports whether AuditSummary ran (i.e. the audited run
// actually reached its end-of-run reconciliation).
func (a *Auditor) SummaryChecked() bool { return a.summaryChecked }

// ResumeConservation seeds the packet-conservation counters with the
// traffic a restored checkpoint already accounted for, so an auditor
// attached to a resumed run reconciles against the full-run summary.
// delivered, collided, and lost are the copies that resolved before the
// checkpoint; inflight counts the copies of restored transmissions still
// on the air, whose outcomes (and AuditTransmitEnd) the auditor will
// observe after resume without having seen their AuditTransmit.
func (a *Auditor) ResumeConservation(transmissions, delivered, collided, lost, inflight int) {
	a.transmissions += transmissions
	a.delivered += delivered
	a.collided += collided
	a.lost += lost
	a.inflightCopies += inflight
	a.inRangeCopies += delivered + collided + lost + inflight
}
