package check_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/manet"
	"repro/internal/scheme"
)

// matrixConfig is the audited matrix's base configuration: large enough
// for real contention, collisions, and neighbor churn, small enough that
// thirty audited runs stay inside a normal test budget.
func matrixConfig(sc scheme.Scheme, static bool, seed uint64) manet.Config {
	return manet.Config{
		MapUnits: 3,
		Hosts:    40,
		Requests: 10,
		Scheme:   sc,
		Static:   static,
		Seed:     seed,
	}
}

func runAudited(t *testing.T, cfg manet.Config) *check.Auditor {
	t.Helper()
	a := check.New()
	cfg.Audit = a
	n, err := manet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if !a.SummaryChecked() {
		t.Fatal("end-of-run summary reconciliation did not run")
	}
	return a
}

// TestMatrixAudited runs the invariant auditor over the full 5-scheme x
// 3-seed x {static, mobile} matrix and requires zero violations. This is
// the standing safety net for the zero-allocation event core: any pool
// misuse, dropped reception copy, scheduler ordering break, or stale
// neighbor entry in any scheme surfaces here.
func TestMatrixAudited(t *testing.T) {
	schemes := []scheme.Scheme{
		scheme.Flooding{},
		scheme.Counter{C: 3},
		scheme.Location{A: 0.0469},
		scheme.AdaptiveCounter{},
		scheme.NeighborCoverage{},
	}
	for _, sc := range schemes {
		for _, static := range []bool{false, true} {
			for seed := uint64(1); seed <= 3; seed++ {
				sc, static, seed := sc, static, seed
				name := fmt.Sprintf("%s/static=%v/seed=%d", sc.Name(), static, seed)
				t.Run(name, func(t *testing.T) {
					runAudited(t, matrixConfig(sc, static, seed))
				})
			}
		}
	}
}

// TestMatrixAuditedVariants extends the matrix across the simulator's
// feature switches, so every invariant is also exercised under the loss
// model, the capture effect, the repair extension, dynamic HELLO, group
// and waypoint mobility, the legacy heap scheduler, the linear-scan
// channel, and the ideal-HELLO ablation.
func TestMatrixAuditedVariants(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*manet.Config)
	}{
		{"loss", func(c *manet.Config) { c.LossRate = 0.2 }},
		{"capture", func(c *manet.Config) { c.CaptureRatio = 10 }},
		{"no-collisions", func(c *manet.Config) { c.DisableCollisions = true }},
		{"repair", func(c *manet.Config) { c.Repair = true }},
		{"dynamic-hello", func(c *manet.Config) { c.HelloMode = manet.HelloDynamic }},
		{"groups", func(c *manet.Config) { c.Groups = 4 }},
		{"waypoint", func(c *manet.Config) { c.Mobility = manet.MobilityWaypoint }},
		{"heap-scheduler", func(c *manet.Config) { c.DisableLadderQueue = true }},
		{"linear-channel", func(c *manet.Config) { c.DisableSpatialIndex = true }},
		{"global-interference", func(c *manet.Config) { c.DisableInterferenceIndex = true }},
		{"ideal-hello", func(c *manet.Config) { c.IdealHello = true }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := matrixConfig(scheme.AdaptiveCounter{}, false, 1)
			v.mutate(&cfg)
			runAudited(t, cfg)
		})
	}
}
