package check_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

func wantViolations(t *testing.T, a *check.Auditor, n int, invariant string) {
	t.Helper()
	if a.Total() != n {
		t.Fatalf("Total() = %d, want %d (violations: %v)", a.Total(), n, a.Violations())
	}
	if n == 0 {
		if !a.Ok() || a.Err() != nil {
			t.Fatalf("clean auditor reports Ok=%v Err=%v", a.Ok(), a.Err())
		}
		return
	}
	if a.Ok() {
		t.Fatal("Ok() true despite violations")
	}
	for _, v := range a.Violations() {
		if v.Invariant != invariant {
			t.Fatalf("violation %v, want invariant %q", v, invariant)
		}
	}
}

func TestAuditEventAccepts(t *testing.T) {
	a := check.New()
	a.AuditEvent(sim.Time(0), 1)
	a.AuditEvent(sim.Time(0), 2)  // same instant, increasing seq
	a.AuditEvent(sim.Time(10), 1) // later instant may reuse small seq
	a.AuditEvent(sim.Time(10), 7)
	a.AuditEvent(sim.Time(11), 3)
	wantViolations(t, a, 0, "")
}

func TestAuditEventClockBackwards(t *testing.T) {
	a := check.New()
	a.AuditEvent(sim.Time(10), 1)
	a.AuditEvent(sim.Time(9), 2)
	wantViolations(t, a, 1, check.InvScheduler)
}

func TestAuditEventSameInstantFIFO(t *testing.T) {
	a := check.New()
	a.AuditEvent(sim.Time(10), 5)
	a.AuditEvent(sim.Time(10), 5) // replay
	a.AuditEvent(sim.Time(10), 4) // regression
	wantViolations(t, a, 2, check.InvScheduler)
}

func TestPoolLifecycleClean(t *testing.T) {
	a := check.New()
	rec := new(int)
	a.AuditAcquire(0, "p", rec)
	a.AuditUse(1, "p", rec)
	if got := a.LiveRecords(); got != 1 {
		t.Fatalf("LiveRecords = %d, want 1", got)
	}
	a.AuditRelease(2, "p", rec)
	a.AuditAcquire(3, "p", rec) // second tenancy
	a.AuditRelease(4, "p", rec)
	if got := a.LiveRecords(); got != 0 {
		t.Fatalf("LiveRecords = %d, want 0", got)
	}
	wantViolations(t, a, 0, "")
}

func TestPoolDoubleAcquire(t *testing.T) {
	a := check.New()
	rec := new(int)
	a.AuditAcquire(0, "p", rec)
	a.AuditAcquire(1, "p", rec)
	wantViolations(t, a, 1, check.InvPool)
}

func TestPoolDoubleRelease(t *testing.T) {
	a := check.New()
	rec := new(int)
	a.AuditAcquire(0, "p", rec)
	a.AuditRelease(1, "p", rec)
	a.AuditRelease(2, "p", rec)
	wantViolations(t, a, 1, check.InvPool)
}

func TestPoolUseAfterRelease(t *testing.T) {
	a := check.New()
	rec := new(int)
	a.AuditAcquire(0, "p", rec)
	a.AuditRelease(1, "p", rec)
	a.AuditUse(2, "p", rec)
	wantViolations(t, a, 1, check.InvPool)
}

func TestPoolUseOfUntrackedRecordIgnored(t *testing.T) {
	a := check.New()
	a.AuditUse(0, "p", new(int)) // e.g. an unpooled control frame
	wantViolations(t, a, 0, "")
}

func TestAuditTransmitNegativeReceivers(t *testing.T) {
	a := check.New()
	a.AuditTransmit(0, 3, -1)
	wantViolations(t, a, 1, check.InvConservation)
}

func TestAuditTransmitEndUnderflow(t *testing.T) {
	a := check.New()
	a.AuditTransmit(0, 3, 2)
	a.AuditTransmitEnd(1, 3, 5) // ends more copies than ever started
	wantViolations(t, a, 1, check.InvConservation)
}

func TestAuditNeighborEntry(t *testing.T) {
	a := check.New()
	// Fresh, in range: clean. age == bound is legal (the expiry event
	// fires at exactly that instant, after the sweep observes it).
	a.AuditNeighborEntry(0, 1, 2, sim.Second, 2*sim.Second, 400, 500)
	a.AuditNeighborEntry(0, 1, 2, 2*sim.Second, 2*sim.Second, 500, 500)
	wantViolations(t, a, 0, "")

	a.AuditNeighborEntry(0, 1, 2, -sim.Second, 2*sim.Second, 0, 500) // heard in the future
	wantViolations(t, a, 1, check.InvNeighbor)

	b := check.New()
	b.AuditNeighborEntry(0, 1, 2, 3*sim.Second, 2*sim.Second, 400, 500) // stale
	b.AuditNeighborEntry(0, 1, 2, sim.Second, 2*sim.Second, 501, 500)   // out of range
	wantViolations(t, b, 2, check.InvNeighbor)
}

func TestAuditRecord(t *testing.T) {
	bid := packet.BroadcastID{Source: 1, Seq: 1}

	good := metrics.NewBroadcastRecord(bid, 0, 10)
	good.Received = 8
	good.Transmitted = 5
	a := check.New()
	a.AuditRecord(0, good)
	wantViolations(t, a, 0, "")

	// A record nothing ever received (Received 0 contradicts "the source
	// holds the packet") with an impossible transmit count.
	bad := metrics.NewBroadcastRecord(bid, 0, 0)
	bad.Transmitted = 1
	b := check.New()
	b.AuditRecord(0, bad)
	if b.Ok() {
		t.Fatal("no violations for inconsistent record")
	}
	for _, v := range b.Violations() {
		if v.Invariant != check.InvMetrics {
			t.Fatalf("violation %v, want invariant %q", v, check.InvMetrics)
		}
	}
}

func TestAuditSummaryClean(t *testing.T) {
	a := check.New()
	a.AuditTransmit(0, 0, 2)
	a.AuditDelivered(1, 1)
	a.AuditCollided(1, 2)
	a.AuditTransmitEnd(1, 0, 2)
	a.AuditTransmit(2, 1, 3) // still in flight at summary time
	if a.SummaryChecked() {
		t.Fatal("SummaryChecked before AuditSummary")
	}
	a.AuditSummary(3, metrics.Summary{Transmissions: 2, Deliveries: 1, Collisions: 1}, 0)
	if !a.SummaryChecked() {
		t.Fatal("SummaryChecked false after AuditSummary")
	}
	wantViolations(t, a, 0, "")
}

func TestAuditSummaryMismatches(t *testing.T) {
	a := check.New()
	a.AuditTransmit(0, 0, 2)
	a.AuditDelivered(1, 1)
	a.AuditTransmitEnd(1, 0, 2) // second copy vanished without an outcome
	a.AuditSummary(2, metrics.Summary{Transmissions: 5, Deliveries: 5, Collisions: 5}, 5)
	// copies unaccounted + transmissions + deliveries + collisions + lost.
	wantViolations(t, a, 5, check.InvConservation)
}

func TestAuditSummarySanity(t *testing.T) {
	a := check.New()
	a.AuditSummary(0, metrics.Summary{
		MeanRE:      1.5,
		MeanSRB:     -0.1,
		MeanLatency: -sim.Second,
		HelloSent:   -1,
	}, 0)
	wantViolations(t, a, 4, check.InvMetrics)
}

func TestViolationCapAndErr(t *testing.T) {
	a := check.New()
	a.SetMaxViolations(2)
	for i := 0; i < 5; i++ {
		a.AuditTransmit(sim.Time(i), 0, -1)
	}
	if a.Total() != 5 {
		t.Fatalf("Total = %d, want 5", a.Total())
	}
	if len(a.Violations()) != 2 {
		t.Fatalf("stored %d violations, want 2", len(a.Violations()))
	}
	err := a.Err()
	if err == nil {
		t.Fatal("Err() nil despite violations")
	}
	if !strings.Contains(err.Error(), "and 3 more") {
		t.Fatalf("Err() = %q, want overflow note", err)
	}
	if s := a.Violations()[0].String(); !strings.Contains(s, check.InvConservation) {
		t.Fatalf("Violation.String() = %q, want invariant name", s)
	}
}

func TestSetMaxViolationsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for SetMaxViolations(0)")
		}
	}()
	check.New().SetMaxViolations(0)
}
