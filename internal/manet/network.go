package manet

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"time"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/nodeset"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/pdes"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Network is one fully assembled simulation instance. Build it with New,
// run it once with Run or RunContext. A Network is single-use and its
// API is single-threaded; the sharded engine's internal worker pool is
// invisible at this level, and replica parallelism belongs above it (see
// the experiment package).
type Network struct {
	cfg    Config
	sched  *sim.Scheduler
	ch     *phy.Channel
	area   mobility.Map
	hosts  []*host
	engine Engine // resolved engine (never EngineAuto)
	shards int    // resolved shard count, 0 when sequential
	pool   *pdes.Pool

	// DeliveryHook, if set before Run, is invoked once per (broadcast,
	// host) when the host first obtains the packet — including the source
	// at origination. Examples and tests use it to observe per-host
	// dissemination (e.g. "did the route request reach the destination").
	DeliveryHook func(id packet.BroadcastID, host packet.NodeID)

	// Tracer, if set before Run, records the per-broadcast event
	// timeline (originations, deliveries, duplicates, transmissions,
	// inhibit decisions, collision-garbled copies).
	Tracer *trace.Recorder

	// Progress, if set before Run, receives one line per simulated
	// second reporting the clock, executed events, and wall-clock event
	// rate. It is pure output — written from the scheduler's tick hook —
	// so it cannot affect results.
	Progress io.Writer

	// CheckpointEvery and CheckpointHook, if both set before Run, invoke
	// the hook at the first barrier at or past each multiple of
	// CheckpointEvery (never at the final barrier — the run is complete
	// there, so there is nothing left to resume). Barriers sit between
	// events with every pending event strictly in the future, which is
	// the instant Checkpoint serializes. A hook error aborts the run.
	CheckpointEvery sim.Duration
	CheckpointHook  func(now sim.Time) error

	// Telemetry plumbing (cfg.Telemetry): the collector plus the scheme
	// decision counters the hosts bump. All access is gated on obs !=
	// nil, so an uninstrumented run pays one pointer test per decision.
	obs            *obs.Collector
	obsProceedInit obs.CounterID
	obsInhibitInit obs.CounterID
	obsProceedDup  obs.CounterID
	obsInhibitDup  obs.CounterID

	// Invariant auditor plumbing (cfg.Audit): the auditor itself plus the
	// mobility speed bound the neighbor-soundness sweep uses to expand the
	// radio radius for drift since a HELLO was heard. All hot-path access
	// is gated on audit != nil, so an unaudited run pays one pointer test.
	audit      *check.Auditor
	auditSpeed float64 // fastest possible host speed, m/s

	// Scratch reused by reachableFrom and the other unit-disk queries so
	// per-origination bookkeeping does not allocate.
	bfsVisited []bool
	bfsStack   []int
	nbrScratch []int

	// Object pools (single-threaded, so plain slices): scratch bitsets
	// for the neighbor-coverage judges, broadcast frames for the
	// rebroadcast path, and HELLO beacons (receiver tables copy the
	// announced set during OnHello, so a beacon can be recycled — slice
	// capacities intact — the moment its transmission completes).
	setPool   []*nodeset.Set
	framePool []*packet.Frame
	helloPool []*packet.Frame

	// Legacy map-backed bookkeeping (cfg.DisableDenseState): records keyed
	// by broadcast id, all retained until summarize, iterated in arrival
	// order via order.
	records map[packet.BroadcastID]*metrics.BroadcastRecord
	order   []packet.BroadcastID

	// Dense bookkeeping (the default): records live in an arena ordered by
	// origination. The broadcast with Seq s sits at recs[s-1-recBase];
	// recOpen counts the references still holding it open (the source's
	// in-flight transmission plus every undecided pendingRebroadcast).
	// When fold is set, foldFront folds the arrival-order prefix of closed
	// records into stream and releases it, so live state is O(active
	// broadcasts) instead of O(all broadcasts ever issued); recBase counts
	// the records released that way.
	recs    []metrics.BroadcastRecord
	recOpen []int32
	recBase uint32
	stream  metrics.Stream
	fold    bool

	// Parallel barrier execution (see parallel.go): parallelOK records
	// that the shard wheels hold exclusively host-local turn timers
	// (slab movers), which is what licenses draining them concurrently;
	// pstats accumulates the per-window accounting exported through obs.
	parallelOK  bool
	pstats      ParallelStats
	drainDurs   []time.Duration
	shardLabels []pprof.LabelSet

	// Speculative-window state (see speculate.go): specOpen is true only
	// while lanes are running, and routes record notes into the per-lane
	// journals and pool traffic into the per-lane pools; specAssigned
	// records the one-time band assignment; specFails/specSkip implement
	// the adaptive backoff after rolled-back windows.
	specOpen     bool
	specAssigned bool
	specFails    uint
	specSkip     int
	specJournals []recJournal
	specFrames   [][]*packet.Frame
	specSets     [][]*nodeset.Set
	specExtract  [][]*sim.Event
	specMergeIdx []int // scratch for the journal k-way merge

	// specCk is the pooled micro-checkpoint document: every speculative
	// segment re-snapshots into the same backing arrays (resetCheckpoint
	// truncates, snapshotInto refills), so steady-state segments allocate
	// nothing at the document level. digestCache memoizes the
	// configuration digest the snapshot stamps into each document.
	specCk      snapshot.Checkpoint
	digestCache string

	// Workload originations as a pre-sized Runner slab, so checkpointing
	// can enumerate the not-yet-fired requests (a closure could not be
	// re-described). resumed marks a network rebuilt by RestoreNetwork:
	// its RunContext skips workload construction — the restored state
	// already contains the armed originations and HELLO timers.
	originations []originationEvent
	resumed      bool

	helloSent        int
	repairsRequested int
	repairsDelivered int
	seq              uint32
	endTime          sim.Time
	ran              bool
}

// originationEvent is one workload broadcast request, armed as a Runner
// so a checkpoint can enumerate pending requests by descriptor. ev is
// the armed handle; nil once fired.
type originationEvent struct {
	n   *Network
	src int32
	ev  *sim.Event
}

// RunEvent fires the origination.
func (o *originationEvent) RunEvent() {
	o.ev = nil
	o.n.originate(o.n.hosts[o.src])
}

// New builds a network from cfg (after defaulting); it returns an error
// for inconsistent configurations.
func New(cfg Config) (*Network, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	engine, shards, err := cfg.resolveEngine()
	if err != nil {
		return nil, err // unreachable after Validate; kept for clarity
	}
	sched := sim.NewScheduler()
	if cfg.DisableLadderQueue {
		sched = sim.NewHeapScheduler()
	}
	n := &Network{
		cfg:    cfg,
		sched:  sched,
		ch:     phy.NewChannel(sched, cfg.Timing, cfg.Radius),
		area:   mobility.NewSquareMap(cfg.MapUnits, cfg.UnitMeters),
		engine: engine,
		shards: shards,
	}
	if engine == EngineSharded || engine == EngineSpeculative {
		n.pool = pdes.NewPool(shards)
		n.ch.SetPool(n.pool)
		sched.ConfigureShards(shards, sim.Second)
	}
	if cfg.DisableDenseState {
		n.records = make(map[packet.BroadcastID]*metrics.BroadcastRecord, cfg.Requests)
	} else {
		// Folding is off when records must survive the run: RetainRecords
		// by request, Repair because a repaired delivery can reopen a
		// broadcast long after its best-effort wave completed.
		n.fold = !cfg.RetainRecords && !cfg.Repair
	}
	n.ch.DisableCollisions = cfg.DisableCollisions
	n.ch.DisableIndex = cfg.DisableSpatialIndex
	n.ch.DisableInterference = cfg.DisableInterferenceIndex
	if cfg.CaptureRatio > 0 {
		n.ch.SetCapture(cfg.CaptureRatio)
	}
	if cfg.LossRate > 0 {
		n.ch.SetLoss(cfg.LossRate, sim.NewRNG(cfg.Seed).Fork(5))
	}
	root := sim.NewRNG(cfg.Seed)
	moveRNG := root.Fork(1)
	macRNG := root.Fork(2)
	hostRNG := root.Fork(3)

	var groups []*mobility.Group
	if cfg.Groups > 0 {
		gcfg := cfg.groupConfig()
		groups = make([]*mobility.Group, cfg.Groups)
		for gi := range groups {
			groups[gi] = mobility.NewGroup(sched, n.area, gcfg, moveRNG.Fork(1000+uint64(gi)))
		}
	}

	// Declare how fast hosts can move so the channel's spatial index can
	// amortize snapshot rebuilds over a drift budget instead of
	// re-snapshotting every radio at every distinct timestamp.
	// Config.MaxSpeedMPS is the single source of truth for the bound; the
	// auditor's per-tick mover sweep checks every host against the same
	// number.
	maxSpeed := cfg.MaxSpeedMPS()
	n.ch.SetMaxSpeed(maxSpeed)
	if cfg.Audit != nil {
		n.audit = cfg.Audit
		n.auditSpeed = maxSpeed
		sched.SetAuditHook(cfg.Audit.AuditEvent)
		n.ch.SetAudit(cfg.Audit)
	}

	if engine == EngineSharded || engine == EngineSpeculative {
		n.buildHostsSharded(groups, moveRNG, macRNG, hostRNG)
		if cfg.Telemetry != nil {
			n.observe(cfg.Telemetry)
		}
		return n, nil
	}
	n.hosts = make([]*host, cfg.Hosts)
	for i := range n.hosts {
		h := &host{
			id:    packet.NodeID(i),
			net:   n,
			dedup: packet.NewDedupTable(),
			rng:   hostRNG.Fork(uint64(i)),
			lane:  -1,
		}
		if cfg.DisableDenseState {
			h.pending = make(map[packet.BroadcastID]*pendingRebroadcast)
		}
		switch {
		case cfg.Groups > 0:
			h.mover = groups[i%cfg.Groups].NewMember(moveRNG.Fork(uint64(i)))
		case len(cfg.Placement) > 0 && cfg.Static:
			h.mover = mobility.NewStaticRoamer(sched, n.area, cfg.Placement[i])
		case cfg.Static:
			h.mover = mobility.NewStaticRoamer(sched, n.area, randomPoint(moveRNG.Fork(uint64(i)), n.area))
		case cfg.Mobility == MobilityWaypoint:
			wcfg := mobility.DefaultWaypointConfig(cfg.MaxSpeedKMH)
			if cfg.WaypointPause > 0 {
				wcfg.PauseTime = cfg.WaypointPause
			}
			h.mover = mobility.NewWaypoint(sched, n.area, wcfg, moveRNG.Fork(uint64(i)))
		default:
			h.mover = mobility.NewRoamer(sched, n.area,
				mobility.DefaultConfig(cfg.MaxSpeedKMH), moveRNG.Fork(uint64(i)))
		}
		h.table = neighbor.NewDenseTable(h.id, sched, cfg.ExpiryIntervals, cfg.Hosts)
		h.mac = mac.New(sched, n.ch, h.mover, macRNG.Fork(uint64(i)))
		h.mac.SetAddr(h.id)
		h.mac.Receiver = h
		h.mac.GarbledReceiver = h
		// The hosts never read a mac.Pending handle after its frame
		// completed or was cancelled, so the MAC may recycle the records.
		h.mac.SetPendingPool(true)
		if cfg.Audit != nil {
			h.mac.SetAudit(cfg.Audit)
		}
		h.helloTx.h = h
		// The unit-disk query paths (reachableFrom, idealHelloDeliver)
		// identify hosts by radio index, which holds because radios are
		// attached in host order.
		if h.mac.Radio() != i {
			panic(fmt.Sprintf("manet: host %d attached as radio %d", i, h.mac.Radio()))
		}
		n.hosts[i] = h
	}
	if cfg.Telemetry != nil {
		n.observe(cfg.Telemetry)
	}
	return n, nil
}

// buildHostsSharded assembles the host population for the sharded
// engine. Observable behavior must match New's sequential loop
// byte-for-byte; three phases keep construction both parallel and
// order-faithful:
//
//   - A: movers that schedule events while being built (groups,
//     waypoint, static) are created sequentially in host order, so
//     their events carry the exact sequence numbers the oracle assigns.
//     The default random-turn mover defers its scheduling to phase C
//     and is slab-initialized in phase B instead.
//   - B: everything per-host that schedules nothing — RNG stream forks
//     (pure reads of the parent state, so fork order is irrelevant),
//     slab MACs attached to pre-claimed radio slots, neighbor tables,
//     callback binding — runs on the worker pool over disjoint index
//     ranges.
//   - C: random-turn first turns are scheduled sequentially in host
//     order, reproducing the oracle's sequence numbers; the events land
//     on the wheel of the shard band owning the host's initial
//     position.
func (n *Network) buildHostsSharded(groups []*mobility.Group, moveRNG, macRNG, hostRNG *sim.RNG) {
	cfg := n.cfg
	sched := n.sched
	hostsN := cfg.Hosts
	slabMovers := cfg.Groups == 0 && !cfg.Static && cfg.Mobility != MobilityWaypoint
	n.parallelOK = slabMovers
	var (
		rngSlab    []sim.RNG // [2i] host stream, [2i+1] mac stream
		moveSlab   []sim.RNG
		dedupSlab  []packet.DedupTable
		tableSlab  []neighbor.Table
		hostSlab   []host
		macSlab    []mac.MAC
		roamerSlab []mobility.Roamer
	)
	if a := cfg.Arena; a != nil && a.fits(hostsN, slabMovers) {
		rngSlab, moveSlab = a.rngSlab, a.moveSlab
		dedupSlab, tableSlab = a.dedupSlab, a.tableSlab
		hostSlab, macSlab, roamerSlab = a.hostSlab, a.macSlab, a.roamerSlab
		n.hosts = a.hosts
		// Every other slab is fully overwritten by its initializer
		// below; dedup tables alone rely on the zero value meaning
		// "empty", and the scheduler refills its free list from the
		// retained event slab.
		clear(dedupSlab)
		sched.ReserveFrom(a.events)
	} else {
		// Pointer-free slabs first: collections triggered while the heap
		// grows through them mark nothing, whereas every slab below is
		// pointer-dense and re-marked by each later cycle. Ordering the
		// allocation burst scan-light-to-scan-heavy keeps construction-time
		// GC marking roughly halved on a mega map.
		rngSlab = make([]sim.RNG, 2*hostsN)
		if slabMovers {
			moveSlab = make([]sim.RNG, hostsN)
		}
		dedupSlab = make([]packet.DedupTable, hostsN)
		tableSlab = make([]neighbor.Table, hostsN)
		events := sched.Reserve(hostsN)
		n.hosts = make([]*host, hostsN)
		hostSlab = make([]host, hostsN)
		macSlab = make([]mac.MAC, hostsN)
		if slabMovers {
			roamerSlab = make([]mobility.Roamer, hostsN)
		}
		if a != nil {
			*a = Arena{
				hostsN: hostsN, slabMovers: slabMovers,
				hosts: n.hosts, hostSlab: hostSlab, macSlab: macSlab,
				dedupSlab: dedupSlab, rngSlab: rngSlab, moveSlab: moveSlab,
				tableSlab: tableSlab, roamerSlab: roamerSlab, events: events,
			}
		}
	}
	base := n.ch.AttachBatch(hostsN)
	if base != 0 {
		panic(fmt.Sprintf("manet: sharded host batch attached at radio base %d", base))
	}

	if !slabMovers {
		for i := range hostSlab {
			h := &hostSlab[i]
			switch {
			case cfg.Groups > 0:
				h.mover = groups[i%cfg.Groups].NewMember(moveRNG.Fork(uint64(i)))
			case len(cfg.Placement) > 0 && cfg.Static:
				h.mover = mobility.NewStaticRoamer(sched, n.area, cfg.Placement[i])
			case cfg.Static:
				h.mover = mobility.NewStaticRoamer(sched, n.area, randomPoint(moveRNG.Fork(uint64(i)), n.area))
			default: // MobilityWaypoint
				wcfg := mobility.DefaultWaypointConfig(cfg.MaxSpeedKMH)
				if cfg.WaypointPause > 0 {
					wcfg.PauseTime = cfg.WaypointPause
				}
				h.mover = mobility.NewWaypoint(sched, n.area, wcfg, moveRNG.Fork(uint64(i)))
			}
		}
	}

	mcfg := mobility.DefaultConfig(cfg.MaxSpeedKMH)
	n.pool.Do(hostsN, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			h := &hostSlab[i]
			hostRNG.ForkInto(&rngSlab[2*i], uint64(i))
			// Full overwrite: under arena reuse the slot still holds the
			// previous world's host, and every unlisted field must drop
			// back to its zero value. The mover survives from phase A
			// (and is replaced just below when slab movers are in play).
			*h = host{
				id:    packet.NodeID(i),
				net:   n,
				mover: h.mover,
				dedup: &dedupSlab[i],
				rng:   &rngSlab[2*i],
				lane:  -1,
			}
			if slabMovers {
				moveRNG.ForkInto(&moveSlab[i], uint64(i))
				r := &roamerSlab[i]
				mobility.InitRoamer(r, sched, n.area, mcfg, &moveSlab[i])
				r.SetShard(n.shardOfY(r.PositionAt(0).Y))
				h.mover = r
			}
			macRNG.ForkInto(&rngSlab[2*i+1], uint64(i))
			mac.NewInto(&macSlab[i], sched, n.ch, h.mover, &rngSlab[2*i+1], base+i)
			h.mac = &macSlab[i]
			neighbor.InitDenseTable(&tableSlab[i], h.id, sched, cfg.ExpiryIntervals, hostsN)
			h.table = &tableSlab[i]
			h.mac.SetAddr(h.id)
			h.mac.Receiver = h
			h.mac.GarbledReceiver = h
			h.mac.SetPendingPool(true)
			if cfg.Audit != nil {
				h.mac.SetAudit(cfg.Audit)
			}
			h.helloTx.h = h
			n.hosts[i] = h
		}
	})

	if slabMovers {
		for i := range roamerSlab {
			roamerSlab[i].Start()
		}
	}
}

// shardOfY maps a map Y coordinate onto a shard. Shards are horizontal
// bands of spatial-grid macro-cell rows; macro rows are uniform in Y,
// so banding Y directly yields the same power-of-two partition. A
// roamer keeps its initial band's wheel for life: the assignment only
// decides which wheel stores its turn events, never their (time, seq)
// firing order, so migrating wheels on border crossings would buy
// nothing.
func (n *Network) shardOfY(y float64) int {
	s := int(y / n.area.Height * float64(n.shards))
	if s < 0 {
		s = 0
	}
	if s >= n.shards {
		s = n.shards - 1
	}
	return s
}

// observe registers the network-level telemetry series. Counters are
// bumped at the scheme decision points in host.go; gauges are pure
// reads of already-maintained state, evaluated only when the tick hook
// samples.
func (n *Network) observe(o *obs.Collector) {
	n.obs = o
	n.obsProceedInit = o.Counter("scheme.proceed_initial")
	n.obsInhibitInit = o.Counter("scheme.inhibit_initial")
	n.obsProceedDup = o.Counter("scheme.proceed_duplicate")
	n.obsInhibitDup = o.Counter("scheme.inhibit_duplicate")
	o.Gauge("sim.pending_events", func() float64 { return float64(n.sched.Pending()) })
	o.Gauge("sim.event_pool_hit_rate", func() float64 { return n.sched.PoolHitRate() })
	o.Gauge("mac.backoff_stalls", func() float64 {
		s := 0
		for _, h := range n.hosts {
			s += h.mac.Stats().Stalls
		}
		return float64(s)
	})
	o.Gauge("manet.hello_sent", func() float64 { return float64(n.helloSent) })
	o.Gauge("manet.broadcasts", func() float64 { return float64(n.seq) })
	if n.shards > 0 {
		// Barrier-execution series (see parallel.go): per-shard drained
		// event counts expose load imbalance, border_share is the fraction
		// of events the sequential border lane executed (1.0 when the
		// parallel path is ineligible), and barrier_wait_ns integrates
		// worker idle time at drain barriers.
		o.Gauge("engine.barriers", func() float64 { return float64(n.pstats.Barriers) })
		o.Gauge("engine.widened_barriers", func() float64 { return float64(n.pstats.Widened) })
		o.Gauge("engine.barrier_wait_ns", func() float64 { return float64(n.pstats.WaitNS) })
		o.Gauge("engine.border_share", func() float64 {
			exec := n.sched.Executed()
			if exec == 0 {
				return 0
			}
			var shard uint64
			for _, c := range n.pstats.ShardExecuted {
				shard += c
			}
			return float64(exec-shard) / float64(exec)
		})
		for s := 0; s < n.shards; s++ {
			s := s
			o.Gauge(fmt.Sprintf("engine.shard%d_executed", s), func() float64 {
				if s < len(n.pstats.ShardExecuted) {
					return float64(n.pstats.ShardExecuted[s])
				}
				return 0
			})
		}
	}
	n.ch.Observe(o)
}

// acquireSet borrows a scratch bitset for a coverage judge; contents are
// unspecified (judges overwrite via CopyFrom). While a speculative
// window is open the acting host's lane pool serves the request, so no
// two lanes touch the shared pool concurrently.
func (n *Network) acquireSet(lane int32) *nodeset.Set {
	pool := &n.setPool
	if n.specOpen && lane >= 0 {
		pool = &n.specSets[lane]
	}
	if k := len(*pool); k > 0 {
		s := (*pool)[k-1]
		(*pool)[k-1] = nil
		*pool = (*pool)[:k-1]
		return s
	}
	return nodeset.New(len(n.hosts))
}

// releaseSet returns a judge's scratch bitset to the pool.
func (n *Network) releaseSet(s *nodeset.Set, lane int32) {
	if n.specOpen && lane >= 0 {
		n.specSets[lane] = append(n.specSets[lane], s)
		return
	}
	n.setPool = append(n.setPool, s)
}

// newBroadcastFrame builds (or recycles) a broadcast data frame. Lane
// routing as in acquireSet: a speculative lane recycles through its own
// pool and allocates fresh on a miss rather than touching the shared
// pool. Pool depths may therefore exceed the oracle's — pools are pure
// caches, and frames are fully overwritten on reuse, so nothing
// observable depends on them.
func (n *Network) newBroadcastFrame(bid packet.BroadcastID, sender packet.NodeID, pos geom.Point, lane int32) *packet.Frame {
	pool := &n.framePool
	if n.specOpen && lane >= 0 {
		pool = &n.specFrames[lane]
	}
	var f *packet.Frame
	if k := len(*pool); k > 0 {
		f = (*pool)[k-1]
		(*pool)[k-1] = nil
		*pool = (*pool)[:k-1]
		*f = packet.Frame{
			Kind:      packet.KindBroadcast,
			Sender:    sender,
			Dest:      packet.DestBroadcast,
			Bytes:     packet.BroadcastBytes,
			Broadcast: bid,
			SenderPos: pos,
		}
	} else {
		f = packet.NewBroadcast(bid, sender, pos)
	}
	if n.audit != nil {
		n.audit.AuditAcquire(n.sched.Now(), "frame", f)
	}
	return f
}

// recycleFrame returns a broadcast frame whose transmission is finished
// (or was cancelled before starting) to the pool. Safe because broadcast
// frames are consumed synchronously at delivery: no receiver, MAC queue
// entry, or channel record dereferences the frame after its completion
// callback has run.
func (n *Network) recycleFrame(f *packet.Frame, lane int32) {
	if n.specOpen && lane >= 0 {
		n.specFrames[lane] = append(n.specFrames[lane], f)
		return
	}
	if n.audit != nil {
		n.audit.AuditRelease(n.sched.Now(), "frame", f)
	}
	n.framePool = append(n.framePool, f)
}

// newHelloFrame builds (or recycles) a HELLO beacon with empty Neighbors
// and Recent slices whose capacities survive recycling; the caller
// appends the announced sets and accounts Bytes.
func (n *Network) newHelloFrame(sender packet.NodeID, pos geom.Point, interval sim.Duration) *packet.Frame {
	var f *packet.Frame
	if k := len(n.helloPool); k > 0 {
		f = n.helloPool[k-1]
		n.helloPool[k-1] = nil
		n.helloPool = n.helloPool[:k-1]
		neighbors, recent := f.Neighbors[:0], f.Recent[:0]
		*f = packet.Frame{
			Kind:          packet.KindHello,
			Sender:        sender,
			Dest:          packet.DestBroadcast,
			Bytes:         packet.HelloBaseBytes,
			SenderPos:     pos,
			HelloInterval: interval,
		}
		f.Neighbors, f.Recent = neighbors, recent
	} else {
		f = &packet.Frame{
			Kind:          packet.KindHello,
			Sender:        sender,
			Dest:          packet.DestBroadcast,
			Bytes:         packet.HelloBaseBytes,
			SenderPos:     pos,
			HelloInterval: interval,
		}
	}
	if n.audit != nil {
		n.audit.AuditAcquire(n.sched.Now(), "frame", f)
	}
	return f
}

// recycleHelloFrame returns a fully transmitted beacon to the pool.
// Safe because receivers copy Neighbors (Table.OnHello) and consume
// Recent (onHelloRecent) synchronously at delivery, before the sender's
// completion callback runs.
func (n *Network) recycleHelloFrame(f *packet.Frame) {
	if n.audit != nil {
		n.audit.AuditRelease(n.sched.Now(), "frame", f)
	}
	n.helloPool = append(n.helloPool, f)
}

// randomPoint places a static host uniformly on the map.
func randomPoint(rng *sim.RNG, area mobility.Map) geom.Point {
	return geom.Point{
		X: rng.UniformFloat(0, area.Width),
		Y: rng.UniformFloat(0, area.Height),
	}
}

// Scheduler exposes the simulation clock (examples and tests).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Config returns the effective (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// Engine returns the resolved engine the network was built with (never
// EngineAuto).
func (n *Network) Engine() Engine { return n.engine }

// ShardCount returns the resolved shard count; 0 for the sequential
// engines.
func (n *Network) ShardCount() int { return n.shards }

// Close releases the sharded engine's worker pool (no-op for sequential
// engines; idempotent). RunContext closes on return, so an explicit
// Close is only needed for a Network that was built but never run.
// After Close, pool-backed queries degrade to inline execution, so a
// closed Network's inspection methods keep working.
func (n *Network) Close() {
	if n.pool != nil {
		n.pool.Close()
	}
}

// Run executes the configured workload and returns the run summary. It
// panics if called twice.
func (n *Network) Run() metrics.Summary {
	s, err := n.RunContext(context.Background())
	if err != nil {
		// Unreachable without a CheckpointHook: Background is never
		// cancelled and RunContext has no other error path.
		panic("manet: " + err.Error())
	}
	return s
}

// RunContext executes the configured workload, checking ctx between
// conservative barrier windows (see barrierWindow), and returns the run
// summary. On cancellation it stops at the next barrier — never inside
// an event — releases the worker pool, and returns ctx's error with a
// zero summary. The Network is spent either way; it panics if run
// twice.
func (n *Network) RunContext(ctx context.Context) (metrics.Summary, error) {
	if n.ran {
		panic("manet: Network.Run called twice")
	}
	n.ran = true
	defer n.Close()

	if !n.resumed {
		workload := sim.NewRNG(n.cfg.Seed).Fork(4)
		at := sim.Time(0).Add(n.cfg.Warmup)
		var lastArrival sim.Time
		n.originations = make([]originationEvent, n.cfg.Requests)
		for i := 0; i < n.cfg.Requests; i++ {
			at = at.Add(workload.UniformDuration(0, n.cfg.ArrivalSpread))
			lastArrival = at
			o := &n.originations[i]
			o.n = n
			o.src = int32(workload.IntN(len(n.hosts)))
			o.ev = n.sched.ScheduleRunner(at, o)
		}
		n.endTime = lastArrival.Add(n.cfg.Drain)
		if n.cfg.Requests == 0 {
			n.endTime = sim.Time(0).Add(n.cfg.Warmup + n.cfg.Drain)
		}

		for _, h := range n.hosts {
			h.scheduleHello()
		}
	}

	// Telemetry sampling and progress reporting ride the scheduler's
	// tick hook: they run between events, schedule nothing, and draw no
	// random numbers, so the event stream is identical to an unhooked
	// run (TestTelemetryDoesNotPerturbSimulation asserts this).
	if n.obs != nil || n.Progress != nil || n.audit != nil {
		interval := n.obs.Tick()
		if interval <= 0 {
			interval = sim.Second
		}
		startWall := time.Now()
		nextProgress := sim.Time(0).Add(sim.Second)
		n.sched.SetTickHook(interval, func() {
			now := n.sched.Now()
			n.obs.Sample(now)
			if n.audit != nil {
				n.auditNeighborSweep(now)
			}
			if n.Progress != nil && now >= nextProgress {
				rate := 0.0
				if elapsed := time.Since(startWall).Seconds(); elapsed > 0 {
					rate = float64(n.sched.Executed()) / elapsed
				}
				fmt.Fprintf(n.Progress, "sim t=%.1fs/%.1fs  events=%d (%.0f/s)\n",
					now.Seconds(), n.endTime.Seconds(), n.sched.Executed(), rate)
				nextProgress = now.Add(sim.Second)
			}
		})
	}

	// Advance the clock one conservative window at a time. Each window is
	// a barrier: the merged event order inside is identical to one
	// uninterrupted run (the deadline only clamps the clock, never
	// reorders events), and between barriers the engine checks
	// cancellation and feeds the cross-shard time invariants to the
	// auditor. When the sharded engine is eligible (see parallel.go),
	// each window first drains the shard wheels concurrently (phase A)
	// and then runs the remaining merged stream — the deterministic
	// border lane — sequentially up to the barrier (phase B).
	par := n.parallelEligible()
	spec := n.speculativeEligible()
	plan := n.planWindows(par)
	nextCkpt := n.sched.Now().Add(n.CheckpointEvery)
	for {
		if err := ctx.Err(); err != nil {
			return metrics.Summary{}, err
		}
		window := plan.base
		if n.shards > 0 {
			window = n.nextWindow(plan)
		}
		barrier := n.sched.Now().Add(window)
		if barrier > n.endTime {
			barrier = n.endTime
		}
		if par {
			n.drainWindow(barrier)
		}
		if spec {
			n.runSpecWindow(barrier)
		} else {
			n.sched.RunUntil(barrier)
		}
		n.auditShardBarrier(barrier)
		if n.shards > 0 {
			n.pstats.Barriers++
			if window > plan.base {
				n.pstats.Widened++
			}
		}
		if n.CheckpointHook != nil && n.CheckpointEvery > 0 &&
			barrier < n.endTime && barrier >= nextCkpt {
			if err := n.CheckpointHook(n.sched.Now()); err != nil {
				return metrics.Summary{}, err
			}
			nextCkpt = barrier.Add(n.CheckpointEvery)
		}
		if barrier >= n.endTime {
			break
		}
	}
	n.obs.Sample(n.sched.Now()) // close the series at end of run (nil-safe)
	return n.summarize(), nil
}

// barrierWindow derives the conservative lookahead between cancellation
// and audit barriers: the minimum frame airtime (no radio interaction
// resolves faster, so windows are never finer than the simulation can
// observe) plus the time the fastest host needs to cross a quarter
// radius — the same drift budget the spatial index amortizes snapshots
// over — capped at one second so static worlds still reach barriers
// regularly.
func (n *Network) barrierWindow() sim.Duration {
	w := n.cfg.Timing.Airtime(packet.AckBytes)
	slack := sim.Second
	if v := n.cfg.MaxSpeedMPS(); v > 0 {
		if d := sim.Duration(0.25 * n.cfg.Radius / v * float64(sim.Second)); d < slack {
			slack = d
		}
	}
	return w + slack
}

// auditShardBarrier feeds the cross-shard time invariants to the
// auditor at a barrier: barrier times advance monotonically, the merged
// clock never passes the barrier it just ran to, and no shard wheel
// still holds an event that was already due (a lagging head would mean
// the merged pop skipped it).
func (n *Network) auditShardBarrier(barrier sim.Time) {
	if n.audit == nil || n.shards == 0 {
		return
	}
	now := n.sched.Now()
	n.audit.AuditShardBarrier(now, barrier)
	for s := 0; s < n.shards; s++ {
		if head, ok := n.sched.ShardHead(s); ok {
			n.audit.AuditShardHead(now, s, head)
		}
	}
}

// auditNeighborSweep verifies every host's neighbor table against ground
// truth: each entry must be within its staleness bound (expiryIntervals
// hello intervals since last heard) and its host must lie within the
// radio radius expanded by the worst-case drift both endpoints can
// accumulate since the HELLO's transmission began (its age plus the
// beacon's maximum airtime, at auditSpeed each). It also checks every
// mover against the configured speed bound — the same auditSpeed the
// spatial index sizes its drift budget from, so a mobility model
// exceeding Config.MaxSpeedMPS is flagged before it can silently
// invalidate index snapshots. Pure observation: reads positions, speeds,
// and table entries, mutates nothing.
func (n *Network) auditNeighborSweep(now sim.Time) {
	// In-range membership is fixed when a transmission starts, and the
	// entry timestamp is stamped at delivery — one maximal HELLO airtime
	// later — so the drift window extends backwards by that airtime.
	maxHello := packet.HelloBaseBytes +
		packet.HelloPerNeighborBytes*len(n.hosts) +
		packet.HelloPerRecentBytes*(n.cfg.Requests+1)
	slack := n.cfg.Timing.Airtime(maxHello)
	const eps = 1e-6
	for _, h := range n.hosts {
		owner := h
		pos := owner.mover.Position()
		n.audit.AuditMoverSpeed(now, owner.id, owner.mover.Speed(), n.auditSpeed)
		owner.table.AuditEntries(func(id packet.NodeID, lastHeard sim.Time, interval sim.Duration) {
			age := now.Sub(lastHeard)
			bound := sim.Duration(n.cfg.ExpiryIntervals) * interval
			dist := pos.Dist(n.hosts[id].mover.Position())
			maxDist := n.cfg.Radius + 2*n.auditSpeed*(age+slack).Seconds() + eps
			n.audit.AuditNeighborEntry(now, owner.id, id, age, bound, dist, maxDist)
		})
	}
}

// originate issues one broadcast request from src.
func (n *Network) originate(src *host) {
	n.seq++
	bid := packet.BroadcastID{Source: src.id, Seq: n.seq}
	if n.records != nil {
		rec := metrics.NewBroadcastRecord(bid, n.sched.Now(), n.reachableFrom(src))
		rec.Received = 1 // the source holds the packet
		n.records[bid] = rec
		n.order = append(n.order, bid)
	} else {
		n.recs = append(n.recs, metrics.MakeBroadcastRecord(bid, n.sched.Now(), n.reachableFrom(src)))
		n.recs[len(n.recs)-1].Received = 1 // the source holds the packet
		// Open until the source's own transmission completes; every
		// pendingRebroadcast the wave spawns adds its own hold.
		n.recOpen = append(n.recOpen, 1)
	}
	if n.DeliveryHook != nil {
		n.DeliveryHook(bid, src.id)
	}
	n.trace(trace.Originate, bid, src.id)
	src.originate(bid)
}

// reachableFrom computes e: the number of hosts (including src) in src's
// connected component of the current unit-disk graph. The walk expands
// through the channel's spatial index, so each visited host costs its
// degree rather than a scan of the whole population, and the visited /
// stack / neighbor buffers are reused across originations.
func (n *Network) reachableFrom(src *host) int {
	if n.engine == EngineSharded || n.engine == EngineSpeculative {
		// The channel walk forces an exact position snapshot at the
		// current instant and runs band-parallel over the worker pool with
		// bounded-channel border exchange; membership is identical to the
		// live-position BFS below, so summaries stay byte-identical.
		return n.ch.CountReachable(src.mac.Radio())
	}
	if len(n.bfsVisited) < n.ch.NumRadios() {
		n.bfsVisited = make([]bool, n.ch.NumRadios())
	}
	visited := n.bfsVisited
	clear(visited)
	stack := n.bfsStack[:0]
	start := src.mac.Radio()
	visited[start] = true
	stack = append(stack, start)
	count := 0
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		n.nbrScratch = n.ch.Neighbors(i, n.nbrScratch[:0])
		for _, j := range n.nbrScratch {
			if !visited[j] {
				visited[j] = true
				stack = append(stack, j)
			}
		}
	}
	n.bfsStack = stack
	return count
}

// record fetches the bookkeeping entry for a broadcast; unknown ids and
// already-folded records (possible only through misuse or an open-count
// bug) panic loudly rather than silently skewing metrics.
func (n *Network) record(bid packet.BroadcastID) *metrics.BroadcastRecord {
	if n.records != nil {
		rec, ok := n.records[bid]
		if !ok {
			panic(fmt.Sprintf("manet: no record for %v", bid))
		}
		return rec
	}
	// Seq is the global origination counter (starting at 1), so the
	// arena index is direct. A folded broadcast wraps the unsigned
	// subtraction to a huge index and fails the bounds check.
	idx := int(bid.Seq - 1 - n.recBase)
	if idx < 0 || idx >= len(n.recs) || n.recs[idx].ID != bid {
		panic(fmt.Sprintf("manet: no record for %v", bid))
	}
	return &n.recs[idx]
}

// openInc adds one hold on a broadcast's record (dense bookkeeping only):
// the record cannot fold while any transmission or rebroadcast decision
// that can still mutate it is outstanding. h is the acting host: while a
// speculative window is open the op is journaled on its lane instead of
// mutating the shared arena.
func (n *Network) openInc(bid packet.BroadcastID, h *host) {
	if n.records != nil {
		return
	}
	if n.specOpen && h.lane >= 0 {
		n.specNote(h.lane, recOpOpenInc, bid)
		return
	}
	n.recOpen[bid.Seq-1-n.recBase]++
}

// openDec drops one hold; when the arrival-order prefix of the arena is
// fully closed it is folded into the streaming aggregates and released.
// Call after the final record mutations of the closing event.
func (n *Network) openDec(bid packet.BroadcastID, h *host) {
	if n.records != nil {
		return
	}
	if n.specOpen && h.lane >= 0 {
		n.specNote(h.lane, recOpOpenDec, bid)
		return
	}
	idx := bid.Seq - 1 - n.recBase
	n.recOpen[idx]--
	if n.recOpen[idx] < 0 {
		panic(fmt.Sprintf("manet: open count for %v went negative", bid))
	}
	if n.fold && idx == 0 {
		n.foldFront()
	}
}

// foldFront folds every leading closed record into the run aggregates
// and releases it from the arena. Records must fold in arrival order —
// that is what makes the streamed summary byte-identical to Summarize
// over the retained set — so the frontier stops at the first record
// still held open.
func (n *Network) foldFront() {
	now := n.sched.Now()
	for len(n.recOpen) > 0 && n.recOpen[0] == 0 {
		rec := &n.recs[0]
		n.stream.Fold(rec)
		if n.audit != nil {
			n.audit.AuditRecord(now, rec)
		}
		n.recs = n.recs[1:]
		n.recOpen = n.recOpen[1:]
		n.recBase++
	}
}

func (n *Network) noteReceived(bid packet.BroadcastID, h *host) {
	// Speculative eligibility requires DeliveryHook and Tracer nil, so
	// the journaled op only has to replay the record mutations.
	if n.specOpen && h.lane >= 0 {
		n.specNote(h.lane, recOpReceived, bid)
		return
	}
	rec := n.record(bid)
	rec.Received++
	rec.NoteActivity(n.sched.Now())
	if n.DeliveryHook != nil {
		n.DeliveryHook(bid, h.id)
	}
	n.trace(trace.Deliver, bid, h.id)
}

// trace records an event if a Tracer is attached.
func (n *Network) trace(kind trace.Kind, bid packet.BroadcastID, h packet.NodeID) {
	if n.Tracer != nil {
		n.Tracer.Record(n.sched.Now(), kind, bid, h)
	}
}

func (n *Network) noteTransmitted(bid packet.BroadcastID, h *host) {
	if n.specOpen && h.lane >= 0 {
		n.specNote(h.lane, recOpTransmitted, bid)
		return
	}
	n.record(bid).Transmitted++
}

func (n *Network) noteActivity(bid packet.BroadcastID, h *host) {
	if n.specOpen && h.lane >= 0 {
		n.specNote(h.lane, recOpActivity, bid)
		return
	}
	n.record(bid).NoteActivity(n.sched.Now())
}

// summarize folds per-broadcast records and channel counters into the
// run summary.
func (n *Network) summarize() metrics.Summary {
	now := n.sched.Now()
	var s metrics.Summary
	if n.records != nil {
		recs := make([]*metrics.BroadcastRecord, 0, len(n.order))
		for _, bid := range n.order {
			recs = append(recs, n.records[bid])
		}
		s = metrics.Summarize(recs)
		if n.audit != nil {
			for _, rec := range recs {
				n.audit.AuditRecord(now, rec)
			}
		}
	} else {
		// Fold the stragglers: a record still held open when the clock
		// runs out is final now. They stay in the arena (not released),
		// so Records() keeps working under RetainRecords.
		for i := range n.recs {
			rec := &n.recs[i]
			n.stream.Fold(rec)
			if n.audit != nil {
				n.audit.AuditRecord(now, rec)
			}
		}
		s = n.stream.Summary()
	}
	st := n.ch.Stats()
	s.HelloSent = n.helloSent
	s.RepairsRequested = n.repairsRequested
	s.RepairsDelivered = n.repairsDelivered
	s.Transmissions = st.Transmissions
	s.Deliveries = st.Deliveries
	s.Collisions = st.Collisions
	s.SimulatedTime = now.Sub(0)
	s.Events = n.sched.Executed()
	if n.audit != nil {
		n.audit.AuditSummary(now, s, st.Lost)
	}
	return s
}

// Records returns the per-broadcast records in arrival order (available
// after Run; used by tests and detailed analyses). The default dense
// bookkeeping folds completed records into the run aggregates and
// releases them mid-run, so callers that need the full set must set
// Config.RetainRecords.
func (n *Network) Records() []*metrics.BroadcastRecord {
	if n.records != nil {
		recs := make([]*metrics.BroadcastRecord, 0, len(n.order))
		for _, bid := range n.order {
			recs = append(recs, n.records[bid])
		}
		return recs
	}
	if len(n.recs) != int(n.seq) {
		panic("manet: records were folded and released mid-run; set Config.RetainRecords to keep them")
	}
	recs := make([]*metrics.BroadcastRecord, len(n.recs))
	for i := range n.recs {
		recs[i] = &n.recs[i]
	}
	return recs
}

// TrueNeighborCount returns the ground-truth number of hosts currently
// within radio range of host i (tests compare HELLO-derived tables
// against this).
func (n *Network) TrueNeighborCount(i int) int {
	n.nbrScratch = n.ch.Neighbors(n.hosts[i].mac.Radio(), n.nbrScratch[:0])
	return len(n.nbrScratch)
}

// HostTableCount returns host i's HELLO-derived neighbor count.
func (n *Network) HostTableCount(i int) int { return n.hosts[i].table.Count() }

// Positions returns every host's current position (visualization,
// topology inspection).
func (n *Network) Positions() []geom.Point {
	out := make([]geom.Point, len(n.hosts))
	for i, h := range n.hosts {
		out[i] = h.mover.Position()
	}
	return out
}

// Area returns the map dimensions in meters.
func (n *Network) Area() (width, height float64) {
	return n.area.Width, n.area.Height
}

// idealHelloDeliver implements the IdealHello ablation: src's beacon is
// applied directly to every in-range host's neighbor table, bypassing
// the channel entirely.
func (n *Network) idealHelloDeliver(src *host, interval sim.Duration) {
	n.helloSent++
	// Table.OnHello copies the announced set into each receiver's entry,
	// so src's live Neighbors() view can be handed out directly: the loop
	// only mutates receiver tables, never src's.
	neighbors := src.table.Neighbors()
	n.nbrScratch = n.ch.Neighbors(src.mac.Radio(), n.nbrScratch[:0])
	for _, j := range n.nbrScratch {
		n.hosts[j].table.OnHello(src.id, neighbors, interval)
	}
}
