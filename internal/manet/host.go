package manet

import (
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
)

// host is one mobile node: radio + MAC + mobility + neighbor table +
// per-packet rebroadcast decisions.
type host struct {
	id    packet.NodeID
	net   *Network
	mac   *mac.MAC
	mover mobility.Mover
	table *neighbor.Table
	dedup *packet.DedupTable
	rng   *sim.RNG // assessment delays and hello phase

	// lane is the speculative band owning this host, -1 outside the
	// speculative engine. Assigned once per static world (a static host
	// never leaves its band); all of the host's scheduling, record
	// notes, and pool traffic route through it while a window is open.
	lane int32

	// Broadcasts whose rebroadcast decision is still open. The dense
	// layout (the default) keeps them in an unordered slice with each
	// record carrying its own index (live) for O(1) swap-remove — the
	// open set per host is a handful of entries, so lookup is a short
	// linear scan and the map's hashing and bucket storage are pure
	// overhead. The map layout remains behind Config.DisableDenseState
	// (pending non-nil) as the equivalence oracle. prFree recycles
	// resolved records so a storm allocates no waiting state once warm.
	pending     map[packet.BroadcastID]*pendingRebroadcast
	livePending []*pendingRebroadcast
	prFree      []*pendingRebroadcast

	// helloTx observes the beacons' transmissions and doubles as the
	// HELLO timer's sim.Runner (one embedded value per
	// host, so beaconing allocates no observers); helloFly is the FIFO of
	// beacons currently on the air. HELLO frames are broadcast, so the
	// MAC completes them in enqueue order — the front of helloFly is
	// always the frame whose TxDone is firing.
	helloTx    helloTx
	helloTimer *sim.Event // armed next-HELLO event, nil once beaconing stops
	helloFly   []*packet.Frame

	// Reliable-broadcast repair state (Config.Repair): recently received
	// broadcasts to advertise, and ids NACKed but not yet repaired. The
	// map is allocated on first NACK and entries are deleted once the
	// repair arrives, so it stays bounded by still-missing packets.
	recent []recentEntry
	nacked map[packet.BroadcastID]bool
}

// pendingRebroadcast is the paper's per-packet waiting state: created at
// first reception (S1), it survives the random assessment delay (S2) and
// the MAC queueing, and is resolved either by the transmission starting
// (S3) or by the scheme inhibiting it (S5). The three callbacks are
// bound once per record and read its mutable fields, so records cycling
// through the pool never allocate closures.
type pendingRebroadcast struct {
	h        *host
	bid      packet.BroadcastID
	judge    scheme.Judge
	assess   *sim.Event    // scheduled MAC submission, nil once submitted
	mp       *mac.Pending  // MAC handle once submitted
	frame    *packet.Frame // the enqueued rebroadcast frame
	started  bool          // transmission began; decision locked
	resolved bool          // inhibited or completed
	live     int32         // index in host.livePending (dense layout)
}

// TxStarted implements mac.TxObserver: the rebroadcast's transmission
// actually starts (S3) and the decision is locked.
// RunEvent fires the assessment-delay timer (sim.Runner): the pending
// record itself is the timer target, so arming it never allocates.
func (p *pendingRebroadcast) RunEvent() { p.h.submit(p) }

func (p *pendingRebroadcast) TxStarted() {
	p.started = true
	p.h.net.noteTransmitted(p.bid, p.h)
	p.h.net.trace(trace.Transmit, p.bid, p.h.id)
}

// TxDone implements mac.TxObserver: the transmission ended.
func (p *pendingRebroadcast) TxDone() { p.h.complete(p) }

// newPendingRebroadcast takes a waiting-state record off the free list
// (or allocates one, binding its callbacks).
func (h *host) newPendingRebroadcast(bid packet.BroadcastID, judge scheme.Judge) *pendingRebroadcast {
	var p *pendingRebroadcast
	if l := len(h.prFree); l > 0 {
		p = h.prFree[l-1]
		h.prFree[l-1] = nil
		h.prFree = h.prFree[:l-1]
		p.bid, p.judge = bid, judge
		p.started, p.resolved = false, false
	} else {
		p = &pendingRebroadcast{h: h, bid: bid, judge: judge}
	}
	if h.net.audit != nil {
		h.net.audit.AuditAcquire(h.net.sched.Now(), "manet.pending", p)
	}
	return p
}

// recyclePendingRebroadcast returns a resolved record to the free list.
// Nothing may hold the record afterwards: its event was cancelled or
// fired, and the MAC has dropped (or is about to drop) its callbacks.
func (h *host) recyclePendingRebroadcast(p *pendingRebroadcast) {
	if h.net.audit != nil {
		h.net.audit.AuditRelease(h.net.sched.Now(), "manet.pending", p)
	}
	p.judge = nil
	p.assess = nil
	p.mp = nil
	p.frame = nil
	h.prFree = append(h.prFree, p)
}

// trackPending registers an open rebroadcast decision.
func (h *host) trackPending(p *pendingRebroadcast) {
	if h.pending != nil {
		h.pending[p.bid] = p
		return
	}
	p.live = int32(len(h.livePending))
	h.livePending = append(h.livePending, p)
}

// lookupPending finds the open decision for bid, nil if none.
func (h *host) lookupPending(bid packet.BroadcastID) *pendingRebroadcast {
	if h.pending != nil {
		return h.pending[bid]
	}
	for _, p := range h.livePending {
		if p.bid == bid {
			return p
		}
	}
	return nil
}

// untrackPending removes a resolved decision (O(1) swap-remove on the
// dense layout).
func (h *host) untrackPending(p *pendingRebroadcast) {
	if h.pending != nil {
		delete(h.pending, p.bid)
		return
	}
	l := len(h.livePending) - 1
	last := h.livePending[l]
	h.livePending[p.live] = last
	last.live = p.live
	h.livePending[l] = nil
	h.livePending = h.livePending[:l]
}

// pendingCount returns the number of open rebroadcast decisions.
func (h *host) pendingCount() int {
	if h.pending != nil {
		return len(h.pending)
	}
	return len(h.livePending)
}

var (
	_ scheme.HostView      = (*host)(nil)
	_ scheme.NodeSetSource = (*host)(nil)
)

// ID implements scheme.HostView.
func (h *host) ID() packet.NodeID { return h.id }

// Position implements scheme.HostView.
func (h *host) Position() geom.Point { return h.mover.Position() }

// Radius implements scheme.HostView.
func (h *host) Radius() float64 { return h.net.ch.Radius() }

// NeighborCount implements scheme.HostView.
func (h *host) NeighborCount() int { return h.table.Count() }

// Neighbors implements scheme.HostView.
func (h *host) Neighbors() []packet.NodeID { return h.table.Neighbors() }

// TwoHop implements scheme.HostView.
func (h *host) TwoHop(n packet.NodeID) []packet.NodeID {
	return h.table.TwoHop(n)
}

// NeighborNodeSet implements scheme.NodeSetSource.
func (h *host) NeighborNodeSet() *nodeset.Set { return h.table.NeighborSet() }

// AcquireNodeSet implements scheme.NodeSetSource.
func (h *host) AcquireNodeSet() *nodeset.Set { return h.net.acquireSet(h.lane) }

// ReleaseNodeSet implements scheme.NodeSetSource.
func (h *host) ReleaseNodeSet(s *nodeset.Set) { h.net.releaseSet(s, h.lane) }

// ReceiveGarbled implements mac.GarbledReceiver: a collided broadcast
// is worth a trace event (the metrics layer counts collisions at the
// channel, so nothing else happens here).
func (h *host) ReceiveGarbled(f *packet.Frame) {
	if h.net.Tracer != nil && f.Kind == packet.KindBroadcast {
		h.net.Tracer.Record(h.net.sched.Now(), trace.Garbled, f.Broadcast, h.id)
	}
}

// helloTx observes one host's HELLO transmissions (mac.TxObserver) and
// fires its HELLO timer (sim.Runner): both roles hang off the same
// embedded value, so neither the recurring timer nor the per-beacon
// observer allocates.
type helloTx struct{ h *host }

// RunEvent fires the HELLO timer.
func (o *helloTx) RunEvent() {
	o.h.helloTimer = nil
	o.h.sendHello()
}

// TxStarted implements mac.TxObserver: the beacon is on the air.
func (o *helloTx) TxStarted() { o.h.net.helloSent++ }

// TxDone implements mac.TxObserver: the beacon's airtime ended; retire
// the oldest in-flight HELLO frame.
func (o *helloTx) TxDone() {
	h := o.h
	f := h.helloFly[0]
	rest := copy(h.helloFly, h.helloFly[1:])
	h.helloFly[rest] = nil
	h.helloFly = h.helloFly[:rest]
	h.net.recycleHelloFrame(f)
}

// ReceiveFrame implements mac.FrameReceiver: an intact frame delivered
// by the MAC.
func (h *host) ReceiveFrame(f *packet.Frame) {
	switch f.Kind {
	case packet.KindHello:
		h.table.OnHello(f.Sender, f.Neighbors, f.HelloInterval)
		if h.net.cfg.Repair {
			h.onHelloRecent(f.Sender, f.Recent)
		}
	case packet.KindBroadcast:
		h.onBroadcast(f)
	case packet.KindData:
		if h.net.cfg.Repair {
			h.onRepairFrame(f)
		}
	}
}

// onBroadcast implements the paper's per-host algorithm.
func (h *host) onBroadcast(f *packet.Frame) {
	bid := f.Broadcast
	rx := scheme.Reception{From: f.Sender, SenderPos: f.SenderPos, U: h.rng.Float64()}

	if h.dedup.Observe(bid) {
		// S1: first reception.
		h.net.noteReceived(bid, h)
		h.noteRecent(bid)
		judge := h.net.cfg.Scheme.NewJudge(h, rx)
		if judge.Initial() == scheme.Inhibit {
			scheme.ReleaseJudge(judge)
			if h.net.obs != nil {
				h.net.obs.Inc(h.net.obsInhibitInit)
			}
			h.net.noteActivity(bid, h)
			h.net.trace(trace.Inhibit, bid, h.id)
			return
		}
		if h.net.obs != nil {
			h.net.obs.Inc(h.net.obsProceedInit)
		}
		p := h.newPendingRebroadcast(bid, judge)
		h.trackPending(p)
		h.net.openInc(bid, h) // record stays open until this decision resolves
		// S2: random assessment delay of 0..AssessmentSlots slots before
		// submitting the rebroadcast to the MAC.
		slots := h.rng.IntN(h.net.cfg.AssessmentSlots + 1)
		delay := sim.Duration(slots) * h.net.cfg.Timing.SlotTime
		p.assess = h.net.sched.LaneAfterRunner(int(h.lane), delay, p)
		return
	}

	// Duplicate reception (S4) while a rebroadcast may still be pending.
	h.net.trace(trace.Duplicate, bid, h.id)
	p := h.lookupPending(bid)
	if p == nil || p.started || p.resolved {
		return
	}
	if p.judge.OnDuplicate(rx) == scheme.Inhibit {
		if h.net.obs != nil {
			h.net.obs.Inc(h.net.obsInhibitDup)
		}
		h.inhibit(p)
	} else if h.net.obs != nil {
		h.net.obs.Inc(h.net.obsProceedDup)
	}
}

// submit hands the rebroadcast to the MAC after the assessment delay.
func (h *host) submit(p *pendingRebroadcast) {
	if h.net.audit != nil {
		h.net.audit.AuditUse(h.net.sched.Now(), "manet.pending", p)
	}
	p.assess = nil
	if p.resolved {
		return
	}
	p.frame = h.net.newBroadcastFrame(p.bid, h.id, h.Position(), h.lane)
	p.mp = h.mac.Enqueue(p.frame, p)
}

// complete resolves the rebroadcast when its transmission ends (the MAC
// OnDone of the frame submit enqueued).
func (h *host) complete(p *pendingRebroadcast) {
	if h.net.audit != nil {
		h.net.audit.AuditUse(h.net.sched.Now(), "manet.pending", p)
	}
	p.resolved = true
	h.untrackPending(p)
	scheme.ReleaseJudge(p.judge)
	h.net.recycleFrame(p.frame, h.lane)
	h.net.noteActivity(p.bid, h)
	bid := p.bid
	h.recyclePendingRebroadcast(p)
	h.net.openDec(bid, h) // after the final mutations: may fold the record
}

// inhibit cancels the pending rebroadcast (S5).
func (h *host) inhibit(p *pendingRebroadcast) {
	if h.net.audit != nil {
		h.net.audit.AuditUse(h.net.sched.Now(), "manet.pending", p)
	}
	p.resolved = true
	if p.assess != nil {
		h.net.sched.LaneCancel(int(h.lane), p.assess)
		p.assess = nil
	}
	if p.mp != nil && h.mac.Cancel(p.mp) {
		// Withdrawn before transmission started: the frame never hit the
		// air and nothing references it anymore. (p.frame, not p.mp.Frame:
		// the MAC may have already recycled its queue record.)
		h.net.recycleFrame(p.frame, h.lane)
	}
	scheme.ReleaseJudge(p.judge)
	h.untrackPending(p)
	h.net.noteActivity(p.bid, h)
	h.net.trace(trace.Inhibit, p.bid, h.id)
	bid := p.bid
	h.recyclePendingRebroadcast(p)
	h.net.openDec(bid, h) // after the final mutations: may fold the record
}

// originate makes this host the source of a new broadcast: the source
// always transmits the packet (there is no decision to make).
func (h *host) originate(bid packet.BroadcastID) {
	h.dedup.Observe(bid)
	frame := h.net.newBroadcastFrame(bid, h.id, h.Position(), h.lane)
	h.mac.Enqueue(frame, &originTx{h: h, bid: bid, frame: frame})
}

// originTx observes a source transmission. Originations are rare (one
// per broadcast request), so a record allocation per origination is
// noise next to the storm it triggers.
type originTx struct {
	h     *host
	bid   packet.BroadcastID
	frame *packet.Frame
}

// TxStarted implements mac.TxObserver.
func (o *originTx) TxStarted() {
	o.h.net.noteTransmitted(o.bid, o.h)
	o.h.net.trace(trace.Transmit, o.bid, o.h.id)
}

// TxDone implements mac.TxObserver.
func (o *originTx) TxDone() {
	o.h.net.recycleFrame(o.frame, o.h.lane)
	o.h.net.noteActivity(o.bid, o.h)
	o.h.net.openDec(o.bid, o.h) // the source's transmission no longer holds it
}

// scheduleHello arms the host's first HELLO at a random phase within one
// interval, so the population does not beacon in lockstep.
func (h *host) scheduleHello() {
	if h.net.cfg.HelloMode == HelloOff {
		return
	}
	first := h.currentHelloInterval()
	if h.net.cfg.HelloMode == HelloDynamic && first > h.net.cfg.DHI.HIMin {
		// Before any HELLO has been exchanged the variation estimator
		// reads zero and would pick himax; start at himin instead so the
		// tables bootstrap quickly, then let DHI take over.
		first = h.net.cfg.DHI.HIMin
	}
	phase := h.rng.UniformDuration(0, first)
	h.helloTimer = h.net.sched.AfterRunner(phase, &h.helloTx)
}

// currentHelloInterval evaluates the fixed or dynamic hello interval.
func (h *host) currentHelloInterval() sim.Duration {
	if h.net.cfg.HelloMode == HelloDynamic {
		return h.net.cfg.DHI.Interval(h.table.Variation())
	}
	return h.net.cfg.HelloInterval
}

// sendHello beacons the host's neighbor set and schedules the next HELLO.
func (h *host) sendHello() {
	if h.net.sched.Now() >= h.net.endTime {
		return // run is over; stop beaconing so the event queue drains
	}
	interval := h.currentHelloInterval()
	if h.net.cfg.IdealHello {
		// Ablation mode: the beacon reaches every in-range host
		// instantly and without occupying the medium.
		h.net.idealHelloDeliver(h, interval)
	} else {
		f := h.net.newHelloFrame(h.id, h.Position(), interval)
		f.Neighbors = h.table.AppendNeighbors(f.Neighbors)
		f.Bytes = packet.HelloBaseBytes + packet.HelloPerNeighborBytes*len(f.Neighbors)
		if h.net.cfg.Repair {
			f.Recent = h.appendRecentIDs(f.Recent)
			f.Bytes += packet.HelloPerRecentBytes * len(f.Recent)
		}
		h.helloFly = append(h.helloFly, f)
		h.mac.Enqueue(f, &h.helloTx)
	}
	h.helloTimer = h.net.sched.AfterRunner(interval, &h.helloTx)
}
