package manet

import (
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/packet"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
)

// host is one mobile node: radio + MAC + mobility + neighbor table +
// per-packet rebroadcast decisions.
type host struct {
	id    packet.NodeID
	net   *Network
	mac   *mac.MAC
	mover mobility.Mover
	table *neighbor.Table
	dedup *packet.DedupTable
	rng   *sim.RNG // assessment delays and hello phase

	// pending tracks broadcasts whose rebroadcast decision is still open.
	pending map[packet.BroadcastID]*pendingRebroadcast

	// Reliable-broadcast repair state (Config.Repair): recently received
	// broadcasts to advertise, and ids already NACKed.
	recent []recentEntry
	nacked map[packet.BroadcastID]bool
}

// pendingRebroadcast is the paper's per-packet waiting state: created at
// first reception (S1), it survives the random assessment delay (S2) and
// the MAC queueing, and is resolved either by the transmission starting
// (S3) or by the scheme inhibiting it (S5).
type pendingRebroadcast struct {
	judge    scheme.Judge
	assess   *sim.Event   // scheduled MAC submission, nil once submitted
	mp       *mac.Pending // MAC handle once submitted
	started  bool         // transmission began; decision locked
	resolved bool         // inhibited or completed
}

var _ scheme.HostView = (*host)(nil)

// ID implements scheme.HostView.
func (h *host) ID() packet.NodeID { return h.id }

// Position implements scheme.HostView.
func (h *host) Position() geom.Point { return h.mover.Position() }

// Radius implements scheme.HostView.
func (h *host) Radius() float64 { return h.net.ch.Radius() }

// NeighborCount implements scheme.HostView.
func (h *host) NeighborCount() int { return h.table.Count() }

// Neighbors implements scheme.HostView.
func (h *host) Neighbors() []packet.NodeID { return h.table.Neighbors() }

// TwoHop implements scheme.HostView.
func (h *host) TwoHop(n packet.NodeID) []packet.NodeID {
	return h.table.TwoHop(n)
}

// onFrame handles an intact frame delivered by the MAC.
func (h *host) onFrame(f *packet.Frame) {
	switch f.Kind {
	case packet.KindHello:
		h.table.OnHello(f.Sender, f.Neighbors, f.HelloInterval)
		if h.net.cfg.Repair {
			h.onHelloRecent(f.Sender, f.Recent)
		}
	case packet.KindBroadcast:
		h.onBroadcast(f)
	case packet.KindData:
		if h.net.cfg.Repair {
			h.onRepairFrame(f)
		}
	}
}

// onBroadcast implements the paper's per-host algorithm.
func (h *host) onBroadcast(f *packet.Frame) {
	bid := f.Broadcast
	rx := scheme.Reception{From: f.Sender, SenderPos: f.SenderPos, U: h.rng.Float64()}

	if h.dedup.Observe(bid) {
		// S1: first reception.
		h.net.noteReceived(bid, h.id)
		h.noteRecent(bid)
		judge := h.net.cfg.Scheme.NewJudge(h, rx)
		if judge.Initial() == scheme.Inhibit {
			if h.net.obs != nil {
				h.net.obs.Inc(h.net.obsInhibitInit)
			}
			h.net.noteActivity(bid)
			h.net.trace(trace.Inhibit, bid, h.id)
			return
		}
		if h.net.obs != nil {
			h.net.obs.Inc(h.net.obsProceedInit)
		}
		p := &pendingRebroadcast{judge: judge}
		h.pending[bid] = p
		// S2: random assessment delay of 0..AssessmentSlots slots before
		// submitting the rebroadcast to the MAC.
		slots := h.rng.IntN(h.net.cfg.AssessmentSlots + 1)
		delay := sim.Duration(slots) * h.net.cfg.Timing.SlotTime
		p.assess = h.net.sched.After(delay, func() { h.submit(bid, p) })
		return
	}

	// Duplicate reception (S4) while a rebroadcast may still be pending.
	h.net.trace(trace.Duplicate, bid, h.id)
	p := h.pending[bid]
	if p == nil || p.started || p.resolved {
		return
	}
	if p.judge.OnDuplicate(rx) == scheme.Inhibit {
		if h.net.obs != nil {
			h.net.obs.Inc(h.net.obsInhibitDup)
		}
		h.inhibit(bid, p)
	} else if h.net.obs != nil {
		h.net.obs.Inc(h.net.obsProceedDup)
	}
}

// submit hands the rebroadcast to the MAC after the assessment delay.
func (h *host) submit(bid packet.BroadcastID, p *pendingRebroadcast) {
	p.assess = nil
	if p.resolved {
		return
	}
	frame := packet.NewBroadcast(bid, h.id, h.Position())
	p.mp = h.mac.Enqueue(frame,
		func() { // transmission actually starts: S3, decision locked
			p.started = true
			h.net.noteTransmitted(bid)
			h.net.trace(trace.Transmit, bid, h.id)
		},
		func() { // transmission complete
			p.resolved = true
			delete(h.pending, bid)
			h.net.noteActivity(bid)
		},
	)
}

// inhibit cancels the pending rebroadcast (S5).
func (h *host) inhibit(bid packet.BroadcastID, p *pendingRebroadcast) {
	p.resolved = true
	if p.assess != nil {
		h.net.sched.Cancel(p.assess)
		p.assess = nil
	}
	if p.mp != nil {
		h.mac.Cancel(p.mp)
	}
	delete(h.pending, bid)
	h.net.noteActivity(bid)
	h.net.trace(trace.Inhibit, bid, h.id)
}

// originate makes this host the source of a new broadcast: the source
// always transmits the packet (there is no decision to make).
func (h *host) originate(bid packet.BroadcastID) {
	h.dedup.Observe(bid)
	frame := packet.NewBroadcast(bid, h.id, h.Position())
	h.mac.Enqueue(frame,
		func() {
			h.net.noteTransmitted(bid)
			h.net.trace(trace.Transmit, bid, h.id)
		},
		func() { h.net.noteActivity(bid) },
	)
}

// scheduleHello arms the host's first HELLO at a random phase within one
// interval, so the population does not beacon in lockstep.
func (h *host) scheduleHello() {
	if h.net.cfg.HelloMode == HelloOff {
		return
	}
	first := h.currentHelloInterval()
	if h.net.cfg.HelloMode == HelloDynamic && first > h.net.cfg.DHI.HIMin {
		// Before any HELLO has been exchanged the variation estimator
		// reads zero and would pick himax; start at himin instead so the
		// tables bootstrap quickly, then let DHI take over.
		first = h.net.cfg.DHI.HIMin
	}
	phase := h.rng.UniformDuration(0, first)
	h.net.sched.After(phase, h.sendHello)
}

// currentHelloInterval evaluates the fixed or dynamic hello interval.
func (h *host) currentHelloInterval() sim.Duration {
	if h.net.cfg.HelloMode == HelloDynamic {
		return h.net.cfg.DHI.Interval(h.table.Variation())
	}
	return h.net.cfg.HelloInterval
}

// sendHello beacons the host's neighbor set and schedules the next HELLO.
func (h *host) sendHello() {
	if h.net.sched.Now() >= h.net.endTime {
		return // run is over; stop beaconing so the event queue drains
	}
	interval := h.currentHelloInterval()
	if h.net.cfg.IdealHello {
		// Ablation mode: the beacon reaches every in-range host
		// instantly and without occupying the medium.
		h.net.idealHelloDeliver(h, interval)
	} else {
		f := packet.NewHello(h.id, h.Position(), h.table.Neighbors(), interval)
		if h.net.cfg.Repair {
			f.Recent = h.recentIDs()
			f.Bytes += packet.HelloPerRecentBytes * len(f.Recent)
		}
		h.mac.Enqueue(f, func() { h.net.helloSent++ }, nil)
	}
	h.net.sched.After(interval, h.sendHello)
}
