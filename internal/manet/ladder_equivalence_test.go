package manet

import (
	"testing"

	"repro/internal/scheme"
	"repro/internal/sim"
)

// The ladder queue must be a pure optimization: it fires events in the
// identical (time, seq) order as the legacy binary heap, so for a fixed
// seed the two scheduler modes must produce the same Summary value field
// for field — same deliveries, same collisions, same latencies, same
// event count. Any divergence means the queue reordered events (or a
// pooled object leaked state), not just changed their cost.
func TestLadderMatchesHeap(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flooding-mobile", Config{
			Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 12,
		}},
		{"adaptive-counter-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50, Requests: 12,
		}},
		{"location-waypoint", Config{
			Scheme: scheme.AdaptiveLocation{}, MapUnits: 5, Hosts: 40, Requests: 10,
			Mobility: MobilityWaypoint,
		}},
		{"neighbor-coverage-groups", Config{
			Scheme: scheme.NeighborCoverage{}, MapUnits: 3, Hosts: 30, Requests: 8,
			Groups: 3,
		}},
		{"repair-dynamic-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 30, Requests: 8,
			HelloMode: HelloDynamic, Repair: true, Warmup: 5 * sim.Second,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				ladder := tc.cfg
				ladder.Seed = seed
				heap := tc.cfg
				heap.Seed = seed
				heap.DisableLadderQueue = true

				lad, err := New(ladder)
				if err != nil {
					t.Fatal(err)
				}
				hp, err := New(heap)
				if err != nil {
					t.Fatal(err)
				}
				ls, hs := lad.Run(), hp.Run()
				if ls != hs {
					t.Fatalf("seed %d: ladder and heap summaries diverge:\nladder: %+v\nheap:   %+v", seed, ls, hs)
				}
			}
		})
	}
}
