package manet_test

import (
	"fmt"

	"repro/internal/manet"
	"repro/internal/scheme"
)

// Running a full broadcast-storm simulation takes a configuration, a
// scheme, and a seed; everything else defaults to the paper's
// parameters.
func Example() {
	net, err := manet.New(manet.Config{
		Hosts:    50,
		MapUnits: 3,
		Scheme:   scheme.AdaptiveCounter{},
		Requests: 20,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	s := net.Run()
	fmt.Println("broadcasts:", s.Broadcasts)
	fmt.Println("high reachability:", s.MeanRE > 0.9)
	fmt.Println("rebroadcasts saved:", s.MeanSRB > 0.3)
	// Output:
	// broadcasts: 20
	// high reachability: true
	// rebroadcasts saved: true
}

// Flooding never saves a rebroadcast: its SRB is identically zero.
func Example_flooding() {
	net, err := manet.New(manet.Config{
		Hosts:    30,
		MapUnits: 1,
		Scheme:   scheme.Flooding{},
		Requests: 10,
		Seed:     3,
	})
	if err != nil {
		panic(err)
	}
	s := net.Run()
	fmt.Printf("flooding SRB = %.1f\n", s.MeanSRB)
	// Output:
	// flooding SRB = 0.0
}
