package manet

import (
	"runtime"
	"testing"

	"repro/internal/scheme"
)

// speculativeCases is the static-world matrix the speculative engine
// must reproduce byte-for-byte. The sparse cases sit below the
// connectivity threshold, so broadcast waves stay band-local and most
// segments validate; the dense cases have bands narrower than one
// interaction disk at every tested shard count, so every segment that
// carries a transmission is forced to roll back and replay — the
// equivalence contract must hold on both ends.
var speculativeCases = []struct {
	name string
	cfg  Config
}{
	{"flooding-sparse", Config{
		Scheme: scheme.Flooding{}, MapUnits: 6, Radius: 200, Hosts: 120,
		Requests: 12, Static: true,
	}},
	{"counter-sparse", Config{
		Scheme: scheme.Counter{C: 2}, MapUnits: 6, Radius: 200, Hosts: 140,
		Requests: 12, Static: true,
	}},
	{"distance-sparse", Config{
		Scheme: scheme.Distance{D: 120}, MapUnits: 6, Radius: 250, Hosts: 120,
		Requests: 10, Static: true,
	}},
	{"location-sparse", Config{
		Scheme: scheme.Location{A: 0.01}, MapUnits: 6, Radius: 250, Hosts: 120,
		Requests: 10, Static: true,
	}},
	{"probabilistic-conflict", Config{
		Scheme: scheme.Probabilistic{P: 0.5}, MapUnits: 3, Radius: 500, Hosts: 40,
		Requests: 10, Static: true,
	}},
	{"flooding-conflict", Config{
		Scheme: scheme.Flooding{}, MapUnits: 3, Radius: 500, Hosts: 40,
		Requests: 10, Static: true,
	}},
}

// TestSpeculativeMatchesSequential pins the tentpole contract: the
// speculative engine's validate-or-replay windows are unobservable, so
// for any shard count and any GOMAXPROCS its Summary must equal the
// sequential oracle's field for field — whether a window commits (the
// lanes' effects merge in oracle order) or rolls back (the
// micro-checkpoint restore plus sequential replay reproduces the
// window from scratch). Under -race in CI this is also the data-race
// check on the lane-state partitioning.
func TestSpeculativeMatchesSequential(t *testing.T) {
	arena := NewArena()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, tc := range speculativeCases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				seq := tc.cfg
				seq.Seed = seed
				seq.Engine = EngineSequentialOracle
				oracle, err := New(seq)
				if err != nil {
					t.Fatal(err)
				}
				want := oracle.Run()
				for _, procs := range []int{1, 4} {
					runtime.GOMAXPROCS(procs)
					for _, shards := range []int{1, 2, 4, 8} {
						sp := tc.cfg
						sp.Seed = seed
						sp.Engine = EngineSpeculative
						sp.Shards = shards
						sp.Arena = arena
						net, err := New(sp)
						if err != nil {
							t.Fatal(err)
						}
						if net.Engine() != EngineSpeculative || net.ShardCount() != shards {
							t.Fatalf("resolved engine %v/%d, want speculative/%d",
								net.Engine(), net.ShardCount(), shards)
						}
						if got := net.Run(); got != want {
							st := net.ParallelStats()
							t.Fatalf("seed %d procs %d shards %d: summaries diverge (spec %d/%d/%d):\nspeculative: %+v\nsequential:  %+v",
								seed, procs, shards, st.Speculated, st.Committed, st.RolledBack, got, want)
						}
					}
				}
			}
		})
	}
}

// TestSpeculativeCommits pins that the engine actually speculates on a
// favorable static world: bands much wider than the interaction disk
// and sub-threshold density keep waves band-local, so segments must
// commit and the border-lane share of executed events must drop below
// the sharded engine's static baseline of 1.0.
func TestSpeculativeCommits(t *testing.T) {
	cfg := speculativeCases[0].cfg // flooding-sparse
	cfg.Seed = 1
	cfg.Engine = EngineSpeculative
	cfg.Shards = 4
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	st := net.ParallelStats()
	if st.Speculated == 0 || st.Committed == 0 {
		t.Fatalf("no committed speculation on a favorable world: %+v", st)
	}
	if rate := st.CommitRate(); rate < 0.5 {
		t.Errorf("commit rate %.2f < 0.5 on a favorable world: %+v", rate, st)
	}
	if share := st.BorderShare(); share >= 1 {
		t.Errorf("border share %.2f — no event ever ran on a lane: %+v", share, st)
	}
	var lanes uint64
	for _, c := range st.ShardExecuted {
		lanes += c
	}
	t.Logf("speculated=%d committed=%d rolledBack=%d laneEvents=%d borderEvents=%d borderShare=%.3f",
		st.Speculated, st.Committed, st.RolledBack, lanes, st.BorderExecuted, st.BorderShare())
}

// TestSpeculativeForcedRollback pins the replay path. On the
// conflict-saturated worlds (bands narrower than one interaction disk)
// most windows refuse to even open — an in-flight transmission spans a
// border, so BeginSpecWindow declines before any speculative state
// exists. The checkpoint-restore path needs a window that opens in an
// airtime gap and then transmits across a border inside a lane; on the
// sparse world that happens at every one of these seed/shard points
// (the counters are deterministic — conflict detection depends only on
// simulation state, never on wall-clock interleaving), so each run
// must record at least one rollback and still match the oracle.
func TestSpeculativeForcedRollback(t *testing.T) {
	base := speculativeCases[0].cfg // flooding-sparse
	for seed := uint64(1); seed <= 2; seed++ {
		seq := base
		seq.Seed = seed
		oracle, err := New(seq)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.Run()
		for _, shards := range []int{2, 4} {
			cfg := base
			cfg.Seed = seed
			cfg.Engine = EngineSpeculative
			cfg.Shards = shards
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := net.Run()
			st := net.ParallelStats()
			if st.RolledBack == 0 {
				t.Errorf("seed %d shards %d: no rollback exercised: %+v", seed, shards, st)
			}
			if got != want {
				t.Errorf("seed %d shards %d: post-rollback run diverged:\nspeculative: %+v\nsequential:  %+v",
					seed, shards, got, want)
			}
			t.Logf("seed=%d shards=%d speculated=%d committed=%d rolledBack=%d",
				seed, shards, st.Speculated, st.Committed, st.RolledBack)
		}
	}
}

// TestSpeculativeDegradesGracefully pins that EngineSpeculative on an
// ineligible configuration (a mobile world) silently behaves like the
// sharded engine: same bytes as the oracle, no speculation attempted.
func TestSpeculativeDegradesGracefully(t *testing.T) {
	cfg := Config{Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 10, Seed: 2}
	oracle, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Run()

	cfg.Engine = EngineSpeculative
	cfg.Shards = 4
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Run(); got != want {
		t.Fatalf("mobile speculative run diverged:\nspeculative: %+v\nsequential:  %+v", got, want)
	}
	st := net.ParallelStats()
	if st.Speculated != 0 || st.Committed != 0 || st.RolledBack != 0 {
		t.Fatalf("ineligible run attempted speculation: %+v", st)
	}
}
