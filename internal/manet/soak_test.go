package manet

import (
	"testing"

	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestSoakRandomConfigurations sweeps randomized configurations across
// every scheme, mobility mode, hello policy, and channel condition, and
// checks the global invariants on each run:
//
//   - metrics stay in range (0 <= RE, SRB <= 1; latency >= 0);
//   - per-broadcast accounting holds (t <= r <= hosts, 1 <= e <= hosts);
//   - all pending rebroadcast state drains;
//   - the run is reproducible under the same seed.
func TestSoakRandomConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow in -short mode")
	}
	schemes := []scheme.Scheme{
		scheme.Flooding{},
		scheme.Probabilistic{P: 0.6},
		scheme.Counter{C: 2},
		scheme.Counter{C: 5},
		scheme.Distance{D: 60},
		scheme.Location{A: 0.0469},
		scheme.Cluster{},
		scheme.Cluster{Inner: scheme.Counter{C: 3}},
		scheme.AdaptiveCounter{},
		scheme.AdaptiveLocation{},
		scheme.NeighborCoverage{},
	}
	rng := sim.NewRNG(999)
	for trial := 0; trial < 24; trial++ {
		sch := schemes[trial%len(schemes)]
		cfg := Config{
			Hosts:         15 + rng.IntN(35),
			MapUnits:      []int{1, 3, 5, 7, 9}[rng.IntN(5)],
			Scheme:        sch,
			Requests:      5 + rng.IntN(10),
			RetainRecords: true,
			Seed:          uint64(trial + 1),
		}
		switch rng.IntN(4) {
		case 0:
			cfg.Static = true
		case 1:
			cfg.Mobility = MobilityWaypoint
		case 2:
			cfg.Groups = 1 + rng.IntN(3)
		}
		if rng.IntN(3) == 0 {
			cfg.LossRate = 0.1
		}
		if rng.IntN(3) == 0 && sch.NeedsHello() {
			cfg.HelloMode = HelloDynamic
		}
		if rng.IntN(4) == 0 {
			cfg.Repair = true
		}

		cfg = cfg.WithDefaults()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid config: %v", trial, err)
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, sch.Name(), err)
		}
		s := n.Run()

		if s.MeanRE < 0 || s.MeanRE > 1 || s.MeanSRB < 0 || s.MeanSRB > 1 {
			t.Errorf("trial %d (%s): metrics out of range: RE=%v SRB=%v",
				trial, sch.Name(), s.MeanRE, s.MeanSRB)
		}
		if s.MeanLatency < 0 {
			t.Errorf("trial %d: negative latency", trial)
		}
		for _, rec := range n.Records() {
			if rec.Transmitted > rec.Received || rec.Received > cfg.Hosts ||
				rec.Reachable < 1 || rec.Reachable > cfg.Hosts {
				t.Errorf("trial %d (%s): accounting broken: e=%d r=%d t=%d",
					trial, sch.Name(), rec.Reachable, rec.Received, rec.Transmitted)
			}
		}
		for i, h := range n.hosts {
			if h.pendingCount() != 0 {
				t.Errorf("trial %d: host %d pending not drained", trial, i)
			}
		}
	}
}
