package manet

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// resumeSchemes is the scheme matrix of the resume-equivalence
// headline: the paper's flooding baseline, the fixed counter scheme,
// and the three adaptive schemes (counter, location, neighbor
// coverage).
var resumeSchemes = []struct {
	name string
	s    scheme.Scheme
}{
	{"flooding", scheme.Flooding{}},
	{"counter", scheme.Counter{C: 3}},
	{"adaptive-counter", scheme.AdaptiveCounter{}},
	{"adaptive-location", scheme.AdaptiveLocation{}},
	{"neighbor-coverage", scheme.NeighborCoverage{}},
}

// resumeBase is the shared world shape of the resume tests: mobile
// hosts, enough requests that broadcasts overlap, small enough to run
// the full matrix quickly.
func resumeBase(s scheme.Scheme, seed uint64) Config {
	return Config{
		Scheme: s, MapUnits: 3, Hosts: 30, Requests: 8, Seed: seed,
	}
}

// captureCheckpoints runs cfg to completion, checkpointing at roughly
// 25/50/75% of the run, and returns the encoded checkpoints plus the
// run's summary (which must be unperturbed by checkpointing).
func captureCheckpoints(t *testing.T, cfg Config) ([][]byte, metrics.Summary) {
	t.Helper()
	baseline, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Run()

	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bufs [][]byte
	net.CheckpointEvery = sim.Duration(want.SimulatedTime) / 4
	net.CheckpointHook = func(sim.Time) error {
		if len(bufs) >= 3 {
			return nil
		}
		var buf bytes.Buffer
		if err := net.Checkpoint(&buf); err != nil {
			return err
		}
		bufs = append(bufs, buf.Bytes())
		return nil
	}
	got, err := net.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checkpointing perturbed the run:\nhooked: %+v\nplain:  %+v", got, want)
	}
	if len(bufs) != 3 {
		t.Fatalf("captured %d checkpoints, want 3", len(bufs))
	}
	return bufs, want
}

// TestResumeEquivalenceMatrix is the PR's headline: for every scheme,
// seed, and engine, a run restored from a checkpoint taken at 25, 50,
// or 75% of the way through must produce the byte-identical Summary of
// the uninterrupted run.
func TestResumeEquivalenceMatrix(t *testing.T) {
	engines := []struct {
		name   string
		apply  func(*Config)
		shards int
	}{
		{"sequential", func(*Config) {}, 0},
		{"sharded4", func(c *Config) { c.Engine = EngineSharded; c.Shards = 4 }, 4},
	}
	for _, sc := range resumeSchemes {
		t.Run(sc.name, func(t *testing.T) {
			for _, eng := range engines {
				t.Run(eng.name, func(t *testing.T) {
					for seed := uint64(1); seed <= 3; seed++ {
						cfg := resumeBase(sc.s, seed)
						eng.apply(&cfg)
						bufs, want := captureCheckpoints(t, cfg)
						for frac, buf := range bufs {
							restored, err := RestoreNetwork(bytes.NewReader(buf), cfg)
							if err != nil {
								t.Fatalf("seed %d checkpoint %d: %v", seed, frac, err)
							}
							if restored.ShardCount() != eng.shards {
								t.Fatalf("restored onto %d shards, want %d", restored.ShardCount(), eng.shards)
							}
							if got := restored.Run(); got != want {
								t.Fatalf("seed %d checkpoint at ~%d%%: resumed summary diverges:\nresumed:  %+v\nstraight: %+v",
									seed, 25*(frac+1), got, want)
							}
						}
					}
				})
			}
		})
	}
}

// TestResumeEquivalenceRepairLoss covers the stateful extensions in one
// resume cell: repair advertisements/NACKs in flight, Bernoulli loss
// stream state, and the capture effect.
func TestResumeEquivalenceRepairLoss(t *testing.T) {
	cfg := Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 3, Hosts: 30, Requests: 8,
		Repair: true, LossRate: 0.15, CaptureRatio: 2, Seed: 11,
		Warmup: 2 * sim.Second,
	}
	bufs, want := captureCheckpoints(t, cfg)
	for frac, buf := range bufs {
		restored, err := RestoreNetwork(bytes.NewReader(buf), cfg)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", frac, err)
		}
		if got := restored.Run(); got != want {
			t.Fatalf("checkpoint at ~%d%%: resumed summary diverges:\nresumed:  %+v\nstraight: %+v",
				25*(frac+1), got, want)
		}
	}
}

// TestRestoredRunAuditClean restores into a network with the invariant
// auditor attached: the resumed half of the run must be violation-free
// and still produce the original summary (the auditor is part of the
// configuration digest's blind spot by design — it is observation-only).
func TestRestoredRunAuditClean(t *testing.T) {
	cfg := resumeBase(scheme.AdaptiveCounter{}, 7)
	bufs, want := captureCheckpoints(t, cfg)

	audited := cfg
	audited.Audit = check.New()
	restored, err := RestoreNetwork(bytes.NewReader(bufs[1]), audited)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Run()
	if err := audited.Audit.Err(); err != nil {
		t.Fatalf("restored run reported violations: %v", err)
	}
	if !audited.Audit.SummaryChecked() {
		t.Fatal("auditor never checked the restored summary")
	}
	if got != want {
		t.Fatalf("audited resume diverges:\nresumed:  %+v\nstraight: %+v", got, want)
	}
}

// TestForkDivergedSeed pins the fork-for-what-if contract: the same
// checkpoint restored twice yields one run that reproduces the original
// and one — re-seeded via DivergeSeed — that explores a different
// future from the identical past.
func TestForkDivergedSeed(t *testing.T) {
	cfg := resumeBase(scheme.AdaptiveCounter{}, 3)
	bufs, want := captureCheckpoints(t, cfg)

	replay, err := RestoreNetwork(bytes.NewReader(bufs[0]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := replay.Run(); got != want {
		t.Fatalf("replay fork diverged:\nreplay:   %+v\nstraight: %+v", got, want)
	}

	fork, err := RestoreNetwork(bytes.NewReader(bufs[0]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fork.DivergeSeed(0xdead)
	if got := fork.Run(); got == want {
		t.Fatalf("diverged-seed fork reproduced the original summary %+v", got)
	}
}

// TestRestoreIntoArena restores a sharded checkpoint into slab memory
// reused from a previous restored world: arena reuse must not leak any
// prior state into the resumed run.
func TestRestoreIntoArena(t *testing.T) {
	cfg := resumeBase(scheme.NeighborCoverage{}, 5)
	cfg.Engine = EngineSharded
	cfg.Shards = 4
	bufs, want := captureCheckpoints(t, cfg)

	arena := NewArena()
	cfg.Arena = arena
	for round := 0; round < 2; round++ {
		restored, err := RestoreNetwork(bytes.NewReader(bufs[2]), cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := restored.Run(); got != want {
			t.Fatalf("round %d: arena-restored summary diverges:\nresumed:  %+v\nstraight: %+v", round, got, want)
		}
	}
}

// TestCheckpointUnsupportedConfigs pins the refusal list: legacy
// engines, telemetry, and movers without snapshot support must error at
// checkpoint time instead of writing a document that cannot resume.
func TestCheckpointUnsupportedConfigs(t *testing.T) {
	cases := []struct {
		name  string
		apply func(*Config)
	}{
		{"heap-scheduler", func(c *Config) { c.DisableLadderQueue = true }},
		{"map-bookkeeping", func(c *Config) { c.DisableDenseState = true }},
		{"telemetry", func(c *Config) { c.Telemetry = obs.New(sim.Second) }},
		{"groups", func(c *Config) { c.Groups = 3 }},
		{"waypoint", func(c *Config) { c.Mobility = MobilityWaypoint }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := resumeBase(scheme.Flooding{}, 1)
			tc.apply(&cfg)
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer net.Close()
			if err := net.Checkpoint(&bytes.Buffer{}); err == nil {
				t.Fatal("Checkpoint accepted an unsupported configuration")
			}
		})
	}
}

// TestRestoreContradictoryConfig pins the digest check: restoring under
// any configuration that would change the event sequence is an error,
// not a silent divergence.
func TestRestoreContradictoryConfig(t *testing.T) {
	cfg := resumeBase(scheme.Counter{C: 3}, 2)
	bufs, _ := captureCheckpoints(t, cfg)

	contradictions := []struct {
		name  string
		apply func(*Config)
	}{
		{"different-seed", func(c *Config) { c.Seed = 99 }},
		{"different-scheme", func(c *Config) { c.Scheme = scheme.Flooding{} }},
		{"different-hosts", func(c *Config) { c.Hosts = 31 }},
		{"different-requests", func(c *Config) { c.Requests = 9 }},
		{"different-engine", func(c *Config) { c.Engine = EngineSharded; c.Shards = 4 }},
		{"loss-enabled", func(c *Config) { c.LossRate = 0.1 }},
	}
	for _, tc := range contradictions {
		t.Run(tc.name, func(t *testing.T) {
			bad := cfg
			tc.apply(&bad)
			if _, err := RestoreNetwork(bytes.NewReader(bufs[0]), bad); err == nil {
				t.Fatal("RestoreNetwork accepted a contradictory configuration")
			}
		})
	}

	t.Run("truncated", func(t *testing.T) {
		if _, err := RestoreNetwork(bytes.NewReader(bufs[0][:len(bufs[0])/2]), cfg); err == nil {
			t.Fatal("RestoreNetwork accepted a truncated checkpoint")
		}
	})
}

// TestCheckpointHookErrorAborts verifies a hook error stops the run at
// the barrier and surfaces through RunContext.
func TestCheckpointHookErrorAborts(t *testing.T) {
	cfg := resumeBase(scheme.Flooding{}, 1)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	net.CheckpointEvery = sim.Second
	net.CheckpointHook = func(sim.Time) error { return boom }
	if _, err := net.RunContext(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("RunContext returned %v, want the hook's error", err)
	}
}

// TestResumeSoak checkpoints and restores at every checkpoint window of
// a full mobile repair run — a chain of resumed processes — and
// requires the final summary, the record-arena high-water marks, and
// the event-pool statistics at every window to match the uninterrupted
// run exactly.
func TestResumeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("resume soak skipped in -short mode")
	}
	cfg := Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 3, Hosts: 30, Requests: 10,
		Repair: true, Seed: 9, Warmup: 2 * sim.Second,
	}
	const window = 2 * sim.Second

	// mark is the resource state compared at every checkpoint window. The
	// event-pool comparison is of total allocations (hits+misses): the
	// split between the two depends on when the ladder queue lazily
	// recycles tombstoned events, which is bucket-geometry cache behavior
	// a checkpoint deliberately does not serialize.
	type mark struct {
		arena       int
		alloc       uint64
		prFreeTotal int
		setPool     int
		framePool   int
		helloPool   int
	}
	observe := func(n *Network) mark {
		m := mark{
			arena:     int(n.recBase) + len(n.recs),
			setPool:   len(n.setPool),
			framePool: len(n.framePool),
			helloPool: len(n.helloPool),
		}
		hits, misses := n.sched.PoolStats()
		m.alloc = hits + misses
		for _, h := range n.hosts {
			m.prFreeTotal += len(h.prFree)
		}
		return m
	}

	baseline, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wantMarks []mark
	baseline.CheckpointEvery = window
	baseline.CheckpointHook = func(sim.Time) error {
		wantMarks = append(wantMarks, observe(baseline))
		return nil
	}
	want, err := baseline.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(wantMarks) < 5 {
		t.Fatalf("baseline hit only %d checkpoint windows; widen the run", len(wantMarks))
	}

	// The chain: each process runs until its first checkpoint window,
	// writes the checkpoint, and stops; the next process restores from
	// those bytes. The final process reaches the end of the run.
	stop := errors.New("checkpoint taken")
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gotMarks []mark
	var got metrics.Summary
	for hop := 0; ; hop++ {
		if hop > len(wantMarks)+2 {
			t.Fatalf("resume chain did not terminate after %d hops", hop)
		}
		var buf bytes.Buffer
		net.CheckpointEvery = window
		net.CheckpointHook = func(sim.Time) error {
			gotMarks = append(gotMarks, observe(net))
			if err := net.Checkpoint(&buf); err != nil {
				return err
			}
			return stop
		}
		s, err := net.RunContext(context.Background())
		if errors.Is(err, stop) {
			net, err = RestoreNetwork(bytes.NewReader(buf.Bytes()), cfg)
			if err != nil {
				t.Fatalf("hop %d: %v", hop, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		got = s
		break
	}
	if got != want {
		t.Fatalf("resume chain diverged:\nchained:  %+v\nstraight: %+v", got, want)
	}
	if len(gotMarks) != len(wantMarks) {
		t.Fatalf("chain observed %d checkpoint windows, baseline %d", len(gotMarks), len(wantMarks))
	}
	for i := range wantMarks {
		if gotMarks[i] != wantMarks[i] {
			t.Fatalf("window %d: chained state %+v, baseline %+v", i, gotMarks[i], wantMarks[i])
		}
	}
}
