package manet

import (
	"fmt"
	"io"
	"slices"

	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// This file converts between a live Network and the passive checkpoint
// document in internal/snapshot. A checkpoint may only be taken at a
// barrier (the CheckpointHook instant): every pending event is then
// strictly in the future, the parallel lanes are folded, and each
// layer's Snapshot sees coherent state. Restore rebuilds a Network
// through the ordinary construction path (New), structurally drains the
// construction-time events, and overwrites the dynamic state layer by
// layer, re-inserting every armed event at its exact checkpointed
// (time, seq) key — so the restored run executes the identical event
// sequence, byte for byte, that the uninterrupted run would have.

// checkpointDigest renders every configuration field that influences
// the deterministic event sequence. Restore refuses a checkpoint whose
// digest differs from the target configuration's: resuming under a
// contradictory configuration would silently diverge instead of
// continuing the original run. The resolved engine and shard count are
// part of the digest — cross-engine resume is excluded by design (the
// shard-lane sequence namespaces are engine-specific).
func (n *Network) checkpointDigest() string {
	if n.digestCache != "" {
		return n.digestCache
	}
	c := n.cfg
	n.digestCache = fmt.Sprintf("v1 hosts=%d map=%d unit=%g radius=%g speed=%g static=%t mobility=%d pause=%d groups=%d spread=%g placement=%v "+
		"scheme=%q requests=%d arrival=%d hello=%d hi=%d dhi=%+v expiry=%d slots=%d warmup=%d drain=%d timing=%+v "+
		"engine=%d shards=%d nocoll=%t idealhello=%t nogrid=%t nointerf=%t nodense=%t noladder=%t "+
		"loss=%g capture=%g repair=%t window=%d retain=%t seed=%d",
		c.Hosts, c.MapUnits, c.UnitMeters, c.Radius, c.MaxSpeedKMH, c.Static, c.Mobility, c.WaypointPause, c.Groups, c.GroupSpread, c.Placement,
		c.Scheme.Name(), c.Requests, c.ArrivalSpread, c.HelloMode, c.HelloInterval, c.DHI, c.ExpiryIntervals, c.AssessmentSlots, c.Warmup, c.Drain, c.Timing,
		n.engine, n.shards, c.DisableCollisions, c.IdealHello, c.DisableSpatialIndex, c.DisableInterferenceIndex, c.DisableDenseState, c.DisableLadderQueue,
		c.LossRate, c.CaptureRatio, c.Repair, c.RepairWindow, c.RetainRecords, c.Seed)
	return n.digestCache
}

// checkpointable reports why this network cannot be checkpointed, nil
// if it can. The unsupported features are all either legacy ablations
// (map-backed state, the heap scheduler) or carry state no layer
// snapshot covers (telemetry series, group/waypoint movers).
func (n *Network) checkpointable() error {
	c := n.cfg
	switch {
	case c.DisableLadderQueue:
		return fmt.Errorf("manet: checkpoint unsupported with the legacy heap scheduler")
	case c.DisableDenseState:
		return fmt.Errorf("manet: checkpoint unsupported with the legacy map-backed bookkeeping")
	case n.obs != nil:
		return fmt.Errorf("manet: checkpoint unsupported with telemetry attached")
	case c.Groups > 0:
		return fmt.Errorf("manet: checkpoint unsupported with group mobility")
	case c.Mobility == MobilityWaypoint && !c.Static:
		return fmt.Errorf("manet: checkpoint unsupported with waypoint mobility")
	}
	return nil
}

// describeFrame converts one live frame to its checkpoint form. Frames
// carrying RTS/CTS reservation state or an unknown payload abort.
func describeFrame(f *packet.Frame) (snapshot.Frame, error) {
	if f.NAV != 0 {
		return snapshot.Frame{}, fmt.Errorf("manet: checkpoint of a frame with a NAV reservation")
	}
	sf := snapshot.Frame{
		Kind:          uint8(f.Kind),
		Sender:        f.Sender,
		Dest:          f.Dest,
		Bytes:         int64(f.Bytes),
		Broadcast:     f.Broadcast,
		SenderPos:     [2]float64{f.SenderPos.X, f.SenderPos.Y},
		HelloInterval: f.HelloInterval,
	}
	sf.Neighbors = append(sf.Neighbors, f.Neighbors...)
	sf.Recent = append(sf.Recent, f.Recent...)
	switch p := f.Payload.(type) {
	case nil:
	case repairRequest:
		sf.PayloadKind = snapshot.PayloadRepairRequest
		sf.PayloadID = p.ID
	case repairResponse:
		sf.PayloadKind = snapshot.PayloadRepairResponse
		sf.PayloadID = p.ID
	default:
		return snapshot.Frame{}, fmt.Errorf("manet: checkpoint of a frame with unknown payload %T", p)
	}
	return sf, nil
}

// materializeFrame rebuilds a live frame from its checkpoint form.
func materializeFrame(sf *snapshot.Frame) (*packet.Frame, error) {
	f := &packet.Frame{
		Kind:          packet.Kind(sf.Kind),
		Sender:        sf.Sender,
		Dest:          sf.Dest,
		Bytes:         int(sf.Bytes),
		Broadcast:     sf.Broadcast,
		SenderPos:     geom.Point{X: sf.SenderPos[0], Y: sf.SenderPos[1]},
		HelloInterval: sf.HelloInterval,
	}
	f.Neighbors = append(f.Neighbors, sf.Neighbors...)
	f.Recent = append(f.Recent, sf.Recent...)
	switch sf.PayloadKind {
	case snapshot.PayloadNone:
	case snapshot.PayloadRepairRequest:
		f.Payload = repairRequest{ID: sf.PayloadID}
	case snapshot.PayloadRepairResponse:
		f.Payload = repairResponse{ID: sf.PayloadID}
	default:
		return nil, fmt.Errorf("manet: restore frame with unknown payload kind %d", sf.PayloadKind)
	}
	return f, nil
}

// Snapshot captures the network's full deterministic state as a
// checkpoint document. It must be called at a barrier — in practice
// from CheckpointHook — where every pending event is strictly in the
// future and the shard lanes are folded.
func (n *Network) Snapshot() (*snapshot.Checkpoint, error) {
	ck := &snapshot.Checkpoint{}
	if err := n.snapshotInto(ck); err != nil {
		return nil, err
	}
	return ck, nil
}

// resetCheckpoint truncates a checkpoint document for reuse, keeping
// the capacity of its top-level tables. The speculative engine's
// micro-checkpoints pool one document this way: every segment
// re-snapshots into the same backing arrays instead of reallocating
// them (snapshotInto only ever assigns or appends, so a truncated
// document is indistinguishable from a zero one).
func resetCheckpoint(ck *snapshot.Checkpoint) {
	ck.Digest = ""
	ck.Frames = ck.Frames[:0]
	ck.Observers = ck.Observers[:0]
	ck.Hosts = ck.Hosts[:0]
	recs, origs := ck.Net.Records[:0], ck.Net.Originations[:0]
	ck.Net = snapshot.Network{Records: recs, Originations: origs}
}

// snapshotInto is Snapshot writing into a caller-owned (possibly
// pooled) document; ck must be zero or freshly resetCheckpoint-ed.
func (n *Network) snapshotInto(ck *snapshot.Checkpoint) error {
	if err := n.checkpointable(); err != nil {
		return err
	}
	ck.Digest = n.checkpointDigest()

	// Identity tables, built lazily by the resolvers the layer snapshots
	// call: a frame (or observer) referenced from several places — a MAC
	// queue record and the rebroadcast decision that enqueued it, an
	// active flight and its sender's in-flight record — appears once and
	// is shared again on restore.
	var tableErr error
	frameIdx := make(map[*packet.Frame]uint32)
	frameRef := func(f *packet.Frame) uint32 {
		if f == nil {
			return 0
		}
		if ref, ok := frameIdx[f]; ok {
			return ref
		}
		sf, err := describeFrame(f)
		if err != nil {
			tableErr = err
			return phy.BadRef
		}
		ck.Frames = append(ck.Frames, sf)
		ref := uint32(len(ck.Frames))
		frameIdx[f] = ref
		return ref
	}
	obsIdx := make(map[mac.TxObserver]uint32)
	obsRef := func(o mac.TxObserver) uint32 {
		if o == nil {
			return 0
		}
		if ref, ok := obsIdx[o]; ok {
			return ref
		}
		var so snapshot.Observer
		switch v := o.(type) {
		case *helloTx:
			so = snapshot.Observer{Kind: snapshot.ObsHello, Host: int32(v.h.id)}
		case *pendingRebroadcast:
			so = snapshot.Observer{Kind: snapshot.ObsPending, Host: int32(v.h.id), Bid: v.bid}
		case *originTx:
			fr := frameRef(v.frame)
			if fr == phy.BadRef {
				return mac.BadRef
			}
			so = snapshot.Observer{Kind: snapshot.ObsOrigin, Host: int32(v.h.id), Bid: v.bid, FrameRef: fr}
		default:
			tableErr = fmt.Errorf("manet: checkpoint of unknown transmission observer %T", o)
			return mac.BadRef
		}
		ck.Observers = append(ck.Observers, so)
		ref := uint32(len(ck.Observers))
		obsIdx[o] = ref
		return ref
	}
	enderRef := func(sender int, e phy.TxEnder) uint32 {
		if e == nil {
			return 0
		}
		if sender >= 0 && sender < len(n.hosts) && e == n.hosts[sender].mac.DataEnder() {
			return uint32(sender) + 1
		}
		return phy.BadRef
	}

	ck.Sched = n.sched.SnapshotState()
	ch, err := n.ch.Snapshot(frameRef, enderRef)
	if err == nil {
		err = tableErr
	}
	if err != nil {
		return err
	}
	ck.Channel = ch

	armed := n.ch.PendingEvents()
	// Host slots are written in place: on a pooled document each slot
	// keeps the nested buffers of the previous snapshot (Dedup, Pending,
	// HelloFly, Recent, Nacked), so steady-state micro-checkpoints
	// re-fill capacity instead of reallocating it. On a fresh document
	// the buffers start nil and the appends below allocate exactly what
	// the old append-of-a-local did.
	if cap(ck.Hosts) >= len(n.hosts) {
		ck.Hosts = ck.Hosts[:len(n.hosts)]
	} else {
		ck.Hosts = make([]snapshot.Host, len(n.hosts))
	}
	for hi, h := range n.hosts {
		roamer, ok := h.mover.(*mobility.Roamer)
		if !ok {
			return fmt.Errorf("manet: checkpoint of unsupported mover %T", h.mover)
		}
		hs := &ck.Hosts[hi]
		*hs = snapshot.Host{
			Dedup:    h.dedup.SnapshotAppend(hs.Dedup[:0]),
			RNG:      h.rng.State(),
			Mover:    roamer.Snapshot(),
			Table:    h.table.Snapshot(),
			PrFree:   int64(len(h.prFree)),
			Pending:  hs.Pending[:0],
			HelloFly: hs.HelloFly[:0],
			Recent:   hs.Recent[:0],
			Nacked:   hs.Nacked[:0],
		}
		if hs.Mover.HasTurn {
			armed++
		}
		armed += h.table.PendingEvents()
		for _, p := range h.livePending {
			js, err := scheme.SnapshotJudge(p.judge)
			if err != nil {
				return err
			}
			pd := snapshot.PendingDecision{Bid: p.bid, Judge: js, Started: p.started}
			if p.assess != nil {
				pd.HasAssess = true
				pd.AssessAt = p.assess.At()
				pd.AssessSeq = p.assess.Seq()
				armed++
			}
			if p.frame != nil {
				if pd.FrameRef = frameRef(p.frame); pd.FrameRef == phy.BadRef {
					return tableErr
				}
			}
			hs.Pending = append(hs.Pending, pd)
		}
		st, err := h.mac.Snapshot(frameRef, obsRef)
		if err == nil {
			err = tableErr
		}
		if err != nil {
			return fmt.Errorf("manet: checkpoint %v: %w", h.id, err)
		}
		hs.MAC = st
		armed += h.mac.PendingEvents()
		for _, f := range h.helloFly {
			ref := frameRef(f)
			if ref == phy.BadRef {
				return tableErr
			}
			hs.HelloFly = append(hs.HelloFly, ref)
		}
		if h.helloTimer != nil {
			hs.HasHelloTimer = true
			hs.HelloAt = h.helloTimer.At()
			hs.HelloSeq = h.helloTimer.Seq()
			armed++
		}
		for _, e := range h.recent {
			hs.Recent = append(hs.Recent, snapshot.RecentBroadcast{ID: e.id, Heard: e.heard})
		}
		for bid := range h.nacked {
			hs.Nacked = append(hs.Nacked, bid)
		}
		slices.SortFunc(hs.Nacked, func(a, b packet.BroadcastID) int {
			if a.Source != b.Source {
				return int(a.Source) - int(b.Source)
			}
			return int(a.Seq) - int(b.Seq)
		})
	}

	ck.Net = snapshot.Network{
		Seq:              n.seq,
		EndTime:          n.endTime,
		HelloSent:        int64(n.helloSent),
		RepairsRequested: int64(n.repairsRequested),
		RepairsDelivered: int64(n.repairsDelivered),
		RecBase:          n.recBase,
		Stream:           n.stream.Snapshot(),
		SetPool:          int64(len(n.setPool)),
		FramePool:        int64(len(n.framePool)),
		HelloPool:        int64(len(n.helloPool)),
	}
	for i := range n.recs {
		rec := &n.recs[i]
		ck.Net.Records = append(ck.Net.Records, snapshot.Record{
			ID:           rec.ID,
			Start:        rec.Start,
			Reachable:    int64(rec.Reachable),
			Received:     int64(rec.Received),
			Transmitted:  int64(rec.Transmitted),
			LastActivity: rec.LastActivity(),
			Open:         n.recOpen[i],
		})
	}
	for i := range n.originations {
		o := &n.originations[i]
		if o.ev == nil {
			continue
		}
		ck.Net.Originations = append(ck.Net.Originations, snapshot.Origination{
			Src: o.src, At: o.ev.At(), Seq: o.ev.Seq(),
		})
		armed++
	}

	// Exhaustiveness cross-check: every pending scheduler event must be
	// owned by exactly one serialized descriptor, or the restored run
	// would silently drop (or duplicate) an event.
	if pending := n.sched.Pending(); armed != pending {
		return fmt.Errorf("manet: checkpoint covers %d armed events, scheduler holds %d", armed, pending)
	}
	return nil
}

// Checkpoint writes the network's checkpoint document to w (see
// Snapshot for when it may be taken).
func (n *Network) Checkpoint(w io.Writer) error {
	ck, err := n.Snapshot()
	if err != nil {
		return err
	}
	return snapshot.Write(w, ck)
}

// RestoreNetwork reads one checkpoint from r and rebuilds a Network
// that resumes the checkpointed run: its RunContext continues the exact
// event sequence — and produces the byte-identical Summary — of the run
// the checkpoint was taken from. cfg must describe the original run;
// a contradictory configuration (anything that would change the event
// sequence, including engine/shard selection) is an error.
func RestoreNetwork(r io.Reader, cfg Config) (*Network, error) {
	ck, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := n.restore(ck); err != nil {
		n.Close()
		return nil, err
	}
	return n, nil
}

// RestoreCheckpoint rebuilds a Network from an already-decoded document
// (fork-for-what-if restores the same document twice).
func RestoreCheckpoint(ck *snapshot.Checkpoint, cfg Config) (*Network, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := n.restore(ck); err != nil {
		n.Close()
		return nil, err
	}
	return n, nil
}

func (n *Network) restore(ck *snapshot.Checkpoint) error {
	if err := n.checkpointable(); err != nil {
		return err
	}
	if digest := n.checkpointDigest(); digest != ck.Digest {
		return fmt.Errorf("manet: checkpoint was taken under a different configuration\n  checkpoint: %s\n  requested:  %s", ck.Digest, digest)
	}
	if len(ck.Hosts) != len(n.hosts) {
		return fmt.Errorf("manet: checkpoint holds %d hosts, network has %d", len(ck.Hosts), len(n.hosts))
	}

	// Construction armed the movers' first turn events; empty the queue
	// structurally (the stale handles the movers still hold stay
	// cancelled — restored events are allocated fresh, never from the
	// pool, so no handle is reused before its owner is overwritten) and
	// rewind the scheduler to the checkpointed counters.
	n.sched.Drain()
	if err := n.sched.RestoreState(ck.Sched); err != nil {
		return err
	}
	now := n.sched.Now()

	// Materialize the frame identity table. Pool-managed frames
	// (broadcast data and HELLO beacons) re-enter the auditor's frame
	// accounting; repair unicasts and link-layer ACKs were never pooled.
	frames := make([]*packet.Frame, len(ck.Frames))
	for i := range ck.Frames {
		f, err := materializeFrame(&ck.Frames[i])
		if err != nil {
			return err
		}
		if n.audit != nil && (f.Kind == packet.KindBroadcast || f.Kind == packet.KindHello) {
			n.audit.AuditAcquire(now, "frame", f)
		}
		frames[i] = f
	}
	frameAt := func(ref uint32) *packet.Frame {
		if ref == 0 || int(ref) > len(frames) {
			return nil
		}
		return frames[ref-1]
	}
	var obsErr error
	obsCache := make([]mac.TxObserver, len(ck.Observers))
	obsAt := func(ref uint32) mac.TxObserver {
		if ref == 0 {
			return nil
		}
		if int(ref) > len(ck.Observers) {
			obsErr = fmt.Errorf("manet: restore observer reference %d outside table of %d", ref, len(ck.Observers))
			return nil
		}
		if o := obsCache[ref-1]; o != nil {
			return o
		}
		so := &ck.Observers[ref-1]
		if int(so.Host) < 0 || int(so.Host) >= len(n.hosts) {
			obsErr = fmt.Errorf("manet: restore observer for unknown host %d", so.Host)
			return nil
		}
		h := n.hosts[so.Host]
		var o mac.TxObserver
		switch so.Kind {
		case snapshot.ObsHello:
			o = &h.helloTx
		case snapshot.ObsPending:
			p := h.lookupPending(so.Bid)
			if p == nil {
				obsErr = fmt.Errorf("manet: restore observer for unknown pending decision %v at %v", so.Bid, h.id)
				return nil
			}
			o = p
		case snapshot.ObsOrigin:
			f := frameAt(so.FrameRef)
			if f == nil {
				obsErr = fmt.Errorf("manet: restore origination observer without its frame")
				return nil
			}
			o = &originTx{h: h, bid: so.Bid, frame: f}
		default:
			obsErr = fmt.Errorf("manet: restore observer of unknown kind %d", so.Kind)
			return nil
		}
		obsCache[ref-1] = o
		return o
	}
	bound := func(ref uint32, p *mac.Pending) {
		if ref == 0 || int(ref) > len(ck.Observers) {
			return
		}
		so := &ck.Observers[ref-1]
		if so.Kind != snapshot.ObsPending {
			return
		}
		if pr := n.hosts[so.Host].lookupPending(so.Bid); pr != nil {
			pr.mp = p
		}
	}
	enderAt := func(ref uint32) phy.TxEnder {
		if ref == 0 || int(ref) > len(n.hosts) {
			return nil
		}
		return n.hosts[ref-1].mac.DataEnder()
	}

	if err := n.ch.Restore(ck.Channel, frameAt, enderAt); err != nil {
		return err
	}
	if n.audit != nil {
		// The auditor joined mid-run: seed its packet-conservation
		// counters with the traffic the checkpoint already settled, plus
		// the in-flight copies whose outcomes it will witness without
		// having seen their AuditTransmit.
		inflight := 0
		for _, ts := range ck.Channel.Active {
			inflight += len(ts.Receivers)
		}
		st := ck.Channel.Stats
		n.audit.ResumeConservation(st.Transmissions, st.Deliveries, st.Collisions, st.Lost, inflight)
	}

	for i, h := range n.hosts {
		hs := &ck.Hosts[i]
		if err := h.dedup.Restore(hs.Dedup); err != nil {
			return fmt.Errorf("manet: restore %v: %w", h.id, err)
		}
		h.rng.SetState(hs.RNG)
		roamer, ok := h.mover.(*mobility.Roamer)
		if !ok {
			return fmt.Errorf("manet: restore into unsupported mover %T", h.mover)
		}
		if err := roamer.Restore(hs.Mover); err != nil {
			return fmt.Errorf("manet: restore %v: %w", h.id, err)
		}
		if err := h.table.Restore(hs.Table); err != nil {
			return fmt.Errorf("manet: restore %v: %w", h.id, err)
		}
		for _, e := range hs.Recent {
			h.recent = append(h.recent, recentEntry{id: e.ID, heard: e.Heard})
		}
		if len(hs.Nacked) > 0 {
			h.nacked = make(map[packet.BroadcastID]bool, len(hs.Nacked))
			for _, bid := range hs.Nacked {
				h.nacked[bid] = true
			}
		}
		// Open rebroadcast decisions come back before the MAC: its
		// observer resolver finds them through lookupPending, and the
		// bound callback re-links each decision's MAC handle.
		for _, pd := range hs.Pending {
			judge, err := scheme.RestoreJudge(pd.Judge, h)
			if err != nil {
				return fmt.Errorf("manet: restore %v: %w", h.id, err)
			}
			p := &pendingRebroadcast{h: h, bid: pd.Bid, judge: judge, started: pd.Started}
			if pd.FrameRef != 0 {
				if p.frame = frameAt(pd.FrameRef); p.frame == nil {
					return fmt.Errorf("manet: restore %v: pending decision %v without its frame", h.id, pd.Bid)
				}
			}
			if n.audit != nil {
				n.audit.AuditAcquire(now, "manet.pending", p)
			}
			h.trackPending(p)
			if pd.HasAssess {
				ev, err := n.sched.RestoreRunner(-1, pd.AssessAt, pd.AssessSeq, p)
				if err != nil {
					return fmt.Errorf("manet: restore %v: assessment for %v: %w", h.id, pd.Bid, err)
				}
				p.assess = ev
			}
		}
		if err := h.mac.Restore(hs.MAC, frameAt, obsAt, bound); err != nil {
			return fmt.Errorf("manet: restore %v: %w", h.id, err)
		}
		if obsErr != nil {
			return obsErr
		}
		if hs.HasHelloTimer {
			ev, err := n.sched.RestoreRunner(-1, hs.HelloAt, hs.HelloSeq, &h.helloTx)
			if err != nil {
				return fmt.Errorf("manet: restore %v: hello timer: %w", h.id, err)
			}
			h.helloTimer = ev
		}
		for _, ref := range hs.HelloFly {
			f := frameAt(ref)
			if f == nil {
				return fmt.Errorf("manet: restore %v: in-flight HELLO without its frame", h.id)
			}
			h.helloFly = append(h.helloFly, f)
		}
		for j := int64(0); j < hs.PrFree; j++ {
			h.prFree = append(h.prFree, &pendingRebroadcast{h: h})
		}
	}

	// Network-level state: counters, the record arena with its
	// open-reference counts, the streaming aggregates' fold history, the
	// object-pool depths, and the not-yet-fired workload requests.
	n.seq = ck.Net.Seq
	n.endTime = ck.Net.EndTime
	n.helloSent = int(ck.Net.HelloSent)
	n.repairsRequested = int(ck.Net.RepairsRequested)
	n.repairsDelivered = int(ck.Net.RepairsDelivered)
	n.recBase = ck.Net.RecBase
	for i := range ck.Net.Records {
		r := &ck.Net.Records[i]
		rec := metrics.MakeBroadcastRecord(r.ID, r.Start, int(r.Reachable))
		rec.Received = int(r.Received)
		rec.Transmitted = int(r.Transmitted)
		rec.RestoreActivity(r.LastActivity)
		n.recs = append(n.recs, rec)
		n.recOpen = append(n.recOpen, r.Open)
	}
	n.stream.Restore(ck.Net.Stream)
	for i := int64(0); i < ck.Net.SetPool; i++ {
		n.setPool = append(n.setPool, nodeset.New(len(n.hosts)))
	}
	for i := int64(0); i < ck.Net.FramePool; i++ {
		n.framePool = append(n.framePool, &packet.Frame{})
	}
	for i := int64(0); i < ck.Net.HelloPool; i++ {
		n.helloPool = append(n.helloPool, &packet.Frame{})
	}
	n.originations = make([]originationEvent, len(ck.Net.Originations))
	for i := range ck.Net.Originations {
		so := &ck.Net.Originations[i]
		if int(so.Src) < 0 || int(so.Src) >= len(n.hosts) {
			return fmt.Errorf("manet: restore origination from unknown host %d", so.Src)
		}
		o := &n.originations[i]
		o.n = n
		o.src = so.Src
		ev, err := n.sched.RestoreRunner(-1, so.At, so.Seq, o)
		if err != nil {
			return fmt.Errorf("manet: restore origination: %w", err)
		}
		o.ev = ev
	}

	// The inverse of the checkpoint's exhaustiveness cross-check: every
	// descriptor must have re-armed exactly one event.
	armed := n.ch.PendingEvents() + len(n.originations)
	for i, h := range n.hosts {
		hs := &ck.Hosts[i]
		armed += h.mac.PendingEvents() + h.table.PendingEvents()
		if hs.Mover.HasTurn {
			armed++
		}
		if hs.HasHelloTimer {
			armed++
		}
		for _, pd := range hs.Pending {
			if pd.HasAssess {
				armed++
			}
		}
	}
	if pending := n.sched.Pending(); armed != pending {
		return fmt.Errorf("manet: restore re-armed %d events, scheduler holds %d", armed, pending)
	}
	n.resumed = true
	return nil
}

// DivergeSeed re-seeds every host's private random stream from salt,
// forking the restored run onto a different future: assessment delays,
// HELLO phases, and per-scheme draws all diverge while the restored
// past (records, tables, in-flight traffic) is kept. Call between
// RestoreNetwork and RunContext on a forked what-if copy.
func (n *Network) DivergeSeed(salt uint64) {
	root := sim.NewRNG(salt)
	for i, h := range n.hosts {
		h.rng.SetState(root.Fork(uint64(i)).State())
	}
}
