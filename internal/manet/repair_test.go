package manet

import (
	"testing"

	"repro/internal/scheme"
	"repro/internal/sim"
)

// repairConfig builds a lossy workload where best-effort dissemination
// misses hosts, so repairs have something to do.
func repairConfig(repair bool, seed uint64) Config {
	return Config{
		Hosts:         60,
		MapUnits:      5,
		Scheme:        scheme.Counter{C: 2}, // aggressive suppression: misses hosts
		Requests:      20,
		LossRate:      0.15, // fading loss on top
		Repair:        repair,
		HelloMode:     HelloFixed,
		HelloInterval: 1 * sim.Second,
		Drain:         8 * sim.Second, // time for advertisement + repair rounds
		RetainRecords: true,
		Seed:          seed,
	}
}

func TestRepairImprovesDeliveryUnderLoss(t *testing.T) {
	nOff, err := New(repairConfig(false, 3))
	if err != nil {
		t.Fatal(err)
	}
	sOff := nOff.Run()

	nOn, err := New(repairConfig(true, 3))
	if err != nil {
		t.Fatal(err)
	}
	sOn := nOn.Run()

	if sOn.RepairsDelivered == 0 {
		t.Fatal("repair extension never repaired anything under 15% loss")
	}
	if sOn.MeanRE <= sOff.MeanRE {
		t.Errorf("repair RE %v not above best-effort RE %v", sOn.MeanRE, sOff.MeanRE)
	}
	if sOn.RepairsRequested < sOn.RepairsDelivered {
		t.Errorf("delivered %d repairs for only %d requests",
			sOn.RepairsDelivered, sOn.RepairsRequested)
	}
}

func TestRepairIdleWithoutLoss(t *testing.T) {
	// Flooding on a dense static cluster: everyone gets everything on
	// the first wave; the repair machinery must stay (nearly) silent.
	cfg := Config{
		Hosts:         15,
		MapUnits:      1,
		Static:        true,
		Placement:     cluster(15),
		Scheme:        scheme.Flooding{},
		Requests:      10,
		Repair:        true,
		HelloMode:     HelloFixed,
		HelloInterval: 1 * sim.Second,
		Seed:          5,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.MeanRE < 0.999 {
		t.Fatalf("dense flooding RE = %v", s.MeanRE)
	}
	if s.RepairsRequested > 2 {
		t.Errorf("repair machinery fired %d requests with nothing to repair",
			s.RepairsRequested)
	}
}

func TestRepairRequiresHello(t *testing.T) {
	cfg := Config{Repair: true, HelloMode: HelloOff, Scheme: scheme.Flooding{}}
	// Defaults auto-enable HELLO when repair is on.
	if got := cfg.WithDefaults(); got.HelloMode == HelloOff {
		t.Error("defaults left HELLO off with repair enabled")
	}
	// Bypassing defaults must fail validation.
	bad := cfg.WithDefaults()
	bad.HelloMode = HelloOff
	if err := bad.Validate(); err == nil {
		t.Error("repair without HELLO passed validation")
	}
}

func TestRepairCountsAreConsistent(t *testing.T) {
	n, err := New(repairConfig(true, 11))
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	// Every repaired delivery is a real delivery: t <= r still holds and
	// r never exceeds the population.
	for _, rec := range n.Records() {
		if rec.Transmitted > rec.Received {
			t.Errorf("t=%d > r=%d with repairs", rec.Transmitted, rec.Received)
		}
		if rec.Received > 60 {
			t.Errorf("r=%d > population", rec.Received)
		}
	}
	if s.RepairsDelivered > s.RepairsRequested {
		t.Errorf("more repairs delivered (%d) than requested (%d)",
			s.RepairsDelivered, s.RepairsRequested)
	}
}
