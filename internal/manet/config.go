// Package manet assembles the full simulated mobile ad hoc network: it
// wires the DES kernel, radio channel, MAC, mobility, HELLO neighbor
// discovery, and a rebroadcast scheme into a population of hosts, drives
// the paper's broadcast workload over it, and reports the paper's
// metrics (RE, SRB, latency, HELLO cost).
package manet

import (
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// MobilityModel selects how hosts move.
type MobilityModel int

// Mobility models.
const (
	// MobilityRandomTurn is the paper's roaming model: per-turn uniform
	// direction, duration, and speed, reflecting off borders.
	MobilityRandomTurn MobilityModel = iota
	// MobilityWaypoint is the classic random-waypoint model: travel to a
	// uniform destination at a uniform speed, pause, repeat.
	MobilityWaypoint
)

// String names the model.
func (m MobilityModel) String() string {
	switch m {
	case MobilityRandomTurn:
		return "random-turn"
	case MobilityWaypoint:
		return "random-waypoint"
	default:
		return fmt.Sprintf("mobility(%d)", int(m))
	}
}

// HelloMode selects how hosts run the neighbor-discovery protocol.
type HelloMode int

// Hello modes.
const (
	// HelloOff disables HELLO packets entirely. Only valid for schemes
	// that do not need neighborhood information.
	HelloOff HelloMode = iota
	// HelloFixed sends HELLOs every Config.HelloInterval.
	HelloFixed
	// HelloDynamic uses the paper's dynamic hello interval, driven by
	// each host's neighborhood variation.
	HelloDynamic
)

// String names the mode.
func (m HelloMode) String() string {
	switch m {
	case HelloOff:
		return "off"
	case HelloFixed:
		return "fixed"
	case HelloDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config describes one simulation run. Zero-valued fields take the
// paper's defaults (see WithDefaults).
type Config struct {
	// Hosts is the population size; the paper simulates 100.
	Hosts int
	// MapUnits is the square map side in units of UnitMeters; the paper
	// uses 1, 3, 5, 7, 9, 11.
	MapUnits int
	// UnitMeters is the map unit length; the paper ties it to the radio
	// radius (500 m).
	UnitMeters float64
	// Radius is the radio transmission radius in meters (500).
	Radius float64
	// MaxSpeedKMH is the roaming speed cap; 0 applies the paper's rule
	// of 10 km/h per map unit (10 in 1x1, 30 in 3x3, ...).
	MaxSpeedKMH float64
	// Static freezes all hosts in place (topology experiments/tests).
	Static bool
	// Mobility selects the movement model; the default is the paper's
	// random-turn model.
	Mobility MobilityModel
	// WaypointPause is the pause time of the random-waypoint model
	// (ignored by the random-turn model); 0 means 1 second.
	WaypointPause sim.Duration
	// Groups, when positive, moves hosts in that many reference-point
	// groups (RPGM) instead of independently: group centers roam with
	// the random-turn model and members stay within GroupSpread of their
	// center. Models search parties / convoys / squads.
	Groups int
	// GroupSpread is the member offset bound in meters (0 = 200).
	GroupSpread float64
	// Placement, if non-empty, fixes the initial host positions instead
	// of uniform random placement. Its length must equal Hosts. Combined
	// with Static it pins an exact topology (tests, examples).
	Placement []geom.Point

	// Scheme is the rebroadcast decision scheme under test.
	Scheme scheme.Scheme

	// Requests is how many broadcast operations to issue.
	Requests int
	// ArrivalSpread is the uniform inter-arrival upper bound between
	// broadcast requests (paper: 2 s across the whole map).
	ArrivalSpread sim.Duration

	// HelloMode, HelloInterval, and DHI configure neighbor discovery.
	HelloMode     HelloMode
	HelloInterval sim.Duration
	DHI           neighbor.DHIConfig
	// ExpiryIntervals is how many missed hello intervals expire a
	// neighbor (paper: 2).
	ExpiryIntervals int

	// AssessmentSlots is the scheme-level random delay before submitting
	// a rebroadcast, in MAC slots (paper: 0..31).
	AssessmentSlots int

	// Warmup runs the HELLO protocol alone before the first broadcast so
	// neighbor tables are populated (the paper's long runs make startup
	// transients negligible; our shorter runs skip them explicitly).
	Warmup sim.Duration
	// Drain is extra simulated time after the last request arrival so
	// in-flight broadcasts complete.
	Drain sim.Duration

	// Timing overrides the PHY/MAC timing; zero value uses DSSSTiming.
	Timing phy.Timing

	// Engine selects the simulation engine. The zero value (EngineAuto)
	// resolves from the rest of the configuration: sharded when
	// Shards > 0, otherwise the sequential oracle. All engines produce
	// byte-identical summaries; see Engine's documentation.
	Engine Engine
	// Shards is the sharded engine's worker/wheel count. It must be a
	// power of two (at most 64); 0 lets the engine choose
	// (DefaultShards). Setting Shards > 0 under EngineAuto selects the
	// sharded engine.
	Shards int
	// Arena, when non-nil, lets the sharded engine reuse the bulk slab
	// allocations of the previous Network built through the same arena
	// (see Arena's documentation for the ownership contract). Sweeps
	// that construct many same-size worlds back to back avoid paying
	// the allocator and collector for each one. The sequential oracle
	// ignores it.
	Arena *Arena

	// DisableCollisions is an ablation switch: overlapping transmissions
	// no longer destroy each other, isolating the contribution of
	// collisions to the broadcast storm.
	DisableCollisions bool
	// IdealHello is an ablation switch: HELLO beacons reach every
	// in-range host instantly without consuming airtime, isolating the
	// cost and staleness of running neighbor discovery over the real MAC.
	IdealHello bool
	// DisableSpatialIndex answers every unit-disk range query (receiver
	// discovery, reachability, neighbor ground truth) with the original
	// O(hosts) linear scans instead of the spatial grid index. The index
	// is a pure optimization with no model effect, so results must be
	// identical either way; the switch exists for the equivalence tests
	// and benchmarks that verify exactly that.
	//
	// Deprecated: the Disable* switches are legacy ablations of the
	// sequential engine, kept as shims for existing configs and the
	// equivalence tests. Select engines with Engine/Shards instead;
	// combining a Disable* switch with the sharded engine is a Validate
	// error.
	DisableSpatialIndex bool
	// DisableInterferenceIndex resolves transmission overlap with the
	// legacy engine: a global scan over every active transmission with
	// per-record garbled maps, instead of grid-bucketed senders and
	// word-parallel receiver-bitset intersections localized to the
	// 2×radius (+ mobility drift) interference neighborhood. A pure
	// optimization with no model effect, so results must be identical
	// either way; the switch exists for the equivalence tests and
	// benchmarks that verify exactly that.
	//
	// Deprecated: see DisableSpatialIndex; select engines with
	// Engine/Shards instead.
	DisableInterferenceIndex bool
	// DisableDenseState runs the per-host waiting state and per-broadcast
	// bookkeeping on the legacy map-backed stores (per-host pending and
	// NACK maps, a broadcast-keyed record map with completed records
	// retained until summarize) instead of the dense layout (index-linked
	// pending lists, a sequence-indexed record arena whose completed
	// records are folded into streaming aggregates and released). A pure
	// storage change with no model effect, so results must be
	// byte-identical either way; the switch exists for the equivalence
	// tests and benchmarks that verify exactly that.
	//
	// Deprecated: see DisableSpatialIndex; select engines with
	// Engine/Shards instead.
	DisableDenseState bool
	// DisableLadderQueue runs the scheduler on the legacy binary heap
	// (eager cancellation, per-event allocation) instead of the default
	// ladder queue. Both fire events in the identical (time, seq) order,
	// so results must be byte-identical either way; the switch exists for
	// the equivalence tests and benchmarks that verify exactly that.
	//
	// Deprecated: see DisableSpatialIndex; select engines with
	// Engine/Shards instead.
	DisableLadderQueue bool
	// LossRate injects independent per-reception Bernoulli loss
	// (fading/shadowing) on top of the unit-disk collision model.
	// 0 (the paper's model) disables it; must stay below 1.
	LossRate float64
	// CaptureRatio, when > 1, enables the capture effect: the stronger
	// of two overlapping frames survives when its free-space power
	// advantage reaches this ratio. 0 keeps the paper's model.
	CaptureRatio float64

	// Repair enables the reliable-broadcast extension: hosts advertise
	// recently received broadcast ids in their HELLOs and unicast
	// repairs to neighbors that missed them. Requires HELLO.
	Repair bool
	// RepairWindow is how long a received broadcast stays advertised
	// (default 10 s).
	RepairWindow sim.Duration

	// RetainRecords keeps every per-broadcast record alive until the end
	// of the run so Records() can return them. By default the dense
	// bookkeeping folds a record into the run aggregates and releases it
	// as soon as its broadcast can no longer change — the memory fix that
	// keeps long runs O(active broadcasts) — after which Records() panics.
	RetainRecords bool

	// Telemetry, when non-nil, collects run time series (channel load,
	// contention, scheme decisions) on the collector's tick. Sampling is
	// observation-only: it schedules no events and draws no random
	// numbers, so an instrumented run produces the identical Summary
	// (asserted by TestTelemetryDoesNotPerturbSimulation).
	Telemetry *obs.Collector

	// Audit, when non-nil, attaches the runtime invariant auditor to the
	// scheduler, channel, MACs, frame pools, and neighbor tables. Like
	// Telemetry it is observation-only: it schedules no events and draws
	// no random numbers, so an audited run produces the identical Summary
	// (asserted by check.TestAuditTransparency). Inspect the auditor's
	// Violations after Run.
	Audit *check.Auditor

	// Seed selects the deterministic random streams.
	Seed uint64
}

// PaperMaxSpeedKMH returns the paper's per-map maximum roaming speed:
// 10 km/h on the 1x1 map, 30 on 3x3, 50 on 5x5, i.e. 10 km/h per unit.
func PaperMaxSpeedKMH(units int) float64 { return 10 * float64(units) }

// groupConfig derives the RPGM parameters from the run configuration
// (valid only when Groups > 0).
func (c Config) groupConfig() mobility.GroupConfig {
	gcfg := mobility.DefaultGroupConfig(c.MaxSpeedKMH)
	if c.GroupSpread > 0 {
		gcfg.Spread = c.GroupSpread
	}
	return gcfg
}

// MaxSpeedMPS returns the fastest speed any host in this configuration
// can move at, in meters/second. It is the single source of truth for
// the mobility bound: the channel's spatial index sizes its drift budget
// from it and the invariant auditor checks every mover against it, so
// the two can never disagree. Group members ride the center's motion
// plus their own jitter; all other models cap at MaxSpeedKMH. Call on a
// defaulted config (New defaults before using it).
func (c Config) MaxSpeedMPS() float64 {
	switch {
	case c.Static:
		return 0
	case c.Groups > 0:
		gcfg := c.groupConfig()
		return gcfg.Center.MaxSpeedMPS + gcfg.JitterSpeedMPS
	default:
		return mobility.KMHToMPS(c.MaxSpeedKMH)
	}
}

// WithDefaults fills unset fields with the paper's parameters.
func (c Config) WithDefaults() Config {
	if c.Hosts == 0 {
		c.Hosts = 100
	}
	if c.MapUnits == 0 {
		c.MapUnits = 5
	}
	if c.UnitMeters == 0 {
		c.UnitMeters = 500
	}
	if c.Radius == 0 {
		c.Radius = 500
	}
	if c.MaxSpeedKMH == 0 && !c.Static {
		c.MaxSpeedKMH = PaperMaxSpeedKMH(c.MapUnits)
	}
	if c.Scheme == nil {
		c.Scheme = scheme.Flooding{}
	}
	if c.Requests == 0 {
		c.Requests = 100
	}
	if c.ArrivalSpread == 0 {
		c.ArrivalSpread = 2 * sim.Second
	}
	if c.HelloMode == HelloOff && (c.Scheme.NeedsHello() || c.Repair) {
		c.HelloMode = HelloFixed
	}
	if c.HelloInterval == 0 {
		c.HelloInterval = 1 * sim.Second
	}
	if c.DHI == (neighbor.DHIConfig{}) {
		c.DHI = neighbor.DefaultDHIConfig()
	}
	if c.ExpiryIntervals == 0 {
		c.ExpiryIntervals = neighbor.DefaultExpiryIntervals
	}
	if c.AssessmentSlots == 0 {
		c.AssessmentSlots = 31
	}
	if c.Warmup == 0 && c.HelloMode != HelloOff {
		// Give the HELLO protocol time to populate tables. The dynamic
		// interval additionally needs the neighborhood-variation
		// estimator (10 s window, detection delayed by up to two hello
		// intervals) to reach steady state before measurement begins.
		if c.HelloMode == HelloDynamic {
			c.Warmup = 30 * sim.Second
		} else {
			c.Warmup = 5 * sim.Second
		}
	}
	if c.Drain == 0 {
		c.Drain = 2 * sim.Second
	}
	if c.Timing.BitRateMbps == 0 {
		c.Timing = phy.DSSSTiming()
	}
	if c.RepairWindow == 0 {
		c.RepairWindow = 10 * sim.Second
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	switch {
	case c.Hosts < 1:
		return errors.New("manet: need at least one host")
	case c.MapUnits < 1:
		return errors.New("manet: map must be at least 1x1 units")
	case c.Radius <= 0:
		return errors.New("manet: radius must be positive")
	case c.Requests < 0:
		return errors.New("manet: negative request count")
	case c.AssessmentSlots < 0:
		return errors.New("manet: negative assessment slots")
	case c.Groups < 0:
		return errors.New("manet: negative group count")
	}
	if c.Groups > 0 && (c.Static || c.Mobility == MobilityWaypoint) {
		return errors.New("manet: group mobility excludes Static and Waypoint modes")
	}
	if len(c.Placement) > 0 && len(c.Placement) != c.Hosts {
		return fmt.Errorf("manet: placement has %d points for %d hosts", len(c.Placement), c.Hosts)
	}
	if c.Scheme.NeedsHello() && c.HelloMode == HelloOff {
		return fmt.Errorf("manet: scheme %s requires HELLO but HelloMode is off", c.Scheme.Name())
	}
	if c.Repair && c.HelloMode == HelloOff {
		return errors.New("manet: repair extension requires HELLO")
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("manet: loss rate %g outside [0, 1)", c.LossRate)
	}
	if c.CaptureRatio != 0 && c.CaptureRatio <= 1 {
		return fmt.Errorf("manet: capture ratio %g must be 0 (off) or greater than 1", c.CaptureRatio)
	}
	if c.RepairWindow < 0 {
		return fmt.Errorf("manet: negative repair window %v", c.RepairWindow)
	}
	if _, _, err := c.resolveEngine(); err != nil {
		return err
	}
	return nil
}
