package manet

import (
	"errors"
	"fmt"
)

// Engine selects the simulation engine a Network runs on. All engines
// execute the identical event stream — (time, seq) order is part of the
// model contract — so summaries are byte-identical across engines; the
// selector only changes which data structures and how many worker
// goroutines do the work. The zero value (EngineAuto) picks an engine
// from the rest of the configuration, which keeps existing configs
// working unchanged.
type Engine int

const (
	// EngineAuto resolves to EngineSharded when Config.Shards > 0 and to
	// EngineSequentialOracle otherwise (honoring the deprecated Disable*
	// ablation switches, which only the sequential engine supports).
	EngineAuto Engine = iota

	// EngineSequentialOracle is the single-threaded reference engine:
	// one ladder queue, no worker pool. The Disable* switches select its
	// legacy data-structure ablations. It is the oracle the sharded
	// engine's equivalence tests compare against.
	EngineSequentialOracle

	// EngineSharded partitions the map into power-of-two shard regions
	// (bands of spatial-grid macro-cell rows). Each shard owns a
	// calendar-wheel scheduler for its hosts' mobility events, merged
	// with the central ladder in strict (time, seq) order, and a worker
	// in the shared pool that parallelizes construction, snapshot
	// rebuilds, and reachability walks with bounded-channel border
	// exchange. Requires all Disable* switches off.
	EngineSharded

	// EngineSpeculative is the sharded engine plus optimistic barrier
	// windows: on an eligible static world (see speculate.go) each window
	// first takes an in-memory micro-checkpoint, then one lane per shard
	// band drains its band's MAC/PHY/assessment events concurrently while
	// a conflict detector flags any radio interaction reaching across a
	// band border. A validated window commits with scheduler, channel,
	// and record state byte-identical to the sequential merged drain; a
	// conflicted window restores the micro-checkpoint and replays
	// sequentially, so every run — any shard count, any GOMAXPROCS —
	// reproduces the oracle summary exactly. Configurations outside the
	// eligible set degrade per-window to EngineSharded's border-lane
	// execution.
	EngineSpeculative
)

// String names the engine the way ParseEngine accepts it.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSequentialOracle:
		return "sequential-oracle"
	case EngineSharded:
		return "sharded"
	case EngineSpeculative:
		return "speculative"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine maps a command-line engine name onto an Engine.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "auto":
		return EngineAuto, nil
	case "sequential", "sequential-oracle", "oracle":
		return EngineSequentialOracle, nil
	case "sharded":
		return EngineSharded, nil
	case "speculative":
		return EngineSpeculative, nil
	}
	return EngineAuto, fmt.Errorf("manet: unknown engine %q (want auto, sequential-oracle, sharded, or speculative)", name)
}

// Features describes the concrete data-structure and parallelism
// choices an engine runs with. Shards is 0 for the sequential engines
// and the resolved worker/wheel count for the sharded engine.
type Features struct {
	LadderQueue       bool // ladder-queue scheduler (vs legacy binary heap)
	SpatialIndex      bool // grid spatial index (vs linear scans)
	InterferenceIndex bool // grid-bucketed interference (vs global scan)
	DenseState        bool // dense host/record state (vs map-backed)
	Sharded           bool // shard wheels + worker pool
	Speculative       bool // validate-or-replay band windows over micro-checkpoints
	Shards            int
}

// Features reports what the engine uses at its defaults. The deprecated
// Disable* switches can turn individual features off on the sequential
// engines; Config.EngineFeatures resolves that full picture.
func (e Engine) Features() Features {
	return Features{
		LadderQueue:       true,
		SpatialIndex:      true,
		InterferenceIndex: true,
		DenseState:        true,
		Sharded:           e == EngineSharded || e == EngineSpeculative,
		Speculative:       e == EngineSpeculative,
	}
}

// DefaultShards is the shard count EngineSharded uses when Config.Shards
// is zero. It is a fixed constant rather than a GOMAXPROCS derivation so
// a config resolves identically on every machine; results are
// shard-count independent regardless.
const DefaultShards = 4

// maxShards bounds the shard count; beyond this the per-shard wheels and
// border channels cost more than any plausible hardware gives back.
const maxShards = 64

// legacySwitches reports whether any deprecated Disable* ablation switch
// is set. They select the sequential engine's legacy data structures and
// are mutually exclusive with the sharded engine.
func (c Config) legacySwitches() bool {
	return c.DisableSpatialIndex || c.DisableInterferenceIndex ||
		c.DisableDenseState || c.DisableLadderQueue
}

// resolveEngine maps (Engine, Shards, deprecated Disable* switches) onto
// the concrete engine and shard count, rejecting contradictions. The
// returned shard count is 0 for sequential engines.
func (c Config) resolveEngine() (Engine, int, error) {
	if c.Shards < 0 {
		return 0, 0, fmt.Errorf("manet: negative shard count %d", c.Shards)
	}
	if c.Shards > maxShards {
		return 0, 0, fmt.Errorf("manet: shard count %d exceeds the maximum %d", c.Shards, maxShards)
	}
	if c.Shards > 0 && c.Shards&(c.Shards-1) != 0 {
		return 0, 0, fmt.Errorf("manet: shard count %d is not a power of two", c.Shards)
	}
	switch c.Engine {
	case EngineAuto:
		if c.Shards == 0 {
			return EngineSequentialOracle, 0, nil
		}
		if c.legacySwitches() {
			return 0, 0, errors.New("manet: Shards > 0 selects the sharded engine, which excludes the deprecated Disable* switches; use Engine: EngineSequentialOracle for ablations")
		}
		return EngineSharded, c.Shards, nil
	case EngineSequentialOracle:
		if c.Shards > 0 {
			return 0, 0, fmt.Errorf("manet: EngineSequentialOracle cannot run %d shards; leave Shards at 0 or select EngineSharded", c.Shards)
		}
		return EngineSequentialOracle, 0, nil
	case EngineSharded, EngineSpeculative:
		if c.legacySwitches() {
			return 0, 0, fmt.Errorf("manet: %v excludes the deprecated Disable* switches (they select legacy sequential data structures)", c.Engine)
		}
		if c.Shards == 0 {
			return c.Engine, DefaultShards, nil
		}
		return c.Engine, c.Shards, nil
	default:
		return 0, 0, fmt.Errorf("manet: unknown engine %v", c.Engine)
	}
}

// EngineFeatures resolves the engine selection (including the deprecated
// Disable* switches) and reports the concrete feature set a run of this
// config will use. It returns the same errors Validate does for
// contradictory selections.
func (c Config) EngineFeatures() (Features, error) {
	engine, shards, err := c.resolveEngine()
	if err != nil {
		return Features{}, err
	}
	f := engine.Features()
	f.Shards = shards
	if engine != EngineSharded {
		f.LadderQueue = !c.DisableLadderQueue
		f.SpatialIndex = !c.DisableSpatialIndex
		f.InterferenceIndex = !c.DisableInterferenceIndex
		f.DenseState = !c.DisableDenseState
	}
	return f, nil
}
