package manet

// Parallel barrier-window execution for the sharded engine.
//
// Each conservative barrier window splits into two phases. Phase A: one
// worker per shard (the engine's pdes.Pool) drains its own calendar
// wheel up to — strictly before — the barrier on lane-local scheduler
// state. The wheels hold exclusively random-turn mobility timers (the
// engine only routes turns there, and only for the slab-mover
// population), and a turn is pure host-local work: it reads and writes
// its own mover, draws from its own forked RNG stream, and schedules
// only its own next turn, at least one minimum turn duration ahead.
// Phase B: the remaining merged event stream — every MAC, PHY, HELLO,
// assessment, delivery, and record event, i.e. everything whose
// interaction disk could cross a band border within the window — runs
// sequentially on the owning goroutine. That sequential merged drain is
// the deterministic border lane: cross-shard state (interference
// buckets, neighbor tables, broadcast records) is only ever touched
// there, in exact (time, seq) order, so completed broadcast records
// fold into the streaming summary at barriers precisely as the
// sequential oracle folds them.
//
// Why phase A cannot perturb the oracle's byte-identical summary:
//   - The window is clamped to the minimum turn duration, so each mover
//     fires at most one turn per window (the next one lands at or past
//     the barrier and the drain's deadline is strict).
//   - A turn fired early — at its own timestamp on the lane clock,
//     ahead of the shared clock — records the segment it replaced, and
//     position/speed queries select the pre-turn segment while the
//     shared clock is still behind the turn, reproducing the oracle's
//     reads exactly (mobility.Roamer.PositionAt).
//   - Lane sequence numbers live in disjoint high-bit namespaces. They
//     order only turn-vs-turn ties across hosts, which are independent
//     events (a turn touches one host), and turn instants are drawn
//     from a continuous distribution so a turn tying a border-lane
//     event at the exact nanosecond has measure zero — and even then
//     positions are continuous across the turn instant.
//
// The audited configuration keeps the fully sequential path: the audit
// hook's contract is to observe every event in merged (time, seq)
// order, which a lane drain bypasses by construction.

import (
	"context"
	"math"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/sim"
)

// ParallelStats reports how the sharded engine's barrier windows were
// executed. All counters are zero for the sequential engine. The
// speculative engine additionally accounts its windows: Speculated
// windows were attempted optimistically, Committed of them validated
// (their lane-fired events count into ShardExecuted), and RolledBack
// were rejected — restored from their micro-checkpoint and replayed on
// the sequential border lane.
type ParallelStats struct {
	Barriers       int      // barrier windows executed
	Widened        int      // windows that used the adaptive wide lookahead
	ShardExecuted  []uint64 // events fired by each shard's parallel drain
	BorderExecuted uint64   // events executed on the sequential border lane
	WaitNS         int64    // cumulative worker idle time at drain barriers
	Speculated     int      // windows attempted under speculative execution
	Committed      int      // speculative windows that validated and committed
	RolledBack     int      // speculative windows restored and replayed
}

// BorderShare is the fraction of all executed events that ran on the
// sequential border lane rather than a parallel shard drain: 1 means
// fully sequential, 0 means every event ran on a lane. Only meaningful
// on a snapshot returned by Network.ParallelStats (which derives
// BorderExecuted); zero events reports 1.
func (st ParallelStats) BorderShare() float64 {
	var shard uint64
	for _, c := range st.ShardExecuted {
		shard += c
	}
	total := shard + st.BorderExecuted
	if total == 0 {
		return 1
	}
	return float64(st.BorderExecuted) / float64(total)
}

// CommitRate is the fraction of speculative windows that validated and
// committed; 0 when no window was attempted.
func (st ParallelStats) CommitRate() float64 {
	if st.Speculated == 0 {
		return 0
	}
	return float64(st.Committed) / float64(st.Speculated)
}

// ParallelStats returns a snapshot of the engine's barrier accounting.
// BorderExecuted is derived: every event not fired by a shard drain ran
// on the sequential border lane.
func (n *Network) ParallelStats() ParallelStats {
	st := n.pstats
	st.ShardExecuted = append([]uint64(nil), st.ShardExecuted...)
	var shard uint64
	for _, c := range st.ShardExecuted {
		shard += c
	}
	st.BorderExecuted = n.sched.Executed() - shard
	return st
}

// parallelEligible reports whether barrier windows may run phase A on
// the worker pool. The shard wheels carry events only when the slab
// mover population is in play (random-turn mobility, no groups, not
// static, not waypoint), and the audit hook requires the merged
// sequential drain.
func (n *Network) parallelEligible() bool {
	return n.shards > 0 && n.parallelOK && n.audit == nil
}

// windowPlan fixes a run's barrier lookaheads: the conservative base
// window and the adaptive wide window used when no in-flight
// transmission is border-proximate. margin is the PR 5 locality bound
// 2r + speedBound·Δt evaluated at the wide window — a transmission
// whose sender started farther than margin from every interior band
// border cannot interact across one within the window.
type windowPlan struct {
	base   sim.Duration
	wide   sim.Duration
	margin float64 // meters
}

// planWindows derives the run's window plan. The wide window is capped
// at one second; a parallel run additionally clamps both windows to the
// minimum turn duration so a drain fires at most one turn per mover per
// window (the invariant the one-segment mobility history relies on).
func (n *Network) planWindows(parallel bool) windowPlan {
	base := n.barrierWindow()
	wide := sim.Second
	if parallel {
		if mt := mobility.DefaultConfig(n.cfg.MaxSpeedKMH).MinTurn; mt < wide {
			wide = mt
		}
		if base > wide {
			base = wide
		}
	}
	if wide < base {
		wide = base
	}
	return windowPlan{
		base:   base,
		wide:   wide,
		margin: 2*n.cfg.Radius + n.cfg.MaxSpeedMPS()*wide.Seconds(),
	}
}

// nextWindow picks the lookahead for the next barrier window: the wide
// window when no transmission currently on the air started within
// margin of an interior shard band border, the conservative base window
// otherwise. With a single shard there is no interior border to
// protect.
func (n *Network) nextWindow(p windowPlan) sim.Duration {
	if p.wide <= p.base {
		return p.base
	}
	if n.shards <= 1 {
		return p.wide
	}
	bandH := n.area.Height / float64(n.shards)
	if 2*p.margin >= bandH {
		return p.base // bands so narrow every position is border-proximate
	}
	near := false
	n.ch.EachActiveSender(func(pt geom.Point) {
		if near {
			return
		}
		k := math.Round(pt.Y / bandH)
		if k < 1 {
			k = 1
		}
		if kmax := float64(n.shards - 1); k > kmax {
			k = kmax
		}
		if math.Abs(pt.Y-k*bandH) <= p.margin {
			near = true
		}
	})
	if near {
		return p.base
	}
	return p.wide
}

// drainWindow executes phase A of one barrier window: every shard's
// wheel is drained up to the barrier by its own pool worker, under a
// per-shard pprof label so CPU profiles attribute samples to shards.
// Worker idle time (each worker's gap to the slowest drain of the
// window) accumulates into WaitNS for load-imbalance visibility.
func (n *Network) drainWindow(barrier sim.Time) {
	st := &n.pstats
	if st.ShardExecuted == nil {
		st.ShardExecuted = make([]uint64, n.shards)
		n.drainDurs = make([]time.Duration, n.shards)
		n.shardLabels = make([]pprof.LabelSet, n.shards)
		for s := range n.shardLabels {
			n.shardLabels[s] = pprof.Labels("shard", strconv.Itoa(s))
		}
	}
	n.sched.BeginParallelDrain()
	n.pool.Do(n.shards, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			start := time.Now()
			pprof.Do(context.Background(), n.shardLabels[s], func(context.Context) {
				st.ShardExecuted[s] += n.sched.DrainShardUntil(s, barrier)
			})
			n.drainDurs[s] = time.Since(start)
		}
	})
	n.sched.EndParallelDrain()
	var slowest time.Duration
	for _, d := range n.drainDurs {
		if d > slowest {
			slowest = d
		}
	}
	for _, d := range n.drainDurs {
		st.WaitNS += int64(slowest - d)
	}
}
