package manet

import (
	"testing"

	"repro/internal/check"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// The dense host/broadcast state (index-linked pending lists, the
// sequence-indexed record arena with streaming fold) must be a pure
// storage change: for a fixed seed a run must produce the identical
// Summary field for field whether the bookkeeping lives in the legacy
// maps or the dense layout. Any divergence means the refactor changed
// the model — or the streaming fold changed the arithmetic — not just
// the cost.
func TestDenseStateMatchesMap(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flooding-mobile", Config{
			Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 12,
		}},
		{"adaptive-counter-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50, Requests: 12,
		}},
		{"location-waypoint", Config{
			Scheme: scheme.AdaptiveLocation{}, MapUnits: 5, Hosts: 40, Requests: 10,
			Mobility: MobilityWaypoint,
		}},
		{"counter-loss-capture", Config{
			Scheme: scheme.Counter{C: 3}, MapUnits: 3, Hosts: 40, Requests: 12,
			LossRate: 0.1, CaptureRatio: 4,
		}},
		{"neighbor-coverage-groups", Config{
			Scheme: scheme.NeighborCoverage{}, MapUnits: 3, Hosts: 30, Requests: 8,
			Groups: 3,
		}},
		{"flooding-static-dense", Config{
			Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: 60, Requests: 10,
			Static: true,
		}},
		{"repair-dynamic-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 30, Requests: 8,
			HelloMode: HelloDynamic, Repair: true, Warmup: 5 * sim.Second,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				dense := tc.cfg
				dense.Seed = seed
				legacy := tc.cfg
				legacy.Seed = seed
				legacy.DisableDenseState = true

				dn, err := New(dense)
				if err != nil {
					t.Fatal(err)
				}
				ln, err := New(legacy)
				if err != nil {
					t.Fatal(err)
				}
				ds, ls := dn.Run(), ln.Run()
				if ds != ls {
					t.Fatalf("seed %d: dense and map summaries diverge:\ndense: %+v\nmap:   %+v", seed, ds, ls)
				}
			}
		})
	}
}

// Retention must match too: with RetainRecords the dense arena keeps
// every record, and the per-record values must equal the legacy map's.
func TestDenseRetainedRecordsMatchMap(t *testing.T) {
	base := Config{Scheme: scheme.AdaptiveCounter{}, MapUnits: 3, Hosts: 40, Requests: 10, Seed: 5}
	dense := base
	dense.RetainRecords = true
	legacy := base
	legacy.DisableDenseState = true
	dn, err := New(dense)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := New(legacy)
	if err != nil {
		t.Fatal(err)
	}
	dn.Run()
	ln.Run()
	dr, lr := dn.Records(), ln.Records()
	if len(dr) != len(lr) {
		t.Fatalf("record counts differ: dense %d, map %d", len(dr), len(lr))
	}
	for i := range dr {
		if *dr[i] != *lr[i] {
			t.Fatalf("record %d differs:\ndense: %+v\nmap:   %+v", i, *dr[i], *lr[i])
		}
	}
}

// Records() without retention must fail loudly, not return a partial
// set: the default dense bookkeeping has already folded and released
// completed records.
func TestRecordsPanicsAfterFold(t *testing.T) {
	n, err := New(Config{Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 30, Requests: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Records() after mid-run folding did not panic")
		}
	}()
	n.Records()
}

// The memory fix the arena exists for: live per-broadcast state must
// track the number of broadcasts in flight, not the number ever issued.
// At 10x the default request count the arena's high-water mark must stay
// a small constant — requests arrive ~1 s apart and a broadcast wave
// completes in tens of milliseconds, so anything growing with Requests
// is a leak (exactly what the retained map used to do).
func TestRecordArenaStaysFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	const requests = 1000 // 10x the default of 100
	n, err := New(Config{Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: requests, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Probes ride the scheduler alongside the workload; they read
	// bookkeeping lengths only, so the run itself is unperturbed.
	maxLive := 0
	var probe func()
	probe = func() {
		if live := len(n.recs); live > maxLive {
			maxLive = live
		}
		if n.sched.Now() < sim.Time(0).Add(sim.Duration(requests)*2*sim.Second) {
			n.sched.After(500*sim.Millisecond, probe)
		}
	}
	n.sched.Schedule(sim.Time(0), probe)
	s := n.Run()
	if s.Broadcasts != requests {
		t.Fatalf("Broadcasts = %d, want %d", s.Broadcasts, requests)
	}
	if maxLive > 16 {
		t.Errorf("record arena high-water mark %d: live state is growing with the run", maxLive)
	}
	if got := int(n.recBase) + len(n.recs); got != requests {
		t.Errorf("arena accounting: folded %d + live %d != issued %d", n.recBase, len(n.recs), requests)
	}
	if len(n.recs) > 16 {
		t.Errorf("%d records never folded", len(n.recs))
	}
}

// The NACK set must hold exactly the ids a host requested and still has
// not received — under sustained loss it must not accumulate an entry
// per broadcast ever missed and later repaired.
func TestNackedStaysBounded(t *testing.T) {
	n, err := New(Config{
		Hosts: 60, MapUnits: 5, Scheme: scheme.Counter{C: 2},
		Requests: 20, LossRate: 0.15, Repair: true,
		HelloMode: HelloFixed, Drain: 8 * sim.Second, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.RepairsDelivered == 0 {
		t.Fatal("workload produced no repairs; the test exercises nothing")
	}
	total := 0
	for i, h := range n.hosts {
		total += len(h.nacked)
		for bid := range h.nacked {
			if h.dedup.Seen(bid) {
				t.Errorf("host %d retains a NACK marker for %v it already received", i, bid)
			}
		}
	}
	if outstanding := s.RepairsRequested - s.RepairsDelivered; total > outstanding {
		t.Errorf("NACK markers %d exceed outstanding repairs %d", total, outstanding)
	}
}

// The auditor's mover sweep must stay silent for every mobility model
// when the configured bound is honest...
func TestMoverSpeedAuditClean(t *testing.T) {
	for _, mk := range []func() Config{
		func() Config { return Config{Scheme: scheme.Flooding{}, Hosts: 25, MapUnits: 3, Requests: 5} },
		func() Config {
			return Config{Scheme: scheme.Flooding{}, Hosts: 25, MapUnits: 3, Requests: 5, Mobility: MobilityWaypoint}
		},
		func() Config {
			return Config{Scheme: scheme.Flooding{}, Hosts: 24, MapUnits: 3, Requests: 5, Groups: 3}
		},
		func() Config {
			return Config{Scheme: scheme.Flooding{}, Hosts: 25, MapUnits: 3, Requests: 5, Static: true}
		},
	} {
		cfg := mk()
		a := check.New()
		cfg.Audit = a
		cfg.Seed = 11
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		if !a.Ok() {
			t.Errorf("%v/groups=%d/static=%v: auditor reported %d violations; first: %v",
				cfg.Mobility, cfg.Groups, cfg.Static, a.Total(), a.Violations()[0])
		}
	}
}

// ...and flag every host once the bound is understated (white-box: the
// sweep compares against auditSpeed, so shrinking it after construction
// simulates a mobility model that outruns its declared cap).
func TestMoverSpeedAuditFlagsExcess(t *testing.T) {
	a := check.New()
	n, err := New(Config{
		Scheme: scheme.Flooding{}, Hosts: 25, MapUnits: 3, Requests: 5,
		Audit: a, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.auditSpeed = 1e-6 // far below the paper's 30 km/h roaming cap
	n.Run()
	found := false
	for _, v := range a.Violations() {
		if v.Invariant == check.InvMobility {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no %s violation despite movers exceeding the bound (total violations: %d)",
			check.InvMobility, a.Total())
	}
}
