package manet

import (
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Telemetry must be pure observation: for a fixed seed, an instrumented
// run (collector sampling on a fine tick, plus progress output) must
// produce a Summary identical field for field — same deliveries, same
// latencies, same event count — to an uninstrumented run. Any divergence
// means sampling perturbed the simulation (scheduled an event, drew a
// random number, or mutated model state).
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flooding-mobile", Config{
			Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 12,
		}},
		{"adaptive-counter-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50, Requests: 12,
		}},
		{"counter-loss-capture", Config{
			Scheme: scheme.Counter{C: 3}, MapUnits: 3, Hosts: 40, Requests: 12,
			LossRate: 0.1, CaptureRatio: 4,
		}},
		{"repair-dynamic-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 30, Requests: 8,
			HelloMode: HelloDynamic, Repair: true, Warmup: 5 * sim.Second,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				plain := tc.cfg
				plain.Seed = seed
				instr := tc.cfg
				instr.Seed = seed
				instr.Telemetry = obs.New(10 * sim.Millisecond)

				pn, err := New(plain)
				if err != nil {
					t.Fatal(err)
				}
				in, err := New(instr)
				if err != nil {
					t.Fatal(err)
				}
				in.Progress = io.Discard
				ps, is := pn.Run(), in.Run()
				if ps != is {
					t.Fatalf("seed %d: telemetry changed the summary:\nplain:        %+v\ninstrumented: %+v", seed, ps, is)
				}

				// The run above must actually have observed something,
				// or the equivalence proves nothing.
				c := instr.Telemetry
				if len(c.Samples()) == 0 {
					t.Fatal("instrumented run recorded no samples")
				}
				if v, ok := c.CounterValue("scheme.proceed_initial"); !ok || v == 0 {
					t.Errorf("scheme.proceed_initial = %d, %v; want nonzero", v, ok)
				}
				if busy := lastValue(t, c, "phy.busy_radio_seconds"); busy <= 0 {
					t.Errorf("phy.busy_radio_seconds final sample = %g, want > 0", busy)
				}
				if tx := lastValue(t, c, "phy.transmissions"); int(tx) != is.Transmissions {
					t.Errorf("phy.transmissions final sample = %g, summary says %d", tx, is.Transmissions)
				}
			}
		})
	}
}

// lastValue reads a named series' value in the final sample.
func lastValue(t *testing.T, c *obs.Collector, name string) float64 {
	t.Helper()
	names := c.SeriesNames()
	for i, n := range names {
		if n == name {
			ss := c.Samples()
			return ss[len(ss)-1].Values[i]
		}
	}
	t.Fatalf("series %q not registered (have %v)", name, names)
	return 0
}

func TestProgressOutput(t *testing.T) {
	var buf strings.Builder
	n, err := New(Config{
		Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 30, Requests: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Progress = &buf
	n.Run()
	out := buf.String()
	if !strings.Contains(out, "sim t=") || !strings.Contains(out, "events=") {
		t.Errorf("progress output missing expected fields:\n%s", out)
	}
	if strings.Count(out, "\n") < 2 {
		t.Errorf("expected multiple progress lines over a multi-second run, got:\n%s", out)
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	base := Config{Scheme: scheme.Flooding{}}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative loss", func(c *Config) { c.LossRate = -0.1 }, "loss rate"},
		{"loss of one", func(c *Config) { c.LossRate = 1.0 }, "loss rate"},
		{"loss above one", func(c *Config) { c.LossRate = 1.5 }, "loss rate"},
		{"capture at one", func(c *Config) { c.CaptureRatio = 1.0 }, "capture ratio"},
		{"capture below one", func(c *Config) { c.CaptureRatio = 0.5 }, "capture ratio"},
		{"negative capture", func(c *Config) { c.CaptureRatio = -2 }, "capture ratio"},
		{"negative repair window", func(c *Config) { c.RepairWindow = -sim.Second }, "repair window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.WithDefaults().Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
			if _, err := New(cfg); err == nil {
				t.Error("New accepted the invalid config")
			}
		})
	}
	// Boundary values that must stay accepted.
	ok := base
	ok.LossRate = 0.99
	ok.CaptureRatio = 1.01
	if err := ok.WithDefaults().Validate(); err != nil {
		t.Errorf("Validate rejected in-contract values: %v", err)
	}
}
