package manet

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file implements the reliable-broadcast repair extension the paper
// suggests its schemes can underpin ("the result in this paper may serve
// as an underlying facility to implement reliable broadcast"). The
// best-effort dissemination runs unchanged; on top of it:
//
//   - every host piggybacks the broadcast ids it received within
//     RepairWindow onto its periodic HELLOs;
//   - a host that hears an advertisement for a packet it missed unicasts
//     a repair request (NACK) to the advertiser, at most once per packet;
//   - the advertiser answers with a unicast retransmission of the packet,
//     which counts as a delivery but is never rebroadcast further.
//
// Both control messages ride the MAC's unicast ARQ (DATA/ACK), so
// repairs survive collisions that best-effort copies did not.

// repairRequest asks the destination to retransmit a broadcast packet.
type repairRequest struct {
	ID packet.BroadcastID
}

// repairResponse carries the retransmitted packet.
type repairResponse struct {
	ID packet.BroadcastID
}

// Wire sizes: the request is a small control message; the response
// carries the full broadcast payload.
const (
	repairRequestBytes  = 32
	repairResponseBytes = packet.BroadcastBytes
)

// recentEntry is one advertised broadcast.
type recentEntry struct {
	id    packet.BroadcastID
	heard sim.Time
}

// noteRecent records a received broadcast for future advertisement and
// retires any NACK marker for it: dedup.Seen short-circuits the nacked
// test for every id the host holds, so the entry can never be read
// again — deleting it is invisible to behavior and keeps the NACK set
// bounded by still-missing packets instead of growing for the whole run.
func (h *host) noteRecent(bid packet.BroadcastID) {
	if !h.net.cfg.Repair {
		return
	}
	if h.nacked != nil {
		delete(h.nacked, bid)
	}
	h.recent = append(h.recent, recentEntry{id: bid, heard: h.net.sched.Now()})
}

// appendRecentIDs appends the ids still inside the advertisement window
// to buf, pruning expired entries in place.
func (h *host) appendRecentIDs(buf []packet.BroadcastID) []packet.BroadcastID {
	cutoff := h.net.sched.Now().Add(-sim.Duration(h.net.cfg.RepairWindow))
	keep := h.recent[:0]
	for _, e := range h.recent {
		if e.heard >= cutoff {
			keep = append(keep, e)
			buf = append(buf, e.id)
		}
	}
	h.recent = keep
	return buf
}

// onHelloRecent reacts to a neighbor's advertisement: request any packet
// we missed, once.
func (h *host) onHelloRecent(from packet.NodeID, recent []packet.BroadcastID) {
	for _, bid := range recent {
		if h.dedup.Seen(bid) || h.nacked[bid] {
			continue
		}
		if h.nacked == nil {
			h.nacked = make(map[packet.BroadcastID]bool)
		}
		h.nacked[bid] = true
		h.net.repairsRequested++
		f := packet.NewData(h.id, from, repairRequestBytes, repairRequest{ID: bid}, h.Position())
		h.mac.Enqueue(f, nil)
	}
}

// onRepairFrame handles the repair control plane (KindData frames).
func (h *host) onRepairFrame(f *packet.Frame) {
	switch msg := f.Payload.(type) {
	case repairRequest:
		if f.Dest != h.id || !h.dedup.Seen(msg.ID) {
			return
		}
		resp := packet.NewData(h.id, f.Sender, repairResponseBytes,
			repairResponse{ID: msg.ID}, h.Position())
		h.mac.Enqueue(resp, nil)
	case repairResponse:
		if f.Dest != h.id {
			return
		}
		if h.dedup.Observe(msg.ID) {
			// A repaired delivery: counted as received, never forwarded
			// (the best-effort wave has long passed). noteRecent retires
			// the NACK marker.
			h.net.repairsDelivered++
			h.net.noteReceived(msg.ID, h)
			h.noteRecent(msg.ID)
		}
	}
}
