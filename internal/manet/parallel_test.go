package manet

import (
	"testing"

	"repro/internal/check"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestBorderCascadeStress pins the border lane under the worst spatial
// case: a map so small relative to the radio radius that the shard
// bands are narrower than a single interaction disk, so every
// transmission in a dense HELLO-plus-broadcast load is cross-band. The
// parallel engine must stay byte-identical to the oracle — all radio
// work runs on the sequential border lane, only the mobility turns
// drain concurrently — and the adaptive lookahead must never widen (a
// band narrower than the locality margin is permanently
// border-proximate).
func TestBorderCascadeStress(t *testing.T) {
	base := Config{
		Scheme: scheme.NeighborCoverage{}, MapUnits: 2, Hosts: 80,
		Requests: 25, MaxSpeedKMH: 300, ArrivalSpread: 2 * sim.Second,
	}
	for seed := uint64(1); seed <= 3; seed++ {
		seq := base
		seq.Seed = seed
		seq.Engine = EngineSequentialOracle
		oracle, err := New(seq)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.Run()
		for _, shards := range []int{4, 8} {
			sh := base
			sh.Seed = seed
			sh.Engine = EngineSharded
			sh.Shards = shards
			net, err := New(sh)
			if err != nil {
				t.Fatal(err)
			}
			if !net.parallelEligible() {
				t.Fatal("border stress config unexpectedly ineligible for parallel drains")
			}
			if got := net.Run(); got != want {
				t.Fatalf("seed %d shards %d: border cascade diverged:\nsharded:    %+v\nsequential: %+v",
					seed, shards, got, want)
			}
			st := net.ParallelStats()
			if st.Barriers == 0 {
				t.Fatal("run recorded no barrier windows")
			}
			if st.Widened != 0 {
				t.Fatalf("adaptive lookahead widened %d windows with bands narrower than the locality margin", st.Widened)
			}
			var drained uint64
			for _, c := range st.ShardExecuted {
				drained += c
			}
			if drained == 0 {
				t.Fatal("no events drained on the parallel lanes (mobile hosts must turn)")
			}
			if st.BorderExecuted == 0 {
				t.Fatal("no events executed on the border lane")
			}
		}
	}
}

// TestAdaptiveLookaheadWidens pins the adaptive barrier window. At
// 1000 km/h the conservative window (quarter-radius crossing time,
// ~0.45 s) sits well below the 1 s cap, so radio-quiet stretches must
// widen; and because widening is gated on border-proximate
// transmissions, the summary must not move. The audited variant runs
// the same widened windows through the sequential path so
// auditShardBarrier's cross-shard invariants check them.
func TestAdaptiveLookaheadWidens(t *testing.T) {
	// 24 units = 12 km tall: four bands of 3000 m, comfortably wider than
	// twice the 2r + v·Δt locality margin (~1278 m at 1000 km/h over a
	// 1 s window), so quiet windows are allowed to widen.
	base := Config{
		Scheme: scheme.Flooding{}, MapUnits: 24, Hosts: 80, Requests: 6,
		MaxSpeedKMH: 1000, Engine: EngineSharded, Shards: 4, Seed: 11,
	}
	seq := base
	seq.Engine = EngineSequentialOracle
	seq.Shards = 0
	oracle, err := New(seq)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Run()

	net, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Run(); got != want {
		t.Fatalf("adaptive-window run diverged:\nsharded:    %+v\nsequential: %+v", got, want)
	}
	st := net.ParallelStats()
	if st.Widened == 0 {
		t.Fatalf("no widened windows in %d barriers at 1000 km/h (conservative window should be ~0.45s)", st.Barriers)
	}

	audited := base
	audited.Audit = check.New()
	anet, err := New(audited)
	if err != nil {
		t.Fatal(err)
	}
	if got := anet.Run(); got != want {
		t.Fatalf("audited adaptive-window run diverged:\naudited:    %+v\nsequential: %+v", got, want)
	}
	if err := audited.Audit.Err(); err != nil {
		t.Fatalf("widened windows violated shard barrier invariants: %v", err)
	}
	ast := anet.ParallelStats()
	if ast.Widened == 0 {
		t.Fatal("audited run never widened — the adaptive path is not exercised under audit")
	}
}

// TestParallelStatsAccounting checks the barrier accounting against the
// scheduler's own totals: every executed event is attributed to exactly
// one lane (a shard drain or the border lane).
func TestParallelStatsAccounting(t *testing.T) {
	net, err := New(Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50,
		Requests: 12, Engine: EngineSharded, Shards: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	st := net.ParallelStats()
	var drained uint64
	for _, c := range st.ShardExecuted {
		drained += c
	}
	if total := net.Scheduler().Executed(); drained+st.BorderExecuted != total {
		t.Fatalf("lane attribution %d (shards) + %d (border) != %d executed",
			drained, st.BorderExecuted, total)
	}
	if st.WaitNS < 0 {
		t.Fatalf("negative cumulative wait %d", st.WaitNS)
	}
}
