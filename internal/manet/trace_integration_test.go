package manet

import (
	"testing"

	"repro/internal/scheme"
	"repro/internal/trace"
)

// TestTracerCausality runs a small network with a tracer attached and
// checks causal ordering per broadcast: origination precedes every other
// event; every transmit by a non-source host is preceded by its first
// delivery; inhibits and transmits are mutually exclusive per host.
func TestTracerCausality(t *testing.T) {
	cfg := Config{
		Hosts:    15,
		MapUnits: 3,
		Scheme:   scheme.Counter{C: 2},
		Requests: 8,
		Seed:     3,

		RetainRecords: true,
		Placement:     cluster(15),
		Static:        true,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	n.Tracer = rec
	n.Run()

	if rec.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	counts := rec.CountByKind()
	if counts[trace.Originate] != 8 {
		t.Errorf("originations = %d, want 8", counts[trace.Originate])
	}
	// C=2 in a dense cluster must produce some inhibits.
	if counts[trace.Inhibit] == 0 {
		t.Error("no inhibit events for C=2 in a dense cluster")
	}

	for _, brec := range n.Records() {
		events := rec.Broadcast(brec.ID)
		if len(events) == 0 {
			t.Fatalf("no events for %v", brec.ID)
		}
		if events[0].Kind != trace.Originate {
			t.Errorf("%v: first event is %v, want originate", brec.ID, events[0].Kind)
		}
		delivered := map[int32]bool{int32(brec.ID.Source): true}
		acted := map[int32]string{}
		txCount := 0
		for _, e := range events {
			hid := int32(e.Host)
			switch e.Kind {
			case trace.Deliver:
				delivered[hid] = true
			case trace.Transmit:
				txCount++
				if !delivered[hid] {
					t.Errorf("%v: host %d transmitted before delivery", brec.ID, hid)
				}
				if prev, ok := acted[hid]; ok {
					t.Errorf("%v: host %d acted twice (%s then transmit)", brec.ID, hid, prev)
				}
				acted[hid] = "transmit"
			case trace.Inhibit:
				if prev, ok := acted[hid]; ok {
					t.Errorf("%v: host %d acted twice (%s then inhibit)", brec.ID, hid, prev)
				}
				acted[hid] = "inhibit"
			}
		}
		if txCount != brec.Transmitted {
			t.Errorf("%v: trace transmits %d != record %d", brec.ID, txCount, brec.Transmitted)
		}
	}
}

// TestTracerDeliveryCountsMatchRecords cross-checks the tracer against
// the metrics bookkeeping for a mobile run.
func TestTracerDeliveryCountsMatchRecords(t *testing.T) {
	cfg := Config{
		Hosts:    25,
		MapUnits: 5,
		Scheme:   scheme.AdaptiveCounter{},
		Requests: 10,

		RetainRecords: true,
		Seed:          9,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	n.Tracer = rec
	n.Run()

	for _, brec := range n.Records() {
		delivers := 0
		for _, e := range rec.Broadcast(brec.ID) {
			if e.Kind == trace.Deliver {
				delivers++
			}
		}
		// Received counts the source plus all first deliveries.
		if delivers+1 != brec.Received {
			t.Errorf("%v: trace delivers+1 = %d, record r = %d",
				brec.ID, delivers+1, brec.Received)
		}
	}
}
