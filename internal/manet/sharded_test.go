package manet

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// shardedCases is the configuration matrix the sharded engine must
// reproduce byte-for-byte: every mobility model, HELLO mode, scheme
// family, and channel impairment the sequential oracle supports without
// the deprecated Disable* switches.
var shardedCases = []struct {
	name string
	cfg  Config
}{
	{"flooding-mobile", Config{
		Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 12,
	}},
	{"adaptive-counter-hello", Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50, Requests: 12,
	}},
	{"location-waypoint", Config{
		Scheme: scheme.AdaptiveLocation{}, MapUnits: 5, Hosts: 40, Requests: 10,
		Mobility: MobilityWaypoint,
	}},
	{"neighbor-coverage-groups", Config{
		Scheme: scheme.NeighborCoverage{}, MapUnits: 3, Hosts: 30, Requests: 8,
		Groups: 3,
	}},
	{"repair-dynamic-hello", Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 30, Requests: 8,
		HelloMode: HelloDynamic, Repair: true, Warmup: 5 * sim.Second,
	}},
	{"flooding-static", Config{
		Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 10,
		Static: true,
	}},
	{"counter-loss-capture", Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 3, Hosts: 40, Requests: 10,
		LossRate: 0.1, CaptureRatio: 2,
	}},
}

// TestShardedMatchesSequential pins the tentpole contract: the sharded
// engine is a pure reorganization of the same event-driven model, so
// for any shard count its Summary must equal the sequential oracle's
// field for field. Any divergence means a shard wheel reordered events,
// a parallel construction phase perturbed an RNG stream, a concurrent
// barrier-window drain perturbed a mobility stream, or the
// band-parallel reachability walk miscounted a component.
//
// The matrix runs at GOMAXPROCS 1 and 4: the parallel barrier drain
// must produce the same bytes whether its workers time-slice one core
// or race each other on four (under -race in CI, this is also the
// data-race check on the lane-state partitioning).
//
// Every sharded run threads one shared Arena, so the matrix also pins
// slab reuse: each construction rebuilds on the previous world's
// memory (when shapes match) and must still be byte-identical to the
// freshly allocated oracle.
func TestShardedMatchesSequential(t *testing.T) {
	arena := NewArena()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, tc := range shardedCases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				seq := tc.cfg
				seq.Seed = seed
				seq.Engine = EngineSequentialOracle
				oracle, err := New(seq)
				if err != nil {
					t.Fatal(err)
				}
				want := oracle.Run()
				for _, procs := range []int{1, 4} {
					runtime.GOMAXPROCS(procs)
					for _, shards := range []int{1, 2, 4, 8} {
						sh := tc.cfg
						sh.Seed = seed
						sh.Engine = EngineSharded
						sh.Shards = shards
						sh.Arena = arena
						net, err := New(sh)
						if err != nil {
							t.Fatal(err)
						}
						if net.Engine() != EngineSharded || net.ShardCount() != shards {
							t.Fatalf("resolved engine %v/%d, want sharded/%d",
								net.Engine(), net.ShardCount(), shards)
						}
						if got := net.Run(); got != want {
							t.Fatalf("seed %d procs %d shards %d: summaries diverge:\nsharded:    %+v\nsequential: %+v",
								seed, procs, shards, got, want)
						}
					}
				}
			}
		})
	}
}

// TestShardedAuditClean runs the sharded engine under the invariant
// auditor — including the cross-shard barrier checks — and requires a
// violation-free run with the same summary as an unaudited one.
func TestShardedAuditClean(t *testing.T) {
	base := Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50, Requests: 12,
		Engine: EngineSharded, Shards: 4, Seed: 7,
	}
	plain, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Run()

	audited := base
	audited.Audit = check.New()
	net, err := New(audited)
	if err != nil {
		t.Fatal(err)
	}
	got := net.Run()
	if err := audited.Audit.Err(); err != nil {
		t.Fatalf("audited sharded run reported violations: %v", err)
	}
	if !audited.Audit.SummaryChecked() {
		t.Fatal("auditor never checked the summary")
	}
	if got != want {
		t.Fatalf("audit perturbed the sharded run:\naudited:   %+v\nunaudited: %+v", got, want)
	}
}

// TestEngineResolution pins the Engine/Shards API: auto selection,
// explicit engines, and every contradiction Validate must reject.
func TestEngineResolution(t *testing.T) {
	ok := []struct {
		name           string
		cfg            Config
		engine         Engine
		shards         int
		sharded, dense bool
	}{
		{"auto-default", Config{}, EngineSequentialOracle, 0, false, true},
		{"auto-with-shards", Config{Shards: 2}, EngineSharded, 2, true, true},
		{"sharded-default-shards", Config{Engine: EngineSharded}, EngineSharded, DefaultShards, true, true},
		{"oracle-legacy-shims", Config{Engine: EngineSequentialOracle, DisableDenseState: true},
			EngineSequentialOracle, 0, false, false},
	}
	for _, tc := range ok {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.WithDefaults()
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			f, err := cfg.EngineFeatures()
			if err != nil {
				t.Fatal(err)
			}
			if f.Sharded != tc.sharded || f.Shards != tc.shards || f.DenseState != tc.dense {
				t.Fatalf("features %+v, want sharded=%v shards=%d dense=%v",
					f, tc.sharded, tc.shards, tc.dense)
			}
			engine, shards, err := cfg.resolveEngine()
			if err != nil || engine != tc.engine || shards != tc.shards {
				t.Fatalf("resolved (%v, %d, %v), want (%v, %d)", engine, shards, err, tc.engine, tc.shards)
			}
		})
	}

	bad := []struct {
		name string
		cfg  Config
	}{
		{"oracle-with-shards", Config{Engine: EngineSequentialOracle, Shards: 4}},
		{"sharded-with-shim", Config{Engine: EngineSharded, DisableLadderQueue: true}},
		{"auto-shards-with-shim", Config{Shards: 2, DisableSpatialIndex: true}},
		{"non-power-of-two", Config{Shards: 3}},
		{"negative-shards", Config{Shards: -1}},
		{"oversized-shards", Config{Shards: 128}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.WithDefaults().Validate(); err == nil {
				t.Fatal("Validate accepted a contradictory engine selection")
			}
		})
	}
}

// countCtx cancels itself after a fixed number of barrier checks, which
// makes mid-run cancellation deterministic (no wall-clock races).
type countCtx struct {
	context.Context
	checks atomic.Int32
	limit  int32
}

func (c *countCtx) Err() error {
	if c.checks.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// TestRunContextCancel covers cooperative cancellation: an already
// cancelled context stops before any event, a mid-run cancellation
// stops at a barrier short of the configured horizon, and in both cases
// the worker pool's goroutines are released.
func TestRunContextCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net, err := New(Config{Hosts: 30, Requests: 10, Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}
	if got := net.Scheduler().Executed(); got != 0 {
		t.Fatalf("pre-cancelled run executed %d events", got)
	}

	mid, err := New(Config{Hosts: 30, Requests: 10, Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cc := &countCtx{Context: context.Background(), limit: 5}
	if _, err := mid.RunContext(cc); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation returned %v, want context.Canceled", err)
	}
	full, err := New(Config{Hosts: 30, Requests: 10, Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if mid.Scheduler().Executed() >= full.Scheduler().Executed() {
		t.Fatalf("cancelled run executed %d events, full run %d — cancellation did not stop early",
			mid.Scheduler().Executed(), full.Scheduler().Executed())
	}

	// Pool goroutines exit on Close (deferred by RunContext); give the
	// runtime a beat to reap them before comparing.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
