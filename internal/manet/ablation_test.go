package manet

import (
	"testing"

	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestDisableCollisionsRestoresFlooding: without collisions, flooding on
// a connected mobile map must reach essentially everyone, and the
// channel must report zero collisions.
func TestDisableCollisionsRestoresFlooding(t *testing.T) {
	cfg := Config{
		Hosts:             40,
		MapUnits:          3,
		Scheme:            scheme.Flooding{},
		Requests:          15,
		Seed:              21,
		DisableCollisions: true,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.Collisions != 0 {
		t.Errorf("collisions = %d with the model disabled", s.Collisions)
	}
	if s.MeanRE < 0.999 {
		t.Errorf("flooding without collisions RE = %v, want ~1", s.MeanRE)
	}
}

// TestCollisionsHurtDenseFlooding: with the model enabled, the same
// workload must record a substantial number of collisions.
func TestCollisionsHurtDenseFlooding(t *testing.T) {
	cfg := Config{
		Hosts:    40,
		MapUnits: 1,
		Scheme:   scheme.Flooding{},
		Requests: 15,
		Seed:     21,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.Collisions == 0 {
		t.Error("dense flooding recorded no collisions; the storm is missing")
	}
}

// TestIdealHelloTablesExact: with idealized beacons in a static cluster,
// every table matches ground truth after one interval, and no HELLO
// frames hit the channel.
func TestIdealHelloTablesExact(t *testing.T) {
	cfg := Config{
		Hosts:         10,
		MapUnits:      1,
		Static:        true,
		Placement:     cluster(10),
		Scheme:        scheme.NeighborCoverage{},
		HelloMode:     HelloFixed,
		HelloInterval: 1 * sim.Second,
		IdealHello:    true,
		Requests:      1,
		Warmup:        5 * sim.Second,
		Seed:          33,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.HelloSent == 0 {
		t.Fatal("ideal hello counted no beacons")
	}
	// No hello frames on the air: all transmissions are broadcast data.
	if s.Transmissions > s.Broadcasts*cfg.Hosts {
		t.Errorf("ideal hello still transmitted frames: %d", s.Transmissions)
	}
	for i := 0; i < cfg.Hosts; i++ {
		if got, want := n.HostTableCount(i), n.TrueNeighborCount(i); got != want {
			t.Errorf("host %d: table %d, truth %d", i, got, want)
		}
	}
}

// TestIdealHelloHelpsNCWhenStale: at high speed with a long beacon
// interval, idealized hello should not do worse than MAC hello (it
// removes staleness-inducing collisions and beacon airtime).
func TestIdealHelloHelpsNCWhenStale(t *testing.T) {
	base := Config{
		Hosts:         60,
		MapUnits:      9,
		MaxSpeedKMH:   70,
		Scheme:        scheme.NeighborCoverage{},
		HelloMode:     HelloFixed,
		HelloInterval: 10 * sim.Second,
		Requests:      25,
		Seed:          27,
	}
	mac := base
	nm, err := New(mac)
	if err != nil {
		t.Fatal(err)
	}
	sm := nm.Run()

	ideal := base
	ideal.IdealHello = true
	ni, err := New(ideal)
	if err != nil {
		t.Fatal(err)
	}
	si := ni.Run()

	if si.MeanRE < sm.MeanRE-0.05 {
		t.Errorf("ideal hello RE %v notably worse than MAC hello %v", si.MeanRE, sm.MeanRE)
	}
}

// TestProbabilisticEndToEnd: gossip probability shapes transmissions as
// expected — higher P, more transmissions.
func TestProbabilisticEndToEnd(t *testing.T) {
	run := func(p float64) int {
		cfg := Config{
			Hosts:    30,
			MapUnits: 1,
			Scheme:   scheme.Probabilistic{P: p},
			Requests: 20,
			Seed:     17,
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n.Run().Transmissions
	}
	lo, hi := run(0.2), run(0.9)
	if lo >= hi {
		t.Errorf("P=0.2 transmitted %d >= P=0.9's %d", lo, hi)
	}
}

// TestClusterSchemeEndToEnd: in a dense cluster with stable HELLO
// tables, the cluster scheme should deliver everywhere while saving most
// rebroadcasts (only the head and gateways relay).
func TestClusterSchemeEndToEnd(t *testing.T) {
	cfg := Config{
		Hosts:     20,
		MapUnits:  1,
		Static:    true,
		Placement: cluster(20),
		Scheme:    scheme.Cluster{},
		Requests:  10,
		Seed:      13,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.MeanRE < 0.95 {
		t.Errorf("cluster scheme RE = %v in a single cell", s.MeanRE)
	}
	// One mutual-range cell: a single head relays; everyone else is a
	// member. SRB should be very high.
	if s.MeanSRB < 0.8 {
		t.Errorf("cluster scheme SRB = %v, want most hosts silent", s.MeanSRB)
	}
}

// TestWaypointMobilityEndToEnd: the simulation runs identically shaped
// under the random-waypoint model.
func TestWaypointMobilityEndToEnd(t *testing.T) {
	cfg := Config{
		Hosts:    25,
		MapUnits: 3,
		Scheme:   scheme.AdaptiveCounter{},
		Mobility: MobilityWaypoint,
		Requests: 10,

		RetainRecords: true,
		Seed:          19,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.MeanRE < 0.8 {
		t.Errorf("waypoint mobility RE = %v, suspiciously low", s.MeanRE)
	}
	for _, rec := range n.Records() {
		if rec.Transmitted > rec.Received {
			t.Errorf("invariant t<=r violated under waypoint mobility")
		}
	}
}

func TestMobilityModelString(t *testing.T) {
	if MobilityRandomTurn.String() != "random-turn" ||
		MobilityWaypoint.String() != "random-waypoint" ||
		MobilityModel(7).String() == "" {
		t.Error("mobility model names wrong")
	}
}

// TestLossRateReducesReachability: fading loss must hurt a fixed
// workload monotonically (0% vs 30%).
func TestLossRateReducesReachability(t *testing.T) {
	run := func(loss float64) float64 {
		cfg := Config{
			Hosts:    50,
			MapUnits: 5,
			Scheme:   scheme.Counter{C: 2},
			Requests: 20,
			LossRate: loss,
			Seed:     31,
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n.Run().MeanRE
	}
	clean, lossy := run(0), run(0.3)
	if lossy >= clean {
		t.Errorf("RE with 30%% loss (%v) not below clean RE (%v)", lossy, clean)
	}
}

// TestHelloFreeSchemesSendNoHellos: fixed-threshold schemes must not pay
// any beacon cost by default.
func TestHelloFreeSchemesSendNoHellos(t *testing.T) {
	for _, sch := range []scheme.Scheme{
		scheme.Flooding{}, scheme.Counter{C: 3}, scheme.Location{A: 0.05},
	} {
		n, err := New(Config{Hosts: 20, MapUnits: 3, Scheme: sch, Requests: 5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if s := n.Run(); s.HelloSent != 0 {
			t.Errorf("%s sent %d hellos without needing them", sch.Name(), s.HelloSent)
		}
	}
}

// TestEveryBroadcastResolves: after the run drains, no host may hold an
// unresolved pending rebroadcast (they all transmitted or inhibited).
func TestEveryBroadcastResolves(t *testing.T) {
	cfg := Config{
		Hosts:    40,
		MapUnits: 5,
		Scheme:   scheme.AdaptiveCounter{},
		Requests: 15,
		Drain:    5 * sim.Second,
		Seed:     43,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	for i, h := range n.hosts {
		if h.pendingCount() != 0 {
			t.Errorf("host %d still holds %d pending rebroadcasts after drain",
				i, h.pendingCount())
		}
	}
}

// TestGroupMobilityEndToEnd: hosts moving as a few coherent groups form
// dense local clusters; the adaptive counter should save considerably
// more than in the same-size uniformly mixed network.
func TestGroupMobilityEndToEnd(t *testing.T) {
	base := Config{
		Hosts:         60,
		MapUnits:      7,
		Scheme:        scheme.AdaptiveCounter{},
		Requests:      15,
		RetainRecords: true,
		Seed:          47,
	}
	uniform := base
	nu, err := New(uniform)
	if err != nil {
		t.Fatal(err)
	}
	su := nu.Run()

	grouped := base
	grouped.Groups = 4
	ng, err := New(grouped)
	if err != nil {
		t.Fatal(err)
	}
	sg := ng.Run()

	if sg.MeanSRB <= su.MeanSRB {
		t.Errorf("grouped SRB %v not above uniform SRB %v (groups are locally dense)",
			sg.MeanSRB, su.MeanSRB)
	}
	for _, rec := range ng.Records() {
		if rec.Transmitted > rec.Received {
			t.Error("invariant t<=r violated under group mobility")
		}
	}
}

func TestGroupMobilityValidation(t *testing.T) {
	cfg := Config{Hosts: 10, Groups: 2, Static: true, Scheme: scheme.Flooding{}}
	if err := cfg.WithDefaults().Validate(); err == nil {
		t.Error("groups + static accepted")
	}
	bad := Config{Hosts: 10, Groups: -1, Scheme: scheme.Flooding{}}
	if err := bad.WithDefaults().Validate(); err == nil {
		t.Error("negative groups accepted")
	}
}
