package manet

import (
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Arena retains the sharded engine's bulk slab allocations across
// Networks. A parameter sweep constructs thousands of same-size worlds
// back to back; without reuse every construction allocates (and the
// collector then marks and sweeps) on the order of a kilobyte per host,
// which at mega-map populations makes the allocator the dominant cost
// of the whole experiment. Passing one Arena through Config.Arena lets
// each construction reclaim the previous world's slabs: steady-state
// construction then allocates almost nothing, and collections stop
// re-marking tens of megabytes of dead host state.
//
// The contract is strict in exchange for that: an Arena may back at
// most one live Network at a time. Once a Config carrying the arena is
// passed to New, the previous Network built from it — and anything
// reached through that Network (positions, neighbor counts, host
// state) — must no longer be touched; its memory now belongs to the
// new world. Results that must outlive the Network (the Summary,
// retained records) are unaffected: they are plain values owned by the
// caller.
//
// An Arena is not safe for concurrent use. The sequential oracle
// ignores it: per-host construction is the oracle's specified shape,
// and reusing its piecemeal allocations would buy nothing.
//
// Slab reinitialization is by full overwrite (every Init*/New*Into
// constructor and RNG fork writes the complete record), so a reused
// world is byte-identical to a freshly allocated one — the sharded
// equivalence suite runs its whole matrix through one shared arena to
// pin exactly that.
type Arena struct {
	hostsN     int
	slabMovers bool
	hosts      []*host
	hostSlab   []host
	macSlab    []mac.MAC
	dedupSlab  []packet.DedupTable
	rngSlab    []sim.RNG
	moveSlab   []sim.RNG
	tableSlab  []neighbor.Table
	roamerSlab []mobility.Roamer
	events     []sim.Event
}

// NewArena returns an empty arena. The first construction through it
// allocates and parks its slabs; later same-shape constructions reuse
// them.
func NewArena() *Arena { return &Arena{} }

// fits reports whether the arena's parked slabs match the requested
// world shape. A mismatch (different population, different mover
// layout) silently falls back to fresh allocation — the arena then
// parks the new slabs instead.
func (a *Arena) fits(hostsN int, slabMovers bool) bool {
	return a.hostsN == hostsN && a.slabMovers == slabMovers && a.hostSlab != nil
}
