package manet

import (
	"testing"

	"repro/internal/check"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// The localized interference engine must be a pure optimization: for a
// fixed seed, resolving overlap only against senders within 2×radius
// (+ drift) using receiver bitsets must produce the same Summary value
// field for field as the legacy global scan over every active
// transmission. Any divergence means the locality bound or the bitset
// rule changed the collision model, not just its cost.
func TestInterferenceIndexMatchesGlobalScan(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flooding-mobile", Config{
			Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 12,
		}},
		{"flooding-static-dense", Config{
			Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: 60, Requests: 10,
			Static: true,
		}},
		{"counter-capture", Config{
			Scheme: scheme.Counter{C: 3}, MapUnits: 3, Hosts: 40, Requests: 12,
			CaptureRatio: 4,
		}},
		{"adaptive-counter-loss", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50, Requests: 12,
			LossRate: 0.1,
		}},
		{"location-waypoint-capture", Config{
			Scheme: scheme.AdaptiveLocation{}, MapUnits: 5, Hosts: 40, Requests: 10,
			Mobility: MobilityWaypoint, CaptureRatio: 10,
		}},
		{"neighbor-coverage-repair", Config{
			Scheme: scheme.NeighborCoverage{}, MapUnits: 3, Hosts: 30, Requests: 8,
			Repair: true, HelloMode: HelloDynamic, Warmup: 5 * sim.Second,
		}},
		// DisableSpatialIndex removes the grid, forcing the bitset engine
		// onto its global-scan fallback — the third overlap path.
		{"flooding-no-grid", Config{
			Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 12,
			DisableSpatialIndex: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				localized := tc.cfg
				localized.Seed = seed
				legacy := tc.cfg
				legacy.Seed = seed
				legacy.DisableInterferenceIndex = true

				lo, err := New(localized)
				if err != nil {
					t.Fatal(err)
				}
				le, err := New(legacy)
				if err != nil {
					t.Fatal(err)
				}
				ls, gs := lo.Run(), le.Run()
				if ls != gs {
					t.Fatalf("seed %d: localized and legacy summaries diverge:\nlocalized: %+v\nlegacy:    %+v", seed, ls, gs)
				}
			}
		})
	}
}

// Both engines must also agree under the invariant auditor (which
// reconciles per-receiver delivered/collided/lost counts against the
// Summary), and auditing must not perturb either engine's result.
func TestInterferenceIndexMatchesGlobalScanAudited(t *testing.T) {
	base := Config{
		Scheme: scheme.AdaptiveCounter{}, MapUnits: 3, Hosts: 40, Requests: 10,
		CaptureRatio: 4, Seed: 2,
	}
	run := func(legacy bool) any {
		cfg := base
		cfg.DisableInterferenceIndex = legacy
		a := check.New()
		cfg.Audit = a
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := n.Run()
		if err := a.Err(); err != nil {
			t.Fatalf("legacy=%v: audit violation: %v", legacy, err)
		}
		if !a.SummaryChecked() {
			t.Fatalf("legacy=%v: summary reconciliation did not run", legacy)
		}
		return s
	}
	if ls, gs := run(false), run(true); ls != gs {
		t.Fatalf("audited localized and legacy summaries diverge:\nlocalized: %+v\nlegacy:    %+v", ls, gs)
	}
}
