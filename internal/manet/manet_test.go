package manet

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// chain returns n host positions in a line, spaced gap meters apart.
func chain(n int, gap float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 100 + float64(i)*gap, Y: 100}
	}
	return pts
}

// cluster returns n hosts packed inside one radio radius.
func cluster(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: 200 + float64(i%5)*40, Y: 200 + float64(i/5)*40}
	}
	return pts
}

func TestFloodingReachesChain(t *testing.T) {
	// A 6-hop static chain: flooding must deliver to every host.
	cfg := Config{
		Hosts:     7,
		MapUnits:  7,
		Static:    true,
		Placement: chain(7, 450),
		Scheme:    scheme.Flooding{},
		Requests:  5,
		Seed:      1,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.Broadcasts != 5 {
		t.Fatalf("broadcasts = %d", s.Broadcasts)
	}
	if s.MeanRE < 0.99 {
		t.Errorf("flooding on a quiet chain: RE = %v, want ~1", s.MeanRE)
	}
	if s.MeanSRB != 0 {
		t.Errorf("flooding SRB = %v, want exactly 0", s.MeanSRB)
	}
}

func TestFloodingTransmissionCount(t *testing.T) {
	// Flooding costs one transmission per receiving host per broadcast.
	cfg := Config{
		Hosts:     5,
		MapUnits:  1,
		Static:    true,
		Placement: cluster(5),
		Scheme:    scheme.Flooding{},
		Requests:  1,
		Seed:      3,

		RetainRecords: true,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	rec := n.Records()[0]
	if rec.Received != rec.Transmitted {
		t.Errorf("flooding: r=%d t=%d, want equal", rec.Received, rec.Transmitted)
	}
}

func TestCounterSchemeSavesInDenseCluster(t *testing.T) {
	// 20 hosts in one mutual-range cluster: with C=2 most hosts hear the
	// packet twice before their own rebroadcast fires and cancel.
	cfg := Config{
		Hosts:     20,
		MapUnits:  1,
		Static:    true,
		Placement: cluster(20),
		Scheme:    scheme.Counter{C: 2},
		Requests:  10,
		Seed:      7,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.MeanRE < 0.95 {
		t.Errorf("counter scheme in a single cluster: RE = %v, want ~1", s.MeanRE)
	}
	if s.MeanSRB < 0.5 {
		t.Errorf("counter scheme saved only %v of rebroadcasts in a dense cluster", s.MeanSRB)
	}
}

func TestCounterNeverExceedsFloodingTransmissions(t *testing.T) {
	base := Config{
		Hosts:    30,
		MapUnits: 3,
		Requests: 20,
		Seed:     11,
	}
	fl := base
	fl.Scheme = scheme.Flooding{}
	nf, err := New(fl)
	if err != nil {
		t.Fatal(err)
	}
	sf := nf.Run()

	ct := base
	ct.Scheme = scheme.Counter{C: 3}
	nc, err := New(ct)
	if err != nil {
		t.Fatal(err)
	}
	sc := nc.Run()

	if sc.MeanSRB <= sf.MeanSRB {
		t.Errorf("counter SRB %v not above flooding SRB %v", sc.MeanSRB, sf.MeanSRB)
	}
}

func TestInvariantTransmittedLEReceived(t *testing.T) {
	// For every scheme: t <= r (only receiving hosts can rebroadcast)
	// and r <= hosts.
	schemes := []scheme.Scheme{
		scheme.Flooding{},
		scheme.Counter{C: 3},
		scheme.Location{A: 0.05},
		scheme.AdaptiveCounter{},
		scheme.AdaptiveLocation{},
		scheme.NeighborCoverage{},
	}
	for _, sch := range schemes {
		cfg := Config{
			Hosts:         25,
			MapUnits:      3,
			Scheme:        sch,
			Requests:      15,
			RetainRecords: true,
			Seed:          13,
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		n.Run()
		for _, rec := range n.Records() {
			if rec.Transmitted > rec.Received {
				t.Errorf("%s: t=%d > r=%d for %v", sch.Name(), rec.Transmitted, rec.Received, rec.ID)
			}
			if rec.Received > cfg.Hosts {
				t.Errorf("%s: r=%d > population %d", sch.Name(), rec.Received, cfg.Hosts)
			}
			if rec.Reachable > cfg.Hosts || rec.Reachable < 1 {
				t.Errorf("%s: e=%d out of range", sch.Name(), rec.Reachable)
			}
			if rec.Latency() < 0 {
				t.Errorf("%s: negative latency %v", sch.Name(), rec.Latency())
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Hosts:    20,
		MapUnits: 3,
		Scheme:   scheme.AdaptiveCounter{},
		Requests: 10,
		Seed:     17,
	}
	run := func() (float64, float64, int) {
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := n.Run()
		return s.MeanRE, s.MeanSRB, s.Transmissions
	}
	re1, srb1, tx1 := run()
	re2, srb2, tx2 := run()
	if re1 != re2 || srb1 != srb2 || tx1 != tx2 {
		t.Errorf("same seed diverged: (%v,%v,%d) vs (%v,%v,%d)", re1, srb1, tx1, re2, srb2, tx2)
	}
}

func TestSeedsProduceDifferentRuns(t *testing.T) {
	res := make(map[int]bool)
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := Config{
			Hosts:    20,
			MapUnits: 3,
			Scheme:   scheme.Flooding{},
			Requests: 10,
			Seed:     seed,
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res[n.Run().Transmissions] = true
	}
	if len(res) < 2 {
		t.Error("three different seeds produced identical transmission counts")
	}
}

func TestHelloPopulatesNeighborTables(t *testing.T) {
	cfg := Config{
		Hosts:     8,
		MapUnits:  1,
		Static:    true,
		Placement: cluster(8),
		Scheme:    scheme.NeighborCoverage{},
		HelloMode: HelloFixed,
		Requests:  1,
		Warmup:    5 * sim.Second,
		Seed:      19,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.HelloSent == 0 {
		t.Fatal("no HELLO packets sent")
	}
	// After warmup every host in the mutual-range cluster should know
	// all 7 others.
	for i := 0; i < cfg.Hosts; i++ {
		if got, want := n.HostTableCount(i), n.TrueNeighborCount(i); got != want {
			t.Errorf("host %d table has %d neighbors, ground truth %d", i, got, want)
		}
	}
}

func TestNeighborCoverageSavesInCluster(t *testing.T) {
	cfg := Config{
		Hosts:     15,
		MapUnits:  1,
		Static:    true,
		Placement: cluster(15),
		Scheme:    scheme.NeighborCoverage{},
		Requests:  10,
		Seed:      23,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if s.MeanRE < 0.95 {
		t.Errorf("NC in cluster: RE = %v", s.MeanRE)
	}
	// In a fully meshed cluster the first transmission covers everyone;
	// with accurate tables nearly all rebroadcasts are suppressed.
	if s.MeanSRB < 0.7 {
		t.Errorf("NC in cluster saved only %v", s.MeanSRB)
	}
}

func TestDynamicHelloSendsFewerInStaticNetwork(t *testing.T) {
	base := Config{
		Hosts:     10,
		MapUnits:  1,
		Static:    true,
		Placement: cluster(10),
		Scheme:    scheme.NeighborCoverage{},
		Requests:  1,
		Warmup:    80 * sim.Second,
		Seed:      29,
	}
	fixed := base
	fixed.HelloMode = HelloFixed
	fixed.HelloInterval = 1 * sim.Second
	nf, err := New(fixed)
	if err != nil {
		t.Fatal(err)
	}
	sf := nf.Run()

	dyn := base
	dyn.HelloMode = HelloDynamic
	nd, err := New(dyn)
	if err != nil {
		t.Fatal(err)
	}
	sd := nd.Run()

	// A static network has near-zero neighborhood variation, so DHI
	// should approach the 10x longer himax interval.
	if sd.HelloSent*3 > sf.HelloSent {
		t.Errorf("DHI sent %d HELLOs, fixed 1s sent %d; expected large saving",
			sd.HelloSent, sf.HelloSent)
	}
}

func TestIsolatedSourceREIsOne(t *testing.T) {
	// Two hosts far out of range: e = 1, r = 1, RE = 1.
	cfg := Config{
		Hosts:     2,
		MapUnits:  11,
		Static:    true,
		Placement: []geom.Point{{X: 100, Y: 100}, {X: 5000, Y: 5000}},
		Scheme:    scheme.Flooding{},
		Requests:  4,
		Seed:      31,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	if math.Abs(s.MeanRE-1) > 1e-9 {
		t.Errorf("isolated hosts RE = %v, want 1 (by the paper's definition)", s.MeanRE)
	}
}

func TestPartitionLimitsReachabilityDenominator(t *testing.T) {
	// Two clusters far apart: e counts only the source's component.
	pts := append(cluster(5), geom.Point{X: 4000, Y: 4000},
		geom.Point{X: 4040, Y: 4000}, geom.Point{X: 4080, Y: 4000})
	cfg := Config{
		Hosts:     8,
		MapUnits:  11,
		Static:    true,
		Placement: pts,
		Scheme:    scheme.Flooding{},
		Requests:  6,
		Seed:      37,

		RetainRecords: true,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := n.Run()
	for _, rec := range n.Records() {
		if rec.Reachable != 5 && rec.Reachable != 3 {
			t.Errorf("reachable = %d, want 5 or 3 (two partitions)", rec.Reachable)
		}
	}
	if s.MeanRE < 0.99 {
		t.Errorf("flooding within partitions should reach everyone: %v", s.MeanRE)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Hosts: -1},
		{Hosts: 3, Placement: chain(2, 100), Static: true},
		{Scheme: scheme.NeighborCoverage{}, HelloMode: HelloOff, Warmup: sim.Second},
	}
	// The third case only fails if defaulting is bypassed; simulate that
	// by validating directly after defaults would have fixed HelloMode.
	c0 := cases[0].WithDefaults()
	if err := c0.Validate(); err == nil {
		t.Error("negative hosts passed validation")
	}
	c1 := cases[1].WithDefaults()
	if err := c1.Validate(); err == nil {
		t.Error("mismatched placement passed validation")
	}
	// Defaulting must auto-enable HELLO for schemes that need it.
	c2 := cases[2].WithDefaults()
	if c2.HelloMode == HelloOff {
		t.Error("defaults did not enable HELLO for a HELLO-dependent scheme")
	}
}

func TestRunTwicePanics(t *testing.T) {
	n, err := New(Config{Hosts: 2, MapUnits: 1, Requests: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	n.Run()
}

func TestAdaptiveCounterOutperformsFixedSparseC2(t *testing.T) {
	// The paper's headline: in sparse maps, C=2 loses reachability while
	// the adaptive scheme keeps it high. Use a moderately sparse static
	// topology with enough hosts for multihop structure.
	base := Config{
		Hosts:    60,
		MapUnits: 9,
		Requests: 30,
		Seed:     41,
	}
	c2 := base
	c2.Scheme = scheme.Counter{C: 2}
	n1, err := New(c2)
	if err != nil {
		t.Fatal(err)
	}
	s1 := n1.Run()

	ac := base
	ac.Scheme = scheme.AdaptiveCounter{}
	n2, err := New(ac)
	if err != nil {
		t.Fatal(err)
	}
	s2 := n2.Run()

	if s2.MeanRE < s1.MeanRE-0.02 {
		t.Errorf("adaptive counter RE %v worse than fixed C=2 RE %v in sparse map",
			s2.MeanRE, s1.MeanRE)
	}
}

func TestHelloModeString(t *testing.T) {
	if HelloOff.String() != "off" || HelloFixed.String() != "fixed" ||
		HelloDynamic.String() != "dynamic" || HelloMode(9).String() == "" {
		t.Error("HelloMode names wrong")
	}
}
