package manet

import (
	"testing"

	"repro/internal/scheme"
	"repro/internal/sim"
)

// The spatial grid index must be a pure optimization: a run with the
// index answers every unit-disk query identically to the linear scans it
// replaced, so for a fixed seed the two modes must produce the same
// Summary value field for field — same deliveries, same collisions, same
// latencies, same event count. Any divergence means the index changed
// the model, not just its cost.
func TestGridMatchesLinearScan(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flooding-mobile", Config{
			Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 12,
		}},
		{"adaptive-counter-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 50, Requests: 12,
		}},
		{"location-waypoint", Config{
			Scheme: scheme.AdaptiveLocation{}, MapUnits: 5, Hosts: 40, Requests: 10,
			Mobility: MobilityWaypoint,
		}},
		{"counter-loss-capture", Config{
			Scheme: scheme.Counter{C: 3}, MapUnits: 3, Hosts: 40, Requests: 12,
			LossRate: 0.1, CaptureRatio: 4,
		}},
		{"neighbor-coverage-groups", Config{
			Scheme: scheme.NeighborCoverage{}, MapUnits: 3, Hosts: 30, Requests: 8,
			Groups: 3,
		}},
		{"flooding-static-dense", Config{
			Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: 60, Requests: 10,
			Static: true,
		}},
		{"repair-dynamic-hello", Config{
			Scheme: scheme.AdaptiveCounter{}, MapUnits: 5, Hosts: 30, Requests: 8,
			HelloMode: HelloDynamic, Repair: true, Warmup: 5 * sim.Second,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				grid := tc.cfg
				grid.Seed = seed
				linear := tc.cfg
				linear.Seed = seed
				linear.DisableSpatialIndex = true

				gn, err := New(grid)
				if err != nil {
					t.Fatal(err)
				}
				ln, err := New(linear)
				if err != nil {
					t.Fatal(err)
				}
				gs, ls := gn.Run(), ln.Run()
				if gs != ls {
					t.Fatalf("seed %d: grid and linear summaries diverge:\ngrid:   %+v\nlinear: %+v", seed, gs, ls)
				}
			}
		})
	}
}

// The ground-truth neighbor query must agree between the two modes at an
// arbitrary mid-run instant, not just in end-of-run aggregates.
func TestGridNeighborGroundTruthMatchesLinear(t *testing.T) {
	mk := func(disable bool) *Network {
		n, err := New(Config{
			Scheme: scheme.Flooding{}, MapUnits: 3, Hosts: 40, Requests: 0,
			Seed: 9, DisableSpatialIndex: disable,
			Warmup: 1 * sim.Second, Drain: 1 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	gn, ln := mk(false), mk(true)
	gn.Run()
	ln.Run()
	for i := 0; i < 40; i++ {
		if g, l := gn.TrueNeighborCount(i), ln.TrueNeighborCount(i); g != l {
			t.Fatalf("host %d: grid neighbor count %d != linear %d", i, g, l)
		}
	}
}
