package manet

// Speculative (optimistic) barrier windows for EngineSpeculative.
//
// The sharded engine's barrier loop (parallel.go) keeps every radio
// event on the sequential border lane because a transmission's
// interaction disk may reach across a band border. On a static world
// the disks never move, so most windows contain no border interaction
// at all — the speculative engine exploits that by validating instead
// of proving:
//
//  1. At the barrier (a sequential point) it takes an in-memory
//     micro-checkpoint: the run's snapshot document (snapshot.go),
//     kept as live structs — never encoded.
//  2. The channel partitions its in-flight transmissions into per-band
//     lanes (phy.BeginSpecWindow); the window's pending events are
//     extracted in merged (time, seq) order and classified by owning
//     band (a host's MAC/assessment events belong to the band of its
//     fixed position, a transmission to its sender's band). Windows
//     are cut into segments at origination times — issuing a broadcast
//     touches globally ordered state, so each origination fires
//     sequentially between two speculative segments.
//  3. One worker per band drains its lane concurrently
//     (sim.RunLane): lane-local clocks, lane-local provisional
//     sequence numbers, lane-local transmission lists and record
//     journals. The conflict detector is in the transmit path
//     (phy.TransmitLane): any transmission whose interaction disk is
//     not wholly inside its band flags the lane.
//  4. Commit validates the window (no flagged lane, no cross-band
//     same-timestamp firing) and then replays the lanes' side effects
//     against the shared state in exact oracle order: scheduler
//     sequence numbers in global creation order (sim.CommitSpec),
//     channel stats and actives (phy.CommitSpecWindow), and the
//     journaled per-broadcast record mutations in global (time) order
//     (applySpecJournals). The committed state is byte-identical to a
//     sequential drain of the same window.
//  5. A rejected window discards the entire speculative object graph:
//     the micro-checkpoint is restored into a fresh Network whose guts
//     this Network adopts, and the window replays sequentially.
//     Consecutive rollbacks back the engine off exponentially
//     (speculate only every 2^k-th window) so a hostile topology—
//     bands narrower than one interaction disk — degrades to the
//     border-lane engine plus a bounded number of wasted drains.
//
// Eligibility (speculativeEligible) restricts speculation to
// configurations where every in-window event is classifiable by band
// and every side effect is journaled or lane-local: static worlds,
// broadcast-only traffic (no HELLO beaconing, no repair unicasts), no
// shared random streams (loss, capture), dense folding record state,
// and no observers (telemetry, audit, tracer, delivery hook,
// progress). Anything else degrades per-window to the sharded
// engine's sequential merged drain — correctness never depends on
// eligibility, only speedup does.

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/mac"
	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// recOp is one journaled per-broadcast record mutation: during a
// speculative window the note*/open* entry points append ops to the
// acting host's lane journal instead of touching the shared record
// arena, and commit replays them in global time order.
type recOp struct {
	at   sim.Time
	kind uint8
	bid  packet.BroadcastID
}

// recOp kinds, mirroring the note*/open* entry points in network.go.
const (
	recOpReceived uint8 = iota
	recOpTransmitted
	recOpActivity
	recOpOpenInc
	recOpOpenDec
)

// recJournal is one lane's record-mutation journal, in execution order
// (which is (time, seq) order within the lane).
type recJournal struct{ ops []recOp }

// specNote journals one record op on the acting host's lane, stamped
// with the lane clock so commit can interleave the lanes exactly as
// the sequential drain would have executed them.
func (n *Network) specNote(lane int32, kind uint8, bid packet.BroadcastID) {
	j := &n.specJournals[lane]
	j.ops = append(j.ops, recOp{at: n.sched.LaneNow(int(lane)), kind: kind, bid: bid})
}

// speculativeEligible reports whether barrier windows may run under
// speculative lane execution. See the package comment above for why
// each exclusion exists; an ineligible EngineSpeculative run behaves
// exactly like EngineSharded.
func (n *Network) speculativeEligible() bool {
	c := n.cfg
	return n.engine == EngineSpeculative &&
		n.shards > 1 &&
		c.Static &&
		c.HelloMode == HelloOff &&
		!c.Repair &&
		c.LossRate == 0 &&
		c.CaptureRatio == 0 &&
		n.records == nil && // dense record arena
		n.fold && // streaming fold (no RetainRecords)
		n.obs == nil &&
		n.audit == nil &&
		n.Tracer == nil &&
		n.DeliveryHook == nil &&
		n.Progress == nil
}

// assignSpecLanes performs the one-time window setup: every host (and
// its MAC) is stamped with the band owning its position — fixed for
// the whole run on a static world — and the per-lane journals, pools,
// and profiling labels are sized.
func (n *Network) assignSpecLanes() {
	if n.specAssigned {
		return
	}
	n.specAssigned = true
	n.bindSpecLanes()
	if n.specJournals == nil {
		n.specJournals = make([]recJournal, n.shards)
		n.specFrames = make([][]*packet.Frame, n.shards)
		n.specSets = make([][]*nodeset.Set, n.shards)
		n.specExtract = make([][]*sim.Event, n.shards)
	}
	if n.pstats.ShardExecuted == nil {
		n.pstats.ShardExecuted = make([]uint64, n.shards)
	}
	if n.drainDurs == nil {
		n.drainDurs = make([]time.Duration, n.shards)
	}
	if n.shardLabels == nil {
		n.shardLabels = make([]pprof.LabelSet, n.shards)
		for s := range n.shardLabels {
			n.shardLabels[s] = pprof.Labels("shard", strconv.Itoa(s))
		}
	}
}

// bindSpecLanes stamps each host and its MAC with the band of its
// position. Called once per world — and again after a rollback, whose
// restored host objects are fresh.
func (n *Network) bindSpecLanes() {
	for _, h := range n.hosts {
		lane := int32(n.shardOfY(h.mover.Position().Y))
		h.lane = lane
		h.mac.SetLane(int(lane))
	}
}

// classifySpec partitions the extracted window events into per-lane
// slices by owning band, preserving each lane's (time, seq) order. It
// reports false when any event cannot be attributed to a single band —
// the window must then be un-extracted and drained sequentially.
func (n *Network) classifySpec(events []*sim.Event) bool {
	for s := range n.specExtract {
		clearEventSlice(n.specExtract[s])
		n.specExtract[s] = n.specExtract[s][:0]
	}
	for _, e := range events {
		if e.HasFunc() {
			return false // closures carry no owner
		}
		var lane int32
		switch r := e.Runner().(type) {
		case *pendingRebroadcast:
			lane = r.h.lane
		case *mac.MAC:
			lane = int32(r.Lane())
		default:
			// The origination clamp keeps originationEvents out of the
			// window; anything else unrecognized aborts classification.
			sender, ok := phy.TransmissionSender(e.Runner())
			if !ok {
				return false
			}
			lane = n.hosts[sender].lane
		}
		if lane < 0 || int(lane) >= n.shards {
			return false
		}
		n.specExtract[lane] = append(n.specExtract[lane], e)
	}
	return true
}

func clearEventSlice(es []*sim.Event) {
	for i := range es {
		es[i] = nil
	}
}

// runSpecWindow executes one barrier window under validate-or-replay.
// Originations mutate global state (the shared sequence counter, the
// record arena's arrival order, the pool-parallel reachability walk),
// so the window is cut into segments at the armed origination times:
// each segment speculates up to strictly before the next origination,
// the origination itself fires on the sequential lane, and speculation
// resumes behind it — the waves an origination spawns land in the
// segments that follow it, where they drain in parallel. The window
// always ends with the scheduler sequentially at barrier,
// byte-identical to a plain RunUntil(barrier) from the window's start
// state.
func (n *Network) runSpecWindow(barrier sim.Time) {
	if n.specSkip > 0 {
		// Adaptive backoff after consecutive rollbacks.
		n.specSkip--
		n.sched.RunUntil(barrier)
		return
	}
	for {
		now := n.sched.Now()
		specEnd := barrier
		for i := range n.originations {
			if ev := n.originations[i].ev; ev != nil && ev.At() > now && ev.At() <= specEnd {
				specEnd = ev.At() - 1
			}
		}
		if specEnd > now {
			if !n.specSegment(specEnd) {
				// Rolled back: replay the window's remainder sequentially.
				n.sched.RunUntil(barrier)
				return
			}
		}
		if specEnd >= barrier {
			n.sched.RunUntil(barrier) // clamp the clock to the barrier
			return
		}
		// Fire the blocking origination(s) sequentially, then resume
		// speculating behind them.
		n.sched.RunUntil(specEnd + 1)
	}
}

// specSegment attempts one speculative segment from the current clock
// up to specEnd (inclusive): micro-checkpoint, concurrent lane drains,
// then either an oracle-order commit or a checkpoint restore. It
// returns false only after a rollback — the caller then replays
// sequentially; on every other outcome the clock has reached specEnd
// with state byte-identical to a sequential drain.
func (n *Network) specSegment(specEnd sim.Time) bool {
	n.assignSpecLanes()
	// Probe the cheap disqualifiers before paying for the checkpoint: a
	// transmission already on the air spanning a band border (its
	// completion interacts with two lanes), an empty segment, or an
	// unclassifiable event. None of these probes mutates state the
	// snapshot would capture — Unextract restores the scheduler exactly.
	if !n.ch.SpecWindowViable(n.shards, n.area.Height) {
		n.sched.RunUntil(specEnd)
		return true
	}
	probe := n.sched.ExtractUntil(specEnd)
	viable := len(probe) > 0 && n.classifySpec(probe)
	n.sched.Unextract(probe)
	if !viable {
		n.sched.RunUntil(specEnd)
		return true
	}
	// The micro-checkpoint: the in-memory snapshot document, taken
	// before the channel is partitioned (so its invariants — all events
	// pending, actives on the shared list — hold). A state that cannot
	// snapshot cannot roll back, so it never speculates. The document is
	// pooled — each segment truncates and refills the same backing
	// arrays, so no per-segment document allocation survives warm-up.
	ck := &n.specCk
	resetCheckpoint(ck)
	if err := n.snapshotInto(ck); err != nil {
		n.sched.RunUntil(specEnd)
		return true
	}
	if !n.ch.BeginSpecWindow(n.shards, n.area.Height) {
		// Unreachable after the viability probe (nothing ran between),
		// kept as a belt-and-suspenders sequential fallback.
		n.sched.RunUntil(specEnd)
		return true
	}
	events := n.sched.ExtractUntil(specEnd)
	if len(events) == 0 || !n.classifySpec(events) {
		n.sched.Unextract(events)
		n.ch.CommitSpecWindow() // folds the untouched lanes back
		n.sched.RunUntil(specEnd)
		return true
	}

	n.sched.BeginSpec(n.shards)
	n.specOpen = true
	n.pstats.Speculated++
	n.pool.Do(n.shards, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			start := time.Now()
			pprof.Do(context.Background(), n.shardLabels[s], func(context.Context) {
				n.sched.RunLane(s, n.specExtract[s], specEnd)
			})
			n.drainDurs[s] = time.Since(start)
		}
	})
	n.specOpen = false
	fired := make([]uint64, n.shards)
	for s := range fired {
		fired[s] = n.sched.LaneFired(s) // read before CommitSpec truncates
	}

	if n.sched.CommitSpec(specEnd) {
		n.ch.CommitSpecWindow()
		n.applySpecJournals()
		n.mergeSpecPools()
		st := &n.pstats
		st.Committed++
		for s, f := range fired {
			st.ShardExecuted[s] += f
		}
		var slowest time.Duration
		for _, d := range n.drainDurs {
			if d > slowest {
				slowest = d
			}
		}
		for _, d := range n.drainDurs {
			st.WaitNS += int64(slowest - d)
		}
		n.specFails = 0
		return true
	}
	n.rollbackSpec(ck)
	return false
}

// rollbackSpec discards the conflicted window: the micro-checkpoint is
// restored into a fresh Network (the ordinary construction-and-restore
// path) whose state this Network adopts, the failed window's journals
// and lane pools are dropped, and the exponential backoff advances.
func (n *Network) rollbackSpec(ck *snapshot.Checkpoint) {
	n2, err := RestoreCheckpoint(ck, n.cfg)
	if err != nil {
		// The checkpoint was taken from this very state moments ago; a
		// failure to restore it is a bug, not a runtime condition.
		panic(fmt.Sprintf("manet: speculative rollback failed: %v", err))
	}
	n.adoptRestored(n2)
	for s := range n.specJournals {
		n.specJournals[s].ops = n.specJournals[s].ops[:0]
		fp := n.specFrames[s]
		for i := range fp {
			fp[i] = nil
		}
		n.specFrames[s] = fp[:0]
		sp := n.specSets[s]
		for i := range sp {
			sp[i] = nil
		}
		n.specSets[s] = sp[:0]
	}
	n.pstats.RolledBack++
	n.specFails++
	shift := n.specFails
	if shift > 6 {
		shift = 6
	}
	n.specSkip = 1<<shift - 1
}

// adoptRestored replaces this Network's simulation state with the
// restored network's, keeping the driver-side accounting (stats,
// backoff, scratch, checkpoint hooks) and re-pointing every back
// reference so the adopted hosts and originations mutate this Network.
func (n *Network) adoptRestored(n2 *Network) {
	old := n.pool
	pstats := n.pstats
	drainDurs, labels := n.drainDurs, n.shardLabels
	journals, frames, sets, extract := n.specJournals, n.specFrames, n.specSets, n.specExtract
	mergeIdx := n.specMergeIdx
	fails, skip := n.specFails, n.specSkip
	ckEvery, ckHook := n.CheckpointEvery, n.CheckpointHook
	// The pooled document (the very checkpoint being restored from, in
	// the rollback path) and the digest memo survive adoption by value:
	// the struct copy keeps the slice headers, so the next segment still
	// reuses their capacity. RestoreCheckpoint copied everything it
	// needed out of the document, so carrying it across is safe.
	ckDoc, digest := n.specCk, n.digestCache

	*n = *n2

	n.specCk, n.digestCache = ckDoc, digest
	n.pstats = pstats
	n.drainDurs, n.shardLabels = drainDurs, labels
	n.specJournals, n.specFrames, n.specSets, n.specExtract = journals, frames, sets, extract
	n.specMergeIdx = mergeIdx
	n.specFails, n.specSkip = fails, skip
	n.specAssigned = true
	n.CheckpointEvery, n.CheckpointHook = ckEvery, ckHook
	n.ran = true
	for _, h := range n.hosts {
		h.net = n
	}
	for i := range n.originations {
		n.originations[i].n = n
	}
	n.bindSpecLanes()
	if old != nil {
		old.Close() // the adopted network brought its own pool
	}
}

// applySpecJournals replays the lanes' record mutations against the
// shared arena in global time order (a k-way merge of the per-lane
// journals; cross-lane ties cannot occur in a validated window). The
// fold frontier therefore advances through exactly the states the
// sequential drain would have produced.
func (n *Network) applySpecJournals() {
	k := n.shards
	if cap(n.specMergeIdx) < k {
		n.specMergeIdx = make([]int, k)
	}
	idx := n.specMergeIdx[:k]
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		var bestAt sim.Time
		for s := 0; s < k; s++ {
			ops := n.specJournals[s].ops
			if idx[s] >= len(ops) {
				continue
			}
			if at := ops[idx[s]].at; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		op := n.specJournals[best].ops[idx[best]]
		idx[best]++
		n.applyRecOp(op)
	}
	for s := range n.specJournals {
		n.specJournals[s].ops = n.specJournals[s].ops[:0]
	}
}

// applyRecOp applies one journaled record mutation, mirroring the
// sequential bodies of the note*/open* entry points in network.go.
func (n *Network) applyRecOp(op recOp) {
	switch op.kind {
	case recOpReceived:
		rec := n.record(op.bid)
		rec.Received++
		rec.NoteActivity(op.at)
	case recOpTransmitted:
		n.record(op.bid).Transmitted++
	case recOpActivity:
		n.record(op.bid).NoteActivity(op.at)
	case recOpOpenInc:
		n.recOpen[op.bid.Seq-1-n.recBase]++
	case recOpOpenDec:
		idx := op.bid.Seq - 1 - n.recBase
		n.recOpen[idx]--
		if n.recOpen[idx] < 0 {
			panic(fmt.Sprintf("manet: open count for %v went negative", op.bid))
		}
		if n.fold && idx == 0 {
			n.foldFront()
		}
	default:
		panic(fmt.Sprintf("manet: unknown journaled record op %d", op.kind))
	}
}

// mergeSpecPools folds the lanes' frame and bitset pools back into the
// shared pools at commit, in band order. Lane pools start each window
// empty and allocate on miss, so merged pool depths may exceed the
// sequential oracle's — pools are unobservable caches, and their
// objects are fully overwritten on reuse.
func (n *Network) mergeSpecPools() {
	for s := range n.specFrames {
		fp := n.specFrames[s]
		n.framePool = append(n.framePool, fp...)
		for i := range fp {
			fp[i] = nil
		}
		n.specFrames[s] = fp[:0]
		sp := n.specSets[s]
		n.setPool = append(n.setPool, sp...)
		for i := range sp {
			sp[i] = nil
		}
		n.specSets[s] = sp[:0]
	}
}
