package mobility

import (
	"testing"

	"repro/internal/sim"
)

func TestGroupMembersStayNearCenter(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(9, 500)
	cfg := DefaultGroupConfig(40)
	rng := sim.NewRNG(1)
	g := NewGroup(sched, area, cfg, rng.Fork(0))
	members := make([]*Member, 8)
	for i := range members {
		members[i] = g.NewMember(rng.Fork(uint64(i + 1)))
	}

	// Over a long roam, every member stays within spread + jitter box of
	// the center (unless clamped at a map border).
	maxDist := cfg.Spread + 2*cfg.Spread // offset + recentered jitter extremes
	for step := 0; step < 2000; step++ {
		sched.RunUntil(sched.Now().Add(2 * sim.Second))
		c := g.center.Position()
		for i, m := range members {
			p := m.Position()
			if !area.Contains(p) {
				t.Fatalf("member %d left the map: %+v", i, p)
			}
			// Skip the cohesion check when the center is near a border
			// (members clamp there).
			if c.X < maxDist || c.Y < maxDist ||
				c.X > area.Width-maxDist || c.Y > area.Height-maxDist {
				continue
			}
			if d := p.Dist(c); d > maxDist+1 {
				t.Fatalf("member %d drifted %vm from center (max %v)", i, d, maxDist)
			}
		}
	}
}

func TestGroupMembersMoveTogether(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(9, 500)
	rng := sim.NewRNG(3)
	g := NewGroup(sched, area, DefaultGroupConfig(60), rng.Fork(0))
	a := g.NewMember(rng.Fork(1))
	b := g.NewMember(rng.Fork(2))

	// Pairwise distance is bounded by group geometry forever, even after
	// the group travels far.
	start := a.Position()
	travelled := false
	for step := 0; step < 4000; step++ {
		sched.RunUntil(sched.Now().Add(2 * sim.Second))
		if d := a.Position().Dist(b.Position()); d > 6*200+2 {
			t.Fatalf("group members separated by %vm", d)
		}
		if a.Position().Dist(start) > 1000 {
			travelled = true
		}
	}
	if !travelled {
		t.Error("group never travelled 1km in >2h at max 60km/h")
	}
}

func TestGroupMemberStop(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(5, 500)
	rng := sim.NewRNG(5)
	g := NewGroup(sched, area, DefaultGroupConfig(40), rng.Fork(0))
	m := g.NewMember(rng.Fork(1))
	sched.RunUntil(20 * sim.Time(sim.Second))
	m.Stop()
	at := m.Position()
	sched.RunUntil(500 * sim.Time(sim.Second))
	if got := m.Position(); got.Dist(at) > 1e-9 {
		t.Errorf("stopped member moved: %+v -> %+v", at, got)
	}
	if m.Speed() != 0 {
		t.Error("stopped member reports speed")
	}
	m.Stop() // idempotent
}

func TestGroupValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative spread did not panic")
		}
	}()
	cfg := DefaultGroupConfig(40)
	cfg.Spread = -1
	NewGroup(sim.NewScheduler(), NewSquareMap(3, 500), cfg, sim.NewRNG(1))
}
