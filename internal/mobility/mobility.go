// Package mobility implements the random-turn roaming model from the
// paper's simulation section: each host moves as a series of turns; in
// each turn the direction is uniform in [0, 360 degrees), the duration
// uniform in [1, 100] seconds, and the speed uniform in [0, max]. Hosts
// reflect off the map borders.
//
// Positions are computed lazily and exactly: a Roamer stores the segment
// start state and derives the position at any queried time in O(1) using
// the reflection-folding trick, so the simulator never has to tick
// per-host position updates.
package mobility

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/sim"
)

// Map is the rectangular simulation area. The paper uses square maps of
// k x k units where one unit is 500 m (the radio radius).
type Map struct {
	Width, Height float64 // meters
}

// NewSquareMap returns a units x units map with the given unit length in
// meters (the paper's unit is the 500 m transmission radius).
func NewSquareMap(units int, unitMeters float64) Map {
	side := float64(units) * unitMeters
	return Map{Width: side, Height: side}
}

// Contains reports whether p lies inside the map (inclusive borders).
func (m Map) Contains(p geom.Point) bool {
	return p.X >= 0 && p.X <= m.Width && p.Y >= 0 && p.Y <= m.Height
}

// Area returns the map area in square meters.
func (m Map) Area() float64 { return m.Width * m.Height }

// String describes the map in paper units if it is square.
func (m Map) String() string {
	return fmt.Sprintf("%.0fm x %.0fm", m.Width, m.Height)
}

// Config carries the turn-model parameters. The zero value is not
// usable; use DefaultConfig as a base.
type Config struct {
	MaxSpeedMPS float64      // maximum speed, meters/second
	MinTurn     sim.Duration // minimum turn duration
	MaxTurn     sim.Duration // maximum turn duration
}

// DefaultConfig returns the paper's turn parameters: turn intervals
// uniform in [1, 100] seconds and the given maximum speed in km/h.
func DefaultConfig(maxSpeedKMH float64) Config {
	return Config{
		MaxSpeedMPS: KMHToMPS(maxSpeedKMH),
		MinTurn:     1 * sim.Second,
		MaxTurn:     100 * sim.Second,
	}
}

// KMHToMPS converts km/h to m/s.
func KMHToMPS(kmh float64) float64 { return kmh / 3.6 }

// Roamer moves one host around a Map using the random-turn model. It is
// driven by the shared scheduler: it schedules its own next-turn events.
type Roamer struct {
	area  Map
	cfg   Config
	rng   *sim.RNG
	sched *sim.Scheduler

	// Current segment: position at segStart moving with (vx, vy); the
	// actual position reflects off the borders (handled by folding).
	segStart sim.Time
	origin   geom.Point
	vx, vy   float64

	// Previous segment, kept so a position query that logically precedes
	// the latest turn (shared clock still behind turnAt) resolves on the
	// segment the sequential oracle would use. The parallel engine fires
	// a turn early — inside a barrier window, ahead of the shared clock —
	// and clamps the window to MinTurn, so at most one turn fires per
	// window and one segment of history is always enough.
	prevStart      sim.Time
	prevOrigin     geom.Point
	prevVx, prevVy float64
	turnAt         sim.Time
	hasPrev        bool

	turnEvent *sim.Event
	stopped   bool

	// shard routes turn events to a shard calendar wheel when >= 0; the
	// sequential engine leaves it at -1 and schedules on the central
	// ladder. Either way events fire in identical (time, seq) order.
	shard int

	// firstTurn holds the first turn interval between InitRoamer (which
	// performs every random draw) and Start (which schedules it).
	firstTurn sim.Duration
}

// NewRoamer places a host uniformly at random on the map and starts its
// first movement turn. The roamer keeps scheduling turns until Stop.
func NewRoamer(sched *sim.Scheduler, area Map, cfg Config, rng *sim.RNG) *Roamer {
	r := &Roamer{
		area:  area,
		cfg:   cfg,
		rng:   rng,
		sched: sched,
		shard: -1,
		origin: geom.Point{
			X: rng.UniformFloat(0, area.Width),
			Y: rng.UniformFloat(0, area.Height),
		},
		segStart: sched.Now(),
	}
	r.turn()
	return r
}

// InitRoamer initializes a slab-allocated Roamer in place, performing
// exactly the random draws NewRoamer performs (placement, then first
// segment speed/direction/interval — same stream, same order) but
// deferring the first turn's scheduling to Start. The split lets the
// sharded engine run the draw phase in parallel across hosts (each host
// owns its forked rng) and then schedule first turns sequentially in
// host order, preserving the oracle's event sequence numbers. Turn
// events go to the central ladder unless SetShard routes them to a
// shard calendar wheel before Start.
func InitRoamer(r *Roamer, sched *sim.Scheduler, area Map, cfg Config, rng *sim.RNG) {
	*r = Roamer{
		area:  area,
		cfg:   cfg,
		rng:   rng,
		sched: sched,
		shard: -1,
		origin: geom.Point{
			X: rng.UniformFloat(0, area.Width),
			Y: rng.UniformFloat(0, area.Height),
		},
		segStart: sched.Now(),
	}
	speed := rng.UniformFloat(0, cfg.MaxSpeedMPS)
	dir := rng.Angle()
	r.vx = speed * cos(dir)
	r.vy = speed * sin(dir)
	r.firstTurn = rng.UniformDuration(cfg.MinTurn, cfg.MaxTurn)
}

// SetShard routes future turn events to the given shard's calendar
// wheel (< 0 = central ladder). Call between InitRoamer and Start: the
// sharded engine derives the shard from the host's initial map band,
// which is only known after InitRoamer has drawn the placement.
func (r *Roamer) SetShard(shard int) { r.shard = shard }

// Start schedules the first turn of an InitRoamer-initialized roamer.
// It must be called exactly once, before the clock advances past the
// initialization time.
func (r *Roamer) Start() {
	r.scheduleTurn(r.firstTurn)
}

// NewStaticRoamer places a host at a fixed point with no movement. It is
// used by tests and by density-only experiments.
func NewStaticRoamer(sched *sim.Scheduler, area Map, at geom.Point) *Roamer {
	r := &Roamer{}
	InitStaticRoamer(r, sched, area, at)
	return r
}

// InitStaticRoamer initializes a slab-allocated static roamer in place.
func InitStaticRoamer(r *Roamer, sched *sim.Scheduler, area Map, at geom.Point) {
	*r = Roamer{
		area:     area,
		sched:    sched,
		shard:    -1,
		origin:   at,
		segStart: sched.Now(),
		stopped:  true,
	}
}

// turn starts a new movement segment and schedules the following turn.
// RunEvent fires a scheduled turn. Scheduling the roamer itself as a
// sim.Runner keeps the recurring timer allocation-free: binding r.turn
// as a func() would heap-allocate a method value per arm.
func (r *Roamer) RunEvent() { r.turn() }

func (r *Roamer) turn() {
	// NowFor reads the lane clock when this turn fires inside a parallel
	// drain (the shared clock is still parked at the window start there),
	// and the shared clock otherwise — in both cases the event's own
	// timestamp, exactly what the oracle's Now() returns.
	now := r.sched.NowFor(r.shard)
	r.prevStart, r.prevOrigin = r.segStart, r.origin
	r.prevVx, r.prevVy = r.vx, r.vy
	r.turnAt, r.hasPrev = now, true
	r.origin = r.rawPositionAt(now)
	r.segStart = now

	speed := r.rng.UniformFloat(0, r.cfg.MaxSpeedMPS)
	dir := r.rng.Angle()
	r.vx = speed * cos(dir)
	r.vy = speed * sin(dir)

	interval := r.rng.UniformDuration(r.cfg.MinTurn, r.cfg.MaxTurn)
	r.scheduleTurn(interval)
}

// scheduleTurn arms the next turn event on the roamer's shard wheel, or
// on the central ladder when the roamer is unsharded.
func (r *Roamer) scheduleTurn(interval sim.Duration) {
	if r.shard >= 0 {
		r.turnEvent = r.sched.AfterShardRunner(r.shard, interval, r)
	} else {
		r.turnEvent = r.sched.AfterRunner(interval, r)
	}
}

// Stop cancels future turns; the host freezes at its current position.
func (r *Roamer) Stop() {
	if r.stopped {
		return
	}
	r.origin = r.Position()
	r.segStart = r.sched.Now()
	r.vx, r.vy = 0, 0
	r.stopped = true
	if r.turnEvent != nil {
		r.sched.Cancel(r.turnEvent)
		r.turnEvent = nil
	}
}

// rawPositionAt computes the reflected position at time t >= segStart.
func (r *Roamer) rawPositionAt(t sim.Time) geom.Point {
	dt := t.Sub(r.segStart).Seconds()
	return geom.Point{
		X: geom.FoldIntoRange(r.origin.X+r.vx*dt, r.area.Width),
		Y: geom.FoldIntoRange(r.origin.Y+r.vy*dt, r.area.Height),
	}
}

// Position returns the host position at the current simulated time.
func (r *Roamer) Position() geom.Point {
	return r.PositionAt(r.sched.Now())
}

// PositionAt returns the position at an arbitrary time within the
// current segment. Querying a past time before the segment start
// extrapolates backwards along the segment, which is adequate for the
// sub-millisecond lookbacks the PHY performs. When the latest turn fired
// ahead of the shared clock (parallel drain) the query resolves on the
// pre-turn segment, reproducing the oracle's answer — including its
// backward extrapolation — until the clock catches up to the turn.
func (r *Roamer) PositionAt(t sim.Time) geom.Point {
	if r.hasPrev && r.sched.Now() < r.turnAt {
		dt := t.Sub(r.prevStart).Seconds()
		return geom.Point{
			X: geom.FoldIntoRange(r.prevOrigin.X+r.prevVx*dt, r.area.Width),
			Y: geom.FoldIntoRange(r.prevOrigin.Y+r.prevVy*dt, r.area.Height),
		}
	}
	return r.rawPositionAt(t)
}

// Speed returns the current speed in m/s, on the same segment selection
// as PositionAt.
func (r *Roamer) Speed() float64 {
	if r.hasPrev && r.sched.Now() < r.turnAt {
		return hypot(r.prevVx, r.prevVy)
	}
	return hypot(r.vx, r.vy)
}
