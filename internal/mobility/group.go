package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/sim"
)

// GroupConfig parameterizes reference-point group mobility (RPGM): a
// logical group center roams the map with the random-turn model, and
// each member jitters around its own reference point at a bounded offset
// from the center. Search parties, convoys, and squads — the scenarios
// the paper's introduction names — move this way.
type GroupConfig struct {
	// Center is the movement of the group's logical center.
	Center Config
	// Spread is the maximum distance of a member's reference point from
	// the center, meters.
	Spread float64
	// JitterSpeedMPS bounds the member's own movement around its
	// reference point.
	JitterSpeedMPS float64
}

// DefaultGroupConfig returns a group that roams at the given speed with
// members within 200 m of the center, jittering at walking pace.
func DefaultGroupConfig(maxSpeedKMH float64) GroupConfig {
	return GroupConfig{
		Center:         DefaultConfig(maxSpeedKMH),
		Spread:         200,
		JitterSpeedMPS: 1.5,
	}
}

// Group is the shared center of one mobility group. Create it once, then
// attach members.
type Group struct {
	center *Roamer
	cfg    GroupConfig
	area   Map
	sched  *sim.Scheduler
}

// NewGroup creates a group whose center starts at a random position.
func NewGroup(sched *sim.Scheduler, area Map, cfg GroupConfig, rng *sim.RNG) *Group {
	if cfg.Spread < 0 {
		panic("mobility: negative group spread")
	}
	return &Group{
		center: NewRoamer(sched, area, cfg.Center, rng),
		cfg:    cfg,
		area:   area,
		sched:  sched,
	}
}

// Member is one host following a group: its position is the group
// center plus its reference offset plus slow personal jitter, clamped to
// the map.
type Member struct {
	group   *Group
	offset  geom.Point // reference point relative to the center
	jitter  *Roamer    // personal wander around the reference point
	stopped bool
	frozen  geom.Point
}

var _ Mover = (*Member)(nil)

// NewMember attaches a member at a random reference offset.
func (g *Group) NewMember(rng *sim.RNG) *Member {
	ang := rng.Angle()
	rad := g.cfg.Spread * math.Sqrt(rng.Float64())
	jitterArea := Map{Width: 2 * g.cfg.Spread, Height: 2 * g.cfg.Spread}
	jcfg := Config{
		MaxSpeedMPS: g.cfg.JitterSpeedMPS,
		MinTurn:     1 * sim.Second,
		MaxTurn:     30 * sim.Second,
	}
	return &Member{
		group:  g,
		offset: geom.Point{X: rad * math.Cos(ang), Y: rad * math.Sin(ang)},
		jitter: NewRoamer(g.sched, jitterArea, jcfg, rng),
	}
}

// PositionAt implements Mover.
func (m *Member) PositionAt(t sim.Time) geom.Point {
	if m.stopped {
		return m.frozen
	}
	c := m.group.center.PositionAt(t)
	j := m.jitter.PositionAt(t)
	// The jitter roamer wanders a [0,2s]x[0,2s] box; recenter it to
	// [-s,s] around the reference point.
	p := geom.Point{
		X: c.X + m.offset.X + (j.X - m.group.cfg.Spread),
		Y: c.Y + m.offset.Y + (j.Y - m.group.cfg.Spread),
	}
	return geom.Point{
		X: geom.Clamp(p.X, 0, m.group.area.Width),
		Y: geom.Clamp(p.Y, 0, m.group.area.Height),
	}
}

// Position implements Mover.
func (m *Member) Position() geom.Point { return m.PositionAt(m.group.sched.Now()) }

// Speed implements Mover (approximated as center speed plus jitter).
func (m *Member) Speed() float64 {
	if m.stopped {
		return 0
	}
	return m.group.center.Speed() + m.jitter.Speed()
}

// Stop implements Mover: the member freezes in place (the group center
// keeps moving for its remaining members).
func (m *Member) Stop() {
	if m.stopped {
		return
	}
	m.frozen = m.Position()
	m.stopped = true
	m.jitter.Stop()
}
