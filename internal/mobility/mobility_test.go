package mobility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

func TestRoamerStaysInMap(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(3, 500)
	rng := sim.NewRNG(1)
	roamers := make([]*Roamer, 20)
	for i := range roamers {
		roamers[i] = NewRoamer(sched, area, DefaultConfig(80), rng.Fork(uint64(i)))
	}
	// Sample positions every simulated second for an hour.
	for step := 0; step < 3600; step++ {
		sched.RunUntil(sim.Time(step) * sim.Time(sim.Second))
		for i, r := range roamers {
			p := r.Position()
			if !area.Contains(p) {
				t.Fatalf("roamer %d left the map at t=%ds: %+v", i, step, p)
			}
		}
	}
}

func TestRoamerActuallyMoves(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(5, 500)
	r := NewRoamer(sched, area, DefaultConfig(50), sim.NewRNG(7))
	start := r.Position()
	moved := false
	for step := 1; step <= 600; step++ {
		sched.RunUntil(sim.Time(step) * sim.Time(sim.Second))
		if r.Position().Dist(start) > 10 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("roamer did not move more than 10 m in 10 minutes at max 50 km/h")
	}
}

func TestRoamerSpeedBounded(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(5, 500)
	cfg := DefaultConfig(60)
	rng := sim.NewRNG(3)
	for i := 0; i < 10; i++ {
		r := NewRoamer(sched, area, cfg, rng.Fork(uint64(i)))
		for s := 0; s < 50; s++ {
			sched.RunUntil(sched.Now().Add(20 * sim.Second))
			if sp := r.Speed(); sp < 0 || sp > cfg.MaxSpeedMPS+1e-9 {
				t.Fatalf("speed %v outside [0, %v]", sp, cfg.MaxSpeedMPS)
			}
		}
	}
}

// TestRoamerDisplacementConsistentWithSpeed checks positions move no
// faster than the configured max between closely spaced samples.
func TestRoamerDisplacementConsistentWithSpeed(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(7, 500)
	cfg := DefaultConfig(100)
	r := NewRoamer(sched, area, cfg, sim.NewRNG(11))
	prev := r.Position()
	const dt = 100 * sim.Millisecond
	for step := 0; step < 5000; step++ {
		sched.RunUntil(sched.Now().Add(dt))
		cur := r.Position()
		if d := cur.Dist(prev); d > cfg.MaxSpeedMPS*dt.Seconds()+1e-6 {
			t.Fatalf("displacement %vm in %v exceeds max speed", d, dt)
		}
		prev = cur
	}
}

func TestStaticRoamer(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(1, 500)
	at := geom.Point{X: 100, Y: 200}
	r := NewStaticRoamer(sched, area, at)
	sched.RunUntil(1000 * sim.Time(sim.Second))
	if got := r.Position(); got != at {
		t.Errorf("static roamer moved to %+v", got)
	}
	if r.Speed() != 0 {
		t.Errorf("static roamer has speed %v", r.Speed())
	}
}

func TestRoamerStop(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(3, 500)
	r := NewRoamer(sched, area, DefaultConfig(80), sim.NewRNG(5))
	sched.RunUntil(10 * sim.Time(sim.Second))
	r.Stop()
	frozen := r.Position()
	sched.RunUntil(500 * sim.Time(sim.Second))
	if got := r.Position(); got.Dist(frozen) > 1e-9 {
		t.Errorf("stopped roamer moved from %+v to %+v", frozen, got)
	}
	r.Stop() // second stop must be a no-op
}

func TestRoamerDeterministic(t *testing.T) {
	run := func() []geom.Point {
		sched := sim.NewScheduler()
		area := NewSquareMap(5, 500)
		r := NewRoamer(sched, area, DefaultConfig(40), sim.NewRNG(99))
		var pts []geom.Point
		for s := 0; s < 100; s++ {
			sched.RunUntil(sim.Time(s) * 10 * sim.Time(sim.Second))
			pts = append(pts, r.Position())
		}
		return pts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mobility not deterministic at sample %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRoamerCoversMap(t *testing.T) {
	// Over a long run, a single roamer should visit all four quadrants of
	// the map; this guards against folding bugs that trap hosts near a
	// border.
	sched := sim.NewScheduler()
	area := NewSquareMap(3, 500)
	r := NewRoamer(sched, area, DefaultConfig(80), sim.NewRNG(13))
	var quadrants [4]bool
	for s := 0; s < 20000; s++ {
		sched.RunUntil(sched.Now().Add(5 * sim.Second))
		p := r.Position()
		q := 0
		if p.X > area.Width/2 {
			q |= 1
		}
		if p.Y > area.Height/2 {
			q |= 2
		}
		quadrants[q] = true
	}
	for q, visited := range quadrants {
		if !visited {
			t.Errorf("quadrant %d never visited in a long run", q)
		}
	}
}

func TestMapHelpers(t *testing.T) {
	m := NewSquareMap(3, 500)
	if m.Width != 1500 || m.Height != 1500 {
		t.Fatalf("map = %+v", m)
	}
	if m.Area() != 1500*1500 {
		t.Errorf("area = %v", m.Area())
	}
	if !m.Contains(geom.Point{X: 0, Y: 1500}) {
		t.Error("border point not contained")
	}
	if m.Contains(geom.Point{X: -1, Y: 0}) {
		t.Error("outside point contained")
	}
	if m.String() == "" {
		t.Error("empty map string")
	}
}

func TestKMHToMPS(t *testing.T) {
	if got := KMHToMPS(36); math.Abs(got-10) > 1e-12 {
		t.Errorf("36 km/h = %v m/s, want 10", got)
	}
}

// TestRoamerParallelDrainMatchesSequential pins the one-segment history
// that licenses firing turns ahead of the shared clock: a roamer whose
// turns drain inside parallel barrier windows must answer every
// position, lookback, and speed query with exactly the values of an
// identical roamer stepped sequentially — while the shared clock is
// behind a drained turn, queries resolve on the pre-turn segment.
func TestRoamerParallelDrainMatchesSequential(t *testing.T) {
	area := NewSquareMap(4, 500)
	cfg := DefaultConfig(300)

	mk := func(sharded bool) (*sim.Scheduler, *Roamer) {
		s := sim.NewScheduler()
		s.ConfigureShards(1, sim.Second)
		r := &Roamer{}
		InitRoamer(r, s, area, cfg, sim.NewRNG(42))
		if sharded {
			r.SetShard(0)
		}
		r.Start()
		return s, r
	}
	os, or := mk(false) // oracle: turns on the central ladder
	ps, pr := mk(true)  // turns drained in parallel windows

	window := sim.Second / 4 // well under MinTurn
	for step := 1; step <= 1200; step++ {
		deadline := sim.Time(0).Add(sim.Duration(step) * window)
		os.RunUntil(deadline)
		ps.BeginParallelDrain()
		ps.DrainShardUntil(0, deadline)
		ps.EndParallelDrain()
		ps.RunUntil(deadline)
		if op, pp := or.Position(), pr.Position(); op != pp {
			t.Fatalf("step %d: position %v parallel vs %v sequential", step, pp, op)
		}
		// The PHY's sub-millisecond lookback must reproduce the oracle
		// too, including its backward extrapolation along the segment
		// the oracle considers current.
		back := deadline.Add(-300 * sim.Microsecond)
		if op, pp := or.PositionAt(back), pr.PositionAt(back); op != pp {
			t.Fatalf("step %d: lookback %v parallel vs %v sequential", step, pp, op)
		}
		if ov, pv := or.Speed(), pr.Speed(); ov != pv {
			t.Fatalf("step %d: speed %v parallel vs %v sequential", step, pv, ov)
		}
	}
	if os.Executed() != ps.Executed() {
		t.Fatalf("executed %d parallel vs %d sequential", ps.Executed(), os.Executed())
	}
	if os.Executed() == 0 {
		t.Fatal("no turns fired over 300 simulated seconds")
	}
}
