package mobility

import (
	"testing"

	"repro/internal/sim"
)

func TestWaypointStaysInMap(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(5, 500)
	rng := sim.NewRNG(1)
	movers := make([]*Waypoint, 10)
	for i := range movers {
		movers[i] = NewWaypoint(sched, area, DefaultWaypointConfig(60), rng.Fork(uint64(i)))
	}
	for step := 0; step < 2000; step++ {
		sched.RunUntil(sched.Now().Add(sim.Second))
		for i, w := range movers {
			if p := w.Position(); !area.Contains(p) {
				t.Fatalf("waypoint mover %d left map: %+v", i, p)
			}
		}
	}
}

func TestWaypointReachesDestinations(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(3, 500)
	w := NewWaypoint(sched, area, DefaultWaypointConfig(60), sim.NewRNG(3))
	start := w.Position()
	moved := false
	for step := 0; step < 600 && !moved; step++ {
		sched.RunUntil(sched.Now().Add(sim.Second))
		if w.Position().Dist(start) > 50 {
			moved = true
		}
	}
	if !moved {
		t.Error("waypoint mover never moved 50 m in 10 minutes")
	}
}

func TestWaypointSpeedBounds(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(5, 500)
	cfg := DefaultWaypointConfig(72) // 20 m/s max, 2 m/s min
	w := NewWaypoint(sched, area, cfg, sim.NewRNG(7))
	sawPause, sawMove := false, false
	for step := 0; step < 5000; step++ {
		sched.RunUntil(sched.Now().Add(200 * sim.Millisecond))
		sp := w.Speed()
		if sp == 0 {
			sawPause = true
			continue
		}
		sawMove = true
		if sp < cfg.MinSpeedMPS-1e-9 || sp > cfg.MaxSpeedMPS+1e-9 {
			t.Fatalf("speed %v outside [%v, %v]", sp, cfg.MinSpeedMPS, cfg.MaxSpeedMPS)
		}
	}
	if !sawMove {
		t.Error("never observed movement")
	}
	if !sawPause {
		t.Error("never observed a pause (pause time 1s)")
	}
}

func TestWaypointDisplacementBounded(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(7, 500)
	cfg := DefaultWaypointConfig(100)
	w := NewWaypoint(sched, area, cfg, sim.NewRNG(11))
	prev := w.Position()
	const dt = 100 * sim.Millisecond
	for step := 0; step < 3000; step++ {
		sched.RunUntil(sched.Now().Add(dt))
		cur := w.Position()
		if d := cur.Dist(prev); d > cfg.MaxSpeedMPS*dt.Seconds()+1e-6 {
			t.Fatalf("teleport: %v m in %v", d, dt)
		}
		prev = cur
	}
}

func TestWaypointStop(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(3, 500)
	w := NewWaypoint(sched, area, DefaultWaypointConfig(60), sim.NewRNG(5))
	sched.RunUntil(10 * sim.Time(sim.Second))
	w.Stop()
	frozen := w.Position()
	sched.RunUntil(200 * sim.Time(sim.Second))
	if got := w.Position(); got.Dist(frozen) > 1e-9 {
		t.Errorf("stopped mover drifted from %+v to %+v", frozen, got)
	}
	w.Stop() // idempotent
	if w.Speed() != 0 {
		t.Error("stopped mover reports nonzero speed")
	}
}

func TestWaypointDeterministic(t *testing.T) {
	run := func() []float64 {
		sched := sim.NewScheduler()
		area := NewSquareMap(5, 500)
		w := NewWaypoint(sched, area, DefaultWaypointConfig(40), sim.NewRNG(99))
		var xs []float64
		for s := 0; s < 50; s++ {
			sched.RunUntil(sched.Now().Add(10 * sim.Second))
			xs = append(xs, w.Position().X)
		}
		return xs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("waypoint model not deterministic at sample %d", i)
		}
	}
}

func TestWaypointValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero max speed did not panic")
		}
	}()
	NewWaypoint(sim.NewScheduler(), NewSquareMap(1, 500), WaypointConfig{}, sim.NewRNG(1))
}

func TestWaypointZeroPauseMovesContinuously(t *testing.T) {
	sched := sim.NewScheduler()
	area := NewSquareMap(3, 500)
	cfg := WaypointConfig{MinSpeedMPS: 5, MaxSpeedMPS: 10, PauseTime: 0}
	w := NewWaypoint(sched, area, cfg, sim.NewRNG(13))
	pauses := 0
	for step := 0; step < 2000; step++ {
		sched.RunUntil(sched.Now().Add(sim.Second))
		if w.Speed() == 0 {
			pauses++
		}
	}
	if pauses > 0 {
		t.Errorf("zero-pause config observed %d paused samples", pauses)
	}
}
