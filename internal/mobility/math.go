package mobility

import "math"

// Thin wrappers keep the call sites terse without a dot-import.

func cos(x float64) float64      { return math.Cos(x) }
func sin(x float64) float64      { return math.Sin(x) }
func hypot(x, y float64) float64 { return math.Hypot(x, y) }
