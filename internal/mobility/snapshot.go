package mobility

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/sim"
)

// RoamerState is a Roamer's checkpointed dynamic state: the current and
// previous movement segments (the previous segment is what keeps
// parallel-drain position queries oracle-exact), the RNG stream, and the
// (at, seq) key of the armed turn event. Construction state — map, turn
// config, scheduler, shard routing — is not here; a restored Roamer is
// first rebuilt by the same construction path and then overwritten.
type RoamerState struct {
	SegStart sim.Time
	Origin   geom.Point
	VX, VY   float64

	PrevStart      sim.Time
	PrevOrigin     geom.Point
	PrevVX, PrevVY float64
	TurnAt         sim.Time
	HasPrev        bool

	Stopped bool
	RNG     [4]uint64

	// Armed turn event, absent for stopped (static) roamers.
	HasTurn bool
	TurnEventAt  sim.Time
	TurnEventSeq uint64
}

// Snapshot captures the roamer's dynamic state at a barrier. The turn
// event handle is valid whenever the roamer is running: firing a turn
// re-arms the next one within the same event.
func (r *Roamer) Snapshot() RoamerState {
	st := RoamerState{
		SegStart:   r.segStart,
		Origin:     r.origin,
		VX:         r.vx,
		VY:         r.vy,
		PrevStart:  r.prevStart,
		PrevOrigin: r.prevOrigin,
		PrevVX:     r.prevVx,
		PrevVY:     r.prevVy,
		TurnAt:     r.turnAt,
		HasPrev:    r.hasPrev,
		Stopped:    r.stopped,
	}
	if r.rng != nil {
		st.RNG = r.rng.State()
	}
	if !r.stopped && r.turnEvent != nil {
		st.HasTurn = true
		st.TurnEventAt = r.turnEvent.At()
		st.TurnEventSeq = r.turnEvent.Seq()
	}
	return st
}

// Restore overwrites a freshly constructed roamer's dynamic state with a
// checkpointed one and re-arms its turn event at the exact checkpointed
// (at, seq) key. The roamer must already be attached to the scheduler
// the events are being restored into (the construction path guarantees
// the same shard routing as the original).
func (r *Roamer) Restore(st RoamerState) error {
	if r.turnEvent != nil {
		r.sched.Cancel(r.turnEvent)
		r.turnEvent = nil
	}
	r.segStart = st.SegStart
	r.origin = st.Origin
	r.vx, r.vy = st.VX, st.VY
	r.prevStart = st.PrevStart
	r.prevOrigin = st.PrevOrigin
	r.prevVx, r.prevVy = st.PrevVX, st.PrevVY
	r.turnAt = st.TurnAt
	r.hasPrev = st.HasPrev
	r.stopped = st.Stopped
	if r.rng != nil {
		r.rng.SetState(st.RNG)
	}
	if st.HasTurn {
		if r.stopped {
			return fmt.Errorf("mobility: restore state arms a turn on a stopped roamer")
		}
		ev, err := r.sched.RestoreRunner(r.shard, st.TurnEventAt, st.TurnEventSeq, r)
		if err != nil {
			return fmt.Errorf("mobility: restore turn event: %w", err)
		}
		r.turnEvent = ev
	}
	return nil
}
