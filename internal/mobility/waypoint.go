package mobility

import (
	"repro/internal/geom"
	"repro/internal/sim"
)

// Mover is the interface the network layer needs from a mobility model:
// a queryable position and a way to freeze the host.
type Mover interface {
	// Position returns the position at the current simulated time.
	Position() geom.Point
	// PositionAt returns the position at time t within (or near) the
	// current movement segment.
	PositionAt(t sim.Time) geom.Point
	// Speed returns the current speed in m/s.
	Speed() float64
	// Stop freezes the host at its current position.
	Stop()
}

var (
	_ Mover = (*Roamer)(nil)
	_ Mover = (*Waypoint)(nil)
)

// WaypointConfig parameterizes the random-waypoint model: the host picks
// a uniform destination in the map, travels there at a uniform speed in
// [MinSpeedMPS, MaxSpeedMPS], pauses for PauseTime, and repeats.
// MinSpeedMPS should be kept above zero to avoid the model's well-known
// speed-decay pathology (hosts stuck crawling forever).
type WaypointConfig struct {
	MinSpeedMPS float64
	MaxSpeedMPS float64
	PauseTime   sim.Duration
}

// DefaultWaypointConfig mirrors common MANET evaluation settings for a
// given top speed in km/h: minimum speed 10% of max, 1 s pause.
func DefaultWaypointConfig(maxSpeedKMH float64) WaypointConfig {
	max := KMHToMPS(maxSpeedKMH)
	return WaypointConfig{
		MinSpeedMPS: max / 10,
		MaxSpeedMPS: max,
		PauseTime:   1 * sim.Second,
	}
}

// Waypoint moves one host using the random-waypoint model. Like Roamer,
// positions are computed lazily in O(1); the only scheduled events are
// leg completions.
type Waypoint struct {
	area  Map
	cfg   WaypointConfig
	rng   *sim.RNG
	sched *sim.Scheduler

	segStart sim.Time
	segEnd   sim.Time // when the current leg (or pause) finishes
	from, to geom.Point
	speed    float64 // 0 while pausing
	next     *sim.Event
	stopped  bool
}

// NewWaypoint places a host uniformly at random and starts its first
// leg.
func NewWaypoint(sched *sim.Scheduler, area Map, cfg WaypointConfig, rng *sim.RNG) *Waypoint {
	if cfg.MaxSpeedMPS <= 0 {
		panic("mobility: waypoint needs a positive max speed")
	}
	if cfg.MinSpeedMPS <= 0 {
		cfg.MinSpeedMPS = cfg.MaxSpeedMPS / 10
	}
	w := &Waypoint{
		area:  area,
		cfg:   cfg,
		rng:   rng,
		sched: sched,
	}
	w.from = geom.Point{
		X: rng.UniformFloat(0, area.Width),
		Y: rng.UniformFloat(0, area.Height),
	}
	w.to = w.from
	w.segStart = sched.Now()
	w.segEnd = sched.Now()
	w.startLeg()
	return w
}

// startLeg picks the next destination and speed, then schedules arrival.
func (w *Waypoint) startLeg() {
	now := w.sched.Now()
	w.from = w.PositionAt(now)
	w.segStart = now
	w.to = geom.Point{
		X: w.rng.UniformFloat(0, w.area.Width),
		Y: w.rng.UniformFloat(0, w.area.Height),
	}
	w.speed = w.rng.UniformFloat(w.cfg.MinSpeedMPS, w.cfg.MaxSpeedMPS)
	dist := w.from.Dist(w.to)
	travel := sim.DurationFromSeconds(dist / w.speed)
	if travel < 1 {
		travel = 1
	}
	w.segEnd = now.Add(travel)
	w.next = w.sched.Schedule(w.segEnd, w.pause)
}

// pause holds the host at the destination before the next leg.
func (w *Waypoint) pause() {
	now := w.sched.Now()
	w.from = w.to
	w.segStart = now
	w.speed = 0
	w.segEnd = now.Add(w.cfg.PauseTime)
	if w.cfg.PauseTime <= 0 {
		w.startLeg()
		return
	}
	w.next = w.sched.Schedule(w.segEnd, w.startLeg)
}

// PositionAt implements Mover by linear interpolation along the leg.
func (w *Waypoint) PositionAt(t sim.Time) geom.Point {
	if w.speed == 0 || t <= w.segStart {
		return w.from
	}
	if t >= w.segEnd {
		return w.to
	}
	frac := float64(t.Sub(w.segStart)) / float64(w.segEnd.Sub(w.segStart))
	return geom.Point{
		X: w.from.X + (w.to.X-w.from.X)*frac,
		Y: w.from.Y + (w.to.Y-w.from.Y)*frac,
	}
}

// Position implements Mover.
func (w *Waypoint) Position() geom.Point { return w.PositionAt(w.sched.Now()) }

// Speed implements Mover.
func (w *Waypoint) Speed() float64 { return w.speed }

// Stop implements Mover.
func (w *Waypoint) Stop() {
	if w.stopped {
		return
	}
	w.from = w.Position()
	w.to = w.from
	w.segStart = w.sched.Now()
	w.segEnd = w.segStart
	w.speed = 0
	w.stopped = true
	if w.next != nil {
		w.sched.Cancel(w.next)
		w.next = nil
	}
}
