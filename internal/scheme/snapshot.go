package scheme

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/packet"
)

// JudgeKind discriminates the per-packet decision state machines in a
// checkpoint. The adaptive schemes reuse the fixed schemes' judges (only
// the threshold computation differs, and it is resolved at NewJudge
// time), so one kind covers both; the two neighbor-coverage layouts
// (pooled bitset and map) carry identical decision state and restore
// into whichever layout the host supports.
type JudgeKind uint8

// Judge kinds.
const (
	JudgeFlooding JudgeKind = iota
	JudgeCounter
	JudgeDistance
	JudgeLocation
	JudgeProbabilistic
	JudgeCoverage
)

// JudgeState is a Judge's checkpointed decision state. Only the fields
// of the discriminated kind are meaningful.
type JudgeState struct {
	Kind JudgeKind

	// Counter-based: copies heard so far and the (possibly adaptive)
	// cancellation threshold.
	C         int
	Threshold int

	// Distance-based: own position, distance threshold, nearest sender.
	Own        geom.Point
	DThreshold float64
	MinDist    float64

	// Location-based: own position, radio radius, coverage threshold,
	// and the advertised sender positions heard so far (in order).
	Radius     float64
	AThreshold float64
	Senders    []geom.Point

	// Probabilistic: the rebroadcast draw made on first reception.
	Rebroadcast bool

	// Neighbor coverage: the not-yet-covered neighbor set, ascending.
	Pending []packet.NodeID
}

// SnapshotJudge captures a judge's decision state. It covers every judge
// the package's schemes build; an unknown judge implementation aborts
// the checkpoint.
func SnapshotJudge(j Judge) (JudgeState, error) {
	switch v := j.(type) {
	case floodingJudge:
		return JudgeState{Kind: JudgeFlooding}, nil
	case *counterJudge:
		return JudgeState{Kind: JudgeCounter, C: v.c, Threshold: v.threshold}, nil
	case *distanceJudge:
		return JudgeState{Kind: JudgeDistance, Own: v.own, DThreshold: v.threshold, MinDist: v.minDist}, nil
	case *locationJudge:
		return JudgeState{
			Kind:       JudgeLocation,
			Own:        v.own,
			Radius:     v.radius,
			AThreshold: v.threshold,
			Senders:    v.senders,
		}, nil
	case probabilisticJudge:
		return JudgeState{Kind: JudgeProbabilistic, Rebroadcast: v.rebroadcast}, nil
	case *denseCoverageJudge:
		return JudgeState{Kind: JudgeCoverage, Pending: v.pending.AppendIDs(nil)}, nil
	case *neighborCoverageJudge:
		st := JudgeState{Kind: JudgeCoverage, Pending: make([]packet.NodeID, 0, len(v.pending))}
		for id := range v.pending {
			st.Pending = append(st.Pending, id)
		}
		sort.Slice(st.Pending, func(i, k int) bool { return st.Pending[i] < st.Pending[k] })
		return st, nil
	default:
		return JudgeState{}, fmt.Errorf("scheme: checkpoint of unknown judge type %T", j)
	}
}

// RestoreJudge rebuilds a judge from its checkpointed decision state at
// the given host. Coverage judges restore into the pooled-bitset layout
// when the host provides one (the same selection NewJudge makes), so a
// restored run keeps the original's pool behavior.
func RestoreJudge(st JudgeState, host HostView) (Judge, error) {
	switch st.Kind {
	case JudgeFlooding:
		return floodingJudge{}, nil
	case JudgeCounter:
		return &counterJudge{c: st.C, threshold: st.Threshold}, nil
	case JudgeDistance:
		return &distanceJudge{own: st.Own, threshold: st.DThreshold, minDist: st.MinDist}, nil
	case JudgeLocation:
		j := &locationJudge{own: st.Own, radius: st.Radius, threshold: st.AThreshold}
		j.senders = append(j.senders, st.Senders...)
		return j, nil
	case JudgeProbabilistic:
		return probabilisticJudge{rebroadcast: st.Rebroadcast}, nil
	case JudgeCoverage:
		if src, ok := host.(NodeSetSource); ok && src.NeighborNodeSet() != nil {
			j := &denseCoverageJudge{host: host, src: src, pending: src.AcquireNodeSet()}
			for _, id := range st.Pending {
				j.pending.Add(id)
			}
			return j, nil
		}
		j := &neighborCoverageJudge{host: host, pending: make(map[packet.NodeID]bool, len(st.Pending))}
		for _, id := range st.Pending {
			j.pending[id] = true
		}
		return j, nil
	default:
		return nil, fmt.Errorf("scheme: restore of unknown judge kind %d", st.Kind)
	}
}
