package scheme

import (
	"reflect"
	"testing"
)

// TestEnumerationGolden pins the exact enumeration the CLI help and
// SchemeNames facade expose: sorted canonical names, one usage line per
// family in the same order. Adding a scheme means updating this list —
// that is the point; the enumeration is a public, deterministic
// contract.
func TestEnumerationGolden(t *testing.T) {
	wantNames := []string{
		"ac",
		"al",
		"cluster",
		"counter",
		"distance",
		"flooding",
		"location",
		"nc",
		"prob",
	}
	if got := Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("Names() = %q\nwant      %q", got, wantNames)
	}

	const wantUsage = "" +
		"  ac[:n1=4,n2=12]             adaptive counter C(n); default = paper's tuned table\n" +
		"  al[:n1=6,n2=12,max=0.187]   adaptive location A(n)\n" +
		"  cluster[:inner=<spec>]      cluster heads/gateways apply the inner spec\n" +
		"  counter:C=3                 fixed counter threshold C\n" +
		"  distance:D=40               fixed distance threshold D meters\n" +
		"  flooding                     every host rebroadcasts once (baseline)\n" +
		"  location:A=0.0469           fixed additional-coverage threshold A\n" +
		"  nc                          neighbor coverage (two-hop HELLO knowledge)\n" +
		"  prob:P=0.7                  rebroadcast with probability P\n"
	if got := Usage(); got != wantUsage {
		t.Fatalf("Usage() =\n%s\nwant\n%s", got, wantUsage)
	}

	// Repeated calls must return fresh, identical slices (no aliasing of
	// internal state, no order drift).
	a, b := Names(), Names()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Names() is not stable across calls")
	}
	a[0] = "mutated"
	if Names()[0] == "mutated" {
		t.Fatal("Names() aliases internal state")
	}
}
