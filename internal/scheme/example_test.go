package scheme_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/scheme"
)

// exampleHost is a minimal HostView for the examples.
type exampleHost struct {
	neighbors []packet.NodeID
}

func (h exampleHost) ID() packet.NodeID          { return 0 }
func (h exampleHost) Position() geom.Point       { return geom.Point{} }
func (h exampleHost) Radius() float64            { return 500 }
func (h exampleHost) NeighborCount() int         { return len(h.neighbors) }
func (h exampleHost) Neighbors() []packet.NodeID { return h.neighbors }
func (h exampleHost) TwoHop(packet.NodeID) []packet.NodeID {
	return nil
}

// The counter-based scheme counts copies of a packet and cancels the
// rebroadcast at its threshold.
func ExampleCounter() {
	judge := scheme.Counter{C: 3}.NewJudge(exampleHost{}, scheme.Reception{From: 1})
	fmt.Println("first reception:", judge.Initial())
	fmt.Println("second copy:   ", judge.OnDuplicate(scheme.Reception{From: 2}))
	fmt.Println("third copy:    ", judge.OnDuplicate(scheme.Reception{From: 3}))
	// Output:
	// first reception: proceed
	// second copy:    proceed
	// third copy:     inhibit
}

// The adaptive counter scheme evaluates its threshold function C(n) on
// the host's neighbor count: sparse hosts are pushed to rebroadcast,
// dense hosts are suppressed quickly.
func ExampleDefaultCounterFunc() {
	cn := scheme.DefaultCounterFunc()
	for _, n := range []int{1, 4, 8, 12, 20} {
		fmt.Printf("C(%d) = %d\n", n, cn(n))
	}
	// Output:
	// C(1) = 2
	// C(4) = 5
	// C(8) = 4
	// C(12) = 2
	// C(20) = 2
}

// The adaptive location scheme's A(n) forces rebroadcasts below n1 = 6
// neighbors and caps at EAC(2)/(pi r^2) = 0.187 beyond n2 = 12.
func ExampleDefaultLocationFunc() {
	an := scheme.DefaultLocationFunc()
	fmt.Printf("A(3) = %.3f\n", an(3))
	fmt.Printf("A(9) = %.4f\n", an(9))
	fmt.Printf("A(15) = %.3f\n", an(15))
	// Output:
	// A(3) = 0.000
	// A(9) = 0.0935
	// A(15) = 0.187
}

// The neighbor-coverage scheme cancels as soon as every known neighbor
// is believed to have the packet.
func ExampleNeighborCoverage() {
	h := exampleHost{neighbors: []packet.NodeID{1, 2}}
	// First copy arrives from host 1: host 2 is still uncovered.
	judge := scheme.NeighborCoverage{}.NewJudge(h, scheme.Reception{From: 1})
	fmt.Println("after hearing host 1:", judge.Initial())
	// Then host 2 itself rebroadcasts: nothing left to cover.
	fmt.Println("after hearing host 2:", judge.OnDuplicate(scheme.Reception{From: 2}))
	// Output:
	// after hearing host 1: proceed
	// after hearing host 2: inhibit
}
