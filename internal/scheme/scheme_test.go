package scheme

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/packet"
)

// fakeHost implements HostView for scheme unit tests.
type fakeHost struct {
	id        packet.NodeID
	pos       geom.Point
	radius    float64
	neighbors []packet.NodeID
	twoHop    map[packet.NodeID][]packet.NodeID
}

func (h *fakeHost) ID() packet.NodeID          { return h.id }
func (h *fakeHost) Position() geom.Point       { return h.pos }
func (h *fakeHost) Radius() float64            { return h.radius }
func (h *fakeHost) NeighborCount() int         { return len(h.neighbors) }
func (h *fakeHost) Neighbors() []packet.NodeID { return h.neighbors }
func (h *fakeHost) TwoHop(n packet.NodeID) []packet.NodeID {
	return h.twoHop[n]
}

func host(neighbors ...packet.NodeID) *fakeHost {
	return &fakeHost{id: 0, radius: 500, neighbors: neighbors,
		twoHop: make(map[packet.NodeID][]packet.NodeID)}
}

func rx(from packet.NodeID, pos geom.Point) Reception {
	return Reception{From: from, SenderPos: pos}
}

// --- Flooding ---

func TestFloodingAlwaysProceeds(t *testing.T) {
	s := Flooding{}
	j := s.NewJudge(host(), rx(1, geom.Point{}))
	if j.Initial() != Proceed {
		t.Fatal("flooding inhibited initial rebroadcast")
	}
	for i := 0; i < 20; i++ {
		if j.OnDuplicate(rx(packet.NodeID(i), geom.Point{})) != Proceed {
			t.Fatal("flooding inhibited after duplicates")
		}
	}
	if s.NeedsHello() || s.NeedsPosition() {
		t.Error("flooding should need neither HELLO nor GPS")
	}
}

// --- Counter ---

func TestCounterInhibitsAtThreshold(t *testing.T) {
	s := Counter{C: 3}
	j := s.NewJudge(host(), rx(1, geom.Point{}))
	if j.Initial() != Proceed {
		t.Fatal("C=3 inhibited on first reception (c=1)")
	}
	if j.OnDuplicate(rx(2, geom.Point{})) != Proceed {
		t.Fatal("C=3 inhibited at c=2")
	}
	if j.OnDuplicate(rx(3, geom.Point{})) != Inhibit {
		t.Fatal("C=3 did not inhibit at c=3")
	}
}

func TestCounterC2InhibitsOnFirstDuplicate(t *testing.T) {
	j := Counter{C: 2}.NewJudge(host(), rx(1, geom.Point{}))
	if j.Initial() != Proceed {
		t.Fatal("C=2 inhibited immediately")
	}
	if j.OnDuplicate(rx(2, geom.Point{})) != Inhibit {
		t.Fatal("C=2 did not inhibit on first duplicate")
	}
}

func TestCounterC1DegeneratesToSourceOnly(t *testing.T) {
	j := Counter{C: 1}.NewJudge(host(), rx(1, geom.Point{}))
	if j.Initial() != Inhibit {
		t.Error("C=1 should inhibit every rebroadcast")
	}
}

func TestCounterThresholdProperty(t *testing.T) {
	// For any C >= 2, the judge proceeds through exactly C-1 receptions
	// and inhibits on the C-th.
	prop := func(rawC uint8) bool {
		c := int(rawC%8) + 2
		j := Counter{C: c}.NewJudge(host(), rx(1, geom.Point{}))
		if j.Initial() != Proceed {
			return false
		}
		for k := 2; k < c; k++ {
			if j.OnDuplicate(rx(2, geom.Point{})) != Proceed {
				return false
			}
		}
		return j.OnDuplicate(rx(2, geom.Point{})) == Inhibit
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// --- Distance ---

func TestDistanceInhibitsCloseSender(t *testing.T) {
	h := host()
	s := Distance{D: 100}
	// First sender 50 m away: too close, inhibit at once.
	j := s.NewJudge(h, rx(1, geom.Point{X: 50}))
	if j.Initial() != Inhibit {
		t.Error("sender at 50m < D=100m should inhibit")
	}
	// First sender 400 m away: proceed; duplicate from 30 m: inhibit.
	j = s.NewJudge(h, rx(1, geom.Point{X: 400}))
	if j.Initial() != Proceed {
		t.Error("sender at 400m should proceed")
	}
	if j.OnDuplicate(rx(2, geom.Point{X: 30})) != Inhibit {
		t.Error("duplicate from 30m should inhibit")
	}
}

func TestDistanceKeepsMinimum(t *testing.T) {
	j := Distance{D: 100}.NewJudge(host(), rx(1, geom.Point{X: 400}))
	// Far duplicates never inhibit.
	for _, x := range []float64{450, 300, 200, 101} {
		if j.OnDuplicate(rx(2, geom.Point{X: x})) != Proceed {
			t.Fatalf("duplicate at %vm wrongly inhibited", x)
		}
	}
	if j.OnDuplicate(rx(3, geom.Point{X: 99})) != Inhibit {
		t.Error("duplicate below D did not inhibit")
	}
}

// --- Location ---

func TestLocationFirstReception(t *testing.T) {
	h := host()
	// Sender at distance r: additional coverage ~0.61 of the disk.
	j := Location{A: 0.5}.NewJudge(h, rx(1, geom.Point{X: 500}))
	if j.Initial() != Proceed {
		t.Error("0.61 coverage below threshold 0.5? should proceed")
	}
	// Co-located sender: zero additional coverage.
	j = Location{A: 0.01}.NewJudge(h, rx(1, geom.Point{X: 0}))
	if j.Initial() != Inhibit {
		t.Error("co-located sender leaves no additional coverage; should inhibit")
	}
}

func TestLocationAccumulatesSenders(t *testing.T) {
	h := host()
	// Threshold 0.187 (EAC2): one sender at 250m leaves ~0.37 uncovered,
	// proceed; surrounding senders eventually cover everything.
	j := Location{A: EAC2Fraction}.NewJudge(h, rx(1, geom.Point{X: 250}))
	if j.Initial() != Proceed {
		t.Fatal("single moderate-distance sender should proceed")
	}
	// Surrounding senders accumulate coverage; within these three
	// duplicates the uncovered fraction must fall below the threshold.
	inhibited := false
	for i, p := range []geom.Point{{X: -250}, {Y: 250}, {Y: -250}} {
		if j.OnDuplicate(rx(packet.NodeID(i+2), p)) == Inhibit {
			inhibited = true
			break
		}
	}
	if !inhibited {
		t.Error("surrounding senders never drove coverage below EAC2 threshold")
	}
}

func TestLocationZeroThresholdNeverInhibits(t *testing.T) {
	h := host()
	j := Location{A: 0}.NewJudge(h, rx(1, geom.Point{X: 1}))
	if j.Initial() != Proceed {
		t.Error("A=0 must force rebroadcast for any positive coverage... ")
	}
}

// --- Threshold functions ---

func TestCounterTableLookup(t *testing.T) {
	fn := CounterTable(2, 3, 4, 5)
	cases := map[int]int{-1: 2, 0: 2, 1: 2, 2: 3, 3: 4, 4: 5, 5: 5, 100: 5}
	for n, want := range cases {
		if got := fn(n); got != want {
			t.Errorf("C(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCounterTableEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty counter table did not panic")
		}
	}()
	CounterTable()
}

func TestDefaultCounterFuncShape(t *testing.T) {
	fn := DefaultCounterFunc()
	// Paper shape: C(n) = n+1 for n <= 4.
	for n := 1; n <= 4; n++ {
		if fn(n) != n+1 {
			t.Errorf("C(%d) = %d, want %d (paper: n+1 before n1=4)", n, fn(n), n+1)
		}
	}
	// Monotone non-increasing after the peak.
	for n := 4; n < 20; n++ {
		if fn(n+1) > fn(n) {
			t.Errorf("C not non-increasing at n=%d: %d -> %d", n, fn(n), fn(n+1))
		}
	}
	// Floor of 2 from n2 = 12 onwards.
	for n := 12; n < 30; n++ {
		if fn(n) != 2 {
			t.Errorf("C(%d) = %d, want floor 2", n, fn(n))
		}
	}
}

func TestLinearCounterFunc(t *testing.T) {
	fn := LinearCounterFunc(4, 12)
	if fn(4) != 5 || fn(12) != 2 || fn(20) != 2 || fn(1) != 2 {
		t.Errorf("knee values wrong: C(4)=%d C(12)=%d C(20)=%d C(1)=%d",
			fn(4), fn(12), fn(20), fn(1))
	}
	for n := 4; n < 12; n++ {
		if fn(n+1) > fn(n) {
			t.Errorf("descent not monotone at %d", n)
		}
	}
	if fn(0) != 2 {
		t.Errorf("C(0) = %d, want 2", fn(0))
	}
}

func TestLinearCounterFuncValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid knees did not panic")
		}
	}()
	LinearCounterFunc(5, 5)
}

func TestLinearLocationFunc(t *testing.T) {
	fn := LinearLocationFunc(6, 12, EAC2Fraction)
	for n := 0; n <= 6; n++ {
		if fn(n) != 0 {
			t.Errorf("A(%d) = %v, want 0 (forced rebroadcast zone)", n, fn(n))
		}
	}
	if got := fn(12); got != EAC2Fraction {
		t.Errorf("A(12) = %v, want %v", got, EAC2Fraction)
	}
	if got := fn(9); math.Abs(got-EAC2Fraction/2) > 1e-12 {
		t.Errorf("A(9) = %v, want midpoint %v", got, EAC2Fraction/2)
	}
	if got := fn(100); got != EAC2Fraction {
		t.Errorf("A(100) = %v, want ceiling", got)
	}
	// Monotone non-decreasing everywhere.
	prev := -1.0
	for n := 0; n < 30; n++ {
		if fn(n) < prev {
			t.Errorf("A not monotone at %d", n)
		}
		prev = fn(n)
	}
}

func TestLinearLocationFuncValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid knees did not panic")
		}
	}()
	LinearLocationFunc(6, 6, 0.1)
}

// --- Adaptive counter ---

func TestAdaptiveCounterUsesNeighborCount(t *testing.T) {
	s := AdaptiveCounter{} // default C(n)
	// Sparse host (1 neighbor): C(1) = 2 -> inhibit on first duplicate.
	sparse := host(1)
	j := s.NewJudge(sparse, rx(1, geom.Point{}))
	if j.Initial() != Proceed {
		t.Fatal("sparse host inhibited immediately")
	}
	if j.OnDuplicate(rx(2, geom.Point{})) != Inhibit {
		t.Error("C(1)=2: first duplicate should inhibit")
	}

	// Host with 4 neighbors: C(4) = 5 -> tolerate 3 duplicates.
	mid := host(1, 2, 3, 4)
	j = s.NewJudge(mid, rx(1, geom.Point{}))
	for k := 0; k < 3; k++ {
		if j.OnDuplicate(rx(2, geom.Point{})) != Proceed {
			t.Fatalf("C(4)=5: duplicate %d wrongly inhibited", k+1)
		}
	}
	if j.OnDuplicate(rx(2, geom.Point{})) != Inhibit {
		t.Error("C(4)=5: 5th hearing should inhibit")
	}

	// Dense host (15 neighbors): C = 2.
	dense := host(make([]packet.NodeID, 15)...)
	j = s.NewJudge(dense, rx(1, geom.Point{}))
	if j.OnDuplicate(rx(2, geom.Point{})) != Inhibit {
		t.Error("dense host should use floor threshold 2")
	}
}

func TestAdaptiveCounterCustomFunctionAndLabel(t *testing.T) {
	s := AdaptiveCounter{C: CounterTable(9), Label: "AC-slope13"}
	if s.Name() != "AC-slope13" {
		t.Errorf("label not used: %s", s.Name())
	}
	if (AdaptiveCounter{}).Name() != "AC" {
		t.Error("default name wrong")
	}
	j := s.NewJudge(host(1), rx(1, geom.Point{}))
	for k := 0; k < 7; k++ {
		if j.OnDuplicate(rx(2, geom.Point{})) != Proceed {
			t.Fatal("custom C=9 inhibited early")
		}
	}
	if !s.NeedsHello() {
		t.Error("adaptive counter requires HELLO")
	}
	if s.NeedsPosition() {
		t.Error("adaptive counter must not require GPS")
	}
}

// --- Adaptive location ---

func TestAdaptiveLocationForcedRebroadcastWhenSparse(t *testing.T) {
	s := AdaptiveLocation{}
	sparse := host(1, 2) // n=2 <= n1=6 -> A(n)=0 -> always rebroadcast
	// Even a co-located sender (zero additional coverage) cannot inhibit,
	// because coverage < 0 never holds with threshold 0.
	j := s.NewJudge(sparse, rx(1, geom.Point{}))
	if j.Initial() != Inhibit {
		// Zero coverage vs zero threshold: 0 < 0 is false -> Proceed.
		t.Log("forced rebroadcast holds even with zero coverage")
	}
	j = s.NewJudge(sparse, rx(1, geom.Point{X: 10}))
	if j.Initial() != Proceed {
		t.Error("sparse host should be forced to rebroadcast")
	}
	for i := 0; i < 8; i++ {
		if j.OnDuplicate(rx(2, geom.Point{Y: float64(10 * i)})) != Proceed {
			t.Error("sparse host inhibited despite A(n)=0")
		}
	}
}

func TestAdaptiveLocationDenseUsesCeiling(t *testing.T) {
	s := AdaptiveLocation{}
	dense := host(make([]packet.NodeID, 20)...) // n=20 -> A = 0.187
	// Sender at 250 m: coverage ~0.37 > 0.187: proceed.
	j := s.NewJudge(dense, rx(1, geom.Point{X: 250}))
	if j.Initial() != Proceed {
		t.Error("single sender at 250m should still proceed at dense ceiling")
	}
	// Sender at 60 m: coverage ~0.12 < 0.187: inhibit at once.
	j = s.NewJudge(dense, rx(1, geom.Point{X: 60}))
	if j.Initial() != Inhibit {
		t.Error("close sender should inhibit dense host immediately")
	}
	if !s.NeedsPosition() || !s.NeedsHello() {
		t.Error("adaptive location needs both GPS and HELLO")
	}
}

// --- Neighbor coverage ---

func TestNeighborCoverageInhibitsWhenSenderCoversAll(t *testing.T) {
	h := host(1, 2, 3)
	h.twoHop[1] = []packet.NodeID{2, 3}
	j := NeighborCoverage{}.NewJudge(h, rx(1, geom.Point{}))
	if j.Initial() != Inhibit {
		t.Error("sender covering all neighbors should inhibit at S1")
	}
}

func TestNeighborCoverageProceedsWithPendingNeighbors(t *testing.T) {
	h := host(1, 2, 3, 4)
	h.twoHop[1] = []packet.NodeID{2}
	j := NeighborCoverage{}.NewJudge(h, rx(1, geom.Point{}))
	// T = {2,3,4} - {2} - {1} = {3,4}.
	if j.Initial() != Proceed {
		t.Fatal("pending neighbors remain; should proceed")
	}
	// Duplicate from 3, covering 4: T empties.
	h.twoHop[3] = []packet.NodeID{4}
	if j.OnDuplicate(rx(3, geom.Point{})) != Inhibit {
		t.Error("T emptied; should inhibit")
	}
}

func TestNeighborCoverageUnknownSender(t *testing.T) {
	// Hearing from a host absent from the neighbor table: only that host
	// is subtracted (its coverage is unknown).
	h := host(2, 3)
	j := NeighborCoverage{}.NewJudge(h, rx(99, geom.Point{}))
	if j.Initial() != Proceed {
		t.Error("unknown sender cannot cover our neighborhood")
	}
}

func TestNeighborCoverageNoNeighbors(t *testing.T) {
	h := host()
	j := NeighborCoverage{}.NewJudge(h, rx(1, geom.Point{}))
	if j.Initial() != Inhibit {
		t.Error("host with no known neighbors has nothing to cover; inhibit")
	}
}

func TestNeighborCoverageDuplicatesShrinkMonotonically(t *testing.T) {
	h := host(1, 2, 3, 4, 5, 6)
	nc := NeighborCoverage{}
	j := nc.NewJudge(h, rx(1, geom.Point{})).(*neighborCoverageJudge)
	sizes := []int{len(j.pending)}
	for _, from := range []packet.NodeID{2, 3, 4} {
		j.OnDuplicate(rx(from, geom.Point{}))
		sizes = append(sizes, len(j.pending))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("pending set grew: %v", sizes)
		}
	}
	if nc.NeedsPosition() {
		t.Error("NC must not require GPS (its selling point)")
	}
	if !nc.NeedsHello() {
		t.Error("NC requires HELLO")
	}
}

// --- Misc ---

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"flooding": Flooding{},
		"C=2":      Counter{C: 2},
		"D=40":     Distance{D: 40},
		"A=0.1871": Location{A: 0.1871},
		"AC":       AdaptiveCounter{},
		"AL":       AdaptiveLocation{},
		"NC":       NeighborCoverage{},
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
	if (AdaptiveLocation{Label: "AL(6,12)"}).Name() != "AL(6,12)" {
		t.Error("AL label override failed")
	}
	if (NeighborCoverage{Label: "NC-DHI"}).Name() != "NC-DHI" {
		t.Error("NC label override failed")
	}
}

func TestActionString(t *testing.T) {
	if Proceed.String() != "proceed" || Inhibit.String() != "inhibit" {
		t.Error("action names wrong")
	}
}
