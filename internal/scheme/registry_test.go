package scheme

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseValidSpecs(t *testing.T) {
	cases := []struct {
		spec string
		want Scheme
	}{
		{"flooding", Flooding{}},
		{"FLOODING", Flooding{}},
		{" flooding ", Flooding{}},
		{"counter", Counter{C: 3}},
		{"counter:C=5", Counter{C: 5}},
		{"counter:c=5", Counter{C: 5}},
		{"distance", Distance{D: 40}},
		{"distance:D=75.5", Distance{D: 75.5}},
		{"location", Location{A: 0.0469}},
		{"location:A=0.1", Location{A: 0.1}},
		{"prob", Probabilistic{P: 0.7}},
		{"probabilistic:P=0.4", Probabilistic{P: 0.4}},
		{"gossip:p=1", Probabilistic{P: 1}},
		{"ac", AdaptiveCounter{}},
		{"adaptive-counter", AdaptiveCounter{}},
		{"nc", NeighborCoverage{}},
		{"neighbor-coverage", NeighborCoverage{}},
		{"al", AdaptiveLocation{}},
		{"al:n1=6,n2=12,max=0.187", AdaptiveLocation{}},
		{"cluster", Cluster{}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", tc.spec, got, tc.want)
		}
	}
}

func TestParseParametricFunctions(t *testing.T) {
	s, err := Parse("ac:n1=3,n2=10")
	if err != nil {
		t.Fatal(err)
	}
	ac, ok := s.(AdaptiveCounter)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ac.Name() != "AC(3,10)" {
		t.Errorf("name = %q", ac.Name())
	}
	// The built C(n) must match LinearCounterFunc(3, 10) pointwise.
	want := LinearCounterFunc(3, 10)
	for n := 0; n <= 15; n++ {
		if got, w := ac.C(n), want(n); got != w {
			t.Errorf("C(%d) = %d, want %d", n, got, w)
		}
	}

	s, err = Parse("al:n1=2,n2=8,max=0.1")
	if err != nil {
		t.Fatal(err)
	}
	al, ok := s.(AdaptiveLocation)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if al.Name() != "AL(2,8,0.100)" {
		t.Errorf("name = %q", al.Name())
	}
	wantA := LinearLocationFunc(2, 8, 0.1)
	for n := 0; n <= 12; n++ {
		if got, w := al.A(n), wantA(n); got != w {
			t.Errorf("A(%d) = %g, want %g", n, got, w)
		}
	}
}

func TestParseClusterInner(t *testing.T) {
	s, err := Parse("cluster:inner=counter:C=2")
	if err != nil {
		t.Fatal(err)
	}
	cl, ok := s.(Cluster)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if !reflect.DeepEqual(cl.Inner, Counter{C: 2}) {
		t.Errorf("inner = %#v", cl.Inner)
	}
	if _, err := Parse("cluster:inner=bogus"); err == nil {
		t.Error("accepted bogus inner spec")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "empty"},
		{"bogus", "unknown scheme"},
		{"counter:C=zero", "not an integer"},
		{"counter:C=0", "at least 1"},
		{"counter:X=3", "unknown parameter"},
		{"counter:C=3,C=4", "duplicate"},
		{"counter:C", "malformed"},
		{"distance:D=-5", "non-negative"},
		{"location:A=2", "outside"},
		{"prob:P=1.5", "outside"},
		{"ac:n1=3", "together"},
		{"ac:n1=5,n2=2", "n1 < n2"},
		{"al:max=0", "outside"},
		{"flooding:C=3", "unknown parameter"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestNamesAndUsageCoverRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() has %d entries for %d registry entries", len(names), len(registry))
	}
	usage := Usage()
	for _, n := range names {
		// Every listed name must parse with defaults and appear in the help.
		if _, err := Parse(n); err != nil {
			t.Errorf("Parse(%q) with defaults: %v", n, err)
		}
		if !strings.Contains(usage, n) {
			t.Errorf("Usage() does not mention %q", n)
		}
	}
}
