package scheme

import (
	"testing"

	"repro/internal/geom"
)

func rxU(u float64) Reception {
	return Reception{From: 1, SenderPos: geom.Point{X: 100}, U: u}
}

func TestProbabilisticUsesVariate(t *testing.T) {
	s := Probabilistic{P: 0.5}
	if s.NewJudge(host(), rxU(0.49)).Initial() != Proceed {
		t.Error("U below P should proceed")
	}
	if s.NewJudge(host(), rxU(0.51)).Initial() != Inhibit {
		t.Error("U above P should inhibit")
	}
}

func TestProbabilisticExtremes(t *testing.T) {
	// P=1 behaves like flooding for any variate in [0,1).
	for _, u := range []float64{0, 0.5, 0.999999} {
		if (Probabilistic{P: 1}).NewJudge(host(), rxU(u)).Initial() != Proceed {
			t.Errorf("P=1 inhibited at U=%v", u)
		}
	}
	// P=0 never rebroadcasts.
	for _, u := range []float64{0, 0.5, 0.999999} {
		if (Probabilistic{P: 0}).NewJudge(host(), rxU(u)).Initial() != Inhibit {
			t.Errorf("P=0 proceeded at U=%v", u)
		}
	}
}

func TestProbabilisticDuplicatesIrrelevant(t *testing.T) {
	j := Probabilistic{P: 0.9}.NewJudge(host(), rxU(0.1))
	for i := 0; i < 5; i++ {
		if j.OnDuplicate(rxU(0.99)) != Proceed {
			t.Error("duplicates must not flip a gossip decision")
		}
	}
}

func TestProbabilisticMetadata(t *testing.T) {
	s := Probabilistic{P: 0.25}
	if s.Name() != "P=0.25" {
		t.Errorf("name = %s", s.Name())
	}
	if s.NeedsHello() || s.NeedsPosition() {
		t.Error("gossip needs neither HELLO nor GPS")
	}
}
