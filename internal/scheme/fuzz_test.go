package scheme

import (
	"strings"
	"testing"
)

// FuzzSchemeParse throws arbitrary specs at the registry parser. Parse
// must never panic; when it accepts a spec the scheme must be usable
// (non-nil with a non-empty label) and parsing must be deterministic —
// the same spec accepted twice yields the same label.
func FuzzSchemeParse(f *testing.F) {
	for _, seed := range []string{
		"", "flooding", "counter:C=3", "counter:C=notanumber", "counter:C=0",
		"prob:P=0.7", "prob:P=2", "distance:D=40", "location:A=0.0469",
		"ac", "ac:n1=3,n2=10", "ac:n1=3", "al:n1=6,n2=12,max=0.187",
		"nc", "neighbor-coverage", "cluster", "cluster:inner=counter:C=2",
		"cluster:inner=cluster", "FLOODING", " counter :c=4", "counter:C=3,C=4",
		"counter:junk=1", "a:b=c,d=e,f=g", "::::", "counter:",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 1024 {
			return // deep cluster:inner=cluster:... nesting is legal but unbounded
		}
		s, err := Parse(spec)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse(%q) returned a scheme alongside error %v", spec, err)
			}
			return
		}
		if s == nil {
			t.Fatalf("Parse(%q) returned nil scheme without error", spec)
		}
		name := s.Name()
		if strings.TrimSpace(name) == "" {
			t.Fatalf("Parse(%q): scheme has empty label", spec)
		}
		again, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q) accepted once, rejected twice: %v", spec, err)
		}
		if again.Name() != name {
			t.Fatalf("Parse(%q) nondeterministic: %q vs %q", spec, name, again.Name())
		}
	})
}
