package scheme

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
)

// clusterHost builds a fakeHost with explicit id and two-hop map.
func clusterHost(id packet.NodeID, neighbors []packet.NodeID,
	twoHop map[packet.NodeID][]packet.NodeID) *fakeHost {
	if twoHop == nil {
		twoHop = map[packet.NodeID][]packet.NodeID{}
	}
	return &fakeHost{id: id, radius: 500, neighbors: neighbors, twoHop: twoHop}
}

func TestClusterRoleHead(t *testing.T) {
	// Host 1 with neighbors {2, 3}: lowest ID, so head.
	h := clusterHost(1, []packet.NodeID{2, 3}, nil)
	if got := ClusterRole(h); got != Head {
		t.Errorf("role = %v, want head", got)
	}
}

func TestClusterRoleMember(t *testing.T) {
	// Host 3 with neighbors {1, 2}; everyone clusters under 1 as far as
	// host 3 can see: 3's head is 1, and both neighbors' heads are 1.
	h := clusterHost(3, []packet.NodeID{1, 2}, map[packet.NodeID][]packet.NodeID{
		1: {2, 3},
		2: {1, 3},
	})
	if got := ClusterRole(h); got != Member {
		t.Errorf("role = %v, want member", got)
	}
}

func TestClusterRoleGateway(t *testing.T) {
	// Host 5's head is 1 (via neighbor 1); neighbor 7 belongs to head 7
	// (it sees only {5, 9}... its own min is 5? choose ids so 7's head
	// differs): neighbor 7's announced neighbors are {8, 9}, so its head
	// estimate is 7 — a foreign cluster. Host 5 is a gateway.
	h := clusterHost(5, []packet.NodeID{1, 7}, map[packet.NodeID][]packet.NodeID{
		1: {5},
		7: {8, 9},
	})
	if got := ClusterRole(h); got != Gateway {
		t.Errorf("role = %v, want gateway", got)
	}
}

func TestClusterIsolatedHostIsHead(t *testing.T) {
	h := clusterHost(9, nil, nil)
	if got := ClusterRole(h); got != Head {
		t.Errorf("isolated host role = %v, want head (its own cluster)", got)
	}
}

func TestClusterMemberInhibited(t *testing.T) {
	h := clusterHost(3, []packet.NodeID{1, 2}, map[packet.NodeID][]packet.NodeID{
		1: {2, 3}, 2: {1, 3},
	})
	j := Cluster{}.NewJudge(h, rx(1, geom.Point{X: 100}))
	if j.Initial() != Inhibit {
		t.Error("member proceeded")
	}
	if j.OnDuplicate(rx(2, geom.Point{})) != Inhibit {
		t.Error("member un-inhibited on duplicate")
	}
}

func TestClusterHeadUsesInnerScheme(t *testing.T) {
	head := clusterHost(1, []packet.NodeID{2, 3}, nil)
	// Default inner = flooding: always proceed.
	j := Cluster{}.NewJudge(head, rx(2, geom.Point{X: 100}))
	if j.Initial() != Proceed {
		t.Error("head with flooding inner inhibited")
	}
	// Inner counter C=2: inhibit on first duplicate.
	j = Cluster{Inner: Counter{C: 2}}.NewJudge(head, rx(2, geom.Point{X: 100}))
	if j.Initial() != Proceed {
		t.Fatal("head with counter inner inhibited immediately")
	}
	if j.OnDuplicate(rx(3, geom.Point{})) != Inhibit {
		t.Error("inner counter threshold ignored")
	}
}

func TestClusterMetadata(t *testing.T) {
	if (Cluster{}).Name() != "cluster" {
		t.Errorf("name = %s", Cluster{}.Name())
	}
	if (Cluster{Inner: Counter{C: 3}}).Name() != "cluster+C=3" {
		t.Errorf("composed name = %s", Cluster{Inner: Counter{C: 3}}.Name())
	}
	if (Cluster{Label: "CL"}).Name() != "CL" {
		t.Error("label override failed")
	}
	if !(Cluster{}).NeedsHello() {
		t.Error("clustering needs HELLO")
	}
	if (Cluster{}).NeedsPosition() {
		t.Error("cluster+flooding must not need GPS")
	}
	if !(Cluster{Inner: Location{A: 0.05}}).NeedsPosition() {
		t.Error("cluster+location needs GPS")
	}
}

func TestRoleString(t *testing.T) {
	if Member.String() != "member" || Head.String() != "head" || Gateway.String() != "gateway" {
		t.Error("role names wrong")
	}
}
