package scheme

import (
	"fmt"

	"repro/internal/packet"
)

// Cluster is the cluster-based scheme from the MOBICOM '99 paper: hosts
// organize into clusters by the lowest-ID rule (a host whose ID is
// smaller than all of its neighbors' is a head; everyone else joins the
// cluster of the smallest-ID host in range). A head's rebroadcast covers
// its whole cluster, and only gateways — members that can hear a foreign
// cluster — need to forward between clusters. Ordinary members never
// rebroadcast.
//
// Heads and gateways still apply an inner suppression scheme (the
// original work layers the counter or location scheme on top; Flooding
// makes them always rebroadcast). Clustering is computed from the same
// HELLO-derived one- and two-hop knowledge the neighbor-coverage scheme
// uses, so it needs no extra protocol:
//
//   - own head:     min(self, N_x)
//   - neighbor h's head (estimate): min(h, N_{x,h})
//   - gateway: some neighbor's head differs from ours.
type Cluster struct {
	// Inner is the scheme heads and gateways apply; nil means Flooding.
	Inner Scheme
	// Label overrides the display name.
	Label string
}

var _ Scheme = Cluster{}

// Name implements Scheme.
func (s Cluster) Name() string {
	if s.Label != "" {
		return s.Label
	}
	if s.Inner != nil {
		return fmt.Sprintf("cluster+%s", s.Inner.Name())
	}
	return "cluster"
}

// NeedsHello implements Scheme.
func (Cluster) NeedsHello() bool { return true }

// NeedsPosition implements Scheme.
func (s Cluster) NeedsPosition() bool {
	return s.Inner != nil && s.Inner.NeedsPosition()
}

// inner returns the effective inner scheme.
func (s Cluster) inner() Scheme {
	if s.Inner != nil {
		return s.Inner
	}
	return Flooding{}
}

// headOf computes the cluster head of a host given its neighbor set.
func headOf(self packet.NodeID, neighbors []packet.NodeID) packet.NodeID {
	head := self
	for _, n := range neighbors {
		if n < head {
			head = n
		}
	}
	return head
}

// Role classifies a host in the cluster structure. Exported for tests
// and for experiment instrumentation.
type Role int

// Cluster roles.
const (
	// Member hosts never rebroadcast.
	Member Role = iota
	// Head hosts relay within their cluster.
	Head
	// Gateway hosts relay between clusters.
	Gateway
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Head:
		return "head"
	case Gateway:
		return "gateway"
	default:
		return "member"
	}
}

// ClusterRole computes the host's current role from its local knowledge.
func ClusterRole(host HostView) Role {
	self := host.ID()
	neighbors := host.Neighbors()
	myHead := headOf(self, neighbors)
	if myHead == self {
		return Head
	}
	for _, h := range neighbors {
		theirHead := headOf(h, host.TwoHop(h))
		if theirHead != myHead {
			return Gateway
		}
	}
	return Member
}

// NewJudge implements Scheme.
func (s Cluster) NewJudge(host HostView, first Reception) Judge {
	if ClusterRole(host) == Member {
		return inhibitJudge{}
	}
	return s.inner().NewJudge(host, first)
}

// inhibitJudge refuses to rebroadcast under all circumstances.
type inhibitJudge struct{}

func (inhibitJudge) Initial() Action              { return Inhibit }
func (inhibitJudge) OnDuplicate(Reception) Action { return Inhibit }
