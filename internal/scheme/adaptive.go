package scheme

import (
	"fmt"
	"math"

	"repro/internal/nodeset"
	"repro/internal/packet"
)

// EAC2Fraction is EAC(2)/(pi r^2) ~= 0.187: the expected additional
// coverage after hearing the same packet twice. The paper uses it as the
// ceiling of the adaptive location threshold function A(n).
const EAC2Fraction = 0.187

// --- Threshold functions ---

// CounterFunc is a counter threshold function C(n) of the host's
// one-hop neighbor count n.
type CounterFunc func(n int) int

// CounterTable builds C(n) from an explicit value table for n = 1, 2, ...
// (the paper writes these as digit sequences like "2345 5444 3332");
// n beyond the table uses the last value, and n <= 0 uses the first.
// It panics on an empty table.
func CounterTable(values ...int) CounterFunc {
	if len(values) == 0 {
		panic("scheme: empty counter table")
	}
	return func(n int) int {
		if n < 1 {
			return values[0]
		}
		if n > len(values) {
			return values[len(values)-1]
		}
		return values[n-1]
	}
}

// DefaultCounterFunc returns the paper's tuned C(n) (the solid line of
// its Fig. 6): C(n) = n+1 up to n1 = 4, then a gradual decrease to the
// minimum threshold 2 at n2 = 12 and beyond.
func DefaultCounterFunc() CounterFunc {
	// n:            1  2  3  4  5  6  7  8  9 10 11 12
	return CounterTable(2, 3, 4, 5, 5, 4, 4, 4, 3, 3, 2, 2)
}

// LinearCounterFunc builds the parametric C(n) family used in the
// paper's tuning experiments (Fig. 5): C(n) = n+1 for n <= n1, then a
// linear descent to 2 at n = n2, and 2 afterwards.
func LinearCounterFunc(n1, n2 int) CounterFunc {
	if n1 < 1 || n2 <= n1 {
		panic(fmt.Sprintf("scheme: invalid counter knee points (%d, %d)", n1, n2))
	}
	top := float64(n1 + 1)
	return func(n int) int {
		switch {
		case n < 1:
			return 2
		case n <= n1:
			return n + 1
		case n >= n2:
			return 2
		default:
			frac := float64(n-n1) / float64(n2-n1)
			return int(math.Round(top - (top-2)*frac))
		}
	}
}

// LocationFunc is an additional-coverage threshold function A(n).
type LocationFunc func(n int) float64

// LinearLocationFunc builds the paper's A(n) family (its Fig. 8): 0 for
// n <= n1 (forcing a rebroadcast), a linear rise to max at n = n2, and
// max afterwards. The paper fixes max = EAC2Fraction.
func LinearLocationFunc(n1, n2 int, max float64) LocationFunc {
	if n1 < 0 || n2 <= n1 {
		panic(fmt.Sprintf("scheme: invalid location knee points (%d, %d)", n1, n2))
	}
	return func(n int) float64 {
		switch {
		case n <= n1:
			return 0
		case n >= n2:
			return max
		default:
			return max * float64(n-n1) / float64(n2-n1)
		}
	}
}

// DefaultLocationFunc returns the paper's recommended A(n): knees at
// (n1, n2) = (6, 12) with ceiling EAC(2)/pi r^2.
func DefaultLocationFunc() LocationFunc {
	return LinearLocationFunc(6, 12, EAC2Fraction)
}

// --- Adaptive counter-based ---

// AdaptiveCounter is the paper's adaptive counter-based scheme: the
// counter threshold is C(n), evaluated against the host's neighbor count
// at the moment the packet is first heard.
type AdaptiveCounter struct {
	// C is the threshold function; nil uses DefaultCounterFunc.
	C CounterFunc
	// Label overrides the scheme name in tables (useful when sweeping
	// candidate functions); empty uses "AC".
	Label string
}

var _ Scheme = AdaptiveCounter{}

// Name implements Scheme.
func (s AdaptiveCounter) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "AC"
}

// NeedsHello implements Scheme.
func (AdaptiveCounter) NeedsHello() bool { return true }

// NeedsPosition implements Scheme.
func (AdaptiveCounter) NeedsPosition() bool { return false }

// NewJudge implements Scheme.
func (s AdaptiveCounter) NewJudge(host HostView, first Reception) Judge {
	fn := s.C
	if fn == nil {
		fn = DefaultCounterFunc()
	}
	return &counterJudge{c: 1, threshold: fn(host.NeighborCount())}
}

// --- Adaptive location-based ---

// AdaptiveLocation is the paper's adaptive location-based scheme: the
// additional-coverage threshold is A(n) of the host's neighbor count.
type AdaptiveLocation struct {
	// A is the threshold function; nil uses DefaultLocationFunc.
	A LocationFunc
	// Label overrides the scheme name in tables; empty uses "AL".
	Label string
}

var _ Scheme = AdaptiveLocation{}

// Name implements Scheme.
func (s AdaptiveLocation) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "AL"
}

// NeedsHello implements Scheme.
func (AdaptiveLocation) NeedsHello() bool { return true }

// NeedsPosition implements Scheme.
func (AdaptiveLocation) NeedsPosition() bool { return true }

// NewJudge implements Scheme.
func (s AdaptiveLocation) NewJudge(host HostView, first Reception) Judge {
	fn := s.A
	if fn == nil {
		fn = DefaultLocationFunc()
	}
	j := &locationJudge{
		own:       host.Position(),
		radius:    host.Radius(),
		threshold: fn(host.NeighborCount()),
	}
	j.senders = append(j.senders, first.SenderPos)
	return j
}

// --- Neighbor coverage ---

// NeighborCoverage is the paper's neighbor-coverage scheme: host x keeps
// the pending set T of neighbors not yet believed to have the packet,
// initialized to N_x - N_{x,h} - {h} on first reception from h and
// shrunk by every duplicate; when T empties the rebroadcast is
// cancelled. It requires two-hop HELLO knowledge but no positioning
// hardware.
type NeighborCoverage struct {
	// Label overrides the scheme name in tables; empty uses "NC".
	Label string
}

var _ Scheme = NeighborCoverage{}

// Name implements Scheme.
func (s NeighborCoverage) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "NC"
}

// NeedsHello implements Scheme.
func (NeighborCoverage) NeedsHello() bool { return true }

// NeedsPosition implements Scheme.
func (NeighborCoverage) NeedsPosition() bool { return false }

// NewJudge implements Scheme. Hosts exposing dense bitset neighbor sets
// (scheme.NodeSetSource) get a pooled-bitset judge; the coverage
// subtraction becomes word operations instead of map churn. Decisions
// are identical either way: both track the same pending set T and
// inhibit exactly when it empties.
func (NeighborCoverage) NewJudge(host HostView, first Reception) Judge {
	if src, ok := host.(NodeSetSource); ok {
		if nb := src.NeighborNodeSet(); nb != nil {
			j := &denseCoverageJudge{host: host, src: src, pending: src.AcquireNodeSet()}
			j.pending.CopyFrom(nb)
			j.subtract(first)
			return j
		}
	}
	j := &neighborCoverageJudge{
		host:    host,
		pending: make(map[packet.NodeID]bool),
	}
	for _, n := range host.Neighbors() {
		j.pending[n] = true
	}
	j.subtract(first)
	return j
}

type neighborCoverageJudge struct {
	host    HostView
	pending map[packet.NodeID]bool
}

// subtract removes the sender and everyone the host believes the sender
// covers from the pending set.
func (j *neighborCoverageJudge) subtract(r Reception) {
	delete(j.pending, r.From)
	for _, n := range j.host.TwoHop(r.From) {
		delete(j.pending, n)
	}
}

func (j *neighborCoverageJudge) Initial() Action {
	if len(j.pending) == 0 {
		return Inhibit
	}
	return Proceed
}

func (j *neighborCoverageJudge) OnDuplicate(r Reception) Action {
	j.subtract(r)
	if len(j.pending) == 0 {
		return Inhibit
	}
	return Proceed
}

// denseCoverageJudge is neighborCoverageJudge on a pooled bitset: the
// pending set T lives in a nodeset.Set borrowed from the host and
// returned on Release.
type denseCoverageJudge struct {
	host    HostView
	src     NodeSetSource
	pending *nodeset.Set
}

var _ ReleasableJudge = (*denseCoverageJudge)(nil)

func (j *denseCoverageJudge) subtract(r Reception) {
	j.pending.Remove(r.From)
	for _, n := range j.host.TwoHop(r.From) {
		j.pending.Remove(n)
	}
}

func (j *denseCoverageJudge) Initial() Action {
	if j.pending.Count() == 0 {
		return Inhibit
	}
	return Proceed
}

func (j *denseCoverageJudge) OnDuplicate(r Reception) Action {
	j.subtract(r)
	if j.pending.Count() == 0 {
		return Inhibit
	}
	return Proceed
}

// Release implements ReleasableJudge.
func (j *denseCoverageJudge) Release() {
	if j.pending != nil {
		j.src.ReleaseNodeSet(j.pending)
		j.pending = nil
	}
}
