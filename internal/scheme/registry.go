package scheme

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The registry gives every scheme a single textual spec syntax shared by
// all the cmd tools:
//
//	name
//	name:key=value,key=value,...
//
// Names and keys are case-insensitive; each scheme documents its keys
// and their paper defaults (see Usage). Examples:
//
//	flooding
//	counter:C=3
//	distance:D=40
//	location:A=0.0469
//	prob:P=0.7
//	ac:n1=3,n2=10
//	al:n1=6,n2=12
//	nc
//	cluster:inner=counter:C=2
//
// The cluster scheme's inner value is itself a spec, parsed recursively;
// because commas separate parameters, an inner spec may carry at most
// one parameter of its own.

// registryEntry describes one parseable scheme family.
type registryEntry struct {
	name    string // canonical name
	aliases []string
	usage   string // "name[:keys]  description" line for CLI help
	build   func(p *specParams) (Scheme, error)
}

// registry lists every scheme family in canonical order. It is filled
// in init (not a composite literal) because the cluster entry's builder
// re-enters Parse, which would otherwise be an initialization cycle.
var registry []registryEntry

func init() {
	registry = []registryEntry{
		{
			name:  "flooding",
			usage: "flooding                     every host rebroadcasts once (baseline)",
			build: func(p *specParams) (Scheme, error) { return Flooding{}, nil },
		},
		{
			name:    "prob",
			aliases: []string{"probabilistic", "gossip"},
			usage:   "prob:P=0.7                  rebroadcast with probability P",
			build: func(p *specParams) (Scheme, error) {
				pr, err := p.floatOr("p", 0.7)
				if err != nil {
					return nil, err
				}
				if pr < 0 || pr > 1 {
					return nil, fmt.Errorf("P=%g outside [0, 1]", pr)
				}
				return Probabilistic{P: pr}, nil
			},
		},
		{
			name:  "counter",
			usage: "counter:C=3                 fixed counter threshold C",
			build: func(p *specParams) (Scheme, error) {
				c, err := p.intOr("c", 3)
				if err != nil {
					return nil, err
				}
				if c < 1 {
					return nil, fmt.Errorf("C=%d must be at least 1", c)
				}
				return Counter{C: c}, nil
			},
		},
		{
			name:  "distance",
			usage: "distance:D=40               fixed distance threshold D meters",
			build: func(p *specParams) (Scheme, error) {
				d, err := p.floatOr("d", 40)
				if err != nil {
					return nil, err
				}
				if d < 0 {
					return nil, fmt.Errorf("D=%g must be non-negative", d)
				}
				return Distance{D: d}, nil
			},
		},
		{
			name:  "location",
			usage: "location:A=0.0469           fixed additional-coverage threshold A",
			build: func(p *specParams) (Scheme, error) {
				a, err := p.floatOr("a", 0.0469)
				if err != nil {
					return nil, err
				}
				if a < 0 || a > 1 {
					return nil, fmt.Errorf("A=%g outside [0, 1]", a)
				}
				return Location{A: a}, nil
			},
		},
		{
			name:    "ac",
			aliases: []string{"adaptive-counter"},
			usage:   "ac[:n1=4,n2=12]             adaptive counter C(n); default = paper's tuned table",
			build: func(p *specParams) (Scheme, error) {
				_, hasN1 := p.raw("n1")
				_, hasN2 := p.raw("n2")
				if hasN1 != hasN2 {
					return nil, fmt.Errorf("n1 and n2 must be given together")
				}
				if !hasN1 {
					return AdaptiveCounter{}, nil
				}
				n1, err := p.intOr("n1", 0)
				if err != nil {
					return nil, err
				}
				n2, err := p.intOr("n2", 0)
				if err != nil {
					return nil, err
				}
				if n1 < 1 || n2 <= n1 {
					return nil, fmt.Errorf("need 1 <= n1 < n2, got n1=%d n2=%d", n1, n2)
				}
				return AdaptiveCounter{
					C:     LinearCounterFunc(n1, n2),
					Label: fmt.Sprintf("AC(%d,%d)", n1, n2),
				}, nil
			},
		},
		{
			name:    "al",
			aliases: []string{"adaptive-location"},
			usage:   "al[:n1=6,n2=12,max=0.187]   adaptive location A(n)",
			build: func(p *specParams) (Scheme, error) {
				n1, err := p.intOr("n1", 6)
				if err != nil {
					return nil, err
				}
				n2, err := p.intOr("n2", 12)
				if err != nil {
					return nil, err
				}
				max, err := p.floatOr("max", EAC2Fraction)
				if err != nil {
					return nil, err
				}
				if n1 < 0 || n2 <= n1 {
					return nil, fmt.Errorf("need 0 <= n1 < n2, got n1=%d n2=%d", n1, n2)
				}
				if max <= 0 || max > 1 {
					return nil, fmt.Errorf("max=%g outside (0, 1]", max)
				}
				if n1 == 6 && n2 == 12 && max == EAC2Fraction {
					return AdaptiveLocation{}, nil // paper default, canonical "AL" label
				}
				return AdaptiveLocation{
					A:     LinearLocationFunc(n1, n2, max),
					Label: fmt.Sprintf("AL(%d,%d,%.3f)", n1, n2, max),
				}, nil
			},
		},
		{
			name:    "nc",
			aliases: []string{"neighbor-coverage"},
			usage:   "nc                          neighbor coverage (two-hop HELLO knowledge)",
			build:   func(p *specParams) (Scheme, error) { return NeighborCoverage{}, nil },
		},
		{
			name:  "cluster",
			usage: "cluster[:inner=<spec>]      cluster heads/gateways apply the inner spec",
			build: func(p *specParams) (Scheme, error) {
				inner, ok := p.raw("inner")
				if !ok {
					return Cluster{}, nil
				}
				in, err := Parse(inner)
				if err != nil {
					return nil, fmt.Errorf("inner spec: %w", err)
				}
				return Cluster{Inner: in}, nil
			},
		},
	}
}

// Parse builds a scheme from its textual spec. It is the single scheme
// construction path for every cmd tool; an unknown name, malformed or
// unknown parameter, or out-of-contract value is an error naming the
// offending spec.
func Parse(spec string) (Scheme, error) {
	name, rest := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, rest = spec[:i], spec[i+1:]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return nil, fmt.Errorf("scheme: empty spec")
	}
	e := lookupEntry(name)
	if e == nil {
		return nil, fmt.Errorf("scheme: unknown scheme %q (have %s)", name, strings.Join(Names(), ", "))
	}
	p, err := parseParams(rest)
	if err != nil {
		return nil, fmt.Errorf("scheme %q: %w", spec, err)
	}
	s, err := e.build(p)
	if err != nil {
		return nil, fmt.Errorf("scheme %q: %w", spec, err)
	}
	if extra := p.unused(); len(extra) > 0 {
		return nil, fmt.Errorf("scheme %q: unknown parameter(s) %s for %s",
			spec, strings.Join(extra, ", "), e.name)
	}
	return s, nil
}

// Names returns the canonical scheme names, sorted alphabetically so
// enumeration is deterministic and independent of registration order
// (pinned by TestEnumerationGolden).
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	sort.Strings(out)
	return out
}

// Usage returns a multi-line description of every spec for CLI help,
// one line per scheme family, sorted by canonical name like Names.
func Usage() string {
	lines := make([]string, len(registry))
	for i, e := range registry {
		lines[i] = e.usage
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, u := range lines {
		fmt.Fprintf(&b, "  %s\n", u)
	}
	return b.String()
}

func lookupEntry(name string) *registryEntry {
	for i := range registry {
		e := &registry[i]
		if e.name == name {
			return e
		}
		for _, a := range e.aliases {
			if a == name {
				return e
			}
		}
	}
	return nil
}

// specParams holds a spec's key=value pairs and tracks which ones the
// builder consumed, so leftovers surface as errors instead of being
// silently ignored.
type specParams struct {
	kv   map[string]string
	used map[string]bool
}

func parseParams(rest string) (*specParams, error) {
	p := &specParams{kv: map[string]string{}, used: map[string]bool{}}
	if strings.TrimSpace(rest) == "" {
		return p, nil
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.IndexByte(part, '=')
		if i <= 0 {
			return nil, fmt.Errorf("malformed parameter %q (want key=value)", part)
		}
		key := strings.ToLower(strings.TrimSpace(part[:i]))
		val := strings.TrimSpace(part[i+1:])
		if _, dup := p.kv[key]; dup {
			return nil, fmt.Errorf("duplicate parameter %q", key)
		}
		p.kv[key] = val
	}
	return p, nil
}

// raw returns a parameter's string value, marking it consumed.
func (p *specParams) raw(key string) (string, bool) {
	v, ok := p.kv[key]
	if ok {
		p.used[key] = true
	}
	return v, ok
}

func (p *specParams) intOr(key string, def int) (int, error) {
	v, ok := p.raw(key)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

func (p *specParams) floatOr(key string, def float64) (float64, error) {
	v, ok := p.raw(key)
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not a number", key, v)
	}
	return f, nil
}

func (p *specParams) unused() []string {
	var out []string
	for k := range p.kv {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
