// Package scheme implements the paper's rebroadcast decision schemes —
// the system's core contribution — as pure per-packet state machines,
// decoupled from the event-driven substrate so they can be tested and
// reasoned about in isolation.
//
// Fixed-threshold baselines (from Ni et al., MOBICOM '99, which the
// paper compares against):
//
//   - Flooding: every host rebroadcasts once.
//   - Counter-based: cancel after hearing the packet C times.
//   - Distance-based: cancel when some sender is closer than D meters.
//   - Location-based: cancel when the additional coverage the host's
//     rebroadcast would provide drops below A (fraction of pi*r^2).
//
// Adaptive schemes (this paper's contribution):
//
//   - Adaptive counter-based: C becomes C(n) of the neighbor count n.
//   - Adaptive location-based: A becomes A(n).
//   - Neighbor coverage: rebroadcast only while some one-hop neighbor is
//     not yet believed covered, using two-hop HELLO knowledge.
//
// A Scheme builds one Judge per received broadcast packet. The host layer
// asks the Judge for an initial verdict on first reception and feeds it
// every duplicate reception heard while the rebroadcast is still pending;
// the Judge answers whether to keep going or to cancel. Once the frame is
// on the air no further decisions apply (the paper's step S3).
package scheme

import (
	"repro/internal/geom"
	"repro/internal/nodeset"
	"repro/internal/packet"
)

// Action is a Judge's verdict after a reception.
type Action int

// Verdicts.
const (
	// Proceed means the host should (continue to) schedule its
	// rebroadcast.
	Proceed Action = iota
	// Inhibit means the rebroadcast must be cancelled; the host will
	// never rebroadcast this packet (the paper's step S5).
	Inhibit
)

// String names the action.
func (a Action) String() string {
	if a == Proceed {
		return "proceed"
	}
	return "inhibit"
}

// HostView is the local knowledge a Judge may consult. It is provided by
// the host layer; schemes must use nothing beyond it (the paper's schemes
// are strictly local).
type HostView interface {
	// ID returns the host's identity.
	ID() packet.NodeID
	// Position returns the host's own position (GPS assumption of the
	// location-based schemes).
	Position() geom.Point
	// Radius returns the radio transmission radius in meters.
	Radius() float64
	// NeighborCount returns |N_x| from the HELLO-built neighbor table.
	NeighborCount() int
	// Neighbors returns N_x.
	Neighbors() []packet.NodeID
	// TwoHop returns N_{x,h} (h's neighbor set as last announced to this
	// host), or nil if h is not a known neighbor. The slice is shared
	// storage and must not be modified.
	TwoHop(h packet.NodeID) []packet.NodeID
}

// NodeSetSource is an optional HostView extension for hosts whose
// population uses dense 0..N-1 ids. Schemes that track neighbor subsets
// (neighbor coverage) use it to run on pooled bitsets instead of
// allocating a map per packet; hosts that do not implement it get the
// map-based fallback with identical decisions. Pools may live on the
// host side because a simulation is single-threaded; the Scheme value
// itself stays stateless and shareable across replica goroutines.
type NodeSetSource interface {
	// NeighborNodeSet returns the host's live one-hop membership bitset,
	// or nil when unavailable; callers must not mutate it.
	NeighborNodeSet() *nodeset.Set
	// AcquireNodeSet returns an empty scratch set from the host's pool.
	AcquireNodeSet() *nodeset.Set
	// ReleaseNodeSet returns a scratch set to the pool.
	ReleaseNodeSet(*nodeset.Set)
}

// ReleasableJudge is implemented by judges that hold pooled resources.
// The host layer must call Release exactly once when the packet's
// decision is closed (inhibited, transmitted, or dropped on the initial
// verdict); the judge must not be used afterwards.
type ReleasableJudge interface {
	Judge
	Release()
}

// ReleaseJudge returns j's pooled resources if it holds any. It is the
// host layer's single call point and tolerates judges without resources.
func ReleaseJudge(j Judge) {
	if r, ok := j.(ReleasableJudge); ok {
		r.Release()
	}
}

// Reception describes hearing one copy of the broadcast packet.
type Reception struct {
	From packet.NodeID
	// SenderPos is the transmitter's advertised position. Only the
	// location-based schemes may use it.
	SenderPos geom.Point
	// U is a uniform random variate in [0, 1) drawn by the host layer
	// for this reception. Randomized schemes (the probabilistic baseline)
	// consume it; deterministic schemes ignore it. Keeping the draw in
	// the host layer preserves scheme purity and run reproducibility.
	U float64
}

// Judge is the per-packet decision state machine.
type Judge interface {
	// Initial returns the verdict upon the first reception (the paper's
	// step S1): Proceed to schedule a rebroadcast, or Inhibit to drop
	// immediately.
	Initial() Action
	// OnDuplicate processes hearing the same packet again while the
	// rebroadcast is pending (step S4): Proceed to resume waiting, or
	// Inhibit to cancel (step S5).
	OnDuplicate(r Reception) Action
}

// Scheme builds Judges. Implementations must be stateless across packets
// (all per-packet state lives in the Judge), so one Scheme value is
// shared by every host in a simulation.
type Scheme interface {
	// Name returns a short label used in experiment tables ("AC", "C=2").
	Name() string
	// NewJudge creates decision state for a packet first heard from
	// first, at the given host.
	NewJudge(host HostView, first Reception) Judge
	// NeedsHello reports whether the scheme requires the HELLO neighbor
	// discovery protocol to operate (the adaptive and neighbor-coverage
	// schemes do; the fixed-threshold baselines do not).
	NeedsHello() bool
	// NeedsPosition reports whether the scheme requires positioning
	// hardware (GPS), i.e. reads Reception.SenderPos or Position.
	NeedsPosition() bool
}

// CoverageResolution is the grid resolution used when the location-based
// schemes estimate multi-sender additional coverage. See
// geom.UncoveredFraction.
const CoverageResolution = 48
