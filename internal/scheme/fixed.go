package scheme

import (
	"fmt"

	"repro/internal/geom"
)

// --- Flooding ---

// Flooding is the baseline: every host rebroadcasts every packet exactly
// once, regardless of what it hears.
type Flooding struct{}

var _ Scheme = Flooding{}

// Name implements Scheme.
func (Flooding) Name() string { return "flooding" }

// NeedsHello implements Scheme.
func (Flooding) NeedsHello() bool { return false }

// NeedsPosition implements Scheme.
func (Flooding) NeedsPosition() bool { return false }

// NewJudge implements Scheme.
func (Flooding) NewJudge(HostView, Reception) Judge { return floodingJudge{} }

type floodingJudge struct{}

func (floodingJudge) Initial() Action              { return Proceed }
func (floodingJudge) OnDuplicate(Reception) Action { return Proceed }

// --- Counter-based ---

// Counter is the fixed-threshold counter-based scheme: a host counts how
// many times it has heard the packet (the first reception counts as 1)
// and cancels its rebroadcast once the counter reaches C.
type Counter struct {
	C int
}

var _ Scheme = Counter{}

// Name implements Scheme.
func (s Counter) Name() string { return fmt.Sprintf("C=%d", s.C) }

// NeedsHello implements Scheme.
func (Counter) NeedsHello() bool { return false }

// NeedsPosition implements Scheme.
func (Counter) NeedsPosition() bool { return false }

// NewJudge implements Scheme.
func (s Counter) NewJudge(HostView, Reception) Judge {
	return &counterJudge{c: 1, threshold: s.C}
}

type counterJudge struct {
	c         int
	threshold int
}

func (j *counterJudge) Initial() Action {
	if j.c >= j.threshold {
		return Inhibit
	}
	return Proceed
}

func (j *counterJudge) OnDuplicate(Reception) Action {
	j.c++
	if j.c >= j.threshold {
		return Inhibit
	}
	return Proceed
}

// --- Distance-based ---

// Distance is the fixed-threshold distance-based scheme: a host cancels
// its rebroadcast when the nearest host it heard the packet from is
// closer than D meters, because a nearby sender means little additional
// coverage. Distances are derived from advertised sender positions, so
// the scheme shares the location schemes' GPS assumption in this
// implementation (the original paper derives distance from signal
// strength; the decision rule is identical).
type Distance struct {
	D float64
}

var _ Scheme = Distance{}

// Name implements Scheme.
func (s Distance) Name() string { return fmt.Sprintf("D=%.0f", s.D) }

// NeedsHello implements Scheme.
func (Distance) NeedsHello() bool { return false }

// NeedsPosition implements Scheme.
func (Distance) NeedsPosition() bool { return true }

// NewJudge implements Scheme.
func (s Distance) NewJudge(host HostView, first Reception) Judge {
	return &distanceJudge{
		own:       host.Position(),
		threshold: s.D,
		minDist:   host.Position().Dist(first.SenderPos),
	}
}

type distanceJudge struct {
	own       geom.Point
	threshold float64
	minDist   float64
}

func (j *distanceJudge) Initial() Action {
	if j.minDist < j.threshold {
		return Inhibit
	}
	return Proceed
}

func (j *distanceJudge) OnDuplicate(r Reception) Action {
	if d := j.own.Dist(r.SenderPos); d < j.minDist {
		j.minDist = d
	}
	if j.minDist < j.threshold {
		return Inhibit
	}
	return Proceed
}

// --- Location-based ---

// Location is the fixed-threshold location-based scheme: using the
// advertised positions of every host it heard the packet from, a host
// computes the additional coverage (as a fraction of pi*r^2) its own
// rebroadcast would contribute, and cancels when that falls below A.
type Location struct {
	A float64
}

var _ Scheme = Location{}

// Name implements Scheme.
func (s Location) Name() string { return fmt.Sprintf("A=%.4f", s.A) }

// NeedsHello implements Scheme.
func (Location) NeedsHello() bool { return false }

// NeedsPosition implements Scheme.
func (Location) NeedsPosition() bool { return true }

// NewJudge implements Scheme.
func (s Location) NewJudge(host HostView, first Reception) Judge {
	j := &locationJudge{
		own:       host.Position(),
		radius:    host.Radius(),
		threshold: s.A,
	}
	j.senders = append(j.senders, first.SenderPos)
	return j
}

type locationJudge struct {
	own       geom.Point
	radius    float64
	threshold float64
	senders   []geom.Point
}

// coverage returns the uncovered fraction of the host's disk given the
// senders heard so far. The single-sender case uses the closed form; the
// general case uses grid estimation.
func (j *locationJudge) coverage() float64 {
	if len(j.senders) == 1 {
		return geom.AdditionalCoverageFraction(j.own.Dist(j.senders[0]), j.radius)
	}
	return geom.UncoveredFraction(j.own, j.senders, j.radius, CoverageResolution)
}

func (j *locationJudge) Initial() Action {
	if j.coverage() < j.threshold {
		return Inhibit
	}
	return Proceed
}

func (j *locationJudge) OnDuplicate(r Reception) Action {
	j.senders = append(j.senders, r.SenderPos)
	if j.coverage() < j.threshold {
		return Inhibit
	}
	return Proceed
}

// --- Probabilistic ---

// Probabilistic is the simplest randomized baseline from the MOBICOM '99
// paper: on first reception a host rebroadcasts with probability P and
// stays silent otherwise. P = 1 degenerates to flooding.
type Probabilistic struct {
	P float64
}

var _ Scheme = Probabilistic{}

// Name implements Scheme.
func (s Probabilistic) Name() string { return fmt.Sprintf("P=%.2f", s.P) }

// NeedsHello implements Scheme.
func (Probabilistic) NeedsHello() bool { return false }

// NeedsPosition implements Scheme.
func (Probabilistic) NeedsPosition() bool { return false }

// NewJudge implements Scheme.
func (s Probabilistic) NewJudge(_ HostView, first Reception) Judge {
	return probabilisticJudge{rebroadcast: first.U < s.P}
}

type probabilisticJudge struct {
	rebroadcast bool
}

func (j probabilisticJudge) Initial() Action {
	if j.rebroadcast {
		return Proceed
	}
	return Inhibit
}

func (probabilisticJudge) OnDuplicate(Reception) Action { return Proceed }
