package packet

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

// sampleFrames builds one representative frame of every kind through the
// public constructors, exercising each constructor's field logic on the
// way. Payloads are stripped (the codec rejects them by design).
func sampleFrames() map[string]*Frame {
	pos := geom.Point{X: 12.5, Y: -3.25}
	hello := NewHello(4, pos, []NodeID{7, 2, 9}, 2*sim.Second)
	hello.Recent = []BroadcastID{{Source: 1, Seq: 10}, {Source: 1, Seq: 11}, {Source: 3, Seq: 1}}
	hello.Bytes += HelloPerRecentBytes * len(hello.Recent)
	data := NewData(6, 1, 512, nil, pos)
	return map[string]*Frame{
		"broadcast": NewBroadcast(BroadcastID{Source: 5, Seq: 42}, 5, pos),
		"hello":     hello,
		"data":      data,
		"ack":       NewAck(3, 8, pos),
		"rts":       NewRTS(2, 6, 1500*sim.Microsecond, pos),
		"cts":       NewCTS(6, 2, 1200*sim.Microsecond, pos),
	}
}

func TestCodecRoundtrip(t *testing.T) {
	for name, f := range sampleFrames() {
		f := f
		t.Run(name, func(t *testing.T) {
			enc := Encode(f)
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, f) {
				t.Fatalf("roundtrip mismatch:\n in  %+v\n out %+v", f, got)
			}
		})
	}
}

func TestAppendEncodeExtends(t *testing.T) {
	f := NewAck(1, 2, geom.Point{})
	prefix := []byte{0xAA, 0xBB}
	buf := AppendEncode(prefix, f)
	if len(buf) <= len(prefix) || buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatalf("prefix not preserved: % x", buf[:4])
	}
	got, err := Decode(buf[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("roundtrip through AppendEncode mismatch: %+v", got)
	}
}

// TestDecodeTruncated feeds every proper prefix of every kind's encoding
// to Decode: each must fail with ErrTruncated, never panic or succeed.
func TestDecodeTruncated(t *testing.T) {
	for name, f := range sampleFrames() {
		enc := Encode(f)
		for n := 0; n < len(enc); n++ {
			_, err := Decode(enc[:n])
			if err == nil {
				t.Fatalf("%s: Decode accepted %d of %d bytes", name, n, len(enc))
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("%s truncated at %d: error %v is not ErrTruncated", name, n, err)
			}
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	for name, f := range sampleFrames() {
		enc := append(Encode(f), 0x00)
		if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Errorf("%s: trailing byte not rejected: %v", name, err)
		}
	}
}

func TestDecodeUnknownVersion(t *testing.T) {
	enc := Encode(NewAck(1, 2, geom.Point{}))
	enc[0] = 99
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version not rejected: %v", err)
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	enc := Encode(NewAck(1, 2, geom.Point{}))
	enc[1] = 0 // below KindBroadcast
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("kind 0 not rejected: %v", err)
	}
	enc[1] = uint8(KindCTS) + 1
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("kind beyond CTS not rejected: %v", err)
	}
}

func TestDecodeNegativeSize(t *testing.T) {
	enc := Encode(NewAck(1, 2, geom.Point{}))
	// The bytes field sits after version, kind, sender, and dest.
	for i := 10; i < 14; i++ {
		enc[i] = 0xFF
	}
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("negative size not rejected: %v", err)
	}
}

func TestDecodeDuplicateNeighbor(t *testing.T) {
	f := NewHello(4, geom.Point{}, []NodeID{7, 2, 7}, sim.Second)
	if _, err := Decode(Encode(f)); err == nil || !strings.Contains(err.Error(), "duplicate neighbor") {
		t.Fatalf("duplicate neighbor id not rejected: %v", err)
	}
}

func TestDecodeDuplicateRecent(t *testing.T) {
	f := NewHello(4, geom.Point{}, nil, sim.Second)
	f.Recent = []BroadcastID{{Source: 2, Seq: 5}, {Source: 2, Seq: 5}}
	if _, err := Decode(Encode(f)); err == nil || !strings.Contains(err.Error(), "duplicate recent") {
		t.Fatalf("duplicate recent id not rejected: %v", err)
	}
}

// Distinct sources with equal sequence numbers (and vice versa) are
// legitimate: only the full (source, seq) pair identifies a broadcast.
func TestDecodeRecentPairsNotConfused(t *testing.T) {
	f := NewHello(4, geom.Point{}, nil, sim.Second)
	f.Recent = []BroadcastID{{Source: 2, Seq: 5}, {Source: 3, Seq: 5}, {Source: 2, Seq: 6}}
	got, err := Decode(Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Recent, f.Recent) {
		t.Fatalf("Recent = %v, want %v", got.Recent, f.Recent)
	}
}

func TestEncodePanicsOnPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode accepted a frame with an opaque payload")
		}
	}()
	Encode(NewData(1, 2, 64, "opaque", geom.Point{}))
}

func TestEncodePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode accepted an unknown kind")
		}
	}()
	Encode(&Frame{Kind: Kind(200)})
}

// TestConstructorFields pins the field and size conventions of the
// control-frame constructors the codec tests build on.
func TestConstructorFields(t *testing.T) {
	pos := geom.Point{X: 1, Y: 2}
	ack := NewAck(3, 8, pos)
	if ack.Kind != KindAck || ack.Sender != 3 || ack.Dest != 8 || ack.Bytes != AckBytes || ack.SenderPos != pos {
		t.Errorf("NewAck: %+v", ack)
	}
	rts := NewRTS(2, 6, 9*sim.Microsecond, pos)
	if rts.Kind != KindRTS || rts.Bytes != RTSBytes || rts.NAV != 9*sim.Microsecond {
		t.Errorf("NewRTS: %+v", rts)
	}
	cts := NewCTS(6, 2, 7*sim.Microsecond, pos)
	if cts.Kind != KindCTS || cts.Bytes != CTSBytes || cts.NAV != 7*sim.Microsecond {
		t.Errorf("NewCTS: %+v", cts)
	}
	data := NewData(6, 1, 512, "body", pos)
	if data.Kind != KindData || data.Bytes != 512 || data.Payload != "body" {
		t.Errorf("NewData: %+v", data)
	}
}

func TestKindStringUnknown(t *testing.T) {
	if s := Kind(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("Kind(99).String() = %q", s)
	}
}
