package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/sim"
)

func TestDedupFirstThenDuplicate(t *testing.T) {
	d := NewDedupTable()
	id := BroadcastID{Source: 3, Seq: 17}
	if !d.Observe(id) {
		t.Fatal("first observation reported as duplicate")
	}
	if d.Observe(id) {
		t.Fatal("second observation reported as first")
	}
	if !d.Seen(id) {
		t.Fatal("Seen() = false after Observe")
	}
	if d.Seen(BroadcastID{Source: 3, Seq: 18}) {
		t.Fatal("unseen id reported seen")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDedupDistinguishesSourceAndSeq(t *testing.T) {
	d := NewDedupTable()
	ids := []BroadcastID{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	for _, id := range ids {
		if !d.Observe(id) {
			t.Fatalf("id %v wrongly deduped", id)
		}
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
}

func TestDedupProperty(t *testing.T) {
	// Observing any sequence of ids: Observe returns true exactly once
	// per distinct id.
	prop := func(sources []uint8, seqs []uint8) bool {
		n := len(sources)
		if len(seqs) < n {
			n = len(seqs)
		}
		d := NewDedupTable()
		firsts := make(map[BroadcastID]int)
		for i := 0; i < n; i++ {
			id := BroadcastID{Source: NodeID(sources[i]), Seq: uint32(seqs[i])}
			if d.Observe(id) {
				firsts[id]++
			}
		}
		for _, c := range firsts {
			if c != 1 {
				return false
			}
		}
		return d.Len() == len(firsts)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewBroadcastFields(t *testing.T) {
	id := BroadcastID{Source: 5, Seq: 9}
	pos := geom.Point{X: 10, Y: 20}
	f := NewBroadcast(id, 7, pos)
	if f.Kind != KindBroadcast || f.Sender != 7 || f.Broadcast != id || f.SenderPos != pos {
		t.Fatalf("broadcast frame fields wrong: %+v", f)
	}
	if f.Bytes != BroadcastBytes {
		t.Errorf("broadcast size = %d, want %d (paper parameter)", f.Bytes, BroadcastBytes)
	}
}

func TestNewHelloCopiesNeighbors(t *testing.T) {
	neigh := []NodeID{1, 2, 3}
	f := NewHello(9, geom.Point{}, neigh, 5*sim.Second)
	neigh[0] = 99
	if f.Neighbors[0] != 1 {
		t.Error("NewHello aliased the caller's neighbor slice")
	}
	if f.Bytes != HelloBaseBytes+3*HelloPerNeighborBytes {
		t.Errorf("hello size = %d", f.Bytes)
	}
	if f.HelloInterval != 5*sim.Second {
		t.Errorf("hello interval = %v", f.HelloInterval)
	}
	if f.Kind != KindHello {
		t.Errorf("kind = %v", f.Kind)
	}
}

func TestStringers(t *testing.T) {
	if NodeID(4).String() == "" || (BroadcastID{1, 2}).String() == "" {
		t.Error("empty stringer output")
	}
	if KindBroadcast.String() != "broadcast" || KindHello.String() != "hello" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind stringer empty")
	}
}
