package packet

import (
	"bytes"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder. Decode must
// never panic, and the format is canonical — every field is meaningful
// and fixed-width, so any input Decode accepts must re-encode to the
// exact same bytes.
func FuzzDecode(f *testing.F) {
	pos := geom.Point{X: 12.5, Y: -3.25}
	hello := NewHello(4, pos, []NodeID{7, 2, 9}, 2*sim.Second)
	hello.Recent = []BroadcastID{{Source: 1, Seq: 10}, {Source: 3, Seq: 1}}
	for _, fr := range []*Frame{
		NewBroadcast(BroadcastID{Source: 5, Seq: 42}, 5, pos),
		hello,
		NewData(6, 1, 512, nil, pos),
		NewAck(3, 8, pos),
		NewRTS(2, 6, 1500*sim.Microsecond, pos),
		NewCTS(6, 2, 1200*sim.Microsecond, pos),
	} {
		f.Add(Encode(fr))
	}
	f.Add([]byte{})
	f.Add([]byte{codecVersion, uint8(KindHello)})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			if fr != nil {
				t.Fatalf("Decode returned a frame alongside error %v", err)
			}
			return
		}
		re := Encode(fr)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  % x\n out % x", data, re)
		}
	})
}
