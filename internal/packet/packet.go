// Package packet defines the frames exchanged in the simulated MANET: the
// broadcast data packet the schemes propagate, and the periodic HELLO
// packet used for neighbor discovery. It also provides the
// (source, sequence) duplicate-detection table the paper assumes every
// host maintains.
package packet

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/sim"
)

// NodeID identifies a mobile host. IDs are dense small integers assigned
// by the network at construction.
type NodeID int32

// String formats the id for traces.
func (id NodeID) String() string { return fmt.Sprintf("host%d", int32(id)) }

// Kind discriminates frame types on the air.
type Kind uint8

// Frame kinds.
const (
	KindBroadcast Kind = iota + 1 // a broadcast data packet (or rebroadcast)
	KindHello                     // a neighbor-discovery HELLO
	KindData                      // an upper-layer protocol frame (routing, application)
	KindAck                       // a link-layer acknowledgment for unicast data
	KindRTS                       // request-to-send (unicast medium reservation)
	KindCTS                       // clear-to-send (reservation grant)
)

// DestBroadcast addresses a frame to every station in range.
const DestBroadcast NodeID = -1

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindBroadcast:
		return "broadcast"
	case KindHello:
		return "hello"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindRTS:
		return "rts"
	case KindCTS:
		return "cts"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// BroadcastID names one logical broadcast operation: the paper's
// (source ID, sequence number) tuple used for duplicate detection.
type BroadcastID struct {
	Source NodeID
	Seq    uint32
}

// String formats the id for traces.
func (b BroadcastID) String() string {
	return fmt.Sprintf("bcast(%v,#%d)", b.Source, b.Seq)
}

// Frame is one transmission on the air. Frames are immutable once
// created; receivers must not modify them.
type Frame struct {
	Kind   Kind
	Sender NodeID // the transmitting host of this frame (relayer for rebroadcasts)
	// Dest is the link-layer destination: DestBroadcast for all stations
	// in range, or a specific host for unicast data frames. The radio
	// delivers every intact frame to every in-range station; destination
	// filtering happens in the host layer, as on a real shared medium.
	Dest  NodeID
	Bytes int // frame payload length, bytes

	// Payload carries upper-layer protocol data for KindData frames
	// (e.g. routing headers). It must be treated as immutable.
	Payload any

	// Broadcast fields (Kind == KindBroadcast).
	Broadcast BroadcastID

	// SenderPos is the transmitter's position when the frame was sent.
	// The location-based schemes read it (the paper assumes GPS and that
	// senders stamp their location into the packet). Other schemes must
	// ignore it.
	SenderPos geom.Point

	// Hello fields (Kind == KindHello).
	// Neighbors carries the sender's one-hop neighbor set so receivers
	// can build two-hop knowledge, as in the neighbor-coverage scheme.
	Neighbors []NodeID
	// HelloInterval is the sender's current hello interval; with the
	// dynamic-hello-interval extension each host announces its own
	// interval so neighbors know when to expect the next HELLO.
	HelloInterval sim.Duration

	// NAV, on RTS/CTS frames, tells overhearing stations how long to
	// defer (the 802.11 network allocation vector duration).
	NAV sim.Duration

	// Recent, on HELLO frames, advertises broadcast ids the sender holds
	// (the reliable-broadcast repair extension): neighbors that missed
	// one can request a retransmission.
	Recent []BroadcastID
}

// Default frame sizes. The broadcast packet size is the paper's fixed
// parameter; the HELLO base size is our (documented) choice, with two
// bytes per advertised neighbor to model the neighbor list payload of
// the neighbor-coverage scheme.
const (
	BroadcastBytes        = 280
	HelloBaseBytes        = 64
	HelloPerNeighborBytes = 2
	HelloPerRecentBytes   = 6 // advertised broadcast id (id + seq)
)

// NewBroadcast builds a broadcast data frame.
func NewBroadcast(id BroadcastID, sender NodeID, pos geom.Point) *Frame {
	return &Frame{
		Kind:      KindBroadcast,
		Sender:    sender,
		Dest:      DestBroadcast,
		Bytes:     BroadcastBytes,
		Broadcast: id,
		SenderPos: pos,
	}
}

// NewHello builds a HELLO frame carrying the sender's neighbor set. The
// neighbor slice is copied so the caller may keep mutating its table.
func NewHello(sender NodeID, pos geom.Point, neighbors []NodeID, interval sim.Duration) *Frame {
	cp := make([]NodeID, len(neighbors))
	copy(cp, neighbors)
	return &Frame{
		Kind:          KindHello,
		Sender:        sender,
		Dest:          DestBroadcast,
		Bytes:         HelloBaseBytes + HelloPerNeighborBytes*len(cp),
		SenderPos:     pos,
		Neighbors:     cp,
		HelloInterval: interval,
	}
}

// Control frame sizes (IEEE 802.11: ACK and CTS are 14 bytes, RTS 20).
const (
	AckBytes = 14
	RTSBytes = 20
	CTSBytes = 14
)

// NewAck builds the link-layer acknowledgment for a unicast frame.
func NewAck(sender, dest NodeID, pos geom.Point) *Frame {
	return &Frame{
		Kind:      KindAck,
		Sender:    sender,
		Dest:      dest,
		Bytes:     AckBytes,
		SenderPos: pos,
	}
}

// NewRTS builds a request-to-send reserving the medium for nav.
func NewRTS(sender, dest NodeID, nav sim.Duration, pos geom.Point) *Frame {
	return &Frame{Kind: KindRTS, Sender: sender, Dest: dest, Bytes: RTSBytes,
		NAV: nav, SenderPos: pos}
}

// NewCTS builds a clear-to-send granting the medium for nav.
func NewCTS(sender, dest NodeID, nav sim.Duration, pos geom.Point) *Frame {
	return &Frame{Kind: KindCTS, Sender: sender, Dest: dest, Bytes: CTSBytes,
		NAV: nav, SenderPos: pos}
}

// NewData builds an upper-layer protocol frame. dest may be a specific
// host or DestBroadcast. The Broadcast id field is left zero; protocols
// that need duplicate detection carry their own identifiers in the
// payload.
func NewData(sender, dest NodeID, bytes int, payload any, pos geom.Point) *Frame {
	return &Frame{
		Kind:      KindData,
		Sender:    sender,
		Dest:      dest,
		Bytes:     bytes,
		Payload:   payload,
		SenderPos: pos,
	}
}

// DedupTable records which broadcast ids a host has already seen, so the
// host can tell first receptions from duplicates. The table only grows;
// at the simulation scales used here (tens of thousands of broadcasts)
// that is cheap, and it exactly matches the paper's requirement that a
// host "can detect duplicate broadcast packets". The zero value is ready
// to use — the map is allocated on first Observe — so tables can live in
// slab allocations.
type DedupTable struct {
	seen map[BroadcastID]bool
}

// NewDedupTable returns an empty table.
func NewDedupTable() *DedupTable {
	return &DedupTable{seen: make(map[BroadcastID]bool)}
}

// Observe records id and reports whether this was the first time it was
// seen (true = first reception).
func (t *DedupTable) Observe(id BroadcastID) bool {
	if t.seen[id] {
		return false
	}
	if t.seen == nil {
		t.seen = make(map[BroadcastID]bool)
	}
	t.seen[id] = true
	return true
}

// Seen reports whether id has been observed without recording anything.
func (t *DedupTable) Seen(id BroadcastID) bool { return t.seen[id] }

// Len returns the number of distinct broadcasts observed.
func (t *DedupTable) Len() int { return len(t.seen) }
