package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/sim"
)

// Wire codec: a compact big-endian binary encoding of Frame for traces,
// golden files, and fuzzing. The simulator itself passes frames by
// pointer — airtime is modeled from Frame.Bytes, not from this encoding
// — so the codec is a faithful serialization of the metadata, not the
// simulated byte layout. Payload (an opaque any used by upper-layer
// protocols) is not serialized; frames carrying one must be flattened by
// the protocol before encoding.
//
// Layout, all integers big-endian:
//
//	version  uint8  (codecVersion)
//	kind     uint8
//	sender   int32
//	dest     int32
//	bytes    uint32
//	posX     float64 (IEEE 754 bits)
//	posY     float64
//	then, by kind:
//	  broadcast:  source int32, seq uint32
//	  hello:      interval int64, nCount uint16, nCount * int32,
//	              rCount uint16, rCount * (int32, uint32)
//	  rts/cts:    nav int64
//	  ack/data:   nothing
//
// Decode rejects truncated input, trailing bytes, unknown versions and
// kinds, negative declared sizes, and HELLO frames whose neighbor or
// recent lists contain duplicate ids (a host announces a set; a frame
// with repeats was corrupted or forged).

// codecVersion is the first byte of every encoded frame.
const codecVersion = 1

// ErrTruncated reports input that ended inside a field.
var ErrTruncated = errors.New("packet: truncated frame")

// AppendEncode appends f's wire encoding to dst and returns the extended
// slice. It panics if f has a Payload (not serializable) or an unknown
// Kind — both are programming errors, not data errors.
func AppendEncode(dst []byte, f *Frame) []byte {
	if f.Payload != nil {
		panic("packet: cannot encode frame with opaque Payload")
	}
	switch f.Kind {
	case KindBroadcast, KindHello, KindData, KindAck, KindRTS, KindCTS:
	default:
		panic(fmt.Sprintf("packet: cannot encode unknown kind %d", uint8(f.Kind)))
	}
	dst = append(dst, codecVersion, uint8(f.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Sender))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Dest))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Bytes))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.SenderPos.X))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f.SenderPos.Y))
	switch f.Kind {
	case KindBroadcast:
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Broadcast.Source))
		dst = binary.BigEndian.AppendUint32(dst, f.Broadcast.Seq)
	case KindHello:
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.HelloInterval))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Neighbors)))
		for _, id := range f.Neighbors {
			dst = binary.BigEndian.AppendUint32(dst, uint32(id))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Recent)))
		for _, bid := range f.Recent {
			dst = binary.BigEndian.AppendUint32(dst, uint32(bid.Source))
			dst = binary.BigEndian.AppendUint32(dst, bid.Seq)
		}
	case KindRTS, KindCTS:
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.NAV))
	}
	return dst
}

// Encode returns f's wire encoding.
func Encode(f *Frame) []byte { return AppendEncode(nil, f) }

// decoder is a cursor over an encoded frame with truncation-aware reads.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) take(n int, field string) ([]byte, error) {
	if d.off+n > len(d.buf) {
		return nil, fmt.Errorf("%w: %s at offset %d (have %d of %d bytes)",
			ErrTruncated, field, d.off, len(d.buf)-d.off, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) u8(field string) (uint8, error) {
	b, err := d.take(1, field)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u16(field string) (uint16, error) {
	b, err := d.take(2, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (d *decoder) u32(field string) (uint32, error) {
	b, err := d.take(4, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (d *decoder) u64(field string) (uint64, error) {
	b, err := d.take(8, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Decode parses one encoded frame, validating structure and content. The
// whole input must be consumed: trailing bytes are an error, so a
// corrupted length prefix cannot silently drop data.
func Decode(data []byte) (*Frame, error) {
	d := &decoder{buf: data}
	ver, err := d.u8("version")
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("packet: unknown codec version %d", ver)
	}
	kindByte, err := d.u8("kind")
	if err != nil {
		return nil, err
	}
	kind := Kind(kindByte)
	switch kind {
	case KindBroadcast, KindHello, KindData, KindAck, KindRTS, KindCTS:
	default:
		return nil, fmt.Errorf("packet: unknown frame kind %d", kindByte)
	}
	f := &Frame{Kind: kind}
	sender, err := d.u32("sender")
	if err != nil {
		return nil, err
	}
	f.Sender = NodeID(int32(sender))
	dest, err := d.u32("dest")
	if err != nil {
		return nil, err
	}
	f.Dest = NodeID(int32(dest))
	size, err := d.u32("bytes")
	if err != nil {
		return nil, err
	}
	if size > math.MaxInt32 {
		return nil, fmt.Errorf("packet: negative frame size %d", int32(size))
	}
	f.Bytes = int(size)
	xbits, err := d.u64("posX")
	if err != nil {
		return nil, err
	}
	ybits, err := d.u64("posY")
	if err != nil {
		return nil, err
	}
	f.SenderPos = geom.Point{X: math.Float64frombits(xbits), Y: math.Float64frombits(ybits)}

	switch kind {
	case KindBroadcast:
		src, err := d.u32("broadcast source")
		if err != nil {
			return nil, err
		}
		seq, err := d.u32("broadcast seq")
		if err != nil {
			return nil, err
		}
		f.Broadcast = BroadcastID{Source: NodeID(int32(src)), Seq: seq}
	case KindHello:
		iv, err := d.u64("hello interval")
		if err != nil {
			return nil, err
		}
		f.HelloInterval = sim.Duration(iv)
		nCount, err := d.u16("neighbor count")
		if err != nil {
			return nil, err
		}
		if nCount > 0 {
			f.Neighbors = make([]NodeID, 0, nCount)
		}
		seen := make(map[NodeID]bool, nCount)
		for i := 0; i < int(nCount); i++ {
			v, err := d.u32("neighbor id")
			if err != nil {
				return nil, err
			}
			id := NodeID(int32(v))
			if seen[id] {
				return nil, fmt.Errorf("packet: duplicate neighbor id %v in hello", id)
			}
			seen[id] = true
			f.Neighbors = append(f.Neighbors, id)
		}
		rCount, err := d.u16("recent count")
		if err != nil {
			return nil, err
		}
		if rCount > 0 {
			f.Recent = make([]BroadcastID, 0, rCount)
		}
		seenBid := make(map[BroadcastID]bool, rCount)
		for i := 0; i < int(rCount); i++ {
			src, err := d.u32("recent source")
			if err != nil {
				return nil, err
			}
			seq, err := d.u32("recent seq")
			if err != nil {
				return nil, err
			}
			bid := BroadcastID{Source: NodeID(int32(src)), Seq: seq}
			if seenBid[bid] {
				return nil, fmt.Errorf("packet: duplicate recent id %v in hello", bid)
			}
			seenBid[bid] = true
			f.Recent = append(f.Recent, bid)
		}
	case KindRTS, KindCTS:
		nav, err := d.u64("nav")
		if err != nil {
			return nil, err
		}
		f.NAV = sim.Duration(nav)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("packet: %d trailing bytes after %v frame", len(data)-d.off, kind)
	}
	return f, nil
}
