package packet

import (
	"fmt"
	"sort"
)

// Snapshot returns the broadcast ids the table has observed, in
// canonical ascending (source, seq) order for the checkpoint codec.
func (t *DedupTable) Snapshot() []BroadcastID {
	ids := make([]BroadcastID, 0, len(t.seen))
	for id := range t.seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Source != ids[j].Source {
			return ids[i].Source < ids[j].Source
		}
		return ids[i].Seq < ids[j].Seq
	})
	return ids
}

// Restore fills an empty table with a checkpointed id set.
func (t *DedupTable) Restore(ids []BroadcastID) error {
	if len(t.seen) != 0 {
		return fmt.Errorf("packet: restore into a non-empty dedup table")
	}
	if t.seen == nil {
		t.seen = make(map[BroadcastID]bool, len(ids))
	}
	for _, id := range ids {
		if t.seen[id] {
			return fmt.Errorf("packet: duplicate id %v in dedup restore", id)
		}
		t.seen[id] = true
	}
	return nil
}
