package packet

import (
	"fmt"
	"slices"
)

// Snapshot returns the broadcast ids the table has observed, in
// canonical ascending (source, seq) order for the checkpoint codec.
func (t *DedupTable) Snapshot() []BroadcastID {
	return t.SnapshotAppend(make([]BroadcastID, 0, len(t.seen)))
}

// SnapshotAppend is Snapshot appending into a caller-owned buffer, for
// checkpoint documents that pool their backing arrays across snapshots.
func (t *DedupTable) SnapshotAppend(ids []BroadcastID) []BroadcastID {
	base := len(ids)
	for id := range t.seen {
		ids = append(ids, id)
	}
	tail := ids[base:]
	slices.SortFunc(tail, func(a, b BroadcastID) int {
		if a.Source != b.Source {
			return int(a.Source) - int(b.Source)
		}
		return int(a.Seq) - int(b.Seq)
	})
	return ids
}

// Restore fills an empty table with a checkpointed id set.
func (t *DedupTable) Restore(ids []BroadcastID) error {
	if len(t.seen) != 0 {
		return fmt.Errorf("packet: restore into a non-empty dedup table")
	}
	if t.seen == nil {
		t.seen = make(map[BroadcastID]bool, len(ids))
	}
	for _, id := range ids {
		if t.seen[id] {
			return fmt.Errorf("packet: duplicate id %v in dedup restore", id)
		}
		t.seen[id] = true
	}
	return nil
}
