package sim

import (
	"container/heap"
	"fmt"
)

// Event is a handle to a scheduled callback. It can be cancelled any time
// before it fires; cancelling an already-fired or already-cancelled event
// is a no-op. Event handles are only valid for the Scheduler that created
// them.
//
// Pooling contract: the default scheduler recycles an Event as soon as
// its callback returns (or its cancellation is observed), so a handle
// must not be retained past the event firing — a held pointer may come
// back as a different, live event. Models that keep a handle in a field
// must clear the field inside the callback (or rely on the fact that the
// callback overwrites it with the next timer). Reading Cancelled/Fired
// on a stale handle after the owning scheduler has reused it is a logic
// error the type cannot detect.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	runner Runner // fires when fn is nil
	index  int    // position in the legacy heap, -1 when not queued
	fired  bool
	cancel bool
}

// Runner is the allocation-free alternative to a func() callback: an
// object scheduled via ScheduleRunner/AfterRunner (or the shard
// variants) has its RunEvent method invoked at fire time. Binding a
// method value or closure per schedule call costs one heap allocation;
// an interface value of an existing object costs none, which is what
// lets per-host recurring timers (mobility turns, HELLO beacons, MAC
// attempts) schedule without allocating.
type Runner interface{ RunEvent() }

// At returns the simulated time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// Scheduler is a deterministic discrete-event executor. Events scheduled
// for the same instant fire in FIFO order of scheduling, which makes runs
// reproducible. Scheduler is not safe for concurrent use; a simulation is
// single-threaded by design (parallelism belongs at the replica level).
//
// Two queue implementations sit behind the same interface: the default
// ladder queue (amortized O(1), lazy tombstone cancellation, pooled Event
// records) and the legacy binary heap (NewHeapScheduler; O(log n), eager
// heap.Remove cancellation, one allocation per event). Both fire live
// events in exactly (time, seq) order, so a model run is byte-identical
// under either — the heap is kept as the correctness oracle for the
// ladder's equivalence tests.
type Scheduler struct {
	now      Time
	seq      uint64
	executed uint64

	legacy bool
	queue  eventHeap // legacy mode only
	lq     ladder    // default mode only
	live   int       // pending non-cancelled events (default mode)

	// Shard calendar wheels (default mode, optional): per-shard queues for
	// shard-local timers, merged with the ladder at pop time by the global
	// (time, seq) key. Because seq is assigned from the single shared
	// counter at Schedule time and every queue pops in strict (time, seq)
	// order, the merged execution sequence is identical to routing all
	// events through the ladder alone.
	wheels []shardWheel

	// Parallel-drain lanes (one per wheel): between BeginParallelDrain and
	// EndParallelDrain each wheel may be drained by its own goroutine
	// (DrainShardUntil), so every mutable resource a drain touches — clock,
	// sequence counter, executed/live accounting, event free-list — has a
	// lane-local copy here, folded back into the shared fields at the
	// barrier. Lane sequence counters live in disjoint high-bit namespaces
	// (laneSeqBase), which keeps (at, seq) keys unique and deterministic
	// without a shared atomic counter; see BeginParallelDrain for the
	// ordering argument.
	lanes    []laneState
	parallel bool

	// Speculative-window lanes (spec.go): between BeginSpec and
	// CommitSpec the window's events run on per-band lanes with
	// provisional sequence numbers, validated and renumbered at commit.
	spec       bool
	specLanes  []specLane
	extractBuf []*Event
	specIdx    []int

	// Event free-list (default mode): recycled records are reused by the
	// next Schedule, so steady-state operation allocates nothing. A plain
	// slice, not sync.Pool — the scheduler is single-threaded, and
	// sync.Pool's per-P caches and GC emptying would cost more than they
	// give.
	free       []*Event
	poolHits   uint64
	poolMisses uint64

	// Tick hook: an observation callback fired from Step whenever the
	// clock crosses the next tick boundary. Unlike a scheduled event it
	// does not enter the queue, does not count toward Executed, and
	// cannot shift event ordering — which is what lets telemetry
	// sampling run without perturbing a deterministic simulation.
	hook         func()
	hookInterval Duration
	hookNext     Time

	// Audit hook: observes every event firing with its (time, seq) key,
	// before the callback runs. Like the tick hook it is pure
	// observation (the invariant auditor checks monotonicity and FIFO
	// order through it); when nil the cost is one branch per Step.
	audit func(at Time, seq uint64)
}

// NewScheduler returns a ladder-queue scheduler with the clock at time
// zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// NewHeapScheduler returns a scheduler backed by the legacy binary heap
// with eager cancellation and per-event allocation. It exists as the
// independent oracle for equivalence tests and as an escape hatch
// (manet.Config.DisableLadderQueue); models observe identical behavior
// under either scheduler.
func NewHeapScheduler() *Scheduler {
	return &Scheduler{legacy: true}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns the number of events that have fired so far. It is
// useful for progress accounting and benchmarks.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events currently queued and not
// cancelled.
func (s *Scheduler) Pending() int {
	if s.legacy {
		return len(s.queue)
	}
	return s.live
}

// PoolStats returns how many Schedule calls were served from the event
// free-list versus fresh allocations. The legacy heap scheduler never
// pools, so it reports zero hits.
func (s *Scheduler) PoolStats() (hits, misses uint64) { return s.poolHits, s.poolMisses }

// PoolHitRate returns the fraction of Schedule calls served by the
// free-list, in [0, 1]; zero before any event has been scheduled.
func (s *Scheduler) PoolHitRate() float64 {
	total := s.poolHits + s.poolMisses
	if total == 0 {
		return 0
	}
	return float64(s.poolHits) / float64(total)
}

// alloc produces a cleared Event record, reusing the free-list when
// possible. Flags are cleared here rather than at recycle time so a
// stale handle keeps reporting its final Cancelled/Fired state until the
// record is actually reused.
func (s *Scheduler) alloc(at Time, fn func()) *Event {
	e := s.allocAny(at)
	e.fn = fn
	return e
}

func (s *Scheduler) allocAny(at Time) *Event {
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.poolHits++
	} else {
		e = &Event{}
		s.poolMisses++
	}
	if s.seq >= laneSeqBase(0) {
		panic("sim: shared sequence counter exhausted its namespace")
	}
	e.at = at
	e.seq = s.seq
	e.index = -1
	e.fired = false
	e.cancel = false
	return e
}

// recycleInto returns a dead event record to the given free-list. The
// callback is dropped immediately so the pool does not pin closures (and
// whatever they capture) until reuse.
func recycleInto(free *[]*Event, e *Event) {
	e.fn = nil
	e.runner = nil
	*free = append(*free, e)
}

// recycle returns a dead event record to the shared free-list.
func (s *Scheduler) recycle(e *Event) { recycleInto(&s.free, e) }

// assertSequential panics when an API reserved to the scheduler's owning
// goroutine is used while a parallel drain is active.
func (s *Scheduler) assertSequential(api string) {
	if s.parallel {
		panic("sim: " + api + " during a parallel drain")
	}
	if s.spec {
		panic("sim: " + api + " during a speculative window")
	}
}

// Schedule queues fn to run at the absolute time at. Scheduling in the
// past (before Now) panics: it always indicates a logic error in a model,
// and silently clamping would hide it.
func (s *Scheduler) Schedule(at Time, fn func()) *Event {
	s.assertSequential("Schedule")
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	s.seq++
	if s.legacy {
		e := &Event{at: at, seq: s.seq, fn: fn, index: -1}
		heap.Push(&s.queue, e)
		return e
	}
	e := s.alloc(at, fn)
	s.lq.insert(e)
	s.live++
	return e
}

// After queues fn to run d after the current time. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	return s.Schedule(s.now.Add(d), fn)
}

// ScheduleRunner queues r's RunEvent to fire at the absolute time at.
// Unlike Schedule it performs no callback allocation: the interface
// value of an already-live object is stored directly in the event
// record.
func (s *Scheduler) ScheduleRunner(at Time, r Runner) *Event {
	s.assertSequential("ScheduleRunner")
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if r == nil {
		panic("sim: schedule with nil runner")
	}
	s.seq++
	if s.legacy {
		e := &Event{at: at, seq: s.seq, runner: r, index: -1}
		heap.Push(&s.queue, e)
		return e
	}
	e := s.allocAny(at)
	e.runner = r
	s.lq.insert(e)
	s.live++
	return e
}

// AfterRunner queues r's RunEvent to fire d after the current time.
func (s *Scheduler) AfterRunner(d Duration, r Runner) *Event {
	return s.ScheduleRunner(s.now.Add(d), r)
}

// ScheduleShardRunner is ScheduleRunner onto the given shard's wheel. It
// is the one scheduling entry point that stays usable during a parallel
// drain: the drain goroutine that owns the shard may reschedule onto its
// own wheel, drawing the event record and sequence number from its lane.
func (s *Scheduler) ScheduleShardRunner(shard int, at Time, r Runner) *Event {
	if shard < 0 || shard >= len(s.wheels) {
		panic(fmt.Sprintf("sim: ScheduleShard shard %d with %d wheels", shard, len(s.wheels)))
	}
	if r == nil {
		panic("sim: schedule with nil runner")
	}
	if s.parallel {
		ln := &s.lanes[shard]
		if at < ln.now {
			panic(fmt.Sprintf("sim: schedule at %v before lane now %v", at, ln.now))
		}
		e := ln.alloc(at)
		e.runner = r
		s.wheels[shard].insert(e)
		ln.liveDelta++
		return e
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	e := s.allocAny(at)
	e.runner = r
	s.wheels[shard].insert(e)
	s.live++
	return e
}

// AfterShardRunner is AfterRunner onto the given shard's wheel, relative
// to the clock the shard observes (the lane clock during a parallel
// drain).
func (s *Scheduler) AfterShardRunner(shard int, d Duration, r Runner) *Event {
	return s.ScheduleShardRunner(shard, s.NowFor(shard).Add(d), r)
}

// ConfigureShards equips the scheduler with n per-shard calendar wheels
// of the given bucket width, enabling ScheduleShard. It must be called
// once, before any events are routed to shards; the legacy heap
// scheduler does not support shard queues (it exists as the sequential
// oracle, and the oracle never shards).
func (s *Scheduler) ConfigureShards(n int, width Duration) {
	if s.legacy {
		panic("sim: shard queues require the ladder scheduler")
	}
	if n <= 0 {
		panic("sim: ConfigureShards with non-positive shard count")
	}
	if width <= 0 {
		panic("sim: ConfigureShards with non-positive bucket width")
	}
	if len(s.wheels) != 0 {
		panic("sim: shard queues already configured")
	}
	s.wheels = make([]shardWheel, n)
	for i := range s.wheels {
		s.wheels[i].width = width
	}
}

// Shards returns the number of configured shard wheels (zero when the
// scheduler runs purely off the central ladder).
func (s *Scheduler) Shards() int { return len(s.wheels) }

// ScheduleShard queues fn at the absolute time at on the given shard's
// calendar wheel. Ordering is indistinguishable from Schedule — the event
// draws its sequence number from the same counter and the merged pop
// fires strictly by (time, seq) — only the queue data structure differs.
func (s *Scheduler) ScheduleShard(shard int, at Time, fn func()) *Event {
	s.assertSequential("ScheduleShard")
	if shard < 0 || shard >= len(s.wheels) {
		panic(fmt.Sprintf("sim: ScheduleShard shard %d with %d wheels", shard, len(s.wheels)))
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	s.seq++
	e := s.alloc(at, fn)
	s.wheels[shard].insert(e)
	s.live++
	return e
}

// AfterShard queues fn to run d after the current time on the given
// shard's wheel.
func (s *Scheduler) AfterShard(shard int, d Duration, fn func()) *Event {
	return s.ScheduleShard(shard, s.now.Add(d), fn)
}

// ShardHead returns the timestamp of the given shard wheel's earliest
// pending event, or false if the wheel is empty. The invariant auditor
// reads the heads at shard-barrier boundaries: a head behind the clock
// would mean the merged pop skipped an event.
func (s *Scheduler) ShardHead(shard int) (Time, bool) {
	if shard < 0 || shard >= len(s.wheels) {
		panic(fmt.Sprintf("sim: ShardHead shard %d with %d wheels", shard, len(s.wheels)))
	}
	e, ok := s.wheels[shard].peek(s)
	if !ok {
		return 0, false
	}
	return e.at, true
}

// laneState is the per-wheel resource set a concurrent shard drain runs
// on. Everything here is touched only by the lane's own drain goroutine
// while a parallel drain is active, and only by the scheduler's single
// owning goroutine otherwise.
type laneState struct {
	now        Time
	seq        uint64 // next sequence number, pre-namespaced by laneSeqBase
	executed   uint64 // events fired on this lane, folded at EndParallelDrain
	liveDelta  int    // scheduled minus fired since the last fold
	free       []*Event
	poolHits   uint64
	poolMisses uint64
}

// laneSeqShift partitions the 64-bit sequence space: the shared counter
// owns [0, 2^48) and lane i owns [(i+1)<<48, (i+2)<<48). 2^48 events on
// one counter is orders of magnitude beyond any run this simulator can
// hold in memory, and allocAny panics if the shared counter ever reaches
// the first lane namespace.
const laneSeqShift = 48

func laneSeqBase(lane int) uint64 { return (uint64(lane) + 1) << laneSeqShift }

// alloc produces a cleared event record from the lane's own free-list
// with the lane's next namespaced sequence number.
func (ln *laneState) alloc(at Time) *Event {
	var e *Event
	if n := len(ln.free); n > 0 {
		e = ln.free[n-1]
		ln.free[n-1] = nil
		ln.free = ln.free[:n-1]
		ln.poolHits++
	} else {
		e = &Event{}
		ln.poolMisses++
	}
	ln.seq++
	e.at = at
	e.seq = ln.seq
	e.index = -1
	e.fired = false
	e.cancel = false
	return e
}

// NowFor returns the clock a callback on the given shard observes: the
// lane clock while a parallel drain is active (each lane's clock tracks
// the event it is firing), the shared clock otherwise. Shard -1 (the
// central ladder) always reads the shared clock.
func (s *Scheduler) NowFor(shard int) Time {
	if s.parallel && shard >= 0 && shard < len(s.lanes) {
		return s.lanes[shard].now
	}
	return s.now
}

// BeginParallelDrain opens a parallel drain phase: until
// EndParallelDrain, each shard wheel may be drained concurrently by its
// own goroutine via DrainShardUntil, and ScheduleShardRunner switches to
// lane-local allocation. The central ladder and every non-shard API are
// frozen — using them mid-drain panics.
//
// Why this preserves the oracle's observable behavior even though lane
// sequence numbers differ from the shared counter's: the only events a
// parallel drain may execute or schedule are shard-local timers whose
// callbacks touch nothing outside their own host (the mobility-turn
// contract the manet engine enforces). Two such events never share
// state, so their mutual order — the only thing a sequence number
// decides between same-instant events — cannot influence any result;
// and events on the same wheel still fire in strict (at, seq) order, so
// each host's own timer chain keeps its exact oracle order. Events with
// distinct timestamps order by time alone, unchanged.
func (s *Scheduler) BeginParallelDrain() {
	switch {
	case s.legacy:
		panic("sim: parallel drain requires the ladder scheduler")
	case len(s.wheels) == 0:
		panic("sim: parallel drain without configured shard wheels")
	case s.parallel:
		panic("sim: parallel drain already active")
	case s.audit != nil:
		panic("sim: parallel drain under the audit hook (it must observe every event in merged order)")
	}
	if s.lanes == nil {
		s.lanes = make([]laneState, len(s.wheels))
		for i := range s.lanes {
			s.lanes[i].seq = laneSeqBase(i)
		}
	}
	for i := range s.lanes {
		s.lanes[i].now = s.now
	}
	s.parallel = true
}

// DrainShardUntil fires the given wheel's events in (at, seq) order
// strictly before deadline, entirely on lane-local state. Events exactly
// at the deadline are left queued for the sequential merged drain that
// follows the barrier — the strict bound is what guarantees a recurring
// timer with period >= the window length fires at most once per drain.
// It must only be called between BeginParallelDrain and
// EndParallelDrain, at most once per shard per phase, from at most one
// goroutine per shard. A callback may reschedule onto its own shard's
// wheel (and nothing else). It returns the number of events fired.
func (s *Scheduler) DrainShardUntil(shard int, deadline Time) uint64 {
	if !s.parallel {
		panic("sim: DrainShardUntil outside a parallel drain")
	}
	ln := &s.lanes[shard]
	w := &s.wheels[shard]
	var fired uint64
	for {
		e, ok := w.peekInto(&ln.free)
		if !ok || e.at >= deadline {
			break
		}
		w.take()
		ln.now = e.at
		e.fired = true
		fired++
		ln.liveDelta--
		if fn := e.fn; fn != nil {
			fn()
		} else {
			e.runner.RunEvent()
		}
		recycleInto(&ln.free, e)
	}
	if ln.now < deadline {
		ln.now = deadline
	}
	ln.executed += fired
	return fired
}

// EndParallelDrain closes a parallel drain phase and folds every lane's
// accounting back into the shared counters, so Pending, Executed, and
// PoolStats stay coherent for the sequential phase that follows. Lane
// free-lists stay lane-local: each wheel's recycled events feed its own
// future inserts, which is exactly where they will be needed.
func (s *Scheduler) EndParallelDrain() {
	if !s.parallel {
		panic("sim: EndParallelDrain without a begin")
	}
	s.parallel = false
	for i := range s.lanes {
		ln := &s.lanes[i]
		s.executed += ln.executed
		ln.executed = 0
		s.live += ln.liveDelta
		ln.liveDelta = 0
		s.poolHits += ln.poolHits
		s.poolMisses += ln.poolMisses
		ln.poolHits, ln.poolMisses = 0, 0
	}
}

// Reserve pre-populates the event free-list with n records allocated as
// a single slab, so a construction burst of n Schedule calls performs
// one allocation instead of n. It returns the slab so an arena can
// retain it for a later scheduler's ReserveFrom. The legacy heap
// scheduler does not pool and ignores the call (returning nil).
func (s *Scheduler) Reserve(n int) []Event {
	if s.legacy || n <= 0 {
		return nil
	}
	slab := make([]Event, n)
	s.ReserveFrom(slab)
	return slab
}

// ReserveFrom pre-populates the free-list from a caller-owned slab —
// typically one a previous scheduler's Reserve returned, retained
// across simulations by an arena. The slab is cleared first, so stale
// callbacks from its previous life are dropped before any record can
// fire.
func (s *Scheduler) ReserveFrom(slab []Event) {
	if s.legacy || len(slab) == 0 {
		return
	}
	clear(slab)
	if free := len(s.free) + len(slab); cap(s.free) < free {
		grown := make([]*Event, len(s.free), free)
		copy(grown, s.free)
		s.free = grown
	}
	for i := range slab {
		s.free = append(s.free, &slab[i])
	}
}

// Cancel marks a pending event so it will never fire. It is safe to call
// multiple times and on already-fired events. The legacy heap removes the
// event eagerly; the ladder queue tombstones it in place and recycles it
// when the surrounding bucket is next consumed.
func (s *Scheduler) Cancel(e *Event) {
	s.assertSequential("Cancel")
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	if s.legacy {
		if e.index >= 0 {
			heap.Remove(&s.queue, e.index)
		}
		return
	}
	s.live--
}

// Drain cancels every pending event and empties the queue, retaining
// backing storage for reuse. It returns the number of live events
// discarded. The clock, sequence counter, and executed count are
// unchanged, so a scheduler can be re-armed and run again after a drain.
func (s *Scheduler) Drain() int {
	if s.legacy {
		n := len(s.queue)
		for _, e := range s.queue {
			e.cancel = true
			e.index = -1
		}
		s.queue = s.queue[:0]
		return n
	}
	n := s.live
	s.lq.drain(s)
	for i := range s.wheels {
		s.wheels[i].drain(s)
	}
	s.live = 0
	return n
}

// SetTickHook installs fn to run inside Step each time the clock
// reaches or passes the next multiple-of-interval boundary after the
// point of installation, before that step's event fires. The hook must
// only read simulation state: it runs outside the event queue, so
// scheduling, cancelling, or mutating model state from it would break
// the guarantee that hooked and hookless runs execute identically.
// A nil fn removes the hook.
func (s *Scheduler) SetTickHook(interval Duration, fn func()) {
	if fn == nil {
		s.hook = nil
		return
	}
	if interval <= 0 {
		panic(fmt.Sprintf("sim: tick hook interval %v must be positive", interval))
	}
	s.hook = fn
	s.hookInterval = interval
	s.hookNext = s.now.Add(interval)
}

// SetAuditHook installs fn to observe every event firing (its scheduled
// time and sequence number), before the event's callback runs. The hook
// must only read simulation state; the invariant auditor uses it to
// verify clock monotonicity and same-instant FIFO order. A nil fn
// removes the hook.
func (s *Scheduler) SetAuditHook(fn func(at Time, seq uint64)) { s.audit = fn }

// Step fires the single earliest pending event, advancing the clock to
// its timestamp. It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	s.assertSequential("Step")
	var e *Event
	switch {
	case s.legacy:
		e = s.popLegacy()
	case len(s.wheels) == 0:
		e = s.lq.pop(s)
	default:
		e = s.popMerged()
	}
	if e == nil {
		return false
	}
	s.now = e.at
	if s.hook != nil && e.at >= s.hookNext {
		s.hook()
		s.hookNext = e.at.Add(s.hookInterval)
	}
	if s.audit != nil {
		s.audit(e.at, e.seq)
	}
	e.fired = true
	s.executed++
	if s.legacy {
		if e.fn != nil {
			e.fn()
		} else {
			e.runner.RunEvent()
		}
		return true
	}
	s.live--
	if fn := e.fn; fn != nil {
		fn()
	} else {
		e.runner.RunEvent()
	}
	// Recycled only after the callback returns: the callback may read its
	// own handle (e.g. to clear a stored timer field) and must still see
	// this firing, not a reused record.
	s.recycle(e)
	return true
}

// popMerged removes and returns the globally earliest live event across
// the ladder and every shard wheel. Each source pops in strict (time,
// seq) order, so taking the minimum head by the same key reproduces the
// single-queue execution sequence exactly.
func (s *Scheduler) popMerged() *Event {
	best, src := (*Event)(nil), -1
	if e, ok := s.lq.peekEvent(s); ok {
		best = e
	}
	for i := range s.wheels {
		e, ok := s.wheels[i].peek(s)
		if !ok {
			continue
		}
		if best == nil || e.at < best.at || (e.at == best.at && e.seq < best.seq) {
			best, src = e, i
		}
	}
	if best == nil {
		return nil
	}
	if src < 0 {
		return s.lq.pop(s) // pops the event peekEvent just returned
	}
	s.wheels[src].take()
	return best
}

// peekNext returns the timestamp of the next event Step would fire.
func (s *Scheduler) peekNext() (Time, bool) {
	switch {
	case s.legacy:
		if len(s.queue) > 0 {
			return s.queue[0].at, true
		}
		return 0, false
	case len(s.wheels) == 0:
		return s.lq.peek(s)
	}
	var (
		bestAt  Time
		bestSeq uint64
		ok      bool
	)
	if e, lok := s.lq.peekEvent(s); lok {
		bestAt, bestSeq, ok = e.at, e.seq, true
	}
	for i := range s.wheels {
		e, wok := s.wheels[i].peek(s)
		if !wok {
			continue
		}
		if !ok || e.at < bestAt || (e.at == bestAt && e.seq < bestSeq) {
			bestAt, bestSeq, ok = e.at, e.seq, true
		}
	}
	return bestAt, ok
}

func (s *Scheduler) popLegacy() *Event {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		return e
	}
	return nil
}

// RunUntil fires events in order until the queue is empty or the next
// event is strictly after deadline. The clock finishes at the later of
// its current value and deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	if s.legacy {
		for len(s.queue) > 0 && s.queue[0].at <= deadline {
			s.Step()
		}
	} else {
		for {
			at, ok := s.peekNext()
			if !ok || at > deadline {
				break
			}
			s.Step()
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run fires events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// eventHeap orders events by (time, sequence) so same-instant events fire
// in scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
