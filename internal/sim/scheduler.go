package sim

import (
	"container/heap"
	"fmt"
)

// Event is a handle to a scheduled callback. It can be cancelled any time
// before it fires; cancelling an already-fired or already-cancelled event
// is a no-op. Event handles are only valid for the Scheduler that created
// them.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // position in the heap, -1 when not queued
	fired  bool
	cancel bool
}

// At returns the simulated time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancel }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// Scheduler is a deterministic discrete-event executor. Events scheduled
// for the same instant fire in FIFO order of scheduling, which makes runs
// reproducible. Scheduler is not safe for concurrent use; a simulation is
// single-threaded by design (parallelism belongs at the replica level).
type Scheduler struct {
	now      Time
	seq      uint64
	queue    eventHeap
	executed uint64

	// Tick hook: an observation callback fired from Step whenever the
	// clock crosses the next tick boundary. Unlike a scheduled event it
	// does not enter the queue, does not count toward Executed, and
	// cannot shift event ordering — which is what lets telemetry
	// sampling run without perturbing a deterministic simulation.
	hook         func()
	hookInterval Duration
	hookNext     Time
}

// NewScheduler returns a scheduler with the clock at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns the number of events that have fired so far. It is
// useful for progress accounting and benchmarks.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Schedule queues fn to run at the absolute time at. Scheduling in the
// past (before Now) panics: it always indicates a logic error in a model,
// and silently clamping would hide it.
func (s *Scheduler) Schedule(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, e)
	return e
}

// After queues fn to run d after the current time. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	return s.Schedule(s.now.Add(d), fn)
}

// Cancel removes a pending event so it will never fire. It is safe to
// call multiple times and on already-fired events.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// SetTickHook installs fn to run inside Step each time the clock
// reaches or passes the next multiple-of-interval boundary after the
// point of installation, before that step's event fires. The hook must
// only read simulation state: it runs outside the event queue, so
// scheduling, cancelling, or mutating model state from it would break
// the guarantee that hooked and hookless runs execute identically.
// A nil fn removes the hook.
func (s *Scheduler) SetTickHook(interval Duration, fn func()) {
	if fn == nil {
		s.hook = nil
		return
	}
	if interval <= 0 {
		panic(fmt.Sprintf("sim: tick hook interval %v must be positive", interval))
	}
	s.hook = fn
	s.hookInterval = interval
	s.hookNext = s.now.Add(interval)
}

// Step fires the single earliest pending event, advancing the clock to
// its timestamp. It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		if s.hook != nil && e.at >= s.hookNext {
			s.hook()
			s.hookNext = e.at.Add(s.hookInterval)
		}
		e.fired = true
		s.executed++
		e.fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the queue is empty or the next
// event is strictly after deadline. The clock finishes at the later of
// its current value and deadline.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run fires events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// eventHeap orders events by (time, sequence) so same-instant events fire
// in scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
