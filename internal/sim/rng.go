package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** by Blackman and Vigna). Every stochastic component of the
// simulator owns its own RNG stream, derived from the simulation seed via
// Fork, so that adding randomness to one component never perturbs the
// random sequence observed by another. That property keeps comparative
// experiments (scheme A vs. scheme B on the "same" workload) honest.
//
// The zero value is not usable; construct streams with NewRNG or Fork.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed-expansion state and returns the next
// 64-bit value. It is used only to initialize and fork streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Distinct seeds yield
// statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives a new independent stream from r, keyed by label. Forking
// with distinct labels produces distinct streams; forking with the same
// label twice produces identical streams (which is occasionally useful
// for common-random-number variance reduction).
func (r *RNG) Fork(label uint64) *RNG {
	child := &RNG{}
	r.ForkInto(child, label)
	return child
}

// ForkInto is Fork writing the derived stream into caller-owned storage
// (typically a slab element) instead of allocating. The derivation reads
// the parent's state without advancing it, so forks are order-independent
// and safe to perform concurrently from multiple goroutines as long as
// the parent is not being advanced at the same time.
func (r *RNG) ForkInto(child *RNG, label uint64) {
	x := r.s[0] ^ rotl(r.s[2], 17) ^ (label * 0xd1342543de82ef95)
	for i := range child.s {
		child.s[i] = splitmix64(&x)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// State returns the generator's internal state, for checkpointing. A
// stream restored with SetState continues the exact value sequence the
// original would have produced.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with one previously
// returned by State. The all-zero state (never produced by a live
// stream) is rejected by nudging, matching NewRNG's guard.
func (r *RNG) SetState(s [4]uint64) {
	r.s = s
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("sim: IntN called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// plain multiply-shift rejection keeps the stream consumption simple
	// and the bias below 2^-53 for the small bounds we use.
	return int(r.Uint64() % uint64(n))
}

// UniformFloat returns a uniform value in [lo, hi).
func (r *RNG) UniformFloat(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformDuration returns a uniform duration in [lo, hi).
func (r *RNG) UniformDuration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Uint64()%uint64(hi-lo))
}

// Angle returns a uniform direction in [0, 2*pi).
func (r *RNG) Angle() float64 { return r.Float64() * 2 * math.Pi }

// Shuffle pseudo-randomly permutes the first n elements using swap,
// following the Fisher-Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}
