package sim

import (
	"math/rand"
	"testing"
)

// bothSchedulers runs a subtest against the ladder queue and the legacy
// heap, since every ordering contract must hold for both.
func bothSchedulers(t *testing.T, f func(t *testing.T, newSched func() *Scheduler)) {
	t.Run("ladder", func(t *testing.T) { f(t, NewScheduler) })
	t.Run("heap", func(t *testing.T) { f(t, NewHeapScheduler) })
}

func TestScheduleAtNow(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var got []int
		s.Schedule(10, func() {
			got = append(got, 1)
			// Scheduling at the current instant from inside an event must
			// fire after every previously queued same-instant event.
			s.Schedule(s.Now(), func() { got = append(got, 3) })
			s.After(0, func() { got = append(got, 4) })
		})
		s.Schedule(10, func() { got = append(got, 2) })
		s.Run()
		want := []int{1, 2, 3, 4}
		if len(got) != len(want) {
			t.Fatalf("fired %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fired %v, want %v", got, want)
			}
		}
		if s.Now() != 10 {
			t.Errorf("clock = %v, want 10", s.Now())
		}
	})
}

func TestCancelThenStep(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		fired := 0
		e1 := s.Schedule(5, func() { fired++ })
		s.Schedule(5, func() { fired++ })
		e3 := s.Schedule(7, func() { fired++ })
		s.Cancel(e1)
		s.Cancel(e3)
		if got := s.Pending(); got != 1 {
			t.Fatalf("Pending = %d after cancels, want 1", got)
		}
		if !s.Step() {
			t.Fatal("Step returned false with a live event queued")
		}
		if fired != 1 {
			t.Fatalf("fired %d events, want 1", fired)
		}
		if s.Now() != 5 {
			t.Errorf("clock = %v, want 5 (cancelled head must not advance it)", s.Now())
		}
		if s.Step() {
			t.Error("Step returned true with only tombstones left")
		}
		if got := s.Pending(); got != 0 {
			t.Errorf("Pending = %d after drain, want 0", got)
		}
	})
}

// TestSameInstantFIFOAcrossBuckets forces the ladder to split a large
// population across Top, rungs, and Bottom while many events share
// timestamps, checking that same-instant FIFO survives every bucket
// boundary. The schedule interleaves pops so refills happen mid-stream.
func TestSameInstantFIFOAcrossBuckets(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		type fire struct {
			at  Time
			ord int
		}
		var got []fire
		ord := 0
		add := func(at Time) {
			ord++
			n := ord
			s.Schedule(at, func() { got = append(got, fire{s.Now(), n}) })
		}
		rng := rand.New(rand.NewSource(7))
		// Dense collisions: ~1500 events over only 97 distinct instants,
		// far more than one rung bucket holds.
		for i := 0; i < 1500; i++ {
			add(Time(rng.Intn(97)))
		}
		// Interleave: consume a few, then schedule more at already-queued
		// instants so inserts land in live rungs and in Bottom.
		for i := 0; i < 40; i++ {
			s.Step()
		}
		for i := 0; i < 500; i++ {
			add(s.Now().Add(Duration(rng.Intn(60))))
		}
		s.Run()
		if len(got) != 2000 {
			t.Fatalf("fired %d events, want 2000", len(got))
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if b.at < a.at || (b.at == a.at && b.ord < a.ord) {
				t.Fatalf("order violated at %d: (%v,#%d) before (%v,#%d)",
					i, a.at, a.ord, b.at, b.ord)
			}
		}
	})
}

func TestRescheduleAfterDrain(t *testing.T) {
	bothSchedulers(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		stale := 0
		var handles []*Event
		for i := 0; i < 200; i++ {
			handles = append(handles, s.Schedule(Time(100+i), func() { stale++ }))
		}
		for i := 0; i < 50; i++ {
			s.Step()
		}
		if n := s.Drain(); n != 150 {
			t.Fatalf("Drain discarded %d events, want 150", n)
		}
		if s.Pending() != 0 {
			t.Fatalf("Pending = %d after Drain, want 0", s.Pending())
		}
		for _, e := range handles[50:] {
			if !e.Cancelled() {
				t.Fatal("drained event not marked cancelled")
				break
			}
		}
		if s.Now() != 149 {
			t.Fatalf("clock = %v after Drain, want 149 (unchanged)", s.Now())
		}
		// The scheduler must accept and correctly order a fresh workload.
		var got []Time
		for _, at := range []Time{500, 300, 400, 300} {
			s.Schedule(at, func() { got = append(got, s.Now()) })
		}
		s.Run()
		if stale != 50 {
			t.Errorf("drained events fired: %d callbacks ran, want 50 pre-drain only", stale)
		}
		want := []Time{300, 300, 400, 500}
		if len(got) != len(want) {
			t.Fatalf("post-drain run fired %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("post-drain run fired %v, want %v", got, want)
			}
		}
		if s.Drain() != 0 {
			t.Error("Drain on an empty scheduler reported discarded events")
		}
	})
}

// TestLadderMatchesHeapStress drives both schedulers with an identical
// randomized schedule/cancel/nested-schedule workload and requires the
// firing sequences to match exactly — the queue-level half of the
// determinism obligation (the model-level half is manet's
// TestLadderMatchesHeap).
func TestLadderMatchesHeapStress(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		run := func(s *Scheduler) []uint64 {
			rng := rand.New(rand.NewSource(seed))
			var fired []uint64
			// Handles are recycled once fired under the ladder scheduler,
			// so liveness is tracked on the side (the pooling contract).
			type handle struct {
				e    *Event
				done bool
			}
			var open []*handle
			var id uint64
			schedule := func(at Time) {
				id++
				n := id
				h := &handle{}
				h.e = s.Schedule(at, func() {
					h.done = true
					fired = append(fired, n)
					// Nested activity: sometimes schedule or cancel.
					if rng.Intn(3) == 0 {
						schedDelta := Duration(rng.Intn(5000))
						id++
						m := id
						s.After(schedDelta, func() { fired = append(fired, m) })
					}
					if len(open) > 0 && rng.Intn(4) == 0 {
						if c := open[rng.Intn(len(open))]; !c.done {
							s.Cancel(c.e)
							c.done = true
						}
					}
				})
				open = append(open, h)
			}
			for i := 0; i < 3000; i++ {
				// Mix of clustered, far-future, and same-instant times.
				var at Time
				switch rng.Intn(4) {
				case 0:
					at = Time(rng.Intn(100))
				case 1:
					at = Time(rng.Intn(1_000_000))
				case 2:
					at = Time(500_000)
				default:
					at = Time(100_000 + rng.Intn(1000))
				}
				schedule(at)
			}
			// Cancel a deterministic subset before running.
			for i := 0; i < len(open); i += 7 {
				if !open[i].done {
					s.Cancel(open[i].e)
					open[i].done = true
				}
			}
			s.RunUntil(750_000)
			s.Run()
			return fired
		}
		ladder := run(NewScheduler())
		legacy := run(NewHeapScheduler())
		if len(ladder) != len(legacy) {
			t.Fatalf("seed %d: ladder fired %d events, heap %d", seed, len(ladder), len(legacy))
		}
		for i := range ladder {
			if ladder[i] != legacy[i] {
				t.Fatalf("seed %d: firing order diverges at %d: ladder #%d vs heap #%d",
					seed, i, ladder[i], legacy[i])
			}
		}
	}
}

// TestSchedulerZeroAllocSteadyState pins the tentpole claim: once the
// free-list is primed, a schedule→fire cycle allocates nothing.
func TestSchedulerZeroAllocSteadyState(t *testing.T) {
	s := NewScheduler()
	var tick func()
	at := Time(0)
	tick = func() {
		at += 17
		s.Schedule(at, tick)
	}
	// Prime: a standing population and a warm free-list.
	for i := 0; i < 64; i++ {
		at += 3
		s.Schedule(at, tick)
	}
	for i := 0; i < 10_000; i++ {
		s.Step()
	}
	avg := testing.AllocsPerRun(5000, func() { s.Step() })
	if avg > 0 {
		t.Errorf("steady-state Step allocates %.3f objects/event, want 0", avg)
	}
}

func TestSchedulerPoolStats(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 10; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run()
	hits, misses := s.PoolStats()
	if hits != 0 || misses != 10 {
		t.Fatalf("cold pool: hits=%d misses=%d, want 0/10", hits, misses)
	}
	for i := 0; i < 30; i++ {
		s.Schedule(s.Now().Add(1), func() {})
		s.Step()
	}
	hits, misses = s.PoolStats()
	if hits != 30 || misses != 10 {
		t.Fatalf("warm pool: hits=%d misses=%d, want 30/10", hits, misses)
	}
	if got, want := s.PoolHitRate(), 0.75; got != want {
		t.Errorf("PoolHitRate = %v, want %v", got, want)
	}
	// The heap scheduler never pools.
	h := NewHeapScheduler()
	h.Schedule(1, func() {})
	h.Run()
	if hits, _ := h.PoolStats(); hits != 0 {
		t.Errorf("heap scheduler reported pool hits: %d", hits)
	}
}

// TestLadderCancelRecyclesTombstones checks that tombstoned records are
// reclaimed when their bucket is consumed rather than leaking.
func TestLadderCancelRecyclesTombstones(t *testing.T) {
	s := NewScheduler()
	var events []*Event
	for i := 0; i < 1000; i++ {
		events = append(events, s.Schedule(Time(i), func() {}))
	}
	for _, e := range events {
		s.Cancel(e)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after cancelling all, want 0", s.Pending())
	}
	if s.Step() {
		t.Fatal("Step fired a cancelled event")
	}
	// All tombstones must now be back in the pool: the next 1000
	// schedules should be pure hits.
	hits0, _ := s.PoolStats()
	for i := 0; i < 1000; i++ {
		s.Schedule(s.Now().Add(Duration(i+1)), func() {})
	}
	hits, _ := s.PoolStats()
	if got := hits - hits0; got != 1000 {
		t.Errorf("reschedule after mass cancel took %d pool hits, want 1000", got)
	}
}
