package sim

import (
	"testing"
)

// TestShardWheelMatchesLadder drives two schedulers with an identical
// random workload — one routing everything through the ladder, the other
// spreading events round-robin across shard wheels (with cancellations
// and re-scheduling from inside callbacks) — and requires the exact same
// firing sequence. This pins the merged-pop ordering contract: shard
// routing must be invisible to execution order.
func TestShardWheelMatchesLadder(t *testing.T) {
	const shards = 4
	for seed := uint64(1); seed <= 5; seed++ {
		plain := NewScheduler()
		sharded := NewScheduler()
		sharded.ConfigureShards(shards, 50*Millisecond)

		var plainLog, shardLog []Time
		rngA := NewRNG(seed)
		rngB := NewRNG(seed)

		type driver struct {
			s        *Scheduler
			rng      *RNG
			log      *[]Time
			useWheel bool
		}
		drivers := []*driver{
			{s: plain, rng: rngA, log: &plainLog},
			{s: sharded, rng: rngB, log: &shardLog, useWheel: true},
		}
		for _, d := range drivers {
			d := d
			var n int
			var spawn func()
			schedule := func(at Time, fn func()) *Event {
				n++
				if d.useWheel && n%3 != 0 {
					return d.s.ScheduleShard(n%shards, at, fn)
				}
				return d.s.Schedule(at, fn)
			}
			spawn = func() {
				now := d.s.Now()
				*d.log = append(*d.log, now)
				for range d.rng.IntN(3) {
					at := now.Add(Duration(d.rng.IntN(2_000_000)))
					e := schedule(at, spawn)
					// Cancel some events immediately, while the handle is
					// certainly still live, to exercise wheel tombstones.
					if d.rng.IntN(5) == 0 {
						d.s.Cancel(e)
					}
				}
			}
			// Seed workload: a burst of events over a wide horizon,
			// including same-instant ties.
			for i := 0; i < 200; i++ {
				at := Time(d.rng.IntN(1_000_000))
				e := schedule(at, spawn)
				if i%11 == 0 {
					d.s.Cancel(e)
				}
				if i%7 == 0 {
					schedule(at, spawn) // same-instant tie
				}
			}
			d.s.RunUntil(Time(5 * Second))
		}

		if len(plainLog) != len(shardLog) {
			t.Fatalf("seed %d: event counts differ: ladder %d, sharded %d",
				seed, len(plainLog), len(shardLog))
		}
		for i := range plainLog {
			if plainLog[i] != shardLog[i] {
				t.Fatalf("seed %d: firing %d differs: ladder %v, sharded %v",
					seed, i, plainLog[i], shardLog[i])
			}
		}
		if plain.Executed() != sharded.Executed() {
			t.Fatalf("seed %d: executed %d vs %d", seed, plain.Executed(), sharded.Executed())
		}
	}
}

// TestShardWheelDrain checks that Drain empties shard wheels alongside
// the ladder and the scheduler can be re-armed afterwards.
func TestShardWheelDrain(t *testing.T) {
	s := NewScheduler()
	s.ConfigureShards(2, Second)
	for i := 0; i < 10; i++ {
		s.ScheduleShard(i%2, Time(i)*Time(Second), func() {})
		s.Schedule(Time(i)*Time(Second), func() {})
	}
	if got := s.Pending(); got != 20 {
		t.Fatalf("pending = %d, want 20", got)
	}
	if got := s.Drain(); got != 20 {
		t.Fatalf("drained = %d, want 20", got)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
	fired := 0
	s.AfterShard(1, Second, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("re-armed event fired %d times, want 1", fired)
	}
}

// TestShardHead checks head introspection used by the barrier auditor.
func TestShardHead(t *testing.T) {
	s := NewScheduler()
	s.ConfigureShards(2, Second)
	if _, ok := s.ShardHead(0); ok {
		t.Fatal("empty shard reported a head")
	}
	s.ScheduleShard(0, Time(3*Second), func() {})
	s.ScheduleShard(0, Time(2*Second), func() {})
	at, ok := s.ShardHead(0)
	if !ok || at != Time(2*Second) {
		t.Fatalf("head = %v/%v, want 2s/true", at, ok)
	}
}

// TestReserve checks that a reserved slab serves subsequent schedules
// from the free-list.
func TestReserve(t *testing.T) {
	s := NewScheduler()
	s.Reserve(8)
	for i := 0; i < 8; i++ {
		s.After(Duration(i+1), func() {})
	}
	hits, misses := s.PoolStats()
	if hits != 8 || misses != 0 {
		t.Fatalf("pool hits/misses = %d/%d, want 8/0", hits, misses)
	}
	s.Run()
}
