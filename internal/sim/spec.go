package sim

import (
	"container/heap"
	"fmt"
)

// Speculative window execution: between BeginSpec and CommitSpec the
// scheduler's pending events with timestamps inside the window have been
// removed (ExtractUntil) and handed to per-lane drains (RunLane), one
// lane per spatial band. Each lane fires its events in local (time, seq)
// order and may schedule follow-up events through the Lane* entry
// points, which allocate from lane-local pools with provisional
// sequence numbers drawn from the lane's namespaced counter
// (laneSeqBase) — so no lane ever touches shared scheduler state.
//
// CommitSpec then validates the window: if any lane flagged a conflict,
// or two lanes fired events at the same timestamp (so their relative
// order could have mattered), the window is rejected and the caller
// restores a checkpoint and replays sequentially. Otherwise the window
// is oracle-equivalent by construction, and commit makes the scheduler
// state byte-identical to a sequential execution of the same events:
//
//   - executed grows by the total fired count, exactly as Step would
//     have counted them;
//   - every Lane* schedule call consumes one shared sequence number, in
//     global creation order. Because a validated window has no
//     cross-lane timestamp ties, creation timestamps across lanes are
//     distinct, so sorting creations by (creation time, lane journal
//     order) reproduces the exact order a sequential run would have
//     made the same calls — dead events (fired or cancelled inside the
//     window) still consume their number, surviving events are
//     renumbered and inserted into the ladder;
//   - the clock advances to the barrier.
//
// The validation rule is deliberately conservative: cross-lane
// same-timestamp pairs are rejected even when both events are
// independent, because proving independence would cost more than the
// occasional replay.

// specLane is the per-band resource set a speculative drain runs on.
// Everything here is touched only by the lane's own goroutine between
// BeginSpec and the RunLane barrier, and only by the scheduler's owning
// goroutine otherwise.
type specLane struct {
	now Time
	seq uint64 // next provisional sequence number, namespaced by laneSeqBase

	heap      eventHeap // lane-created events not yet fired
	created   []*Event  // journal of lane-created events, in creation order
	createdAt []Time    // lane clock at each creation
	fired     []*Event  // events fired by this lane, in (at, seq) order

	free       []*Event
	poolHits   uint64
	poolMisses uint64

	conflict bool
}

// alloc produces a cleared event record from the lane's own free-list
// with the lane's next provisional sequence number.
func (ln *specLane) alloc(at Time) *Event {
	var e *Event
	if n := len(ln.free); n > 0 {
		e = ln.free[n-1]
		ln.free[n-1] = nil
		ln.free = ln.free[:n-1]
		ln.poolHits++
	} else {
		e = &Event{}
		ln.poolMisses++
	}
	ln.seq++
	e.at = at
	e.seq = ln.seq
	e.index = -1
	e.fired = false
	e.cancel = false
	return e
}

// Runner returns the event's runner callback, or nil when the event
// carries a func callback instead. Speculative classification uses it to
// route an extracted event to the lane owning its state.
func (e *Event) Runner() Runner { return e.runner }

// HasFunc reports whether the event carries a func() callback. Closures
// cannot be classified by owner, so a window containing one is executed
// sequentially.
func (e *Event) HasFunc() bool { return e.fn != nil }

// SpecActive reports whether a speculative window is open.
func (s *Scheduler) SpecActive() bool { return s.spec }

// ExtractUntil removes and returns every pending event with timestamp at
// or before deadline, in global (time, seq) order — the exact order
// RunUntil(deadline) would have fired them. Cancelled tombstones are
// recycled, not returned. The returned slice is owned by the scheduler
// and valid until the next ExtractUntil call; every event in it must be
// given back, either by firing it inside a committed speculative window
// or through Unextract.
func (s *Scheduler) ExtractUntil(deadline Time) []*Event {
	if s.legacy {
		panic("sim: ExtractUntil requires the ladder scheduler")
	}
	s.assertSequential("ExtractUntil")
	out := s.extractBuf[:0]
	for {
		at, ok := s.peekNext()
		if !ok || at > deadline {
			break
		}
		var e *Event
		if len(s.wheels) == 0 {
			e = s.lq.pop(s)
		} else {
			e = s.popMerged()
		}
		s.live--
		out = append(out, e)
	}
	s.extractBuf = out
	return out
}

// Unextract reinserts events returned by ExtractUntil, undoing the
// extraction. Used when window classification decides the window cannot
// run speculatively: the events go back into the ladder (ordering is
// unchanged — the merged pop orders purely by (time, seq)) and the
// caller falls back to a sequential RunUntil.
func (s *Scheduler) Unextract(events []*Event) {
	if s.legacy {
		panic("sim: Unextract requires the ladder scheduler")
	}
	s.assertSequential("Unextract")
	for _, e := range events {
		s.lq.insert(e)
		s.live++
	}
}

// BeginSpec opens a speculative window with the given number of lanes.
// The caller must already have extracted the window's events and decided
// which lane each belongs to; after this call, only RunLane and the
// Lane* entry points may touch the scheduler until CommitSpec.
func (s *Scheduler) BeginSpec(lanes int) {
	switch {
	case s.legacy:
		panic("sim: speculative windows require the ladder scheduler")
	case s.parallel:
		panic("sim: BeginSpec during a parallel drain")
	case s.spec:
		panic("sim: speculative window already open")
	case s.audit != nil:
		panic("sim: speculative window under the audit hook (it must observe every event in merged order)")
	case lanes <= 0:
		panic("sim: BeginSpec with non-positive lane count")
	}
	if cap(s.specLanes) < lanes {
		s.specLanes = make([]specLane, lanes)
	}
	s.specLanes = s.specLanes[:lanes]
	for i := range s.specLanes {
		ln := &s.specLanes[i]
		ln.now = s.now
		ln.seq = laneSeqBase(i)
		ln.conflict = false
		clearEvents(ln.heap)
		ln.heap = ln.heap[:0]
		clearEvents(ln.created)
		ln.created = ln.created[:0]
		ln.createdAt = ln.createdAt[:0]
		clearEvents(ln.fired)
		ln.fired = ln.fired[:0]
	}
	// Seed the lane pools from the shared free-list. Commit recycles
	// every event the window consumed into the shared pool (the owning
	// goroutine's), so without this hand-back each window would allocate
	// its lane-created events fresh while the shared pool only ever
	// grew: the records circulate shared → lanes → shared instead. One
	// extra share stays behind for the sequential path's own reuse.
	if share := len(s.free) / (lanes + 1); share > 0 {
		for i := range s.specLanes {
			ln := &s.specLanes[i]
			off := len(s.free) - share
			ln.free = append(ln.free, s.free[off:]...)
			clearEvents(s.free[off:])
			s.free = s.free[:off]
		}
	}
	s.spec = true
}

func clearEvents(es []*Event) {
	for i := range es {
		es[i] = nil
	}
}

// FlagLaneConflict marks the lane's window as conflicted: the lane
// touched state it cannot prove local (an access within the locality
// margin of a band border, or any other cross-band interaction). A
// flagged window is rejected by CommitSpec; RunLane also stops its drain
// early once its own lane is flagged. Must only be called from the
// lane's own goroutine while the window is open.
func (s *Scheduler) FlagLaneConflict(lane int) {
	s.specLanes[lane].conflict = true
}

// LaneConflicted reports whether the lane flagged a conflict.
func (s *Scheduler) LaneConflicted(lane int) bool {
	return s.specLanes[lane].conflict
}

// LaneFired returns how many events the lane fired in the open window.
func (s *Scheduler) LaneFired(lane int) uint64 {
	return uint64(len(s.specLanes[lane].fired))
}

// LaneNow returns the clock a callback on the given lane observes: the
// lane clock while a speculative window is open, the shared clock
// otherwise. Lane -1 always reads the shared clock.
func (s *Scheduler) LaneNow(lane int) Time {
	if s.spec && lane >= 0 {
		return s.specLanes[lane].now
	}
	return s.now
}

// LaneScheduleRunner is ScheduleRunner routed through a speculative
// lane: during an open window it allocates from the lane's pool with a
// provisional sequence number and queues onto the lane's private heap;
// otherwise it falls through to the shared path. Model code on the
// speculative hot path schedules exclusively through the Lane* entry
// points so the same code runs unchanged under both engines.
func (s *Scheduler) LaneScheduleRunner(lane int, at Time, r Runner) *Event {
	if !s.spec || lane < 0 {
		return s.ScheduleRunner(at, r)
	}
	ln := &s.specLanes[lane]
	if at < ln.now {
		panic(fmt.Sprintf("sim: schedule at %v before lane now %v", at, ln.now))
	}
	if r == nil {
		panic("sim: schedule with nil runner")
	}
	e := ln.alloc(at)
	e.runner = r
	heap.Push(&ln.heap, e)
	ln.created = append(ln.created, e)
	ln.createdAt = append(ln.createdAt, ln.now)
	return e
}

// LaneAfterRunner is AfterRunner routed through a speculative lane,
// relative to the clock the lane observes.
func (s *Scheduler) LaneAfterRunner(lane int, d Duration, r Runner) *Event {
	return s.LaneScheduleRunner(lane, s.LaneNow(lane).Add(d), r)
}

// LaneCancel is Cancel routed through a speculative lane. Cancelling an
// extracted event leaves the live count alone (extraction already
// removed it); cancelling a lane-created event leaves its journal entry
// in place so it still consumes a sequence number at commit, exactly as
// a sequential Schedule+Cancel pair would have.
func (s *Scheduler) LaneCancel(lane int, e *Event) {
	if !s.spec || lane < 0 {
		s.Cancel(e)
		return
	}
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
}

// RunLane drains one lane of the open window: the lane's share of the
// extracted events (which must be a subsequence of an ExtractUntil
// result, so it is (time, seq)-sorted) merged with events the lane's own
// callbacks create, fired in local (time, seq) order up to and including
// barrier. The drain stops early if the lane is flagged conflicted.
// Must be called at most once per lane per window, from at most one
// goroutine per lane.
func (s *Scheduler) RunLane(lane int, extracted []*Event, barrier Time) {
	if !s.spec {
		panic("sim: RunLane outside a speculative window")
	}
	ln := &s.specLanes[lane]
	ci := 0
	for !ln.conflict {
		// Skip extracted events cancelled earlier in the window. Their
		// live accounting happened at extraction; the record is free to
		// reuse immediately because nothing references it any more.
		for ci < len(extracted) && extracted[ci].cancel {
			recycleInto(&ln.free, extracted[ci])
			ci++
		}
		var ex *Event
		if ci < len(extracted) {
			ex = extracted[ci]
		}
		// Lazily drop cancelled lane-created events; their journal
		// entries keep them alive until commit.
		for len(ln.heap) > 0 && ln.heap[0].cancel {
			heap.Pop(&ln.heap)
		}
		var cr *Event
		if len(ln.heap) > 0 && ln.heap[0].at <= barrier {
			cr = ln.heap[0]
		}
		var e *Event
		switch {
		case ex == nil && cr == nil:
			if ln.now < barrier {
				ln.now = barrier
			}
			return
		case cr == nil:
			e = ex
			ci++
		case ex == nil || cr.at < ex.at || (cr.at == ex.at && cr.seq < ex.seq):
			e = cr
			heap.Pop(&ln.heap)
		default:
			e = ex
			ci++
		}
		ln.now = e.at
		e.fired = true
		ln.fired = append(ln.fired, e)
		if fn := e.fn; fn != nil {
			fn()
		} else {
			e.runner.RunEvent()
		}
	}
}

// CommitSpec validates and closes the open window. On success it returns
// true with the scheduler byte-identical to a sequential execution of
// the window (see the package comment above for the argument) and the
// clock at barrier. On failure — a flagged conflict or a cross-lane
// same-timestamp firing — it returns false with the scheduler left in an
// unusable state; the caller must discard it and replay the window from
// a checkpoint.
func (s *Scheduler) CommitSpec(barrier Time) bool {
	if !s.spec {
		panic("sim: CommitSpec without an open window")
	}
	for i := range s.specLanes {
		if s.specLanes[i].conflict {
			return false
		}
	}
	if !s.firedTieFree() {
		return false
	}
	s.spec = false
	s.commitCreated()
	for i := range s.specLanes {
		ln := &s.specLanes[i]
		s.executed += uint64(len(ln.fired))
		for _, e := range ln.fired {
			// Extracted events (shared-namespace seq) are done with;
			// fired lane-created events were recycled by commitCreated.
			if e.seq < laneSeqBase(0) {
				recycleInto(&s.free, e)
			}
		}
		clearEvents(ln.fired)
		ln.fired = ln.fired[:0]
		clearEvents(ln.heap)
		ln.heap = ln.heap[:0]
		clearEvents(ln.created)
		ln.created = ln.created[:0]
		ln.createdAt = ln.createdAt[:0]
		s.poolHits += ln.poolHits
		s.poolMisses += ln.poolMisses
		ln.poolHits, ln.poolMisses = 0, 0
	}
	if s.now < barrier {
		s.now = barrier
	}
	return true
}

// firedTieFree reports whether no two lanes fired events at the same
// timestamp. Each lane's fired list is (time, seq)-sorted, so a k-way
// scan by timestamp finds every cross-lane tie in one pass.
func (s *Scheduler) firedTieFree() bool {
	k := len(s.specLanes)
	idx := s.specScratch(k)
	for {
		best := -1
		var bestAt Time
		ties := 0
		for i := 0; i < k; i++ {
			ln := &s.specLanes[i]
			if idx[i] >= len(ln.fired) {
				continue
			}
			at := ln.fired[idx[i]].at
			switch {
			case best < 0 || at < bestAt:
				best, bestAt, ties = i, at, 1
			case at == bestAt:
				ties++
			}
		}
		if best < 0 {
			return true
		}
		if ties > 1 {
			return false
		}
		ln := &s.specLanes[best]
		for idx[best] < len(ln.fired) && ln.fired[idx[best]].at == bestAt {
			idx[best]++
		}
	}
}

// commitCreated replays the window's schedule calls against the shared
// sequence counter in global creation order: a k-way merge of the
// per-lane creation journals by creation timestamp (distinct across
// lanes in a validated window; journal order within a lane). Dead
// entries consume their number and recycle; survivors are renumbered
// and inserted into the ladder.
func (s *Scheduler) commitCreated() {
	k := len(s.specLanes)
	idx := s.specScratch(k)
	for {
		best := -1
		var bestAt Time
		for i := 0; i < k; i++ {
			ln := &s.specLanes[i]
			if idx[i] >= len(ln.created) {
				continue
			}
			at := ln.createdAt[idx[i]]
			if best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			return
		}
		ln := &s.specLanes[best]
		e := ln.created[idx[best]]
		idx[best]++
		if s.seq >= laneSeqBase(0)-1 {
			panic("sim: shared sequence counter exhausted its namespace")
		}
		s.seq++
		if e.fired || e.cancel {
			recycleInto(&s.free, e)
			continue
		}
		e.seq = s.seq
		e.index = -1
		s.lq.insert(e)
		s.live++
	}
}

// specScratch returns the zeroed k-element cursor scratch the commit
// walks share.
func (s *Scheduler) specScratch(k int) []int {
	if cap(s.specIdx) < k {
		s.specIdx = make([]int, k)
	}
	s.specIdx = s.specIdx[:k]
	for i := range s.specIdx {
		s.specIdx[i] = 0
	}
	return s.specIdx
}
