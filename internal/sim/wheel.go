package sim

import "slices"

// shardWheel is a fixed-width calendar queue owned by one shard of a
// sharded simulation. Shard-local timers (mobility turns, mostly) are
// routed here instead of the central ladder so the ladder stays small
// enough to keep its rungs dense: 100k standing turn timers spread over a
// [1,100]s horizon degrade a single ladder rung to ~1 event per bucket,
// while a wheel with second-wide buckets keeps hundreds of events per
// bucket and reuses every bucket slice across the run.
//
// Buckets are indexed by absolute time (at/width) from time zero — the
// wheel never wraps, it grows. That is the right trade for a finite
// simulation: the bucket array tops out at horizon/width slice headers
// (a few hundred for the configurations we run) and indexing needs no
// ring arithmetic.
//
// Ordering contract: events pop in strict (at, seq) order. A bucket is
// sorted lazily when consumption reaches it; inserts into the bucket
// currently being consumed do a binary-search insert at or after the
// consumption head (an insert's at is >= now, so its position can never
// precede the head). The scheduler merges wheel heads with the ladder
// head by the same (at, seq) key, which makes the merged pop sequence
// byte-identical to routing every event through the single ladder.
type shardWheel struct {
	width   Duration
	buckets [][]*Event
	cur     int  // bucket being consumed (or next to consume)
	head    int  // consumption index within buckets[cur]
	sorted  bool // buckets[cur] has been sorted and is being consumed
}

// insert routes e into the bucket covering its timestamp. Buckets the
// consumption pointer has already passed were empty or fully consumed;
// an event whose natural index lies behind cur (possible when the clock
// ran ahead through a locally idle stretch) joins the current bucket,
// where the (at, seq) sort still emits it in correct global order.
func (w *shardWheel) insert(e *Event) {
	idx := int(int64(e.at) / int64(w.width))
	if idx < w.cur {
		idx = w.cur
	}
	for idx >= len(w.buckets) {
		w.buckets = append(w.buckets, nil)
	}
	if idx == w.cur && w.sorted {
		b := w.buckets[idx]
		lo, hi := w.head, len(b)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if eventCmp(b[mid], e) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b = append(b, nil)
		copy(b[lo+1:], b[lo:])
		b[lo] = e
		w.buckets[idx] = b
		return
	}
	w.buckets[idx] = append(w.buckets[idx], e)
}

// peek returns the earliest live event without removing it, recycling
// tombstones into the shared free-list.
func (w *shardWheel) peek(s *Scheduler) (*Event, bool) { return w.peekInto(&s.free) }

// peekInto is peek with the tombstone destination made explicit, so a
// parallel shard drain can recycle into its own lane's free-list instead
// of the shared one. The consumption pointers only move forward, so
// repeated peeks are O(1) amortized over the life of the wheel.
func (w *shardWheel) peekInto(free *[]*Event) (*Event, bool) {
	for w.cur < len(w.buckets) {
		b := w.buckets[w.cur]
		if !w.sorted {
			if len(b) > 1 {
				slices.SortFunc(b, eventCmp)
			}
			w.sorted = true
			w.head = 0
		}
		for w.head < len(b) {
			e := b[w.head]
			if e.cancel {
				b[w.head] = nil
				w.head++
				recycleInto(free, e)
				continue
			}
			return e, true
		}
		w.buckets[w.cur] = b[:0]
		w.head = 0
		w.sorted = false
		w.cur++
	}
	return nil, false
}

// take removes the event a preceding peek returned. It must only be
// called immediately after a successful peek.
func (w *shardWheel) take() {
	w.buckets[w.cur][w.head] = nil
	w.head++
}

// drain tombstones and recycles every queued event and resets the wheel
// to empty, retaining bucket storage.
func (w *shardWheel) drain(s *Scheduler) {
	for i := w.cur; i < len(w.buckets); i++ {
		start := 0
		if i == w.cur && w.sorted {
			start = w.head
		}
		for j := start; j < len(w.buckets[i]); j++ {
			e := w.buckets[i][j]
			if e == nil {
				continue
			}
			e.cancel = true
			s.recycle(e)
		}
		w.buckets[i] = w.buckets[i][:0]
	}
	w.cur = len(w.buckets)
	w.head = 0
	w.sorted = false
}
