// Package sim provides the discrete-event simulation kernel used by the
// broadcast-storm simulator: a virtual clock, a cancellable event queue,
// and deterministic pseudo-random number streams.
//
// The kernel is intentionally minimal and fully deterministic: given the
// same seed and the same sequence of Schedule calls, a simulation replays
// identically. All higher layers (PHY, MAC, schemes, mobility) are built
// on top of it.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in microseconds from the
// start of the simulation. Microsecond resolution matches the IEEE 802.11
// DSSS timing constants used by the paper (slot = 20 us, SIFS = 10 us).
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Common durations, mirroring the time package but in simulated
// microseconds.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Add returns the time offset by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as fractional seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts the simulated time offset to a time.Duration for
// interoperability with standard-library formatting.
func (t Time) Std() time.Duration { return time.Duration(t) * time.Microsecond }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds returns the duration as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as fractional milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Std converts the simulated duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String formats the duration using standard duration notation.
func (d Duration) String() string { return d.Std().String() }

// DurationFromSeconds converts fractional seconds to a simulated duration,
// rounding to the nearest microsecond.
func DurationFromSeconds(s float64) Duration {
	return Duration(s*float64(Second) + 0.5)
}
