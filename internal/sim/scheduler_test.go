package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		s.Schedule(at, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of FIFO order: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.Schedule(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after cancel")
	}
	// Cancelling again must be a no-op.
	s.Cancel(e)
	// Cancelling a fired event must be a no-op.
	e2 := s.Schedule(20, func() {})
	s.Run()
	s.Cancel(e2)
	if e2.Cancelled() {
		t.Error("fired event marked cancelled")
	}
}

func TestSchedulerCancelFromWithinEvent(t *testing.T) {
	s := NewScheduler()
	fired := false
	var victim *Event
	s.Schedule(5, func() { s.Cancel(victim) })
	victim = s.Schedule(10, func() { fired = true })
	s.Run()
	if fired {
		t.Error("event cancelled from an earlier event still fired")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.Schedule(10, func() {
		got = append(got, s.Now())
		s.After(5, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("nested scheduling produced %v, want [10 15]", got)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		s.Schedule(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2", len(fired))
	}
	if s.Now() != 20 {
		t.Errorf("clock = %v after RunUntil(20), want 20", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 3 {
		t.Errorf("second RunUntil fired %d total, want 3", len(fired))
	}
	if s.Now() != 100 {
		t.Errorf("clock = %v, want deadline 100 even past last event", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.Schedule(5, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil callback did not panic")
		}
	}()
	s.Schedule(1, nil)
}

func TestSchedulerExecutedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func() {})
	}
	e := s.Schedule(100, func() {})
	s.Cancel(e)
	s.Run()
	if s.Executed() != 7 {
		t.Errorf("Executed() = %d, want 7 (cancelled events do not count)", s.Executed())
	}
}

// TestSchedulerOrderingProperty checks, for arbitrary event time sets,
// that execution is sorted and complete.
func TestSchedulerOrderingProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			s.Schedule(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTickHookFiresOnBoundaryCrossings(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	s.SetTickHook(100, func() { ticks = append(ticks, s.Now()) })
	var fired []Time
	for _, at := range []Time{50, 99, 150, 151, 400} {
		s.Schedule(at, func() { fired = append(fired, s.Now()) })
	}
	s.Run()
	// Boundaries: installed at 0 → next=100. Event at 150 crosses it
	// (next→250); 151 does not; 400 crosses 250 (next→500).
	want := []Time{150, 400}
	if len(ticks) != len(want) {
		t.Fatalf("hook fired at %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
	if s.Executed() != 5 {
		t.Errorf("Executed = %d, want 5 (hook must not count as an event)", s.Executed())
	}
}

func TestTickHookDoesNotChangeEventOrdering(t *testing.T) {
	run := func(hook bool) ([]Time, uint64) {
		s := NewScheduler()
		if hook {
			s.SetTickHook(7, func() {})
		}
		var fired []Time
		for _, at := range []Time{3, 14, 14, 9, 100, 21} {
			s.Schedule(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return fired, s.Executed()
	}
	plain, pn := run(false)
	hooked, hn := run(true)
	if pn != hn {
		t.Errorf("Executed differs with hook: %d vs %d", pn, hn)
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("event order differs with hook: %v vs %v", plain, hooked)
		}
	}
}

func TestTickHookValidation(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("SetTickHook with non-positive interval did not panic")
		}
	}()
	s.SetTickHook(0, func() {})
}

func TestTickHookRemoval(t *testing.T) {
	s := NewScheduler()
	calls := 0
	s.SetTickHook(10, func() { calls++ })
	s.SetTickHook(0, nil) // nil fn removes the hook; interval is ignored
	s.Schedule(100, func() {})
	s.Run()
	if calls != 0 {
		t.Errorf("removed hook fired %d times", calls)
	}
}
