package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided on %d of 100 draws", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	c1again := parent.Fork(1)
	for i := 0; i < 100; i++ {
		v1 := c1.Uint64()
		if v1 != c1again.Uint64() {
			t.Fatal("same-label forks are not identical")
		}
		if v1 == c2.Uint64() {
			t.Fatal("different-label forks collided")
		}
	}
}

func TestRNGForkDoesNotPerturbParent(t *testing.T) {
	a := NewRNG(9)
	b := NewRNG(9)
	_ = a.Fork(123)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork consumed parent stream state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean of %d uniform draws = %v, want ~0.5", n, mean)
	}
}

func TestIntNRange(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("IntN(7) produced value %d %d times out of 70000; grossly non-uniform", v, c)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(6)
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	r.IntN(0)
}

func TestUniformDuration(t *testing.T) {
	r := NewRNG(8)
	lo, hi := Duration(100), Duration(200)
	for i := 0; i < 1000; i++ {
		d := r.UniformDuration(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("UniformDuration(%v,%v) = %v", lo, hi, d)
		}
	}
	if got := r.UniformDuration(50, 50); got != 50 {
		t.Errorf("degenerate range returned %v, want 50", got)
	}
}

func TestAngleRange(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 1000; i++ {
		a := r.Angle()
		if a < 0 || a >= 2*math.Pi {
			t.Fatalf("Angle() = %v out of [0, 2pi)", a)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	prop := func(seed uint64, size uint8) bool {
		n := int(size%32) + 1
		r := NewRNG(seed)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		r.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, n)
		for _, v := range xs {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUniformFloatRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.UniformFloat(-2.5, 7.5)
		if v < -2.5 || v >= 7.5 {
			t.Fatalf("UniformFloat out of range: %v", v)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if d := DurationFromSeconds(1.5); d != 1500*Millisecond {
		t.Errorf("DurationFromSeconds(1.5) = %v, want 1.5s", d)
	}
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Errorf("(2s).Seconds() = %v", s)
	}
	tm := Time(0).Add(3 * Second)
	if tm.Seconds() != 3.0 {
		t.Errorf("time add: %v", tm)
	}
	if tm.Sub(Time(1*Second)) != 2*Second {
		t.Errorf("time sub: %v", tm.Sub(Time(1*Second)))
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Error("Before/After comparisons wrong")
	}
}
