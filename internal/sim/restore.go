package sim

import "fmt"

// Checkpoint/restore support. A deterministic simulation can be frozen
// at a barrier — an instant between events, outside any parallel drain —
// and later reconstructed into a scheduler that continues the exact
// (time, seq) execution sequence of the original. The scheduler itself
// only persists its counters and pool depths; the pending events are
// owned by the model layers (each of which holds its timer handles), so
// checkpointing walks the layers, records each armed event's (at, seq)
// key, and restoring re-inserts them through RestoreRunner/RestoreFunc
// with those exact keys while RestoreState re-arms the counters the next
// allocation will continue from.

// Seq returns the event's scheduling sequence number — the tiebreaker
// that orders same-instant events. Together with At it forms the key a
// checkpoint records so a restored scheduler can re-insert the event at
// its exact position in the merged order.
func (e *Event) Seq() uint64 { return e.seq }

// LaneState is the persistent portion of one parallel-drain lane in a
// SchedulerState. Between barrier windows a lane's executed/live/pool
// counters are already folded into the shared scheduler counters
// (EndParallelDrain), so only the lane's namespaced sequence counter and
// the depth of its private free-list survive to the next window.
type LaneState struct {
	Seq     uint64
	FreeLen int
}

// SchedulerState is the scheduler's own contribution to a checkpoint:
// clock, counters, and pool depths. Pending events are not here — they
// are serialized by the layers that own them and re-inserted via
// RestoreFunc/RestoreRunner.
type SchedulerState struct {
	Now        Time
	Seq        uint64
	Executed   uint64
	PoolHits   uint64
	PoolMisses uint64
	FreeLen    int
	Lanes      []LaneState
}

// SnapshotState captures the scheduler's counters at a barrier. It must
// not be called during a parallel drain (lane accounting is only
// coherent after EndParallelDrain folds it).
func (s *Scheduler) SnapshotState() SchedulerState {
	s.assertSequential("SnapshotState")
	st := SchedulerState{
		Now:        s.now,
		Seq:        s.seq,
		Executed:   s.executed,
		PoolHits:   s.poolHits,
		PoolMisses: s.poolMisses,
		FreeLen:    len(s.free),
	}
	for i := range s.lanes {
		st.Lanes = append(st.Lanes, LaneState{
			Seq:     s.lanes[i].seq,
			FreeLen: len(s.lanes[i].free),
		})
	}
	return st
}

// RestoreState re-arms a freshly drained scheduler with a checkpointed
// state: the clock, the shared and per-lane sequence counters, the
// executed count, and the pool counters, with each free-list pre-grown
// to its checkpointed depth so pool statistics evolve exactly as they
// would have in the uninterrupted run. The scheduler must be the ladder
// implementation and must hold no pending events (Drain first); lanes in
// the state require the matching number of configured shard wheels.
func (s *Scheduler) RestoreState(st SchedulerState) error {
	switch {
	case s.legacy:
		return fmt.Errorf("sim: restore requires the ladder scheduler")
	case s.parallel:
		return fmt.Errorf("sim: restore during a parallel drain")
	case s.live != 0:
		return fmt.Errorf("sim: restore into a scheduler with %d pending events", s.live)
	case len(st.Lanes) > 0 && len(st.Lanes) != len(s.wheels):
		return fmt.Errorf("sim: restore state has %d lanes, scheduler has %d shard wheels",
			len(st.Lanes), len(s.wheels))
	case st.Seq >= laneSeqBase(0):
		return fmt.Errorf("sim: restore state sequence counter %d outside the shared namespace", st.Seq)
	}
	for i, ln := range st.Lanes {
		if ln.Seq < laneSeqBase(i) || ln.Seq >= laneSeqBase(i+1) {
			return fmt.Errorf("sim: restore lane %d sequence counter %d outside its namespace", i, ln.Seq)
		}
	}
	s.now = st.Now
	s.seq = st.Seq
	s.executed = st.Executed
	s.poolHits = st.PoolHits
	s.poolMisses = st.PoolMisses
	// A drained wheel parks its consumption cursor past its buckets;
	// rewind so restored inserts land in the covering bucket again.
	for i := range s.wheels {
		w := &s.wheels[i]
		w.cur, w.head, w.sorted = 0, 0, false
	}
	for len(s.free) < st.FreeLen {
		s.free = append(s.free, &Event{})
	}
	s.free = s.free[:st.FreeLen]
	if len(st.Lanes) > 0 && s.lanes == nil {
		s.lanes = make([]laneState, len(s.wheels))
	}
	for i, ln := range st.Lanes {
		lane := &s.lanes[i]
		lane.seq = ln.Seq
		for len(lane.free) < ln.FreeLen {
			lane.free = append(lane.free, &Event{})
		}
		lane.free = lane.free[:ln.FreeLen]
	}
	return nil
}

// restoreEvent inserts an event with an explicit checkpointed (at, seq)
// key, bypassing the sequence counter. Restored events are allocated
// fresh rather than from the free-list: RestoreState already sized the
// free-list to its checkpointed depth, and the pool counters must not
// observe allocations the original run never made.
func (s *Scheduler) restoreEvent(shard int, at Time, seq uint64) (*Event, error) {
	switch {
	case s.legacy:
		return nil, fmt.Errorf("sim: restore requires the ladder scheduler")
	case s.parallel:
		return nil, fmt.Errorf("sim: restore during a parallel drain")
	case at < s.now:
		return nil, fmt.Errorf("sim: restore event at %v before now %v", at, s.now)
	case shard < -1 || shard >= len(s.wheels):
		return nil, fmt.Errorf("sim: restore event onto shard %d with %d wheels", shard, len(s.wheels))
	}
	if seq < laneSeqBase(0) {
		if seq > s.seq {
			return nil, fmt.Errorf("sim: restore event seq %d beyond shared counter %d", seq, s.seq)
		}
	} else if len(s.lanes) == 0 {
		return nil, fmt.Errorf("sim: restore event seq %d in a lane namespace without lanes", seq)
	}
	e := &Event{at: at, seq: seq, index: -1}
	if shard < 0 {
		s.lq.insert(e)
	} else {
		s.wheels[shard].insert(e)
	}
	s.live++
	return e, nil
}

// RestoreRunner re-inserts a checkpointed Runner event with its exact
// (at, seq) key, onto the given shard's wheel (shard >= 0) or the
// central ladder (shard == -1).
func (s *Scheduler) RestoreRunner(shard int, at Time, seq uint64, r Runner) (*Event, error) {
	if r == nil {
		return nil, fmt.Errorf("sim: restore with nil runner")
	}
	e, err := s.restoreEvent(shard, at, seq)
	if err != nil {
		return nil, err
	}
	e.runner = r
	return e, nil
}

// RestoreFunc re-inserts a checkpointed callback event with its exact
// (at, seq) key, onto the given shard's wheel (shard >= 0) or the
// central ladder (shard == -1).
func (s *Scheduler) RestoreFunc(shard int, at Time, seq uint64, fn func()) (*Event, error) {
	if fn == nil {
		return nil, fmt.Errorf("sim: restore with nil callback")
	}
	e, err := s.restoreEvent(shard, at, seq)
	if err != nil {
		return nil, err
	}
	e.fn = fn
	return e, nil
}
