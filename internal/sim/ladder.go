package sim

import "slices"

// The ladder queue (Tang, Goh & Thng 2005) is a multi-resolution calendar
// queue for discrete-event simulation. Far-future events land in an
// unsorted Top list; when Top must be consumed it is partitioned into a
// rung of equal-width time buckets, and any bucket still too crowded to
// sort cheaply spawns a finer child rung. The imminent events live in
// Bottom, a small sorted array consumed from the head. Enqueue and dequeue
// are amortized O(1) for the arrival patterns a CSMA/CA simulation
// produces, against O(log n) for a binary heap.
//
// The per-bucket sort in refill is also the fallback for pathological
// distributions: when every event carries the same timestamp (or rung
// nesting bottoms out at 1µs-wide buckets, the clock resolution) the
// overflow bucket cannot be split further and is handed to slices.SortFunc
// wholesale, degrading gracefully to O(n log n) — the same bound as the
// heap it replaces.
//
// Determinism: events are ordered by (at, seq) everywhere — the bucket
// sort compares seq on time ties, Bottom insertion places a new event
// after queued ties (its seq is necessarily the largest), and buckets
// preserve append order until sorted. The pop sequence is therefore
// byte-identical to the binary heap's, which TestLadderMatchesHeapStress
// and manet's TestLadderMatchesHeap pin.
const (
	// ladderThreshold is the bucket population above which refill spawns
	// a finer rung instead of sorting the bucket into Bottom.
	ladderThreshold = 48
	// ladderMaxRungs caps rung nesting; once reached, overflowing buckets
	// are sorted wholesale (the heap-equivalent fallback).
	ladderMaxRungs = 8
)

// rung is one ladder level: a run of equal-width time buckets covering
// [start, start+len(buckets)*width). cur is the first bucket that may
// still hold events; buckets before it have been consumed.
type rung struct {
	start   Time
	width   Duration
	cur     int
	buckets [][]*Event
}

// base returns the earliest time an event may still occupy in this rung.
// Events before base belong to finer rungs or Bottom.
func (r *rung) base() Time { return r.start.Add(Duration(r.cur) * r.width) }

// reset prepares a (possibly recycled) rung with nb empty buckets.
func (r *rung) reset(start Time, width Duration, nb int) {
	r.start, r.width, r.cur = start, width, 0
	if cap(r.buckets) < nb {
		r.buckets = append(r.buckets[:cap(r.buckets)], make([][]*Event, nb-cap(r.buckets))...)
	}
	r.buckets = r.buckets[:nb]
	for i := range r.buckets {
		r.buckets[i] = r.buckets[i][:0]
	}
}

// ladder is the queue proper. Invariants between operations:
//
//   - every queued event is in exactly one of bottom[head:], a rung
//     bucket at index >= cur, or top;
//   - bottom[head:] is sorted by (at, seq) and holds the earliest events:
//     every bottom time < every rung/top time still queued;
//   - rungs are ordered coarsest first and strictly nested in time: each
//     rung's live range [base, end) precedes every earlier rung's base,
//     so the last rung always holds the most imminent buckets;
//   - top holds exactly the events with at >= topStart, and topStart
//     exceeds every time in bottom or the rungs.
//
// Tombstoned (cancelled) events stay in place and are dropped and
// recycled when their bucket or slot is next touched.
type ladder struct {
	bottom []*Event
	head   int

	rungs []*rung

	top      []*Event
	topStart Time

	rungFree []*rung
}

func eventCmp(a, b *Event) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	return 1 // seq values are unique; equality is impossible
}

// insert routes a freshly scheduled event to Top, a rung bucket, or a
// sorted position in Bottom, whichever covers its timestamp.
func (q *ladder) insert(e *Event) {
	if e.at >= q.topStart {
		q.top = append(q.top, e)
		return
	}
	// Walk coarsest→finest: the first rung whose live range starts at or
	// before e.at owns it (finer rungs cover strictly earlier times).
	for _, r := range q.rungs {
		if e.at >= r.base() {
			idx := int(int64(e.at-r.start) / int64(r.width))
			if idx >= len(r.buckets) {
				idx = len(r.buckets) - 1
			}
			r.buckets[idx] = append(r.buckets[idx], e)
			return
		}
	}
	// Earlier than every rung: sorted insert into Bottom. The new event
	// has the largest seq, so on a time tie it lands after queued events,
	// preserving FIFO.
	lo, hi := q.head, len(q.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventCmp(q.bottom[mid], e) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.bottom = append(q.bottom, nil)
	copy(q.bottom[lo+1:], q.bottom[lo:])
	q.bottom[lo] = e
}

// pop removes and returns the earliest live event, recycling any
// tombstones it skips over, or nil when the queue is empty.
func (q *ladder) pop(s *Scheduler) *Event {
	for {
		for q.head < len(q.bottom) {
			e := q.bottom[q.head]
			q.bottom[q.head] = nil
			q.head++
			if e.cancel {
				s.recycle(e)
				continue
			}
			return e
		}
		if !q.refill(s) {
			return nil
		}
	}
}

// peek returns the timestamp of the earliest live event without removing
// it. Tombstones encountered at the head are recycled along the way.
func (q *ladder) peek(s *Scheduler) (Time, bool) {
	e, ok := q.peekEvent(s)
	if !ok {
		return 0, false
	}
	return e.at, true
}

// peekEvent returns the earliest live event without removing it; the
// scheduler's merged pop reads its (at, seq) key to compare against the
// shard wheel heads. Tombstones at the head are recycled along the way.
func (q *ladder) peekEvent(s *Scheduler) (*Event, bool) {
	for {
		for q.head < len(q.bottom) {
			e := q.bottom[q.head]
			if e.cancel {
				q.bottom[q.head] = nil
				q.head++
				s.recycle(e)
				continue
			}
			return e, true
		}
		if !q.refill(s) {
			return nil, false
		}
	}
}

// refill repopulates the exhausted Bottom from the finest rung's next
// bucket (spawning finer rungs from overcrowded buckets, and rung 0 from
// Top when all rungs are spent). Returns false when no events remain.
func (q *ladder) refill(s *Scheduler) bool {
	q.bottom = q.bottom[:0]
	q.head = 0
	for {
		r := q.activeRung(s)
		if r == nil {
			return false
		}
		b := r.buckets[r.cur]
		live := b[:0]
		for _, e := range b {
			if e.cancel {
				s.recycle(e)
			} else {
				live = append(live, e)
			}
		}
		if len(live) == 0 {
			r.buckets[r.cur] = live
			r.cur++
			continue
		}
		if len(live) > ladderThreshold && r.width > 1 && len(q.rungs) < ladderMaxRungs {
			// Too crowded to sort: spread over a finer child rung. The
			// parent's cur must advance past the bucket before the child
			// becomes visible, so insert's rung walk stays consistent.
			child := q.newRung(r.base(), r.width, len(live))
			for _, e := range live {
				idx := int(int64(e.at-child.start) / int64(child.width))
				if idx >= len(child.buckets) {
					idx = len(child.buckets) - 1
				}
				child.buckets[idx] = append(child.buckets[idx], e)
			}
			r.buckets[r.cur] = live[:0]
			r.cur++
			q.rungs = append(q.rungs, child)
			continue
		}
		q.bottom = append(q.bottom, live...)
		r.buckets[r.cur] = live[:0]
		r.cur++
		slices.SortFunc(q.bottom, eventCmp)
		return true
	}
}

// activeRung returns the finest rung positioned on a non-empty bucket,
// discarding exhausted rungs and spawning rung 0 from Top as needed.
// Returns nil when the whole queue is empty.
func (q *ladder) activeRung(s *Scheduler) *rung {
	for {
		if n := len(q.rungs); n > 0 {
			r := q.rungs[n-1]
			for r.cur < len(r.buckets) && len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			if r.cur < len(r.buckets) {
				return r
			}
			q.rungs = q.rungs[:n-1]
			q.putRung(r)
			continue
		}
		if !q.spawnFromTop(s) {
			return nil
		}
	}
}

// spawnFromTop partitions the live events in Top into a fresh rung 0 and
// advances topStart past them. Returns false if Top held no live events,
// which (called with no rungs and an empty Bottom) means the queue is
// empty; topStart then resets so the next insert starts a fresh epoch.
func (q *ladder) spawnFromTop(s *Scheduler) bool {
	live := q.top[:0]
	var min, max Time
	for _, e := range q.top {
		if e.cancel {
			s.recycle(e)
			continue
		}
		if len(live) == 0 || e.at < min {
			min = e.at
		}
		if len(live) == 0 || e.at > max {
			max = e.at
		}
		live = append(live, e)
	}
	if len(live) == 0 {
		q.top = q.top[:0]
		q.topStart = 0
		return false
	}
	r := q.newRung(min, Duration(max-min), len(live))
	for _, e := range live {
		idx := int(int64(e.at-r.start) / int64(r.width))
		if idx >= len(r.buckets) {
			idx = len(r.buckets) - 1
		}
		r.buckets[idx] = append(r.buckets[idx], e)
	}
	q.top = q.top[:0]
	q.rungs = append(q.rungs, r)
	q.topStart = max + 1
	return true
}

// newRung sizes a rung to cover span time units with roughly one live
// event per bucket: width = span/n clamped to the 1µs clock resolution,
// and one extra bucket so every time in [start, start+span] maps inside.
func (q *ladder) newRung(start Time, span Duration, n int) *rung {
	width := span / Duration(n)
	if width < 1 {
		width = 1
	}
	nb := int(int64(span)/int64(width)) + 1
	r := q.getRung()
	r.reset(start, width, nb)
	return r
}

// drain tombstones and recycles every queued event and resets the
// structure to empty, retaining backing storage.
func (q *ladder) drain(s *Scheduler) {
	for i := q.head; i < len(q.bottom); i++ {
		e := q.bottom[i]
		q.bottom[i] = nil
		e.cancel = true
		s.recycle(e)
	}
	q.bottom = q.bottom[:0]
	q.head = 0
	for i := len(q.rungs) - 1; i >= 0; i-- {
		r := q.rungs[i]
		for bi := r.cur; bi < len(r.buckets); bi++ {
			for _, e := range r.buckets[bi] {
				e.cancel = true
				s.recycle(e)
			}
			r.buckets[bi] = r.buckets[bi][:0]
		}
		q.putRung(r)
	}
	q.rungs = q.rungs[:0]
	for _, e := range q.top {
		e.cancel = true
		s.recycle(e)
	}
	q.top = q.top[:0]
	q.topStart = 0
}

func (q *ladder) getRung() *rung {
	if n := len(q.rungFree); n > 0 {
		r := q.rungFree[n-1]
		q.rungFree = q.rungFree[:n-1]
		return r
	}
	return &rung{}
}

func (q *ladder) putRung(r *rung) {
	if len(q.rungFree) <= ladderMaxRungs {
		q.rungFree = append(q.rungFree, r)
	}
}
