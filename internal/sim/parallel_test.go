package sim

import (
	"sync"
	"testing"
)

// markRunner records its fire clock (as the scheduler reports it for
// its shard) and optionally reschedules itself once.
type markRunner struct {
	s       *Scheduler
	shard   int
	fires   []Time
	resched Duration // when > 0, reschedule once this far ahead
}

func (m *markRunner) RunEvent() {
	m.fires = append(m.fires, m.s.NowFor(m.shard))
	if m.resched > 0 {
		m.s.AfterShardRunner(m.shard, m.resched, m)
		m.resched = 0
	}
}

// TestParallelDrainBasics drives one begin/drain/end cycle by hand and
// checks the lane mechanics: strict deadline, per-lane clocks, lane
// sequence namespacing, mid-drain rescheduling, and the accounting fold
// back into the shared counters.
func TestParallelDrainBasics(t *testing.T) {
	s := NewScheduler()
	s.ConfigureShards(2, Second)

	r0 := &markRunner{s: s, shard: 0, resched: 30 * Microsecond}
	r1 := &markRunner{s: s, shard: 1}
	s.ScheduleShardRunner(0, Time(10), r0)
	s.ScheduleShardRunner(0, Time(20), r0)
	s.ScheduleShardRunner(1, Time(15), r1)
	ladderFired := false
	s.Schedule(Time(12), func() { ladderFired = true })

	s.BeginParallelDrain()
	if got := s.DrainShardUntil(0, Time(20)); got != 1 {
		t.Fatalf("shard 0 drained %d events before t=20, want 1 (strict deadline)", got)
	}
	if got := s.DrainShardUntil(1, Time(20)); got != 1 {
		t.Fatalf("shard 1 drained %d events, want 1", got)
	}
	if ladderFired {
		t.Fatal("ladder event fired during a parallel drain")
	}
	// The reschedule issued at t=10 must carry a lane-namespaced
	// sequence number and land 30µs after the lane clock, not the
	// shared clock (still parked at 0).
	e := s.ScheduleShardRunner(0, Time(25), r0)
	if e.seq < laneSeqBase(0) || e.seq >= laneSeqBase(1) {
		t.Fatalf("mid-drain schedule got seq %d outside lane 0's namespace", e.seq)
	}
	s.EndParallelDrain()

	if want := []Time{Time(10)}; len(r0.fires) != 1 || r0.fires[0] != want[0] {
		t.Fatalf("shard 0 fires %v, want %v (lane clock at the event's own timestamp)", r0.fires, want)
	}
	if s.Executed() != 2 {
		t.Fatalf("Executed %d after fold, want 2", s.Executed())
	}
	// Remaining: shard0 t=20, t=25, reschedule at t=40; shard1 none;
	// ladder t=12.
	if s.Pending() != 4 {
		t.Fatalf("Pending %d after fold, want 4", s.Pending())
	}
	s.RunUntil(Time(40))
	if !ladderFired {
		t.Fatal("ladder event never fired")
	}
	if want := []Time{10, 20, 25, 40}; len(r0.fires) != 4 ||
		r0.fires[1] != 20 || r0.fires[2] != 25 || r0.fires[3] != 40 {
		t.Fatalf("shard 0 fire times %v, want %v", r0.fires, want)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending %d at end, want 0", s.Pending())
	}
}

// TestParallelDrainConcurrent exercises the lanes from real goroutines:
// two shards with interleaved recurring timers drained concurrently
// over many windows must fire exactly the same per-shard sequences as a
// fully sequential merged run (and, under -race, prove the lane state
// partitioning shares nothing).
func TestParallelDrainConcurrent(t *testing.T) {
	run := func(parallel bool) [][]Time {
		s := NewScheduler()
		s.ConfigureShards(2, Second)
		rs := []*markRunner{
			{s: s, shard: 0, resched: 70 * Microsecond},
			{s: s, shard: 1, resched: 110 * Microsecond},
		}
		for i, r := range rs {
			for k := 1; k <= 50; k++ {
				s.ScheduleShardRunner(i, Time(k*37+i*13), r)
			}
		}
		deadline := Time(3000)
		window := Duration(100)
		for s.Now() < deadline {
			barrier := s.Now().Add(window)
			if barrier > deadline {
				barrier = deadline
			}
			if parallel {
				s.BeginParallelDrain()
				var wg sync.WaitGroup
				for shard := 0; shard < 2; shard++ {
					wg.Add(1)
					go func(shard int) {
						defer wg.Done()
						s.DrainShardUntil(shard, barrier)
					}(shard)
				}
				wg.Wait()
				s.EndParallelDrain()
			}
			s.RunUntil(barrier)
		}
		return [][]Time{rs[0].fires, rs[1].fires}
	}

	want := run(false)
	got := run(true)
	for shard := range want {
		if len(got[shard]) != len(want[shard]) {
			t.Fatalf("shard %d fired %d events parallel vs %d sequential",
				shard, len(got[shard]), len(want[shard]))
		}
		for i := range want[shard] {
			if got[shard][i] != want[shard][i] {
				t.Fatalf("shard %d fire %d at %v parallel vs %v sequential",
					shard, i, got[shard][i], want[shard][i])
			}
		}
	}
}

// TestParallelDrainGuards pins the freeze contract: the shared-state
// APIs panic while a drain is open, and the drain entry points panic
// outside one.
func TestParallelDrainGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}

	s := NewScheduler()
	mustPanic("BeginParallelDrain without wheels", s.BeginParallelDrain)
	mustPanic("DrainShardUntil outside a drain", func() { s.DrainShardUntil(0, Time(1)) })
	mustPanic("EndParallelDrain without a begin", s.EndParallelDrain)

	s.ConfigureShards(1, Second)
	r := &markRunner{s: s, shard: 0}
	e := s.ScheduleShardRunner(0, Time(5), r)
	s.BeginParallelDrain()
	mustPanic("Schedule during a drain", func() { s.Schedule(Time(1), func() {}) })
	mustPanic("ScheduleRunner during a drain", func() { s.ScheduleRunner(Time(1), r) })
	mustPanic("ScheduleShard during a drain", func() { s.ScheduleShard(0, Time(1), func() {}) })
	mustPanic("Cancel during a drain", func() { s.Cancel(e) })
	mustPanic("Step during a drain", func() { s.Step() })
	mustPanic("nested BeginParallelDrain", s.BeginParallelDrain)
	s.EndParallelDrain()

	audited := NewScheduler()
	audited.ConfigureShards(1, Second)
	audited.SetAuditHook(func(Time, uint64) {})
	mustPanic("BeginParallelDrain under audit", audited.BeginParallelDrain)

	legacy := NewHeapScheduler()
	mustPanic("BeginParallelDrain on the heap scheduler", legacy.BeginParallelDrain)
}
