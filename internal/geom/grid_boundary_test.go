package geom_test

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geom"
)

// Boundary audit for the grid's clamp arithmetic: points sitting exactly
// on the indexed bounding box's max edge, query centers on exact
// cell-multiple coordinates, and CellRange disks that straddle the
// clamp. Every query must match the brute-force scan bit for bit — an
// off-by-one in cellIndex/CellOf/CellRange shows up here as a dropped or
// duplicated index.
func TestGridBoundaryExactEdges(t *testing.T) {
	const cell = 100.0
	// A lattice whose extremes land exactly on cell multiples, plus the
	// four corners and points epsilon inside/outside the max edge.
	var pts []geom.Point
	for x := 0.0; x <= 500; x += 100 {
		for y := 0.0; y <= 300; y += 100 {
			pts = append(pts, geom.Point{X: x, Y: y})
		}
	}
	maxX, maxY := 500.0, 300.0
	pts = append(pts,
		geom.Point{X: maxX, Y: maxY},
		geom.Point{X: math.Nextafter(maxX, 0), Y: maxY},
		geom.Point{X: maxX, Y: math.Nextafter(maxY, 0)},
		geom.Point{X: 0, Y: maxY},
		geom.Point{X: maxX, Y: 0},
	)
	var g geom.Grid
	g.Rebuild(pts, cell)

	queries := []geom.Point{
		{X: 0, Y: 0}, {X: maxX, Y: maxY}, {X: maxX, Y: 0}, {X: 0, Y: maxY},
		{X: 200, Y: 200},                     // interior exact multiple
		{X: maxX + cell, Y: maxY + cell},     // beyond the max corner
		{X: -cell, Y: -cell},                 // beyond the min corner
		{X: maxX - 1e-9, Y: maxY - 1e-9},     // just inside the edge
		{X: maxX + 1e-9, Y: maxY + 1e-9},     // just outside the edge
		{X: 250, Y: maxY}, {X: maxX, Y: 150}, // mid-edge
	}
	radii := []float64{0, 1e-9, cell / 2, cell, cell * 1.5, 2 * cell, 10 * cell}
	for _, p := range queries {
		for _, r := range radii {
			got := g.Within(p, r, nil)
			want := bruteWithin(pts, p, r)
			if !slices.Equal(got, want) {
				t.Fatalf("Within(%+v, %g): got %v want %v", p, r, got, want)
			}
		}
	}
}

// CellRange disks whose edges land exactly on cell boundaries, or whose
// centers sit outside the box so one or both range endpoints clamp, must
// still cover every in-disk point's cell and stay within the grid.
func TestGridCellRangeStraddlesClamp(t *testing.T) {
	var g geom.Grid
	pts := []geom.Point{{X: 0, Y: 0}, {X: 400, Y: 400}}
	g.Rebuild(pts, 100) // 5x5 cells over [0,400]^2
	cols, rows := g.Cells()

	cases := []struct {
		p geom.Point
		r float64
	}{
		{geom.Point{X: 200, Y: 200}, 100},  // edges exactly on cell lines
		{geom.Point{X: 200, Y: 200}, 200},  // edges exactly on the box border
		{geom.Point{X: 0, Y: 0}, 100},      // min-corner center, left half clamps
		{geom.Point{X: 400, Y: 400}, 100},  // max-corner center, right half clamps
		{geom.Point{X: -150, Y: 200}, 100}, // disk entirely left of the box
		{geom.Point{X: 550, Y: 200}, 100},  // disk entirely right of the box
		{geom.Point{X: -50, Y: -50}, 300},  // disk straddling the min corner
		{geom.Point{X: 450, Y: 450}, 300},  // disk straddling the max corner
		{geom.Point{X: 200, Y: 200}, 1e6},  // disk dwarfing the box
	}
	for _, tc := range cases {
		cx0, cy0, cx1, cy1 := g.CellRange(tc.p, tc.r)
		if cx0 < 0 || cy0 < 0 || cx1 >= cols || cy1 >= rows || cx0 > cx1 || cy0 > cy1 {
			t.Fatalf("CellRange(%+v, %g) = (%d,%d)-(%d,%d) invalid for %dx%d grid",
				tc.p, tc.r, cx0, cy0, cx1, cy1, cols, rows)
		}
		// Sample the disk boundary and interior: every sampled point's
		// clamped cell must fall inside the rectangle.
		for k := 0; k < 64; k++ {
			ang := float64(k) / 64 * 2 * math.Pi
			for _, rad := range []float64{tc.r, tc.r / 2, 0} {
				q := geom.Point{X: tc.p.X + rad*math.Cos(ang), Y: tc.p.Y + rad*math.Sin(ang)}
				qx, qy := g.CellOf(q)
				if qx < cx0 || qx > cx1 || qy < cy0 || qy > cy1 {
					t.Fatalf("q=%+v (cell %d,%d) escapes CellRange(%+v, %g) = (%d,%d)-(%d,%d)",
						q, qx, qy, tc.p, tc.r, cx0, cy0, cx1, cy1)
				}
			}
		}
	}
}

// Randomized boundary property sweep: snapshots whose coordinates are
// drawn from a lattice (so ties with cell edges are common, not
// measure-zero), queried at lattice points, box corners, and the exact
// max edge, always against the brute-force reference.
func TestGridBoundaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var g geom.Grid
	for trial := 0; trial < 200; trial++ {
		cell := []float64{50, 100, 250}[rng.Intn(3)]
		n := 1 + rng.Intn(80)
		pts := make([]geom.Point, n)
		for i := range pts {
			// Half the points on the cell lattice, half uniform.
			if rng.Intn(2) == 0 {
				pts[i] = geom.Point{
					X: float64(rng.Intn(12)) * cell,
					Y: float64(rng.Intn(12)) * cell,
				}
			} else {
				pts[i] = geom.Point{X: rng.Float64() * 11 * cell, Y: rng.Float64() * 11 * cell}
			}
		}
		g.Rebuild(pts, cell)
		for k := 0; k < 10; k++ {
			var p geom.Point
			switch rng.Intn(3) {
			case 0: // lattice point
				p = geom.Point{X: float64(rng.Intn(13)-1) * cell, Y: float64(rng.Intn(13)-1) * cell}
			case 1: // an indexed point (often on the bounding-box edge)
				p = pts[rng.Intn(n)]
			default: // uniform, extending past the box
				p = geom.Point{X: rng.Float64()*14*cell - cell, Y: rng.Float64()*14*cell - cell}
			}
			r := []float64{0, cell / 2, cell, 2 * cell, rng.Float64() * 4 * cell}[rng.Intn(5)]
			got := g.Within(p, r, nil)
			want := bruteWithin(pts, p, r)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d: Within(%+v, %g): got %v want %v", trial, p, r, got, want)
			}
		}
	}
}

// The macro level must tile the fine level exactly: every fine cell maps
// into a macro cell inside the declared dimensions, the macro-cell count
// respects the cap, and small maps collapse to shift 0 (macro == fine).
func TestGridMacroLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var g geom.Grid
	for _, tc := range []struct {
		n         int
		w, h      float64
		cell      float64
		wantShift int // -1 = don't care, assert invariants only
	}{
		{50, 1000, 1000, 500, 0},       // 3x3 fine cells: macro == fine
		{200, 5500, 5500, 500, 0},      // 12x12 = 144 <= 4096
		{500, 150000, 150000, 500, -1}, // 301x301 = 90601 fine cells: shift > 0
		{100, 150000, 500, 500, -1},    // degenerate strip
	} {
		pts := randomPoints(rng, tc.n, tc.w, tc.h)
		g.Rebuild(pts, tc.cell)
		cols, rows := g.Cells()
		mcols, mrows := g.MacroCells()
		shift := g.MacroShift()
		if tc.wantShift >= 0 && shift != tc.wantShift {
			t.Fatalf("%gx%g/%g: MacroShift = %d, want %d", tc.w, tc.h, tc.cell, shift, tc.wantShift)
		}
		if mcols*mrows > 4096 {
			t.Fatalf("%gx%g/%g: %d macro cells exceed the cap", tc.w, tc.h, tc.cell, mcols*mrows)
		}
		if want := (cols + (1 << shift) - 1) >> shift; mcols != want {
			t.Fatalf("macro cols = %d, want %d", mcols, want)
		}
		if want := (rows + (1 << shift) - 1) >> shift; mrows != want {
			t.Fatalf("macro rows = %d, want %d", mrows, want)
		}
		if shift == 0 && (mcols != cols || mrows != rows) {
			t.Fatalf("shift 0 but macro %dx%d != fine %dx%d", mcols, mrows, cols, rows)
		}
		// MacroOf must agree with CellOf >> shift for arbitrary points,
		// clamped inside the macro dimensions.
		for k := 0; k < 200; k++ {
			p := geom.Point{X: rng.Float64()*tc.w*1.4 - 0.2*tc.w, Y: rng.Float64()*tc.h*1.4 - 0.2*tc.h}
			cx, cy := g.CellOf(p)
			mx, my := g.MacroOf(p)
			if mx != cx>>shift || my != cy>>shift {
				t.Fatalf("MacroOf(%+v) = (%d,%d), want CellOf>>%d = (%d,%d)", p, mx, my, shift, cx>>shift, cy>>shift)
			}
			if mx < 0 || my < 0 || mx >= mcols || my >= mrows {
				t.Fatalf("MacroOf(%+v) = (%d,%d) outside %dx%d", p, mx, my, mcols, mrows)
			}
		}
	}
}

// MacroRange inherits CellRange's covering property at the macro level.
func TestGridMacroRangeCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var g geom.Grid
	pts := randomPoints(rng, 400, 60000, 60000)
	g.Rebuild(pts, 500) // ~121x121 fine cells: forces a nonzero shift
	if g.MacroShift() == 0 {
		t.Fatalf("expected a nonzero macro shift for %dx%d fine cells", 121, 121)
	}
	mcols, mrows := g.MacroCells()
	for trial := 0; trial < 2000; trial++ {
		p := geom.Point{X: rng.Float64()*80000 - 10000, Y: rng.Float64()*80000 - 10000}
		r := rng.Float64() * 5000
		mx0, my0, mx1, my1 := g.MacroRange(p, r)
		if mx0 < 0 || my0 < 0 || mx1 >= mcols || my1 >= mrows || mx0 > mx1 || my0 > my1 {
			t.Fatalf("MacroRange(%+v, %g) = (%d,%d)-(%d,%d) outside %dx%d",
				p, r, mx0, my0, mx1, my1, mcols, mrows)
		}
		ang := rng.Float64() * 2 * math.Pi
		rad := rng.Float64() * r
		q := geom.Point{X: p.X + rad*math.Cos(ang), Y: p.Y + rad*math.Sin(ang)}
		qx, qy := g.MacroOf(q)
		if qx < mx0 || qx > mx1 || qy < my0 || qy > my1 {
			t.Fatalf("q=%+v (macro %d,%d) escapes MacroRange(%+v, %g) = (%d,%d)-(%d,%d)",
				q, qx, qy, p, r, mx0, my0, mx1, my1)
		}
	}
}
