package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const r = 500.0 // meters, the paper's radio radius

func TestINTCBoundaryCases(t *testing.T) {
	full := math.Pi * r * r
	if got := INTC(0, r); math.Abs(got-full) > 1e-6 {
		t.Errorf("INTC(0) = %v, want full disk %v", got, full)
	}
	if got := INTC(2*r, r); got != 0 {
		t.Errorf("INTC(2r) = %v, want 0", got)
	}
	if got := INTC(3*r, r); got != 0 {
		t.Errorf("INTC(3r) = %v, want 0 for disjoint circles", got)
	}
	if got := INTC(-1, r); math.Abs(got-full) > 1e-6 {
		t.Errorf("INTC(negative) = %v, want full disk", got)
	}
}

func TestINTCMonotoneDecreasing(t *testing.T) {
	prev := INTC(0, r)
	for d := 10.0; d <= 2*r; d += 10 {
		cur := INTC(d, r)
		if cur > prev+1e-9 {
			t.Fatalf("INTC not monotone at d=%v: %v > %v", d, cur, prev)
		}
		prev = cur
	}
}

// TestPaper61Percent checks the paper's claim that the maximum additional
// coverage of a rebroadcast, at d = r, is about 0.61*pi*r^2.
func TestPaper61Percent(t *testing.T) {
	frac := AdditionalCoverageFraction(r, r)
	if math.Abs(frac-0.61) > 0.005 {
		t.Errorf("additional coverage fraction at d=r is %v, paper says ~0.61", frac)
	}
}

// TestPaper41Percent checks the paper's claim that the average additional
// coverage over a uniformly placed rebroadcaster is about 0.41*pi*r^2.
func TestPaper41Percent(t *testing.T) {
	got := ExpectedAdditionalCoverageFraction(r)
	if math.Abs(got-0.41) > 0.005 {
		t.Errorf("expected additional coverage fraction = %v, paper says ~0.41", got)
	}
}

// TestPaper59PercentContention checks the paper's pairwise contention
// probability of about 59%.
func TestPaper59PercentContention(t *testing.T) {
	got := ExpectedContentionProbability(r)
	if math.Abs(got-0.59) > 0.005 {
		t.Errorf("expected contention probability = %v, paper says ~0.59", got)
	}
}

func TestAdditionalCoverageRange(t *testing.T) {
	prop := func(rawD uint16) bool {
		d := math.Mod(float64(rawD), 2.5*r)
		frac := AdditionalCoverageFraction(d, r)
		return frac >= -1e-12 && frac <= 1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUncoveredFractionNoSenders(t *testing.T) {
	got := UncoveredFraction(Point{0, 0}, nil, r, 64)
	if got != 1 {
		t.Errorf("uncovered fraction with no senders = %v, want 1", got)
	}
}

func TestUncoveredFractionSelfSender(t *testing.T) {
	// A sender at the same point covers everything.
	got := UncoveredFraction(Point{0, 0}, []Point{{0, 0}}, r, 64)
	if got != 0 {
		t.Errorf("uncovered fraction with co-located sender = %v, want 0", got)
	}
}

// TestUncoveredFractionMatchesAnalytic compares the grid estimator for a
// single sender against the closed-form additional coverage.
func TestUncoveredFractionMatchesAnalytic(t *testing.T) {
	for _, d := range []float64{50, 125, 250, 375, 450, 499} {
		got := UncoveredFraction(Point{0, 0}, []Point{{d, 0}}, r, 96)
		want := AdditionalCoverageFraction(d, r)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("d=%v: grid=%v analytic=%v", d, got, want)
		}
	}
}

func TestUncoveredFractionMonotoneInSenders(t *testing.T) {
	center := Point{0, 0}
	senders := []Point{{300, 0}, {-200, 150}, {0, -350}, {100, 300}}
	prev := 1.0
	for i := range senders {
		cur := UncoveredFraction(center, senders[:i+1], r, 64)
		if cur > prev+1e-9 {
			t.Fatalf("adding sender %d increased uncovered fraction: %v > %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestUncoveredFractionDistantSender(t *testing.T) {
	// A sender beyond 2r covers none of the disk.
	got := UncoveredFraction(Point{0, 0}, []Point{{3 * r, 0}}, r, 64)
	if got != 1 {
		t.Errorf("distant sender changed coverage: %v", got)
	}
}

func TestFoldIntoRange(t *testing.T) {
	cases := []struct {
		x, w, want float64
	}{
		{0, 10, 0},
		{5, 10, 5},
		{10, 10, 10},
		{12, 10, 8},   // bounced off far wall
		{20, 10, 0},   // back at origin
		{23, 10, 3},   // second traversal
		{-3, 10, 3},   // bounced off near wall
		{-12, 10, 8},  // bounce then past far wall in mirror space
		{45, 10, 5},   // many periods
		{-45, 10, 5},  // many negative periods
		{0.5, 0, 0},   // degenerate width
		{-0.5, -1, 0}, // negative width treated as degenerate
	}
	for _, c := range cases {
		if got := FoldIntoRange(c.x, c.w); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("FoldIntoRange(%v, %v) = %v, want %v", c.x, c.w, got, c.want)
		}
	}
}

func TestFoldIntoRangeProperty(t *testing.T) {
	prop := func(x float64, rawW uint16) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true // skip degenerate float inputs
		}
		w := float64(rawW%1000) + 1
		got := FoldIntoRange(x, w)
		return got >= 0 && got <= w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFoldContinuity verifies the fold is continuous: adjacent inputs map
// to adjacent outputs, which is what makes it usable for motion.
func TestFoldContinuity(t *testing.T) {
	w := 7.0
	prev := FoldIntoRange(-30, w)
	for x := -30.0 + 0.01; x < 30; x += 0.01 {
		cur := FoldIntoRange(x, w)
		if math.Abs(cur-prev) > 0.011 {
			t.Fatalf("fold discontinuous at x=%v: %v -> %v", x, prev, cur)
		}
		prev = cur
	}
}

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	if d := p.Dist(Point{0, 0}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d2 := p.Dist2(Point{0, 0}); d2 != 25 {
		t.Errorf("Dist2 = %v, want 25", d2)
	}
	if q := p.Add(1, -1); q != (Point{4, 3}) {
		t.Errorf("Add = %v", q)
	}
	if v := p.Sub(Point{1, 1}); v != (Point{2, 3}) {
		t.Errorf("Sub = %v", v)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp wrong")
	}
}
