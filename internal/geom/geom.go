// Package geom provides the planar geometry used throughout the
// broadcast-storm simulator: points and distances, the two-circle
// intersection area INTC(d) from the paper's redundancy analysis, the
// additional coverage offered by a rebroadcast, and union-coverage
// estimation for multiple prior senders.
//
// All radio coverage in the model is a unit disk of radius r around the
// transmitter, matching the paper's assumptions.
package geom

import "math"

// Point is a position on the simulation map, in meters.
type Point struct {
	X, Y float64
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It is
// the preferred comparison form in hot paths because it avoids the
// square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// INTC returns the intersection area of two circles of equal radius r
// whose centers are distance d apart:
//
//	INTC(d) = 4 * Integral_{d/2}^{r} sqrt(r^2 - x^2) dx
//	        = 2 r^2 acos(d/(2r)) - (d/2) sqrt(4 r^2 - d^2)
//
// For d >= 2r the circles are disjoint and the area is 0; for d <= 0 it
// is the full circle area pi*r^2.
func INTC(d, r float64) float64 {
	if d <= 0 {
		return math.Pi * r * r
	}
	if d >= 2*r {
		return 0
	}
	return 2*r*r*math.Acos(d/(2*r)) - (d/2)*math.Sqrt(4*r*r-d*d)
}

// AdditionalCoverage returns the extra area pi*r^2 - INTC(d) covered by a
// rebroadcast from a host at distance d from the (single) host it heard
// the packet from. The paper shows this peaks at about 0.61*pi*r^2 when
// d = r.
func AdditionalCoverage(d, r float64) float64 {
	return math.Pi*r*r - INTC(d, r)
}

// AdditionalCoverageFraction is AdditionalCoverage normalized by the full
// disk area pi*r^2, giving a value in [0, 1].
func AdditionalCoverageFraction(d, r float64) float64 {
	return AdditionalCoverage(d, r) / (math.Pi * r * r)
}

// ExpectedAdditionalCoverageFraction returns the analytic average of the
// additional-coverage fraction over a rebroadcaster placed uniformly at
// random inside the transmitter's disk:
//
//	(1/(pi r^2)) * Integral_0^r 2 pi x [pi r^2 - INTC(x)]/(pi r^2) dx
//
// The paper evaluates this to approximately 0.41. The integral is
// computed by Simpson's rule; the integrand is smooth so a modest panel
// count gives full double precision for our purposes.
func ExpectedAdditionalCoverageFraction(r float64) float64 {
	f := func(x float64) float64 {
		return 2 * math.Pi * x * AdditionalCoverage(x, r) / (math.Pi * r * r)
	}
	return simpson(f, 0, r, 2048) / (math.Pi * r * r)
}

// ExpectedContentionProbability returns the analytic probability,
// derived in the paper's contention analysis, that a second random
// receiver C lies in the intersection area S_{A and B} and thus contends
// with receiver B:
//
//	Integral_0^r [2 pi x INTC(x)/(pi r^2)] / (pi r^2) dx  ~=  0.59
func ExpectedContentionProbability(r float64) float64 {
	f := func(x float64) float64 {
		return 2 * math.Pi * x * INTC(x, r) / (math.Pi * r * r)
	}
	return simpson(f, 0, r, 2048) / (math.Pi * r * r)
}

// simpson integrates f over [a, b] with n panels (n made even).
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 0 {
			sum += 2 * f(x)
		} else {
			sum += 4 * f(x)
		}
	}
	return sum * h / 3
}

// UncoveredFraction estimates the fraction of the disk of radius r around
// center that is NOT covered by any of the disks of radius r around the
// given prior senders. This is the "additional coverage" a rebroadcast by
// the host at center would provide after hearing the packet from every
// host in senders, normalized by pi*r^2.
//
// The estimate uses a deterministic grid with the given resolution
// (points per axis across the disk's bounding square). Grid sampling —
// rather than Monte Carlo — keeps scheme decisions reproducible run to
// run. Resolution 48 bounds the absolute error around 1e-3, far below
// the thresholds the schemes compare against.
func UncoveredFraction(center Point, senders []Point, r float64, resolution int) float64 {
	if resolution < 2 {
		resolution = 2
	}
	r2 := r * r
	step := 2 * r / float64(resolution)
	inside, uncovered := 0, 0
	for i := 0; i < resolution; i++ {
		x := center.X - r + (float64(i)+0.5)*step
		for j := 0; j < resolution; j++ {
			y := center.Y - r + (float64(j)+0.5)*step
			p := Point{x, y}
			if p.Dist2(center) > r2 {
				continue
			}
			inside++
			covered := false
			for _, s := range senders {
				if p.Dist2(s) <= r2 {
					covered = true
					break
				}
			}
			if !covered {
				uncovered++
			}
		}
	}
	if inside == 0 {
		return 0
	}
	return float64(uncovered) / float64(inside)
}

// FoldIntoRange maps an unbounded 1-D coordinate into [0, w] as if the
// moving point reflected elastically off the boundaries at 0 and w. It is
// the standard "unfolding" trick: the reflected trajectory equals the
// free trajectory folded by the triangle wave of period 2w. It lets the
// mobility model compute a bounced position in O(1) without tracking
// individual wall hits.
func FoldIntoRange(x, w float64) float64 {
	if w <= 0 {
		return 0
	}
	period := 2 * w
	x = math.Mod(x, period)
	if x < 0 {
		x += period
	}
	if x > w {
		x = period - x
	}
	return x
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
