package geom_test

import (
	"fmt"

	"repro/internal/geom"
)

// The additional coverage of a rebroadcast peaks at ~61% of the disk
// when the rebroadcaster sits on the sender's range boundary — the
// paper's first analytic observation.
func ExampleAdditionalCoverageFraction() {
	const r = 500.0
	for _, d := range []float64{0, 250, 500} {
		fmt.Printf("d=%3.0fm -> %.2f\n", d, geom.AdditionalCoverageFraction(d, r))
	}
	// Output:
	// d=  0m -> 0.00
	// d=250m -> 0.31
	// d=500m -> 0.61
}

// The expected additional coverage over a uniformly placed rebroadcaster
// is ~41% — the paper's second constant.
func ExampleExpectedAdditionalCoverageFraction() {
	fmt.Printf("%.2f\n", geom.ExpectedAdditionalCoverageFraction(500))
	// Output:
	// 0.41
}
