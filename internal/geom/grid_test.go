package geom_test

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geom"
)

// bruteWithin is the reference implementation Grid must match exactly.
func bruteWithin(pts []geom.Point, p geom.Point, r float64) []int {
	var out []int
	for i, q := range pts {
		if q.Dist2(p) <= r*r {
			out = append(out, i)
		}
	}
	return out
}

func randomPoints(rng *rand.Rand, n int, w, h float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return pts
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var g geom.Grid
	for _, tc := range []struct {
		n    int
		w, h float64
		r    float64
	}{
		{1, 100, 100, 50},
		{10, 1000, 1000, 500},
		{100, 2500, 2500, 500},
		{300, 500, 5500, 500},   // thin strip: degenerate aspect ratio
		{200, 5500, 500, 250},   // radius smaller than cell occupancy
		{150, 2500, 2500, 6000}, // radius covering the whole map
	} {
		pts := randomPoints(rng, tc.n, tc.w, tc.h)
		g.Rebuild(pts, tc.r)
		if g.Len() != tc.n {
			t.Fatalf("Len = %d, want %d", g.Len(), tc.n)
		}
		// Query from every indexed point and from a few arbitrary ones.
		for i := range pts {
			got := g.Within(pts[i], tc.r, nil)
			want := bruteWithin(pts, pts[i], tc.r)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d r=%g Within(%d): got %v want %v", tc.n, tc.r, i, got, want)
			}
			nbr := g.Neighbors(i, tc.r, nil)
			want = slices.DeleteFunc(want, func(j int) bool { return j == i })
			if !slices.Equal(nbr, want) {
				t.Fatalf("n=%d r=%g Neighbors(%d): got %v want %v", tc.n, tc.r, i, nbr, want)
			}
		}
		for k := 0; k < 20; k++ {
			p := geom.Point{X: rng.Float64()*tc.w*1.2 - 0.1*tc.w, Y: rng.Float64()*tc.h*1.2 - 0.1*tc.h}
			got := g.Within(p, tc.r, nil)
			if want := bruteWithin(pts, p, tc.r); !slices.Equal(got, want) {
				t.Fatalf("n=%d r=%g Within(off-grid %v): got %v want %v", tc.n, tc.r, p, got, want)
			}
		}
	}
}

func TestGridRebuildReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var g geom.Grid
	// Rebuilding over snapshots of varying size and geometry must not
	// leak state from earlier builds.
	for round := 0; round < 10; round++ {
		n := 1 + rng.Intn(200)
		pts := randomPoints(rng, n, 3000, 3000)
		g.Rebuild(pts, 500)
		for k := 0; k < 5; k++ {
			i := rng.Intn(n)
			got := g.Within(pts[i], 500, nil)
			if want := bruteWithin(pts, pts[i], 500); !slices.Equal(got, want) {
				t.Fatalf("round %d: got %v want %v", round, got, want)
			}
		}
	}
}

func TestGridCoincidentPoints(t *testing.T) {
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Point{X: 10, Y: 20}
	}
	var g geom.Grid
	g.Rebuild(pts, 500)
	got := g.Neighbors(3, 500, nil)
	if want := []int{0, 1, 2, 4, 5, 6, 7}; !slices.Equal(got, want) {
		t.Fatalf("coincident Neighbors = %v, want %v", got, want)
	}
}

func TestGridEmpty(t *testing.T) {
	var g geom.Grid
	g.Rebuild(nil, 500)
	if got := g.Within(geom.Point{}, 500, nil); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
}

func TestGridAppendsToBuffer(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 9999}}
	var g geom.Grid
	g.Rebuild(pts, 500)
	buf := []int{-1}
	buf = g.Within(geom.Point{X: 50}, 500, buf)
	if want := []int{-1, 0, 1}; !slices.Equal(buf, want) {
		t.Fatalf("append semantics broken: %v, want %v", buf, want)
	}
}

func TestGridBadCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive cell size did not panic")
		}
	}()
	var g geom.Grid
	g.Rebuild([]geom.Point{{}}, 0)
}
