package geom_test

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/geom"
)

// bruteWithin is the reference implementation Grid must match exactly.
func bruteWithin(pts []geom.Point, p geom.Point, r float64) []int {
	var out []int
	for i, q := range pts {
		if q.Dist2(p) <= r*r {
			out = append(out, i)
		}
	}
	return out
}

func randomPoints(rng *rand.Rand, n int, w, h float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return pts
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var g geom.Grid
	for _, tc := range []struct {
		n    int
		w, h float64
		r    float64
	}{
		{1, 100, 100, 50},
		{10, 1000, 1000, 500},
		{100, 2500, 2500, 500},
		{300, 500, 5500, 500},   // thin strip: degenerate aspect ratio
		{200, 5500, 500, 250},   // radius smaller than cell occupancy
		{150, 2500, 2500, 6000}, // radius covering the whole map
	} {
		pts := randomPoints(rng, tc.n, tc.w, tc.h)
		g.Rebuild(pts, tc.r)
		if g.Len() != tc.n {
			t.Fatalf("Len = %d, want %d", g.Len(), tc.n)
		}
		// Query from every indexed point and from a few arbitrary ones.
		for i := range pts {
			got := g.Within(pts[i], tc.r, nil)
			want := bruteWithin(pts, pts[i], tc.r)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d r=%g Within(%d): got %v want %v", tc.n, tc.r, i, got, want)
			}
			nbr := g.Neighbors(i, tc.r, nil)
			want = slices.DeleteFunc(want, func(j int) bool { return j == i })
			if !slices.Equal(nbr, want) {
				t.Fatalf("n=%d r=%g Neighbors(%d): got %v want %v", tc.n, tc.r, i, nbr, want)
			}
		}
		for k := 0; k < 20; k++ {
			p := geom.Point{X: rng.Float64()*tc.w*1.2 - 0.1*tc.w, Y: rng.Float64()*tc.h*1.2 - 0.1*tc.h}
			got := g.Within(p, tc.r, nil)
			if want := bruteWithin(pts, p, tc.r); !slices.Equal(got, want) {
				t.Fatalf("n=%d r=%g Within(off-grid %v): got %v want %v", tc.n, tc.r, p, got, want)
			}
		}
	}
}

func TestGridRebuildReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var g geom.Grid
	// Rebuilding over snapshots of varying size and geometry must not
	// leak state from earlier builds.
	for round := 0; round < 10; round++ {
		n := 1 + rng.Intn(200)
		pts := randomPoints(rng, n, 3000, 3000)
		g.Rebuild(pts, 500)
		for k := 0; k < 5; k++ {
			i := rng.Intn(n)
			got := g.Within(pts[i], 500, nil)
			if want := bruteWithin(pts, pts[i], 500); !slices.Equal(got, want) {
				t.Fatalf("round %d: got %v want %v", round, got, want)
			}
		}
	}
}

func TestGridCoincidentPoints(t *testing.T) {
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Point{X: 10, Y: 20}
	}
	var g geom.Grid
	g.Rebuild(pts, 500)
	got := g.Neighbors(3, 500, nil)
	if want := []int{0, 1, 2, 4, 5, 6, 7}; !slices.Equal(got, want) {
		t.Fatalf("coincident Neighbors = %v, want %v", got, want)
	}
}

func TestGridEmpty(t *testing.T) {
	var g geom.Grid
	g.Rebuild(nil, 500)
	if got := g.Within(geom.Point{}, 500, nil); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
}

func TestGridAppendsToBuffer(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 100}, {X: 9999}}
	var g geom.Grid
	g.Rebuild(pts, 500)
	buf := []int{-1}
	buf = g.Within(geom.Point{X: 50}, 500, buf)
	if want := []int{-1, 0, 1}; !slices.Equal(buf, want) {
		t.Fatalf("append semantics broken: %v, want %v", buf, want)
	}
}

func TestGridBadCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive cell size did not panic")
		}
	}()
	var g geom.Grid
	g.Rebuild([]geom.Point{{}}, 0)
}

func TestGridCellOfAndCells(t *testing.T) {
	var g geom.Grid
	pts := []geom.Point{{X: 0, Y: 0}, {X: 950, Y: 450}}
	g.Rebuild(pts, 100)
	cols, rows := g.Cells()
	if cols != 10 || rows != 5 {
		t.Fatalf("Cells = (%d, %d), want (10, 5)", cols, rows)
	}
	if cx, cy := g.CellOf(geom.Point{X: 250, Y: 130}); cx != 2 || cy != 1 {
		t.Errorf("CellOf(250,130) = (%d,%d), want (2,1)", cx, cy)
	}
	// Out-of-bounds points clamp to boundary cells.
	if cx, cy := g.CellOf(geom.Point{X: -50, Y: -50}); cx != 0 || cy != 0 {
		t.Errorf("CellOf below min = (%d,%d), want (0,0)", cx, cy)
	}
	if cx, cy := g.CellOf(geom.Point{X: 5000, Y: 5000}); cx != cols-1 || cy != rows-1 {
		t.Errorf("CellOf above max = (%d,%d), want (%d,%d)", cx, cy, cols-1, rows-1)
	}
}

// CellRange must cover: for any center p (inside or outside the indexed
// box) and any point q within r of p, CellOf(q) lies inside
// CellRange(p, r). The interference engine's locality argument rests on
// exactly this property.
func TestGridCellRangeCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var g geom.Grid
	pts := randomPoints(rng, 60, 800, 600)
	g.Rebuild(pts, 75)
	for trial := 0; trial < 2000; trial++ {
		// Centers sampled well beyond the box to exercise clamping.
		p := geom.Point{X: rng.Float64()*1600 - 400, Y: rng.Float64()*1200 - 300}
		r := rng.Float64() * 300
		cx0, cy0, cx1, cy1 := g.CellRange(p, r)
		if cx0 < 0 || cy0 < 0 {
			t.Fatalf("negative range corner (%d,%d)", cx0, cy0)
		}
		cols, rows := g.Cells()
		if cx1 >= cols || cy1 >= rows || cx0 > cx1 || cy0 > cy1 {
			t.Fatalf("range (%d,%d)-(%d,%d) outside %dx%d grid", cx0, cy0, cx1, cy1, cols, rows)
		}
		// Random q within the disk.
		ang := rng.Float64() * 2 * math.Pi
		rad := rng.Float64() * r
		q := geom.Point{X: p.X + rad*math.Cos(ang), Y: p.Y + rad*math.Sin(ang)}
		qx, qy := g.CellOf(q)
		if qx < cx0 || qx > cx1 || qy < cy0 || qy > cy1 {
			t.Fatalf("q=%+v (cell %d,%d) escapes CellRange(%+v, %g) = (%d,%d)-(%d,%d)",
				q, qx, qy, p, r, cx0, cy0, cx1, cy1)
		}
	}
}
