package geom

import "slices"

// Grid is a uniform spatial index over a fixed snapshot of points. It
// answers "which points lie within r of here" in time proportional to
// the local density rather than the population size, which turns the
// channel's per-transmission receiver discovery and the network's
// connected-component walks from O(N) scans into O(deg) lookups.
//
// The grid uses cells of edge length equal to the query radius, so any
// disk of that radius is covered by at most a 3x3 block of cells.
// Rebuild reuses all internal storage; a zero Grid is ready for its
// first Rebuild.
//
// Invariants (relied on by the phy equivalence guarantees):
//   - Queries return indices in ascending order, matching what a linear
//     scan over the snapshot produces.
//   - Queries are exact: candidate cells are filtered by true squared
//     distance, so results are identical to the brute-force scan, not
//     an approximation.
type Grid struct {
	cell       float64
	minX, minY float64
	cols, rows int
	pts        []Point

	// CSR cell layout: items[start[c]:start[c+1]] holds the indices of
	// the points in cell c, ascending (the counting sort below places
	// points in index order).
	start []int32
	items []int32

	// Macro level: a second, coarser grid whose cells are square blocks
	// of 2^macroShift fine cells. Rebuild picks the smallest shift that
	// keeps the macro-cell count at or below maxMacroCells, so on small
	// maps the shift is zero and the macro level coincides with the fine
	// level, while a sparse mega-map (300×300 fine cells) collapses to a
	// few thousand macro cells. Consumers that keep per-cell side tables
	// (the channel's interference buckets) key them by macro cell, so
	// their O(cells) clear/rebuild cost is bounded by maxMacroCells no
	// matter how large the map grows.
	macroShift           int
	macroCols, macroRows int
}

// maxMacroCells bounds the macro-level cell count. 4096 keeps a side
// table of slice headers under 100 KB — small enough to clear per
// snapshot rebuild — while a 64×64 macro layout still localizes queries
// on any map this simulator runs.
const maxMacroCells = 4096

// Rebuild indexes the given snapshot with the given cell edge (normally
// the radio radius). The snapshot slice is retained until the next
// Rebuild; callers must not mutate it while querying.
func (g *Grid) Rebuild(pts []Point, cell float64) {
	if cell <= 0 {
		panic("geom: non-positive grid cell size")
	}
	g.cell = cell
	g.pts = pts
	if len(pts) == 0 {
		g.cols, g.rows = 0, 0
		g.macroShift, g.macroCols, g.macroRows = 0, 0, 0
		return
	}

	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		minX = min(minX, p.X)
		maxX = max(maxX, p.X)
		minY = min(minY, p.Y)
		maxY = max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)/cell) + 1
	g.rows = int((maxY-minY)/cell) + 1

	shift := 0
	for ((g.cols+(1<<shift)-1)>>shift)*((g.rows+(1<<shift)-1)>>shift) > maxMacroCells {
		shift++
	}
	g.macroShift = shift
	g.macroCols = (g.cols + (1 << shift) - 1) >> shift
	g.macroRows = (g.rows + (1 << shift) - 1) >> shift

	ncells := g.cols * g.rows
	if cap(g.start) < ncells+1 {
		g.start = make([]int32, ncells+1)
	} else {
		g.start = g.start[:ncells+1]
		clear(g.start)
	}
	if cap(g.items) < len(pts) {
		g.items = make([]int32, len(pts))
	} else {
		g.items = g.items[:len(pts)]
	}

	// Counting sort by cell: count, prefix-sum, place. Placing in point
	// order keeps each cell's index list ascending.
	for _, p := range pts {
		g.start[g.cellIndex(p)+1]++
	}
	for c := 0; c < ncells; c++ {
		g.start[c+1] += g.start[c]
	}
	// The second pass uses start[c] as the write cursor for cell c;
	// after placing, start[c] holds the end of cell c, i.e. the start of
	// cell c+1, so one shift restores the offsets.
	for i, p := range pts {
		c := g.cellIndex(p)
		g.items[g.start[c]] = int32(i)
		g.start[c]++
	}
	copy(g.start[1:], g.start[:ncells])
	g.start[0] = 0
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// At returns the snapshot position of point i.
func (g *Grid) At(i int) Point { return g.pts[i] }

// cellIndex maps a point to its row-major cell index.
func (g *Grid) cellIndex(p Point) int32 {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	// Guard against floating-point edge effects on the max boundary.
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return int32(cy*g.cols + cx)
}

// Cells returns the grid dimensions in cells (columns, rows). Both are
// zero before the first Rebuild or when the snapshot is empty.
func (g *Grid) Cells() (cols, rows int) { return g.cols, g.rows }

// CellOf returns the clamped cell coordinates containing p. Points
// outside the indexed bounding box map to the nearest boundary cell, so
// the result is always a valid coordinate pair for a non-empty grid.
// Row-major cell index = cy*cols + cx.
func (g *Grid) CellOf(p Point) (cx, cy int) {
	cx = clampCell(int((p.X-g.minX)/g.cell), g.cols)
	cy = clampCell(int((p.Y-g.minY)/g.cell), g.rows)
	return cx, cy
}

// CellRange returns the clamped cell-coordinate rectangle covering the
// disk of radius r around p: any point q with Dist(p, q) <= r has
// CellOf(q) within [cx0, cx1] x [cy0, cy1]. Because both CellOf and the
// range endpoints clamp into the grid, the covering property holds even
// for disks that extend past (or centers that lie outside) the indexed
// bounding box — out-of-bounds points collapse into boundary cells the
// range then includes. Callers iterate the rectangle for neighborhood
// scans wider than the 3x3 block the cell = radius layout gives Within
// (e.g. the channel's radius-2r interference queries).
func (g *Grid) CellRange(p Point, r float64) (cx0, cy0, cx1, cy1 int) {
	cx0 = clampCell(int((p.X-r-g.minX)/g.cell), g.cols)
	cx1 = clampCell(int((p.X+r-g.minX)/g.cell), g.cols)
	cy0 = clampCell(int((p.Y-r-g.minY)/g.cell), g.rows)
	cy1 = clampCell(int((p.Y+r-g.minY)/g.cell), g.rows)
	return cx0, cy0, cx1, cy1
}

// Within appends to buf every index i with Dist(pts[i], p) <= r, in
// ascending order, and returns the extended slice.
func (g *Grid) Within(p Point, r float64, buf []int) []int {
	if len(g.pts) == 0 {
		return buf
	}
	cx0, cy0, cx1, cy1 := g.CellRange(p, r)
	r2 := r * r
	from := len(buf)
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.cols
		lo, hi := g.start[row+cx0], g.start[row+cx1+1]
		for _, i := range g.items[lo:hi] {
			if g.pts[i].Dist2(p) <= r2 {
				buf = append(buf, int(i))
			}
		}
	}
	// Cells were visited row-major, so the concatenation is not globally
	// ascending; restore the linear-scan order the callers rely on.
	slices.Sort(buf[from:])
	return buf
}

// Neighbors is Within(pts[i], r) excluding i itself: the unit-disk
// neighbor set of point i, ascending.
func (g *Grid) Neighbors(i int, r float64, buf []int) []int {
	from := len(buf)
	buf = g.Within(g.pts[i], r, buf)
	for k := from; k < len(buf); k++ {
		if buf[k] == i {
			return append(buf[:k], buf[k+1:]...)
		}
	}
	return buf
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// MacroShift returns log2 of the macro-cell edge in fine cells: 0 means
// the macro level coincides with the fine level.
func (g *Grid) MacroShift() int { return g.macroShift }

// MacroCells returns the macro-level dimensions (columns, rows). Both
// are zero before the first Rebuild or when the snapshot is empty. The
// product never exceeds maxMacroCells.
func (g *Grid) MacroCells() (cols, rows int) { return g.macroCols, g.macroRows }

// MacroOf returns the clamped macro-cell coordinates containing p:
// CellOf shifted down to the macro level, so the same clamping rules
// apply. Row-major macro index = my*macroCols + mx.
func (g *Grid) MacroOf(p Point) (mx, my int) {
	cx, cy := g.CellOf(p)
	return cx >> g.macroShift, cy >> g.macroShift
}

// MacroRange returns the clamped macro-cell rectangle covering the disk
// of radius r around p: any point q with Dist(p, q) <= r has MacroOf(q)
// within [mx0, mx1] x [my0, my1]. It inherits CellRange's covering
// property — shifting both endpoints of a fine-cell interval down
// preserves containment of every shifted fine cell in between.
func (g *Grid) MacroRange(p Point, r float64) (mx0, my0, mx1, my1 int) {
	cx0, cy0, cx1, cy1 := g.CellRange(p, r)
	s := g.macroShift
	return cx0 >> s, cy0 >> s, cx1 >> s, cy1 >> s
}
