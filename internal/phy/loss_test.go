package phy

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

func TestLossRateDropsExpectedFraction(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	ch.SetLoss(0.3, sim.NewRNG(9))
	recv := &fakeListener{}
	tx := ch.Attach(static(geom.Point{}), &fakeListener{})
	ch.Attach(static(geom.Point{X: 100}), recv)

	const frames = 2000
	for i := 0; i < frames; i++ {
		i := i
		sched.Schedule(sim.Time(i)*sim.Time(3*sim.Millisecond), func() {
			ch.Transmit(tx, bcastFrame(0), nil)
		})
		_ = i
	}
	sched.Run()

	got := float64(len(recv.delivered)) / frames
	if math.Abs(got-0.7) > 0.05 {
		t.Errorf("delivery fraction = %v, want ~0.7 at loss rate 0.3", got)
	}
	st := ch.Stats()
	if st.Lost+st.Deliveries != frames {
		t.Errorf("lost %d + delivered %d != %d", st.Lost, st.Deliveries, frames)
	}
	if len(recv.garbled) != 0 {
		t.Error("loss produced garbled callbacks; it must be silent")
	}
}

func TestZeroLossDeliversEverything(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	recv := &fakeListener{}
	tx := ch.Attach(static(geom.Point{}), &fakeListener{})
	ch.Attach(static(geom.Point{X: 100}), recv)
	for i := 0; i < 50; i++ {
		i := i
		sched.Schedule(sim.Time(i)*sim.Time(3*sim.Millisecond), func() {
			ch.Transmit(tx, bcastFrame(0), nil)
		})
	}
	sched.Run()
	if len(recv.delivered) != 50 {
		t.Errorf("delivered %d of 50 without loss model", len(recv.delivered))
	}
	if ch.Stats().Lost != 0 {
		t.Errorf("lost = %d without loss model", ch.Stats().Lost)
	}
}

func TestSetLossValidation(t *testing.T) {
	ch := NewChannel(sim.NewScheduler(), DSSSTiming(), 500)
	for _, rate := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLoss(%v) did not panic", rate)
				}
			}()
			ch.SetLoss(rate, sim.NewRNG(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetLoss with nil rng did not panic")
			}
		}()
		ch.SetLoss(0.5, nil)
	}()
	// Rate 0 with nil rng is fine (disables the model).
	ch.SetLoss(0, nil)
}
