package phy

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

// fakeListener records channel callbacks.
type fakeListener struct {
	busy, idle       int
	delivered        []*packet.Frame
	garbled          []*packet.Frame
	onDeliver        func(f *packet.Frame)
	onCarrierBusy    func()
	deliverGarbledFn func(f *packet.Frame)
}

func (l *fakeListener) CarrierBusy() {
	l.busy++
	if l.onCarrierBusy != nil {
		l.onCarrierBusy()
	}
}
func (l *fakeListener) CarrierIdle() { l.idle++ }
func (l *fakeListener) Deliver(f *packet.Frame) {
	l.delivered = append(l.delivered, f)
	if l.onDeliver != nil {
		l.onDeliver(f)
	}
}
func (l *fakeListener) DeliverGarbled(f *packet.Frame) {
	l.garbled = append(l.garbled, f)
	if l.deliverGarbledFn != nil {
		l.deliverGarbledFn(f)
	}
}

func static(p geom.Point) PositionFunc {
	return func(sim.Time) geom.Point { return p }
}

func bcastFrame(sender packet.NodeID) *packet.Frame {
	return packet.NewBroadcast(packet.BroadcastID{Source: sender, Seq: 1}, sender, geom.Point{})
}

func TestAirtimeMatchesPaperNumbers(t *testing.T) {
	tm := DSSSTiming()
	// 280 bytes at 1 Mbps = 2240 us payload + 144 + 48 us PLCP.
	if got := tm.Airtime(280); got != 2432*sim.Microsecond {
		t.Errorf("airtime(280B) = %v, want 2432us", got)
	}
	if got := tm.Airtime(0); got != 192*sim.Microsecond {
		t.Errorf("airtime(0B) = %v, want PLCP-only 192us", got)
	}
}

func TestDeliveryInRange(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	a := &fakeListener{}
	b := &fakeListener{}
	far := &fakeListener{}
	ra := ch.Attach(static(geom.Point{X: 0}), a)
	ch.Attach(static(geom.Point{X: 400}), b)
	ch.Attach(static(geom.Point{X: 901}), far)

	done := false
	air := ch.Transmit(ra, bcastFrame(0), TxEndFunc(func() { done = true }))
	if air != 2432*sim.Microsecond {
		t.Fatalf("airtime = %v", air)
	}
	sched.Run()

	if len(b.delivered) != 1 {
		t.Errorf("in-range radio got %d frames, want 1", len(b.delivered))
	}
	if len(far.delivered) != 0 || len(far.garbled) != 0 {
		t.Errorf("out-of-range radio heard something: %d/%d", len(far.delivered), len(far.garbled))
	}
	if len(a.delivered) != 0 {
		t.Error("sender delivered its own frame to itself")
	}
	if !done {
		t.Error("onDone not called")
	}
	st := ch.Stats()
	if st.Transmissions != 1 || st.Deliveries != 1 || st.Collisions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCarrierSenseTransitions(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	a := &fakeListener{}
	b := &fakeListener{}
	ra := ch.Attach(static(geom.Point{X: 0}), a)
	rb := ch.Attach(static(geom.Point{X: 100}), b)

	ch.Transmit(ra, bcastFrame(0), nil)
	if !ch.CarrierBusyAt(rb) || !ch.CarrierBusyAt(ra) {
		t.Error("carrier not busy during transmission")
	}
	if b.busy != 1 {
		t.Errorf("receiver saw %d busy transitions, want 1", b.busy)
	}
	sched.Run()
	if ch.CarrierBusyAt(rb) || ch.CarrierBusyAt(ra) {
		t.Error("carrier still busy after transmission end")
	}
	if b.idle != 1 || a.idle != 1 {
		t.Errorf("idle transitions: a=%d b=%d, want 1 each", a.idle, b.idle)
	}
}

func TestOverlappingTransmissionsCollide(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	// Two senders both in range of a middle receiver; senders are out of
	// range of each other (hidden terminals).
	s1 := &fakeListener{}
	s2 := &fakeListener{}
	mid := &fakeListener{}
	r1 := ch.Attach(static(geom.Point{X: 0}), s1)
	rm := ch.Attach(static(geom.Point{X: 450}), mid)
	r2 := ch.Attach(static(geom.Point{X: 900}), s2)
	_ = rm

	ch.Transmit(r1, bcastFrame(0), nil)
	// Second transmission starts midway through the first.
	sched.After(1000*sim.Microsecond, func() {
		ch.Transmit(r2, bcastFrame(2), nil)
	})
	sched.Run()

	if len(mid.delivered) != 0 {
		t.Errorf("middle host decoded %d frames despite overlap", len(mid.delivered))
	}
	if len(mid.garbled) != 2 {
		t.Errorf("middle host saw %d garbled frames, want 2", len(mid.garbled))
	}
	if ch.Stats().Collisions != 2 {
		t.Errorf("collisions = %d, want 2", ch.Stats().Collisions)
	}
}

func TestNonOverlappingReceiversUnaffected(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	// s1 -> a, s2 -> b, disjoint neighborhoods; both succeed even though
	// transmissions overlap in time.
	s1, a, s2, b := &fakeListener{}, &fakeListener{}, &fakeListener{}, &fakeListener{}
	r1 := ch.Attach(static(geom.Point{X: 0}), s1)
	ch.Attach(static(geom.Point{X: 400}), a)
	r2 := ch.Attach(static(geom.Point{X: 5000}), s2)
	ch.Attach(static(geom.Point{X: 5400}), b)

	ch.Transmit(r1, bcastFrame(0), nil)
	ch.Transmit(r2, bcastFrame(2), nil)
	sched.Run()

	if len(a.delivered) != 1 || len(b.delivered) != 1 {
		t.Errorf("spatially disjoint transmissions interfered: a=%d b=%d",
			len(a.delivered), len(b.delivered))
	}
}

func TestTransmitterCannotReceiveWhileSending(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	a, b := &fakeListener{}, &fakeListener{}
	ra := ch.Attach(static(geom.Point{X: 0}), a)
	rb := ch.Attach(static(geom.Point{X: 100}), b)

	ch.Transmit(ra, bcastFrame(0), nil)
	sched.After(100*sim.Microsecond, func() {
		ch.Transmit(rb, bcastFrame(1), nil)
	})
	sched.Run()

	// Both are in each other's range and overlapped: neither decodes.
	if len(a.delivered) != 0 || len(b.delivered) != 0 {
		t.Errorf("half-duplex violation: a=%d b=%d decoded", len(a.delivered), len(b.delivered))
	}
}

func TestBackToBackTransmissionsDoNotCollide(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	a, b := &fakeListener{}, &fakeListener{}
	ra := ch.Attach(static(geom.Point{X: 0}), a)
	rb := ch.Attach(static(geom.Point{X: 100}), b)

	air := ch.Timing().Airtime(280)
	ch.Transmit(ra, bcastFrame(0), nil)
	// Second frame starts exactly when the first ends (FIFO ordering on
	// the same instant: the finish event was scheduled first).
	sched.Schedule(sim.Time(air), func() {
		ch.Transmit(rb, bcastFrame(1), nil)
	})
	sched.Run()

	if len(b.delivered) != 1 {
		t.Errorf("b decoded %d, want 1", len(b.delivered))
	}
	if len(a.delivered) != 1 {
		t.Errorf("a decoded %d, want 1 (back-to-back, no overlap)", len(a.delivered))
	}
}

func TestDoubleTransmitPanics(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	a := &fakeListener{}
	ra := ch.Attach(static(geom.Point{}), a)
	ch.Transmit(ra, bcastFrame(0), nil)
	defer func() {
		if recover() == nil {
			t.Error("transmitting while already transmitting did not panic")
		}
	}()
	ch.Transmit(ra, bcastFrame(0), nil)
}

func TestInRangeAndPositions(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	a := ch.Attach(static(geom.Point{X: 0}), &fakeListener{})
	b := ch.Attach(static(geom.Point{X: 500}), &fakeListener{})
	c := ch.Attach(static(geom.Point{X: 501}), &fakeListener{})
	if !ch.InRange(a, b) {
		t.Error("hosts at exactly r apart should be in range")
	}
	if ch.InRange(a, c) {
		t.Error("hosts beyond r reported in range")
	}
	if ch.NumRadios() != 3 {
		t.Errorf("NumRadios = %d", ch.NumRadios())
	}
	if got := ch.PositionOf(b); got != (geom.Point{X: 500}) {
		t.Errorf("PositionOf = %+v", got)
	}
}

func TestThreeWayCollision(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	recv := &fakeListener{}
	ch.Attach(static(geom.Point{X: 0, Y: 0}), recv)
	var senders []int
	for i := 0; i < 3; i++ {
		senders = append(senders, ch.Attach(static(geom.Point{X: float64(i+1) * 50}), &fakeListener{}))
	}
	for i, s := range senders {
		s := s
		sched.After(sim.Duration(i*200)*sim.Microsecond, func() {
			ch.Transmit(s, bcastFrame(packet.NodeID(s)), nil)
		})
	}
	sched.Run()
	if len(recv.delivered) != 0 {
		t.Errorf("receiver decoded %d of 3 overlapping frames", len(recv.delivered))
	}
	if len(recv.garbled) != 3 {
		t.Errorf("receiver saw %d garbled, want 3", len(recv.garbled))
	}
}

func TestAttachValidation(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	defer func() {
		if recover() == nil {
			t.Error("Attach(nil, nil) did not panic")
		}
	}()
	ch.Attach(nil, nil)
}

func TestNewChannelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewChannel with radius 0 did not panic")
		}
	}()
	NewChannel(sim.NewScheduler(), DSSSTiming(), 0)
}
