package phy

import "repro/internal/obs"

// Observe registers the channel's telemetry series on a collector and
// enables the busy-time accounting they read. Call before traffic
// starts; a nil collector leaves the channel uninstrumented (the busy
// integral stays gated off, so the hot path cost is one false branch
// per carrier transition).
func (c *Channel) Observe(o *obs.Collector) {
	if o == nil {
		return
	}
	c.obsBusy = true
	c.busyLast = c.sched.Now()
	o.Gauge("phy.busy_radio_seconds", c.BusyRadioSeconds)
	o.Gauge("phy.active_transmissions", func() float64 { return float64(len(c.active)) })
	o.Gauge("phy.transmissions", func() float64 { return float64(c.stats.Transmissions) })
	o.Gauge("phy.deliveries", func() float64 { return float64(c.stats.Deliveries) })
	o.Gauge("phy.collisions", func() float64 { return float64(c.stats.Collisions) })
	o.Gauge("phy.lost", func() float64 { return float64(c.stats.Lost) })
	o.Gauge("phy.tx_pool_hit_rate", c.TxPoolHitRate)
}
