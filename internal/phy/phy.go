// Package phy models the shared radio medium: a unit-disk channel in
// which every host within the transmission radius of a sender hears its
// frame, carrier sensing reports the medium busy to every host inside
// any active sender's range, and two transmissions that overlap in time
// at a receiver garble each other there (no capture effect, no collision
// detection) — exactly the conditions the paper's collision analysis
// assumes for broadcast frames.
package phy

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/pdes"
	"repro/internal/sim"
)

// Listener receives channel callbacks for one radio. Implemented by the
// MAC layer.
type Listener interface {
	// CarrierBusy signals the medium transitioned idle -> busy at this
	// radio (some in-range transmission started, possibly its own).
	CarrierBusy()
	// CarrierIdle signals the medium transitioned busy -> idle.
	CarrierIdle()
	// Deliver hands up a frame that was received intact (in range for
	// the whole airtime and free of overlapping transmissions).
	Deliver(f *packet.Frame)
	// DeliverGarbled reports that a frame addressed into this radio's
	// range was destroyed by a collision. MACs typically ignore it; the
	// metrics layer counts it.
	DeliverGarbled(f *packet.Frame)
}

// Positioner reports a radio's position at a simulated time. Movers
// (mobility.Mover implementations) satisfy it directly, so attaching a
// radio stores the mover itself — no per-radio method-value closure.
// It must be pure in t: concurrent readers (snapshot fill, the
// band-parallel walker) evaluate positions with no synchronization.
type Positioner interface {
	PositionAt(t sim.Time) geom.Point
}

// PositionFunc adapts a bare position function to Positioner.
type PositionFunc func(t sim.Time) geom.Point

// PositionAt implements Positioner.
func (f PositionFunc) PositionAt(t sim.Time) geom.Point { return f(t) }

// TxEnder is notified when a transmission's airtime ends. The MAC hands
// the channel a pointer to a handler embedded in its own struct, so
// starting a transmission allocates no completion closure.
type TxEnder interface {
	TxEnded()
}

// TxEndFunc adapts a bare function to TxEnder.
type TxEndFunc func()

// TxEnded implements TxEnder.
func (f TxEndFunc) TxEnded() { f() }

// Auditor is the channel's view of the runtime invariant auditor
// (implemented by internal/check.Auditor): pure observation callbacks
// for packet conservation and the transmission-record/frame pool
// lifecycle. Declared here as a narrow interface so phy does not depend
// on the auditor package; a nil Auditor (the default) costs one branch
// per hook point.
type Auditor interface {
	// AuditTransmit observes a frame going on the air with the given
	// number of in-range receivers.
	AuditTransmit(at sim.Time, sender, receivers int)
	// AuditTransmitEnd observes the transmission's airtime ending after
	// all of its copies resolved; transmissions still in flight when a
	// run stops never report it.
	AuditTransmitEnd(at sim.Time, sender, receivers int)
	// AuditDelivered / AuditCollided / AuditLost observe each in-range
	// copy's single resolution.
	AuditDelivered(at sim.Time, receiver int)
	AuditCollided(at sim.Time, receiver int)
	AuditLost(at sim.Time, receiver int)
	// AuditAcquire / AuditRelease / AuditUse track pooled records.
	AuditAcquire(at sim.Time, pool string, rec any)
	AuditRelease(at sim.Time, pool string, rec any)
	AuditUse(at sim.Time, pool string, rec any)
}

// Timing describes the physical layer bit timing. The zero value is not
// usable; use DSSSTiming for the paper's parameters.
type Timing struct {
	BitRateMbps   float64      // payload transmission rate
	PLCPPreamble  sim.Duration // physical preamble airtime
	PLCPHeader    sim.Duration // physical header airtime
	SlotTime      sim.Duration // MAC slot (exposed here for convenience)
	SIFS          sim.Duration
	DIFS          sim.Duration
	CWMin         int // minimum contention window (slots)
	CWMax         int // maximum contention window (slots)
	AssessmentMax int // scheme-level random assessment delay, slots (0..AssessmentMax)
}

// DSSSTiming returns the IEEE 802.11 DSSS timing used throughout the
// paper's simulations: 1 Mbps, slot 20 us, SIFS 10 us, DIFS 50 us,
// PLCP preamble 144 us, PLCP header 48 us, backoff window 31-1023.
func DSSSTiming() Timing {
	return Timing{
		BitRateMbps:   1.0,
		PLCPPreamble:  144 * sim.Microsecond,
		PLCPHeader:    48 * sim.Microsecond,
		SlotTime:      20 * sim.Microsecond,
		SIFS:          10 * sim.Microsecond,
		DIFS:          50 * sim.Microsecond,
		CWMin:         31,
		CWMax:         1023,
		AssessmentMax: 31,
	}
}

// Airtime returns the full transmission duration of a frame of the given
// payload size: PLCP preamble + PLCP header + payload bits at the bit
// rate. With the paper's parameters a 280-byte broadcast takes 2432 us.
func (t Timing) Airtime(bytes int) sim.Duration {
	bits := float64(bytes * 8)
	payload := sim.Duration(bits / t.BitRateMbps) // 1 Mbps -> 1 us per bit
	return t.PLCPPreamble + t.PLCPHeader + payload
}

// Stats aggregates channel-level counters across a run.
type Stats struct {
	Transmissions int // frames put on the air
	Deliveries    int // intact frame receptions
	Collisions    int // garbled frame receptions
	Lost          int // receptions dropped by the random loss model
}

// transmission is one frame in flight.
type transmission struct {
	frame     *packet.Frame
	sender    int        // radio index
	senderPos geom.Point // sender position at transmission start
	end       sim.Time
	receivers []int // radio indices in range at start (excluding sender)
	// Exactly one garbled-set representation is live per channel:
	// the bitset engine (the default) keeps the receiver set and the
	// destroyed-copy set as word-parallel bitsets, while the legacy
	// engine (DisableInterference) keeps the original map. The map
	// doubles as the mode discriminator: non-nil means legacy.
	recvSet    *nodeset.Set // receiver bitset (mirror of receivers)
	garbledSet *nodeset.Set // receivers whose copy was destroyed
	garbled    map[int]bool // legacy representation of garbledSet
	// cell is the interference-index bucket currently holding this
	// record (-1 while unindexed).
	cell int32
	// onDone is the caller's completion handler for this flight. The
	// record is its own end-of-airtime sim.Runner (RunEvent calls
	// ch.finish), so scheduling the finish allocates no closure and the
	// armed event is classifiable by sender — which is how speculative
	// windows route an in-flight transmission's end to its band's lane.
	// endEvent is the armed end-of-airtime event, kept so a checkpoint
	// can record its exact (at, seq) key.
	onDone   TxEnder
	ch       *Channel
	endEvent *sim.Event
	// lane is the speculative lane currently owning this flight, -1
	// outside speculative windows.
	lane int32
}

// RunEvent implements sim.Runner: the end-of-airtime callback.
func (tx *transmission) RunEvent() { tx.ch.finish(tx) }

// TransmissionSender reports the sending radio of an armed end-of-airtime
// event's runner. The speculative classifier uses it to route extracted
// events it does not otherwise recognize.
func TransmissionSender(r sim.Runner) (int, bool) {
	tx, ok := r.(*transmission)
	if !ok {
		return 0, false
	}
	return tx.sender, true
}

// garble marks receiver i's copy destroyed in whichever representation
// this record carries.
func (tx *transmission) garble(i int) {
	if tx.garbled != nil {
		tx.garbled[i] = true
		return
	}
	tx.garbledSet.Add(packet.NodeID(i))
}

// isGarbled reports whether receiver i's copy was destroyed.
func (tx *transmission) isGarbled(i int) bool {
	if tx.garbled != nil {
		return tx.garbled[i]
	}
	return tx.garbledSet.Contains(packet.NodeID(i))
}

// Channel is the shared medium. It is owned by a single Scheduler and is
// not safe for concurrent use.
type Channel struct {
	// DisableCollisions, when set before any transmission, delivers
	// every in-range copy intact even under temporal overlap. It exists
	// for ablation studies that isolate how much of the broadcast storm
	// damage is due to collisions (carrier sensing still operates).
	DisableCollisions bool

	// DisableIndex, when set before any transmission, answers every
	// range query with the original O(radios) linear scan instead of the
	// spatial grid. The grid is a pure optimization — both paths must
	// produce identical results — so this switch exists only for the
	// equivalence tests and benchmarks that prove it.
	DisableIndex bool

	// DisableInterference, when set before any transmission, resolves
	// overlap with the legacy engine: a global scan over every active
	// transmission, a scratch membership table per Transmit, and per-
	// record garbled maps. The default engine buckets active
	// transmissions by their sender's grid cell and intersects receiver
	// bitsets only against senders within interference range (2×radius
	// plus mobility drift), which is a pure optimization — both engines
	// must produce identical results — so this switch exists only for
	// the equivalence tests and benchmarks that prove it. Toggling it
	// after traffic has started is not supported: in-flight and pooled
	// transmission records carry the engine's representation.
	DisableInterference bool

	// Random per-reception loss (fading/shadowing failure injection),
	// configured with SetLoss. Zero rate means the pure unit-disk model.
	lossRate float64
	lossRNG  *sim.RNG

	// captureRatio, when positive, enables the capture effect: of two
	// overlapping frames at a receiver, the one whose sender is at least
	// sqrt(captureRatio) times closer survives (a free-space power ratio
	// of captureRatio). Zero keeps the paper's model: any overlap
	// destroys both copies.
	captureRatio float64

	sched  *sim.Scheduler
	timing Timing
	radius float64
	stats  Stats

	positions []Positioner
	listeners []Listener
	// busyCount[i] is the number of active transmissions whose range
	// covers radio i (including radio i's own transmission).
	busyCount []int
	// active transmissions currently on the air, for overlap checks.
	active []*transmission
	// transmitting[i] reports whether radio i is currently sending.
	transmitting []bool

	// Spatial index over a position snapshot. Positions are pure
	// functions of simulated time, so a snapshot taken at one clock
	// value serves every query at that instant exactly; with a declared
	// speed bound (SetMaxSpeed) it additionally serves later instants as
	// a candidate prefilter, with the query radius inflated by the
	// maximum distance any radio can have drifted since the snapshot
	// and every candidate re-checked against its live position.
	grid       geom.Grid
	snapTime   sim.Time
	gridOK     bool
	gridGen    uint64 // bumped on every snapshot rebuild
	snap       []geom.Point
	speedBound float64
	hasBound   bool

	// Interference index: the active transmissions bucketed by the grid
	// macro cell of their sender's start position, rebuilt lazily (from
	// the tiny active list) whenever the snapshot grid re-snapshots.
	// Senders more than 2×radius + drift apart cannot share a receiver,
	// so a new transmission resolves overlap only against the buckets
	// its MacroRange(senderPos, 2r+drift) rectangle covers. Keying by
	// macro cell (geom.Grid's coarse level, capped at a few thousand
	// cells however large the map) bounds the per-rebuild clear and the
	// bucket table itself, so a sparse mega-map does not pay O(fine
	// cells) here; on small maps the macro level coincides with the fine
	// level and nothing changes. maxAir bounds how long any flight can
	// have been on the air, and hence how far a receiver can have
	// drifted between two membership snapshots.
	buckets  [][]*transmission
	ifxGen   uint64 // gridGen the buckets were last rebuilt for
	ifxDirty bool   // buckets hold stale pointers (a speculative window stripped them)
	maxAir   sim.Duration

	// Speculative-window state: while specBands > 0 the active list is
	// partitioned into one chLane per horizontal map band and every
	// transmission runs entirely inside its band (guarded at TransmitLane;
	// a violation flags the lane's window for rollback). specHeight is
	// the map height the band mapping divides.
	specBands  int
	specHeight float64
	specLanes  []chLane

	// Scratch reused across Transmit calls so the hot path does not
	// allocate: member marks the current frame's receiver set for the
	// legacy engine's O(deg) overlap checks, ovl holds the receiver
	// intersection the capture rule walks, and txFree recycles finished
	// transmission records (receiver slices and garbled sets included).
	member []bool
	ovl    []packet.NodeID
	txFree []*transmission
	// Transmission-record pool effectiveness, exposed via TxPoolStats
	// and the phy.tx_pool_hit_rate telemetry gauge.
	txPoolHits   uint64
	txPoolMisses uint64

	// audit, when non-nil, receives conservation and pool-lifecycle
	// observations (SetAudit).
	audit Auditor

	// Worker pool (sharded engine only): parallelizes snapshot position
	// evaluation across index ranges and backs the band-parallel
	// reachability walker. Both uses are pure functions of mover state,
	// so results are identical with or without the pool.
	pool   *pdes.Pool
	walker *pdes.Walker

	// Channel-load accounting for the telemetry subsystem, gated on
	// obsBusy so uninstrumented runs pay a single branch per carrier
	// transition. busyRadios counts radios currently sensing carrier;
	// busyIntegral accumulates radio-seconds of busy time up to
	// busyLast, advanced at every transition.
	obsBusy      bool
	busyRadios   int
	busyIntegral float64
	busyLast     sim.Time
}

// NewChannel creates a channel with the given radio radius in meters.
func NewChannel(sched *sim.Scheduler, timing Timing, radius float64) *Channel {
	if radius <= 0 {
		panic("phy: non-positive radio radius")
	}
	return &Channel{sched: sched, timing: timing, radius: radius}
}

// SetAudit attaches an invariant auditor observing this channel's
// transmissions, per-copy outcomes, and transmission-record pool. Call
// before traffic starts; a nil auditor leaves the channel unaudited.
func (c *Channel) SetAudit(a Auditor) { c.audit = a }

// Timing returns the channel's PHY timing parameters.
func (c *Channel) Timing() Timing { return c.timing }

// Radius returns the transmission radius in meters.
func (c *Channel) Radius() float64 { return c.radius }

// Stats returns the channel counters accumulated so far.
func (c *Channel) Stats() Stats { return c.stats }

// Attach registers a radio and returns its index. All radios must be
// attached before the simulation starts transmitting.
func (c *Channel) Attach(pos Positioner, l Listener) int {
	if pos == nil || l == nil {
		panic("phy: Attach with nil position or listener")
	}
	c.positions = append(c.positions, pos)
	c.listeners = append(c.listeners, l)
	c.busyCount = append(c.busyCount, 0)
	c.transmitting = append(c.transmitting, false)
	return len(c.positions) - 1
}

// AttachBatch claims n radio slots in one append per backing slice and
// returns the index of the first. The slots must each be bound with
// SetRadio before the simulation starts; binding is a per-slot write, so
// the sharded engine fills the batch from parallel workers (Attach's
// shared appends could not).
func (c *Channel) AttachBatch(n int) int {
	if n <= 0 {
		panic("phy: AttachBatch with non-positive count")
	}
	base := len(c.positions)
	c.positions = append(c.positions, make([]Positioner, n)...)
	c.listeners = append(c.listeners, make([]Listener, n)...)
	c.busyCount = append(c.busyCount, make([]int, n)...)
	c.transmitting = append(c.transmitting, make([]bool, n)...)
	return base
}

// SetRadio binds a slot claimed by AttachBatch. Each slot must be bound
// exactly once.
func (c *Channel) SetRadio(i int, pos Positioner, l Listener) {
	if pos == nil || l == nil {
		panic("phy: SetRadio with nil position or listener")
	}
	if c.positions[i] != nil || c.listeners[i] != nil {
		panic("phy: SetRadio slot already bound")
	}
	c.positions[i] = pos
	c.listeners[i] = l
}

// SetPool attaches a worker pool the channel uses to parallelize
// snapshot position evaluation and reachability walks. Both are pure
// functions of mover state, so the results — and therefore simulation
// summaries — are identical with or without a pool. Call before the
// simulation starts.
func (c *Channel) SetPool(p *pdes.Pool) {
	c.pool = p
	c.walker = nil
}

// NumRadios returns the number of attached radios.
func (c *Channel) NumRadios() int { return len(c.positions) }

// PositionOf returns radio i's current position.
func (c *Channel) PositionOf(i int) geom.Point {
	return c.positions[i].PositionAt(c.sched.Now())
}

// InRange reports whether radios i and j are currently within radio
// range of each other. A single pairwise check needs exactly the two
// live positions, which is already cheaper than any index lookup, so it
// bypasses the grid entirely (and is therefore trivially identical
// between the indexed and linear modes).
func (c *Channel) InRange(i, j int) bool {
	now := c.sched.Now()
	return c.positions[i].PositionAt(now).Dist2(c.positions[j].PositionAt(now)) <= c.radius*c.radius
}

// SetMaxSpeed declares an upper bound, in meters per second, on how fast
// any attached radio can move. The bound lets the spatial index serve
// queries from a slightly stale snapshot — candidates are gathered with
// the query radius inflated by the maximum possible drift and then
// re-checked against live positions — so the O(radios) snapshot rebuild
// amortizes over many transmissions instead of recurring at every
// distinct timestamp. An underestimate would silently drop receivers;
// callers must bound the fastest mover, not the average. Zero is valid
// and means the radios never move. Without a declared bound the index
// stays exact by rebuilding whenever the clock advances.
func (c *Channel) SetMaxSpeed(mps float64) {
	if mps < 0 {
		panic("phy: negative speed bound")
	}
	c.speedBound = mps
	c.hasBound = true
	c.gridOK = false
}

// maxStaleFraction bounds snapshot staleness: the index is rebuilt once
// radios could have drifted further than this fraction of the radio
// radius, keeping the candidate over-approximation (and hence the
// per-query live re-check work) small.
const maxStaleFraction = 0.25

// driftEpsilon absorbs floating-point slack between a mover's computed
// displacement and the analytic speed*age bound.
const driftEpsilon = 1e-6

// Neighbors appends to buf the radios currently within range of radio i
// (excluding i itself), in ascending order, and returns the extended
// slice. The result is a snapshot valid only at the current simulated
// time.
func (c *Channel) Neighbors(i int, buf []int) []int {
	if c.DisableIndex {
		now := c.sched.Now()
		pi := c.positions[i].PositionAt(now)
		r2 := c.radius * c.radius
		for j := range c.positions {
			if j != i && c.positions[j].PositionAt(now).Dist2(pi) <= r2 {
				buf = append(buf, j)
			}
		}
		return buf
	}
	c.refresh()
	now := c.sched.Now()
	if now == c.snapTime {
		return c.grid.Neighbors(i, c.radius, buf)
	}
	return c.staleNeighbors(i, c.positions[i].PositionAt(now), now, buf)
}

// refresh ensures the spatial index is usable at the current clock
// value: fresh enough that the drift margin stays within budget, and
// covering every attached radio. Movers are continuous at their segment
// boundaries, so a snapshot taken at time t is identical no matter where
// within t's event cascade it is taken.
func (c *Channel) refresh() {
	now := c.sched.Now()
	if c.gridOK && len(c.snap) == len(c.positions) {
		if now == c.snapTime {
			return
		}
		if c.hasBound && c.driftMargin(now) <= c.radius*maxStaleFraction {
			return
		}
	}
	c.rebuildSnapshot(now)
}

// parallelSnapshotMin is the population below which parallel snapshot
// evaluation is not worth the dispatch overhead.
const parallelSnapshotMin = 4096

// rebuildSnapshot re-evaluates every radio position at now and rebuilds
// the grid over the fresh snapshot. With a pool attached and enough
// radios, position evaluation fans out over the workers; each writes a
// disjoint index range and movers are pure in t, so the snapshot is
// bit-identical to the sequential fill.
func (c *Channel) rebuildSnapshot(now sim.Time) {
	n := len(c.positions)
	if cap(c.snap) < n {
		c.snap = make([]geom.Point, n)
	}
	c.snap = c.snap[:n]
	if c.pool != nil && n >= parallelSnapshotMin {
		c.pool.Do(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.snap[i] = c.positions[i].PositionAt(now)
			}
		})
	} else {
		for i, pos := range c.positions {
			c.snap[i] = pos.PositionAt(now)
		}
	}
	c.grid.Rebuild(c.snap, c.radius)
	c.snapTime = now
	c.gridOK = true
	c.gridGen++
}

// CountReachable returns the number of radios connected to src
// (including src) in the current unit-disk graph, via a breadth-first
// walk — band-parallel across the pool when one is attached. Adjacency
// is answered exactly the way Neighbors answers it: from the grid when
// the snapshot is current, otherwise by filtering inflated-radius grid
// candidates against exact live positions. Either way the edge set is
// the live unit-disk graph at the current instant, so the count is
// identical to a sequential BFS over Neighbors queries — band
// decomposition changes visit order, never membership — and no forced
// snapshot rebuild is needed.
func (c *Channel) CountReachable(src int) int {
	c.refresh()
	now := c.sched.Now()
	if c.walker == nil {
		c.walker = pdes.NewWalker(c.pool)
	}
	if now == c.snapTime {
		return c.walker.Count(&c.grid, c.gridGen, c.snap, src, func(u int, buf []int) []int {
			return c.grid.Neighbors(u, c.radius, buf)
		})
	}
	// Stale snapshot: candidates from the drift-inflated grid query,
	// membership from exact live distance. Concurrent band workers only
	// read shared channel state (positions are pure in t), so the query
	// is safe to run in parallel.
	return c.walker.Count(&c.grid, c.gridGen, c.snap, src, func(u int, buf []int) []int {
		return c.staleNeighbors(u, c.positions[u].PositionAt(now), now, buf)
	})
}

// driftMargin returns how far any radio can have moved since the
// snapshot was taken.
func (c *Channel) driftMargin(now sim.Time) float64 {
	age := now.Sub(c.snapTime)
	if age <= 0 {
		return 0
	}
	return c.speedBound*age.Seconds() + driftEpsilon
}

// staleNeighbors answers a neighbor query for radio i (live position pi)
// from a stale snapshot: the inflated-radius grid query yields a
// guaranteed superset of the true in-range set, which is then filtered
// by exact live distance — so the result is identical to a linear scan,
// at the cost of O(local density) live position evaluations instead of
// O(radios).
func (c *Channel) staleNeighbors(i int, pi geom.Point, now sim.Time, buf []int) []int {
	m := c.driftMargin(now)
	from := len(buf)
	buf = c.grid.Within(pi, c.radius+m, buf)
	out := buf[:from]
	r2 := c.radius * c.radius
	for _, j := range buf[from:] {
		if j != i && c.positions[j].PositionAt(now).Dist2(pi) <= r2 {
			out = append(out, j)
		}
	}
	return out
}

// Transmit puts a frame on the air from the given radio, returning the
// airtime. The MAC must have done its carrier-sense/backoff work; the
// channel does not police access timing. onDone, if non-nil, runs when
// the transmission ends (after delivery callbacks).
func (c *Channel) Transmit(radio int, f *packet.Frame, onDone TxEnder) sim.Duration {
	if c.transmitting[radio] {
		panic(fmt.Sprintf("phy: radio %d transmitting twice", radio))
	}
	now := c.sched.Now()
	air := c.timing.Airtime(f.Bytes)
	if air > c.maxAir {
		c.maxAir = air
	}
	tx := c.newTransmission(f, radio, now.Add(air))
	c.stats.Transmissions++
	c.transmitting[radio] = true

	if c.DisableIndex {
		senderPos := c.positions[radio].PositionAt(now)
		tx.senderPos = senderPos
		r2 := c.radius * c.radius
		for i := range c.positions {
			if i == radio {
				continue
			}
			if c.positions[i].PositionAt(now).Dist2(senderPos) <= r2 {
				tx.receivers = append(tx.receivers, i)
			}
		}
	} else {
		c.refresh()
		if now == c.snapTime {
			tx.senderPos = c.snap[radio]
			tx.receivers = c.grid.Neighbors(radio, c.radius, tx.receivers)
		} else {
			tx.senderPos = c.positions[radio].PositionAt(now)
			tx.receivers = c.staleNeighbors(radio, tx.senderPos, now, tx.receivers)
		}
	}

	// Collision rule: any temporal overlap at a common receiver garbles
	// both copies (unless the capture effect lets the much-stronger one
	// through); a receiver that is itself transmitting cannot decode.
	local := false
	if c.DisableInterference {
		c.legacyOverlapScan(tx, radio, now)
	} else {
		for _, i := range tx.receivers {
			tx.recvSet.Add(packet.NodeID(i))
		}
		// Localizing overlap needs both the grid (for the buckets) and a
		// declared speed bound (to cap how far a receiver can drift
		// between two membership snapshots); without either, fall back
		// to scanning the whole active list with the bitset rule.
		local = !c.DisableIndex && c.hasBound
		if local {
			c.localOverlapScan(tx, now)
		} else {
			for _, other := range c.active {
				c.resolveAgainst(tx, other, now)
			}
		}
	}
	for _, i := range tx.receivers {
		// A receiver already transmitting cannot decode the new frame.
		if c.transmitting[i] {
			tx.garble(i)
		}
	}
	c.active = append(c.active, tx)
	if local {
		c.bucketAdd(tx)
	}
	if c.audit != nil {
		// The frame must be live at the moment it goes on the air: a
		// pooled frame recycled while still queued would surface here.
		c.audit.AuditUse(now, "frame", f)
		c.audit.AuditTransmit(now, radio, len(tx.receivers))
	}

	// Carrier becomes busy for the sender and all in-range radios.
	c.raiseBusy(radio)
	for _, i := range tx.receivers {
		c.raiseBusy(i)
	}

	tx.onDone = onDone
	tx.endEvent = c.sched.ScheduleRunner(tx.end, tx)
	return air
}

// chLane is the per-band resource set a speculative window's lane runs
// on: its share of the active list, its own stats and transmission-
// record pool, all folded back into the shared fields at commit.
// Everything here is touched only by the lane's own goroutine while a
// window is open.
type chLane struct {
	active       []*transmission
	stats        Stats
	maxAir       sim.Duration
	txFree       []*transmission
	txPoolHits   uint64
	txPoolMisses uint64
}

// specBandOf maps a Y coordinate to its band, with the same clamped
// linear mapping the manet engine uses to assign hosts to shards.
func (c *Channel) specBandOf(y float64) int {
	return bandOf(y, c.specHeight, c.specBands)
}

func bandOf(y, height float64, bands int) int {
	b := int(y / height * float64(bands))
	if b < 0 {
		return 0
	}
	if b >= bands {
		return bands - 1
	}
	return b
}

// SpecWindowViable reports whether BeginSpecWindow would succeed on the
// current state: the identical border test, run without opening (or
// mutating) anything. Callers probe it before paying for the
// micro-checkpoint a speculative window needs — a window the partition
// would decline anyway then costs nothing but this scan.
func (c *Channel) SpecWindowViable(bands int, height float64) bool {
	if bands <= 1 || c.DisableInterference || c.DisableIndex || !c.hasBound {
		return false
	}
	guard := c.radius + driftEpsilon
	for _, tx := range c.active {
		if bandOf(tx.senderPos.Y-guard, height, bands) != bandOf(tx.senderPos.Y+guard, height, bands) {
			return false
		}
	}
	return true
}

// BeginSpecWindow opens a speculative window over the given number of
// horizontal bands of a map of the given height. It partitions the
// active transmissions into per-band lanes (stripping them from the
// interference buckets, which rebuild lazily afterwards) and reports
// whether the partition is sound: false means some in-flight
// transmission's disk crosses a band border — it may interact with two
// bands — and the caller must run the window sequentially instead.
// Must be called from the scheduler's owning goroutine with no lane
// running.
func (c *Channel) BeginSpecWindow(bands int, height float64) bool {
	if bands <= 1 || c.DisableInterference || c.DisableIndex || !c.hasBound {
		return false
	}
	if c.specBands != 0 {
		panic("phy: speculative window already open")
	}
	c.refresh() // lanes query the grid concurrently; make it usable now
	c.specBands = bands
	c.specHeight = height
	guard := c.radius + driftEpsilon
	for _, tx := range c.active {
		if c.specBandOf(tx.senderPos.Y-guard) != c.specBandOf(tx.senderPos.Y+guard) {
			c.specBands = 0
			return false
		}
	}
	for len(c.specLanes) < bands {
		c.specLanes = append(c.specLanes, chLane{})
	}
	for _, tx := range c.active {
		tx.lane = int32(c.specBandOf(tx.senderPos.Y))
		tx.cell = -1
		ln := &c.specLanes[tx.lane]
		ln.active = append(ln.active, tx)
	}
	clearTxs(c.active)
	c.active = c.active[:0]
	c.ifxDirty = true
	return true
}

func clearTxs(txs []*transmission) {
	for i := range txs {
		txs[i] = nil
	}
}

// CommitSpecWindow closes a validated window: lane actives merge back
// into the shared list (band order; start order within a band) and lane
// counters fold into the shared stats. On rollback the channel object is
// discarded wholesale instead, so there is no abort counterpart.
func (c *Channel) CommitSpecWindow() {
	if c.specBands == 0 {
		panic("phy: CommitSpecWindow without an open window")
	}
	for i := 0; i < c.specBands; i++ {
		ln := &c.specLanes[i]
		for _, tx := range ln.active {
			tx.lane = -1
			c.active = append(c.active, tx)
		}
		clearTxs(ln.active)
		ln.active = ln.active[:0]
		c.stats.Transmissions += ln.stats.Transmissions
		c.stats.Deliveries += ln.stats.Deliveries
		c.stats.Collisions += ln.stats.Collisions
		c.stats.Lost += ln.stats.Lost
		ln.stats = Stats{}
		if ln.maxAir > c.maxAir {
			c.maxAir = ln.maxAir
		}
		ln.maxAir = 0
		c.txPoolHits += ln.txPoolHits
		c.txPoolMisses += ln.txPoolMisses
		ln.txPoolHits, ln.txPoolMisses = 0, 0
	}
	c.specBands = 0
}

// TransmitLane is Transmit routed through a speculative lane: outside a
// window (or for lane -1) it is exactly Transmit; inside one it runs the
// same transmission pipeline against the lane's private active list and
// pools, after proving the sender's whole interference disk lies inside
// the lane's band. Two transmissions whose disks lie inside disjoint
// bands cannot share a receiver, sense each other's carrier, or garble
// one another, so the per-lane pipeline resolves exactly the
// interactions the sequential engine would — a sender that cannot prove
// this flags its lane for rollback and bails before mutating anything.
func (c *Channel) TransmitLane(radio int, f *packet.Frame, onDone TxEnder, lane int) sim.Duration {
	if c.specBands == 0 || lane < 0 {
		return c.Transmit(radio, f, onDone)
	}
	if c.transmitting[radio] {
		panic(fmt.Sprintf("phy: radio %d transmitting twice", radio))
	}
	ln := &c.specLanes[lane]
	now := c.sched.LaneNow(lane)
	air := c.timing.Airtime(f.Bytes)
	senderPos := c.positions[radio].PositionAt(now)
	guard := c.radius + driftEpsilon
	if c.specBandOf(senderPos.Y-guard) != lane || c.specBandOf(senderPos.Y+guard) != lane {
		c.sched.FlagLaneConflict(lane)
		return air
	}
	if air > ln.maxAir {
		ln.maxAir = air
	}
	tx := c.newTransmissionLane(ln, f, radio, now.Add(air))
	tx.lane = int32(lane)
	ln.stats.Transmissions++
	c.transmitting[radio] = true
	tx.senderPos = senderPos
	tx.receivers = c.staleNeighbors(radio, senderPos, now, tx.receivers)
	for _, i := range tx.receivers {
		tx.recvSet.Add(packet.NodeID(i))
	}
	for _, other := range ln.active {
		c.resolveAgainst(tx, other, now)
	}
	for _, i := range tx.receivers {
		if c.transmitting[i] {
			tx.garble(i)
		}
	}
	ln.active = append(ln.active, tx)
	c.raiseBusy(radio)
	for _, i := range tx.receivers {
		c.raiseBusy(i)
	}
	tx.onDone = onDone
	tx.endEvent = c.sched.LaneScheduleRunner(lane, tx.end, tx)
	return air
}

// newTransmissionLane is newTransmission against a lane's private pool.
func (c *Channel) newTransmissionLane(ln *chLane, f *packet.Frame, radio int, end sim.Time) *transmission {
	var tx *transmission
	if n := len(ln.txFree); n > 0 {
		tx = ln.txFree[n-1]
		ln.txFree = ln.txFree[:n-1]
		tx.receivers = tx.receivers[:0]
		tx.recvSet.Clear()
		tx.garbledSet.Clear()
		ln.txPoolHits++
	} else {
		tx = &transmission{cell: -1, lane: -1, ch: c}
		tx.recvSet = nodeset.New(len(c.positions))
		tx.garbledSet = nodeset.New(len(c.positions))
		ln.txPoolMisses++
	}
	tx.frame = f
	tx.sender = radio
	tx.end = end
	return tx
}

// newTransmission takes a transmission record off the free list (or
// allocates one), so steady-state transmissions reuse their receiver
// slices and garbled sets instead of allocating per frame.
func (c *Channel) newTransmission(f *packet.Frame, radio int, end sim.Time) *transmission {
	var tx *transmission
	if n := len(c.txFree); n > 0 {
		tx = c.txFree[n-1]
		c.txFree = c.txFree[:n-1]
		tx.receivers = tx.receivers[:0]
		if tx.garbled != nil {
			clear(tx.garbled)
		} else {
			tx.recvSet.Clear()
			tx.garbledSet.Clear()
		}
		c.txPoolHits++
	} else {
		tx = &transmission{cell: -1, lane: -1, ch: c}
		if c.DisableInterference {
			tx.garbled = make(map[int]bool)
		} else {
			tx.recvSet = nodeset.New(len(c.positions))
			tx.garbledSet = nodeset.New(len(c.positions))
		}
		c.txPoolMisses++
	}
	tx.frame = f
	tx.sender = radio
	tx.end = end
	if c.audit != nil {
		c.audit.AuditAcquire(c.sched.Now(), "phy.tx", tx)
	}
	return tx
}

// legacyOverlapScan is the original overlap engine: every active
// transmission in the whole map is checked receiver by receiver against
// a scratch membership table. Kept selectable (DisableInterference) as
// the oracle the localized engine is proven byte-identical to, and as
// the benchmark baseline its speedup is measured against.
func (c *Channel) legacyOverlapScan(tx *transmission, radio int, now sim.Time) {
	if len(c.member) < len(c.positions) {
		c.member = make([]bool, len(c.positions))
	}
	for _, i := range tx.receivers {
		c.member[i] = true
	}
	for _, other := range c.active {
		for _, i := range other.receivers {
			if c.member[i] {
				c.resolveOverlap(tx, other, i, now)
			}
		}
		// The new sender cannot receive the ongoing frame (half-duplex).
		if contains(other.receivers, radio) {
			other.garbled[radio] = true
		}
		// An ongoing sender cannot receive the new frame.
		if c.member[other.sender] {
			tx.garbled[other.sender] = true
		}
	}
	for _, i := range tx.receivers {
		c.member[i] = false
	}
}

// localOverlapScan resolves overlap for tx against only the active
// transmissions whose senders can possibly share a receiver with it.
// Receiver membership is fixed when a flight starts, so if receiver i
// is covered by both tx (starting now) and an older flight o (started
// at t0), the triangle inequality bounds the sender separation:
//
//	|tx.senderPos - o.senderPos| <= r + r + v·(now-t0)
//
// — i's two membership positions differ by at most the drift v·(now-t0),
// and now-t0 is capped by o's airtime (<= maxAir). The same bound covers
// the two half-duplex rules (a sender is a point of its own flight). Any
// active sender farther than 2r + v·maxAir away is therefore provably
// interference-free and never touched, turning the per-Transmit scan
// from O(all active) into O(locally active).
func (c *Channel) localOverlapScan(tx *transmission, now sim.Time) {
	c.syncBuckets()
	reach := 2*c.radius + c.speedBound*c.maxAir.Seconds() + driftEpsilon
	cx0, cy0, cx1, cy1 := c.grid.MacroRange(tx.senderPos, reach)
	cols, _ := c.grid.MacroCells()
	reach2 := reach * reach
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * cols
		for cx := cx0; cx <= cx1; cx++ {
			for _, other := range c.buckets[row+cx] {
				if other.senderPos.Dist2(tx.senderPos) <= reach2 {
					c.resolveAgainst(tx, other, now)
				}
			}
		}
	}
}

// resolveAgainst applies the collision/capture rule between tx and one
// active transmission using the bitset representation: the receivers
// covered by both flights are the word-parallel intersection of the two
// receiver bitsets, and without capture the whole intersection garbles
// in one pass over the backing words.
func (c *Channel) resolveAgainst(tx, other *transmission, now sim.Time) {
	if c.captureRatio > 0 {
		c.ovl = tx.recvSet.AppendAnd(other.recvSet, c.ovl[:0])
		for _, id := range c.ovl {
			c.resolveOverlap(tx, other, int(id), now)
		}
	} else {
		tx.garbledSet.UnionIntersection(tx.recvSet, other.recvSet)
		other.garbledSet.UnionIntersection(tx.recvSet, other.recvSet)
	}
	// The new sender cannot receive the ongoing frame (half-duplex),
	// and an ongoing sender cannot receive the new frame.
	if other.recvSet.Contains(packet.NodeID(tx.sender)) {
		other.garbledSet.Add(packet.NodeID(tx.sender))
	}
	if tx.recvSet.Contains(packet.NodeID(other.sender)) {
		tx.garbledSet.Add(packet.NodeID(other.sender))
	}
}

// rxPosAt returns receiver i's position at now, served from the grid
// snapshot (a plain array read) when the snapshot is exact for this
// instant — the same rule Transmit applies for receiver discovery —
// instead of re-evaluating the mover function per overlapping pair.
func (c *Channel) rxPosAt(i int, now sim.Time) geom.Point {
	if !c.DisableIndex && c.gridOK && now == c.snapTime && i < len(c.snap) {
		return c.snap[i]
	}
	return c.positions[i].PositionAt(now)
}

// resolveOverlap applies the collision/capture rule for one receiver
// covered by two overlapping transmissions.
func (c *Channel) resolveOverlap(a, b *transmission, i int, now sim.Time) {
	if c.captureRatio > 0 {
		rxPos := c.rxPosAt(i, now)
		da := a.senderPos.Dist2(rxPos)
		db := b.senderPos.Dist2(rxPos)
		// Free-space power goes as 1/d^2, so a power ratio of R means a
		// squared-distance ratio of R.
		switch {
		case db >= da*c.captureRatio:
			b.garble(i) // a captures
			return
		case da >= db*c.captureRatio:
			a.garble(i) // b captures
			return
		}
	}
	a.garble(i)
	b.garble(i)
}

// syncBuckets rebuilds the interference-index buckets when the snapshot
// grid has re-snapshotted since they were last laid out (cell geometry
// follows the snapshot's bounding box). The rebuild walks only the
// active list, so it is O(macro cells + active) — and the macro-cell
// count is capped by the grid regardless of map size — amortizing with
// the grid rebuild that triggered it.
func (c *Channel) syncBuckets() {
	cols, rows := c.grid.MacroCells()
	n := cols * rows
	if !c.ifxDirty && c.ifxGen == c.gridGen && len(c.buckets) == n {
		return
	}
	if cap(c.buckets) < n {
		c.buckets = make([][]*transmission, n)
	} else {
		c.buckets = c.buckets[:n]
		for i := range c.buckets {
			c.buckets[i] = c.buckets[i][:0]
		}
	}
	for _, tx := range c.active {
		c.bucketAdd(tx)
	}
	c.ifxGen = c.gridGen
	c.ifxDirty = false
}

// bucketAdd places an active transmission in the bucket of its sender's
// (clamped) macro cell.
func (c *Channel) bucketAdd(tx *transmission) {
	cx, cy := c.grid.MacroOf(tx.senderPos)
	cols, _ := c.grid.MacroCells()
	cell := int32(cy*cols + cx)
	tx.cell = cell
	c.buckets[cell] = append(c.buckets[cell], tx)
}

// bucketRemove takes a finished transmission out of its bucket
// (swap-remove; buckets hold a handful of records at most).
func (c *Channel) bucketRemove(tx *transmission) {
	b := c.buckets[tx.cell]
	for i, o := range b {
		if o == tx {
			last := len(b) - 1
			b[i] = b[last]
			b[last] = nil
			c.buckets[tx.cell] = b[:last]
			break
		}
	}
	tx.cell = -1
}

// SetCapture enables the capture effect with the given power ratio
// (e.g. 4 = a 6 dB advantage lets the stronger frame survive). ratio <=
// 1 panics; call with 0 via the zero value to keep capture off.
func (c *Channel) SetCapture(ratio float64) {
	if ratio != 0 && ratio <= 1 {
		panic("phy: capture ratio must exceed 1 (or be 0 to disable)")
	}
	c.captureRatio = ratio
}

// finish ends a transmission: delivers intact copies, reports garbled
// ones, and releases the carrier.
func (c *Channel) finish(tx *transmission) {
	if c.specBands > 0 && tx.lane >= 0 {
		c.finishLane(tx)
		return
	}
	if c.audit != nil {
		// Both the record and its frame must still be live at airtime
		// end; a recycle while in flight is a use-after-release.
		now := c.sched.Now()
		c.audit.AuditUse(now, "phy.tx", tx)
		c.audit.AuditUse(now, "frame", tx.frame)
	}
	// Remove from active list first so deliveries that trigger immediate
	// new transmissions (same instant) do not overlap with this one.
	for i, a := range c.active {
		if a == tx {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	c.transmitting[tx.sender] = false
	if tx.cell >= 0 {
		c.bucketRemove(tx)
	}

	c.lowerBusy(tx.sender)
	for _, i := range tx.receivers {
		c.lowerBusy(i)
	}
	for _, i := range tx.receivers {
		switch {
		case tx.isGarbled(i) && !c.DisableCollisions:
			c.stats.Collisions++
			if c.audit != nil {
				c.audit.AuditCollided(c.sched.Now(), i)
			}
			c.listeners[i].DeliverGarbled(tx.frame)
		case c.lossRate > 0 && c.lossRNG.Float64() < c.lossRate:
			// Fading loss: the copy silently vanishes (the receiver still
			// sensed carrier, so MAC timing is unaffected).
			c.stats.Lost++
			if c.audit != nil {
				c.audit.AuditLost(c.sched.Now(), i)
			}
		default:
			c.stats.Deliveries++
			if c.audit != nil {
				c.audit.AuditDelivered(c.sched.Now(), i)
			}
			c.listeners[i].Deliver(tx.frame)
		}
	}
	if tx.onDone != nil {
		tx.onDone.TxEnded()
	}
	// Recycle last: the delivery and onDone callbacks above may have
	// started new transmissions, which must not have been handed this
	// record while it was still being read.
	if c.audit != nil {
		now := c.sched.Now()
		c.audit.AuditTransmitEnd(now, tx.sender, len(tx.receivers))
		c.audit.AuditRelease(now, "phy.tx", tx)
	}
	tx.frame = nil
	tx.onDone = nil
	tx.endEvent = nil
	c.txFree = append(c.txFree, tx)
}

// finishLane is finish inside a speculative window: the same pipeline
// against the owning lane's active list, stats, and record pool. The
// flight's receivers all lie inside the lane's band (TransmitLane proved
// the disk in-band when it started, or the window partition did), so
// every carrier transition and delivery lands on this lane's own hosts.
// Speculation eligibility excludes the loss model, capture, the auditor,
// and the channel-load observer, so none of their shared state is
// reachable here.
func (c *Channel) finishLane(tx *transmission) {
	ln := &c.specLanes[tx.lane]
	for i, a := range ln.active {
		if a == tx {
			last := len(ln.active) - 1
			copy(ln.active[i:], ln.active[i+1:])
			ln.active[last] = nil
			ln.active = ln.active[:last]
			break
		}
	}
	c.transmitting[tx.sender] = false
	c.lowerBusy(tx.sender)
	for _, i := range tx.receivers {
		c.lowerBusy(i)
	}
	for _, i := range tx.receivers {
		if tx.isGarbled(i) && !c.DisableCollisions {
			ln.stats.Collisions++
			c.listeners[i].DeliverGarbled(tx.frame)
		} else {
			ln.stats.Deliveries++
			c.listeners[i].Deliver(tx.frame)
		}
	}
	if tx.onDone != nil {
		tx.onDone.TxEnded()
	}
	tx.frame = nil
	tx.onDone = nil
	tx.endEvent = nil
	ln.txFree = append(ln.txFree, tx)
}

func (c *Channel) raiseBusy(i int) {
	c.busyCount[i]++
	if c.busyCount[i] == 1 {
		if c.obsBusy {
			c.accumBusy()
			c.busyRadios++
		}
		c.listeners[i].CarrierBusy()
	}
}

func (c *Channel) lowerBusy(i int) {
	c.busyCount[i]--
	if c.busyCount[i] < 0 {
		panic("phy: busy count underflow")
	}
	if c.busyCount[i] == 0 {
		if c.obsBusy {
			c.accumBusy()
			c.busyRadios--
		}
		c.listeners[i].CarrierIdle()
	}
}

// accumBusy advances the busy-time integral to the current instant while
// busyRadios is still the count that held since busyLast.
func (c *Channel) accumBusy() {
	now := c.sched.Now()
	if c.busyRadios > 0 {
		c.busyIntegral += float64(c.busyRadios) * now.Sub(c.busyLast).Seconds()
	}
	c.busyLast = now
}

// BusyRadioSeconds returns the cumulative radio-seconds of sensed-busy
// carrier up to the current instant. Dividing a window's increment by
// (window length x radios) gives the mean channel busy fraction — the
// channel-load series the telemetry subsystem samples. Zero unless
// Observe enabled the accounting before traffic started.
func (c *Channel) BusyRadioSeconds() float64 {
	if !c.obsBusy {
		return 0
	}
	now := c.sched.Now()
	s := c.busyIntegral
	if c.busyRadios > 0 {
		s += float64(c.busyRadios) * now.Sub(c.busyLast).Seconds()
	}
	return s
}

// ActiveTransmissions returns the number of frames currently on the air.
func (c *Channel) ActiveTransmissions() int { return len(c.active) }

// EachActiveSender calls fn with the start-of-transmission position of
// every frame currently on the air. The sharded engine's adaptive
// lookahead reads these between barrier windows to decide whether any
// in-flight transmission could interact across a shard band border.
func (c *Channel) EachActiveSender(fn func(geom.Point)) {
	for _, tx := range c.active {
		fn(tx.senderPos)
	}
}

// TxPoolStats returns how many transmission records were served from the
// free list versus freshly allocated.
func (c *Channel) TxPoolStats() (hits, misses uint64) {
	return c.txPoolHits, c.txPoolMisses
}

// TxPoolHitRate returns the fraction of transmissions served from the
// free list (0 before any transmission). Steady state approaches 1: only
// the records covering the peak in-flight count are ever allocated.
func (c *Channel) TxPoolHitRate() float64 {
	total := c.txPoolHits + c.txPoolMisses
	if total == 0 {
		return 0
	}
	return float64(c.txPoolHits) / float64(total)
}

// SetLoss enables independent per-reception Bernoulli loss with the
// given probability, modeling fading/shadowing beyond the unit-disk
// abstraction. rate outside [0, 1) or a nil rng panics.
func (c *Channel) SetLoss(rate float64, rng *sim.RNG) {
	if rate < 0 || rate >= 1 {
		panic("phy: loss rate must be in [0, 1)")
	}
	if rate > 0 && rng == nil {
		panic("phy: loss model needs an RNG")
	}
	c.lossRate = rate
	c.lossRNG = rng
}

// CarrierBusyAt reports whether the medium is currently sensed busy at
// radio i.
func (c *Channel) CarrierBusyAt(i int) bool { return c.busyCount[i] > 0 }

// contains reports membership in an ascending slice by binary search.
func contains(s []int, x int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}
