// Package phy models the shared radio medium: a unit-disk channel in
// which every host within the transmission radius of a sender hears its
// frame, carrier sensing reports the medium busy to every host inside
// any active sender's range, and two transmissions that overlap in time
// at a receiver garble each other there (no capture effect, no collision
// detection) — exactly the conditions the paper's collision analysis
// assumes for broadcast frames.
package phy

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Listener receives channel callbacks for one radio. Implemented by the
// MAC layer.
type Listener interface {
	// CarrierBusy signals the medium transitioned idle -> busy at this
	// radio (some in-range transmission started, possibly its own).
	CarrierBusy()
	// CarrierIdle signals the medium transitioned busy -> idle.
	CarrierIdle()
	// Deliver hands up a frame that was received intact (in range for
	// the whole airtime and free of overlapping transmissions).
	Deliver(f *packet.Frame)
	// DeliverGarbled reports that a frame addressed into this radio's
	// range was destroyed by a collision. MACs typically ignore it; the
	// metrics layer counts it.
	DeliverGarbled(f *packet.Frame)
}

// PositionFunc reports a radio's position at a simulated time.
type PositionFunc func(t sim.Time) geom.Point

// Timing describes the physical layer bit timing. The zero value is not
// usable; use DSSSTiming for the paper's parameters.
type Timing struct {
	BitRateMbps   float64      // payload transmission rate
	PLCPPreamble  sim.Duration // physical preamble airtime
	PLCPHeader    sim.Duration // physical header airtime
	SlotTime      sim.Duration // MAC slot (exposed here for convenience)
	SIFS          sim.Duration
	DIFS          sim.Duration
	CWMin         int // minimum contention window (slots)
	CWMax         int // maximum contention window (slots)
	AssessmentMax int // scheme-level random assessment delay, slots (0..AssessmentMax)
}

// DSSSTiming returns the IEEE 802.11 DSSS timing used throughout the
// paper's simulations: 1 Mbps, slot 20 us, SIFS 10 us, DIFS 50 us,
// PLCP preamble 144 us, PLCP header 48 us, backoff window 31-1023.
func DSSSTiming() Timing {
	return Timing{
		BitRateMbps:   1.0,
		PLCPPreamble:  144 * sim.Microsecond,
		PLCPHeader:    48 * sim.Microsecond,
		SlotTime:      20 * sim.Microsecond,
		SIFS:          10 * sim.Microsecond,
		DIFS:          50 * sim.Microsecond,
		CWMin:         31,
		CWMax:         1023,
		AssessmentMax: 31,
	}
}

// Airtime returns the full transmission duration of a frame of the given
// payload size: PLCP preamble + PLCP header + payload bits at the bit
// rate. With the paper's parameters a 280-byte broadcast takes 2432 us.
func (t Timing) Airtime(bytes int) sim.Duration {
	bits := float64(bytes * 8)
	payload := sim.Duration(bits / t.BitRateMbps) // 1 Mbps -> 1 us per bit
	return t.PLCPPreamble + t.PLCPHeader + payload
}

// Stats aggregates channel-level counters across a run.
type Stats struct {
	Transmissions int // frames put on the air
	Deliveries    int // intact frame receptions
	Collisions    int // garbled frame receptions
	Lost          int // receptions dropped by the random loss model
}

// transmission is one frame in flight.
type transmission struct {
	frame     *packet.Frame
	sender    int        // radio index
	senderPos geom.Point // sender position at transmission start
	end       sim.Time
	receivers []int        // radio indices in range at start (excluding sender)
	garbled   map[int]bool // receivers whose copy was destroyed
}

// Channel is the shared medium. It is owned by a single Scheduler and is
// not safe for concurrent use.
type Channel struct {
	// DisableCollisions, when set before any transmission, delivers
	// every in-range copy intact even under temporal overlap. It exists
	// for ablation studies that isolate how much of the broadcast storm
	// damage is due to collisions (carrier sensing still operates).
	DisableCollisions bool

	// Random per-reception loss (fading/shadowing failure injection),
	// configured with SetLoss. Zero rate means the pure unit-disk model.
	lossRate float64
	lossRNG  *sim.RNG

	// captureRatio, when positive, enables the capture effect: of two
	// overlapping frames at a receiver, the one whose sender is at least
	// sqrt(captureRatio) times closer survives (a free-space power ratio
	// of captureRatio). Zero keeps the paper's model: any overlap
	// destroys both copies.
	captureRatio float64

	sched  *sim.Scheduler
	timing Timing
	radius float64
	stats  Stats

	positions []PositionFunc
	listeners []Listener
	// busyCount[i] is the number of active transmissions whose range
	// covers radio i (including radio i's own transmission).
	busyCount []int
	// active transmissions currently on the air, for overlap checks.
	active []*transmission
	// transmitting[i] reports whether radio i is currently sending.
	transmitting []bool
}

// NewChannel creates a channel with the given radio radius in meters.
func NewChannel(sched *sim.Scheduler, timing Timing, radius float64) *Channel {
	if radius <= 0 {
		panic("phy: non-positive radio radius")
	}
	return &Channel{sched: sched, timing: timing, radius: radius}
}

// Timing returns the channel's PHY timing parameters.
func (c *Channel) Timing() Timing { return c.timing }

// Radius returns the transmission radius in meters.
func (c *Channel) Radius() float64 { return c.radius }

// Stats returns the channel counters accumulated so far.
func (c *Channel) Stats() Stats { return c.stats }

// Attach registers a radio and returns its index. All radios must be
// attached before the simulation starts transmitting.
func (c *Channel) Attach(pos PositionFunc, l Listener) int {
	if pos == nil || l == nil {
		panic("phy: Attach with nil position or listener")
	}
	c.positions = append(c.positions, pos)
	c.listeners = append(c.listeners, l)
	c.busyCount = append(c.busyCount, 0)
	c.transmitting = append(c.transmitting, false)
	return len(c.positions) - 1
}

// NumRadios returns the number of attached radios.
func (c *Channel) NumRadios() int { return len(c.positions) }

// PositionOf returns radio i's current position.
func (c *Channel) PositionOf(i int) geom.Point {
	return c.positions[i](c.sched.Now())
}

// InRange reports whether radios i and j are currently within radio
// range of each other.
func (c *Channel) InRange(i, j int) bool {
	now := c.sched.Now()
	return c.positions[i](now).Dist2(c.positions[j](now)) <= c.radius*c.radius
}

// Transmit puts a frame on the air from the given radio, returning the
// airtime. The MAC must have done its carrier-sense/backoff work; the
// channel does not police access timing. onDone, if non-nil, runs when
// the transmission ends (after delivery callbacks).
func (c *Channel) Transmit(radio int, f *packet.Frame, onDone func()) sim.Duration {
	if c.transmitting[radio] {
		panic(fmt.Sprintf("phy: radio %d transmitting twice", radio))
	}
	now := c.sched.Now()
	air := c.timing.Airtime(f.Bytes)
	tx := &transmission{
		frame:   f,
		sender:  radio,
		end:     now.Add(air),
		garbled: make(map[int]bool),
	}
	c.stats.Transmissions++
	c.transmitting[radio] = true

	senderPos := c.positions[radio](now)
	tx.senderPos = senderPos
	r2 := c.radius * c.radius
	for i := range c.positions {
		if i == radio {
			continue
		}
		if c.positions[i](now).Dist2(senderPos) <= r2 {
			tx.receivers = append(tx.receivers, i)
		}
	}

	// Collision rule: any temporal overlap at a common receiver garbles
	// both copies (unless the capture effect lets the much-stronger one
	// through); a receiver that is itself transmitting cannot decode.
	for _, other := range c.active {
		overlap := intersect(tx.receivers, other.receivers)
		for _, i := range overlap {
			c.resolveOverlap(tx, other, i)
		}
		// The new sender cannot receive the ongoing frame (half-duplex).
		if contains(other.receivers, radio) {
			other.garbled[radio] = true
		}
		// An ongoing sender cannot receive the new frame.
		if contains(tx.receivers, other.sender) {
			tx.garbled[other.sender] = true
		}
	}
	// A receiver already transmitting cannot decode the new frame.
	for _, i := range tx.receivers {
		if c.transmitting[i] {
			tx.garbled[i] = true
		}
	}
	c.active = append(c.active, tx)

	// Carrier becomes busy for the sender and all in-range radios.
	c.raiseBusy(radio)
	for _, i := range tx.receivers {
		c.raiseBusy(i)
	}

	c.sched.Schedule(tx.end, func() {
		c.finish(tx, onDone)
	})
	return air
}

// resolveOverlap applies the collision/capture rule for one receiver
// covered by two overlapping transmissions.
func (c *Channel) resolveOverlap(a, b *transmission, i int) {
	if c.captureRatio > 0 {
		rxPos := c.positions[i](c.sched.Now())
		da := a.senderPos.Dist2(rxPos)
		db := b.senderPos.Dist2(rxPos)
		// Free-space power goes as 1/d^2, so a power ratio of R means a
		// squared-distance ratio of R.
		switch {
		case db >= da*c.captureRatio:
			b.garbled[i] = true // a captures
			return
		case da >= db*c.captureRatio:
			a.garbled[i] = true // b captures
			return
		}
	}
	a.garbled[i] = true
	b.garbled[i] = true
}

// SetCapture enables the capture effect with the given power ratio
// (e.g. 4 = a 6 dB advantage lets the stronger frame survive). ratio <=
// 1 panics; call with 0 via the zero value to keep capture off.
func (c *Channel) SetCapture(ratio float64) {
	if ratio != 0 && ratio <= 1 {
		panic("phy: capture ratio must exceed 1 (or be 0 to disable)")
	}
	c.captureRatio = ratio
}

// finish ends a transmission: delivers intact copies, reports garbled
// ones, and releases the carrier.
func (c *Channel) finish(tx *transmission, onDone func()) {
	// Remove from active list first so deliveries that trigger immediate
	// new transmissions (same instant) do not overlap with this one.
	for i, a := range c.active {
		if a == tx {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	c.transmitting[tx.sender] = false

	c.lowerBusy(tx.sender)
	for _, i := range tx.receivers {
		c.lowerBusy(i)
	}
	for _, i := range tx.receivers {
		switch {
		case tx.garbled[i] && !c.DisableCollisions:
			c.stats.Collisions++
			c.listeners[i].DeliverGarbled(tx.frame)
		case c.lossRate > 0 && c.lossRNG.Float64() < c.lossRate:
			// Fading loss: the copy silently vanishes (the receiver still
			// sensed carrier, so MAC timing is unaffected).
			c.stats.Lost++
		default:
			c.stats.Deliveries++
			c.listeners[i].Deliver(tx.frame)
		}
	}
	if onDone != nil {
		onDone()
	}
}

func (c *Channel) raiseBusy(i int) {
	c.busyCount[i]++
	if c.busyCount[i] == 1 {
		c.listeners[i].CarrierBusy()
	}
}

func (c *Channel) lowerBusy(i int) {
	c.busyCount[i]--
	if c.busyCount[i] < 0 {
		panic("phy: busy count underflow")
	}
	if c.busyCount[i] == 0 {
		c.listeners[i].CarrierIdle()
	}
}

// SetLoss enables independent per-reception Bernoulli loss with the
// given probability, modeling fading/shadowing beyond the unit-disk
// abstraction. rate outside [0, 1) or a nil rng panics.
func (c *Channel) SetLoss(rate float64, rng *sim.RNG) {
	if rate < 0 || rate >= 1 {
		panic("phy: loss rate must be in [0, 1)")
	}
	if rate > 0 && rng == nil {
		panic("phy: loss model needs an RNG")
	}
	c.lossRate = rate
	c.lossRNG = rng
}

// CarrierBusyAt reports whether the medium is currently sensed busy at
// radio i.
func (c *Channel) CarrierBusyAt(i int) bool { return c.busyCount[i] > 0 }

// intersect returns the elements present in both slices. Receiver lists
// are built in ascending radio order, so a linear merge suffices.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// contains reports membership in an ascending slice by binary search.
func contains(s []int, x int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}
