package phy

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/sim"
)

// BadRef is the sentinel a Snapshot resolver returns for an object it
// does not recognize; Snapshot aborts with an error instead of writing
// a dangling reference into the state.
const BadRef = ^uint32(0)

// TxState is one in-flight transmission in a ChannelState. The frame and
// completion handler are recorded as caller-defined references (the
// channel does not own frame identity — the checkpointing layer keeps
// the table of live frames and of per-host completion handlers).
// Receivers are kept in discovery order: delivery callbacks and the
// per-copy loss draws at airtime end consume them in that order.
type TxState struct {
	FrameRef  uint32
	EnderRef  uint32
	Sender    int32
	SenderPos geom.Point
	End       sim.Time
	EndSeq    uint64
	Receivers []int32
	Garbled   []packet.NodeID // subset of Receivers whose copy is destroyed
}

// ChannelState is the channel's checkpointed dynamic state: delivery
// counters, the loss stream, the airtime bound feeding the interference
// window, the transmission-record pool accounting, and every flight on
// the air. The spatial grid, its position snapshot, and the interference
// buckets are pure caches rebuilt on demand and are not serialized.
type ChannelState struct {
	Stats        Stats
	HasLoss      bool
	LossRNG      [4]uint64
	MaxAir       sim.Duration
	TxPoolHits   uint64
	TxPoolMisses uint64
	TxFreeLen    int
	Active       []TxState
}

// Snapshot captures the channel state at a barrier. frameRef and
// enderRef translate the frame pointer and completion handler of each
// active flight into caller-defined references (returning BadRef aborts
// the snapshot); enderRef also receives the sending radio so the caller
// can verify the handler belongs to that radio's MAC.
func (c *Channel) Snapshot(frameRef func(*packet.Frame) uint32, enderRef func(sender int, e TxEnder) uint32) (ChannelState, error) {
	if c.DisableInterference {
		return ChannelState{}, fmt.Errorf("phy: checkpoint unsupported with the legacy interference engine")
	}
	if c.obsBusy {
		return ChannelState{}, fmt.Errorf("phy: checkpoint unsupported with the channel-load observer attached")
	}
	st := ChannelState{
		Stats:        c.stats,
		MaxAir:       c.maxAir,
		TxPoolHits:   c.txPoolHits,
		TxPoolMisses: c.txPoolMisses,
		TxFreeLen:    len(c.txFree),
	}
	if c.lossRNG != nil {
		st.HasLoss = true
		st.LossRNG = c.lossRNG.State()
	}
	for _, tx := range c.active {
		fr := frameRef(tx.frame)
		if fr == BadRef {
			return ChannelState{}, fmt.Errorf("phy: active transmission from radio %d carries an unknown frame", tx.sender)
		}
		er := enderRef(tx.sender, tx.onDone)
		if er == BadRef {
			return ChannelState{}, fmt.Errorf("phy: active transmission from radio %d has an unknown completion handler", tx.sender)
		}
		ts := TxState{
			FrameRef:  fr,
			EnderRef:  er,
			Sender:    int32(tx.sender),
			SenderPos: tx.senderPos,
			End:       tx.end,
			EndSeq:    tx.endEvent.Seq(),
			Receivers: make([]int32, 0, len(tx.receivers)),
			Garbled:   tx.garbledSet.AppendIDs(nil),
		}
		for _, r := range tx.receivers {
			ts.Receivers = append(ts.Receivers, int32(r))
		}
		st.Active = append(st.Active, ts)
	}
	return st, nil
}

// Restore rebuilds a freshly constructed (idle) channel from a
// checkpointed state: counters, loss stream, pool depth, and the active
// flights with their end events re-armed at their exact (at, seq) keys.
// Carrier state (busyCount, transmitting) is recomputed directly from
// the restored flights without invoking the CarrierBusy listeners — the
// listeners' own state is restored separately by their layer. The
// spatial caches stay invalid and rebuild on the first query.
func (c *Channel) Restore(st ChannelState, frame func(uint32) *packet.Frame, ender func(uint32) TxEnder) error {
	if c.DisableInterference {
		return fmt.Errorf("phy: restore unsupported with the legacy interference engine")
	}
	if len(c.active) != 0 || c.stats.Transmissions != 0 {
		return fmt.Errorf("phy: restore into a channel with traffic history")
	}
	if st.HasLoss != (c.lossRNG != nil) {
		return fmt.Errorf("phy: restore loss-model state mismatch (checkpoint %v, channel %v)",
			st.HasLoss, c.lossRNG != nil)
	}
	c.stats = st.Stats
	if st.HasLoss {
		c.lossRNG.SetState(st.LossRNG)
	}
	c.maxAir = st.MaxAir
	c.txPoolHits = st.TxPoolHits
	c.txPoolMisses = st.TxPoolMisses
	for len(c.txFree) < st.TxFreeLen {
		tx := &transmission{cell: -1, lane: -1, ch: c}
		tx.recvSet = nodeset.New(len(c.positions))
		tx.garbledSet = nodeset.New(len(c.positions))
		c.txFree = append(c.txFree, tx)
	}
	c.txFree = c.txFree[:st.TxFreeLen]
	for _, ts := range st.Active {
		if int(ts.Sender) < 0 || int(ts.Sender) >= len(c.positions) {
			return fmt.Errorf("phy: restore transmission from unknown radio %d", ts.Sender)
		}
		if c.transmitting[ts.Sender] {
			return fmt.Errorf("phy: restore radio %d transmitting twice", ts.Sender)
		}
		f := frame(ts.FrameRef)
		if f == nil {
			return fmt.Errorf("phy: restore transmission from radio %d without its frame", ts.Sender)
		}
		tx := &transmission{
			cell:      -1,
			lane:      -1,
			ch:        c,
			frame:     f,
			sender:    int(ts.Sender),
			senderPos: ts.SenderPos,
			end:       ts.End,
			onDone:    ender(ts.EnderRef),
		}
		tx.recvSet = nodeset.New(len(c.positions))
		tx.garbledSet = nodeset.New(len(c.positions))
		for _, r := range ts.Receivers {
			if int(r) < 0 || int(r) >= len(c.positions) || int(r) == tx.sender {
				return fmt.Errorf("phy: restore transmission with invalid receiver %d", r)
			}
			if !tx.recvSet.Add(packet.NodeID(r)) {
				return fmt.Errorf("phy: restore transmission with duplicate receiver %d", r)
			}
			tx.receivers = append(tx.receivers, int(r))
		}
		for _, g := range ts.Garbled {
			if !tx.recvSet.Contains(g) {
				return fmt.Errorf("phy: restore transmission garbles non-receiver %d", g)
			}
			tx.garbledSet.Add(g)
		}
		ev, err := c.sched.RestoreRunner(-1, ts.End, ts.EndSeq, tx)
		if err != nil {
			return fmt.Errorf("phy: restore end event for radio %d: %w", ts.Sender, err)
		}
		tx.endEvent = ev
		c.active = append(c.active, tx)
		c.transmitting[tx.sender] = true
		c.busyCount[tx.sender]++
		for _, r := range tx.receivers {
			c.busyCount[r]++
		}
		if c.audit != nil {
			c.audit.AuditAcquire(c.sched.Now(), "phy.tx", tx)
		}
	}
	return nil
}

// PendingEvents returns how many scheduler events the channel currently
// has armed (one end-of-airtime event per active flight), for the
// checkpoint exhaustiveness cross-check.
func (c *Channel) PendingEvents() int { return len(c.active) }
