package phy

import (
	"math"
	"slices"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

// newMovingChannel builds a channel whose radios orbit distinct centers
// at exactly the given speed, so the index's drift-margin reasoning is
// exercised at its declared bound.
func newMovingChannel(n int, radius, speed float64) (*sim.Scheduler, *Channel) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), radius)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		cx := float64(i%side) * radius * 0.7
		cy := float64(i/side) * radius * 0.7
		phase := float64(i)
		orbit := radius * 0.4
		ch.Attach(PositionFunc(func(t sim.Time) geom.Point {
			a := phase + speed*t.Seconds()/orbit
			return geom.Point{X: cx + orbit*math.Cos(a), Y: cy + orbit*math.Sin(a)}
		}), &fakeListener{})
	}
	return sched, ch
}

// linearNeighbors is the reference the index must match exactly.
func linearNeighbors(ch *Channel, i int, now sim.Time) []int {
	var out []int
	pi := ch.positions[i].PositionAt(now)
	r2 := ch.radius * ch.radius
	for j := range ch.positions {
		if j != i && ch.positions[j].PositionAt(now).Dist2(pi) <= r2 {
			out = append(out, j)
		}
	}
	return out
}

func TestNeighborsMatchesLinearWhileMoving(t *testing.T) {
	const speed = 25.0 // m/s, well above any simulated host
	sched, ch := newMovingChannel(60, 500, speed)
	ch.SetMaxSpeed(speed)
	// Advance in irregular steps so queries hit the fresh-snapshot path,
	// the within-budget stale path, and forced rebuilds.
	steps := []sim.Duration{
		0, 17 * sim.Millisecond, 1 * sim.Millisecond, 900 * sim.Millisecond,
		3 * sim.Second, 40 * sim.Microsecond, 11 * sim.Second,
	}
	for _, d := range steps {
		target := sched.Now().Add(d)
		sched.Schedule(target, func() {})
		sched.RunUntil(target)
		for i := 0; i < ch.NumRadios(); i++ {
			got := ch.Neighbors(i, nil)
			want := linearNeighbors(ch, i, sched.Now())
			if !slices.Equal(got, want) {
				t.Fatalf("t=%v radio %d: grid %v != linear %v", sched.Now(), i, got, want)
			}
		}
	}
}

func TestNeighborsWithoutSpeedBoundRebuildsExactly(t *testing.T) {
	// No SetMaxSpeed call: every distinct timestamp must trigger an
	// exact rebuild, so results still match the linear scan.
	sched, ch := newMovingChannel(30, 500, 40)
	for _, d := range []sim.Duration{0, 5 * sim.Second, 13 * sim.Second} {
		target := sim.Time(0).Add(d)
		sched.Schedule(target, func() {})
		sched.RunUntil(target)
		for i := 0; i < ch.NumRadios(); i++ {
			got := ch.Neighbors(i, nil)
			if want := linearNeighbors(ch, i, sched.Now()); !slices.Equal(got, want) {
				t.Fatalf("t=%v radio %d: grid %v != linear %v", sched.Now(), i, got, want)
			}
		}
	}
}

func TestSetMaxSpeedRejectsNegative(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	defer func() {
		if recover() == nil {
			t.Error("negative speed bound did not panic")
		}
	}()
	ch.SetMaxSpeed(-1)
}
