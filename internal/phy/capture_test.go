package phy

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

func TestCaptureStrongerFrameSurvives(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	ch.SetCapture(4) // 6 dB: survive if >= 2x closer
	// Receiver at 0. Near sender at 100 m, far sender at 450 m:
	// squared-distance ratio 20.25 >= 4, so the near frame captures.
	recv := &fakeListener{}
	ch.Attach(static(geom.Point{}), recv)
	near := ch.Attach(static(geom.Point{X: 100}), &fakeListener{})
	far := ch.Attach(static(geom.Point{X: -450}), &fakeListener{})

	ch.Transmit(near, bcastFrame(1), nil)
	sched.After(500*sim.Microsecond, func() {
		ch.Transmit(far, bcastFrame(2), nil)
	})
	sched.Run()

	if len(recv.delivered) != 1 || recv.delivered[0].Sender != 1 {
		t.Fatalf("capture failed: delivered %d frames", len(recv.delivered))
	}
	if len(recv.garbled) != 1 || recv.garbled[0].Sender != 2 {
		t.Errorf("far frame should be the garbled one")
	}
}

func TestCaptureComparablePowersStillCollide(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	ch.SetCapture(4)
	recv := &fakeListener{}
	ch.Attach(static(geom.Point{}), recv)
	a := ch.Attach(static(geom.Point{X: 300}), &fakeListener{})
	b := ch.Attach(static(geom.Point{X: -400}), &fakeListener{})

	ch.Transmit(a, bcastFrame(1), nil)
	sched.After(500*sim.Microsecond, func() {
		ch.Transmit(b, bcastFrame(2), nil)
	})
	sched.Run()

	// (400/300)^2 = 1.78 < 4: neither captures.
	if len(recv.delivered) != 0 {
		t.Errorf("comparable-power overlap decoded %d frames", len(recv.delivered))
	}
	if len(recv.garbled) != 2 {
		t.Errorf("garbled = %d, want 2", len(recv.garbled))
	}
}

func TestCaptureOffByDefault(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	recv := &fakeListener{}
	ch.Attach(static(geom.Point{}), recv)
	near := ch.Attach(static(geom.Point{X: 50}), &fakeListener{})
	far := ch.Attach(static(geom.Point{X: -490}), &fakeListener{})
	ch.Transmit(near, bcastFrame(1), nil)
	sched.After(500*sim.Microsecond, func() {
		ch.Transmit(far, bcastFrame(2), nil)
	})
	sched.Run()
	if len(recv.delivered) != 0 {
		t.Error("paper model must garble both regardless of power imbalance")
	}
}

func TestSetCaptureValidation(t *testing.T) {
	ch := NewChannel(sim.NewScheduler(), DSSSTiming(), 500)
	defer func() {
		if recover() == nil {
			t.Error("ratio 1.0 did not panic")
		}
	}()
	ch.SetCapture(1.0)
}
