package phy

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

// engines enumerates the three overlap-resolution paths: the localized
// grid-bucketed engine (needs a speed bound), the bitset engine's
// global-scan fallback (no bound declared), and the legacy map-based
// global scan. Every collision edge case must behave identically on all
// three.
var engines = []struct {
	name      string
	configure func(ch *Channel)
}{
	{"localized", func(ch *Channel) { ch.SetMaxSpeed(0) }},
	{"global-bitset", func(ch *Channel) {}},
	{"legacy", func(ch *Channel) {
		ch.DisableInterference = true
		ch.SetMaxSpeed(0)
	}},
}

// The capture comparison is >= on both branches, so an exact power tie
// with the threshold resolves in favor of the frame tested first: when
// db == da*ratio the earlier frame a captures, and when da == db*ratio
// the later frame b captures. The tie behavior is part of the pinned
// model; all three engines must agree on it.
func TestCaptureTieBoundaryEarlierFrameCaptures(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			sched := sim.NewScheduler()
			ch := NewChannel(sched, DSSSTiming(), 500)
			eng.configure(ch)
			ch.SetCapture(4)
			recv := &fakeListener{}
			ch.Attach(static(geom.Point{}), recv)
			// da = 100^2, db = 200^2: db == da*4 exactly.
			a := ch.Attach(static(geom.Point{X: 100}), &fakeListener{})
			b := ch.Attach(static(geom.Point{X: -200}), &fakeListener{})

			ch.Transmit(a, bcastFrame(1), nil)
			sched.After(500*sim.Microsecond, func() {
				ch.Transmit(b, bcastFrame(2), nil)
			})
			sched.Run()

			if len(recv.delivered) != 1 || recv.delivered[0].Sender != 1 {
				t.Fatalf("tie db == da*ratio must let the earlier frame capture; delivered %d", len(recv.delivered))
			}
			if len(recv.garbled) != 1 || recv.garbled[0].Sender != 2 {
				t.Fatalf("later frame should be the garbled one")
			}
		})
	}
}

func TestCaptureTieBoundaryLaterFrameCaptures(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			sched := sim.NewScheduler()
			ch := NewChannel(sched, DSSSTiming(), 500)
			eng.configure(ch)
			ch.SetCapture(4)
			recv := &fakeListener{}
			ch.Attach(static(geom.Point{}), recv)
			// da = 200^2, db = 100^2: da == db*4 exactly.
			a := ch.Attach(static(geom.Point{X: 200}), &fakeListener{})
			b := ch.Attach(static(geom.Point{X: -100}), &fakeListener{})

			ch.Transmit(a, bcastFrame(1), nil)
			sched.After(500*sim.Microsecond, func() {
				ch.Transmit(b, bcastFrame(2), nil)
			})
			sched.Run()

			if len(recv.delivered) != 1 || recv.delivered[0].Sender != 2 {
				t.Fatalf("tie da == db*ratio must let the later frame capture; delivered %d", len(recv.delivered))
			}
			if len(recv.garbled) != 1 || recv.garbled[0].Sender != 1 {
				t.Fatalf("earlier frame should be the garbled one")
			}
		})
	}
}

// Two in-range hosts whose transmissions overlap are each both sender
// and intended receiver of the other's frame: half-duplex must destroy
// both copies — even under capture, where power would otherwise let one
// frame through.
func TestHalfDuplexSenderAsReceiver(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			sched := sim.NewScheduler()
			ch := NewChannel(sched, DSSSTiming(), 500)
			eng.configure(ch)
			ch.SetCapture(1000) // capture must not override half-duplex
			a, b := &fakeListener{}, &fakeListener{}
			ra := ch.Attach(static(geom.Point{X: 0}), a)
			rb := ch.Attach(static(geom.Point{X: 100}), b)

			ch.Transmit(ra, bcastFrame(1), nil)
			sched.After(500*sim.Microsecond, func() {
				ch.Transmit(rb, bcastFrame(2), nil)
			})
			sched.Run()

			if len(a.delivered) != 0 || len(b.delivered) != 0 {
				t.Fatalf("half-duplex violation: a=%d b=%d decoded", len(a.delivered), len(b.delivered))
			}
			if len(a.garbled) != 1 || len(b.garbled) != 1 {
				t.Fatalf("garbled counts a=%d b=%d, want 1 each", len(a.garbled), len(b.garbled))
			}
		})
	}
}

// A receiver that is itself mid-transmission cannot decode a new frame
// even when its own flight's receiver set does not cover the new sender
// (here because it moved into range after its flight started). This is
// the c.transmitting check, distinct from the half-duplex overlap rules.
func TestReceiverAlreadyTransmitting(t *testing.T) {
	const speed = 500000 // m/s; absurd, but it keeps the test fast
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			sched := sim.NewScheduler()
			ch := NewChannel(sched, DSSSTiming(), 500)
			ch.DisableInterference = eng.name == "legacy"
			ch.SetMaxSpeed(speed)

			// r starts at X=1200 (out of s's range) moving toward s; by
			// t=1500us it is at X=450, inside. c sits near r's start so r's
			// own flight has a receiver; d hears only s.
			rl, sl, cl, dl := &fakeListener{}, &fakeListener{}, &fakeListener{}, &fakeListener{}
			r := ch.Attach(PositionFunc(func(t sim.Time) geom.Point {
				return geom.Point{X: 1200 - speed*t.Sub(0).Seconds()}
			}), rl)
			s := ch.Attach(static(geom.Point{X: 0}), sl)
			ch.Attach(static(geom.Point{X: 1600}), cl)
			ch.Attach(static(geom.Point{X: -400}), dl)

			ch.Transmit(r, bcastFrame(1), nil)
			sched.After(1500*sim.Microsecond, func() {
				ch.Transmit(s, bcastFrame(2), nil)
			})
			sched.Run()

			if len(rl.garbled) != 1 || rl.garbled[0].Sender != 2 {
				t.Fatalf("transmitting receiver must lose the new frame: garbled=%d", len(rl.garbled))
			}
			if len(rl.delivered) != 0 {
				t.Fatalf("transmitting receiver decoded a frame mid-flight")
			}
			if len(dl.delivered) != 1 {
				t.Fatalf("bystander of the new frame should decode it: got %d", len(dl.delivered))
			}
			if len(cl.delivered) != 1 {
				t.Fatalf("receiver of the first flight should decode it: got %d", len(cl.delivered))
			}
		})
	}
}

// recLogListener records every callback with its receiver, kind, sender,
// and timestamp into a shared log, giving a total per-copy outcome trace
// two channel runs can be compared on.
type recLogListener struct {
	ch  *Channel
	id  int
	log *[]string
}

func (l *recLogListener) CarrierBusy() {}
func (l *recLogListener) CarrierIdle() {}
func (l *recLogListener) Deliver(f *packet.Frame) {
	*l.log = append(*l.log, fmt.Sprintf("t=%d rx=%d ok from=%d", l.ch.sched.Now(), l.id, f.Sender))
}
func (l *recLogListener) DeliverGarbled(f *packet.Frame) {
	*l.log = append(*l.log, fmt.Sprintf("t=%d rx=%d garbled from=%d", l.ch.sched.Now(), l.id, f.Sender))
}

// txScript is a precomputed offered load: transmission k starts at
// start[k] from host host[k]. Start times respect the airtime so no host
// transmits twice at once.
type txScript struct {
	start []sim.Time
	host  []int
}

// genScript draws a random saturating schedule over the given horizon.
func genScript(rng *rand.Rand, hosts int, attempts int, horizon sim.Duration, air sim.Duration) txScript {
	busyUntil := make([]sim.Time, hosts)
	type ev struct {
		at sim.Time
		h  int
	}
	var evs []ev
	for k := 0; k < attempts; k++ {
		at := sim.Time(rng.Int63n(int64(horizon)))
		h := rng.Intn(hosts)
		if at < busyUntil[h] {
			continue
		}
		busyUntil[h] = at.Add(air)
		evs = append(evs, ev{at, h})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	s := txScript{}
	for _, e := range evs {
		s.start = append(s.start, e.at)
		s.host = append(s.host, e.h)
	}
	return s
}

// runScript drives one channel through the script and returns the full
// per-copy outcome log plus the channel stats.
func runScript(hosts int, mkPos func(i int) PositionFunc, capture float64, configure func(*Channel), script txScript) ([]string, Stats) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	configure(ch)
	if capture > 0 {
		ch.SetCapture(capture)
	}
	var log []string
	for i := 0; i < hosts; i++ {
		ch.Attach(mkPos(i), &recLogListener{ch: ch, id: i, log: &log})
	}
	for k := range script.start {
		k := k
		sched.Schedule(script.start[k], func() {
			ch.Transmit(script.host[k], bcastFrame(packet.NodeID(script.host[k])), nil)
		})
	}
	sched.Run()
	return log, ch.Stats()
}

// TestInterferenceDifferentialMegaMap repeats the engine cross-check on
// a map large enough that the grid's macro level actually coarsens
// (MacroShift > 0), with hosts clustered into distant patches so
// collisions still occur locally. This pins the macro-bucketed
// interference index against the legacy global scan in exactly the
// regime the hierarchical grid exists for.
func TestInterferenceDifferentialMegaMap(t *testing.T) {
	const (
		side     = 60000.0 // 120x120 fine cells at radius 500
		clusters = 8
		perClust = 12
		speed    = 20.0
	)
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			hosts := clusters * perClust
			type traj struct {
				p0     geom.Point
				vx, vy float64
			}
			trajs := make([]traj, 0, hosts)
			for c := 0; c < clusters; c++ {
				center := geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
				for k := 0; k < perClust; k++ {
					trajs = append(trajs, traj{
						p0: geom.Point{
							X: center.X + (rng.Float64()*2-1)*300,
							Y: center.Y + (rng.Float64()*2-1)*300,
						},
						vx: (rng.Float64()*2 - 1) * speed,
						vy: (rng.Float64()*2 - 1) * speed,
					})
				}
			}
			mkPos := func(i int) PositionFunc {
				tr := trajs[i]
				return func(t sim.Time) geom.Point {
					s := t.Sub(0).Seconds()
					return geom.Point{X: tr.p0.X + tr.vx*s, Y: tr.p0.Y + tr.vy*s}
				}
			}
			air := DSSSTiming().Airtime(280)
			script := genScript(rng, hosts, 500, 40000*sim.Microsecond, air)

			refLog, refStats := runScript(hosts, mkPos, 0, func(ch *Channel) {
				ch.DisableInterference = true
				ch.SetMaxSpeed(speed)
			}, script)
			if refStats.Collisions == 0 {
				t.Fatalf("script produced no collisions; differential test is vacuous")
			}
			log, stats := runScript(hosts, mkPos, 0, func(ch *Channel) {
				ch.SetMaxSpeed(speed)
			}, script)
			if stats != refStats {
				t.Fatalf("localized stats diverge from legacy:\n%+v\nvs\n%+v", stats, refStats)
			}
			if len(log) != len(refLog) {
				t.Fatalf("localized: %d outcomes vs legacy %d", len(log), len(refLog))
			}
			for i := range log {
				if log[i] != refLog[i] {
					t.Fatalf("outcome %d diverges:\n%s\nvs legacy\n%s", i, log[i], refLog[i])
				}
			}
			// The regime check: the snapshot grid over this population must
			// actually have coarsened, or the test is not exercising the
			// macro path.
			var g geom.Grid
			pts := make([]geom.Point, hosts)
			for i := range pts {
				pts[i] = trajs[i].p0
			}
			g.Rebuild(pts, 500)
			if g.MacroShift() == 0 {
				t.Fatalf("mega map did not trigger a macro shift (cells %v)", func() string {
					c, r := g.Cells()
					return fmt.Sprintf("%dx%d", c, r)
				}())
			}
		})
	}
}

// TestInterferenceDifferential cross-checks the three overlap engines on
// randomized saturating traffic: same seeds, same scripts, same mover
// trajectories — every per-receiver copy outcome (delivered vs garbled,
// ordered by time) and every channel counter must be identical across
// engines, for sparse and dense maps, capture on and off, static and
// mobile hosts.
func TestInterferenceDifferential(t *testing.T) {
	const speed = 20.0 // m/s mover bound
	grids := []struct {
		name  string
		hosts int
		side  float64
	}{
		{"sparse", 30, 2000},
		{"dense", 80, 1200},
	}
	for _, g := range grids {
		for _, capture := range []float64{0, 4} {
			for _, mobile := range []bool{false, true} {
				for seed := int64(1); seed <= 3; seed++ {
					name := fmt.Sprintf("%s/capture=%v/mobile=%v/seed=%d", g.name, capture > 0, mobile, seed)
					t.Run(name, func(t *testing.T) {
						rng := rand.New(rand.NewSource(seed))
						type traj struct {
							p0     geom.Point
							vx, vy float64
						}
						trajs := make([]traj, g.hosts)
						for i := range trajs {
							trajs[i].p0 = geom.Point{X: rng.Float64() * g.side, Y: rng.Float64() * g.side}
							if mobile {
								trajs[i].vx = (rng.Float64()*2 - 1) * speed
								trajs[i].vy = (rng.Float64()*2 - 1) * speed
							}
						}
						mkPos := func(i int) PositionFunc {
							tr := trajs[i]
							return func(t sim.Time) geom.Point {
								s := t.Sub(0).Seconds()
								return geom.Point{X: tr.p0.X + tr.vx*s, Y: tr.p0.Y + tr.vy*s}
							}
						}
						air := DSSSTiming().Airtime(280)
						script := genScript(rng, g.hosts, 400, 40000*sim.Microsecond, air)

						bound := 0.0
						if mobile {
							bound = speed
						}
						refLog, refStats := runScript(g.hosts, mkPos, capture, func(ch *Channel) {
							ch.DisableInterference = true
							ch.SetMaxSpeed(bound)
						}, script)
						if refStats.Collisions == 0 {
							t.Fatalf("script produced no collisions; differential test is vacuous")
						}
						arms := []struct {
							name      string
							configure func(ch *Channel)
						}{
							{"localized", func(ch *Channel) { ch.SetMaxSpeed(bound) }},
							{"global-bitset", func(ch *Channel) {}},
							{"linear-localized", func(ch *Channel) {
								// No grid: the bitset engine must fall back
								// even though a bound is declared... except
								// receiver discovery also goes linear, which
								// must not matter either.
								ch.DisableIndex = true
								ch.SetMaxSpeed(bound)
							}},
						}
						for _, arm := range arms {
							log, stats := runScript(g.hosts, mkPos, capture, arm.configure, script)
							if stats != refStats {
								t.Fatalf("%s: stats diverge from legacy:\n%+v\nvs\n%+v", arm.name, stats, refStats)
							}
							if len(log) != len(refLog) {
								t.Fatalf("%s: %d outcomes vs legacy %d", arm.name, len(log), len(refLog))
							}
							for i := range log {
								if log[i] != refLog[i] {
									t.Fatalf("%s: outcome %d diverges:\n%s\nvs legacy\n%s", arm.name, i, log[i], refLog[i])
								}
							}
						}
					})
				}
			}
		}
	}
}
