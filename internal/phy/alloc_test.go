package phy

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

// nullListener discards all callbacks (fakeListener's recording slices
// would themselves allocate under AllocsPerRun).
type nullListener struct{}

func (nullListener) CarrierBusy()                 {}
func (nullListener) CarrierIdle()                 {}
func (nullListener) Deliver(*packet.Frame)        {}
func (nullListener) DeliverGarbled(*packet.Frame) {}

// TestTransmitZeroAllocSteadyState pins the transmit hot path: once the
// transmission-record pool and the scheduler's event pool are warm, a
// full transmit->deliver->finish cycle performs no heap allocation.
func TestTransmitZeroAllocSteadyState(t *testing.T) {
	sched := sim.NewScheduler()
	ch := NewChannel(sched, DSSSTiming(), 500)
	ra := ch.Attach(static(geom.Point{X: 0}), nullListener{})
	ch.Attach(static(geom.Point{X: 300}), nullListener{})
	ch.Attach(static(geom.Point{X: 450}), nullListener{})
	ch.SetMaxSpeed(0) // static radios: the spatial snapshot never goes stale

	f := bcastFrame(0)
	cycle := func() {
		ch.Transmit(ra, f, nil)
		sched.Run()
	}
	for i := 0; i < 8; i++ {
		cycle() // warm the tx pool, event pool, and spatial index
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("steady-state transmit cycle allocates %.1f times, want 0", allocs)
	}

	hits, misses := ch.TxPoolStats()
	if hits == 0 || misses != 1 {
		t.Errorf("tx pool stats = %d hits / %d misses, want reuse of a single record", hits, misses)
	}
	if rate := ch.TxPoolHitRate(); rate < 0.9 {
		t.Errorf("tx pool hit rate = %.3f, want near 1", rate)
	}
}
