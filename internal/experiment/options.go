// Package experiment contains the reproduction harness: it maps every
// figure of the paper's evaluation (Figs. 1, 2, 5, 7, 9, 10, 11, 12, 13)
// to a runnable specification, executes the required simulation sweeps on
// a bounded worker pool, and renders the results as aligned text tables
// and CSV.
//
// The paper runs 10,000 broadcasts per data point; the default Options
// use far fewer so the whole suite regenerates in minutes on a laptop.
// The trends (who wins, where the crossovers fall) are stable at these
// scales; raise Requests/Replicas to approach the paper's precision.
package experiment

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/obs"
)

// SeedStride is the seed-space distance between adjacent matrix points:
// replica r of point p runs with Seed = BaseSeed + SeedStride*p + r.
// Replicas must stay below the stride or point p's high replicas would
// reuse point p+1's low seeds, silently correlating what are supposed to
// be independent data points; WithDefaults enforces this.
const SeedStride = 1000

// Options scales the reproduction harness.
type Options struct {
	// Hosts per simulation (paper: 100).
	Hosts int
	// Requests is the number of broadcasts per replica (paper: 10,000).
	Requests int
	// Replicas is how many independently seeded repetitions are merged
	// per data point.
	Replicas int
	// BaseSeed seeds replica r of point p with BaseSeed + SeedStride*p
	// + r, giving every (point, replica) pair a distinct deterministic
	// seed as long as Replicas < SeedStride.
	BaseSeed uint64
	// Workers bounds simulation parallelism; 0 uses GOMAXPROCS.
	Workers int
	// Maps overrides the map sizes (units); nil uses the paper's
	// 1,3,5,7,9,11.
	Maps []int
	// Speeds overrides host max speeds (km/h) for the mobility figures
	// (11 and 12); nil uses the paper's 20,40,60,80.
	Speeds []float64
	// HelloIntervals overrides the fixed hello intervals for Fig. 11 in
	// milliseconds; nil uses the paper's 1000, 5000, 10000, 20000, 30000.
	HelloIntervalsMS []int
	// Trials is the Monte-Carlo sample count for the analysis figures
	// (1 and 2).
	Trials int
	// CI renders 95% confidence half-widths next to RE cells in the
	// map-sweep tables (meaningful with Replicas >= 3).
	CI bool
	// Progress, when non-nil, receives one matrix progress line after
	// each completed replica: completed/total counts, aggregate
	// simulation event rate, and an ETA for the remaining replicas.
	Progress io.Writer
	// Telemetry, when non-nil, is called once per (point, replica) before
	// that replica runs and may return a collector to attach to its
	// config (nil skips that replica). It lets callers instrument chosen
	// matrix cells without paying collection cost on the rest.
	Telemetry func(point, replica int) *obs.Collector
}

// WithDefaults fills in the harness defaults. It panics if Replicas
// reaches SeedStride: the seed layout would then assign the same seed to
// two different matrix points, merging runs that must be independent,
// and experiment specs are code, so a spec that asks for that is a
// programming error.
func (o Options) WithDefaults() Options {
	if o.Replicas >= SeedStride {
		panic(fmt.Sprintf(
			"experiment: Replicas = %d but the seed layout BaseSeed + %d*point + replica supports at most %d replicas per point without cross-point seed collisions",
			o.Replicas, SeedStride, SeedStride-1))
	}
	if o.Hosts == 0 {
		o.Hosts = 100
	}
	if o.Requests == 0 {
		o.Requests = 40
	}
	if o.Replicas == 0 {
		o.Replicas = 2
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if len(o.Maps) == 0 {
		o.Maps = []int{1, 3, 5, 7, 9, 11}
	}
	if len(o.Speeds) == 0 {
		o.Speeds = []float64{20, 40, 60, 80}
	}
	if len(o.HelloIntervalsMS) == 0 {
		o.HelloIntervalsMS = []int{1000, 5000, 10000, 20000, 30000}
	}
	if o.Trials == 0 {
		o.Trials = 3000
	}
	return o
}
