package experiment

import (
	"fmt"
	"strings"

	"repro/internal/manet"
	"repro/internal/obs"
	"repro/internal/scheme"
)

// CompareSpec builds an ad-hoc experiment from parsed scheme specs: the
// schemes are swept over every map size exactly like the paper figures,
// with RE, SRB, and latency tables. It is what `figures -compare` runs.
func CompareSpec(schemes []scheme.Scheme) Spec {
	labels := make([]string, len(schemes))
	for i, s := range schemes {
		labels[i] = s.Name()
	}
	return Spec{
		ID:    "compare",
		Title: "scheme comparison: " + strings.Join(labels, " vs "),
		Paper: "ad-hoc comparison; closest figure is Fig. 13",
		Run: func(o Options) []*Table {
			candidates := make([]labeled, len(schemes))
			for i, s := range schemes {
				candidates[i] = labeled{label: s.Name(), cfg: manet.Config{Scheme: s}}
			}
			return sweepOverMaps("compare", "scheme comparison", o, candidates, true)
		},
	}
}

// LoadReport renders a decoded telemetry dump as a per-interval channel
// load table: for each gap between consecutive samples, the average
// number of concurrently busy radios (busy radio-seconds per second) and
// the transmission, delivery, and collision rates. It errors if the dump
// lacks the phy series, since a report built from missing columns would
// silently read zeros.
func LoadReport(d *obs.Dump) (*Table, error) {
	idx := map[string]int{}
	for i, name := range d.Meta.Series {
		idx[name] = i
	}
	var missing []string
	col := func(name string) int {
		i, ok := idx[name]
		if !ok {
			missing = append(missing, name)
		}
		return i
	}
	busy := col("phy.busy_radio_seconds")
	tx := col("phy.transmissions")
	del := col("phy.deliveries")
	coll := col("phy.collisions")
	if len(missing) > 0 {
		return nil, fmt.Errorf("experiment: telemetry dump lacks series %s", strings.Join(missing, ", "))
	}
	if len(d.Samples) < 2 {
		return nil, fmt.Errorf("experiment: telemetry dump has %d samples, need at least 2 for rates", len(d.Samples))
	}
	// Event-core health columns are optional so dumps recorded before the
	// scheduler exported them still render. Both are instantaneous gauges,
	// shown at the sample instant rather than as interval rates.
	pend, hasPend := idx["sim.pending_events"]
	pool, hasPool := idx["sim.event_pool_hit_rate"]
	// Likewise the sharded engine's border-lane share (fraction of
	// executed events that ran on the sequential border lane rather
	// than a parallel shard drain) only exists on sharded runs.
	border, hasBorder := idx["engine.border_share"]

	columns := []string{"t(s)", "busy radios", "tx/s", "deliv/s", "coll/s"}
	if hasPend {
		columns = append(columns, "pending ev")
	}
	if hasPool {
		columns = append(columns, "ev pool hit")
	}
	if hasBorder {
		columns = append(columns, "border share")
	}
	t := NewTable("telemetry",
		fmt.Sprintf("channel load: %s, %d hosts, %dx%d map, seed %d",
			d.Meta.Scheme, d.Meta.Hosts, d.Meta.MapUnits, d.Meta.MapUnits, d.Meta.Seed),
		columns...)
	for i := 1; i < len(d.Samples); i++ {
		prev, cur := d.Samples[i-1], d.Samples[i]
		dt := float64(cur.At-prev.At) / 1e6 // sim.Time is microseconds
		if dt <= 0 {
			continue
		}
		rate := func(c int) float64 { return (cur.Values[c] - prev.Values[c]) / dt }
		row := []string{
			fmt.Sprintf("%.1f", float64(cur.At)/1e6),
			fmt.Sprintf("%.3f", rate(busy)),
			fmt.Sprintf("%.1f", rate(tx)),
			fmt.Sprintf("%.1f", rate(del)),
			fmt.Sprintf("%.1f", rate(coll)),
		}
		if hasPend {
			row = append(row, fmt.Sprintf("%.0f", cur.Values[pend]))
		}
		if hasPool {
			row = append(row, fmt.Sprintf("%.3f", cur.Values[pool]))
		}
		if hasBorder {
			row = append(row, fmt.Sprintf("%.3f", cur.Values[border]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
