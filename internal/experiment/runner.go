package experiment

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/manet"
	"repro/internal/metrics"
)

// RunMatrix executes every configuration with o.Replicas independent
// seeds, spreading the replica runs over a worker pool, and returns the
// merged summary for each configuration in input order. Any construction
// error or simulation panic aborts the whole matrix via a single panic
// from the calling goroutine, annotated with the failing (point,
// replica, seed): experiment specs are code, and a config they build
// that fails validation is a programming error.
func RunMatrix(cfgs []manet.Config, o Options) []metrics.Summary {
	merged, _ := RunMatrixSpread(cfgs, o)
	return merged
}

// RunMatrixSpread is RunMatrix plus the per-replica RE means for each
// configuration, from which confidence intervals can be computed.
func RunMatrixSpread(cfgs []manet.Config, o Options) ([]metrics.Summary, [][]float64) {
	o = o.WithDefaults()

	type task struct {
		point, replica int
		cfg            manet.Config
	}
	tasks := make([]task, 0, len(cfgs)*o.Replicas)
	for p, cfg := range cfgs {
		if cfg.Hosts == 0 {
			cfg.Hosts = o.Hosts
		}
		if cfg.Requests == 0 {
			cfg.Requests = o.Requests
		}
		for r := 0; r < o.Replicas; r++ {
			c := cfg
			c.Seed = o.BaseSeed + SeedStride*uint64(p) + uint64(r)
			if o.Telemetry != nil {
				c.Telemetry = o.Telemetry(p, r)
			}
			tasks = append(tasks, task{point: p, replica: r, cfg: c})
		}
	}

	results := make([][]metrics.Summary, len(cfgs))
	for p := range results {
		results[p] = make([]metrics.Summary, o.Replicas)
	}

	workers := o.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}

	var mu sync.Mutex
	var firstErr error
	// Matrix-level progress: completed replicas, aggregate simulated
	// event rate, and an ETA extrapolated from the mean replica time.
	// All counters are guarded by mu; the line is written under it too so
	// concurrent workers cannot interleave partial lines.
	startWall := time.Now()
	completed := 0
	var totalEvents int64
	report := func(s metrics.Summary) {
		completed++
		totalEvents += int64(s.Events)
		if o.Progress == nil {
			return
		}
		elapsed := time.Since(startWall)
		rate := float64(totalEvents) / elapsed.Seconds()
		eta := time.Duration(float64(elapsed) / float64(completed) * float64(len(tasks)-completed))
		fmt.Fprintf(o.Progress, "experiment %d/%d replicas  %.0f events/s  ETA %s\n",
			completed, len(tasks), rate, eta.Round(time.Second))
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	// runTask executes one replica, converting construction errors and
	// simulation panics into an error carrying the failing coordinates.
	// Without the recover, a panic inside manet.Network.Run would kill
	// the whole process from a worker goroutine with no indication of
	// which (point, replica, seed) died.
	runTask := func(tk task) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("point %d replica %d (seed %d): panic: %v",
					tk.point, tk.replica, tk.cfg.Seed, r)
			}
		}()
		n, err := manet.New(tk.cfg)
		if err != nil {
			return fmt.Errorf("point %d replica %d (seed %d): %w",
				tk.point, tk.replica, tk.cfg.Seed, err)
		}
		s := n.Run()
		mu.Lock()
		results[tk.point][tk.replica] = s
		report(s)
		mu.Unlock()
		return nil
	}

	ch := make(chan task)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for tk := range ch {
				// Fail fast: once any replica has failed the matrix is
				// doomed to panic below, so drain the remaining tasks
				// instead of burning minutes of simulation on results
				// that will be thrown away.
				if failed() {
					continue
				}
				if err := runTask(tk); err != nil {
					fail(err)
				}
			}
		}()
	}
	for _, tk := range tasks {
		ch <- tk
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		// Re-panic exactly once, from the coordinating goroutine, after
		// the pool has shut down cleanly.
		panic(fmt.Errorf("experiment: %w", firstErr))
	}

	merged := make([]metrics.Summary, len(cfgs))
	spread := make([][]float64, len(cfgs))
	for p := range cfgs {
		merged[p] = metrics.Merge(results[p])
		res := make([]float64, len(results[p]))
		for r, s := range results[p] {
			res[r] = s.MeanRE
		}
		spread[p] = res
	}
	return merged, spread
}
