package experiment

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/manet"
	"repro/internal/obs"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestRunMatrixProgress: every completed replica emits one progress
// line with the completed/total counts, rate, and ETA.
func TestRunMatrixProgress(t *testing.T) {
	var buf bytes.Buffer
	cfgs := []manet.Config{
		{Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: 10},
		{Scheme: scheme.Counter{C: 2}, MapUnits: 1, Hosts: 10},
	}
	RunMatrix(cfgs, Options{Requests: 3, Replicas: 2, Workers: 2, Progress: &buf})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d progress lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "/4 replicas") || !strings.Contains(l, "events/s") || !strings.Contains(l, "ETA") {
			t.Errorf("malformed progress line %q", l)
		}
	}
	if !strings.Contains(lines[len(lines)-1], "4/4 replicas") {
		t.Errorf("last line should report completion: %q", lines[len(lines)-1])
	}
}

// TestRunMatrixTelemetryHook: the Telemetry callback selects which
// replicas get a collector, and selected collectors gather samples.
func TestRunMatrixTelemetryHook(t *testing.T) {
	var mu sync.Mutex
	collectors := map[[2]int]*obs.Collector{}
	cfgs := []manet.Config{{Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: 10}}
	RunMatrix(cfgs, Options{
		Requests: 3, Replicas: 2, Workers: 1,
		Telemetry: func(point, replica int) *obs.Collector {
			if replica != 0 {
				return nil // instrument only the first replica
			}
			c := obs.New(10 * sim.Millisecond)
			mu.Lock()
			collectors[[2]int{point, replica}] = c
			mu.Unlock()
			return c
		},
	})
	if len(collectors) != 1 {
		t.Fatalf("hook created %d collectors, want 1", len(collectors))
	}
	c := collectors[[2]int{0, 0}]
	if len(c.Samples()) == 0 {
		t.Fatal("instrumented replica gathered no samples")
	}
}

// TestCompareSpec: an ad-hoc comparison produces the same table shapes
// as the figure sweeps, one row per scheme.
func TestCompareSpec(t *testing.T) {
	schemes := []scheme.Scheme{scheme.Flooding{}, scheme.Counter{C: 2}}
	spec := CompareSpec(schemes)
	if spec.ID != "compare" || !strings.Contains(spec.Title, "flooding") {
		t.Fatalf("spec identity: %+v", spec)
	}
	tables := spec.Run(Options{Requests: 2, Replicas: 1, Maps: []int{1}})
	if len(tables) != 3 { // RE, SRB, latency
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != len(schemes) {
			t.Errorf("table %q has %d rows, want %d", tb.Title, len(tb.Rows), len(schemes))
		}
	}
}

// TestLoadReport: rates are the sample-to-sample differences divided by
// the interval length.
func TestLoadReport(t *testing.T) {
	d := &obs.Dump{
		Meta: obs.Meta{
			Scheme: "test", Hosts: 2, MapUnits: 1,
			Series: []string{"phy.busy_radio_seconds", "phy.transmissions", "phy.deliveries", "phy.collisions"},
		},
		Samples: []obs.Sample{
			{At: 0, Values: []float64{0, 0, 0, 0}},
			{At: sim.Time(2 * sim.Second), Values: []float64{1, 10, 20, 4}},
		},
	}
	tb, err := LoadReport(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	want := []string{"2.0", "0.500", "5.0", "10.0", "2.0"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("column %d = %q, want %q (row %v)", i, row[i], w, row)
		}
	}
}

// TestLoadReportEventCoreColumns: dumps carrying the scheduler gauges
// grow the pending-event depth and event-pool hit-rate columns, shown as
// instantaneous values rather than interval rates.
func TestLoadReportEventCoreColumns(t *testing.T) {
	d := &obs.Dump{
		Meta: obs.Meta{
			Scheme: "test", Hosts: 2, MapUnits: 1,
			Series: []string{
				"phy.busy_radio_seconds", "phy.transmissions", "phy.deliveries",
				"phy.collisions", "sim.pending_events", "sim.event_pool_hit_rate",
			},
		},
		Samples: []obs.Sample{
			{At: 0, Values: []float64{0, 0, 0, 0, 100, 0}},
			{At: sim.Time(2 * sim.Second), Values: []float64{1, 10, 20, 4, 137, 0.875}},
		},
	}
	tb, err := LoadReport(d)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"t(s)", "busy radios", "tx/s", "deliv/s", "coll/s", "pending ev", "ev pool hit"}
	if len(tb.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", tb.Columns, wantCols)
	}
	row := tb.Rows[0]
	if row[5] != "137" || row[6] != "0.875" {
		t.Errorf("event-core cells = %q, %q, want 137, 0.875 (row %v)", row[5], row[6], row)
	}
}

// TestLoadReportBorderShareColumn: dumps recorded on the sharded engine
// carry the border-lane share gauge and grow its column; sequential
// dumps (no engine.* series) keep the old shape.
func TestLoadReportBorderShareColumn(t *testing.T) {
	d := &obs.Dump{
		Meta: obs.Meta{
			Scheme: "test", Hosts: 2, MapUnits: 1,
			Series: []string{
				"phy.busy_radio_seconds", "phy.transmissions", "phy.deliveries",
				"phy.collisions", "engine.border_share",
			},
		},
		Samples: []obs.Sample{
			{At: 0, Values: []float64{0, 0, 0, 0, 0}},
			{At: sim.Time(2 * sim.Second), Values: []float64{1, 10, 20, 4, 0.912}},
		},
	}
	tb, err := LoadReport(d)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tb.Columns[len(tb.Columns)-1], "border share"; got != want {
		t.Fatalf("last column = %q, want %q (columns %v)", got, want, tb.Columns)
	}
	row := tb.Rows[0]
	if row[len(row)-1] != "0.912" {
		t.Errorf("border-share cell = %q, want 0.912 (row %v)", row[len(row)-1], row)
	}
}

// TestLoadReportRejectsMissingSeries: a dump without the phy series
// errors instead of reporting zeros.
func TestLoadReportRejectsMissingSeries(t *testing.T) {
	d := &obs.Dump{Meta: obs.Meta{Series: []string{"phy.transmissions"}}}
	if _, err := LoadReport(d); err == nil {
		t.Fatal("missing series accepted")
	}
}
