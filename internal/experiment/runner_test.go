package experiment

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/manet"
	"repro/internal/scheme"
)

// panicScheme detonates on the first rebroadcast decision, simulating a
// bug deep inside a simulation run on a worker goroutine.
type panicScheme struct{}

func (panicScheme) Name() string        { return "panic" }
func (panicScheme) NeedsHello() bool    { return false }
func (panicScheme) NeedsPosition() bool { return false }
func (panicScheme) NewJudge(scheme.HostView, scheme.Reception) scheme.Judge {
	panic("panicScheme detonated")
}

// countScheme counts decisions so tests can observe whether a matrix
// point actually simulated.
type countScheme struct{ judges *atomic.Int64 }

func (countScheme) Name() string        { return "count" }
func (countScheme) NeedsHello() bool    { return false }
func (countScheme) NeedsPosition() bool { return false }
func (c countScheme) NewJudge(scheme.HostView, scheme.Reception) scheme.Judge {
	c.judges.Add(1)
	return scheme.Flooding{}.NewJudge(nil, scheme.Reception{})
}

// recoverMatrixPanic runs fn (which must panic) and returns the panic
// message. The worker pool must have shut down by the time the panic
// reaches us, so a hung test here means the pool deadlocked.
func recoverMatrixPanic(t *testing.T, fn func()) (msg string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("matrix with failing point did not panic")
		}
		msg = fmt.Sprint(r)
	}()
	fn()
	return ""
}

func TestRunMatrixReportsInvalidConfigContext(t *testing.T) {
	cfgs := []manet.Config{
		{Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: 8, Requests: 2},
		{Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: -1, Requests: 2}, // fails Validate
	}
	o := Options{Replicas: 2, BaseSeed: 50, Workers: 2}
	msg := recoverMatrixPanic(t, func() { RunMatrix(cfgs, o) })
	if !strings.Contains(msg, "point 1 replica 0 (seed 1050)") {
		t.Errorf("panic lacks failing coordinates: %q", msg)
	}
	if !strings.Contains(msg, "at least one host") {
		t.Errorf("panic lacks the underlying error: %q", msg)
	}
}

func TestRunMatrixRecoversSimulationPanic(t *testing.T) {
	cfgs := []manet.Config{
		{Scheme: panicScheme{}, MapUnits: 1, Hosts: 8, Requests: 2},
	}
	o := Options{Replicas: 1, BaseSeed: 7, Workers: 2}
	msg := recoverMatrixPanic(t, func() { RunMatrix(cfgs, o) })
	if !strings.Contains(msg, "point 0 replica 0 (seed 7)") {
		t.Errorf("panic lacks failing coordinates: %q", msg)
	}
	if !strings.Contains(msg, "panic: panicScheme detonated") {
		t.Errorf("panic lacks the recovered panic value: %q", msg)
	}
}

func TestRunMatrixFailsFastAfterError(t *testing.T) {
	var judges atomic.Int64
	cfgs := []manet.Config{
		{Scheme: scheme.Flooding{}, MapUnits: 1, Hosts: -1, Requests: 2}, // fails immediately
		{Scheme: countScheme{&judges}, MapUnits: 1, Hosts: 8, Requests: 2},
		{Scheme: countScheme{&judges}, MapUnits: 1, Hosts: 8, Requests: 2},
	}
	// One worker makes the schedule deterministic: the failing point is
	// consumed first, so every later task must be drained unrun.
	o := Options{Replicas: 2, Workers: 1}
	recoverMatrixPanic(t, func() { RunMatrix(cfgs, o) })
	if n := judges.Load(); n != 0 {
		t.Errorf("matrix kept simulating after the error: %d decisions ran", n)
	}
}

func TestOptionsRejectSeedCollision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Replicas = %d did not panic", SeedStride)
		}
	}()
	// SeedStride-1 replicas per point is the documented maximum.
	_ = Options{Replicas: SeedStride - 1}.WithDefaults()
	_ = Options{Replicas: SeedStride}.WithDefaults()
}
