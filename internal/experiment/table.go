package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid of formatted
// cells, printable as aligned text or CSV. It deliberately stores
// strings — formatting decisions belong to the figure code that knows
// each column's meaning.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates an empty table with the given identity and columns.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends one row; it panics if the cell count does not match the
// column count, which always indicates a bug in figure code.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row has %d cells for %d columns in %s",
			len(cells), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f3 formats a ratio metric (RE, SRB) with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// fms formats a simulated duration as milliseconds with one decimal.
func fms(ms float64) string { return fmt.Sprintf("%.1fms", ms) }
