package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/geom"
	"repro/internal/manet"
	"repro/internal/routing"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Ablations returns design-choice experiments that go beyond the paper's
// figures: each isolates one mechanism of the reproduction so its
// contribution to the headline results can be measured.
func Ablations() []Spec {
	return []Spec{
		{
			ID:    "abl-assess",
			Title: "Ablation: scheme-level random assessment delay window",
			Paper: "the paper fixes the window at 0-31 slots; 0 removes the timing differentiation that relieves the storm",
			Run:   runAblAssess,
		},
		{
			ID:    "abl-collision",
			Title: "Ablation: collision model on/off",
			Paper: "collisions are the paper's stated cause of flooding's lost reachability; without them flooding reaches everyone",
			Run:   runAblCollision,
		},
		{
			ID:    "abl-hello",
			Title: "Ablation: HELLO over the real MAC vs idealized out-of-band HELLO",
			Paper: "quantifies how much NC loses to beacon staleness and beacon-vs-data contention",
			Run:   runAblHello,
		},
		{
			ID:    "abl-expiry",
			Title: "Ablation: neighbor expiry policy (missed hello intervals)",
			Paper: "the paper drops a neighbor after 2 silent intervals; 1 is trigger-happy, 3 keeps stale entries",
			Run:   runAblExpiry,
		},
		{
			ID:    "abl-cluster",
			Title: "Ablation: cluster-based relaying (MOBICOM '99 baseline) vs adaptive schemes",
			Paper: "restricting relays to heads and gateways saves rebroadcasts but is fragile when clustering is stale",
			Run:   runAblCluster,
		},
		{
			ID:    "abl-capture",
			Title: "Ablation: capture effect (stronger frame survives an overlap)",
			Paper: "the paper assumes no capture; real radios capture, softening collision losses — mostly for flooding",
			Run:   runAblCapture,
		},
		{
			ID:    "abl-distance",
			Title: "Ablation: fixed distance-based thresholds (MOBICOM '99 baseline)",
			Paper: "the distance scheme shares the fixed-threshold dilemma: large D saves but loses sparse-map RE",
			Run:   runAblDistance,
		},
		{
			ID:    "abl-mobility",
			Title: "Ablation: random-turn (paper) vs random-waypoint mobility",
			Paper: "results should be robust to the mobility model; waypoint's pause-and-dash pattern stresses neighbor staleness differently",
			Run:   runAblMobility,
		},
		{
			ID:    "abl-oracle",
			Title: "Oracle: connected-dominating-set upper bound on SRB per density",
			Paper: "how close the adaptive schemes get to the best possible saving at full reachability",
			Run:   runAblOracle,
		},
		{
			ID:    "abl-load",
			Title: "Ablation: offered broadcast load (inter-arrival spread)",
			Paper: "the storm compounds under load: flooding degrades fastest as broadcasts arrive faster",
			Run:   runAblLoad,
		},
		{
			ID:    "abl-rts",
			Title: "Ablation: RTS/CTS on route replies (the application layer built on the storm)",
			Paper: "the paper notes broadcasts cannot use RTS/CTS; unicast RREPs can, trading reservation overhead for hidden-terminal protection",
			Run:   runAblRTS,
		},
		{
			ID:    "abl-prob",
			Title: "Ablation: probabilistic gossip baseline vs adaptive schemes",
			Paper: "a fixed gossip probability has the same density dilemma as fixed thresholds",
			Run:   runAblProb,
		},
	}
}

// LookupAny finds a spec among figures and ablations.
func LookupAny(id string) (Spec, bool) {
	if s, ok := Lookup(id); ok {
		return s, true
	}
	for _, s := range Ablations() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

func runAblAssess(o Options) []*Table {
	var candidates []labeled
	for _, slots := range []int{1, 15, 31, 127} {
		// AssessmentSlots==0 means "default" in the config, so the
		// no-delay case is approximated by a single slot.
		label := fmt.Sprintf("assess<=%d slots", slots)
		candidates = append(candidates, labeled{
			label: label,
			cfg: manet.Config{
				Scheme:          scheme.AdaptiveCounter{Label: label},
				AssessmentSlots: slots,
			},
		})
	}
	return sweepOverMaps("abl-assess", "assessment delay window (adaptive counter)", o, candidates, true)
}

func runAblCollision(o Options) []*Table {
	candidates := []labeled{
		{label: "flooding", cfg: manet.Config{Scheme: scheme.Flooding{}}},
		{label: "flooding/no-collisions", cfg: manet.Config{
			Scheme: scheme.Flooding{}, DisableCollisions: true}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
		{label: "AC/no-collisions", cfg: manet.Config{
			Scheme: scheme.AdaptiveCounter{Label: "AC/no-collisions"}, DisableCollisions: true}},
	}
	return sweepOverMaps("abl-collision", "collision model contribution", o, candidates, false)
}

func runAblHello(o Options) []*Table {
	o = o.WithDefaults()
	maps := []int{7, 9, 11}
	var cfgs []manet.Config
	type variant struct {
		label string
		ideal bool
	}
	variants := []variant{{"NC/mac-hello", false}, {"NC/ideal-hello", true}}
	for _, v := range variants {
		for _, mu := range maps {
			for _, sp := range o.Speeds {
				cfgs = append(cfgs, manet.Config{
					Scheme:        scheme.NeighborCoverage{Label: v.label},
					MapUnits:      mu,
					MaxSpeedKMH:   sp,
					HelloMode:     manet.HelloFixed,
					HelloInterval: 1 * sim.Second,
					IdealHello:    v.ideal,
				})
			}
		}
	}
	sums := RunMatrix(cfgs, o)

	cols := []string{"variant"}
	for _, mu := range maps {
		for _, sp := range o.Speeds {
			cols = append(cols, fmt.Sprintf("%dx%d@%g", mu, mu, sp))
		}
	}
	t := NewTable("abl-hello", "NC reachability: real vs idealized HELLO", cols...)
	idx := 0
	for _, v := range variants {
		row := []string{v.label}
		for range maps {
			for range o.Speeds {
				row = append(row, f3(sums[idx].MeanRE))
				idx++
			}
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

func runAblExpiry(o Options) []*Table {
	var candidates []labeled
	for _, k := range []int{1, 2, 3} {
		label := fmt.Sprintf("expiry=%d intervals", k)
		candidates = append(candidates, labeled{
			label: label,
			cfg: manet.Config{
				Scheme:          scheme.NeighborCoverage{Label: label},
				HelloMode:       manet.HelloFixed,
				HelloInterval:   1 * sim.Second,
				ExpiryIntervals: k,
			},
		})
	}
	return sweepOverMaps("abl-expiry", "neighbor expiry policy (NC)", o, candidates, false)
}

func runAblCluster(o Options) []*Table {
	candidates := []labeled{
		{label: "cluster", cfg: manet.Config{Scheme: scheme.Cluster{}}},
		{label: "cluster+C=3", cfg: manet.Config{Scheme: scheme.Cluster{Inner: scheme.Counter{C: 3}}}},
		{label: "NC", cfg: manet.Config{Scheme: scheme.NeighborCoverage{}}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
	}
	return sweepOverMaps("abl-cluster", "cluster relaying vs adaptive schemes", o, candidates, false)
}

func runAblCapture(o Options) []*Table {
	candidates := []labeled{
		{label: "flooding", cfg: manet.Config{Scheme: scheme.Flooding{}}},
		{label: "flooding/capture", cfg: manet.Config{
			Scheme: scheme.Flooding{}, CaptureRatio: 4}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
		{label: "AC/capture", cfg: manet.Config{
			Scheme: scheme.AdaptiveCounter{Label: "AC/capture"}, CaptureRatio: 4}},
	}
	return sweepOverMaps("abl-capture", "capture effect (6 dB ratio)", o, candidates, false)
}

func runAblDistance(o Options) []*Table {
	candidates := []labeled{
		{label: "D=10", cfg: manet.Config{Scheme: scheme.Distance{D: 10}}},
		{label: "D=40", cfg: manet.Config{Scheme: scheme.Distance{D: 40}}},
		{label: "D=100", cfg: manet.Config{Scheme: scheme.Distance{D: 100}}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
	}
	return sweepOverMaps("abl-distance", "distance thresholds vs adaptive counter", o, candidates, false)
}

func runAblMobility(o Options) []*Table {
	candidates := []labeled{
		{label: "AC/random-turn", cfg: manet.Config{
			Scheme: scheme.AdaptiveCounter{Label: "AC/random-turn"}}},
		{label: "AC/waypoint", cfg: manet.Config{
			Scheme:   scheme.AdaptiveCounter{Label: "AC/waypoint"},
			Mobility: manet.MobilityWaypoint}},
		{label: "NC/random-turn", cfg: manet.Config{
			Scheme: scheme.NeighborCoverage{Label: "NC/random-turn"}}},
		{label: "NC/waypoint", cfg: manet.Config{
			Scheme:   scheme.NeighborCoverage{Label: "NC/waypoint"},
			Mobility: manet.MobilityWaypoint}},
	}
	return sweepOverMaps("abl-mobility", "mobility model sensitivity", o, candidates, false)
}

// runAblOracle compares the measured SRB of the best adaptive schemes
// against the CDS oracle bound: the largest saving any scheme could
// achieve while still reaching the source's whole component, computed
// on topology snapshots drawn exactly like the simulator's placements.
func runAblOracle(o Options) []*Table {
	o = o.WithDefaults()

	// Oracle bound per map: average over random topologies and sources.
	const topologies = 30
	bounds := make(map[int]float64, len(o.Maps))
	rng := sim.NewRNG(o.BaseSeed).Fork(77)
	for _, mu := range o.Maps {
		side := float64(mu) * 500
		sum := 0.0
		for t := 0; t < topologies; t++ {
			pts := make([]geom.Point, o.Hosts)
			for i := range pts {
				pts[i] = geom.Point{
					X: rng.UniformFloat(0, side),
					Y: rng.UniformFloat(0, side),
				}
			}
			sum += analysis.SRBUpperBound(pts, 500, rng.IntN(o.Hosts))
		}
		bounds[mu] = sum / topologies
	}

	// Measured SRB (and RE) for the adaptive schemes.
	candidates := []labeled{
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
		{label: "AL", cfg: manet.Config{Scheme: scheme.AdaptiveLocation{}}},
		{label: "NC-DHI", cfg: manet.Config{
			Scheme: scheme.NeighborCoverage{Label: "NC-DHI"}, HelloMode: manet.HelloDynamic}},
	}
	var cfgs []manet.Config
	for _, cand := range candidates {
		for _, mu := range o.Maps {
			c := cand.cfg
			c.MapUnits = mu
			cfgs = append(cfgs, c)
		}
	}
	sums := RunMatrix(cfgs, o)

	cols := []string{"map", "oracle SRB bound"}
	for _, cand := range candidates {
		cols = append(cols, cand.label+" SRB", cand.label+" RE")
	}
	t := NewTable("abl-oracle", "measured SRB vs CDS oracle bound", cols...)
	for mi, mu := range o.Maps {
		row := []string{fmt.Sprintf("%dx%d", mu, mu), f3(bounds[mu])}
		for ci := range candidates {
			s := sums[ci*len(o.Maps)+mi]
			row = append(row, f3(s.MeanSRB), f3(s.MeanRE))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// runAblLoad sweeps the broadcast inter-arrival spread on a mid-density
// map: smaller spread = more concurrent broadcasts = more contention.
func runAblLoad(o Options) []*Table {
	o = o.WithDefaults()
	spreads := []sim.Duration{100 * sim.Millisecond, 500 * sim.Millisecond,
		2 * sim.Second, 5 * sim.Second}
	schemes := []labeled{
		{label: "flooding", cfg: manet.Config{Scheme: scheme.Flooding{}}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
		{label: "NC", cfg: manet.Config{Scheme: scheme.NeighborCoverage{}}},
	}
	var cfgs []manet.Config
	for _, sch := range schemes {
		for _, sp := range spreads {
			c := sch.cfg
			c.MapUnits = 5
			c.ArrivalSpread = sp
			cfgs = append(cfgs, c)
		}
	}
	sums := RunMatrix(cfgs, o)

	cols := []string{"scheme"}
	for _, sp := range spreads {
		cols = append(cols, fmt.Sprintf("U(0,%v)", sp))
	}
	re := NewTable("abl-load", "RE vs offered load (5x5 map)", cols...)
	lat := NewTable("abl-load", "latency vs offered load (5x5 map)", cols...)
	idx := 0
	for _, sch := range schemes {
		reRow := []string{sch.label}
		latRow := []string{sch.label}
		for range spreads {
			s := sums[idx]
			idx++
			reRow = append(reRow, f3(s.MeanRE))
			latRow = append(latRow, fms(s.MeanLatency.Milliseconds()))
		}
		re.AddRow(reRow...)
		lat.AddRow(latRow...)
	}
	return []*Table{re, lat}
}

// runAblRTS measures AODV-lite discovery with and without RTS/CTS on
// the RREP unicast path, for flooding and AC request dissemination.
func runAblRTS(o Options) []*Table {
	o = o.WithDefaults()
	type variant struct {
		label string
		sch   scheme.Scheme
		rts   int
	}
	variants := []variant{
		{"flooding / no-rts", scheme.Flooding{}, 0},
		{"flooding / rts", scheme.Flooding{}, 1},
		{"AC / no-rts", scheme.AdaptiveCounter{}, 0},
		{"AC / rts", scheme.AdaptiveCounter{}, 1},
	}
	t := NewTable("abl-rts", "route discovery with/without RTS-CTS on replies",
		"variant", "success", "rreq tx/disc", "rrep retries", "rrep drops", "latency")
	for i, v := range variants {
		n, err := routing.New(routing.Config{
			Hosts:        o.Hosts,
			MapUnits:     5,
			Scheme:       v.sch,
			Discoveries:  o.Requests,
			RTSThreshold: v.rts,
			Seed:         o.BaseSeed + uint64(i),
		})
		if err != nil {
			panic(err)
		}
		r := n.Run()
		t.AddRow(v.label, f3(r.SuccessRate()),
			fmt.Sprintf("%.1f", r.RequestsPerDiscovery()),
			fmt.Sprintf("%d", r.UnicastRetries),
			fmt.Sprintf("%d", r.UnicastDrops),
			fms(r.MeanDiscoveryLatency.Milliseconds()))
	}
	return []*Table{t}
}

func runAblProb(o Options) []*Table {
	candidates := []labeled{
		{label: "P=0.40", cfg: manet.Config{Scheme: scheme.Probabilistic{P: 0.4}}},
		{label: "P=0.70", cfg: manet.Config{Scheme: scheme.Probabilistic{P: 0.7}}},
		{label: "P=1.00", cfg: manet.Config{Scheme: scheme.Probabilistic{P: 1.0}}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
	}
	return sweepOverMaps("abl-prob", "gossip probabilities vs adaptive counter", o, candidates, false)
}
