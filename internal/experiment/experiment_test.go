package experiment

import (
	"strings"
	"testing"

	"repro/internal/manet"
	"repro/internal/scheme"
)

// tinyOptions keeps test sweeps fast.
func tinyOptions() Options {
	return Options{
		Hosts:    20,
		Requests: 6,
		Replicas: 1,
		Maps:     []int{1, 5},
		Speeds:   []float64{20, 60},
		HelloIntervalsMS: []int{
			1000, 10000,
		},
		Trials: 300,
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("figX", "demo", "a", "b")
	tab.AddRow("1", "2")
	tab.AddRow("long-cell", "3")
	text := tab.Text()
	if !strings.Contains(text, "figX — demo") || !strings.Contains(text, "long-cell") {
		t.Errorf("text rendering missing pieces:\n%s", text)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") || !strings.Contains(csv, "1,2\n") {
		t.Errorf("csv rendering wrong:\n%s", csv)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("figX", "demo", "a")
	tab.AddRow(`va"l,ue`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("quoting wrong: %s", csv)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tab := NewTable("figX", "demo", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestRunMatrixOrderAndDeterminism(t *testing.T) {
	cfgs := []manet.Config{
		{Scheme: scheme.Flooding{}, MapUnits: 1},
		{Scheme: scheme.Counter{C: 2}, MapUnits: 1},
	}
	o := tinyOptions()
	a := RunMatrix(cfgs, o)
	b := RunMatrix(cfgs, o)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("got %d/%d summaries", len(a), len(b))
	}
	for i := range a {
		if a[i].MeanRE != b[i].MeanRE || a[i].Transmissions != b[i].Transmissions {
			t.Errorf("matrix point %d not deterministic", i)
		}
	}
	// Flooding must have SRB 0, the counter scheme more than 0 in a
	// dense 1x1 map.
	if a[0].MeanSRB != 0 {
		t.Errorf("flooding SRB = %v", a[0].MeanSRB)
	}
	if a[1].MeanSRB <= 0 {
		t.Errorf("counter SRB = %v, want > 0 in dense map", a[1].MeanSRB)
	}
}

func TestRunMatrixMergesReplicas(t *testing.T) {
	o := tinyOptions()
	o.Replicas = 3
	sums := RunMatrix([]manet.Config{{Scheme: scheme.Flooding{}, MapUnits: 1}}, o)
	if sums[0].Broadcasts != 3*o.Requests {
		t.Errorf("merged broadcasts = %d, want %d", sums[0].Broadcasts, 3*o.Requests)
	}
}

func TestRegistryCoversAllFigures(t *testing.T) {
	want := []string{"fig1", "fig2", "fig5a", "fig5b", "fig5c", "fig5d",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d specs, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("spec %d = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Paper == "" || reg[i].Run == nil {
			t.Errorf("spec %s incomplete", id)
		}
	}
	if _, ok := Lookup("fig7"); !ok {
		t.Error("Lookup(fig7) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestFig1SmallRun(t *testing.T) {
	tables := runFig1(tinyOptions())
	if len(tables) != 1 {
		t.Fatalf("fig1 returned %d tables", len(tables))
	}
	if got := len(tables[0].Rows); got != 10 {
		t.Errorf("fig1 rows = %d, want 10 (k=1..10)", got)
	}
}

func TestFig2SmallRun(t *testing.T) {
	tables := runFig2(tinyOptions())
	if len(tables) != 1 || len(tables[0].Rows) != 10 {
		t.Fatalf("fig2 shape wrong")
	}
}

// TestEverySimFigureRunsTiny smoke-tests all simulation figures at a tiny
// scale: they must produce non-empty tables with consistent shapes and
// parsable cells.
func TestEverySimFigureRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figures are slow in -short mode")
	}
	o := tinyOptions()
	for _, spec := range Registry() {
		switch spec.ID {
		case "fig1", "fig2":
			continue // covered above
		case "fig6", "fig8":
			continue // pure function tables, no simulation
		}
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tables := spec.Run(o)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table %q", spec.ID, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("%s: ragged row in %q", spec.ID, tab.Title)
					}
				}
				// Rendering must not panic and must mention the id.
				if !strings.Contains(tab.Text(), spec.ID) {
					t.Errorf("%s: text render missing id", spec.ID)
				}
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Hosts != 100 || o.Requests == 0 || o.Replicas == 0 || o.Workers < 1 {
		t.Errorf("defaults incomplete: %+v", o)
	}
	if len(o.Maps) != 6 || o.Maps[0] != 1 || o.Maps[5] != 11 {
		t.Errorf("default maps wrong: %v", o.Maps)
	}
}

func TestAblationRegistry(t *testing.T) {
	abls := Ablations()
	if len(abls) != 12 {
		t.Fatalf("ablation count = %d", len(abls))
	}
	for _, s := range abls {
		if s.ID == "" || s.Run == nil || s.Title == "" {
			t.Errorf("incomplete ablation %+v", s.ID)
		}
		if _, ok := LookupAny(s.ID); !ok {
			t.Errorf("LookupAny misses %s", s.ID)
		}
	}
	if _, ok := LookupAny("fig1"); !ok {
		t.Error("LookupAny misses figures")
	}
}

// TestEveryAblationRunsTiny smoke-tests all ablation specs.
func TestEveryAblationRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	o := tinyOptions()
	for _, spec := range Ablations() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tables := spec.Run(o)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("empty table %q", tab.Title)
				}
			}
		})
	}
}

// TestRunMatrixParallelismInvariant: results must be identical whatever
// the worker count — parallelism is at the replica level only.
func TestRunMatrixParallelismInvariant(t *testing.T) {
	cfgs := []manet.Config{
		{Scheme: scheme.Flooding{}, MapUnits: 1},
		{Scheme: scheme.AdaptiveCounter{}, MapUnits: 5},
		{Scheme: scheme.NeighborCoverage{}, MapUnits: 5},
	}
	seq := tinyOptions()
	seq.Workers = 1
	par := tinyOptions()
	par.Workers = 4
	a := RunMatrix(cfgs, seq)
	b := RunMatrix(cfgs, par)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs between 1 and 4 workers", i)
		}
	}
}
