package experiment

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/manet"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Spec is one reproducible experiment: a figure of the paper's
// evaluation, the claim it supports, and the code that regenerates it.
type Spec struct {
	// ID is the figure identity used on the command line ("fig7").
	ID string
	// Title is a one-line description.
	Title string
	// Paper summarizes the result the paper reports for this figure, so
	// a reader can compare shapes directly from the harness output.
	Paper string
	// Run regenerates the figure's data.
	Run func(o Options) []*Table
}

// Registry returns all experiment specs in paper order.
func Registry() []Spec {
	return []Spec{
		{
			ID:    "fig1",
			Title: "Expected additional coverage EAC(k) after hearing a packet k times",
			Paper: "EAC(1)~0.41, EAC(2)~0.187, below 0.05 for k>=4",
			Run:   runFig1,
		},
		{
			ID:    "fig2",
			Title: "Contention analysis: probability of k contention-free hosts among n receivers",
			Paper: "cf(2,0)~0.59; cf(n,0)>0.8 for n>=6; cf(n,1) drops sharply; cf(n,n-1)=0",
			Run:   runFig2,
		},
		{
			ID:    "fig5a",
			Title: "Adaptive counter tuning: slope of C(n) before n1",
			Paper: "slope-1 sequence C(n)=2345... gives the best RE on sparse maps",
			Run:   runFig5a,
		},
		{
			ID:    "fig5b",
			Title: "Adaptive counter tuning: choice of n1",
			Paper: "n1=4 and 5 give satisfactory RE; n1=4 saves more rebroadcasts",
			Run:   runFig5b,
		},
		{
			ID:    "fig5c",
			Title: "Adaptive counter tuning: choice of n2",
			Paper: "n2=12 gives the best RE on sparse maps with good SRB",
			Run:   runFig5c,
		},
		{
			ID:    "fig5d",
			Title: "Adaptive counter tuning: decay shape between n1 and n2",
			Paper: "the intermediate (solid-line) decay balances RE and SRB best",
			Run:   runFig5d,
		},
		{
			ID:    "fig6",
			Title: "Candidate decreasing functions C(n) between n1 and n2",
			Paper: "the solid (recommended) line: C(n)=n+1 to n1=4, stepping down to 2 at n2=12",
			Run:   runFig6,
		},
		{
			ID:    "fig7",
			Title: "Adaptive counter vs fixed counter thresholds (RE, SRB, latency)",
			Paper: "C=2 loses RE on sparse maps, C=6 loses SRB everywhere; AC keeps RE high with strong SRB in dense maps",
			Run:   runFig7,
		},
		{
			ID:    "fig8",
			Title: "Candidate threshold functions A(n) for the adaptive location scheme",
			Paper: "0 below n1, linear to EAC(2)/pi r^2 = 0.187 at n2; knees (n1,n2) are the tuning knobs",
			Run:   runFig8,
		},
		{
			ID:    "fig9",
			Title: "Adaptive location threshold functions A(n) compared",
			Paper: "(6,12), (8,12), (8,10) deliver satisfactory RE; (6,12) has the best SRB balance",
			Run:   runFig9,
		},
		{
			ID:    "fig10",
			Title: "Adaptive location vs fixed location thresholds (RE, SRB, latency)",
			Paper: "fixed A degrades RE significantly on sparse maps; AL keeps RE high without sacrificing SRB",
			Run:   runFig10,
		},
		{
			ID:    "fig11",
			Title: "Neighbor coverage: RE vs hello interval and host speed",
			Paper: "long hello intervals degrade RE on sparse maps, worse at high speed; small maps are insensitive",
			Run:   runFig11,
		},
		{
			ID:    "fig12",
			Title: "Neighbor coverage with dynamic hello interval (RE, SRB, hello cost)",
			Paper: "NC-DHI keeps RE high across speeds and densities; hello count adapts (near himin on sparse maps, near himax on 1x1)",
			Run:   runFig12,
		},
		{
			ID:    "fig13",
			Title: "Overall comparison: SRB vs RE for all schemes on every map",
			Paper: "adaptive schemes keep RE above ~95% everywhere; flooding has SRB 0 and loses RE to collisions; NC best on dense maps, AC/AL best on sparse maps",
			Run:   runFig13,
		},
	}
}

// Lookup finds a spec by ID.
func Lookup(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// --- Analysis figures (no network simulation) ---

func runFig1(o Options) []*Table {
	o = o.WithDefaults()
	rng := sim.NewRNG(o.BaseSeed)
	series := analysis.EACSeries(10, o.Trials, 48, rng)
	t := NewTable("fig1", "EAC(k)/(pi r^2) vs k", "k", "EAC(k)")
	for k, v := range series {
		t.AddRow(fmt.Sprintf("%d", k+1), f3(v))
	}
	return []*Table{t}
}

func runFig2(o Options) []*Table {
	o = o.WithDefaults()
	rng := sim.NewRNG(o.BaseSeed)
	const maxN = 10
	table := analysis.ContentionFreeTable(maxN, o.Trials, rng)
	cols := []string{"n"}
	for k := 0; k <= 4; k++ {
		cols = append(cols, fmt.Sprintf("cf(n,%d)", k))
	}
	t := NewTable("fig2", "probability of k contention-free hosts among n receivers", cols...)
	for n := 1; n <= maxN; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		for k := 0; k <= 4; k++ {
			if k < len(table[n-1]) {
				row = append(row, f3(table[n-1][k]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// runFig6 tabulates the candidate C(n) decay shapes (the paper's Fig. 6
// plots these functions directly; no simulation involved).
func runFig6(Options) []*Table {
	candidates := []struct {
		label string
		fn    scheme.CounterFunc
	}{
		{"fast-decay", scheme.CounterTable(2, 3, 4, 5, 4, 4, 3, 3, 2, 2, 2, 2)},
		{"recommended (solid)", scheme.DefaultCounterFunc()},
		{"slow-decay", scheme.CounterTable(2, 3, 4, 5, 5, 5, 4, 4, 4, 3, 3, 2)},
		{"linear(4,12)", scheme.LinearCounterFunc(4, 12)},
	}
	cols := []string{"function"}
	for n := 1; n <= 14; n++ {
		cols = append(cols, fmt.Sprintf("n=%d", n))
	}
	t := NewTable("fig6", "C(n) candidates between n1=4 and n2=12", cols...)
	for _, c := range candidates {
		row := []string{c.label}
		for n := 1; n <= 14; n++ {
			row = append(row, fmt.Sprintf("%d", c.fn(n)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// runFig8 tabulates the A(n) candidates (the paper's Fig. 8).
func runFig8(Options) []*Table {
	knees := [][2]int{{2, 8}, {4, 10}, {6, 12}, {8, 10}, {8, 12}}
	cols := []string{"function"}
	for n := 0; n <= 14; n += 2 {
		cols = append(cols, fmt.Sprintf("n=%d", n))
	}
	t := NewTable("fig8", "A(n) candidates (ceiling EAC(2)/pi r^2 = 0.187)", cols...)
	for _, k := range knees {
		fn := scheme.LinearLocationFunc(k[0], k[1], scheme.EAC2Fraction)
		row := []string{fmt.Sprintf("A(%d,%d)", k[0], k[1])}
		for n := 0; n <= 14; n += 2 {
			row = append(row, fmt.Sprintf("%.3f", fn(n)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// --- Simulation figures ---

// labeled pairs a scheme (plus hello settings) with its display label.
type labeled struct {
	label string
	cfg   manet.Config
}

// sweepOverMaps runs each labeled scheme configuration on every map size
// and renders RE/SRB (and optionally latency) tables. Each candidate's
// map-specific config gets the paper's per-map speed unless the config
// pins one.
func sweepOverMaps(id, title string, o Options, candidates []labeled, withLatency bool) []*Table {
	o = o.WithDefaults()
	var cfgs []manet.Config
	for _, cand := range candidates {
		for _, mu := range o.Maps {
			c := cand.cfg
			c.MapUnits = mu
			cfgs = append(cfgs, c)
		}
	}
	sums, spread := RunMatrixSpread(cfgs, o)

	reCols := []string{"scheme"}
	for _, mu := range o.Maps {
		reCols = append(reCols, fmt.Sprintf("%dx%d", mu, mu))
	}
	re := NewTable(id, title+" — RE (reachability)", reCols...)
	srb := NewTable(id, title+" — SRB (saved rebroadcasts)", reCols...)
	var lat *Table
	if withLatency {
		lat = NewTable(id, title+" — mean broadcast latency", reCols...)
	}
	idx := 0
	for _, cand := range candidates {
		reRow := []string{cand.label}
		srbRow := []string{cand.label}
		latRow := []string{cand.label}
		for range o.Maps {
			s := sums[idx]
			if o.CI {
				_, half := stats.CI95(spread[idx])
				idx++
				reRow = append(reRow, fmt.Sprintf("%.3f±%.3f", s.MeanRE, half))
				srbRow = append(srbRow, f3(s.MeanSRB))
				latRow = append(latRow, fms(s.MeanLatency.Milliseconds()))
				continue
			}
			idx++
			reRow = append(reRow, f3(s.MeanRE))
			srbRow = append(srbRow, f3(s.MeanSRB))
			latRow = append(latRow, fms(s.MeanLatency.Milliseconds()))
		}
		re.AddRow(reRow...)
		srb.AddRow(srbRow...)
		if withLatency {
			lat.AddRow(latRow...)
		}
	}
	out := []*Table{re, srb}
	if withLatency {
		out = append(out, lat)
	}
	return out
}

// acCandidate builds an adaptive-counter candidate from a C(n) table.
func acCandidate(label string, fn scheme.CounterFunc) labeled {
	return labeled{
		label: label,
		cfg:   manet.Config{Scheme: scheme.AdaptiveCounter{C: fn, Label: label}},
	}
}

func runFig5a(o Options) []*Table {
	candidates := []labeled{
		// Slope 1/3: C(n) = 222333444555...
		acCandidate("slope-1/3 (222333444555)",
			scheme.CounterTable(2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5)),
		// Slope 1/2: C(n) = 22334455...
		acCandidate("slope-1/2 (22334455)",
			scheme.CounterTable(2, 2, 3, 3, 4, 4, 5, 5)),
		// Slope 1: C(n) = 2345...
		acCandidate("slope-1 (2345)",
			scheme.CounterTable(2, 3, 4, 5)),
	}
	return sweepOverMaps("fig5a", "C(n) slope before n1", o, candidates, false)
}

func runFig5b(o Options) []*Table {
	candidates := []labeled{
		acCandidate("n1=2 (233...)", scheme.CounterTable(2, 3)),
		acCandidate("n1=3 (2344...)", scheme.CounterTable(2, 3, 4)),
		acCandidate("n1=4 (23455...)", scheme.CounterTable(2, 3, 4, 5)),
		acCandidate("n1=5 (234566...)", scheme.CounterTable(2, 3, 4, 5, 6)),
	}
	return sweepOverMaps("fig5b", "choice of n1 with C(n)=n+1 capped", o, candidates, false)
}

func runFig5c(o Options) []*Table {
	candidates := []labeled{
		acCandidate("n2=8", scheme.LinearCounterFunc(4, 8)),
		acCandidate("n2=12", scheme.LinearCounterFunc(4, 12)),
		acCandidate("n2=16", scheme.LinearCounterFunc(4, 16)),
	}
	return sweepOverMaps("fig5c", "choice of n2 with n1=4, linear decay", o, candidates, false)
}

func runFig5d(o Options) []*Table {
	candidates := []labeled{
		// Fast (convex) decay toward 2.
		acCandidate("fast-decay", scheme.CounterTable(2, 3, 4, 5, 4, 4, 3, 3, 2, 2, 2, 2)),
		// The paper's recommended middle curve (solid line of its Fig. 6).
		acCandidate("recommended", scheme.DefaultCounterFunc()),
		// Slow (concave) decay that stays high longer.
		acCandidate("slow-decay", scheme.CounterTable(2, 3, 4, 5, 5, 5, 4, 4, 4, 3, 3, 2)),
	}
	return sweepOverMaps("fig5d", "decay shape between n1=4 and n2=12", o, candidates, false)
}

func runFig7(o Options) []*Table {
	candidates := []labeled{
		{label: "C=2", cfg: manet.Config{Scheme: scheme.Counter{C: 2}}},
		{label: "C=4", cfg: manet.Config{Scheme: scheme.Counter{C: 4}}},
		{label: "C=6", cfg: manet.Config{Scheme: scheme.Counter{C: 6}}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
	}
	return sweepOverMaps("fig7", "fixed counter vs adaptive counter", o, candidates, true)
}

func runFig9(o Options) []*Table {
	knees := [][2]int{{2, 8}, {4, 10}, {6, 12}, {8, 10}, {8, 12}}
	var candidates []labeled
	for _, k := range knees {
		label := fmt.Sprintf("AL(%d,%d)", k[0], k[1])
		candidates = append(candidates, labeled{
			label: label,
			cfg: manet.Config{Scheme: scheme.AdaptiveLocation{
				A:     scheme.LinearLocationFunc(k[0], k[1], scheme.EAC2Fraction),
				Label: label,
			}},
		})
	}
	return sweepOverMaps("fig9", "A(n) knee-point candidates", o, candidates, false)
}

func runFig10(o Options) []*Table {
	candidates := []labeled{
		{label: "A=0.1871", cfg: manet.Config{Scheme: scheme.Location{A: 0.1871}}},
		{label: "A=0.0469", cfg: manet.Config{Scheme: scheme.Location{A: 0.0469}}},
		{label: "A=0.0134", cfg: manet.Config{Scheme: scheme.Location{A: 0.0134}}},
		{label: "AL", cfg: manet.Config{Scheme: scheme.AdaptiveLocation{}}},
	}
	return sweepOverMaps("fig10", "fixed location vs adaptive location", o, candidates, true)
}

func runFig11(o Options) []*Table {
	o = o.WithDefaults()
	// The paper examines the sparser maps where staleness matters.
	maps := []int{5, 7, 9, 11}
	var cfgs []manet.Config
	for _, mu := range maps {
		for _, hi := range o.HelloIntervalsMS {
			for _, sp := range o.Speeds {
				cfgs = append(cfgs, manet.Config{
					Scheme:        scheme.NeighborCoverage{},
					MapUnits:      mu,
					MaxSpeedKMH:   sp,
					HelloMode:     manet.HelloFixed,
					HelloInterval: sim.Duration(hi) * sim.Millisecond,
				})
			}
		}
	}
	sums := RunMatrix(cfgs, o)

	var out []*Table
	idx := 0
	for _, mu := range maps {
		cols := []string{"hello interval"}
		for _, sp := range o.Speeds {
			cols = append(cols, fmt.Sprintf("%gkm/h", sp))
		}
		t := NewTable("fig11", fmt.Sprintf("NC reachability on %dx%d map", mu, mu), cols...)
		for _, hi := range o.HelloIntervalsMS {
			row := []string{fmt.Sprintf("%dms", hi)}
			for range o.Speeds {
				row = append(row, f3(sums[idx].MeanRE))
				idx++
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

func runFig12(o Options) []*Table {
	o = o.WithDefaults()
	var cfgs []manet.Config
	for _, mu := range o.Maps {
		for _, sp := range o.Speeds {
			cfgs = append(cfgs, manet.Config{
				Scheme:      scheme.NeighborCoverage{},
				MapUnits:    mu,
				MaxSpeedKMH: sp,
				HelloMode:   manet.HelloDynamic,
			})
		}
	}
	sums := RunMatrix(cfgs, o)

	mkCols := func() []string {
		cols := []string{"map"}
		for _, sp := range o.Speeds {
			cols = append(cols, fmt.Sprintf("%gkm/h", sp))
		}
		return cols
	}
	re := NewTable("fig12", "NC-DHI reachability", mkCols()...)
	srb := NewTable("fig12", "NC-DHI saved rebroadcasts", mkCols()...)
	hello := NewTable("fig12", "HELLO packets sent per run", mkCols()...)
	idx := 0
	for _, mu := range o.Maps {
		reRow := []string{fmt.Sprintf("%dx%d", mu, mu)}
		srbRow := []string{fmt.Sprintf("%dx%d", mu, mu)}
		hRow := []string{fmt.Sprintf("%dx%d", mu, mu)}
		for range o.Speeds {
			s := sums[idx]
			idx++
			reRow = append(reRow, f3(s.MeanRE))
			srbRow = append(srbRow, f3(s.MeanSRB))
			hRow = append(hRow, fmt.Sprintf("%d", s.HelloSent/maxInt(1, o.Replicas)))
		}
		re.AddRow(reRow...)
		srb.AddRow(srbRow...)
		hello.AddRow(hRow...)
	}
	return []*Table{re, srb, hello}
}

func runFig13(o Options) []*Table {
	o = o.WithDefaults()
	candidates := []labeled{
		{label: "flooding", cfg: manet.Config{Scheme: scheme.Flooding{}}},
		{label: "C=2", cfg: manet.Config{Scheme: scheme.Counter{C: 2}}},
		{label: "C=6", cfg: manet.Config{Scheme: scheme.Counter{C: 6}}},
		{label: "AC", cfg: manet.Config{Scheme: scheme.AdaptiveCounter{}}},
		{label: "A=0.1871", cfg: manet.Config{Scheme: scheme.Location{A: 0.1871}}},
		{label: "A=0.0134", cfg: manet.Config{Scheme: scheme.Location{A: 0.0134}}},
		{label: "AL", cfg: manet.Config{Scheme: scheme.AdaptiveLocation{}}},
		{label: "NC-DHI", cfg: manet.Config{
			Scheme:    scheme.NeighborCoverage{Label: "NC-DHI"},
			HelloMode: manet.HelloDynamic,
		}},
	}
	var cfgs []manet.Config
	for _, mu := range o.Maps {
		for _, cand := range candidates {
			c := cand.cfg
			c.MapUnits = mu
			cfgs = append(cfgs, c)
		}
	}
	sums := RunMatrix(cfgs, o)

	var out []*Table
	idx := 0
	for _, mu := range o.Maps {
		t := NewTable("fig13",
			fmt.Sprintf("SRB vs RE on the %dx%d map (upper-right is better)", mu, mu),
			"scheme", "RE", "SRB", "latency")
		rows := make([][]string, 0, len(candidates))
		for _, cand := range candidates {
			s := sums[idx]
			idx++
			rows = append(rows, []string{cand.label, f3(s.MeanRE), f3(s.MeanSRB),
				fms(s.MeanLatency.Milliseconds())})
		}
		// Present best-RE first for readability; the scatter data is the
		// same either way.
		sort.SliceStable(rows, func(i, j int) bool { return rows[i][1] > rows[j][1] })
		for _, r := range rows {
			t.AddRow(r...)
		}
		out = append(out, t)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
