package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestRecorderJSONLRoundTrip: every kind survives encode → decode with
// all fields intact, in order.
func TestRecorderJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	kinds := []Kind{Originate, Deliver, Duplicate, Transmit, Inhibit, Garbled}
	for i, k := range kinds {
		r.Record(sim.Time(i)*1000, k, bid(packet.NodeID(i), uint32(i+1)), packet.NodeID(i+10))
	}

	var buf bytes.Buffer
	if err := r.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(kinds) {
		t.Fatalf("encoded %d lines, want %d", got, len(kinds))
	}

	back, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(kinds) {
		t.Fatalf("decoded %d events, want %d", len(back), len(kinds))
	}
	for i, e := range back {
		want := r.Events()[i]
		if e != want {
			t.Errorf("event %d: decoded %+v, want %+v", i, e, want)
		}
	}
}

func TestDecodeJSONLRejectsVersionMismatch(t *testing.T) {
	in := `{"v":999,"type":"event","t_us":1,"kind":"deliver","src":1,"seq":1,"host":2}`
	if _, err := DecodeJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("version 999 accepted")
	}
}

func TestDecodeJSONLRejectsUnknownKind(t *testing.T) {
	in := `{"v":1,"type":"event","t_us":1,"kind":"teleport","src":1,"seq":1,"host":2}`
	if _, err := DecodeJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestDecodeJSONLSkipsForeignLines: non-event lines (meta, samples from
// a full telemetry export) are skipped, so a trace decoder can read an
// obs export and see just the events.
func TestDecodeJSONLSkipsForeignLines(t *testing.T) {
	in := `{"v":1,"type":"meta","series":[]}
{"v":1,"type":"sample","t_us":5,"values":[]}
{"v":1,"type":"event","t_us":7,"kind":"transmit","src":3,"seq":9,"host":4}
`
	events, err := DecodeJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != Transmit || events[0].At != 7 {
		t.Fatalf("decoded %+v", events)
	}
}
