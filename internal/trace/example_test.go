package trace_test

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/trace"
)

// A Recorder collects per-broadcast events; Dump renders the timeline.
func ExampleRecorder_Dump() {
	rec := trace.NewRecorder(0)
	bid := packet.BroadcastID{Source: 1, Seq: 1}
	rec.Record(0, trace.Originate, bid, 1)
	rec.Record(2432, trace.Deliver, bid, 2)
	rec.Record(3052, trace.Transmit, bid, 2)
	rec.Record(5484, trace.Inhibit, bid, 3)
	fmt.Print(rec.Dump(bid))
	// Output:
	// timeline of bcast(host1,#1):
	//   +   0.000ms  originate  host1
	//   +   2.432ms  deliver    host2
	//   +   3.052ms  transmit   host2
	//   +   5.484ms  inhibit    host3
}
