package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/packet"
	"repro/internal/sim"
)

// JSONLVersion is the version of the telemetry/trace JSONL schema. Every
// line carries it as "v"; decoders reject lines from a different major
// version. The obs package shares this constant so time-series samples
// and trace events form one versioned stream (see obs.Export).
const JSONLVersion = 1

// eventRecord is the wire form of one trace event: one JSON object per
// line, type "event", times in integer microseconds.
type eventRecord struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	TUS  int64  `json:"t_us"`
	Kind string `json:"kind"`
	Src  int    `json:"src"`
	Seq  uint32 `json:"seq"`
	Host int    `json:"host"`
}

// EncodeJSONL writes events as JSONL (one object per line) in the shared
// telemetry schema.
func EncodeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		rec := eventRecord{
			V:    JSONLVersion,
			Type: "event",
			TUS:  int64(e.At),
			Kind: e.Kind.String(),
			Src:  int(e.Broadcast.Source),
			Seq:  e.Broadcast.Seq,
			Host: int(e.Host),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeJSONL writes the recorder's retained events as JSONL.
func (r *Recorder) EncodeJSONL(w io.Writer) error {
	return EncodeJSONL(w, r.events)
}

// DecodeJSONL reads events back from a JSONL stream in the shared
// telemetry schema. Lines of other record types (meta, sample) are
// skipped, so a full obs export decodes to just its event stream; a
// version mismatch or malformed event line is an error.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var head struct {
			V    int    `json:"v"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if head.V != JSONLVersion {
			return nil, fmt.Errorf("trace: line %d: schema version %d, want %d", line, head.V, JSONLVersion)
		}
		if head.Type != "event" {
			continue
		}
		var rec eventRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		kind, ok := kindFromString(rec.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown event kind %q", line, rec.Kind)
		}
		out = append(out, Event{
			At:        sim.Time(rec.TUS),
			Kind:      kind,
			Broadcast: packet.BroadcastID{Source: packet.NodeID(rec.Src), Seq: rec.Seq},
			Host:      packet.NodeID(rec.Host),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// kindFromString inverts Kind.String for decoding.
func kindFromString(s string) (Kind, bool) {
	for k := Originate; k <= Garbled; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}
