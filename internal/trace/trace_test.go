package trace

import (
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func bid(src packet.NodeID, seq uint32) packet.BroadcastID {
	return packet.BroadcastID{Source: src, Seq: seq}
}

func TestRecordAndQuery(t *testing.T) {
	r := NewRecorder(0)
	r.Record(10, Originate, bid(1, 1), 1)
	r.Record(20, Deliver, bid(1, 1), 2)
	r.Record(15, Deliver, bid(2, 2), 3) // different broadcast
	r.Record(30, Transmit, bid(1, 1), 2)

	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	events := r.Broadcast(bid(1, 1))
	if len(events) != 3 {
		t.Fatalf("broadcast events = %d, want 3", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Error("Broadcast() not time-ordered")
		}
	}
}

func TestCap(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), Deliver, bid(1, 1), packet.NodeID(i))
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want cap 2", r.Len())
	}
	if r.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", r.Dropped())
	}
}

func TestCountByKind(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1, Deliver, bid(1, 1), 1)
	r.Record(2, Deliver, bid(1, 1), 2)
	r.Record(3, Inhibit, bid(1, 1), 2)
	counts := r.CountByKind()
	if counts[Deliver] != 2 || counts[Inhibit] != 1 || counts[Transmit] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestDump(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1000, Originate, bid(1, 1), 1)
	r.Record(3500, Deliver, bid(1, 1), 2)
	out := r.Dump(bid(1, 1))
	for _, want := range []string{"timeline", "originate", "deliver", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if got := r.Dump(bid(9, 9)); !strings.Contains(got, "no events") {
		t.Errorf("empty dump = %q", got)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Originate, Deliver, Duplicate, Transmit, Inhibit, Garbled}
	names := map[string]bool{}
	for _, k := range kinds {
		names[k.String()] = true
	}
	if len(names) != len(kinds) {
		t.Error("kind names not distinct")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 5, Kind: Transmit, Broadcast: bid(1, 2), Host: 3}
	if e.String() == "" {
		t.Error("empty event string")
	}
}
