// Package trace records per-broadcast event timelines from a simulation
// run: origination, deliveries, rebroadcast transmissions, inhibit
// decisions, and collision-garbled receptions. It exists for debugging,
// for tests that assert causal sequences, and for the kind of
// packet-level forensics the paper's storm analysis is built on.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	// Originate: the source put a new broadcast into the network.
	Originate Kind = iota + 1
	// Deliver: a host received its first intact copy.
	Deliver
	// Duplicate: a host received a redundant intact copy.
	Duplicate
	// Transmit: a host's (re)broadcast transmission started.
	Transmit
	// Inhibit: a host's scheme cancelled its pending rebroadcast.
	Inhibit
	// Garbled: a collision destroyed a copy at a host.
	Garbled
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Originate:
		return "originate"
	case Deliver:
		return "deliver"
	case Duplicate:
		return "duplicate"
	case Transmit:
		return "transmit"
	case Inhibit:
		return "inhibit"
	case Garbled:
		return "garbled"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At        sim.Time
	Kind      Kind
	Broadcast packet.BroadcastID
	Host      packet.NodeID
}

// String formats the event for dumps.
func (e Event) String() string {
	return fmt.Sprintf("%v %-9s %v @%v", e.At, e.Kind, e.Broadcast, e.Host)
}

// Recorder accumulates events up to a cap (0 = unbounded). It is not
// safe for concurrent use; a simulation is single-threaded.
type Recorder struct {
	cap     int
	events  []Event
	dropped int
}

// NewRecorder creates a recorder keeping at most cap events (cap <= 0
// keeps everything).
func NewRecorder(cap int) *Recorder {
	return &Recorder{cap: cap}
}

// Record appends an event, dropping it (and counting the drop) when the
// cap is reached.
func (r *Recorder) Record(at sim.Time, kind Kind, bid packet.BroadcastID, host packet.NodeID) {
	if r.cap > 0 && len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{At: at, Kind: kind, Broadcast: bid, Host: host})
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns the number of events discarded due to the cap.
func (r *Recorder) Dropped() int { return r.dropped }

// Events returns all retained events in recording order. The returned
// slice is the recorder's storage; callers must not modify it.
func (r *Recorder) Events() []Event { return r.events }

// Broadcast returns the events of one broadcast in time order.
func (r *Recorder) Broadcast(bid packet.BroadcastID) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Broadcast == bid {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

// Dump renders the timeline of one broadcast as indented text.
func (r *Recorder) Dump(bid packet.BroadcastID) string {
	events := r.Broadcast(bid)
	if len(events) == 0 {
		return fmt.Sprintf("no events for %v\n", bid)
	}
	var b strings.Builder
	start := events[0].At
	fmt.Fprintf(&b, "timeline of %v:\n", bid)
	for _, e := range events {
		fmt.Fprintf(&b, "  +%8.3fms  %-9s  %v\n",
			float64(e.At.Sub(start))/1000, e.Kind, e.Host)
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, "  (%d events dropped by cap)\n", r.dropped)
	}
	return b.String()
}
