package neighbor

import (
	"math"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestHelloAddsNeighbor(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, []packet.NodeID{3, 4}, sim.Second)
	if tab.Count() != 1 || !tab.Contains(2) {
		t.Fatalf("count=%d contains=%v", tab.Count(), tab.Contains(2))
	}
	two := tab.TwoHop(2)
	if len(two) != 2 || two[0] != 3 || two[1] != 4 {
		t.Errorf("two-hop set = %v", two)
	}
}

func TestOwnHelloIgnored(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(1, nil, sim.Second)
	if tab.Count() != 0 {
		t.Error("host enlisted itself as neighbor")
	}
}

func TestTwoHopKeepsAnnouncedSetVerbatim(t *testing.T) {
	// The table stores the announced set as-is (it may include the
	// owner; consumers like the NC scheme are insensitive to that, since
	// the owner is never in its own pending set).
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, []packet.NodeID{1, 3}, sim.Second)
	two := tab.TwoHop(2)
	if len(two) != 2 || two[0] != 1 || two[1] != 3 {
		t.Errorf("announced set not stored verbatim: %v", two)
	}
}

func TestExpiryAfterTwoIntervals(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, nil, sim.Second)
	// At just under two intervals the neighbor must still be present.
	sched.RunUntil(sim.Time(1999 * sim.Millisecond))
	if !tab.Contains(2) {
		t.Fatal("neighbor expired before two hello intervals")
	}
	sched.RunUntil(sim.Time(2001 * sim.Millisecond))
	if tab.Contains(2) {
		t.Fatal("neighbor not expired after two hello intervals")
	}
}

func TestRefreshPreventsExpiry(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, nil, sim.Second)
	// Refresh every second for five seconds.
	for i := 1; i <= 5; i++ {
		i := i
		sched.Schedule(sim.Time(i)*sim.Time(sim.Second), func() {
			tab.OnHello(2, nil, sim.Second)
			_ = i
		})
	}
	sched.RunUntil(sim.Time(6500 * sim.Millisecond))
	if !tab.Contains(2) {
		t.Error("refreshed neighbor expired")
	}
	sched.RunUntil(sim.Time(8000 * sim.Millisecond))
	if tab.Contains(2) {
		t.Error("neighbor survived two silent intervals after refreshes stopped")
	}
}

func TestExpiryUsesAnnouncedInterval(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, nil, 5*sim.Second) // slow hello announcer
	sched.RunUntil(sim.Time(9 * sim.Second))
	if !tab.Contains(2) {
		t.Error("slow-hello neighbor expired before 2x its announced interval")
	}
	sched.RunUntil(sim.Time(11 * sim.Second))
	if tab.Contains(2) {
		t.Error("slow-hello neighbor did not expire")
	}
}

func TestNeighborsSorted(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	for _, id := range []packet.NodeID{9, 2, 7, 4} {
		tab.OnHello(id, nil, sim.Second)
	}
	got := tab.Neighbors()
	want := []packet.NodeID{2, 4, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors() = %v, want sorted %v", got, want)
		}
	}
}

func TestTwoHopUnknownHost(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	if tab.TwoHop(42) != nil {
		t.Error("two-hop set of unknown host should be nil")
	}
}

func TestTwoHopReplacedOnNewHello(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, []packet.NodeID{3}, sim.Second)
	tab.OnHello(2, []packet.NodeID{4, 5}, sim.Second)
	two := tab.TwoHop(2)
	if len(two) != 2 || two[0] != 4 || two[1] != 5 {
		t.Errorf("stale two-hop data survived: %v", two)
	}
}

func TestVariationCountsJoinsAndLeaves(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	// Two joins at t=0.
	tab.OnHello(2, nil, sim.Second)
	tab.OnHello(3, nil, sim.Second)
	// nv = 2 changes / (2 neighbors * 10s) = 0.1
	if nv := tab.Variation(); math.Abs(nv-0.1) > 1e-12 {
		t.Errorf("variation after two joins = %v, want 0.1", nv)
	}
	// Let host 3 expire at t=2s (one more change, one neighbor left):
	sched.Schedule(sim.Time(1500*sim.Millisecond), func() {
		tab.OnHello(2, nil, sim.Second) // keep 2 alive
	})
	sched.RunUntil(sim.Time(2500 * sim.Millisecond))
	if tab.Contains(3) {
		t.Fatal("host 3 should have expired")
	}
	// 3 changes / (1 neighbor * 10 s) = 0.3
	if nv := tab.Variation(); math.Abs(nv-0.3) > 1e-12 {
		t.Errorf("variation after a leave = %v, want 0.3", nv)
	}
}

func TestVariationWindowSlides(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, nil, 100*sim.Second) // huge interval so no expiry interferes
	// After the window passes with no changes, variation returns to 0.
	sched.RunUntil(sim.Time(VariationWindow) + sim.Time(sim.Second))
	if nv := tab.Variation(); nv != 0 {
		t.Errorf("variation after quiet window = %v, want 0", nv)
	}
}

func TestVariationEmptyNeighborhoodDefined(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	if nv := tab.Variation(); nv != 0 {
		t.Errorf("empty table variation = %v", nv)
	}
	tab.OnHello(2, nil, sim.Second)
	sched.RunUntil(sim.Time(3 * sim.Second)) // joins then expires: 2 changes, 0 neighbors
	if tab.Count() != 0 {
		t.Fatal("expected empty table")
	}
	nv := tab.Variation()
	if math.IsNaN(nv) || math.IsInf(nv, 0) {
		t.Errorf("variation undefined on empty neighborhood: %v", nv)
	}
}

func TestDHIIntervalFormula(t *testing.T) {
	cfg := DefaultDHIConfig()
	cases := []struct {
		nv   float64
		want sim.Duration
	}{
		{0, 10 * sim.Second},            // no variation: longest interval
		{0.02, 1 * sim.Second},          // at nvmax: clamped to himin
		{0.05, 1 * sim.Second},          // beyond nvmax: clamped
		{0.01, 5 * sim.Second},          // midpoint: half of himax
		{0.018, 1 * sim.Second},         // (0.002/0.02)*10s = 1s exactly at himin
		{0.015, 2500 * sim.Millisecond}, // quarter
	}
	for _, c := range cases {
		if got := cfg.Interval(c.nv); got != c.want {
			t.Errorf("Interval(%v) = %v, want %v", c.nv, got, c.want)
		}
	}
}

func TestDHIDegenerateConfig(t *testing.T) {
	cfg := DHIConfig{NVMax: 0, HIMin: sim.Second, HIMax: 10 * sim.Second}
	if got := cfg.Interval(0.5); got != 10*sim.Second {
		t.Errorf("degenerate NVMax: Interval = %v, want HIMax", got)
	}
}

func TestClear(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, []packet.NodeID{3}, sim.Second)
	tab.Clear()
	if tab.Count() != 0 {
		t.Error("Clear left entries behind")
	}
	// Expiry events must have been cancelled: running past the deadline
	// must not panic or record changes.
	sched.RunUntil(sim.Time(10 * sim.Second))
	if nv := tab.Variation(); nv != 0 {
		t.Errorf("variation after clear = %v", nv)
	}
}

func TestZeroIntervalHelloDefaults(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewTable(1, sched, 0)
	tab.OnHello(2, nil, 0) // malformed announcement
	sched.RunUntil(sim.Time(1999 * sim.Millisecond))
	if !tab.Contains(2) {
		t.Error("neighbor with defaulted interval expired too early")
	}
}
