package neighbor

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestDenseMatchesMap drives both layouts through an identical random
// HELLO/expiry timeline and requires every observable to agree.
func TestDenseMatchesMap(t *testing.T) {
	const hosts = 40
	sched := sim.NewScheduler()
	m := NewTable(0, sched, 0)
	d := NewDenseTable(0, sched, 0, hosts)
	rng := rand.New(rand.NewSource(9))
	var at sim.Time
	for i := 0; i < 400; i++ {
		at = at.Add(sim.Duration(rng.Intn(int(sim.Second))))
		h := packet.NodeID(rng.Intn(hosts))
		two := make([]packet.NodeID, rng.Intn(4))
		for j := range two {
			two[j] = packet.NodeID(rng.Intn(hosts))
		}
		iv := sim.Duration(1+rng.Intn(3)) * sim.Second
		sched.Schedule(at, func() {
			m.OnHello(h, two, iv)
			d.OnHello(h, two, iv)
		})
	}
	check := func() {
		if m.Count() != d.Count() {
			t.Fatalf("at %v: map count %d, dense count %d", sched.Now(), m.Count(), d.Count())
		}
		mn, dn := m.Neighbors(), d.Neighbors()
		for i := range mn {
			if mn[i] != dn[i] {
				t.Fatalf("at %v: neighbor lists differ: %v vs %v", sched.Now(), mn, dn)
			}
		}
		for h := packet.NodeID(0); h < hosts; h++ {
			if m.Contains(h) != d.Contains(h) {
				t.Fatalf("at %v: Contains(%d) differs", sched.Now(), h)
			}
			mt, dt := m.TwoHop(h), d.TwoHop(h)
			if len(mt) != len(dt) {
				t.Fatalf("at %v: TwoHop(%d) differs: %v vs %v", sched.Now(), h, mt, dt)
			}
			for i := range mt {
				if mt[i] != dt[i] {
					t.Fatalf("at %v: TwoHop(%d) differs: %v vs %v", sched.Now(), h, mt, dt)
				}
			}
		}
		if m.Variation() != d.Variation() {
			t.Fatalf("at %v: variation differs: %v vs %v", sched.Now(), m.Variation(), d.Variation())
		}
	}
	// Check at instant boundaries only: the two tables' expiry timers for
	// the same neighbor share a timestamp, so mid-instant state may
	// legitimately differ between the two Step calls.
	end := at.Add(10 * sim.Second)
	for mark := sim.Time(0); mark <= end; mark = mark.Add(100 * sim.Millisecond) {
		sched.RunUntil(mark)
		check()
	}
	// Let every expiry run out.
	sched.Run()
	check()
	if d.Count() != 0 {
		t.Errorf("dense table still has %d neighbors after all expiries", d.Count())
	}
}

func TestDenseExpiry(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewDenseTable(1, sched, 0, 8)
	tab.OnHello(2, []packet.NodeID{3}, sim.Second)
	sched.RunUntil(sim.Time(1999 * sim.Millisecond))
	if !tab.Contains(2) {
		t.Fatal("neighbor expired before two hello intervals")
	}
	sched.RunUntil(sim.Time(2001 * sim.Millisecond))
	if tab.Contains(2) || tab.Count() != 0 {
		t.Fatal("neighbor not expired after two hello intervals")
	}
	if tab.TwoHop(2) != nil {
		t.Error("expired neighbor still reports a two-hop set")
	}
	if got := tab.Neighbors(); len(got) != 0 {
		t.Errorf("Neighbors = %v after expiry, want empty", got)
	}
}

func TestDenseNeighborsCacheInvalidation(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewDenseTable(0, sched, 0, 16)
	tab.OnHello(3, nil, sim.Second)
	tab.OnHello(1, nil, sim.Second)
	n1 := tab.Neighbors()
	if len(n1) != 2 || n1[0] != 1 || n1[1] != 3 {
		t.Fatalf("Neighbors = %v, want [1 3]", n1)
	}
	tab.OnHello(2, nil, sim.Second)
	n2 := tab.Neighbors()
	if len(n2) != 3 || n2[0] != 1 || n2[1] != 2 || n2[2] != 3 {
		t.Fatalf("Neighbors after join = %v, want [1 2 3]", n2)
	}
}

func TestAppendNeighborsBothLayouts(t *testing.T) {
	for _, dense := range []bool{false, true} {
		sched := sim.NewScheduler()
		var tab *Table
		if dense {
			tab = NewDenseTable(0, sched, 0, 8)
		} else {
			tab = NewTable(0, sched, 0)
		}
		tab.OnHello(5, nil, sim.Second)
		tab.OnHello(2, nil, sim.Second)
		buf := make([]packet.NodeID, 0, 8)
		out := tab.AppendNeighbors(buf)
		if len(out) != 2 || out[0] != 2 || out[1] != 5 {
			t.Fatalf("dense=%v: AppendNeighbors = %v, want [2 5]", dense, out)
		}
		if &out[0] != &buf[:1][0] {
			t.Errorf("dense=%v: AppendNeighbors reallocated despite capacity", dense)
		}
	}
}

func TestNeighborSetExposure(t *testing.T) {
	sched := sim.NewScheduler()
	d := NewDenseTable(0, sched, 0, 8)
	d.OnHello(4, nil, sim.Second)
	if s := d.NeighborSet(); s == nil || !s.Contains(4) || s.Count() != 1 {
		t.Error("dense NeighborSet does not reflect membership")
	}
	m := NewTable(0, sched, 0)
	if m.NeighborSet() != nil {
		t.Error("map-layout NeighborSet should be nil")
	}
}

// TestDenseLazyAllocation pins the O(1)-until-used contract of the dense
// layout: construction must not allocate the O(hosts) backing arrays, a
// never-touched table must answer every read-only query without
// materializing them, and the first HELLO must bring the table up
// transparently.
func TestDenseLazyAllocation(t *testing.T) {
	sched := sim.NewScheduler()
	tab := NewDenseTable(0, sched, 0, 1<<20)
	if tab.dense != nil || tab.present != nil {
		t.Fatal("dense storage materialized at construction")
	}
	if tab.Count() != 0 || tab.Contains(3) || tab.TwoHop(3) != nil {
		t.Fatal("idle dense table reports phantom neighbors")
	}
	if got := tab.Neighbors(); len(got) != 0 {
		t.Fatalf("idle Neighbors = %v, want empty", got)
	}
	if got := tab.AppendNeighbors(nil); len(got) != 0 {
		t.Fatalf("idle AppendNeighbors = %v, want empty", got)
	}
	tab.AuditEntries(func(packet.NodeID, sim.Time, sim.Duration) {
		t.Fatal("idle AuditEntries visited an entry")
	})
	tab.Clear() // must tolerate never-materialized storage
	if tab.dense != nil {
		t.Fatal("read-only queries materialized the dense storage")
	}
	tab.OnHello(9, []packet.NodeID{1, 2}, sim.Second)
	if tab.dense == nil || tab.present == nil {
		t.Fatal("first OnHello did not materialize the dense storage")
	}
	if !tab.Contains(9) || tab.Count() != 1 || len(tab.TwoHop(9)) != 2 {
		t.Fatal("table not usable after lazy materialization")
	}
	// NeighborSet must uphold the dense-table → non-nil contract even on
	// an untouched table (coverage judges capture it at construction).
	fresh := NewDenseTable(1, sched, 0, 8)
	if fresh.NeighborSet() == nil {
		t.Fatal("NeighborSet returned nil on a dense table")
	}
}

func TestDenseTableRejectsZeroHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDenseTable(hosts=0) did not panic")
		}
	}()
	NewDenseTable(0, sim.NewScheduler(), 0, 0)
}

// TestClearReusesStorage pins satellite 1: Clear must retain backing
// storage on both layouts instead of reallocating, and the table must be
// fully usable afterwards.
func TestClearReusesStorage(t *testing.T) {
	for _, dense := range []bool{false, true} {
		sched := sim.NewScheduler()
		var tab *Table
		if dense {
			tab = NewDenseTable(0, sched, 0, 32)
		} else {
			tab = NewTable(0, sched, 0)
		}
		for h := packet.NodeID(1); h <= 20; h++ {
			tab.OnHello(h, nil, sim.Second)
		}
		pendingBefore := sched.Pending()
		tab.Clear()
		if tab.Count() != 0 {
			t.Fatalf("dense=%v: Count = %d after Clear", dense, tab.Count())
		}
		if sched.Pending() != pendingBefore-20 {
			t.Errorf("dense=%v: Clear left expiry timers pending", dense)
		}
		if tab.Variation() != 0 {
			t.Errorf("dense=%v: change log survived Clear", dense)
		}
		// Steady-state Clear/refill cycles must not allocate (the
		// map/slice storage is warm after the first cycle). The scheduler
		// is drained each cycle so the cancelled expiry timers return to
		// its event pool — in a real run Step does that collection; here
		// nothing ever steps.
		avg := testing.AllocsPerRun(20, func() {
			for h := packet.NodeID(1); h <= 20; h++ {
				tab.OnHello(h, nil, sim.Second)
			}
			tab.Clear()
			sched.Drain()
		})
		// Expiry events are pooled by the scheduler, entry records by the
		// table, and the expiry closure is bound once per record — so a
		// warm cycle allocates nothing on either layout.
		if avg > 0 {
			t.Errorf("dense=%v: Clear/refill cycle allocates %.1f objects, want 0", dense, avg)
		}
		tab.OnHello(7, nil, sim.Second)
		if !tab.Contains(7) || tab.Count() != 1 {
			t.Errorf("dense=%v: table unusable after Clear", dense)
		}
	}
}
