package neighbor

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// EntryState is one live neighbor entry in a TableState, including the
// (at, seq) key of its armed expiry timer. Every live entry has an armed
// timer: OnHello always re-arms on refresh and expire removes the entry
// when it fires, so a barrier never observes a live entry without one.
type EntryState struct {
	ID        packet.NodeID
	LastHeard sim.Time
	Interval  sim.Duration
	Deadline  sim.Time
	ExpirySeq uint64
	TwoHop    []packet.NodeID
}

// TableState is one host's checkpointed neighbor knowledge: the live
// entries in ascending id order (canonical for the snapshot codec) and
// the join/leave change log feeding the variation estimator.
type TableState struct {
	Entries []EntryState
	Changes []sim.Time
}

// Snapshot captures the table's live entries and change log at a
// barrier. Entries are emitted in ascending id order on both layouts.
func (t *Table) Snapshot() TableState {
	var st TableState
	if t.Count() == 0 {
		// A table that has never heard a HELLO (or whose entries all
		// expired) snapshots allocation-free — the case the speculative
		// engine's per-segment micro-checkpoints hit on every host.
		st.Changes = t.changes
		return st
	}
	snap := func(e *entry) {
		st.Entries = append(st.Entries, EntryState{
			ID:        e.id,
			LastHeard: e.lastHeard,
			Interval:  e.interval,
			Deadline:  e.deadline,
			ExpirySeq: e.expiry.Seq(),
			TwoHop:    e.twoHop,
		})
	}
	if t.denseHosts > 0 {
		if t.present != nil {
			t.present.ForEach(func(h packet.NodeID) { snap(&t.dense[h]) })
		}
	} else {
		ids := make([]packet.NodeID, 0, len(t.entries))
		for id := range t.entries {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			snap(t.entries[id])
		}
	}
	st.Changes = t.changes
	return st
}

// Restore rebuilds a freshly constructed (empty) table from a
// checkpointed state, re-arming every entry's expiry timer at its exact
// (at, seq) key on the central ladder — where OnHello schedules them.
func (t *Table) Restore(st TableState) error {
	if t.Count() != 0 {
		return fmt.Errorf("neighbor: restore into a non-empty table")
	}
	for _, es := range st.Entries {
		if es.ID == t.owner {
			return fmt.Errorf("neighbor: restore entry for the table owner %v", es.ID)
		}
		var e *entry
		if t.denseHosts > 0 {
			if int(es.ID) < 0 || int(es.ID) >= t.denseHosts {
				return fmt.Errorf("neighbor: restore entry id %v outside dense population %d", es.ID, t.denseHosts)
			}
			t.ensureDense()
			if !t.present.Add(es.ID) {
				return fmt.Errorf("neighbor: duplicate restore entry %v", es.ID)
			}
			t.dirty = true
			e = &t.dense[es.ID]
		} else {
			if _, dup := t.entries[es.ID]; dup {
				return fmt.Errorf("neighbor: duplicate restore entry %v", es.ID)
			}
			e = &entry{}
			t.entries[es.ID] = e
		}
		e.id = es.ID
		e.lastHeard = es.LastHeard
		e.interval = es.Interval
		e.deadline = es.Deadline
		e.twoHop = append(e.twoHop[:0], es.TwoHop...)
		if e.fire == nil {
			ee := e
			e.fire = func() { t.expire(ee.id, ee.deadline) }
		}
		ev, err := t.sched.RestoreFunc(-1, es.Deadline, es.ExpirySeq, e.fire)
		if err != nil {
			return fmt.Errorf("neighbor: restore expiry for %v: %w", es.ID, err)
		}
		e.expiry = ev
	}
	t.changes = append(t.changes[:0], st.Changes...)
	return nil
}

// PendingEvents returns how many scheduler events the table currently
// has armed (one expiry per live entry), for the checkpoint
// exhaustiveness cross-check.
func (t *Table) PendingEvents() int { return t.Count() }
