// Package neighbor implements the neighbor-discovery machinery the
// paper's adaptive schemes depend on: a per-host neighbor table built
// from periodic HELLO packets (one- and two-hop knowledge), entry expiry
// after two missed hello intervals, the neighborhood-variation estimator
// nv_x, and the dynamic hello interval (DHI) function
//
//	hi_x = max(himin, (nvmax - nv_x)/nvmax * himax).
package neighbor

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
)

// DefaultExpiryIntervals is the paper's rule: a neighbor is dropped when
// no HELLO has been received for two of its hello intervals.
const DefaultExpiryIntervals = 2

// VariationWindow is the look-back window of the neighborhood-variation
// estimator (the paper uses the past 10 seconds).
const VariationWindow = 10 * sim.Second

// DHIConfig parameterizes the dynamic hello interval. The values in
// DefaultDHIConfig are the ones the paper simulates with.
type DHIConfig struct {
	NVMax float64      // maximum neighborhood variation (paper: 0.02)
	HIMin sim.Duration // shortest hello interval (paper: 1,000 ms)
	HIMax sim.Duration // longest hello interval (paper: 10,000 ms)
}

// DefaultDHIConfig returns the paper's DHI parameters.
func DefaultDHIConfig() DHIConfig {
	return DHIConfig{NVMax: 0.02, HIMin: 1 * sim.Second, HIMax: 10 * sim.Second}
}

// Interval evaluates the dynamic hello interval for a neighborhood
// variation nv.
func (c DHIConfig) Interval(nv float64) sim.Duration {
	if c.NVMax <= 0 {
		return c.HIMax
	}
	frac := (c.NVMax - nv) / c.NVMax
	hi := sim.Duration(frac * float64(c.HIMax))
	if hi < c.HIMin {
		return c.HIMin
	}
	if hi > c.HIMax {
		return c.HIMax
	}
	return hi
}

// entry is one one-hop neighbor record.
type entry struct {
	lastHeard sim.Time
	interval  sim.Duration // the neighbor's announced hello interval
	// twoHop is the neighbor set the host last announced. It aliases the
	// HELLO frame's (immutable) slice, so storing it is O(1) even when
	// hundreds of receivers hear the same beacon.
	twoHop []packet.NodeID
	expiry *sim.Event
}

// Table is one host's view of its neighborhood, fed by HELLO receptions.
// All knowledge is local and possibly stale — exactly the information
// the paper allows the schemes to use.
type Table struct {
	owner           packet.NodeID
	sched           *sim.Scheduler
	expiryIntervals int

	entries map[packet.NodeID]*entry
	changes []sim.Time // join/leave timestamps within the variation window
}

// NewTable creates an empty table for a host. expiryIntervals <= 0 uses
// the paper's default of 2.
func NewTable(owner packet.NodeID, sched *sim.Scheduler, expiryIntervals int) *Table {
	if expiryIntervals <= 0 {
		expiryIntervals = DefaultExpiryIntervals
	}
	return &Table{
		owner:           owner,
		sched:           sched,
		expiryIntervals: expiryIntervals,
		entries:         make(map[packet.NodeID]*entry),
	}
}

// OnHello records a HELLO from host h announcing its neighbor set and
// hello interval, refreshing (or creating) the one-hop entry and its
// expiry timer. The neighbors slice is retained without copying; callers
// must treat it as immutable (HELLO frames already are).
func (t *Table) OnHello(h packet.NodeID, neighbors []packet.NodeID, interval sim.Duration) {
	if h == t.owner {
		return
	}
	now := t.sched.Now()
	e, known := t.entries[h]
	if !known {
		e = &entry{}
		t.entries[h] = e
		t.recordChange(now)
	}
	e.lastHeard = now
	if interval <= 0 {
		interval = 1 * sim.Second
	}
	e.interval = interval
	e.twoHop = neighbors
	if e.expiry != nil {
		t.sched.Cancel(e.expiry)
	}
	deadline := now.Add(sim.Duration(t.expiryIntervals) * interval)
	e.expiry = t.sched.Schedule(deadline, func() { t.expire(h, deadline) })
}

// expire drops h if it has not been refreshed since the timer was set.
func (t *Table) expire(h packet.NodeID, deadline sim.Time) {
	e, ok := t.entries[h]
	if !ok {
		return
	}
	if e.lastHeard.Add(sim.Duration(t.expiryIntervals)*e.interval) > deadline {
		return // refreshed since; the newer timer will handle it
	}
	delete(t.entries, h)
	t.recordChange(t.sched.Now())
}

// recordChange logs a join/leave for the variation estimator, pruning
// events that fell out of the window.
func (t *Table) recordChange(now sim.Time) {
	t.changes = append(t.changes, now)
	cut := 0
	for cut < len(t.changes) && t.changes[cut].Add(VariationWindow) < now {
		cut++
	}
	if cut > 0 {
		t.changes = append(t.changes[:0], t.changes[cut:]...)
	}
}

// Count returns the current number of one-hop neighbors |N_x| — the "n"
// the adaptive threshold functions C(n) and A(n) consume.
func (t *Table) Count() int { return len(t.entries) }

// Contains reports whether h is currently a known one-hop neighbor.
func (t *Table) Contains(h packet.NodeID) bool {
	_, ok := t.entries[h]
	return ok
}

// Neighbors returns the sorted one-hop neighbor set N_x.
func (t *Table) Neighbors() []packet.NodeID {
	out := make([]packet.NodeID, 0, len(t.entries))
	for id := range t.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TwoHop returns N_{x,h}: h's neighbor set exactly as last announced to
// this host (it may include the owner itself), or nil if h is unknown.
// The returned slice is shared storage; callers must not modify it.
func (t *Table) TwoHop(h packet.NodeID) []packet.NodeID {
	e, ok := t.entries[h]
	if !ok {
		return nil
	}
	return e.twoHop
}

// Variation returns nv_x: the number of hosts that joined or left N_x
// within the past VariationWindow, normalized by |N_x| times the window
// length in seconds. An empty neighborhood uses |N_x| = 1 to keep the
// estimator defined.
func (t *Table) Variation() float64 {
	now := t.sched.Now()
	n := 0
	for _, ts := range t.changes {
		if ts.Add(VariationWindow) >= now {
			n++
		}
	}
	size := len(t.entries)
	if size < 1 {
		size = 1
	}
	return float64(n) / (float64(size) * VariationWindow.Seconds())
}

// Clear drops all entries and pending expiries (used between runs).
func (t *Table) Clear() {
	for _, e := range t.entries {
		if e.expiry != nil {
			t.sched.Cancel(e.expiry)
		}
	}
	t.entries = make(map[packet.NodeID]*entry)
	t.changes = nil
}
