// Package neighbor implements the neighbor-discovery machinery the
// paper's adaptive schemes depend on: a per-host neighbor table built
// from periodic HELLO packets (one- and two-hop knowledge), entry expiry
// after two missed hello intervals, the neighborhood-variation estimator
// nv_x, and the dynamic hello interval (DHI) function
//
//	hi_x = max(himin, (nvmax - nv_x)/nvmax * himax).
package neighbor

import (
	"sort"

	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/sim"
)

// DefaultExpiryIntervals is the paper's rule: a neighbor is dropped when
// no HELLO has been received for two of its hello intervals.
const DefaultExpiryIntervals = 2

// VariationWindow is the look-back window of the neighborhood-variation
// estimator (the paper uses the past 10 seconds).
const VariationWindow = 10 * sim.Second

// DHIConfig parameterizes the dynamic hello interval. The values in
// DefaultDHIConfig are the ones the paper simulates with.
type DHIConfig struct {
	NVMax float64      // maximum neighborhood variation (paper: 0.02)
	HIMin sim.Duration // shortest hello interval (paper: 1,000 ms)
	HIMax sim.Duration // longest hello interval (paper: 10,000 ms)
}

// DefaultDHIConfig returns the paper's DHI parameters.
func DefaultDHIConfig() DHIConfig {
	return DHIConfig{NVMax: 0.02, HIMin: 1 * sim.Second, HIMax: 10 * sim.Second}
}

// Interval evaluates the dynamic hello interval for a neighborhood
// variation nv.
func (c DHIConfig) Interval(nv float64) sim.Duration {
	if c.NVMax <= 0 {
		return c.HIMax
	}
	frac := (c.NVMax - nv) / c.NVMax
	hi := sim.Duration(frac * float64(c.HIMax))
	if hi < c.HIMin {
		return c.HIMin
	}
	if hi > c.HIMax {
		return c.HIMax
	}
	return hi
}

// entry is one one-hop neighbor record.
type entry struct {
	id        packet.NodeID
	lastHeard sim.Time
	interval  sim.Duration // the neighbor's announced hello interval
	deadline  sim.Time     // expiry deadline of the armed timer
	// twoHop is the neighbor set the host last announced, copied into
	// entry-owned storage whose capacity is reused across refreshes (so a
	// stable neighborhood allocates nothing and the HELLO frame may be
	// recycled by its sender).
	twoHop []packet.NodeID
	expiry *sim.Event
	// fire is the expiry callback, bound once per record and reused for
	// every rearm (it reads id and deadline from the record), so
	// refreshing a neighbor allocates nothing.
	fire func()
}

// Table is one host's view of its neighborhood, fed by HELLO receptions.
// All knowledge is local and possibly stale — exactly the information
// the paper allows the schemes to use.
//
// Two storage layouts sit behind the same API. The dense layout
// (NewDenseTable) exploits the simulators' dense 0..N-1 host ids: entries
// live in a flat array indexed by NodeID with membership in a bitset, so
// lookups are an array index and the sorted neighbor list is a popcount
// walk. The map layout (NewTable) remains for callers whose id space is
// sparse or unbounded.
type Table struct {
	owner           packet.NodeID
	sched           *sim.Scheduler
	expiryIntervals int

	// Map layout (denseHosts == 0). free recycles expired/cleared
	// records so churn does not allocate.
	entries map[packet.NodeID]*entry
	free    []*entry

	// Dense layout (denseHosts > 0): slot i holds the entry for NodeID
	// i, live iff present.Contains(i). neighbors caches the sorted id
	// list between mutations. The O(hosts) backing storage (dense,
	// present) is materialized lazily on first use: an idle table costs
	// O(1), which keeps network construction O(hosts) instead of
	// O(hosts²) at mega scale, and a HELLO-off run never pays at all.
	denseHosts int
	dense      []entry
	present    *nodeset.Set
	neighbors  []packet.NodeID
	dirty      bool

	changes []sim.Time // join/leave timestamps within the variation window
}

// NewTable creates an empty table for a host. expiryIntervals <= 0 uses
// the paper's default of 2.
func NewTable(owner packet.NodeID, sched *sim.Scheduler, expiryIntervals int) *Table {
	if expiryIntervals <= 0 {
		expiryIntervals = DefaultExpiryIntervals
	}
	return &Table{
		owner:           owner,
		sched:           sched,
		expiryIntervals: expiryIntervals,
		entries:         make(map[packet.NodeID]*entry),
	}
}

// NewDenseTable creates an empty table for a host in a population whose
// ids are exactly 0..hosts-1, using flat-array storage and bitset
// membership. The storage itself is allocated on first use, so building
// tables for a large, mostly idle population is O(1) per table.
// expiryIntervals <= 0 uses the paper's default of 2.
func NewDenseTable(owner packet.NodeID, sched *sim.Scheduler, expiryIntervals, hosts int) *Table {
	t := &Table{}
	InitDenseTable(t, owner, sched, expiryIntervals, hosts)
	return t
}

// InitDenseTable initializes a caller-allocated Table in place as a
// dense table, for slab construction: building a mega-scale population
// one NewDenseTable at a time costs one heap object per host, while a
// []Table slab costs one for the whole world.
func InitDenseTable(t *Table, owner packet.NodeID, sched *sim.Scheduler, expiryIntervals, hosts int) {
	if hosts < 1 {
		panic("neighbor: dense table needs a positive population size")
	}
	if expiryIntervals <= 0 {
		expiryIntervals = DefaultExpiryIntervals
	}
	*t = Table{
		owner:           owner,
		sched:           sched,
		expiryIntervals: expiryIntervals,
		denseHosts:      hosts,
	}
}

// ensureDense materializes the dense layout's backing storage.
func (t *Table) ensureDense() {
	if t.dense == nil {
		t.dense = make([]entry, t.denseHosts)
		t.present = nodeset.New(t.denseHosts)
	}
}

// OnHello records a HELLO from host h announcing its neighbor set and
// hello interval, refreshing (or creating) the one-hop entry and its
// expiry timer. The neighbors slice is copied into entry-owned storage
// (reusing its capacity), so callers may recycle the frame that carried
// it as soon as OnHello returns.
func (t *Table) OnHello(h packet.NodeID, neighbors []packet.NodeID, interval sim.Duration) {
	if h == t.owner {
		return
	}
	now := t.sched.Now()
	var e *entry
	if t.denseHosts > 0 {
		t.ensureDense()
		e = &t.dense[h]
		if t.present.Add(h) {
			t.dirty = true
			t.recordChange(now)
		}
	} else {
		var known bool
		e, known = t.entries[h]
		if !known {
			if n := len(t.free); n > 0 {
				e = t.free[n-1]
				t.free[n-1] = nil
				t.free = t.free[:n-1]
			} else {
				e = &entry{}
			}
			t.entries[h] = e
			t.recordChange(now)
		}
	}
	e.id = h
	e.lastHeard = now
	if interval <= 0 {
		interval = 1 * sim.Second
	}
	e.interval = interval
	e.twoHop = append(e.twoHop[:0], neighbors...)
	if e.expiry != nil {
		t.sched.Cancel(e.expiry)
	}
	if e.fire == nil {
		e.fire = func() { t.expire(e.id, e.deadline) }
	}
	e.deadline = now.Add(sim.Duration(t.expiryIntervals) * interval)
	e.expiry = t.sched.Schedule(e.deadline, e.fire)
}

// expire drops h if it has not been refreshed since the timer was set.
// The stored expiry handle is cleared on every path: the scheduler
// recycles fired events, so a retained handle would go stale.
func (t *Table) expire(h packet.NodeID, deadline sim.Time) {
	var e *entry
	if t.denseHosts > 0 {
		if t.present == nil || !t.present.Contains(h) {
			return
		}
		e = &t.dense[h]
	} else {
		var ok bool
		e, ok = t.entries[h]
		if !ok {
			return
		}
	}
	if e.lastHeard.Add(sim.Duration(t.expiryIntervals)*e.interval) > deadline {
		return // refreshed since; OnHello already replaced the handle
	}
	e.expiry = nil
	e.twoHop = e.twoHop[:0] // keep the backing array for the next tenant
	if t.denseHosts > 0 {
		t.present.Remove(h)
		t.dirty = true
	} else {
		delete(t.entries, h)
		t.free = append(t.free, e)
	}
	t.recordChange(t.sched.Now())
}

// recordChange logs a join/leave for the variation estimator, pruning
// events that fell out of the window.
func (t *Table) recordChange(now sim.Time) {
	t.changes = append(t.changes, now)
	cut := 0
	for cut < len(t.changes) && t.changes[cut].Add(VariationWindow) < now {
		cut++
	}
	if cut > 0 {
		t.changes = append(t.changes[:0], t.changes[cut:]...)
	}
}

// Count returns the current number of one-hop neighbors |N_x| — the "n"
// the adaptive threshold functions C(n) and A(n) consume.
func (t *Table) Count() int {
	if t.denseHosts > 0 {
		if t.present == nil {
			return 0
		}
		return t.present.Count()
	}
	return len(t.entries)
}

// Contains reports whether h is currently a known one-hop neighbor.
func (t *Table) Contains(h packet.NodeID) bool {
	if t.denseHosts > 0 {
		return t.present != nil && t.present.Contains(h)
	}
	_, ok := t.entries[h]
	return ok
}

// Neighbors returns the sorted one-hop neighbor set N_x. On the dense
// layout the slice is a cached view that is only valid until the next
// table mutation; callers must not modify it and must copy it to retain
// it (packet.NewHello already copies).
func (t *Table) Neighbors() []packet.NodeID {
	if t.denseHosts > 0 {
		if t.dirty {
			t.neighbors = t.present.AppendIDs(t.neighbors[:0])
			t.dirty = false
		}
		return t.neighbors
	}
	out := make([]packet.NodeID, 0, len(t.entries))
	for id := range t.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendNeighbors appends the sorted one-hop neighbor set to buf and
// returns the extended slice, allocating only when buf lacks capacity.
func (t *Table) AppendNeighbors(buf []packet.NodeID) []packet.NodeID {
	if t.denseHosts > 0 {
		if t.present == nil {
			return buf
		}
		return t.present.AppendIDs(buf)
	}
	return append(buf, t.Neighbors()...)
}

// NeighborSet exposes the one-hop membership bitset on the dense layout
// (nil on the map layout). It is live storage: callers must not mutate
// it, and its contents shift with the table. Asking for the set
// materializes the lazy storage — only hosts whose neighborhood is
// actually consulted (coverage-scheme judges) pay for it.
func (t *Table) NeighborSet() *nodeset.Set {
	if t.denseHosts > 0 {
		t.ensureDense()
	}
	return t.present
}

// TwoHop returns N_{x,h}: h's neighbor set exactly as last announced to
// this host (it may include the owner itself), or nil if h is unknown.
// The returned slice is shared storage; callers must not modify it.
func (t *Table) TwoHop(h packet.NodeID) []packet.NodeID {
	if t.denseHosts > 0 {
		if t.present != nil && int(h) < len(t.dense) && t.present.Contains(h) {
			return t.dense[h].twoHop
		}
		return nil
	}
	e, ok := t.entries[h]
	if !ok {
		return nil
	}
	return e.twoHop
}

// AuditEntries calls f for every live one-hop entry with the id, the
// time its last HELLO was heard, and the hello interval it announced.
// It is an observation-only walk for the invariant auditor: the table
// is not mutated and no expiry timers are touched.
func (t *Table) AuditEntries(f func(id packet.NodeID, lastHeard sim.Time, interval sim.Duration)) {
	if t.denseHosts > 0 {
		if t.present == nil {
			return
		}
		t.present.ForEach(func(h packet.NodeID) {
			e := &t.dense[h]
			f(e.id, e.lastHeard, e.interval)
		})
		return
	}
	for _, e := range t.entries {
		f(e.id, e.lastHeard, e.interval)
	}
}

// Variation returns nv_x: the number of hosts that joined or left N_x
// within the past VariationWindow, normalized by |N_x| times the window
// length in seconds. An empty neighborhood uses |N_x| = 1 to keep the
// estimator defined.
func (t *Table) Variation() float64 {
	now := t.sched.Now()
	n := 0
	for _, ts := range t.changes {
		if ts.Add(VariationWindow) >= now {
			n++
		}
	}
	size := t.Count()
	if size < 1 {
		size = 1
	}
	return float64(n) / (float64(size) * VariationWindow.Seconds())
}

// Clear drops all entries and pending expiries (used between runs). The
// backing storage — map buckets, dense slots, and the change log — is
// retained for reuse rather than reallocated.
func (t *Table) Clear() {
	if t.denseHosts > 0 {
		if t.present != nil {
			t.present.ForEach(func(h packet.NodeID) {
				e := &t.dense[h]
				if e.expiry != nil {
					t.sched.Cancel(e.expiry)
					e.expiry = nil
				}
				e.twoHop = e.twoHop[:0]
			})
			t.present.Clear()
		}
		t.dirty = true
	} else {
		for h, e := range t.entries {
			if e.expiry != nil {
				t.sched.Cancel(e.expiry)
				e.expiry = nil
			}
			e.twoHop = e.twoHop[:0]
			delete(t.entries, h)
			t.free = append(t.free, e)
		}
	}
	t.changes = t.changes[:0]
}
