package neighbor_test

import (
	"fmt"

	"repro/internal/neighbor"
)

// The dynamic hello interval shortens as the neighborhood churns: a
// static neighborhood beacons every himax, a fully churning one every
// himin.
func ExampleDHIConfig_Interval() {
	dhi := neighbor.DefaultDHIConfig() // nvmax 0.02, himin 1s, himax 10s
	for _, nv := range []float64{0, 0.005, 0.01, 0.02, 0.1} {
		fmt.Printf("nv=%.3f -> %v\n", nv, dhi.Interval(nv))
	}
	// Output:
	// nv=0.000 -> 10s
	// nv=0.005 -> 7.5s
	// nv=0.010 -> 5s
	// nv=0.020 -> 1s
	// nv=0.100 -> 1s
}
