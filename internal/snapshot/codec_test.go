package snapshot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// testCheckpoint builds a synthetic document exercising every branch of
// the codec: lanes, loss state, active flights, all observer kinds, all
// judge kinds, optional timers present and absent, and the repair
// extension's payloads.
func testCheckpoint() *Checkpoint {
	bid := func(src, seq uint32) packet.BroadcastID {
		return packet.BroadcastID{Source: packet.NodeID(src), Seq: seq}
	}
	return &Checkpoint{
		Digest: "hosts=30 seed=7",
		Sched: sim.SchedulerState{
			Now: 12345, Seq: 678, Executed: 900,
			PoolHits: 11, PoolMisses: 3, FreeLen: 5,
			Lanes: []sim.LaneState{
				{Seq: 1 << 32, FreeLen: 2},
				{Seq: 2 << 32, FreeLen: 0},
			},
		},
		Channel: phy.ChannelState{
			Stats:   phy.Stats{Transmissions: 40, Deliveries: 200, Collisions: 7, Lost: 3},
			HasLoss: true, LossRNG: [4]uint64{1, 2, 3, 4},
			MaxAir: 2240, TxPoolHits: 39, TxPoolMisses: 4, TxFreeLen: 3,
			Active: []phy.TxState{
				{
					FrameRef: 1, EnderRef: 3, Sender: 2,
					SenderPos: geom.Point{X: 10.5, Y: -2.25},
					End:       12400, EndSeq: 650,
					Receivers: []int32{0, 1, 5},
					Garbled:   []packet.NodeID{1},
				},
				{FrameRef: 2, EnderRef: 0, Sender: 7, End: 12350, EndSeq: 649},
			},
		},
		Net: Network{
			Seq: 9, EndTime: 90000, HelloSent: 12, RepairsRequested: 2, RepairsDelivered: 1,
			Records: []Record{
				{ID: bid(3, 1), Start: 100, Reachable: 30, Received: 28, Transmitted: 9, LastActivity: 450, Open: 0},
				{ID: bid(5, 2), Start: 9000, Reachable: 30, Received: 3, Transmitted: 1, LastActivity: 12340, Open: 4},
			},
			RecBase: 6,
			Stream:  metrics.StreamState{RE: []float64{0.9, 1}, SRB: []float64{0.3, 0.5}, Lat: []sim.Duration{120, 80}},
			SetPool: 4, FramePool: 2, HelloPool: 1,
			Originations: []Origination{{Src: 11, At: 15000, Seq: 40}},
		},
		Frames: []Frame{
			{
				Kind: uint8(packet.KindBroadcast), Sender: 2, Dest: packet.DestBroadcast, Bytes: 280,
				Broadcast: bid(3, 1), SenderPos: [2]float64{10.5, -2.25},
			},
			{
				Kind: uint8(packet.KindHello), Sender: 7, Dest: packet.DestBroadcast, Bytes: 76,
				Neighbors: []packet.NodeID{1, 4}, HelloInterval: 1000000,
				Recent: []packet.BroadcastID{bid(3, 1)},
			},
			{
				Kind: uint8(packet.KindData), Sender: 4, Dest: 9, Bytes: 280,
				Broadcast: bid(5, 2), PayloadKind: PayloadRepairResponse, PayloadID: bid(3, 1),
			},
			{
				Kind: uint8(packet.KindData), Sender: 9, Dest: 4, Bytes: 64,
				PayloadKind: PayloadRepairRequest, PayloadID: bid(3, 1),
			},
		},
		Observers: []Observer{
			{Kind: ObsHello, Host: 7},
			{Kind: ObsPending, Host: 0, Bid: bid(3, 1)},
			{Kind: ObsOrigin, Host: 2, Bid: bid(3, 1), FrameRef: 1},
		},
		Hosts: []Host{
			{
				Dedup: []packet.BroadcastID{bid(3, 1)},
				RNG:   [4]uint64{5, 6, 7, 8},
				Mover: mobility.RoamerState{
					SegStart: 9000, Origin: geom.Point{X: 1, Y: 2}, VX: 0.5, VY: -1,
					PrevStart: 4000, PrevOrigin: geom.Point{X: 0, Y: 0}, PrevVX: 1, PrevVY: 0,
					TurnAt: 9000, HasPrev: true, RNG: [4]uint64{9, 10, 11, 12},
					HasTurn: true, TurnEventAt: 20000, TurnEventSeq: 88,
				},
				Table: neighbor.TableState{
					Entries: []neighbor.EntryState{
						{ID: 4, LastHeard: 11000, Interval: 1000000, Deadline: 14000, ExpirySeq: 91, TwoHop: []packet.NodeID{2, 9}},
					},
					Changes: []sim.Time{500, 11000},
				},
				MAC: mac.MACState{
					Stats: mac.Stats{Enqueued: 5, Sent: 4, Cancelled: 1, AcksSent: 2, Retries: 1, Dropped: 0, Stalls: 3},
					CW:    31, RNG: [4]uint64{13, 14, 15, 16}, Busy: true, IdleSince: 11900,
					BackoffRemaining: 7, Retries: 1,
					Queue: []mac.PendingState{
						{FrameRef: 3, ObsRef: 2, Started: false},
						{Cancelled: true},
					},
					HasInflight: true, Inflight: mac.PendingState{FrameRef: 1, ObsRef: 3, Started: true},
					HasAwait: true, Await: mac.PendingState{FrameRef: 4, Retransmit: true, Started: true},
					AwaitTimerAt: 13000, AwaitTimerSeq: 95,
					HasTxEvent:   true, TxEventAt: 12500, TxEventSeq: 93, TxEventBase: 12400, TxEventSlots: 4,
					HasAck: true, AckTo: 9, AckAt: 12410, AckSeq: 94,
					FreeLen: 2,
				},
				Pending: []PendingDecision{
					{Bid: bid(3, 1), Judge: scheme.JudgeState{Kind: scheme.JudgeCounter, C: 2, Threshold: 3},
						Started: true, FrameRef: 1},
					{Bid: bid(5, 2), Judge: scheme.JudgeState{Kind: scheme.JudgeLocation,
						Own: geom.Point{X: 3, Y: 4}, Radius: 500, AThreshold: 0.05,
						Senders: []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}},
						HasAssess: true, AssessAt: 12600, AssessSeq: 96, FrameRef: 2},
					{Bid: bid(9, 9), Judge: scheme.JudgeState{Kind: scheme.JudgeCoverage,
						Pending: []packet.NodeID{3, 8}}},
					{Bid: bid(9, 10), Judge: scheme.JudgeState{Kind: scheme.JudgeDistance,
						Own: geom.Point{X: 5, Y: 6}, DThreshold: 100, MinDist: 230.5}},
					{Bid: bid(9, 11), Judge: scheme.JudgeState{Kind: scheme.JudgeProbabilistic, Rebroadcast: true}},
					{Bid: bid(9, 12), Judge: scheme.JudgeState{Kind: scheme.JudgeFlooding}},
				},
				PrFree: 3, HelloFly: []uint32{2},
				HasHelloTimer: true, HelloAt: 13500, HelloSeq: 97,
				Recent: []RecentBroadcast{{ID: bid(3, 1), Heard: 11500}},
				Nacked: []packet.BroadcastID{bid(5, 2)},
			},
			{RNG: [4]uint64{1, 1, 1, 1}, Mover: mobility.RoamerState{Stopped: true}},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	want := testCheckpoint()
	data := Encode(want)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot:  %+v\nwant: %+v", got, want)
	}
	if again := Encode(got); !bytes.Equal(again, data) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes")
	}
}

func TestAppendPreservesPrefix(t *testing.T) {
	c := testCheckpoint()
	prefix := []byte("prefix")
	out := Append(append([]byte(nil), prefix...), c)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Append clobbered the destination prefix")
	}
	if !bytes.Equal(out[len(prefix):], Encode(c)) {
		t.Fatal("Append encoded differently from Encode")
	}
}

func TestWriteRead(t *testing.T) {
	want := testCheckpoint()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Write/Read round trip mismatch")
	}
}

// TestDecodeRejectsTruncation decodes every proper prefix of a valid
// encoding: all must fail cleanly (no panic, no partial document).
func TestDecodeRejectsTruncation(t *testing.T) {
	data := Encode(testCheckpoint())
	for n := 0; n < len(data); n++ {
		ck, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(data))
		}
		if ck != nil {
			t.Fatalf("prefix of %d bytes returned a partial document with its error", n)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := Encode(testCheckpoint())
	if _, err := Decode(append(data, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsBadHeader(t *testing.T) {
	data := Encode(testCheckpoint())

	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt magic: got %v", err)
	}

	bad = append([]byte(nil), data...)
	bad[len(Magic)] = CodecVersion + 1
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version: got %v", err)
	}
}

// TestDecodeRejectsNonCanonicalBool locates the HasLoss boolean by
// diffing two encodings that differ only in that field, then corrupts it
// to 2: the decoder must reject any boolean byte above 1 so every
// accepted document has exactly one encoding.
func TestDecodeRejectsNonCanonicalBool(t *testing.T) {
	c := testCheckpoint()
	a := Encode(c)
	c.Channel.HasLoss = false
	b := Encode(c)
	if len(a) != len(b) {
		t.Fatal("HasLoss flip changed the encoding length")
	}
	idx := -1
	for i := range a {
		if a[i] != b[i] {
			if idx >= 0 {
				t.Fatal("HasLoss flip changed more than one byte")
			}
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("HasLoss flip changed nothing")
	}
	bad := append([]byte(nil), a...)
	bad[idx] = 2
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "boolean") {
		t.Fatalf("non-canonical boolean: got %v", err)
	}
}

// TestDecodeRejectsHugeCounts corrupts a length prefix to a value whose
// elements cannot fit in the remaining input: the decoder must bound
// counts by the bytes actually present instead of allocating.
func TestDecodeRejectsHugeCounts(t *testing.T) {
	data := Encode(testCheckpoint())
	// The digest length prefix is the first count in the stream, right
	// after the magic and version byte.
	bad := append([]byte(nil), data...)
	off := len(Magic) + 1
	bad[off], bad[off+1], bad[off+2], bad[off+3] = 0xff, 0xff, 0xff, 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("absurd count accepted")
	}
}
