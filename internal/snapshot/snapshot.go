// Package snapshot defines the simulator's checkpoint document — the
// full deterministic state of a run frozen at a barrier — and its
// versioned wire codec. The document is a passive data model: each
// simulation layer contributes its own checkpointed state type
// (sim.SchedulerState, phy.ChannelState, mac.MACState, ...), and the
// manet package converts between live networks and this document. The
// codec follows the internal/packet discipline: big-endian, canonical
// (any accepted input re-encodes to the identical bytes), and strict —
// truncation, trailing bytes, unknown versions, and non-canonical
// booleans are all errors.
package snapshot

import (
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Payload kinds a checkpointed frame can carry. The simulator's only
// opaque frame payloads are the repair extension's two control messages;
// everything else checkpoints as PayloadNone.
const (
	PayloadNone uint8 = iota
	PayloadRepairRequest
	PayloadRepairResponse
)

// Observer kinds (see Observer).
const (
	ObsNone uint8 = iota
	ObsHello
	ObsPending
	ObsOrigin
)

// Frame is one live frame in the identity table. Frames referenced from
// several places (a MAC queue record and the rebroadcast decision that
// enqueued it, say) appear once and are shared again after restore.
// Reference 0 is reserved for "no frame"; table entries are referenced
// as index+1.
type Frame struct {
	Kind          uint8
	Sender        packet.NodeID
	Dest          packet.NodeID
	Bytes         int64
	Broadcast     packet.BroadcastID
	SenderPos     [2]float64
	Neighbors     []packet.NodeID
	HelloInterval sim.Duration
	Recent        []packet.BroadcastID
	PayloadKind   uint8
	PayloadID     packet.BroadcastID
}

// Observer identifies a MAC transmission observer: none, a host's HELLO
// observer, the open rebroadcast decision for (Host, Bid), or a fresh
// origination observer over FrameRef. Reference 0 is reserved for the
// nil observer; table entries are referenced as index+1.
type Observer struct {
	Kind     uint8
	Host     int32
	Bid      packet.BroadcastID
	FrameRef uint32
}

// PendingDecision is one open rebroadcast decision (the paper's
// per-packet waiting state), in the host's live-list order.
type PendingDecision struct {
	Bid       packet.BroadcastID
	Judge     scheme.JudgeState
	Started   bool
	HasAssess bool
	AssessAt  sim.Time
	AssessSeq uint64
	FrameRef  uint32
}

// RecentBroadcast is one advertised broadcast of the repair extension.
type RecentBroadcast struct {
	ID    packet.BroadcastID
	Heard sim.Time
}

// Host is one host's checkpointed state.
type Host struct {
	Dedup   []packet.BroadcastID
	RNG     [4]uint64
	Mover   mobility.RoamerState
	Table   neighbor.TableState
	MAC     mac.MACState
	Pending []PendingDecision
	PrFree  int64

	HelloFly      []uint32
	HasHelloTimer bool
	HelloAt       sim.Time
	HelloSeq      uint64

	Recent []RecentBroadcast
	Nacked []packet.BroadcastID
}

// Record is one retained per-broadcast bookkeeping record with its
// open-reference count.
type Record struct {
	ID           packet.BroadcastID
	Start        sim.Time
	Reachable    int64
	Received     int64
	Transmitted  int64
	LastActivity sim.Time
	Open         int32
}

// Origination is one not-yet-fired workload broadcast request.
type Origination struct {
	Src int32
	At  sim.Time
	Seq uint64
}

// Network is the network-level checkpointed state: the broadcast
// sequence counter, the run's end time, run counters, the record arena,
// the streaming aggregates' fold history, pool depths, and the pending
// workload originations.
type Network struct {
	Seq              uint32
	EndTime          sim.Time
	HelloSent        int64
	RepairsRequested int64
	RepairsDelivered int64

	Records []Record
	RecBase uint32
	Stream  metrics.StreamState

	SetPool   int64
	FramePool int64
	HelloPool int64

	Originations []Origination
}

// Checkpoint is the full document: a configuration digest (restore
// refuses a contradictory configuration), the scheduler counters, the
// channel, the network-level state, the frame and observer identity
// tables, and every host.
type Checkpoint struct {
	Digest    string
	Sched     sim.SchedulerState
	Channel   phy.ChannelState
	Net       Network
	Frames    []Frame
	Observers []Observer
	Hosts     []Host
}
