package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Wire layout: an 8-byte magic, a version byte, then the Checkpoint
// fields in declaration order, all integers big-endian. Counts are
// uint32 prefixes; booleans are a single 0/1 byte (any other value is
// rejected, which is what keeps the encoding canonical); floats are
// IEEE 754 bits. Decode consumes the whole input — truncation inside a
// field and trailing bytes after the document are both errors — and
// every count is sanity-checked against the bytes remaining before
// anything is allocated, so a forged length cannot balloon memory.

// Magic prefixes every encoded checkpoint.
const Magic = "STRMSNAP"

// CodecVersion is the format version written after the magic.
const CodecVersion = 1

// ErrTruncated reports input that ended inside a field.
var ErrTruncated = errors.New("snapshot: truncated checkpoint")

// maxCount caps every length prefix in addition to the remaining-bytes
// bound, so a single corrupt count cannot demand a giant allocation.
const maxCount = 1 << 28

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) count(n int) { e.u32(uint32(n)) }
func (e *encoder) str(s string) {
	e.count(len(s))
	e.buf = append(e.buf, s...)
}
func (e *encoder) node(id packet.NodeID) { e.u32(uint32(int32(id))) }
func (e *encoder) bid(id packet.BroadcastID) {
	e.node(id.Source)
	e.u32(id.Seq)
}
func (e *encoder) rng(s [4]uint64) {
	for _, w := range s {
		e.u64(w)
	}
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) take(n int, field string) ([]byte, error) {
	if n > d.remaining() {
		return nil, fmt.Errorf("%w: %s at offset %d (have %d of %d bytes)",
			ErrTruncated, field, d.off, d.remaining(), n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) u8(field string) (uint8, error) {
	b, err := d.take(1, field)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u32(field string) (uint32, error) {
	b, err := d.take(4, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (d *decoder) u64(field string) (uint64, error) {
	b, err := d.take(8, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (d *decoder) i64(field string) (int64, error) {
	v, err := d.u64(field)
	return int64(v), err
}

func (d *decoder) f64(field string) (float64, error) {
	v, err := d.u64(field)
	return math.Float64frombits(v), err
}

func (d *decoder) boolean(field string) (bool, error) {
	v, err := d.u8(field)
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("snapshot: non-canonical boolean %d in %s", v, field)
	}
}

// count reads a length prefix and checks it against the bytes remaining
// (each element occupies at least elemSize bytes) before the caller
// allocates anything.
func (d *decoder) count(elemSize int, field string) (int, error) {
	v, err := d.u32(field)
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n > maxCount || n*elemSize > d.remaining() {
		return 0, fmt.Errorf("snapshot: %s count %d exceeds remaining input", field, n)
	}
	return n, nil
}

func (d *decoder) str(field string) (string, error) {
	n, err := d.count(1, field)
	if err != nil {
		return "", err
	}
	b, err := d.take(n, field)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) node(field string) (packet.NodeID, error) {
	v, err := d.u32(field)
	return packet.NodeID(int32(v)), err
}

func (d *decoder) bid(field string) (packet.BroadcastID, error) {
	src, err := d.node(field)
	if err != nil {
		return packet.BroadcastID{}, err
	}
	seq, err := d.u32(field)
	return packet.BroadcastID{Source: src, Seq: seq}, err
}

func (d *decoder) rng(field string) ([4]uint64, error) {
	var s [4]uint64
	for i := range s {
		w, err := d.u64(field)
		if err != nil {
			return s, err
		}
		s[i] = w
	}
	return s, nil
}

func (d *decoder) bids(field string) ([]packet.BroadcastID, error) {
	n, err := d.count(8, field)
	if err != nil {
		return nil, err
	}
	var out []packet.BroadcastID
	for i := 0; i < n; i++ {
		id, err := d.bid(field)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

func (d *decoder) nodes(field string) ([]packet.NodeID, error) {
	n, err := d.count(4, field)
	if err != nil {
		return nil, err
	}
	var out []packet.NodeID
	for i := 0; i < n; i++ {
		id, err := d.node(field)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

func encodeBids(e *encoder, ids []packet.BroadcastID) {
	e.count(len(ids))
	for _, id := range ids {
		e.bid(id)
	}
}

func encodeNodes(e *encoder, ids []packet.NodeID) {
	e.count(len(ids))
	for _, id := range ids {
		e.node(id)
	}
}

// --- scheduler ---

func encodeSched(e *encoder, st *sim.SchedulerState) {
	e.i64(int64(st.Now))
	e.u64(st.Seq)
	e.u64(st.Executed)
	e.u64(st.PoolHits)
	e.u64(st.PoolMisses)
	e.i64(int64(st.FreeLen))
	e.count(len(st.Lanes))
	for _, ln := range st.Lanes {
		e.u64(ln.Seq)
		e.i64(int64(ln.FreeLen))
	}
}

func decodeSched(d *decoder) (sim.SchedulerState, error) {
	var st sim.SchedulerState
	var err error
	read := func(field string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = d.i64(field)
		return v
	}
	st.Now = sim.Time(read("sched.now"))
	st.Seq = uint64(read("sched.seq"))
	st.Executed = uint64(read("sched.executed"))
	st.PoolHits = uint64(read("sched.pool_hits"))
	st.PoolMisses = uint64(read("sched.pool_misses"))
	st.FreeLen = int(read("sched.free_len"))
	if err != nil {
		return st, err
	}
	n, err := d.count(16, "sched.lanes")
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		var ln sim.LaneState
		if ln.Seq, err = d.u64("sched.lane.seq"); err != nil {
			return st, err
		}
		fl, err := d.i64("sched.lane.free_len")
		if err != nil {
			return st, err
		}
		ln.FreeLen = int(fl)
		st.Lanes = append(st.Lanes, ln)
	}
	return st, nil
}

// --- channel ---

func encodeChannel(e *encoder, st *phy.ChannelState) {
	e.i64(int64(st.Stats.Transmissions))
	e.i64(int64(st.Stats.Deliveries))
	e.i64(int64(st.Stats.Collisions))
	e.i64(int64(st.Stats.Lost))
	e.boolean(st.HasLoss)
	e.rng(st.LossRNG)
	e.i64(int64(st.MaxAir))
	e.u64(st.TxPoolHits)
	e.u64(st.TxPoolMisses)
	e.i64(int64(st.TxFreeLen))
	e.count(len(st.Active))
	for _, tx := range st.Active {
		e.u32(tx.FrameRef)
		e.u32(tx.EnderRef)
		e.u32(uint32(tx.Sender))
		e.f64(tx.SenderPos.X)
		e.f64(tx.SenderPos.Y)
		e.i64(int64(tx.End))
		e.u64(tx.EndSeq)
		e.count(len(tx.Receivers))
		for _, r := range tx.Receivers {
			e.u32(uint32(r))
		}
		encodeNodes(e, tx.Garbled)
	}
}

func decodeChannel(d *decoder) (phy.ChannelState, error) {
	var st phy.ChannelState
	var err error
	read := func(field string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = d.i64(field)
		return v
	}
	st.Stats.Transmissions = int(read("phy.transmissions"))
	st.Stats.Deliveries = int(read("phy.deliveries"))
	st.Stats.Collisions = int(read("phy.collisions"))
	st.Stats.Lost = int(read("phy.lost"))
	if err != nil {
		return st, err
	}
	if st.HasLoss, err = d.boolean("phy.has_loss"); err != nil {
		return st, err
	}
	if st.LossRNG, err = d.rng("phy.loss_rng"); err != nil {
		return st, err
	}
	st.MaxAir = sim.Duration(read("phy.max_air"))
	st.TxPoolHits = uint64(read("phy.tx_pool_hits"))
	st.TxPoolMisses = uint64(read("phy.tx_pool_misses"))
	st.TxFreeLen = int(read("phy.tx_free_len"))
	if err != nil {
		return st, err
	}
	n, err := d.count(52, "phy.active")
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		var tx phy.TxState
		if tx.FrameRef, err = d.u32("phy.tx.frame_ref"); err != nil {
			return st, err
		}
		if tx.EnderRef, err = d.u32("phy.tx.ender_ref"); err != nil {
			return st, err
		}
		sender, err := d.u32("phy.tx.sender")
		if err != nil {
			return st, err
		}
		tx.Sender = int32(sender)
		if tx.SenderPos.X, err = d.f64("phy.tx.pos_x"); err != nil {
			return st, err
		}
		if tx.SenderPos.Y, err = d.f64("phy.tx.pos_y"); err != nil {
			return st, err
		}
		end, err := d.i64("phy.tx.end")
		if err != nil {
			return st, err
		}
		tx.End = sim.Time(end)
		if tx.EndSeq, err = d.u64("phy.tx.end_seq"); err != nil {
			return st, err
		}
		rn, err := d.count(4, "phy.tx.receivers")
		if err != nil {
			return st, err
		}
		for j := 0; j < rn; j++ {
			r, err := d.u32("phy.tx.receiver")
			if err != nil {
				return st, err
			}
			tx.Receivers = append(tx.Receivers, int32(r))
		}
		if tx.Garbled, err = d.nodes("phy.tx.garbled"); err != nil {
			return st, err
		}
		st.Active = append(st.Active, tx)
	}
	return st, nil
}

// --- MAC ---

func encodeMACPending(e *encoder, st *mac.PendingState) {
	e.u32(st.FrameRef)
	e.u32(st.ObsRef)
	e.boolean(st.Started)
	e.boolean(st.Cancelled)
	e.boolean(st.Retransmit)
}

func decodeMACPending(d *decoder, field string) (mac.PendingState, error) {
	var st mac.PendingState
	var err error
	if st.FrameRef, err = d.u32(field); err != nil {
		return st, err
	}
	if st.ObsRef, err = d.u32(field); err != nil {
		return st, err
	}
	if st.Started, err = d.boolean(field); err != nil {
		return st, err
	}
	if st.Cancelled, err = d.boolean(field); err != nil {
		return st, err
	}
	st.Retransmit, err = d.boolean(field)
	return st, err
}

func encodeMAC(e *encoder, st *mac.MACState) {
	e.i64(int64(st.Stats.Enqueued))
	e.i64(int64(st.Stats.Sent))
	e.i64(int64(st.Stats.Cancelled))
	e.i64(int64(st.Stats.AcksSent))
	e.i64(int64(st.Stats.Retries))
	e.i64(int64(st.Stats.Dropped))
	e.i64(int64(st.Stats.Stalls))
	e.i64(int64(st.CW))
	e.rng(st.RNG)
	e.boolean(st.Busy)
	e.i64(int64(st.IdleSince))
	e.i64(int64(st.BackoffRemaining))
	e.i64(int64(st.Retries))
	e.count(len(st.Queue))
	for i := range st.Queue {
		encodeMACPending(e, &st.Queue[i])
	}
	e.boolean(st.HasInflight)
	encodeMACPending(e, &st.Inflight)
	e.boolean(st.HasAwait)
	encodeMACPending(e, &st.Await)
	e.i64(int64(st.AwaitTimerAt))
	e.u64(st.AwaitTimerSeq)
	e.boolean(st.HasTxEvent)
	e.i64(int64(st.TxEventAt))
	e.u64(st.TxEventSeq)
	e.i64(int64(st.TxEventBase))
	e.i64(int64(st.TxEventSlots))
	e.boolean(st.HasAck)
	e.node(st.AckTo)
	e.i64(int64(st.AckAt))
	e.u64(st.AckSeq)
	e.i64(int64(st.FreeLen))
}

func decodeMAC(d *decoder) (mac.MACState, error) {
	var st mac.MACState
	var err error
	read := func(field string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = d.i64(field)
		return v
	}
	st.Stats.Enqueued = int(read("mac.enqueued"))
	st.Stats.Sent = int(read("mac.sent"))
	st.Stats.Cancelled = int(read("mac.cancelled"))
	st.Stats.AcksSent = int(read("mac.acks_sent"))
	st.Stats.Retries = int(read("mac.stat_retries"))
	st.Stats.Dropped = int(read("mac.dropped"))
	st.Stats.Stalls = int(read("mac.stalls"))
	st.CW = int(read("mac.cw"))
	if err != nil {
		return st, err
	}
	if st.RNG, err = d.rng("mac.rng"); err != nil {
		return st, err
	}
	if st.Busy, err = d.boolean("mac.busy"); err != nil {
		return st, err
	}
	st.IdleSince = sim.Time(read("mac.idle_since"))
	st.BackoffRemaining = int(read("mac.backoff_remaining"))
	st.Retries = int(read("mac.retries"))
	if err != nil {
		return st, err
	}
	n, err := d.count(11, "mac.queue")
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		ps, err := decodeMACPending(d, "mac.queue")
		if err != nil {
			return st, err
		}
		st.Queue = append(st.Queue, ps)
	}
	if st.HasInflight, err = d.boolean("mac.has_inflight"); err != nil {
		return st, err
	}
	if st.Inflight, err = decodeMACPending(d, "mac.inflight"); err != nil {
		return st, err
	}
	if st.HasAwait, err = d.boolean("mac.has_await"); err != nil {
		return st, err
	}
	if st.Await, err = decodeMACPending(d, "mac.await"); err != nil {
		return st, err
	}
	st.AwaitTimerAt = sim.Time(read("mac.await_at"))
	st.AwaitTimerSeq = uint64(read("mac.await_seq"))
	if err != nil {
		return st, err
	}
	if st.HasTxEvent, err = d.boolean("mac.has_tx_event"); err != nil {
		return st, err
	}
	st.TxEventAt = sim.Time(read("mac.tx_event_at"))
	st.TxEventSeq = uint64(read("mac.tx_event_seq"))
	st.TxEventBase = sim.Time(read("mac.tx_event_base"))
	st.TxEventSlots = int(read("mac.tx_event_slots"))
	if err != nil {
		return st, err
	}
	if st.HasAck, err = d.boolean("mac.has_ack"); err != nil {
		return st, err
	}
	if st.AckTo, err = d.node("mac.ack_to"); err != nil {
		return st, err
	}
	st.AckAt = sim.Time(read("mac.ack_at"))
	st.AckSeq = uint64(read("mac.ack_seq"))
	st.FreeLen = int(read("mac.free_len"))
	return st, err
}

// --- mobility ---

func encodeMover(e *encoder, st *mobility.RoamerState) {
	e.i64(int64(st.SegStart))
	e.f64(st.Origin.X)
	e.f64(st.Origin.Y)
	e.f64(st.VX)
	e.f64(st.VY)
	e.i64(int64(st.PrevStart))
	e.f64(st.PrevOrigin.X)
	e.f64(st.PrevOrigin.Y)
	e.f64(st.PrevVX)
	e.f64(st.PrevVY)
	e.i64(int64(st.TurnAt))
	e.boolean(st.HasPrev)
	e.boolean(st.Stopped)
	e.rng(st.RNG)
	e.boolean(st.HasTurn)
	e.i64(int64(st.TurnEventAt))
	e.u64(st.TurnEventSeq)
}

func decodeMover(d *decoder) (mobility.RoamerState, error) {
	var st mobility.RoamerState
	var err error
	readI := func(field string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = d.i64(field)
		return v
	}
	readF := func(field string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = d.f64(field)
		return v
	}
	st.SegStart = sim.Time(readI("mover.seg_start"))
	st.Origin.X = readF("mover.origin_x")
	st.Origin.Y = readF("mover.origin_y")
	st.VX = readF("mover.vx")
	st.VY = readF("mover.vy")
	st.PrevStart = sim.Time(readI("mover.prev_start"))
	st.PrevOrigin.X = readF("mover.prev_origin_x")
	st.PrevOrigin.Y = readF("mover.prev_origin_y")
	st.PrevVX = readF("mover.prev_vx")
	st.PrevVY = readF("mover.prev_vy")
	st.TurnAt = sim.Time(readI("mover.turn_at"))
	if err != nil {
		return st, err
	}
	if st.HasPrev, err = d.boolean("mover.has_prev"); err != nil {
		return st, err
	}
	if st.Stopped, err = d.boolean("mover.stopped"); err != nil {
		return st, err
	}
	if st.RNG, err = d.rng("mover.rng"); err != nil {
		return st, err
	}
	if st.HasTurn, err = d.boolean("mover.has_turn"); err != nil {
		return st, err
	}
	st.TurnEventAt = sim.Time(readI("mover.turn_event_at"))
	st.TurnEventSeq = uint64(readI("mover.turn_event_seq"))
	return st, err
}

// --- neighbor table ---

func encodeTable(e *encoder, st *neighbor.TableState) {
	e.count(len(st.Entries))
	for i := range st.Entries {
		en := &st.Entries[i]
		e.node(en.ID)
		e.i64(int64(en.LastHeard))
		e.i64(int64(en.Interval))
		e.i64(int64(en.Deadline))
		e.u64(en.ExpirySeq)
		encodeNodes(e, en.TwoHop)
	}
	e.count(len(st.Changes))
	for _, t := range st.Changes {
		e.i64(int64(t))
	}
}

func decodeTable(d *decoder) (neighbor.TableState, error) {
	var st neighbor.TableState
	n, err := d.count(40, "table.entries")
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		var en neighbor.EntryState
		if en.ID, err = d.node("table.entry.id"); err != nil {
			return st, err
		}
		lh, err := d.i64("table.entry.last_heard")
		if err != nil {
			return st, err
		}
		en.LastHeard = sim.Time(lh)
		iv, err := d.i64("table.entry.interval")
		if err != nil {
			return st, err
		}
		en.Interval = sim.Duration(iv)
		dl, err := d.i64("table.entry.deadline")
		if err != nil {
			return st, err
		}
		en.Deadline = sim.Time(dl)
		if en.ExpirySeq, err = d.u64("table.entry.expiry_seq"); err != nil {
			return st, err
		}
		if en.TwoHop, err = d.nodes("table.entry.two_hop"); err != nil {
			return st, err
		}
		st.Entries = append(st.Entries, en)
	}
	cn, err := d.count(8, "table.changes")
	if err != nil {
		return st, err
	}
	for i := 0; i < cn; i++ {
		t, err := d.i64("table.change")
		if err != nil {
			return st, err
		}
		st.Changes = append(st.Changes, sim.Time(t))
	}
	return st, nil
}

// --- judge ---

func encodeJudge(e *encoder, st *scheme.JudgeState) {
	e.u8(uint8(st.Kind))
	e.i64(int64(st.C))
	e.i64(int64(st.Threshold))
	e.f64(st.Own.X)
	e.f64(st.Own.Y)
	e.f64(st.DThreshold)
	e.f64(st.MinDist)
	e.f64(st.Radius)
	e.f64(st.AThreshold)
	e.count(len(st.Senders))
	for _, p := range st.Senders {
		e.f64(p.X)
		e.f64(p.Y)
	}
	e.boolean(st.Rebroadcast)
	encodeNodes(e, st.Pending)
}

func decodeJudge(d *decoder) (scheme.JudgeState, error) {
	var st scheme.JudgeState
	kind, err := d.u8("judge.kind")
	if err != nil {
		return st, err
	}
	st.Kind = scheme.JudgeKind(kind)
	readI := func(field string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = d.i64(field)
		return v
	}
	readF := func(field string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = d.f64(field)
		return v
	}
	st.C = int(readI("judge.c"))
	st.Threshold = int(readI("judge.threshold"))
	st.Own.X = readF("judge.own_x")
	st.Own.Y = readF("judge.own_y")
	st.DThreshold = readF("judge.d_threshold")
	st.MinDist = readF("judge.min_dist")
	st.Radius = readF("judge.radius")
	st.AThreshold = readF("judge.a_threshold")
	if err != nil {
		return st, err
	}
	n, err := d.count(16, "judge.senders")
	if err != nil {
		return st, err
	}
	for i := 0; i < n; i++ {
		x, err := d.f64("judge.sender_x")
		if err != nil {
			return st, err
		}
		y, err := d.f64("judge.sender_y")
		if err != nil {
			return st, err
		}
		st.Senders = append(st.Senders, geom.Point{X: x, Y: y})
	}
	if st.Rebroadcast, err = d.boolean("judge.rebroadcast"); err != nil {
		return st, err
	}
	st.Pending, err = d.nodes("judge.pending")
	return st, err
}

// --- frames, observers ---

func encodeFrame(e *encoder, f *Frame) {
	e.u8(f.Kind)
	e.node(f.Sender)
	e.node(f.Dest)
	e.i64(f.Bytes)
	e.bid(f.Broadcast)
	e.f64(f.SenderPos[0])
	e.f64(f.SenderPos[1])
	encodeNodes(e, f.Neighbors)
	e.i64(int64(f.HelloInterval))
	encodeBids(e, f.Recent)
	e.u8(f.PayloadKind)
	e.bid(f.PayloadID)
}

func decodeFrame(d *decoder) (Frame, error) {
	var f Frame
	var err error
	if f.Kind, err = d.u8("frame.kind"); err != nil {
		return f, err
	}
	if f.Sender, err = d.node("frame.sender"); err != nil {
		return f, err
	}
	if f.Dest, err = d.node("frame.dest"); err != nil {
		return f, err
	}
	if f.Bytes, err = d.i64("frame.bytes"); err != nil {
		return f, err
	}
	if f.Broadcast, err = d.bid("frame.broadcast"); err != nil {
		return f, err
	}
	if f.SenderPos[0], err = d.f64("frame.pos_x"); err != nil {
		return f, err
	}
	if f.SenderPos[1], err = d.f64("frame.pos_y"); err != nil {
		return f, err
	}
	if f.Neighbors, err = d.nodes("frame.neighbors"); err != nil {
		return f, err
	}
	iv, err := d.i64("frame.hello_interval")
	if err != nil {
		return f, err
	}
	f.HelloInterval = sim.Duration(iv)
	if f.Recent, err = d.bids("frame.recent"); err != nil {
		return f, err
	}
	if f.PayloadKind, err = d.u8("frame.payload_kind"); err != nil {
		return f, err
	}
	f.PayloadID, err = d.bid("frame.payload_id")
	return f, err
}

func encodeObserver(e *encoder, o *Observer) {
	e.u8(o.Kind)
	e.u32(uint32(o.Host))
	e.bid(o.Bid)
	e.u32(o.FrameRef)
}

func decodeObserver(d *decoder) (Observer, error) {
	var o Observer
	var err error
	if o.Kind, err = d.u8("observer.kind"); err != nil {
		return o, err
	}
	host, err := d.u32("observer.host")
	if err != nil {
		return o, err
	}
	o.Host = int32(host)
	if o.Bid, err = d.bid("observer.bid"); err != nil {
		return o, err
	}
	o.FrameRef, err = d.u32("observer.frame_ref")
	return o, err
}

// --- host ---

func encodeHost(e *encoder, h *Host) {
	encodeBids(e, h.Dedup)
	e.rng(h.RNG)
	encodeMover(e, &h.Mover)
	encodeTable(e, &h.Table)
	encodeMAC(e, &h.MAC)
	e.count(len(h.Pending))
	for i := range h.Pending {
		p := &h.Pending[i]
		e.bid(p.Bid)
		encodeJudge(e, &p.Judge)
		e.boolean(p.Started)
		e.boolean(p.HasAssess)
		e.i64(int64(p.AssessAt))
		e.u64(p.AssessSeq)
		e.u32(p.FrameRef)
	}
	e.i64(h.PrFree)
	e.count(len(h.HelloFly))
	for _, ref := range h.HelloFly {
		e.u32(ref)
	}
	e.boolean(h.HasHelloTimer)
	e.i64(int64(h.HelloAt))
	e.u64(h.HelloSeq)
	e.count(len(h.Recent))
	for _, r := range h.Recent {
		e.bid(r.ID)
		e.i64(int64(r.Heard))
	}
	encodeBids(e, h.Nacked)
}

func decodeHost(d *decoder) (Host, error) {
	var h Host
	var err error
	if h.Dedup, err = d.bids("host.dedup"); err != nil {
		return h, err
	}
	if h.RNG, err = d.rng("host.rng"); err != nil {
		return h, err
	}
	if h.Mover, err = decodeMover(d); err != nil {
		return h, err
	}
	if h.Table, err = decodeTable(d); err != nil {
		return h, err
	}
	if h.MAC, err = decodeMAC(d); err != nil {
		return h, err
	}
	n, err := d.count(80, "host.pending")
	if err != nil {
		return h, err
	}
	for i := 0; i < n; i++ {
		var p PendingDecision
		if p.Bid, err = d.bid("host.pending.bid"); err != nil {
			return h, err
		}
		if p.Judge, err = decodeJudge(d); err != nil {
			return h, err
		}
		if p.Started, err = d.boolean("host.pending.started"); err != nil {
			return h, err
		}
		if p.HasAssess, err = d.boolean("host.pending.has_assess"); err != nil {
			return h, err
		}
		at, err := d.i64("host.pending.assess_at")
		if err != nil {
			return h, err
		}
		p.AssessAt = sim.Time(at)
		if p.AssessSeq, err = d.u64("host.pending.assess_seq"); err != nil {
			return h, err
		}
		if p.FrameRef, err = d.u32("host.pending.frame_ref"); err != nil {
			return h, err
		}
		h.Pending = append(h.Pending, p)
	}
	if h.PrFree, err = d.i64("host.pr_free"); err != nil {
		return h, err
	}
	fn, err := d.count(4, "host.hello_fly")
	if err != nil {
		return h, err
	}
	for i := 0; i < fn; i++ {
		ref, err := d.u32("host.hello_fly.ref")
		if err != nil {
			return h, err
		}
		h.HelloFly = append(h.HelloFly, ref)
	}
	if h.HasHelloTimer, err = d.boolean("host.has_hello_timer"); err != nil {
		return h, err
	}
	at, err := d.i64("host.hello_at")
	if err != nil {
		return h, err
	}
	h.HelloAt = sim.Time(at)
	if h.HelloSeq, err = d.u64("host.hello_seq"); err != nil {
		return h, err
	}
	rn, err := d.count(16, "host.recent")
	if err != nil {
		return h, err
	}
	for i := 0; i < rn; i++ {
		var r RecentBroadcast
		if r.ID, err = d.bid("host.recent.id"); err != nil {
			return h, err
		}
		heard, err := d.i64("host.recent.heard")
		if err != nil {
			return h, err
		}
		r.Heard = sim.Time(heard)
		h.Recent = append(h.Recent, r)
	}
	h.Nacked, err = d.bids("host.nacked")
	return h, err
}

// --- network ---

func encodeNetwork(e *encoder, n *Network) {
	e.u32(n.Seq)
	e.i64(int64(n.EndTime))
	e.i64(n.HelloSent)
	e.i64(n.RepairsRequested)
	e.i64(n.RepairsDelivered)
	e.count(len(n.Records))
	for i := range n.Records {
		r := &n.Records[i]
		e.bid(r.ID)
		e.i64(int64(r.Start))
		e.i64(r.Reachable)
		e.i64(r.Received)
		e.i64(r.Transmitted)
		e.i64(int64(r.LastActivity))
		e.u32(uint32(r.Open))
	}
	e.u32(n.RecBase)
	e.count(len(n.Stream.RE))
	for _, v := range n.Stream.RE {
		e.f64(v)
	}
	e.count(len(n.Stream.SRB))
	for _, v := range n.Stream.SRB {
		e.f64(v)
	}
	e.count(len(n.Stream.Lat))
	for _, v := range n.Stream.Lat {
		e.i64(int64(v))
	}
	e.i64(n.SetPool)
	e.i64(n.FramePool)
	e.i64(n.HelloPool)
	e.count(len(n.Originations))
	for _, o := range n.Originations {
		e.u32(uint32(o.Src))
		e.i64(int64(o.At))
		e.u64(o.Seq)
	}
}

func decodeNetwork(d *decoder) (Network, error) {
	var n Network
	var err error
	if n.Seq, err = d.u32("net.seq"); err != nil {
		return n, err
	}
	readI := func(field string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = d.i64(field)
		return v
	}
	n.EndTime = sim.Time(readI("net.end_time"))
	n.HelloSent = readI("net.hello_sent")
	n.RepairsRequested = readI("net.repairs_requested")
	n.RepairsDelivered = readI("net.repairs_delivered")
	if err != nil {
		return n, err
	}
	rn, err := d.count(52, "net.records")
	if err != nil {
		return n, err
	}
	for i := 0; i < rn; i++ {
		var r Record
		if r.ID, err = d.bid("net.record.id"); err != nil {
			return n, err
		}
		r.Start = sim.Time(readI("net.record.start"))
		r.Reachable = readI("net.record.reachable")
		r.Received = readI("net.record.received")
		r.Transmitted = readI("net.record.transmitted")
		r.LastActivity = sim.Time(readI("net.record.last_activity"))
		if err != nil {
			return n, err
		}
		open, err := d.u32("net.record.open")
		if err != nil {
			return n, err
		}
		r.Open = int32(open)
		n.Records = append(n.Records, r)
	}
	if n.RecBase, err = d.u32("net.rec_base"); err != nil {
		return n, err
	}
	cn, err := d.count(8, "net.stream.re")
	if err != nil {
		return n, err
	}
	for i := 0; i < cn; i++ {
		v, err := d.f64("net.stream.re")
		if err != nil {
			return n, err
		}
		n.Stream.RE = append(n.Stream.RE, v)
	}
	cn, err = d.count(8, "net.stream.srb")
	if err != nil {
		return n, err
	}
	for i := 0; i < cn; i++ {
		v, err := d.f64("net.stream.srb")
		if err != nil {
			return n, err
		}
		n.Stream.SRB = append(n.Stream.SRB, v)
	}
	cn, err = d.count(8, "net.stream.lat")
	if err != nil {
		return n, err
	}
	for i := 0; i < cn; i++ {
		v, err := d.i64("net.stream.lat")
		if err != nil {
			return n, err
		}
		n.Stream.Lat = append(n.Stream.Lat, sim.Duration(v))
	}
	n.SetPool = readI("net.set_pool")
	n.FramePool = readI("net.frame_pool")
	n.HelloPool = readI("net.hello_pool")
	if err != nil {
		return n, err
	}
	on, err := d.count(20, "net.originations")
	if err != nil {
		return n, err
	}
	for i := 0; i < on; i++ {
		var o Origination
		src, err := d.u32("net.origination.src")
		if err != nil {
			return n, err
		}
		o.Src = int32(src)
		at, err := d.i64("net.origination.at")
		if err != nil {
			return n, err
		}
		o.At = sim.Time(at)
		if o.Seq, err = d.u64("net.origination.seq"); err != nil {
			return n, err
		}
		n.Originations = append(n.Originations, o)
	}
	return n, nil
}

// --- document ---

// Append appends c's wire encoding to dst and returns the extended
// slice.
func Append(dst []byte, c *Checkpoint) []byte {
	e := &encoder{buf: dst}
	e.buf = append(e.buf, Magic...)
	e.u8(CodecVersion)
	e.str(c.Digest)
	encodeSched(e, &c.Sched)
	encodeChannel(e, &c.Channel)
	encodeNetwork(e, &c.Net)
	e.count(len(c.Frames))
	for i := range c.Frames {
		encodeFrame(e, &c.Frames[i])
	}
	e.count(len(c.Observers))
	for i := range c.Observers {
		encodeObserver(e, &c.Observers[i])
	}
	e.count(len(c.Hosts))
	for i := range c.Hosts {
		encodeHost(e, &c.Hosts[i])
	}
	return e.buf
}

// Encode returns c's wire encoding.
func Encode(c *Checkpoint) []byte { return Append(nil, c) }

// Decode parses one encoded checkpoint. The whole input must be
// consumed: trailing bytes are an error, so a corrupted length prefix
// cannot silently drop state.
func Decode(data []byte) (*Checkpoint, error) {
	d := &decoder{buf: data}
	magic, err := d.take(len(Magic), "magic")
	if err != nil {
		return nil, err
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", magic)
	}
	ver, err := d.u8("version")
	if err != nil {
		return nil, err
	}
	if ver != CodecVersion {
		return nil, fmt.Errorf("snapshot: unknown codec version %d", ver)
	}
	c := &Checkpoint{}
	if c.Digest, err = d.str("digest"); err != nil {
		return nil, err
	}
	if c.Sched, err = decodeSched(d); err != nil {
		return nil, err
	}
	if c.Channel, err = decodeChannel(d); err != nil {
		return nil, err
	}
	if c.Net, err = decodeNetwork(d); err != nil {
		return nil, err
	}
	fn, err := d.count(66, "frames")
	if err != nil {
		return nil, err
	}
	for i := 0; i < fn; i++ {
		f, err := decodeFrame(d)
		if err != nil {
			return nil, err
		}
		c.Frames = append(c.Frames, f)
	}
	on, err := d.count(17, "observers")
	if err != nil {
		return nil, err
	}
	for i := 0; i < on; i++ {
		o, err := decodeObserver(d)
		if err != nil {
			return nil, err
		}
		c.Observers = append(c.Observers, o)
	}
	hn, err := d.count(120, "hosts")
	if err != nil {
		return nil, err
	}
	for i := 0; i < hn; i++ {
		h, err := decodeHost(d)
		if err != nil {
			return nil, err
		}
		c.Hosts = append(c.Hosts, h)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after checkpoint", len(data)-d.off)
	}
	return c, nil
}

// Write writes c's wire encoding to w.
func Write(w io.Writer, c *Checkpoint) error {
	_, err := w.Write(Encode(c))
	return err
}

// Read consumes all of r and decodes one checkpoint from it.
func Read(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
