// Command gencorpus regenerates the checked-in fuzz corpus for
// FuzzSnapshotDecode (internal/snapshot/testdata/fuzz/FuzzSnapshotDecode).
// The anchor seed is a real checkpoint from a small deterministic run,
// so the corpus exercises every section of the wire format; the other
// seeds are its classic corruptions (truncation, trailing byte, unknown
// version). Run it from the repository root after changing the codec:
//
//	go run ./internal/snapshot/gencorpus
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/manet"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func main() {
	net, err := manet.New(manet.Config{
		Scheme: scheme.AdaptiveCounter{}, Hosts: 12, MapUnits: 2, Requests: 3,
		Repair: true, Seed: 5, Warmup: sim.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	captured := errors.New("captured")
	net.CheckpointEvery = 2 * sim.Second
	net.CheckpointHook = func(sim.Time) error {
		if err := net.Checkpoint(&buf); err != nil {
			return err
		}
		return captured
	}
	if _, err := net.RunContext(context.Background()); !errors.Is(err, captured) {
		log.Fatalf("run ended without hitting a checkpoint window: %v", err)
	}
	real := buf.Bytes()

	dir := filepath.Join("internal", "snapshot", "testdata", "fuzz", "FuzzSnapshotDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string][]byte{
		"seed-checkpoint":  real,
		"seed-truncated":   real[:len(real)/2],
		"seed-trailing":    append(append([]byte(nil), real...), 0),
		"seed-bad-version": append([]byte("STRMSNAP"), 0x7f),
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d bytes\n", name, len(data))
	}
}
