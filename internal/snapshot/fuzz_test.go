package snapshot_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/manet"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// realCheckpoint produces checkpoint bytes from an actual small
// simulation — deterministic, so fuzz seeds derived from it are stable.
func realCheckpoint(tb testing.TB) []byte {
	tb.Helper()
	net, err := manet.New(manet.Config{
		Scheme: scheme.AdaptiveCounter{}, Hosts: 12, MapUnits: 2, Requests: 3,
		Repair: true, Seed: 5, Warmup: sim.Second,
	})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	captured := errors.New("captured")
	net.CheckpointEvery = 2 * sim.Second
	net.CheckpointHook = func(sim.Time) error {
		if err := net.Checkpoint(&buf); err != nil {
			return err
		}
		return captured
	}
	if _, err := net.RunContext(context.Background()); !errors.Is(err, captured) {
		tb.Fatalf("run ended without hitting a checkpoint window: %v", err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode drives arbitrary bytes through the checkpoint
// decoder. The contract mirrors the packet codec's: Decode never
// panics, an error never comes with a partial document, and any input
// it accepts is canonical — re-encoding the decoded document reproduces
// the input byte for byte.
func FuzzSnapshotDecode(f *testing.F) {
	real := realCheckpoint(f)
	f.Add(real)
	f.Add(real[:len(real)/2])
	f.Add(append(append([]byte(nil), real...), 0))
	f.Add([]byte{})
	f.Add([]byte(snapshot.Magic))
	f.Add([]byte(snapshot.Magic + "\x01"))
	f.Add([]byte(snapshot.Magic + "\x02"))
	mut := append([]byte(nil), real...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := snapshot.Decode(data)
		if err != nil {
			if ck != nil {
				t.Fatal("Decode returned a document alongside an error")
			}
			return
		}
		if ck == nil {
			t.Fatal("Decode returned no document and no error")
		}
		if again := snapshot.Encode(ck); !bytes.Equal(again, data) {
			t.Fatalf("accepted input is not canonical:\nin:  %x\nout: %x", data, again)
		}
	})
}
