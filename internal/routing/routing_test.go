package routing

import (
	"testing"

	"repro/internal/scheme"
	"repro/internal/sim"
)

func TestDiscoveryOnDenseStaticNetwork(t *testing.T) {
	cfg := Config{
		Hosts:       30,
		MapUnits:    1, // everyone in range: 1-hop routes
		Static:      true,
		Scheme:      scheme.Flooding{},
		Discoveries: 20,
		Seed:        1,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := n.Run()
	if r.Discoveries != 20 {
		t.Fatalf("discoveries = %d", r.Discoveries)
	}
	if r.SuccessRate() < 0.9 {
		t.Errorf("success rate %v in a single cell, want ~1", r.SuccessRate())
	}
	if r.MeanRouteHops < 1 || r.MeanRouteHops > 1.5 {
		t.Errorf("mean hops = %v in a single cell, want ~1", r.MeanRouteHops)
	}
	if r.MeanDiscoveryLatency <= 0 {
		t.Error("zero discovery latency")
	}
}

func TestDiscoveryFindsMultihopRoutes(t *testing.T) {
	cfg := Config{
		Hosts:       80,
		MapUnits:    5,
		Static:      true,
		Scheme:      scheme.Flooding{},
		Discoveries: 30,
		Seed:        3,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := n.Run()
	if r.SuccessRate() < 0.6 {
		t.Errorf("multihop success rate = %v", r.SuccessRate())
	}
	if r.MeanRouteHops <= 1.2 {
		t.Errorf("mean hops = %v on a 5x5 map, expected multihop routes", r.MeanRouteHops)
	}
}

func TestSuppressionReducesRequestCost(t *testing.T) {
	base := Config{
		Hosts:       60,
		MapUnits:    3,
		Static:      true,
		Discoveries: 20,
		Seed:        7,
	}
	fl := base
	fl.Scheme = scheme.Flooding{}
	nf, err := New(fl)
	if err != nil {
		t.Fatal(err)
	}
	rf := nf.Run()

	ac := base
	ac.Scheme = scheme.AdaptiveCounter{}
	na, err := New(ac)
	if err != nil {
		t.Fatal(err)
	}
	ra := na.Run()

	if ra.RequestsPerDiscovery() >= rf.RequestsPerDiscovery() {
		t.Errorf("AC requests/discovery %v not below flooding's %v",
			ra.RequestsPerDiscovery(), rf.RequestsPerDiscovery())
	}
	if ra.SuccessRate() < rf.SuccessRate()-0.2 {
		t.Errorf("AC success %v collapsed vs flooding %v", ra.SuccessRate(), rf.SuccessRate())
	}
}

func TestReverseRoutesInstalled(t *testing.T) {
	cfg := Config{
		Hosts:       20,
		MapUnits:    1,
		Static:      true,
		Scheme:      scheme.Flooding{},
		Discoveries: 5,
		Seed:        9,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := n.Run()
	if r.Succeeded == 0 {
		t.Fatal("no discovery succeeded")
	}
	// After a successful discovery, at least one origin holds a live
	// route to its target... routes may have expired by run end, so just
	// assert the accounting is consistent instead.
	if r.TargetReached < r.Succeeded {
		t.Errorf("succeeded %d > target-reached %d", r.Succeeded, r.TargetReached)
	}
}

func TestRouteExpiry(t *testing.T) {
	cfg := Config{
		Hosts:         10,
		MapUnits:      1,
		Static:        true,
		Scheme:        scheme.Flooding{},
		Discoveries:   1,
		RouteLifetime: 1 * sim.Second,
		Drain:         5 * sim.Second,
		Seed:          11,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := n.Run()
	if r.Succeeded != 1 {
		t.Skipf("single discovery failed (seed-dependent); skipping expiry check")
	}
	// All routes were installed at least 5 s (the drain) before the run
	// ended, with a 1 s lifetime: nothing should remain.
	for a := 0; a < cfg.Hosts; a++ {
		for b := 0; b < cfg.Hosts; b++ {
			if a == b {
				continue
			}
			if _, ok := n.RouteBetween(a, b); ok {
				t.Fatalf("route %d->%d survived its lifetime", a, b)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		n, err := New(Config{
			Hosts: 25, MapUnits: 3, Scheme: scheme.AdaptiveCounter{},
			Discoveries: 10, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("routing runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Hosts: 1}); err == nil {
		t.Error("single-host network accepted")
	}
	cfg := Config{Hosts: 5, Scheme: scheme.NeighborCoverage{}}
	// Defaults must auto-enable HELLO for a HELLO-dependent scheme.
	if got := cfg.WithDefaults(); got.HelloInterval <= 0 {
		t.Error("defaults left HELLO off for NC")
	}
}

func TestRunTwicePanics(t *testing.T) {
	n, err := New(Config{Hosts: 3, MapUnits: 1, Discoveries: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	n.Run()
}

func TestResultHelpers(t *testing.T) {
	var zero Result
	if zero.SuccessRate() != 0 || zero.RequestsPerDiscovery() != 0 {
		t.Error("zero-result helpers must not divide by zero")
	}
	r := Result{Discoveries: 4, Succeeded: 3, RequestTransmissions: 40}
	if r.SuccessRate() != 0.75 {
		t.Errorf("success rate = %v", r.SuccessRate())
	}
	if r.RequestsPerDiscovery() != 10 {
		t.Errorf("req/discovery = %v", r.RequestsPerDiscovery())
	}
}

func TestRequestIDString(t *testing.T) {
	if (RequestID{Origin: 1, Seq: 2}).String() == "" {
		t.Error("empty RequestID string")
	}
}

func TestExpandingRingFindsNearTargetCheaply(t *testing.T) {
	base := Config{
		Hosts:       80,
		MapUnits:    5,
		Static:      true,
		Scheme:      scheme.Flooding{},
		Discoveries: 20,
		Seed:        23,
	}
	full := base
	nf, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	rf := nf.Run()

	ring := base
	ring.RingTTLs = []int{2, 0}
	ring.RingTimeout = 300 * sim.Millisecond
	nr, err := New(ring)
	if err != nil {
		t.Fatal(err)
	}
	rr := nr.Run()

	if rr.SuccessRate() < rf.SuccessRate()-0.15 {
		t.Errorf("expanding ring success %v collapsed vs full flood %v",
			rr.SuccessRate(), rf.SuccessRate())
	}
	if rr.RequestTransmissions >= rf.RequestTransmissions {
		t.Errorf("expanding ring cost %d RREQs >= full flood's %d",
			rr.RequestTransmissions, rf.RequestTransmissions)
	}
	if rr.RingEscalations == 0 {
		t.Error("no escalations recorded; far targets should need the wide ring")
	}
}

func TestTTLBoundsFloodRadius(t *testing.T) {
	// A long chain: with TTL 2 the request must not travel beyond 2 hops,
	// so a far target is never reached without escalation.
	cfg := Config{
		Hosts:       8,
		MapUnits:    9,
		Static:      true,
		Scheme:      scheme.Flooding{},
		Discoveries: 0, // we originate manually below via RingTTLs config
		Seed:        29,
	}
	// Instead of manual origination (not exposed), use a 1-discovery run
	// with a single bounded ring and no escalation: success should be
	// rare because targets are random and usually > 2 hops away on a
	// chain. Use many discoveries for signal.
	cfg.Discoveries = 15
	cfg.RingTTLs = []int{2}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Build a chain topology by overriding placement: routing.Config has
	// no Placement, so approximate with a sparse map instead; assert only
	// that bounded TTL yields strictly fewer request transmissions than
	// the 15 discoveries could produce unbounded (8 hosts -> at most
	// 15*8 = 120 tx; TTL 2 must stay well below).
	r := n.Run()
	if r.RequestTransmissions >= 15*8/2 {
		t.Errorf("TTL-2 flood produced %d RREQ transmissions; bound not effective", r.RequestTransmissions)
	}
}

func TestDataDeliveryOnStaticRoutes(t *testing.T) {
	cfg := Config{
		Hosts:        60,
		MapUnits:     3,
		Static:       true,
		Scheme:       scheme.Flooding{},
		Discoveries:  10,
		DataPerRoute: 5,
		Seed:         51,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := n.Run()
	if r.DataSent == 0 {
		t.Fatal("no data packets originated")
	}
	if r.DataSent != r.Succeeded*5 {
		t.Errorf("data sent = %d, want 5 per successful discovery (%d)",
			r.DataSent, r.Succeeded*5)
	}
	// Static topology with ARQ: virtually everything arrives.
	ratio := float64(r.DataDelivered) / float64(r.DataSent)
	if ratio < 0.95 {
		t.Errorf("static delivery ratio = %v (%d/%d), want ~1",
			ratio, r.DataDelivered, r.DataSent)
	}
	if r.PathBreaks > r.DataSent/10 {
		t.Errorf("static network reported %d path breaks", r.PathBreaks)
	}
}

func TestMobilityBreaksRoutes(t *testing.T) {
	// Fast movers + long data trains: links along multihop routes break
	// mid-flow and the maintenance plane must notice.
	cfg := Config{
		Hosts:        60,
		MapUnits:     7,
		MaxSpeedKMH:  120,
		Scheme:       scheme.Flooding{},
		Discoveries:  15,
		DataPerRoute: 20,
		DataInterval: 500 * sim.Millisecond,
		Drain:        12 * sim.Second,
		Seed:         53,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := n.Run()
	if r.DataSent == 0 || r.Succeeded == 0 {
		t.Skip("no flows established under this seed")
	}
	if r.PathBreaks == 0 {
		t.Error("fast mobility with long flows produced zero path breaks")
	}
	if r.DataDelivered >= r.DataSent {
		t.Error("every packet delivered despite breaking routes — maintenance not exercised")
	}
}
