package routing

import (
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// routeEntry is one row of a host's route table.
type routeEntry struct {
	nextHop packet.NodeID
	hops    int
	expires sim.Time
}

// rhost is one routing-capable mobile node. It reuses the broadcast
// substrate (MAC, mobility, HELLO tables) and runs the RREQ/RREP state
// machines on top.
type rhost struct {
	id    packet.NodeID
	net   *Network
	mac   *mac.MAC
	mover mobility.Mover
	table *neighbor.Table
	rng   *sim.RNG

	routes  map[packet.NodeID]routeEntry
	seen    map[RequestID]bool
	pending map[RequestID]*pendingForward
}

// pendingForward mirrors the broadcast layer's per-packet waiting state
// for an RREQ rebroadcast.
type pendingForward struct {
	judge    scheme.Judge
	assess   *sim.Event
	mp       *mac.Pending
	started  bool
	resolved bool
}

var (
	_ scheme.HostView      = (*rhost)(nil)
	_ scheme.NodeSetSource = (*rhost)(nil)
)

// scheme.HostView implementation (identical role to manet.host).

func (h *rhost) ID() packet.NodeID          { return h.id }
func (h *rhost) Position() geom.Point       { return h.mover.Position() }
func (h *rhost) Radius() float64            { return h.net.ch.Radius() }
func (h *rhost) NeighborCount() int         { return h.table.Count() }
func (h *rhost) Neighbors() []packet.NodeID { return h.table.Neighbors() }
func (h *rhost) TwoHop(n packet.NodeID) []packet.NodeID {
	return h.table.TwoHop(n)
}

// scheme.NodeSetSource implementation (identical role to manet.host).

func (h *rhost) NeighborNodeSet() *nodeset.Set { return h.table.NeighborSet() }
func (h *rhost) AcquireNodeSet() *nodeset.Set  { return h.net.acquireSet() }
func (h *rhost) ReleaseNodeSet(s *nodeset.Set) { h.net.releaseSet(s) }

// ReceiveFrame implements mac.FrameReceiver: dispatch intact receptions.
func (h *rhost) ReceiveFrame(f *packet.Frame) {
	switch f.Kind {
	case packet.KindHello:
		h.table.OnHello(f.Sender, f.Neighbors, f.HelloInterval)
	case packet.KindData:
		switch msg := f.Payload.(type) {
		case RouteRequest:
			h.onRequest(f, msg)
		case RouteReply:
			if f.Dest == h.id {
				h.onReply(f, msg)
			}
		default:
			h.onDataFrame(f)
		}
		_ = f
	}
}

// recordRoute installs (or improves) a route learned from a received
// frame: the frame's sender is one hop away and leads to dst in hops.
func (h *rhost) recordRoute(dst, nextHop packet.NodeID, hops int) {
	if dst == h.id {
		return
	}
	now := h.net.sched.Now()
	cur, ok := h.routes[dst]
	if ok && cur.expires > now && cur.hops <= hops {
		return
	}
	h.routes[dst] = routeEntry{
		nextHop: nextHop,
		hops:    hops,
		expires: now.Add(h.net.cfg.RouteLifetime),
	}
}

// route returns the live route entry for dst, if any.
func (h *rhost) route(dst packet.NodeID) (routeEntry, bool) {
	e, ok := h.routes[dst]
	if !ok || e.expires <= h.net.sched.Now() {
		return routeEntry{}, false
	}
	return e, true
}

// onRequest handles an RREQ reception: install the reverse route, answer
// if we are the target, otherwise run the suppression scheme and maybe
// forward.
func (h *rhost) onRequest(f *packet.Frame, req RouteRequest) {
	// Reverse route to the originator through whoever relayed to us.
	h.recordRoute(req.ID.Origin, f.Sender, req.HopCount+1)

	rx := scheme.Reception{From: f.Sender, SenderPos: f.SenderPos, U: h.rng.Float64()}
	if h.seen[req.ID] {
		// Duplicate: feed the pending judge, as in the broadcast layer.
		p := h.pending[req.ID]
		if p == nil || p.started || p.resolved {
			return
		}
		if p.judge.OnDuplicate(rx) == scheme.Inhibit {
			h.cancelForward(req.ID, p)
		}
		return
	}
	h.seen[req.ID] = true

	if req.ID.Origin == h.id {
		return // our own request echoed back
	}
	if req.Target == h.id {
		h.net.noteRequestReachedTarget(req.ID)
		h.sendReply(req)
		return
	}

	if req.TTL > 0 && req.HopCount+1 >= req.TTL {
		return // ring boundary: record routes and reply, but do not forward
	}
	judge := h.net.cfg.Scheme.NewJudge(h, rx)
	if judge.Initial() == scheme.Inhibit {
		scheme.ReleaseJudge(judge)
		return
	}
	p := &pendingForward{judge: judge}
	h.pending[req.ID] = p
	slots := h.rng.IntN(h.net.cfg.AssessmentSlots + 1)
	delay := sim.Duration(slots) * h.net.ch.Timing().SlotTime
	p.assess = h.net.sched.After(delay, func() { h.forwardRequest(req, p) })
}

// forwardRequest submits the rebroadcast of an RREQ after the assessment
// delay.
func (h *rhost) forwardRequest(req RouteRequest, p *pendingForward) {
	p.assess = nil
	if p.resolved {
		return
	}
	fwd := req
	fwd.HopCount++
	frame := packet.NewData(h.id, packet.DestBroadcast, RequestBytes, fwd, h.Position())
	p.mp = h.mac.Enqueue(frame, mac.TxFuncs{
		Start: func() {
			p.started = true
			h.net.noteRequestForwarded()
		},
		Done: func() {
			p.resolved = true
			delete(h.pending, req.ID)
			scheme.ReleaseJudge(p.judge)
		},
	})
}

// cancelForward is the scheme's inhibit action for RREQs.
func (h *rhost) cancelForward(id RequestID, p *pendingForward) {
	p.resolved = true
	if p.assess != nil {
		h.net.sched.Cancel(p.assess)
		p.assess = nil
	}
	if p.mp != nil {
		h.mac.Cancel(p.mp)
	}
	scheme.ReleaseJudge(p.judge)
	delete(h.pending, id)
}

// sendReply originates an RREP back toward the request's originator.
func (h *rhost) sendReply(req RouteRequest) {
	rep := RouteReply{Request: req.ID, Target: h.id, HopCount: 0}
	h.forwardReply(rep)
}

// forwardReply unicasts an RREP one hop along the reverse route.
func (h *rhost) forwardReply(rep RouteReply) {
	e, ok := h.route(rep.Request.Origin)
	if !ok {
		h.net.noteReplyDropped()
		return
	}
	frame := packet.NewData(h.id, e.nextHop, ReplyBytes, rep, h.Position())
	h.mac.Enqueue(frame, nil)
}

// onReply handles an RREP addressed to this host: install the forward
// route, complete the discovery at the originator or relay onward.
func (h *rhost) onReply(f *packet.Frame, rep RouteReply) {
	h.recordRoute(rep.Target, f.Sender, rep.HopCount+1)
	if rep.Request.Origin == h.id {
		h.net.noteDiscoveryComplete(rep.Request, rep.HopCount+1)
		return
	}
	next := rep
	next.HopCount++
	h.forwardReply(next)
}

// scheduleHello runs the same beaconing as the broadcast layer.
func (h *rhost) scheduleHello() {
	if h.net.cfg.HelloInterval <= 0 {
		return
	}
	phase := h.rng.UniformDuration(0, h.net.cfg.HelloInterval)
	h.net.sched.After(phase, h.sendHello)
}

func (h *rhost) sendHello() {
	if h.net.sched.Now() >= h.net.endTime {
		return
	}
	f := packet.NewHello(h.id, h.Position(), h.table.Neighbors(), h.net.cfg.HelloInterval)
	h.mac.Enqueue(f, mac.TxFuncs{Start: func() { h.net.helloSent++ }})
	h.net.sched.After(h.net.cfg.HelloInterval, h.sendHello)
}

// originateDiscovery starts a route discovery from this host with the
// given flood radius (ttl 0 = unlimited).
func (h *rhost) originateDiscovery(id RequestID, target packet.NodeID, ttl int) {
	h.seen[id] = true
	req := RouteRequest{ID: id, Target: target, HopCount: 0, TTL: ttl}
	frame := packet.NewData(h.id, packet.DestBroadcast, RequestBytes, req, h.Position())
	h.mac.Enqueue(frame, mac.TxFuncs{Start: func() { h.net.noteRequestForwarded() }})
}
