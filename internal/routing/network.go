package routing

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/neighbor"
	"repro/internal/nodeset"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Config describes a route-discovery experiment.
type Config struct {
	// Hosts, MapUnits, Radius, MaxSpeedKMH, Static and Seed mirror
	// manet.Config.
	Hosts       int
	MapUnits    int
	UnitMeters  float64
	Radius      float64
	MaxSpeedKMH float64
	Static      bool
	Seed        uint64

	// Scheme is the RREQ suppression scheme (the paper's subject).
	Scheme scheme.Scheme

	// Discoveries is how many route discoveries to attempt.
	Discoveries int
	// ArrivalSpread is the uniform inter-arrival bound between
	// discoveries.
	ArrivalSpread sim.Duration

	// HelloInterval drives neighbor discovery (needed by the adaptive
	// schemes); 0 disables HELLO, which is only valid for schemes that
	// do not require it.
	HelloInterval sim.Duration

	// RouteLifetime is how long an installed route stays valid.
	RouteLifetime sim.Duration

	// RingTTLs, when non-empty, enables expanding-ring search: each
	// discovery first floods with RingTTLs[0] hops, then escalates to
	// the next TTL after RingTimeout without a reply (0 = unlimited,
	// the classical final ring). Empty disables the optimization.
	RingTTLs []int
	// RingTimeout is the per-ring wait before escalating.
	RingTimeout sim.Duration

	// RTSThreshold enables the 802.11 RTS/CTS exchange for unicast data
	// frames (the RREPs) of at least this many bytes; 0 disables it.
	RTSThreshold int

	// DataPerRoute, when positive, pushes that many data packets along
	// every successfully discovered route (route-maintenance workload).
	DataPerRoute int
	// DataInterval spaces the data packets of one flow (0 = 200 ms).
	DataInterval sim.Duration
	// AssessmentSlots is the scheme-level random delay window.
	AssessmentSlots int
	// Warmup and Drain bound the run like in manet.Config.
	Warmup sim.Duration
	Drain  sim.Duration
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Hosts == 0 {
		c.Hosts = 100
	}
	if c.MapUnits == 0 {
		c.MapUnits = 5
	}
	if c.UnitMeters == 0 {
		c.UnitMeters = 500
	}
	if c.Radius == 0 {
		c.Radius = 500
	}
	if c.MaxSpeedKMH == 0 && !c.Static {
		c.MaxSpeedKMH = 10 * float64(c.MapUnits)
	}
	if c.Scheme == nil {
		c.Scheme = scheme.Flooding{}
	}
	if c.Discoveries == 0 {
		c.Discoveries = 50
	}
	if c.ArrivalSpread == 0 {
		c.ArrivalSpread = 2 * sim.Second
	}
	if c.HelloInterval == 0 && c.Scheme.NeedsHello() {
		c.HelloInterval = 1 * sim.Second
	}
	if c.RouteLifetime == 0 {
		c.RouteLifetime = 10 * sim.Second
	}
	if len(c.RingTTLs) > 0 && c.RingTimeout == 0 {
		c.RingTimeout = 250 * sim.Millisecond
	}
	if c.DataPerRoute > 0 && c.DataInterval == 0 {
		c.DataInterval = 200 * sim.Millisecond
	}
	if c.AssessmentSlots == 0 {
		c.AssessmentSlots = 31
	}
	if c.Warmup == 0 && c.HelloInterval > 0 {
		c.Warmup = 5 * sim.Second
	}
	if c.Drain == 0 {
		c.Drain = 2 * sim.Second
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Hosts < 2 {
		return errors.New("routing: need at least two hosts to discover routes")
	}
	if c.Scheme.NeedsHello() && c.HelloInterval <= 0 {
		return fmt.Errorf("routing: scheme %s requires HELLO", c.Scheme.Name())
	}
	return nil
}

// Result summarizes a route-discovery run.
type Result struct {
	Discoveries int
	// TargetReached counts discoveries whose RREQ arrived at the target.
	TargetReached int
	// Succeeded counts discoveries whose RREP made it back to the
	// originator (a usable route was established).
	Succeeded int
	// MeanRouteHops is the average established route length.
	MeanRouteHops float64
	// MeanDiscoveryLatency is the average origination-to-RREP time over
	// successful discoveries.
	MeanDiscoveryLatency sim.Duration
	// RequestTransmissions counts RREQ (re)broadcasts — the storm cost.
	RequestTransmissions int
	// RepliesDropped counts RREPs lost to missing reverse routes.
	RepliesDropped int
	// RingEscalations counts expanding-ring retries (wider TTLs issued).
	RingEscalations int
	// UnicastRetries and UnicastDrops aggregate the MAC-level ARQ
	// activity (RREP retransmissions and abandonments).
	UnicastRetries int
	UnicastDrops   int
	// Data-plane counters (Config.DataPerRoute > 0): packets originated,
	// packets that reached their target, and route breaks detected.
	DataSent      int
	DataDelivered int
	PathBreaks    int
	// HelloSent counts beacons.
	HelloSent int
	// Channel counters.
	Transmissions int
	Collisions    int
}

// SuccessRate is Succeeded / Discoveries.
func (r Result) SuccessRate() float64 {
	if r.Discoveries == 0 {
		return 0
	}
	return float64(r.Succeeded) / float64(r.Discoveries)
}

// RequestsPerDiscovery is the mean RREQ transmissions per attempt.
func (r Result) RequestsPerDiscovery() float64 {
	if r.Discoveries == 0 {
		return 0
	}
	return float64(r.RequestTransmissions) / float64(r.Discoveries)
}

// discovery tracks one attempt's bookkeeping.
type discovery struct {
	id      RequestID
	target  packet.NodeID
	started sim.Time
	reached bool
	done    bool
	hops    int
	latency sim.Duration
}

// Network is one assembled route-discovery simulation.
type Network struct {
	cfg   Config
	sched *sim.Scheduler
	ch    *phy.Channel
	hosts []*rhost

	// setPool recycles judge scratch bitsets, as in manet.Network.
	setPool []*nodeset.Set

	discoveries map[RequestID]*discovery
	// subRequests maps the fresh RequestIDs of wider expanding-ring
	// attempts back to their original discovery.
	subRequests     map[RequestID]RequestID
	order           []RequestID
	seq             uint32
	ringEscalations int

	requestTx      int
	repliesDropped int
	helloSent      int
	dataSent       int
	dataDelivered  int
	pathBreaks     int
	endTime        sim.Time
	ran            bool
}

// New assembles a routing network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched := sim.NewScheduler()
	n := &Network{
		cfg:         cfg,
		sched:       sched,
		ch:          phy.NewChannel(sched, phy.DSSSTiming(), cfg.Radius),
		discoveries: make(map[RequestID]*discovery),
		subRequests: make(map[RequestID]RequestID),
	}
	area := mobility.NewSquareMap(cfg.MapUnits, cfg.UnitMeters)
	root := sim.NewRNG(cfg.Seed)
	moveRNG := root.Fork(1)
	macRNG := root.Fork(2)
	hostRNG := root.Fork(3)

	n.hosts = make([]*rhost, cfg.Hosts)
	for i := range n.hosts {
		h := &rhost{
			id:      packet.NodeID(i),
			net:     n,
			rng:     hostRNG.Fork(uint64(i)),
			routes:  make(map[packet.NodeID]routeEntry),
			seen:    make(map[RequestID]bool),
			pending: make(map[RequestID]*pendingForward),
		}
		if cfg.Static {
			h.mover = mobility.NewStaticRoamer(sched, area, randomPointIn(moveRNG.Fork(uint64(i)), area))
		} else {
			h.mover = mobility.NewRoamer(sched, area,
				mobility.DefaultConfig(cfg.MaxSpeedKMH), moveRNG.Fork(uint64(i)))
		}
		h.table = neighbor.NewDenseTable(h.id, sched, 0, cfg.Hosts)
		h.mac = mac.New(sched, n.ch, h.mover, macRNG.Fork(uint64(i)))
		h.mac.SetAddr(h.id)
		h.mac.SetRTSThreshold(cfg.RTSThreshold)
		h.mac.Receiver = h
		// Handles are never read after their frame completes (the ARQ
		// verdict is consulted inside OnDone, before the MAC recycles the
		// record), so Pending pooling is safe here.
		h.mac.SetPendingPool(true)
		n.hosts[i] = h
	}
	return n, nil
}

// acquireSet hands out an empty scratch bitset, reusing a pooled one.
func (n *Network) acquireSet() *nodeset.Set {
	if l := len(n.setPool); l > 0 {
		s := n.setPool[l-1]
		n.setPool = n.setPool[:l-1]
		s.Clear()
		return s
	}
	return nodeset.New(len(n.hosts))
}

// releaseSet returns a scratch bitset to the pool.
func (n *Network) releaseSet(s *nodeset.Set) {
	n.setPool = append(n.setPool, s)
}

func randomPointIn(rng *sim.RNG, area mobility.Map) geom.Point {
	return geom.Point{
		X: rng.UniformFloat(0, area.Width),
		Y: rng.UniformFloat(0, area.Height),
	}
}

// Run executes the discovery workload.
func (n *Network) Run() Result {
	if n.ran {
		panic("routing: Network.Run called twice")
	}
	n.ran = true

	workload := sim.NewRNG(n.cfg.Seed).Fork(4)
	at := sim.Time(0).Add(n.cfg.Warmup)
	var last sim.Time
	for i := 0; i < n.cfg.Discoveries; i++ {
		at = at.Add(workload.UniformDuration(0, n.cfg.ArrivalSpread))
		last = at
		origin := workload.IntN(len(n.hosts))
		target := workload.IntN(len(n.hosts))
		for target == origin {
			target = workload.IntN(len(n.hosts))
		}
		n.sched.Schedule(at, func() { n.originate(n.hosts[origin], packet.NodeID(target)) })
	}
	n.endTime = last.Add(n.cfg.Drain)
	if n.cfg.Discoveries == 0 {
		n.endTime = sim.Time(0).Add(n.cfg.Warmup + n.cfg.Drain)
	}
	for _, h := range n.hosts {
		h.scheduleHello()
	}
	n.sched.RunUntil(n.endTime)
	return n.result()
}

// originate launches one discovery, with expanding-ring escalation when
// configured.
func (n *Network) originate(origin *rhost, target packet.NodeID) {
	n.seq++
	id := RequestID{Origin: origin.id, Seq: n.seq}
	n.discoveries[id] = &discovery{
		id:      id,
		target:  target,
		started: n.sched.Now(),
	}
	n.order = append(n.order, id)
	if len(n.cfg.RingTTLs) == 0 {
		origin.originateDiscovery(id, target, 0)
		return
	}
	n.issueRing(origin, id, target, 0)
}

// issueRing floods ring number k of a discovery and arms the escalation
// timer for the next ring.
func (n *Network) issueRing(origin *rhost, id RequestID, target packet.NodeID, k int) {
	d := n.discoveries[id]
	if d == nil || d.done {
		return
	}
	if k > 0 {
		n.RingEscalationsHook() // counted below; hook kept trivial
		// Re-flooding the same RequestID requires hosts to treat it as
		// new; issue a fresh sub-request id for the wider ring.
		n.seq++
		id = RequestID{Origin: origin.id, Seq: n.seq}
		n.subRequests[id] = d.id
	}
	origin.originateDiscovery(id, target, n.cfg.RingTTLs[k])
	if k+1 < len(n.cfg.RingTTLs) {
		n.sched.After(n.cfg.RingTimeout, func() {
			n.issueRing(origin, d.id, target, k+1)
		})
	}
}

// RingEscalationsHook increments the escalation counter (separated so
// issueRing reads naturally).
func (n *Network) RingEscalationsHook() { n.ringEscalations++ }

func (n *Network) noteRequestForwarded() { n.requestTx++ }
func (n *Network) noteReplyDropped()     { n.repliesDropped++ }
func (n *Network) noteDataDelivered()    { n.dataDelivered++ }
func (n *Network) notePathBreak()        { n.pathBreaks++ }

// resolve maps a (possibly expanding-ring) request id to its discovery.
func (n *Network) resolve(id RequestID) *discovery {
	if base, ok := n.subRequests[id]; ok {
		id = base
	}
	return n.discoveries[id]
}

func (n *Network) noteRequestReachedTarget(id RequestID) {
	if d := n.resolve(id); d != nil {
		d.reached = true
	}
}

func (n *Network) noteDiscoveryComplete(id RequestID, hops int) {
	d := n.resolve(id)
	if d == nil || d.done {
		return
	}
	d.done = true
	d.hops = hops
	d.latency = n.sched.Now().Sub(d.started)
	if n.cfg.DataPerRoute > 0 {
		n.hosts[d.id.Origin].startFlow(d.id, d.target)
	}
}

// result folds the bookkeeping.
func (n *Network) result() Result {
	r := Result{
		Discoveries:          len(n.order),
		RequestTransmissions: n.requestTx,
		RepliesDropped:       n.repliesDropped,
		RingEscalations:      n.ringEscalations,
		HelloSent:            n.helloSent,
		DataSent:             n.dataSent,
		DataDelivered:        n.dataDelivered,
		PathBreaks:           n.pathBreaks,
	}
	var hops int
	var lat sim.Duration
	for _, id := range n.order {
		d := n.discoveries[id]
		if d.reached {
			r.TargetReached++
		}
		if d.done {
			r.Succeeded++
			hops += d.hops
			lat += d.latency
		}
	}
	if r.Succeeded > 0 {
		r.MeanRouteHops = float64(hops) / float64(r.Succeeded)
		r.MeanDiscoveryLatency = sim.Duration(int64(lat) / int64(r.Succeeded))
	}
	for _, h := range n.hosts {
		ms := h.mac.Stats()
		r.UnicastRetries += ms.Retries
		r.UnicastDrops += ms.Dropped
	}
	st := n.ch.Stats()
	r.Transmissions = st.Transmissions
	r.Collisions = st.Collisions
	return r
}

// RouteBetween reports whether host a currently has a live route to b,
// and its hop count (tests and examples).
func (n *Network) RouteBetween(a, b int) (int, bool) {
	e, ok := n.hosts[a].route(packet.NodeID(b))
	if !ok {
		return 0, false
	}
	return e.hops, true
}
