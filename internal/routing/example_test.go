package routing_test

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/scheme"
)

// Route discovery rides the broadcast schemes: the request floods under
// a suppression scheme, the reply unicasts back with link-layer ARQ.
func Example() {
	n, err := routing.New(routing.Config{
		Hosts:       40,
		MapUnits:    3,
		Static:      true,
		Scheme:      scheme.AdaptiveCounter{},
		Discoveries: 10,
		Seed:        5,
	})
	if err != nil {
		panic(err)
	}
	r := n.Run()
	fmt.Println("discoveries:", r.Discoveries)
	fmt.Println("most succeeded:", r.Succeeded >= 8)
	fmt.Println("multihop routes:", r.MeanRouteHops > 1)
	// Output:
	// discoveries: 10
	// most succeeded: true
	// multihop routes: true
}
