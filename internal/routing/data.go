package routing

import (
	"repro/internal/mac"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file adds data traffic and route maintenance on top of discovery:
// once a route is established, the originator pushes data packets along
// it hop by hop. A relay that cannot forward — its route expired, or the
// MAC exhausted its retransmissions (the link broke) — invalidates the
// route and reports a route error (RERR) back toward the source, which
// counts a path break. This is the AODV maintenance loop reduced to its
// observable effects.

// dataPacket is one payload packet of an established flow.
type dataPacket struct {
	Flow   RequestID // the discovery that created the route
	Seq    int
	Target packet.NodeID
}

// routeError reports a broken route back to the flow's originator.
type routeError struct {
	Flow        RequestID
	Unreachable packet.NodeID
}

// Wire sizes.
const (
	dataBytes = 512
	rerrBytes = 32
)

// startFlow begins pushing data packets after a successful discovery.
func (h *rhost) startFlow(flow RequestID, target packet.NodeID) {
	cfg := h.net.cfg
	if cfg.DataPerRoute <= 0 {
		return
	}
	for k := 1; k <= cfg.DataPerRoute; k++ {
		seq := k
		h.net.sched.After(sim.Duration(k)*cfg.DataInterval, func() {
			h.sendData(flow, target, seq)
		})
	}
}

// sendData originates one data packet toward target.
func (h *rhost) sendData(flow RequestID, target packet.NodeID, seq int) {
	h.net.dataSent++
	h.forwardData(dataPacket{Flow: flow, Seq: seq, Target: target})
}

// forwardData relays a data packet one hop along the current route. The
// MAC's ARQ verdict doubles as link-failure detection: a frame that
// exhausts its retransmissions means the next hop is gone.
func (h *rhost) forwardData(msg dataPacket) {
	e, ok := h.route(msg.Target)
	if !ok {
		h.routeBroken(msg.Flow, msg.Target)
		return
	}
	f := packet.NewData(h.id, e.nextHop, dataBytes, msg, h.Position())
	var p *mac.Pending
	p = h.mac.Enqueue(f, mac.TxFuncs{Done: func() {
		if p.Failed() {
			h.routeBroken(msg.Flow, msg.Target)
		}
	}})
}

// routeBroken invalidates the local route and reports the break.
func (h *rhost) routeBroken(flow RequestID, target packet.NodeID) {
	delete(h.routes, target)
	if flow.Origin == h.id {
		h.net.notePathBreak()
		return
	}
	// Relay: RERR back toward the origin if we still know how.
	e, ok := h.route(flow.Origin)
	if !ok {
		h.net.notePathBreak() // unreportable break still counts
		return
	}
	f := packet.NewData(h.id, e.nextHop, rerrBytes, routeError{Flow: flow, Unreachable: target}, h.Position())
	h.mac.Enqueue(f, nil)
}

// onDataFrame handles the data/maintenance plane.
func (h *rhost) onDataFrame(f *packet.Frame) {
	switch msg := f.Payload.(type) {
	case dataPacket:
		if f.Dest != h.id {
			return
		}
		if msg.Target == h.id {
			h.net.noteDataDelivered()
			return
		}
		h.forwardData(msg)
	case routeError:
		if f.Dest != h.id {
			return
		}
		delete(h.routes, msg.Unreachable)
		if msg.Flow.Origin == h.id {
			h.net.notePathBreak()
			return
		}
		if e, ok := h.route(msg.Flow.Origin); ok {
			fwd := packet.NewData(h.id, e.nextHop, rerrBytes, msg, h.Position())
			h.mac.Enqueue(fwd, nil)
		} else {
			h.net.notePathBreak()
		}
	}
}
