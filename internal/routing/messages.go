// Package routing implements an AODV-style on-demand route discovery
// protocol on top of the broadcast-storm substrate — the application the
// paper's introduction motivates. A route_request (RREQ) is disseminated
// by broadcasting, with the rebroadcast decision delegated to any of the
// paper's suppression schemes; the target answers with a route_reply
// (RREP) unicast hop by hop along the reverse path the request installed.
//
// The protocol is deliberately minimal (no sequence-number freshness, no
// route maintenance/error messages, no expanding-ring search): it exists
// to measure how the broadcast schemes behave as the route-discovery
// transport, which is exactly what the MANET routing papers the paper
// cites use flooding for.
package routing

import (
	"fmt"

	"repro/internal/packet"
)

// RequestID names one route discovery attempt: originator plus a
// per-network sequence number.
type RequestID struct {
	Origin packet.NodeID
	Seq    uint32
}

// String formats the id for traces.
func (r RequestID) String() string {
	return fmt.Sprintf("rreq(%v,#%d)", r.Origin, r.Seq)
}

// RouteRequest is the flooded discovery packet (RREQ).
type RouteRequest struct {
	ID       RequestID
	Target   packet.NodeID
	HopCount int // hops traversed so far
	// TTL bounds the flood radius in hops; 0 means unlimited. The
	// expanding-ring search issues the same request with growing TTLs.
	TTL int
}

// RouteReply is the hop-by-hop unicast answer (RREP).
type RouteReply struct {
	Request  RequestID
	Target   packet.NodeID // the host that was searched for
	HopCount int           // hops from the target so far
}

// Wire sizes, bytes. RREQs use the paper's broadcast packet size so the
// storm dynamics match the broadcast experiments; RREPs are small
// control frames.
const (
	RequestBytes = packet.BroadcastBytes
	ReplyBytes   = 44
)
