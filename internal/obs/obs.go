// Package obs is the run-telemetry subsystem: a low-overhead collector
// of simulated-time series and counters threaded through the DES kernel,
// PHY, MAC, and manet layers, plus a versioned JSONL export consumed by
// the analysis tools.
//
// The paper's results (RE, SRB, latency) are aggregate endpoints;
// explaining *why* a scheme saves rebroadcasts needs visibility into
// contention, collision, and suppression dynamics over simulated time —
// the channel-load analysis the broadcast-reliability literature uses.
// A Collector samples registered counters and gauges on a configurable
// sim-time tick (channel busy fraction, concurrent transmissions,
// collision counts, backoff stalls, pending-event depth, per-scheme
// inhibit/proceed decisions) without perturbing the simulation: sampling
// rides the scheduler's tick hook, schedules no events, and draws no
// random numbers, so an instrumented run produces a byte-identical
// metrics.Summary (asserted by manet's telemetry equivalence test).
//
// A nil *Collector is valid everywhere and disables telemetry at zero
// cost: every method is a nil-receiver no-op, and the instrumented hot
// paths guard their bookkeeping behind a single pointer check (asserted
// by BenchmarkTelemetry).
package obs

import (
	"sort"

	"repro/internal/sim"
)

// DefaultTick is the sampling interval used when a caller asks for
// telemetry without choosing one: fine enough to resolve per-broadcast
// channel-load transients (a broadcast storm plays out over tens of
// milliseconds), coarse enough that a minutes-long run stays small.
const DefaultTick = 100 * sim.Millisecond

// CounterID identifies a registered counter; obtain one with Counter.
// The zero value is safe to Add to only through a nil Collector (every
// instrument point that holds a CounterID also holds the Collector it
// was registered on).
type CounterID int

type counterSlot struct {
	name  string
	value int64
}

type gaugeSlot struct {
	name string
	fn   func() float64
}

// Sample is one row of the time series: every registered counter and
// gauge evaluated at one simulated instant. Values align with
// SeriesNames (counters first, in registration order, then gauges).
type Sample struct {
	At     sim.Time
	Values []float64
}

// Collector accumulates one run's telemetry. Build it with New, hand it
// to manet.Config.Telemetry (or register series directly), and read the
// samples back — or Export them as JSONL — after the run. A Collector is
// single-use and, like the simulation that feeds it, not safe for
// concurrent use; replica-level parallelism uses one Collector per
// replica (see experiment.Options.Telemetry) and MergeCounters.
type Collector struct {
	tick     sim.Duration
	counters []counterSlot
	gauges   []gaugeSlot
	byName   map[string]CounterID
	samples  []Sample
}

// New creates a collector sampling every tick of simulated time;
// tick <= 0 uses DefaultTick.
func New(tick sim.Duration) *Collector {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Collector{tick: tick, byName: make(map[string]CounterID)}
}

// Tick returns the sampling interval (0 on a nil collector).
func (c *Collector) Tick() sim.Duration {
	if c == nil {
		return 0
	}
	return c.tick
}

// Counter registers (or finds) a counter by name and returns its id.
// Registering on a nil collector returns 0; the matching Add/Inc calls
// are no-ops there too, so instrument points need no nil checks of
// their own beyond guarding genuinely expensive bookkeeping.
func (c *Collector) Counter(name string) CounterID {
	if c == nil {
		return 0
	}
	if id, ok := c.byName[name]; ok {
		return id
	}
	id := CounterID(len(c.counters))
	c.counters = append(c.counters, counterSlot{name: name})
	c.byName[name] = id
	return id
}

// Add increments a registered counter by d. Safe on a nil collector.
func (c *Collector) Add(id CounterID, d int64) {
	if c == nil {
		return
	}
	c.counters[id].value += d
}

// Inc increments a registered counter by one. Safe on a nil collector.
func (c *Collector) Inc(id CounterID) {
	if c == nil {
		return
	}
	c.counters[id].value++
}

// Gauge registers a sampled series evaluated at every tick. Gauges must
// be pure reads of simulation state: they run inside the scheduler's
// tick hook, so mutating state or drawing random numbers there would
// change the run they are observing. Safe on a nil collector.
func (c *Collector) Gauge(name string, fn func() float64) {
	if c == nil {
		return
	}
	c.gauges = append(c.gauges, gaugeSlot{name: name, fn: fn})
}

// SeriesNames returns every sampled series name: counters first in
// registration order, then gauges in registration order — the column
// order of Sample.Values.
func (c *Collector) SeriesNames() []string {
	if c == nil {
		return nil
	}
	names := make([]string, 0, len(c.counters)+len(c.gauges))
	for _, s := range c.counters {
		names = append(names, s.name)
	}
	for _, g := range c.gauges {
		names = append(names, g.name)
	}
	return names
}

// Sample snapshots every counter and gauge at the given simulated time,
// appending one row to the series. Consecutive calls at the same
// instant coalesce (the later call wins), so an explicit end-of-run
// sample can follow a tick that already fired at the same time.
func (c *Collector) Sample(at sim.Time) {
	if c == nil {
		return
	}
	row := Sample{At: at, Values: make([]float64, 0, len(c.counters)+len(c.gauges))}
	for _, s := range c.counters {
		row.Values = append(row.Values, float64(s.value))
	}
	for _, g := range c.gauges {
		row.Values = append(row.Values, g.fn())
	}
	if n := len(c.samples); n > 0 && c.samples[n-1].At == at {
		c.samples[n-1] = row
		return
	}
	c.samples = append(c.samples, row)
}

// Samples returns the recorded time series in sampling order. The slice
// is the collector's storage; callers must not modify it.
func (c *Collector) Samples() []Sample {
	if c == nil {
		return nil
	}
	return c.samples
}

// CounterValue returns a counter's current value by name.
func (c *Collector) CounterValue(name string) (int64, bool) {
	if c == nil {
		return 0, false
	}
	id, ok := c.byName[name]
	if !ok {
		return 0, false
	}
	return c.counters[id].value, true
}

// CounterValues returns every counter's final value keyed by name.
func (c *Collector) CounterValues() map[string]int64 {
	if c == nil {
		return nil
	}
	out := make(map[string]int64, len(c.counters))
	for _, s := range c.counters {
		out[s.name] = s.value
	}
	return out
}

// MergeCounters sums counter maps from independent replicas (see
// CounterValues) into one total per name — the per-replica telemetry
// merge the experiment harness exposes.
func MergeCounters(ms ...map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for _, m := range ms {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// MergedNames returns the sorted key set of a merged counter map, for
// deterministic rendering.
func MergedNames(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
