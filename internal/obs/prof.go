package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the standard -cpuprofile/-memprofile flags for the
// experiment-running commands. Either path may be empty. The returned
// stop function flushes and closes whatever was started and must be
// called before exit (deferring it through os.Exit loses the profiles,
// so commands call it explicitly at the end of their run path).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // capture live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
