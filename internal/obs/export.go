package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Meta is the header line of a telemetry export: one per stream, first
// line, describing the run and the column order of every sample line.
type Meta struct {
	V        int      `json:"v"`
	Type     string   `json:"type"`
	Scheme   string   `json:"scheme,omitempty"`
	Hosts    int      `json:"hosts,omitempty"`
	MapUnits int      `json:"map_units,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	TickUS   int64    `json:"tick_us,omitempty"`
	Series   []string `json:"series"`
}

// sampleRecord is the wire form of one time-series row; values align
// with Meta.Series.
type sampleRecord struct {
	V      int       `json:"v"`
	Type   string    `json:"type"`
	TUS    int64     `json:"t_us"`
	Values []float64 `json:"values"`
}

// Dump is a decoded telemetry export.
type Dump struct {
	Meta    Meta
	Samples []Sample
	Events  []trace.Event
}

// Export writes one run's telemetry as versioned JSONL: a meta line,
// then every sample, then the trace event stream (events may be nil).
// The meta's version, type, tick, and series are filled in from the
// collector; callers set the run-description fields.
func Export(w io.Writer, meta Meta, c *Collector, events []trace.Event) error {
	meta.V = trace.JSONLVersion
	meta.Type = "meta"
	meta.TickUS = int64(c.Tick())
	meta.Series = c.SeriesNames()
	if meta.Series == nil {
		meta.Series = []string{}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, s := range c.Samples() {
		rec := sampleRecord{V: trace.JSONLVersion, Type: "sample", TUS: int64(s.At), Values: s.Values}
		if rec.Values == nil {
			rec.Values = []float64{}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return trace.EncodeJSONL(w, events)
}

// Decode reads a telemetry export back. It validates the schema version
// on every line, requires the meta line to precede any samples, and
// checks each sample row against the meta's series width. Unknown
// record types are skipped (forward compatibility within a version).
func Decode(r io.Reader) (*Dump, error) {
	d := &Dump{}
	sawMeta := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var eventLines bytes.Buffer
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var head struct {
			V    int    `json:"v"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if head.V != trace.JSONLVersion {
			return nil, fmt.Errorf("obs: line %d: schema version %d, want %d", line, head.V, trace.JSONLVersion)
		}
		switch head.Type {
		case "meta":
			if sawMeta {
				return nil, fmt.Errorf("obs: line %d: duplicate meta line", line)
			}
			if err := json.Unmarshal(raw, &d.Meta); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", line, err)
			}
			sawMeta = true
		case "sample":
			if !sawMeta {
				return nil, fmt.Errorf("obs: line %d: sample before meta line", line)
			}
			var rec sampleRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", line, err)
			}
			if len(rec.Values) != len(d.Meta.Series) {
				return nil, fmt.Errorf("obs: line %d: sample has %d values, meta declares %d series",
					line, len(rec.Values), len(d.Meta.Series))
			}
			d.Samples = append(d.Samples, Sample{At: sim.Time(rec.TUS), Values: rec.Values})
		case "event":
			// Batch event lines and hand them to the trace decoder so
			// the two packages cannot drift on the event wire format.
			eventLines.Write(raw)
			eventLines.WriteByte('\n')
		default:
			// Skip unknown record types within a known version.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawMeta {
		return nil, fmt.Errorf("obs: no meta line in stream")
	}
	if eventLines.Len() > 0 {
		events, err := trace.DecodeJSONL(&eventLines)
		if err != nil {
			return nil, err
		}
		d.Events = events
	}
	return d, nil
}
