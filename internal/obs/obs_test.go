package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	id := c.Counter("x")
	c.Add(id, 5)
	c.Inc(id)
	c.Gauge("g", func() float64 { t.Fatal("gauge called on nil collector"); return 0 })
	c.Sample(sim.Time(1))
	if c.Tick() != 0 {
		t.Errorf("nil Tick = %v, want 0", c.Tick())
	}
	if got := c.Samples(); got != nil {
		t.Errorf("nil Samples = %v, want nil", got)
	}
	if got := c.SeriesNames(); got != nil {
		t.Errorf("nil SeriesNames = %v, want nil", got)
	}
	if _, ok := c.CounterValue("x"); ok {
		t.Error("nil CounterValue reported a value")
	}
	if got := c.CounterValues(); got != nil {
		t.Errorf("nil CounterValues = %v, want nil", got)
	}
}

func TestCollectorCountersAndGauges(t *testing.T) {
	c := New(0)
	if c.Tick() != DefaultTick {
		t.Fatalf("Tick = %v, want DefaultTick %v", c.Tick(), DefaultTick)
	}
	a := c.Counter("a")
	b := c.Counter("b")
	if again := c.Counter("a"); again != a {
		t.Fatalf("re-registering a counter returned a new id: %d vs %d", again, a)
	}
	g := 1.5
	c.Gauge("g", func() float64 { return g })

	c.Add(a, 3)
	c.Inc(b)
	c.Sample(sim.Time(100))
	c.Inc(a)
	g = 2.5
	c.Sample(sim.Time(200))

	wantNames := []string{"a", "b", "g"}
	if got := c.SeriesNames(); !reflect.DeepEqual(got, wantNames) {
		t.Errorf("SeriesNames = %v, want %v", got, wantNames)
	}
	want := []Sample{
		{At: 100, Values: []float64{3, 1, 1.5}},
		{At: 200, Values: []float64{4, 1, 2.5}},
	}
	if got := c.Samples(); !reflect.DeepEqual(got, want) {
		t.Errorf("Samples = %v, want %v", got, want)
	}
	if v, ok := c.CounterValue("a"); !ok || v != 4 {
		t.Errorf("CounterValue(a) = %d, %v; want 4, true", v, ok)
	}
}

func TestSampleCoalescesSameInstant(t *testing.T) {
	c := New(sim.Second)
	a := c.Counter("a")
	c.Inc(a)
	c.Sample(sim.Time(500))
	c.Inc(a)
	c.Sample(sim.Time(500)) // end-of-run sample at the same instant
	got := c.Samples()
	if len(got) != 1 {
		t.Fatalf("got %d samples, want 1 (coalesced)", len(got))
	}
	if got[0].Values[0] != 2 {
		t.Errorf("coalesced value = %v, want 2 (later sample wins)", got[0].Values[0])
	}
}

func TestMergeCounters(t *testing.T) {
	m := MergeCounters(
		map[string]int64{"a": 1, "b": 2},
		map[string]int64{"b": 3, "c": 4},
		nil,
	)
	want := map[string]int64{"a": 1, "b": 5, "c": 4}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("MergeCounters = %v, want %v", m, want)
	}
	if got := MergedNames(m); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("MergedNames = %v", got)
	}
}

// syntheticExport builds an export from hand-written collector state and
// events — deliberately not from a simulation, so the golden file pins
// the wire schema without churning when the model changes.
func syntheticExport(t *testing.T) []byte {
	t.Helper()
	c := New(50 * sim.Millisecond)
	tx := c.Counter("scheme.proceed_initial")
	inh := c.Counter("scheme.inhibit_duplicate")
	busy := 0.0
	c.Gauge("phy.busy_radio_seconds", func() float64 { return busy })

	c.Inc(tx)
	busy = 0.0125
	c.Sample(sim.Time(50 * sim.Millisecond))
	c.Add(tx, 2)
	c.Inc(inh)
	busy = 0.0500
	c.Sample(sim.Time(100 * sim.Millisecond))

	events := []trace.Event{
		{At: sim.Time(10 * sim.Millisecond), Kind: trace.Originate, Broadcast: packet.BroadcastID{Source: 3, Seq: 1}, Host: 3},
		{At: sim.Time(12 * sim.Millisecond), Kind: trace.Deliver, Broadcast: packet.BroadcastID{Source: 3, Seq: 1}, Host: 7},
		{At: sim.Time(14 * sim.Millisecond), Kind: trace.Inhibit, Broadcast: packet.BroadcastID{Source: 3, Seq: 1}, Host: 9},
	}
	meta := Meta{Scheme: "counter:c=3", Hosts: 20, MapUnits: 5, Seed: 42}
	var buf bytes.Buffer
	if err := Export(&buf, meta, c, events); err != nil {
		t.Fatalf("Export: %v", err)
	}
	return buf.Bytes()
}

// TestExportGolden pins the JSONL wire schema (version, field names,
// line ordering). A diff here means the schema changed: bump
// trace.JSONLVersion and update DESIGN.md before refreshing the golden
// file with -update.
func TestExportGolden(t *testing.T) {
	got := syntheticExport(t)
	golden := filepath.Join("testdata", "export_v1.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("export differs from golden schema v%d:\n got:\n%s\nwant:\n%s",
			trace.JSONLVersion, got, want)
	}
}

func TestExportDecodeRoundTrip(t *testing.T) {
	raw := syntheticExport(t)
	d, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Meta.V != trace.JSONLVersion || d.Meta.Scheme != "counter:c=3" ||
		d.Meta.Hosts != 20 || d.Meta.Seed != 42 || d.Meta.TickUS != int64(50*sim.Millisecond) {
		t.Errorf("meta round-trip mismatch: %+v", d.Meta)
	}
	wantSeries := []string{"scheme.proceed_initial", "scheme.inhibit_duplicate", "phy.busy_radio_seconds"}
	if !reflect.DeepEqual(d.Meta.Series, wantSeries) {
		t.Errorf("series = %v, want %v", d.Meta.Series, wantSeries)
	}
	wantSamples := []Sample{
		{At: sim.Time(50 * sim.Millisecond), Values: []float64{1, 0, 0.0125}},
		{At: sim.Time(100 * sim.Millisecond), Values: []float64{3, 1, 0.05}},
	}
	if !reflect.DeepEqual(d.Samples, wantSamples) {
		t.Errorf("samples = %v, want %v", d.Samples, wantSamples)
	}
	if len(d.Events) != 3 || d.Events[1].Kind != trace.Deliver || d.Events[1].Host != 7 {
		t.Errorf("events round-trip mismatch: %+v", d.Events)
	}
}

func TestDecodeRejectsBadStreams(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"wrong version", `{"v":99,"type":"meta","series":[]}`, "schema version"},
		{"no meta", `{"v":1,"type":"sample","t_us":1,"values":[]}`, "sample before meta"},
		{"width mismatch", `{"v":1,"type":"meta","series":["a"]}` + "\n" +
			`{"v":1,"type":"sample","t_us":1,"values":[1,2]}`, "declares"},
		{"duplicate meta", `{"v":1,"type":"meta","series":[]}` + "\n" +
			`{"v":1,"type":"meta","series":[]}`, "duplicate meta"},
		{"empty", ``, "no meta"},
		{"garbage", `not json`, "invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Decode(%q) err = %v, want containing %q", tc.in, err, tc.want)
			}
		})
	}
}

func TestDecodeSkipsUnknownTypes(t *testing.T) {
	in := `{"v":1,"type":"meta","series":[]}` + "\n" +
		`{"v":1,"type":"future_record","payload":true}`
	d, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(d.Samples) != 0 || len(d.Events) != 0 {
		t.Errorf("unexpected decoded content: %+v", d)
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatalf("StartProfiles: %v", err)
	}
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Both paths empty: a no-op that must still succeed.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatalf("StartProfiles(empty): %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop(empty): %v", err)
	}
}
