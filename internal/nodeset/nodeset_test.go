package nodeset

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestSetBasics(t *testing.T) {
	s := New(100)
	if s.Count() != 0 || s.Contains(0) || s.Contains(99) {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(5) || !s.Add(63) || !s.Add(64) || !s.Add(99) {
		t.Fatal("Add reported existing for new ids")
	}
	if s.Add(5) {
		t.Error("Add reported new for existing id")
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, id := range []packet.NodeID{5, 63, 64, 99} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	if s.Contains(6) || s.Contains(65) {
		t.Error("Contains true for absent id")
	}
	if !s.Remove(63) || s.Remove(63) || s.Remove(7) {
		t.Error("Remove presence reporting wrong")
	}
	if s.Count() != 3 || s.Contains(63) {
		t.Error("Remove did not delete")
	}
	s.Clear()
	if s.Count() != 0 || s.Contains(5) {
		t.Error("Clear left members behind")
	}
}

func TestSetZeroValueGrows(t *testing.T) {
	var s Set
	if s.Contains(1000) {
		t.Error("zero-value set contains id")
	}
	if s.Remove(1000) {
		t.Error("Remove on empty zero-value set reported presence")
	}
	if !s.Add(1000) || !s.Contains(1000) || s.Count() != 1 {
		t.Error("zero-value set did not grow on Add")
	}
}

func TestSetIterationSorted(t *testing.T) {
	s := New(300)
	want := []packet.NodeID{0, 1, 63, 64, 65, 127, 128, 255, 299}
	for i := len(want) - 1; i >= 0; i-- {
		s.Add(want[i])
	}
	got := s.AppendIDs(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendIDs = %v, want %v", got, want)
		}
	}
	var walked []packet.NodeID
	s.ForEach(func(id packet.NodeID) { walked = append(walked, id) })
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", walked, want)
		}
	}
	// AppendIDs must reuse the provided buffer.
	buf := make([]packet.NodeID, 0, len(want))
	out := s.AppendIDs(buf)
	if &out[0] != &buf[:1][0] {
		t.Error("AppendIDs reallocated despite sufficient capacity")
	}
}

func TestSetCopyFrom(t *testing.T) {
	a := New(128)
	for _, id := range []packet.NodeID{1, 50, 100} {
		a.Add(id)
	}
	b := New(0)
	b.CopyFrom(a)
	if b.Count() != 3 || !b.Contains(50) {
		t.Fatal("CopyFrom missed members")
	}
	b.Remove(50)
	if !a.Contains(50) {
		t.Error("CopyFrom aliased storage")
	}
}

func TestSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New(64)
	ref := map[packet.NodeID]bool{}
	for i := 0; i < 20000; i++ {
		id := packet.NodeID(rng.Intn(500))
		switch rng.Intn(3) {
		case 0:
			if s.Add(id) == ref[id] {
				t.Fatalf("Add(%d) newness mismatch", id)
			}
			ref[id] = true
		case 1:
			if s.Remove(id) != ref[id] {
				t.Fatalf("Remove(%d) presence mismatch", id)
			}
			delete(ref, id)
		default:
			if s.Contains(id) != ref[id] {
				t.Fatalf("Contains(%d) mismatch", id)
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, map has %d", s.Count(), len(ref))
	}
}
