package nodeset

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestSetBasics(t *testing.T) {
	s := New(100)
	if s.Count() != 0 || s.Contains(0) || s.Contains(99) {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(5) || !s.Add(63) || !s.Add(64) || !s.Add(99) {
		t.Fatal("Add reported existing for new ids")
	}
	if s.Add(5) {
		t.Error("Add reported new for existing id")
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, id := range []packet.NodeID{5, 63, 64, 99} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	if s.Contains(6) || s.Contains(65) {
		t.Error("Contains true for absent id")
	}
	if !s.Remove(63) || s.Remove(63) || s.Remove(7) {
		t.Error("Remove presence reporting wrong")
	}
	if s.Count() != 3 || s.Contains(63) {
		t.Error("Remove did not delete")
	}
	s.Clear()
	if s.Count() != 0 || s.Contains(5) {
		t.Error("Clear left members behind")
	}
}

func TestSetZeroValueGrows(t *testing.T) {
	var s Set
	if s.Contains(1000) {
		t.Error("zero-value set contains id")
	}
	if s.Remove(1000) {
		t.Error("Remove on empty zero-value set reported presence")
	}
	if !s.Add(1000) || !s.Contains(1000) || s.Count() != 1 {
		t.Error("zero-value set did not grow on Add")
	}
}

func TestSetIterationSorted(t *testing.T) {
	s := New(300)
	want := []packet.NodeID{0, 1, 63, 64, 65, 127, 128, 255, 299}
	for i := len(want) - 1; i >= 0; i-- {
		s.Add(want[i])
	}
	got := s.AppendIDs(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendIDs = %v, want %v", got, want)
		}
	}
	var walked []packet.NodeID
	s.ForEach(func(id packet.NodeID) { walked = append(walked, id) })
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", walked, want)
		}
	}
	// AppendIDs must reuse the provided buffer.
	buf := make([]packet.NodeID, 0, len(want))
	out := s.AppendIDs(buf)
	if &out[0] != &buf[:1][0] {
		t.Error("AppendIDs reallocated despite sufficient capacity")
	}
}

func TestSetCopyFrom(t *testing.T) {
	a := New(128)
	for _, id := range []packet.NodeID{1, 50, 100} {
		a.Add(id)
	}
	b := New(0)
	b.CopyFrom(a)
	if b.Count() != 3 || !b.Contains(50) {
		t.Fatal("CopyFrom missed members")
	}
	b.Remove(50)
	if !a.Contains(50) {
		t.Error("CopyFrom aliased storage")
	}
}

func TestSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New(64)
	ref := map[packet.NodeID]bool{}
	for i := 0; i < 20000; i++ {
		id := packet.NodeID(rng.Intn(500))
		switch rng.Intn(3) {
		case 0:
			if s.Add(id) == ref[id] {
				t.Fatalf("Add(%d) newness mismatch", id)
			}
			ref[id] = true
		case 1:
			if s.Remove(id) != ref[id] {
				t.Fatalf("Remove(%d) presence mismatch", id)
			}
			delete(ref, id)
		default:
			if s.Contains(id) != ref[id] {
				t.Fatalf("Contains(%d) mismatch", id)
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, map has %d", s.Count(), len(ref))
	}
}

func TestUnionIntersection(t *testing.T) {
	a, b, s := New(200), New(200), New(200)
	for _, id := range []packet.NodeID{1, 63, 64, 100, 199} {
		a.Add(id)
	}
	for _, id := range []packet.NodeID{0, 63, 64, 101, 199} {
		b.Add(id)
	}
	s.Add(2)  // pre-existing member outside the intersection
	s.Add(63) // pre-existing member inside the intersection
	s.UnionIntersection(a, b)
	want := []packet.NodeID{2, 63, 64, 199}
	if s.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(want))
	}
	for _, id := range want {
		if !s.Contains(id) {
			t.Errorf("missing %d", id)
		}
	}
	if s.Contains(1) || s.Contains(0) || s.Contains(100) || s.Contains(101) {
		t.Error("non-intersection id leaked in")
	}
	// Idempotent: applying again must not change the count.
	s.UnionIntersection(a, b)
	if s.Count() != len(want) {
		t.Errorf("second application changed Count to %d", s.Count())
	}
}

func TestUnionIntersectionAliasing(t *testing.T) {
	// s |= s & b with s as an operand must behave like the map oracle.
	s, b := New(128), New(128)
	for _, id := range []packet.NodeID{3, 64, 70} {
		s.Add(id)
	}
	for _, id := range []packet.NodeID{3, 70, 99} {
		b.Add(id)
	}
	s.UnionIntersection(s, b)
	if s.Count() != 3 || !s.Contains(3) || !s.Contains(64) || !s.Contains(70) {
		t.Errorf("aliased UnionIntersection corrupted the set: count=%d", s.Count())
	}
}

func TestUnionIntersectionMismatchedSizes(t *testing.T) {
	a, b := New(64), New(512)
	a.Add(10)
	b.Add(10)
	b.Add(400)
	var s Set
	s.UnionIntersection(a, b)
	if s.Count() != 1 || !s.Contains(10) {
		t.Errorf("mismatched-size intersection wrong: count=%d", s.Count())
	}
	s2 := New(0)
	s2.UnionIntersection(b, a)
	if s2.Count() != 1 || !s2.Contains(10) {
		t.Errorf("reversed mismatched-size intersection wrong: count=%d", s2.Count())
	}
}

func TestAppendAnd(t *testing.T) {
	a, b := New(300), New(300)
	var want []packet.NodeID
	rng := rand.New(rand.NewSource(7))
	for id := packet.NodeID(0); id < 300; id++ {
		ina, inb := rng.Intn(3) == 0, rng.Intn(3) == 0
		if ina {
			a.Add(id)
		}
		if inb {
			b.Add(id)
		}
		if ina && inb {
			want = append(want, id)
		}
	}
	buf := make([]packet.NodeID, 0, 4)
	buf = append(buf, 999) // AppendAnd must append, not overwrite
	got := a.AppendAnd(b, buf)
	if got[0] != 999 {
		t.Fatal("AppendAnd clobbered existing buffer contents")
	}
	got = got[1:]
	if len(got) != len(want) {
		t.Fatalf("intersection size %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("intersection[%d] = %d, want %d (must be ascending)", i, got[i], want[i])
		}
	}
	// Symmetric and size-mismatch tolerant.
	small := New(64)
	small.Add(40)
	a.Add(40)
	if out := small.AppendAnd(a, nil); len(out) != 1 || out[0] != 40 {
		t.Errorf("mismatched-size AppendAnd = %v", out)
	}
}
