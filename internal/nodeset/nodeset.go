// Package nodeset provides a dense bitset over host identifiers. The
// simulators assign packet.NodeID values densely (0..N-1, the host's
// index), so membership, union, and subtraction over neighbor sets
// reduce to word-wide bit operations on a []uint64 — no hashing, no
// per-entry allocation, and iteration in sorted order for free.
package nodeset

import (
	"math/bits"

	"repro/internal/packet"
)

// Set is a bitset keyed by packet.NodeID. The zero value is an empty set;
// it grows to fit the largest id added. Set is not safe for concurrent
// use.
type Set struct {
	words []uint64
	count int
}

// New returns an empty set pre-sized for ids 0..n-1.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// grow ensures the set can hold id without reallocation on the hot path.
func (s *Set) grow(id packet.NodeID) {
	s.growWords(int(id)/64 + 1)
}

// growWords ensures the word slice spans at least need words.
func (s *Set) growWords(need int) {
	if need <= len(s.words) {
		return
	}
	if need <= cap(s.words) {
		s.words = s.words[:need]
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Add inserts id and reports whether it was newly added.
func (s *Set) Add(id packet.NodeID) bool {
	s.grow(id)
	w, b := int(id)/64, uint(id)%64
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.count++
	return true
}

// Remove deletes id and reports whether it was present.
func (s *Set) Remove(id packet.NodeID) bool {
	w, b := int(id)/64, uint(id)%64
	if w >= len(s.words) || s.words[w]&(1<<b) == 0 {
		return false
	}
	s.words[w] &^= 1 << b
	s.count--
	return true
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id packet.NodeID) bool {
	w := int(id) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(id)%64)) != 0
}

// Count returns the number of ids in the set.
func (s *Set) Count() int { return s.count }

// Clear empties the set, retaining backing storage.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// CopyFrom makes s an exact copy of o, retaining s's storage when large
// enough.
func (s *Set) CopyFrom(o *Set) {
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
	s.count = o.count
}

// ForEach calls f for every id in ascending order.
func (s *Set) ForEach(f func(packet.NodeID)) {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(packet.NodeID(w*64 + b))
			word &^= 1 << uint(b)
		}
	}
}

// UnionIntersection ors the intersection a AND b into s, word-parallel:
// s |= a & b. The operands may alias s. The channel's collision engine
// uses it to garble every receiver covered by two overlapping
// transmissions in one pass over the backing words instead of a
// per-receiver loop.
func (s *Set) UnionIntersection(a, b *Set) {
	n := min(len(a.words), len(b.words))
	s.growWords(n)
	for i := 0; i < n; i++ {
		w := a.words[i] & b.words[i]
		if w == 0 {
			continue
		}
		old := s.words[i]
		merged := old | w
		if merged == old {
			continue
		}
		s.words[i] = merged
		s.count += bits.OnesCount64(merged) - bits.OnesCount64(old)
	}
}

// AppendAnd appends the ids present in both s and o to buf in ascending
// order and returns the extended slice. It is the iteration form of the
// word-parallel intersection, for callers that need per-id work (e.g.
// the capture-effect overlap rule).
func (s *Set) AppendAnd(o *Set, buf []packet.NodeID) []packet.NodeID {
	n := min(len(s.words), len(o.words))
	for w := 0; w < n; w++ {
		word := s.words[w] & o.words[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			buf = append(buf, packet.NodeID(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return buf
}

// AppendIDs appends the set's ids to buf in ascending order and returns
// the extended slice.
func (s *Set) AppendIDs(buf []packet.NodeID) []packet.NodeID {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			buf = append(buf, packet.NodeID(w*64+b))
			word &^= 1 << uint(b)
		}
	}
	return buf
}
