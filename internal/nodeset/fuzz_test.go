package nodeset

import (
	"sort"
	"testing"

	"repro/internal/packet"
)

// FuzzNodeSet interprets the input as a little op language driving a Set
// and a map-based oracle in lockstep: every mutation's return value and
// every query must agree with the oracle, and iteration must visit the
// oracle's exact contents in ascending order. Ids are bounded to one
// byte so grow() stays cheap; the bitset's word math is identical at any
// scale.
func FuzzNodeSet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 0, 5, 2, 5, 1, 5, 2, 5})        // add, re-add, contains, remove
	f.Add([]byte{0, 63, 0, 64, 0, 127, 5, 0, 3, 0})    // word-boundary ids, verify, clear
	f.Add([]byte{0, 1, 0, 200, 4, 0, 0, 7, 5, 0})      // copy then diverge
	f.Add([]byte{0, 255, 1, 254, 2, 255, 3, 0, 5, 0})  // top id, absent remove
	f.Add([]byte{0, 10, 0, 20, 0, 30, 4, 0, 3, 0, 5, 0}) // copy survives source clear

	verify := func(t *testing.T, s *Set, oracle map[packet.NodeID]bool, label string) {
		t.Helper()
		if s.Count() != len(oracle) {
			t.Fatalf("%s: Count = %d, oracle has %d", label, s.Count(), len(oracle))
		}
		want := make([]packet.NodeID, 0, len(oracle))
		for id := range oracle {
			want = append(want, id)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := s.AppendIDs(nil)
		if len(got) != len(want) {
			t.Fatalf("%s: AppendIDs returned %d ids, want %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: AppendIDs[%d] = %v, want %v", label, i, got[i], want[i])
			}
		}
		i := 0
		s.ForEach(func(id packet.NodeID) {
			if i >= len(got) || id != got[i] {
				t.Fatalf("%s: ForEach diverged from AppendIDs at index %d (%v)", label, i, id)
			}
			i++
		})
		if i != len(got) {
			t.Fatalf("%s: ForEach visited %d ids, AppendIDs returned %d", label, i, len(got))
		}
	}

	f.Fuzz(func(t *testing.T, ops []byte) {
		set := New(8)
		other := New(0)
		oracle := map[packet.NodeID]bool{}
		otherOracle := map[packet.NodeID]bool{}
		for i := 0; i+1 < len(ops); i += 2 {
			id := packet.NodeID(ops[i+1])
			switch ops[i] % 6 {
			case 0:
				if got, want := set.Add(id), !oracle[id]; got != want {
					t.Fatalf("op %d: Add(%v) = %v, want %v", i, id, got, want)
				}
				oracle[id] = true
			case 1:
				if got, want := set.Remove(id), oracle[id]; got != want {
					t.Fatalf("op %d: Remove(%v) = %v, want %v", i, id, got, want)
				}
				delete(oracle, id)
			case 2:
				if got, want := set.Contains(id), oracle[id]; got != want {
					t.Fatalf("op %d: Contains(%v) = %v, want %v", i, id, got, want)
				}
			case 3:
				set.Clear()
				oracle = map[packet.NodeID]bool{}
			case 4:
				other.CopyFrom(set)
				otherOracle = make(map[packet.NodeID]bool, len(oracle))
				for k := range oracle {
					otherOracle[k] = true
				}
			case 5:
				verify(t, set, oracle, "set")
				verify(t, other, otherOracle, "copy")
			}
		}
		verify(t, set, oracle, "final set")
		verify(t, other, otherOracle, "final copy")
	})
}
