package mac

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

type rig struct {
	sched *sim.Scheduler
	ch    *phy.Channel
	macs  []*MAC
}

func newRig(positions ...geom.Point) *rig {
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
	rng := sim.NewRNG(42)
	r := &rig{sched: sched, ch: ch}
	for i, p := range positions {
		p := p
		m := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return p }), rng.Fork(uint64(i)))
		r.macs = append(r.macs, m)
	}
	return r
}

func frame(src packet.NodeID, seq uint32) *packet.Frame {
	return packet.NewBroadcast(packet.BroadcastID{Source: src, Seq: seq}, src, geom.Point{})
}

func TestImmediateAccessAfterLongIdle(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	got := make([]*packet.Frame, 0, 1)
	r.macs[1].Receiver = ReceiverFunc(func(f *packet.Frame) { got = append(got, f) })

	// Medium idle since t=0; enqueue at t=1s: DIFS already satisfied, so
	// the transmission must start immediately.
	var startAt sim.Time
	r.sched.Schedule(sim.Time(sim.Second), func() {
		r.macs[0].Enqueue(frame(0, 1), TxFuncs{Start: func() { startAt = r.sched.Now() }})
	})
	r.sched.Run()

	if startAt != sim.Time(sim.Second) {
		t.Errorf("transmission started at %v, want immediate access at 1s", startAt)
	}
	if len(got) != 1 {
		t.Errorf("receiver got %d frames, want 1", len(got))
	}
}

func TestDIFSDeferralAtTimeZero(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	var startAt sim.Time
	// Enqueued at t=0 when the medium has been idle for exactly 0: the
	// MAC must wait out DIFS plus a random backoff of 0..CWMin slots.
	r.macs[0].Enqueue(frame(0, 1), TxFuncs{Start: func() { startAt = r.sched.Now() }})
	r.sched.Run()
	tm := phy.DSSSTiming()
	earliest := sim.Time(tm.DIFS)
	latest := earliest.Add(sim.Duration(tm.CWMin) * tm.SlotTime)
	if startAt < earliest || startAt > latest {
		t.Errorf("start at %v, want within [DIFS, DIFS+CW slots] = [%v, %v]",
			startAt, earliest, latest)
	}
}

func TestDeferWhileBusyThenBackoff(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	tm := phy.DSSSTiming()
	var aStart, bStart sim.Time
	r.macs[0].Enqueue(frame(0, 1), TxFuncs{Start: func() {
		aStart = r.sched.Now()
		// Enqueue host 1's frame mid-transmission: it must defer until
		// the medium frees, then back off.
		r.sched.After(500*sim.Microsecond, func() {
			r.macs[1].Enqueue(frame(1, 1), TxFuncs{Start: func() { bStart = r.sched.Now() }})
		})
	}})
	r.sched.Run()

	txEnd := aStart.Add(tm.Airtime(280))
	earliest := txEnd.Add(tm.DIFS)
	latest := earliest.Add(sim.Duration(tm.CWMin) * tm.SlotTime)
	if bStart < earliest || bStart > latest {
		t.Errorf("deferred start %v outside [txEnd+DIFS, +CW slots] = [%v, %v]", bStart, earliest, latest)
	}
	if bStart == earliest {
		// Possible (backoff 0) but then it is still a valid boundary;
		// nothing to assert.
		t.Log("backoff drew zero slots")
	}
}

func TestBackoffFreezesUnderCarrier(t *testing.T) {
	// Three hosts in line: 0 transmits long frames back to back; 2 wants
	// to transmit. Host 2's backoff must freeze during each of 0's
	// transmissions and its frame must go out only after the medium
	// frees up.
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100}, geom.Point{X: 200})
	tm := phy.DSSSTiming()

	// Keep the channel busy with two long transmissions; enqueue host 2's
	// frame while host 0's first frame is in flight.
	var firstStart, start sim.Time
	r.macs[0].Enqueue(frame(0, 1), TxFuncs{Start: func() {
		firstStart = r.sched.Now()
		r.sched.After(100*sim.Microsecond, func() {
			r.macs[2].Enqueue(frame(2, 1), TxFuncs{Start: func() { start = r.sched.Now() }})
		})
	}})
	r.macs[0].Enqueue(frame(0, 2), nil)
	r.sched.Run()

	if start == 0 {
		t.Fatal("host 2 never transmitted")
	}
	firstEnd := firstStart.Add(tm.Airtime(280))
	if start < firstEnd {
		t.Errorf("host 2 started at %v during host 0's first transmission (ends %v)", start, firstEnd)
	}
}

func TestCancelBeforeStart(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	started := false
	var received int
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) { received++ })

	// Occupy the medium so the enqueued frame must wait, then cancel it.
	// Host 0 starts within DIFS+CW slots (by 670us) and holds the medium
	// for 2432us, so at 1000us host 1 is guaranteed to be deferring.
	r.macs[0].Enqueue(frame(0, 1), nil)
	var p *Pending
	r.sched.Schedule(sim.Time(1000*sim.Microsecond), func() {
		p = r.macs[1].Enqueue(frame(1, 1), TxFuncs{Start: func() { started = true }})
	})
	r.sched.Schedule(sim.Time(1200*sim.Microsecond), func() {
		if !r.macs[1].Cancel(p) {
			t.Error("cancel of waiting frame failed")
		}
	})
	r.sched.Run()

	if started {
		t.Error("cancelled frame still started")
	}
	if !p.Cancelled() {
		t.Error("Cancelled() = false")
	}
	if r.macs[1].Stats().Sent != 0 {
		t.Error("cancelled frame counted as sent")
	}
}

func TestCancelAfterStartFails(t *testing.T) {
	r := newRig(geom.Point{X: 0})
	var p *Pending
	p = r.macs[0].Enqueue(frame(0, 1), TxFuncs{Start: func() {
		if r.macs[0].Cancel(p) {
			t.Error("cancel succeeded after transmission started")
		}
	}})
	r.sched.Run()
	if !p.Started() {
		t.Error("frame never started")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	r.macs[0].Enqueue(frame(0, 1), nil) // keep medium busy at decision time
	p := r.macs[1].Enqueue(frame(1, 1), nil)
	if !r.macs[1].Cancel(p) || !r.macs[1].Cancel(p) {
		t.Error("repeated cancel did not report success")
	}
	if r.macs[1].Stats().Cancelled != 1 {
		t.Errorf("cancelled count = %d, want 1", r.macs[1].Stats().Cancelled)
	}
	r.sched.Run()
}

func TestQueueDrainsInOrder(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	var got []uint32
	r.macs[1].Receiver = ReceiverFunc(func(f *packet.Frame) { got = append(got, f.Broadcast.Seq) })
	for seq := uint32(1); seq <= 5; seq++ {
		r.macs[0].Enqueue(frame(0, seq), nil)
	}
	r.sched.Run()
	if len(got) != 5 {
		t.Fatalf("received %d frames, want 5", len(got))
	}
	for i, seq := range got {
		if seq != uint32(i+1) {
			t.Fatalf("frames out of order: %v", got)
		}
	}
}

func TestCancelHeadPromotesNext(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	var got []uint32
	collect := ReceiverFunc(func(f *packet.Frame) { got = append(got, f.Broadcast.Seq) })
	r.macs[0].Receiver = collect
	r.macs[1].Receiver = collect

	// Busy the medium so host 1's frames queue up, then cancel the first.
	r.macs[0].Enqueue(frame(0, 99), nil) // on the air 50us..2482us
	r.sched.Schedule(sim.Time(100*sim.Microsecond), func() {
		p1 := r.macs[1].Enqueue(frame(1, 1), nil)
		r.macs[1].Enqueue(frame(1, 2), nil)
		r.macs[1].Cancel(p1)
	})
	r.sched.Run()

	want := map[uint32]bool{99: false, 2: false}
	for _, seq := range got {
		if seq == 1 {
			t.Fatal("cancelled head frame was transmitted")
		}
		want[seq] = true
	}
	for seq, ok := range want {
		if !ok {
			t.Errorf("frame %d never delivered", seq)
		}
	}
	if r.macs[1].QueueLen() != 0 {
		t.Errorf("queue not drained: %d", r.macs[1].QueueLen())
	}
}

func TestTwoContendersEventuallyBothSend(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100}, geom.Point{X: 200})
	var got int
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) { got++ })

	// Hosts 0 and 2 both enqueue while the medium is busy with an
	// initial transmission from host 1; their backoffs are drawn from
	// independent streams so they usually separate.
	r.macs[1].Enqueue(frame(1, 1), nil)
	r.sched.Schedule(sim.Time(300*sim.Microsecond), func() {
		r.macs[0].Enqueue(frame(0, 1), nil)
		r.macs[2].Enqueue(frame(2, 1), nil)
	})
	r.sched.Run()

	sent := r.macs[0].Stats().Sent + r.macs[2].Stats().Sent
	if sent != 2 {
		t.Errorf("contenders sent %d frames, want 2", sent)
	}
}

func TestPostTransmissionBackoffSeparatesFrames(t *testing.T) {
	// Two frames queued back to back: the second must not start before
	// first end + DIFS (post-transmission backoff can add more).
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	tm := phy.DSSSTiming()
	var starts []sim.Time
	mark := func() { starts = append(starts, r.sched.Now()) }
	r.macs[0].Enqueue(frame(0, 1), TxFuncs{Start: mark})
	r.macs[0].Enqueue(frame(0, 2), TxFuncs{Start: mark})
	r.sched.Run()

	if len(starts) != 2 {
		t.Fatalf("%d transmissions, want 2", len(starts))
	}
	firstEnd := starts[0].Add(tm.Airtime(280))
	if gap := starts[1].Sub(firstEnd); gap < tm.DIFS {
		t.Errorf("inter-frame gap %v < DIFS %v", gap, tm.DIFS)
	}
}

func TestGarbledFramesReachGarbledReceiver(t *testing.T) {
	// Hidden terminals: hosts 0 and 2 can't hear each other, host 1 in
	// the middle gets both frames garbled.
	r := newRig(geom.Point{X: 0}, geom.Point{X: 450}, geom.Point{X: 900})
	var garbled, ok int
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) { ok++ })
	r.macs[1].GarbledReceiver = GarbledFunc(func(*packet.Frame) { garbled++ })

	r.macs[0].Enqueue(frame(0, 1), nil)
	r.macs[2].Enqueue(frame(2, 1), nil)
	r.sched.Run()

	// Both started within each other's airtime (immediate access at
	// DIFS for both, same instant) so they overlap at host 1.
	if ok != 0 {
		t.Errorf("host 1 decoded %d frames despite hidden-terminal overlap", ok)
	}
	if garbled != 2 {
		t.Errorf("host 1 saw %d garbled frames, want 2", garbled)
	}
}

func TestStatsCounts(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	r.macs[0].Enqueue(frame(0, 1), nil)
	r.macs[0].Enqueue(frame(0, 2), nil)
	r.sched.Run()
	st := r.macs[0].Stats()
	if st.Enqueued != 2 || st.Sent != 2 || st.Cancelled != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOnDoneCallback(t *testing.T) {
	r := newRig(geom.Point{X: 0})
	var doneAt sim.Time
	var startAt sim.Time
	r.macs[0].Enqueue(frame(0, 1), TxFuncs{Start: func() { startAt = r.sched.Now() }, Done: func() { doneAt = r.sched.Now() }})
	r.sched.Run()
	if doneAt.Sub(startAt) != phy.DSSSTiming().Airtime(280) {
		t.Errorf("onDone at %v, start %v: duration != airtime", doneAt, startAt)
	}
}
