package mac

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// TestMACRandomWorkloadInvariants drives several MACs with a randomized
// enqueue/cancel workload and checks global invariants:
//
//   - every frame either starts transmitting or is cancelled, never both;
//   - a MAC never has two transmissions in flight (the channel panics on
//     that, so mere completion is the assertion);
//   - onStart precedes onDone for every sent frame;
//   - accounting: enqueued = sent + cancelled + still-queued at the end.
func TestMACRandomWorkloadInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			sched := sim.NewScheduler()
			ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
			rng := sim.NewRNG(seed)

			const nMACs = 6
			macs := make([]*MAC, nMACs)
			for i := 0; i < nMACs; i++ {
				p := geom.Point{X: float64(i) * 120} // all mutually in range
				macs[i] = New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return p }), rng.Fork(uint64(i)))
			}

			type tracked struct {
				owner     *MAC
				p         *Pending
				started   bool
				done      bool
				cancelled bool
			}
			var frames []*tracked

			// Random workload: 200 operations over 2 simulated seconds.
			opRNG := rng.Fork(99)
			for op := 0; op < 200; op++ {
				at := sim.Time(opRNG.IntN(2_000_000))
				m := macs[opRNG.IntN(nMACs)]
				if opRNG.IntN(4) != 0 || len(frames) == 0 {
					// Enqueue a frame.
					tr := &tracked{owner: m}
					frames = append(frames, tr)
					seq := uint32(op)
					sched.Schedule(at, func() {
						f := packet.NewBroadcast(packet.BroadcastID{Seq: seq}, 0, geom.Point{})
						tr.p = m.Enqueue(f, TxFuncs{Start: func() {
							if tr.cancelled {
								t.Error("cancelled frame started")
							}
							tr.started = true
						}, Done: func() {
							if !tr.started {
								t.Error("onDone before onStart")
							}
							tr.done = true
						}})
					})
				} else {
					// Cancel a random earlier frame through its owning
					// MAC (it may already have started; Cancel must cope).
					victim := frames[opRNG.IntN(len(frames))]
					sched.Schedule(at, func() {
						if victim.p == nil {
							return // not enqueued yet at this instant
						}
						if victim.owner.Cancel(victim.p) && !victim.started {
							victim.cancelled = true
						}
					})
				}
			}
			sched.Run()

			for i, tr := range frames {
				if tr.p == nil {
					continue
				}
				if tr.started && tr.p.Cancelled() {
					t.Errorf("frame %d both started and cancelled", i)
				}
				if tr.started && !tr.done {
					t.Errorf("frame %d started but never completed", i)
				}
			}
			// Cross-MAC accounting.
			var enq, sent, cancelled, queued int
			for _, m := range macs {
				st := m.Stats()
				enq += st.Enqueued
				sent += st.Sent
				cancelled += st.Cancelled
				queued += m.QueueLen()
			}
			if enq != sent+cancelled+queued {
				t.Errorf("accounting: enqueued %d != sent %d + cancelled %d + queued %d",
					enq, sent, cancelled, queued)
			}
			if queued != 0 {
				t.Errorf("%d frames stuck in queues after drain", queued)
			}
		})
	}
}

// Cancel on a foreign MAC is undefined behaviour we do not allow in the
// fuzz above — the workload always cancels through the owning MAC. This
// test documents that cancelling a frame twice through its owner stays
// consistent even under live traffic.
func TestCancelUnderLiveTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
	rng := sim.NewRNG(42)
	a := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{} }), rng.Fork(1))
	b := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{X: 50} }), rng.Fork(2))

	// Keep the medium loaded from a.
	for i := 0; i < 10; i++ {
		a.Enqueue(packet.NewBroadcast(packet.BroadcastID{Source: 1, Seq: uint32(i)}, 1, geom.Point{}), nil)
	}
	var ps []*Pending
	for i := 0; i < 10; i++ {
		ps = append(ps, b.Enqueue(packet.NewBroadcast(packet.BroadcastID{Source: 2, Seq: uint32(i)}, 2, geom.Point{}), nil))
	}
	// Cancel every other frame of b at staggered times.
	for i := 0; i < 10; i += 2 {
		p := ps[i]
		sched.After(sim.Duration(i+1)*sim.Millisecond, func() { b.Cancel(p) })
	}
	sched.Run()

	st := b.Stats()
	if st.Sent+st.Cancelled != 10 {
		t.Errorf("b: sent %d + cancelled %d != 10", st.Sent, st.Cancelled)
	}
	if b.QueueLen() != 0 {
		t.Errorf("b queue not drained: %d", b.QueueLen())
	}
}
