package mac

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/sim"
)

// rtsRig builds MACs with RTS/CTS enabled for all data frames.
func rtsRig(positions ...geom.Point) *rig {
	r := newRig(positions...)
	for _, m := range r.macs {
		m.SetRTSThreshold(1)
	}
	return r
}

func TestRTSCTSExchangeDeliversData(t *testing.T) {
	r := rtsRig(geom.Point{X: 0}, geom.Point{X: 100})
	var got int
	r.macs[1].Receiver = ReceiverFunc(func(f *packet.Frame) {
		if f.Kind == packet.KindData {
			got++
		}
	})
	var done bool
	p := r.macs[0].Enqueue(dataFrame(0, 1), TxFuncs{Done: func() { done = true }})
	r.sched.Run()

	if got != 1 {
		t.Errorf("data delivered %d times, want 1", got)
	}
	if !done || p.Failed() {
		t.Errorf("exchange did not complete: done=%v failed=%v", done, p.Failed())
	}
	// Channel saw RTS + CTS + DATA + ACK = 4 transmissions.
	if tx := r.ch.Stats().Transmissions; tx != 4 {
		t.Errorf("transmissions = %d, want 4 (RTS,CTS,DATA,ACK)", tx)
	}
}

func TestControlFramesInvisibleToHost(t *testing.T) {
	r := rtsRig(geom.Point{X: 0}, geom.Point{X: 100}, geom.Point{X: 200})
	var kinds []packet.Kind
	r.macs[2].Receiver = ReceiverFunc(func(f *packet.Frame) { kinds = append(kinds, f.Kind) })
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) {})
	r.macs[0].Enqueue(dataFrame(0, 1), nil)
	r.sched.Run()
	for _, k := range kinds {
		if k == packet.KindRTS || k == packet.KindCTS || k == packet.KindAck {
			t.Errorf("control frame %v leaked to the host layer", k)
		}
	}
}

// TestHiddenTerminalProtection is the textbook scenario: A and C cannot
// hear each other but both reach B. Without RTS/CTS, C's transmission
// can collide with A's at B; with RTS/CTS, C overhears B's CTS, sets its
// NAV, and defers.
func TestHiddenTerminalProtection(t *testing.T) {
	// A at 0, B at 450, C at 900: A and C are hidden from each other.
	r := rtsRig(geom.Point{X: 0}, geom.Point{X: 450}, geom.Point{X: 900})
	var dataAtB int
	r.macs[1].Receiver = ReceiverFunc(func(f *packet.Frame) {
		if f.Kind == packet.KindData {
			dataAtB++
		}
	})
	// A starts a long unicast to B; shortly after A's data is in the
	// air, C wants to send to B too.
	r.macs[0].Enqueue(dataFrame(0, 1), nil)
	r.sched.After(400*sim.Microsecond, func() {
		r.macs[2].Enqueue(dataFrame(2, 1), nil)
	})
	r.sched.Run()

	if dataAtB != 2 {
		t.Errorf("B decoded %d data frames, want both (NAV should serialize)", dataAtB)
	}
	// With the reservation working, first attempts mostly succeed; allow
	// a retry or two but not a full retry storm.
	retries := r.macs[0].Stats().Retries + r.macs[2].Stats().Retries
	if retries > 2 {
		t.Errorf("hidden terminals retried %d times despite RTS/CTS", retries)
	}
}

// TestHiddenTerminalWithoutRTSCollides is the control: the same scenario
// with the exchange disabled needs retries (first data copies collide).
func TestHiddenTerminalWithoutRTSCollides(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 450}, geom.Point{X: 900})
	var dataAtB int
	r.macs[1].Receiver = ReceiverFunc(func(f *packet.Frame) {
		if f.Kind == packet.KindData {
			dataAtB++
		}
	})
	r.macs[0].Enqueue(dataFrame(0, 1), nil)
	r.sched.After(400*sim.Microsecond, func() {
		r.macs[2].Enqueue(dataFrame(2, 1), nil)
	})
	r.sched.Run()

	// ARQ still saves the day eventually...
	if dataAtB != 2 {
		t.Errorf("B decoded %d data frames even with ARQ", dataAtB)
	}
	// ...but only by retrying after the initial collision.
	retries := r.macs[0].Stats().Retries + r.macs[2].Stats().Retries
	if retries == 0 {
		t.Error("expected at least one retry without RTS/CTS (hidden-terminal collision)")
	}
}

func TestNAVDefersThirdParty(t *testing.T) {
	// All three in mutual range. While 0 talks to 1 under RTS/CTS, host
	// 2's broadcast must wait for the reservation to end.
	r := rtsRig(geom.Point{X: 0}, geom.Point{X: 100}, geom.Point{X: 200})
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) {})
	tm := r.ch.Timing()

	var exchangeEnd, bStart sim.Time
	r.macs[0].Enqueue(dataFrame(0, 1), TxFuncs{Start: func() {
		// OnStart fires when the RTS goes on the air. Enqueue host 2's
		// broadcast just after the CTS completes, when its NAV is set
		// but the data frame has not started yet.
		ctsEnd := tm.Airtime(packet.RTSBytes) + tm.SIFS + tm.Airtime(packet.CTSBytes)
		r.sched.After(ctsEnd+4*sim.Microsecond, func() {
			r.macs[2].Enqueue(frame(2, 1), TxFuncs{Start: func() { bStart = r.sched.Now() }})
		})
	}, Done: func() {
		// Data done; ACK still follows (SIFS + ACK airtime).
		exchangeEnd = r.sched.Now().Add(tm.SIFS + tm.Airtime(packet.AckBytes))
	}})
	r.sched.Run()

	if bStart == 0 || exchangeEnd == 0 {
		t.Fatal("transmissions did not complete")
	}
	if bStart < exchangeEnd {
		t.Errorf("third party transmitted at %v inside the reservation (ends %v)", bStart, exchangeEnd)
	}
}

func TestBroadcastIgnoresRTSThreshold(t *testing.T) {
	r := rtsRig(geom.Point{X: 0}, geom.Point{X: 100})
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) {})
	r.macs[0].Enqueue(frame(0, 1), nil)
	r.sched.Run()
	// Just the broadcast itself: no RTS, no CTS, no ACK.
	if tx := r.ch.Stats().Transmissions; tx != 1 {
		t.Errorf("broadcast produced %d transmissions, want 1", tx)
	}
}

func TestRTSToAbsentHostDrops(t *testing.T) {
	r := rtsRig(geom.Point{X: 0}, geom.Point{X: 5000})
	p := r.macs[0].Enqueue(dataFrame(0, 1), nil)
	r.sched.Run()
	if !p.Failed() {
		t.Error("unanswered RTS did not fail the frame")
	}
	if r.macs[0].Stats().Retries != RetryLimit {
		t.Errorf("retries = %d, want %d", r.macs[0].Stats().Retries, RetryLimit)
	}
}
