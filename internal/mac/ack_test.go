package mac

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

func dataFrame(src, dst packet.NodeID) *packet.Frame {
	return packet.NewData(src, dst, 100, "payload", geom.Point{})
}

func TestUnicastGetsAcked(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	var delivered int
	r.macs[1].Receiver = ReceiverFunc(func(f *packet.Frame) {
		if f.Kind != packet.KindData {
			t.Errorf("host layer saw %v frame", f.Kind)
		}
		delivered++
	})
	var done bool
	p := r.macs[0].Enqueue(dataFrame(0, 1), TxFuncs{Done: func() { done = true }})
	r.sched.Run()

	if delivered != 1 {
		t.Errorf("delivered %d, want 1", delivered)
	}
	if !done {
		t.Error("sender's OnDone never fired")
	}
	if p.Failed() {
		t.Error("acked frame marked failed")
	}
	if r.macs[1].Stats().AcksSent != 1 {
		t.Errorf("receiver sent %d ACKs, want 1", r.macs[1].Stats().AcksSent)
	}
	if r.macs[0].Stats().Retries != 0 {
		t.Errorf("sender retried %d times despite clean channel", r.macs[0].Stats().Retries)
	}
}

func TestAcksInvisibleToHostLayer(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	var kinds []packet.Kind
	r.macs[0].Receiver = ReceiverFunc(func(f *packet.Frame) { kinds = append(kinds, f.Kind) })
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) {})
	r.macs[0].Enqueue(dataFrame(0, 1), nil)
	r.sched.Run()
	for _, k := range kinds {
		if k == packet.KindAck {
			t.Error("ACK leaked to the host layer")
		}
	}
}

func TestUnicastToAbsentHostRetriesAndDrops(t *testing.T) {
	// Destination out of range: no ACK ever comes back.
	r := newRig(geom.Point{X: 0}, geom.Point{X: 5000})
	var done bool
	p := r.macs[0].Enqueue(dataFrame(0, 1), TxFuncs{Done: func() { done = true }})
	r.sched.Run()

	if !p.Failed() {
		t.Error("unreachable unicast not marked failed")
	}
	if !done {
		t.Error("OnDone not fired on drop")
	}
	st := r.macs[0].Stats()
	if st.Retries != RetryLimit {
		t.Errorf("retries = %d, want %d", st.Retries, RetryLimit)
	}
	if st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
	// 1 initial + RetryLimit retransmissions.
	if st.Sent != 1+RetryLimit {
		t.Errorf("sent = %d, want %d", st.Sent, 1+RetryLimit)
	}
}

func TestOnStartFiresOnceAcrossRetries(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 5000})
	starts := 0
	r.macs[0].Enqueue(dataFrame(0, 1), TxFuncs{Start: func() { starts++ }})
	r.sched.Run()
	if starts != 1 {
		t.Errorf("OnStart fired %d times across retries, want 1", starts)
	}
}

func TestBroadcastNeverAwaitsAck(t *testing.T) {
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100})
	r.macs[1].Receiver = ReceiverFunc(func(*packet.Frame) {})
	r.macs[0].Enqueue(frame(0, 1), nil)
	r.sched.Run()
	st := r.macs[0].Stats()
	if st.Retries != 0 || st.Dropped != 0 {
		t.Errorf("broadcast frame entered the ARQ path: %+v", st)
	}
	if r.macs[1].Stats().AcksSent != 0 {
		t.Error("broadcast was acknowledged")
	}
}

func TestUnicastChainUnderContention(t *testing.T) {
	// Three hosts in range; 0 and 2 both unicast to 1 while a broadcast
	// storm runs. With ARQ every data frame must eventually arrive.
	r := newRig(geom.Point{X: 0}, geom.Point{X: 100}, geom.Point{X: 200})
	got := map[packet.NodeID]int{}
	r.macs[1].Receiver = ReceiverFunc(func(f *packet.Frame) {
		if f.Kind == packet.KindData && f.Dest == 1 {
			got[f.Sender]++
		}
	})
	r.macs[2].Receiver = ReceiverFunc(func(*packet.Frame) {})
	r.macs[0].Receiver = ReceiverFunc(func(*packet.Frame) {})
	for i := 0; i < 5; i++ {
		r.macs[0].Enqueue(dataFrame(0, 1), nil)
		r.macs[2].Enqueue(dataFrame(2, 1), nil)
		r.macs[1].Enqueue(frame(1, uint32(i)), nil) // interfering broadcasts
	}
	r.sched.Run()
	if got[0] != 5 || got[2] != 5 {
		t.Errorf("unicasts delivered: from0=%d from2=%d, want 5 each (ARQ)", got[0], got[2])
	}
}

func TestSetAddr(t *testing.T) {
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
	m := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{} }), sim.NewRNG(1))
	if m.Addr() != packet.NodeID(m.Radio()) {
		t.Error("default addr != radio index")
	}
	m.SetAddr(42)
	if m.Addr() != 42 {
		t.Error("SetAddr failed")
	}
}
