// Package mac implements the IEEE 802.11-like distributed coordination
// function (DCF) the paper's hosts use to access the medium: carrier
// sense with DIFS deferral, a slotted random backoff that freezes while
// the medium is busy, and plain unacknowledged transmission for broadcast
// frames (no RTS/CTS, no ACK, no retransmission — the MAC specification
// forbids acknowledging broadcasts).
//
// A MAC owns one radio on a phy.Channel. Higher layers enqueue frames;
// the MAC calls back when a frame's transmission actually starts — the
// point after which the paper's schemes can no longer cancel a pending
// rebroadcast — and when it completes. Frames still waiting for the
// medium can be cancelled, which is how the threshold schemes inhibit
// redundant rebroadcasts.
package mac

import (
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// TxObserver is notified about an enqueued frame's transmission:
// TxStarted runs at the instant the transmission begins (the frame is
// "on the air" and can no longer be cancelled); TxDone runs when the
// transmission ends (or a unicast frame is abandoned). Callers with a
// natural per-frame record implement it on that record — an interface
// value of an existing object costs nothing, where the closure pair it
// replaces cost two allocations per enqueue site.
type TxObserver interface {
	TxStarted()
	TxDone()
}

// TxFuncs adapts bare functions to TxObserver for call sites without a
// record type; either field may be nil.
type TxFuncs struct {
	Start, Done func()
}

// TxStarted implements TxObserver.
func (t TxFuncs) TxStarted() {
	if t.Start != nil {
		t.Start()
	}
}

// TxDone implements TxObserver.
func (t TxFuncs) TxDone() {
	if t.Done != nil {
		t.Done()
	}
}

// Pending is a frame handed to the MAC and not yet fully transmitted.
type Pending struct {
	Frame *packet.Frame

	// obs observes the transmission start and end (may be nil).
	obs TxObserver

	cancelled  bool
	started    bool
	failed     bool
	retransmit bool // true when requeued after a missing ACK
}

// Started reports whether the frame's transmission has begun.
func (p *Pending) Started() bool { return p.started }

// Cancelled reports whether the frame was cancelled before transmission.
func (p *Pending) Cancelled() bool { return p.cancelled }

// Failed reports whether a unicast frame exhausted its retransmissions
// without being acknowledged.
func (p *Pending) Failed() bool { return p.failed }

// Stats counts per-MAC activity.
type Stats struct {
	Enqueued  int
	Sent      int // transmissions started, including retransmissions
	Cancelled int
	AcksSent  int // link-layer ACKs transmitted for received unicasts
	Retries   int // unicast retransmissions after a missing ACK
	Dropped   int // unicast frames abandoned after RetryLimit retries
	Stalls    int // scheduled attempts frozen by carrier (contention events)
}

// RetryLimit is the number of retransmissions a unicast frame gets
// before the MAC abandons it (the 802.11 short retry limit is 7; a
// smaller value keeps simulated storms from compounding).
const RetryLimit = 4

// Auditor is the MAC's view of the runtime invariant auditor
// (implemented by internal/check.Auditor): it tracks the Pending-record
// pool so a double-release or use-after-release of a recycled record is
// reported instead of silently corrupting a later frame. Declared here
// as a narrow interface so mac does not depend on the auditor package;
// a nil Auditor (the default) costs one branch per hook point.
type Auditor interface {
	AuditAcquire(at sim.Time, pool string, rec any)
	AuditRelease(at sim.Time, pool string, rec any)
	AuditUse(at sim.Time, pool string, rec any)
}

// MAC is the per-host medium access controller. It implements
// phy.Listener; the host's upper layer receives frames through the
// Receiver callback.
type MAC struct {
	sched *sim.Scheduler
	ch    *phy.Channel
	radio int
	addr  packet.NodeID // link-layer address (the owning host's id)
	rng   *sim.RNG
	t     phy.Timing
	stats Stats
	cw    int // current contention window (grows on retries)

	// Receiver, if set, receives every intact frame delivered to this
	// radio. GarbledReceiver, if set, receives collided frames. Both are
	// interfaces rather than function fields so a host implementing them
	// attaches itself without allocating bound closures.
	Receiver        FrameReceiver
	GarbledReceiver GarbledReceiver

	// queue[qhead:] is the FIFO of waiting frames; consuming by index
	// instead of reslicing keeps the backing array's capacity, so a
	// steady-state MAC stops allocating queue storage.
	queue        []*Pending
	qhead        int
	transmitting bool

	// Opt-in Pending recycling (SetPendingPool) plus closures bound once
	// at construction, so the per-frame path allocates nothing beyond the
	// record itself (and not even that with the pool on).
	pendingPool bool
	pFree       []*Pending
	// audit, when non-nil, observes the Pending pool lifecycle (SetAudit).
	audit    Auditor
	inflight *Pending // the frame whose airtime end txEnd awaits
	// The MAC schedules its own attempt timer as a sim.Runner and its
	// response timeout through respTimer; txEnd and rtsEnd are the
	// airtime-completion handlers the channel calls back through. All
	// are embedded values, so arming a timer or handing &m.txEnd to
	// Transmit allocates nothing.
	respTimer respTimer
	txEnd     dataEnd
	rtsEnd    rtsEnd
	ack       ackSend

	// The delayed link-layer ACK owed after receiving unicast data: the
	// armed SIFS timer and its destination. At most one is pending —
	// a second data frame cannot end within SIFS of the first without
	// the two having collided.
	ackTimer *sim.Event
	ackTo    packet.NodeID

	busy      bool
	idleSince sim.Time

	// backoffRemaining is the frozen residual backoff in slots; -1 means
	// no backoff is owed and the MAC may use immediate access after DIFS.
	backoffRemaining int

	// awaiting is the unicast frame whose control response (CTS or ACK)
	// we are waiting for, with its timeout event and retry count.
	awaiting   *Pending
	awaitKind  awaitKind
	awaitTimer *sim.Event
	retries    int

	// rtsThreshold enables RTS/CTS for unicast data frames of at least
	// this many bytes; 0 disables the exchange entirely.
	rtsThreshold int
	// navUntil is the network allocation vector: overheard RTS/CTS
	// reservations keep the (virtual) medium busy until this time.
	navUntil sim.Time
	navEvent *sim.Event

	// lane is the speculative lane owning this MAC's host, -1 (the
	// default) outside the speculative engine. Hot-path timers route
	// through the scheduler's Lane* entry points with it, which fall
	// through to the shared path whenever no window is open.
	lane int

	// A scheduled future transmission attempt, if any.
	txEvent *sim.Event
	// txEventBase/txEventSlots reconstruct consumed slots if the attempt
	// is interrupted by carrier. txEventSlots == -1 marks an
	// immediate-access attempt (no backoff in progress).
	txEventBase  sim.Time
	txEventSlots int
}

// awaitKind discriminates what control frame the MAC is waiting for.
type awaitKind int

const (
	awaitNone awaitKind = iota
	awaitCTS
	awaitACK
)

// FrameReceiver is the upper layer's intake for intact frames.
type FrameReceiver interface {
	ReceiveFrame(f *packet.Frame)
}

// ReceiverFunc adapts a function to FrameReceiver.
type ReceiverFunc func(f *packet.Frame)

// ReceiveFrame implements FrameReceiver.
func (fn ReceiverFunc) ReceiveFrame(f *packet.Frame) { fn(f) }

// GarbledReceiver is the upper layer's intake for collided frames.
type GarbledReceiver interface {
	ReceiveGarbled(f *packet.Frame)
}

// GarbledFunc adapts a function to GarbledReceiver.
type GarbledFunc func(f *packet.Frame)

// ReceiveGarbled implements GarbledReceiver.
func (fn GarbledFunc) ReceiveGarbled(f *packet.Frame) { fn(f) }

var _ phy.Listener = (*MAC)(nil)

// New attaches a new MAC to the channel at the given position provider.
// Its link-layer address defaults to its radio index (which is also how
// the host assemblies number their hosts); SetAddr overrides it.
func New(sched *sim.Scheduler, ch *phy.Channel, pos phy.Positioner, rng *sim.RNG) *MAC {
	m := &MAC{
		sched:            sched,
		ch:               ch,
		rng:              rng,
		t:                ch.Timing(),
		backoffRemaining: -1,
		idleSince:        sched.Now(),
		lane:             -1,
	}
	m.cw = m.t.CWMin
	m.radio = ch.Attach(pos, m)
	m.addr = packet.NodeID(m.radio)
	m.respTimer.m = m
	m.txEnd.m = m
	m.rtsEnd.m = m
	m.ack.m = m
	return m
}

// dataEnd completes the in-flight data/broadcast frame at airtime end.
type dataEnd struct{ m *MAC }

// TxEnded implements phy.TxEnder.
func (e *dataEnd) TxEnded() { e.m.finishTransmission(e.m.inflight) }

// rtsEnd arms the CTS timeout when the in-flight RTS's airtime ends.
type rtsEnd struct{ m *MAC }

// TxEnded implements phy.TxEnder.
func (e *rtsEnd) TxEnded() { e.m.finishRTS(e.m.inflight) }

// NewInto initializes a slab-allocated MAC in place, filling a radio
// slot pre-claimed with phy.Channel.AttachBatch. Behavior is identical
// to New; the split exists so the sharded engine can construct hosts in
// parallel — SetRadio writes are per-slot and therefore disjoint across
// workers, unlike Attach's shared appends.
func NewInto(m *MAC, sched *sim.Scheduler, ch *phy.Channel, pos phy.Positioner, rng *sim.RNG, radio int) {
	*m = MAC{
		sched:            sched,
		ch:               ch,
		rng:              rng,
		t:                ch.Timing(),
		backoffRemaining: -1,
		idleSince:        sched.Now(),
		radio:            radio,
		addr:             packet.NodeID(radio),
		lane:             -1,
	}
	m.cw = m.t.CWMin
	ch.SetRadio(radio, pos, m)
	m.respTimer.m = m
	m.txEnd.m = m
	m.rtsEnd.m = m
	m.ack.m = m
}

// SetPendingPool enables recycling of Pending records once their frame
// completes or is cancelled. Callers that enable it must not read a
// handle after its transmission completed or after they cancelled it —
// the record may already describe a later frame. The host layers
// satisfy this (handles are only consulted while the rebroadcast
// decision is open); code that inspects handles after the run must
// leave the pool off.
func (m *MAC) SetPendingPool(on bool) { m.pendingPool = on }

// SetAudit attaches an invariant auditor observing the Pending-record
// pool. A nil auditor (the default) leaves the MAC unaudited.
func (m *MAC) SetAudit(a Auditor) { m.audit = a }

// allocPending takes a record off the free list or allocates one.
func (m *MAC) allocPending(f *packet.Frame, obs TxObserver) *Pending {
	var p *Pending
	if l := len(m.pFree); l > 0 {
		p = m.pFree[l-1]
		m.pFree[l-1] = nil
		m.pFree = m.pFree[:l-1]
		*p = Pending{Frame: f, obs: obs}
	} else {
		p = &Pending{Frame: f, obs: obs}
	}
	if m.audit != nil {
		m.audit.AuditAcquire(m.sched.Now(), "mac.pending", p)
	}
	return p
}

// recyclePending returns a finished record to the free list (pool on).
// Callback and frame references are dropped immediately; state flags
// keep reporting the final outcome until the record is reused.
func (m *MAC) recyclePending(p *Pending) {
	if !m.pendingPool {
		return
	}
	if m.audit != nil {
		m.audit.AuditRelease(m.sched.Now(), "mac.pending", p)
	}
	p.Frame = nil
	p.obs = nil
	m.pFree = append(m.pFree, p)
}

// SetAddr sets the link-layer address unicast destinations are matched
// against (and ACKs are sourced from).
func (m *MAC) SetAddr(a packet.NodeID) { m.addr = a }

// SetRTSThreshold enables the RTS/CTS exchange for unicast data frames
// of at least threshold bytes (0 disables it, the default). Broadcast
// frames never use RTS/CTS — the paper's point about why broadcast
// collisions are unavoidable.
func (m *MAC) SetRTSThreshold(threshold int) { m.rtsThreshold = threshold }

// Addr returns the link-layer address.
func (m *MAC) Addr() packet.NodeID { return m.addr }

// Radio returns the channel radio index of this MAC.
func (m *MAC) Radio() int { return m.radio }

// SetLane assigns the speculative lane owning this MAC (-1 detaches).
// The speculative engine sets it once per static world; it must equal
// the band of the owning host's position.
func (m *MAC) SetLane(lane int) { m.lane = lane }

// Lane returns the speculative lane owning this MAC, -1 if none.
func (m *MAC) Lane() int { return m.lane }

// now returns the clock this MAC observes: its lane clock while a
// speculative window is open, the shared clock otherwise.
func (m *MAC) now() sim.Time { return m.sched.LaneNow(m.lane) }

// Stats returns the MAC counters.
func (m *MAC) Stats() Stats { return m.stats }

// QueueLen returns the number of frames waiting (not yet on the air).
func (m *MAC) QueueLen() int {
	n := 0
	for _, p := range m.queue[m.qhead:] {
		if !p.cancelled {
			n++
		}
	}
	return n
}

// Enqueue submits a frame for transmission and returns its handle. obs
// (which may be nil) observes the transmission's start and end.
func (m *MAC) Enqueue(f *packet.Frame, obs TxObserver) *Pending {
	p := m.allocPending(f, obs)
	m.queue = append(m.queue, p)
	m.stats.Enqueued++
	// A frame arriving to a busy medium owes a fresh backoff draw, per
	// the DCF access rules.
	if m.busy && m.backoffRemaining < 0 {
		m.backoffRemaining = m.drawBackoff()
	}
	m.maybeSchedule()
	return p
}

// Cancel withdraws a frame that has not started transmitting. It returns
// true if the frame was cancelled, false if transmission already began.
func (m *MAC) Cancel(p *Pending) bool {
	if p == nil || p.started {
		return false
	}
	if p.cancelled {
		return true
	}
	p.cancelled = true
	m.stats.Cancelled++
	// If this was the head frame with a pending attempt, retract the
	// attempt; the residual backoff is preserved for the next frame.
	if m.txEvent != nil && m.headPending() == nil {
		m.interruptAttempt(false)
	}
	m.maybeSchedule()
	return true
}

// headPending returns the first non-cancelled queued frame, trimming
// cancelled entries from the front.
func (m *MAC) headPending() *Pending {
	for m.qhead < len(m.queue) && m.queue[m.qhead].cancelled {
		m.recyclePending(m.queue[m.qhead])
		m.queue[m.qhead] = nil
		m.qhead++
	}
	if m.qhead == len(m.queue) {
		m.queue = m.queue[:0]
		m.qhead = 0
		return nil
	}
	return m.queue[m.qhead]
}

// drawBackoff samples a fresh backoff in [0, cw] slots. The contention
// window starts at CWMin and doubles on unicast retransmissions up to
// CWMax, per the DCF's binary exponential backoff; broadcast frames are
// never retransmitted and always see CWMin.
func (m *MAC) drawBackoff() int {
	return m.rng.IntN(m.cw + 1)
}

// growCW doubles the contention window after a missing ACK.
func (m *MAC) growCW() {
	m.cw = (m.cw+1)*2 - 1
	if m.cw > m.t.CWMax {
		m.cw = m.t.CWMax
	}
}

// resetCW restores the contention window after success or drop.
func (m *MAC) resetCW() { m.cw = m.t.CWMin }

// maybeSchedule arranges the next transmission attempt if conditions
// allow: a frame is queued, nothing is being transmitted, no attempt is
// already scheduled, and the medium is idle.
func (m *MAC) maybeSchedule() {
	if m.transmitting || m.awaiting != nil || m.txEvent != nil || m.busy {
		return
	}
	if m.now() < m.navUntil {
		return // virtual carrier (NAV) still set; navEvent will resume us
	}
	if m.headPending() == nil {
		return
	}
	now := m.now()
	effStart := m.idleSince.Add(m.t.DIFS)

	if m.backoffRemaining < 0 {
		if now >= effStart {
			// Immediate access: the medium has already been idle for at
			// least DIFS, so the frame goes out right away.
			m.txEventBase = now
			m.txEventSlots = -1
			m.txEvent = m.sched.LaneScheduleRunner(m.lane, now, m)
			return
		}
		// The medium has not been idle long enough: the DCF requires a
		// full deferral with a fresh random backoff. This is what
		// desynchronizes the neighbors of a sender, who all see the
		// medium free at the same instant when its frame ends.
		m.backoffRemaining = m.drawBackoff()
	}

	// Backoff countdown: slots elapse only while the medium has been
	// idle longer than DIFS, so credit any already-elapsed idle slots.
	if now > effStart {
		consumed := int(now.Sub(effStart) / m.t.SlotTime)
		if consumed > m.backoffRemaining {
			consumed = m.backoffRemaining
		}
		m.backoffRemaining -= consumed
		effStart = now
	}
	at := effStart.Add(sim.Duration(m.backoffRemaining) * m.t.SlotTime)
	m.txEventBase = effStart
	m.txEventSlots = m.backoffRemaining
	m.txEvent = m.sched.LaneScheduleRunner(m.lane, at, m)
}

// interruptAttempt cancels the scheduled attempt. If freeze is true the
// residual backoff is recomputed from elapsed slots (carrier interrupted
// us); otherwise the residual is left as is (head frame was cancelled).
func (m *MAC) interruptAttempt(freeze bool) {
	if m.txEvent == nil {
		return
	}
	m.sched.LaneCancel(m.lane, m.txEvent)
	m.txEvent = nil
	if !freeze {
		if m.txEventSlots >= 0 {
			m.backoffRemaining = m.txEventSlots
		}
		return
	}
	now := m.now()
	if m.txEventSlots < 0 {
		// Immediate access was interrupted: the frame now owes a real
		// backoff, per DCF.
		m.backoffRemaining = m.drawBackoff()
		return
	}
	consumed := 0
	if now > m.txEventBase {
		consumed = int(now.Sub(m.txEventBase) / m.t.SlotTime)
	}
	if consumed > m.txEventSlots {
		consumed = m.txEventSlots
	}
	m.backoffRemaining = m.txEventSlots - consumed
}

// startTransmission fires when deferral and backoff have elapsed.
func (m *MAC) startTransmission() {
	m.txEvent = nil
	p := m.headPending()
	if p == nil {
		return
	}
	m.queue[m.qhead] = nil
	m.qhead++
	if m.qhead == len(m.queue) {
		m.queue = m.queue[:0]
		m.qhead = 0
	}
	m.transmitting = true
	m.backoffRemaining = -1
	p.started = true
	m.stats.Sent++
	if m.audit != nil {
		m.audit.AuditUse(m.sched.Now(), "mac.pending", p)
	}
	if p.obs != nil && !p.retransmit {
		p.obs.TxStarted()
	}
	// At most one transmission with a completion callback is outstanding
	// per MAC (guarded by m.transmitting), so the bound finish closures
	// can read the frame from m.inflight instead of capturing it.
	m.inflight = p
	if m.useRTS(p.Frame) {
		// Reserve the medium first: RTS now, data after the CTS.
		nav := m.exchangeNAV(p.Frame)
		rts := packet.NewRTS(m.addr, p.Frame.Dest, nav, m.ch.PositionOf(m.radio))
		m.ch.Transmit(m.radio, rts, &m.rtsEnd)
		return
	}
	m.ch.TransmitLane(m.radio, p.Frame, &m.txEnd, m.lane)
}

// useRTS reports whether the frame warrants an RTS/CTS exchange.
func (m *MAC) useRTS(f *packet.Frame) bool {
	return m.rtsThreshold > 0 && f.Dest != packet.DestBroadcast &&
		f.Kind == packet.KindData && f.Bytes >= m.rtsThreshold
}

// exchangeNAV is the reservation an RTS announces: CTS + data + ACK and
// the three SIFS gaps between them.
func (m *MAC) exchangeNAV(f *packet.Frame) sim.Duration {
	return 3*m.t.SIFS + m.t.Airtime(packet.CTSBytes) +
		m.t.Airtime(f.Bytes) + m.t.Airtime(packet.AckBytes)
}

// finishRTS arms the CTS timeout after the RTS airtime ends.
func (m *MAC) finishRTS(p *Pending) {
	m.transmitting = false
	m.awaiting = p
	m.awaitKind = awaitCTS
	timeout := m.t.SIFS + m.t.Airtime(packet.CTSBytes) + 2*m.t.SlotTime
	m.awaitTimer = m.sched.AfterRunner(timeout, &m.respTimer)
}

// finishTransmission runs at airtime end. Broadcast (and ACK) frames
// complete immediately with the DCF's post-transmission backoff; unicast
// data frames instead arm the ACK timeout.
func (m *MAC) finishTransmission(p *Pending) {
	m.transmitting = false
	if m.audit != nil {
		m.audit.AuditUse(m.sched.Now(), "mac.pending", p)
	}
	if p.Frame.Dest != packet.DestBroadcast && p.Frame.Kind != packet.KindAck {
		m.awaiting = p
		m.awaitKind = awaitACK
		// The ACK arrives SIFS + ACK airtime after our frame ends; allow
		// two slots of slack before declaring it missing.
		timeout := m.t.SIFS + m.t.Airtime(packet.AckBytes) + 2*m.t.SlotTime
		m.awaitTimer = m.sched.AfterRunner(timeout, &m.respTimer)
		return
	}
	m.backoffRemaining = m.drawBackoff()
	if p.obs != nil {
		p.obs.TxDone()
	}
	m.recyclePending(p)
	m.maybeSchedule()
}

// RunEvent fires a scheduled transmission attempt: the MAC schedules
// itself as a sim.Runner so arming the attempt timer never allocates.
func (m *MAC) RunEvent() { m.startTransmission() }

// respTimer adapts the response-timeout callback to sim.Runner; a
// value field on MAC, so arming the await timer is allocation-free.
type respTimer struct{ m *MAC }

func (r *respTimer) RunEvent() { r.m.responseTimeout() }

// responseTimeout fires when the awaited CTS or ACK never arrived:
// retry the whole exchange with a doubled contention window, or drop the
// frame after RetryLimit.
func (m *MAC) responseTimeout() {
	p := m.awaiting
	m.awaiting = nil
	m.awaitKind = awaitNone
	m.awaitTimer = nil
	if p == nil {
		return
	}
	if m.retries >= RetryLimit {
		m.retries = 0
		m.resetCW()
		p.failed = true
		m.stats.Dropped++
		m.backoffRemaining = m.drawBackoff()
		if p.obs != nil {
			p.obs.TxDone()
		}
		m.recyclePending(p)
		m.maybeSchedule()
		return
	}
	m.retries++
	m.stats.Retries++
	m.growCW()
	m.backoffRemaining = m.drawBackoff()
	p.retransmit = true
	// Reinsert at the head: the DCF retries the same frame first.
	if m.qhead > 0 {
		m.qhead--
		m.queue[m.qhead] = p
	} else {
		m.queue = append(m.queue, nil)
		copy(m.queue[1:], m.queue)
		m.queue[0] = p
	}
	m.maybeSchedule()
}

// ackReceived completes the awaited unicast frame successfully.
func (m *MAC) ackReceived() {
	p := m.awaiting
	m.awaiting = nil
	m.awaitKind = awaitNone
	if m.awaitTimer != nil {
		m.sched.Cancel(m.awaitTimer)
		m.awaitTimer = nil
	}
	m.retries = 0
	m.resetCW()
	m.backoffRemaining = m.drawBackoff()
	if p != nil {
		if p.obs != nil {
			p.obs.TxDone()
		}
		m.recyclePending(p)
	}
	m.maybeSchedule()
}

// ctsReceived sends the reserved data frame SIFS after the CTS.
func (m *MAC) ctsReceived() {
	p := m.awaiting
	m.awaiting = nil
	m.awaitKind = awaitNone
	if m.awaitTimer != nil {
		m.sched.Cancel(m.awaitTimer)
		m.awaitTimer = nil
	}
	if p == nil {
		return
	}
	m.sched.After(m.t.SIFS, func() {
		if m.transmitting {
			return // pathological overlap; the ACK timeout will retry
		}
		m.transmitting = true
		m.ch.Transmit(m.radio, p.Frame, phy.TxEndFunc(func() { m.finishTransmission(p) }))
	})
}

// setNAV extends the virtual carrier reservation after overhearing an
// RTS or CTS addressed to someone else.
func (m *MAC) setNAV(until sim.Time) {
	now := m.sched.Now()
	if until <= now || until <= m.navUntil {
		return
	}
	m.navUntil = until
	if m.txEvent != nil {
		m.interruptAttempt(true)
	}
	if m.navEvent != nil {
		m.sched.Cancel(m.navEvent)
	}
	m.navEvent = m.sched.Schedule(until, func() {
		m.navEvent = nil
		if !m.busy {
			// The DIFS deferral restarts when the reservation releases.
			m.idleSince = m.sched.Now()
			m.maybeSchedule()
		}
	})
}

// sendCTS grants a reservation SIFS after the RTS.
func (m *MAC) sendCTS(to packet.NodeID, nav sim.Duration) {
	m.sched.After(m.t.SIFS, func() {
		if m.transmitting {
			return
		}
		grant := nav - m.t.SIFS - m.t.Airtime(packet.CTSBytes)
		if grant < 0 {
			grant = 0
		}
		cts := packet.NewCTS(m.addr, to, grant, m.ch.PositionOf(m.radio))
		m.ch.Transmit(m.radio, cts, nil)
	})
}

// ackSend adapts the delayed-ACK callback to sim.Runner; a value field
// on MAC, so arming the SIFS timer is allocation-free and the pending
// ACK is checkpointable state rather than a captured closure.
type ackSend struct{ m *MAC }

func (a *ackSend) RunEvent() { a.m.fireAck() }

// sendAck transmits the link-layer ACK after SIFS, bypassing the backoff
// machinery (SIFS precedence is what guarantees ACKs win the medium).
func (m *MAC) sendAck(to packet.NodeID) {
	if m.ackTimer != nil {
		// Unreachable with a physical channel (a second data frame
		// cannot end within SIFS of the first without colliding), but a
		// direct Deliver must not leak the old timer.
		m.sched.Cancel(m.ackTimer)
	}
	m.ackTo = to
	m.ackTimer = m.sched.AfterRunner(m.t.SIFS, &m.ack)
}

// fireAck puts the owed ACK on the air when its SIFS gap elapses.
func (m *MAC) fireAck() {
	m.ackTimer = nil
	if m.transmitting {
		return // pathological overlap; drop the ACK
	}
	m.stats.AcksSent++
	ack := packet.NewAck(m.addr, m.ackTo, m.ch.PositionOf(m.radio))
	m.ch.Transmit(m.radio, ack, nil)
}

// CarrierBusy implements phy.Listener.
func (m *MAC) CarrierBusy() {
	m.busy = true
	if m.txEvent != nil {
		m.stats.Stalls++
		m.interruptAttempt(true)
	}
}

// CarrierIdle implements phy.Listener.
func (m *MAC) CarrierIdle() {
	m.busy = false
	m.idleSince = m.now()
	m.maybeSchedule() // no-op while the NAV is still set
}

// Deliver implements phy.Listener.
func (m *MAC) Deliver(f *packet.Frame) {
	switch f.Kind {
	case packet.KindAck:
		if f.Dest == m.addr && m.awaitKind == awaitACK {
			m.ackReceived()
		}
		return // control frames never reach the host layer
	case packet.KindRTS:
		if f.Dest == m.addr {
			m.sendCTS(f.Sender, f.NAV)
		} else {
			m.setNAV(m.sched.Now().Add(f.NAV))
		}
		return
	case packet.KindCTS:
		if f.Dest == m.addr && m.awaitKind == awaitCTS {
			m.ctsReceived()
		} else if f.Dest != m.addr {
			m.setNAV(m.sched.Now().Add(f.NAV))
		}
		return
	}
	// Acknowledge unicast data addressed to us before handing it up.
	if f.Dest == m.addr && f.Kind == packet.KindData {
		m.sendAck(f.Sender)
	}
	if m.Receiver != nil {
		m.Receiver.ReceiveFrame(f)
	}
}

// DeliverGarbled implements phy.Listener.
func (m *MAC) DeliverGarbled(f *packet.Frame) {
	if m.GarbledReceiver != nil {
		m.GarbledReceiver.ReceiveGarbled(f)
	}
}
