package mac

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// BadRef is the sentinel a Snapshot resolver returns for an object it
// does not recognize; Snapshot aborts instead of recording a dangling
// reference. (Mirrors phy.BadRef; redeclared so mac's resolvers read
// naturally without importing phy at every call site.)
const BadRef = ^uint32(0)

// PendingState describes one Pending record in a MACState. Frame and
// observer are caller-defined references — the checkpointing layer owns
// the tables of live frames and of rebroadcast observers — and the
// outcome flags reproduce the record exactly, including a cancelled
// entry still waiting to be trimmed from the queue.
type PendingState struct {
	FrameRef   uint32
	ObsRef     uint32
	Started    bool
	Cancelled  bool
	Retransmit bool
}

// MACState is one MAC's checkpointed dynamic state: DCF counters and
// backoff, the waiting queue, the in-flight frame, the awaited ACK
// exchange, the owed link-layer ACK, and the (at, seq) keys of every
// armed timer. RTS/CTS state is deliberately absent — checkpointing a
// MAC with a reservation in progress is unsupported.
type MACState struct {
	Stats            Stats
	CW               int
	RNG              [4]uint64
	Busy             bool
	IdleSince        sim.Time
	BackoffRemaining int
	Retries          int

	// Queue holds the waiting frames from the head, including cancelled
	// entries not yet trimmed (their records are still pool-live).
	Queue []PendingState

	// The frame currently on the air, if any (its airtime-end callback
	// reads it back through the channel's completion handler).
	HasInflight bool
	Inflight    PendingState

	// The unicast frame whose ACK is awaited, with its timeout timer.
	HasAwait      bool
	Await         PendingState
	AwaitTimerAt  sim.Time
	AwaitTimerSeq uint64

	// A scheduled transmission attempt and its backoff reconstruction
	// state.
	HasTxEvent   bool
	TxEventAt    sim.Time
	TxEventSeq   uint64
	TxEventBase  sim.Time
	TxEventSlots int

	// The delayed link-layer ACK owed after a received unicast frame.
	HasAck bool
	AckTo  packet.NodeID
	AckAt  sim.Time
	AckSeq uint64

	FreeLen int
}

// DataEnder returns the airtime-completion handler this MAC hands to
// Channel.Transmit for data and broadcast frames, so the checkpointing
// layer can resolve an active flight's completion handler back to its
// owning MAC.
func (m *MAC) DataEnder() phy.TxEnder { return &m.txEnd }

// describePending translates one record through the caller's resolvers.
// A cancelled record's frame and observer may already be recycled by the
// layer that owns them and are never read again, so they are recorded as
// absent (the resolvers receive nil and return their none-reference).
func describePending(p *Pending, frameRef func(*packet.Frame) uint32, obsRef func(TxObserver) uint32) (PendingState, error) {
	st := PendingState{
		Started:    p.started,
		Cancelled:  p.cancelled,
		Retransmit: p.retransmit,
	}
	f, o := p.Frame, p.obs
	if p.cancelled {
		f, o = nil, nil
	} else if f == nil {
		return PendingState{}, fmt.Errorf("mac: live pending record without a frame")
	}
	if st.FrameRef = frameRef(f); st.FrameRef == BadRef {
		return PendingState{}, fmt.Errorf("mac: pending record carries an unknown frame")
	}
	if st.ObsRef = obsRef(o); st.ObsRef == BadRef {
		return PendingState{}, fmt.Errorf("mac: pending record has an unknown observer")
	}
	return st, nil
}

// Snapshot captures the MAC's state at a barrier. frameRef and obsRef
// translate frame pointers and transmission observers into
// caller-defined references (BadRef aborts). A MAC holding RTS/CTS
// state — a CTS await, a NAV reservation, or an enabled threshold —
// cannot be checkpointed.
func (m *MAC) Snapshot(frameRef func(*packet.Frame) uint32, obsRef func(TxObserver) uint32) (MACState, error) {
	switch {
	case m.rtsThreshold > 0:
		return MACState{}, fmt.Errorf("mac: checkpoint unsupported with RTS/CTS enabled")
	case m.navEvent != nil || m.awaitKind == awaitCTS:
		return MACState{}, fmt.Errorf("mac: checkpoint with RTS/CTS exchange in progress")
	case m.awaiting != nil && m.awaitTimer == nil:
		return MACState{}, fmt.Errorf("mac: awaited frame without a timeout timer")
	}
	st := MACState{
		Stats:            m.stats,
		CW:               m.cw,
		RNG:              m.rng.State(),
		Busy:             m.busy,
		IdleSince:        m.idleSince,
		BackoffRemaining: m.backoffRemaining,
		Retries:          m.retries,
		FreeLen:          len(m.pFree),
	}
	for _, p := range m.queue[m.qhead:] {
		ps, err := describePending(p, frameRef, obsRef)
		if err != nil {
			return MACState{}, err
		}
		st.Queue = append(st.Queue, ps)
	}
	if m.transmitting {
		ps, err := describePending(m.inflight, frameRef, obsRef)
		if err != nil {
			return MACState{}, err
		}
		st.HasInflight = true
		st.Inflight = ps
	}
	if m.awaiting != nil {
		ps, err := describePending(m.awaiting, frameRef, obsRef)
		if err != nil {
			return MACState{}, err
		}
		st.HasAwait = true
		st.Await = ps
		st.AwaitTimerAt = m.awaitTimer.At()
		st.AwaitTimerSeq = m.awaitTimer.Seq()
	}
	if m.txEvent != nil {
		st.HasTxEvent = true
		st.TxEventAt = m.txEvent.At()
		st.TxEventSeq = m.txEvent.Seq()
		st.TxEventBase = m.txEventBase
		st.TxEventSlots = m.txEventSlots
	}
	if m.ackTimer != nil {
		st.HasAck = true
		st.AckTo = m.ackTo
		st.AckAt = m.ackTimer.At()
		st.AckSeq = m.ackTimer.Seq()
	}
	return st, nil
}

// Restore rebuilds a freshly constructed (idle) MAC from a checkpointed
// state, re-arming its timers at their exact (at, seq) keys. frame and
// obs resolve the references Snapshot recorded; bound is invoked for
// every restored record with its observer reference, so the layer that
// holds Pending handles (the host's open rebroadcast decisions) can
// re-link them. Restored records are allocated fresh — the free list is
// pre-grown separately so pool behavior evolves as in the original run.
func (m *MAC) Restore(st MACState,
	frame func(uint32) *packet.Frame,
	obs func(uint32) TxObserver,
	bound func(ref uint32, p *Pending)) error {
	if len(m.queue) != 0 || m.transmitting || m.awaiting != nil ||
		m.txEvent != nil || m.ackTimer != nil || m.stats.Enqueued != 0 {
		return fmt.Errorf("mac: restore into a MAC with traffic history")
	}
	m.stats = st.Stats
	m.cw = st.CW
	m.rng.SetState(st.RNG)
	m.busy = st.Busy
	m.idleSince = st.IdleSince
	m.backoffRemaining = st.BackoffRemaining
	m.retries = st.Retries
	revive := func(ps PendingState) *Pending {
		p := &Pending{
			Frame:      frame(ps.FrameRef),
			obs:        obs(ps.ObsRef),
			started:    ps.Started,
			cancelled:  ps.Cancelled,
			retransmit: ps.Retransmit,
		}
		if m.audit != nil {
			m.audit.AuditAcquire(m.sched.Now(), "mac.pending", p)
		}
		bound(ps.ObsRef, p)
		return p
	}
	for _, ps := range st.Queue {
		p := revive(ps)
		if p.Frame == nil && !p.cancelled {
			return fmt.Errorf("mac: restore queued frame without its payload")
		}
		m.queue = append(m.queue, p)
	}
	if st.HasInflight {
		m.inflight = revive(st.Inflight)
		m.transmitting = true
	}
	if st.HasAwait {
		m.awaiting = revive(st.Await)
		m.awaitKind = awaitACK
		ev, err := m.sched.RestoreRunner(-1, st.AwaitTimerAt, st.AwaitTimerSeq, &m.respTimer)
		if err != nil {
			return fmt.Errorf("mac: restore response timeout: %w", err)
		}
		m.awaitTimer = ev
	}
	if st.HasTxEvent {
		ev, err := m.sched.RestoreRunner(-1, st.TxEventAt, st.TxEventSeq, m)
		if err != nil {
			return fmt.Errorf("mac: restore attempt timer: %w", err)
		}
		m.txEvent = ev
		m.txEventBase = st.TxEventBase
		m.txEventSlots = st.TxEventSlots
	}
	if st.HasAck {
		ev, err := m.sched.RestoreRunner(-1, st.AckAt, st.AckSeq, &m.ack)
		if err != nil {
			return fmt.Errorf("mac: restore delayed ACK: %w", err)
		}
		m.ackTimer = ev
		m.ackTo = st.AckTo
	}
	for len(m.pFree) < st.FreeLen {
		m.pFree = append(m.pFree, &Pending{})
	}
	m.pFree = m.pFree[:st.FreeLen]
	return nil
}

// PendingEvents returns how many scheduler events the MAC currently has
// armed (attempt timer, response timeout, delayed ACK), for the
// checkpoint exhaustiveness cross-check.
func (m *MAC) PendingEvents() int {
	n := 0
	if m.txEvent != nil {
		n++
	}
	if m.awaitTimer != nil {
		n++
	}
	if m.ackTimer != nil {
		n++
	}
	return n
}
