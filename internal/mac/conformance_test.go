package mac

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/packet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Conformance tests pin the DCF's exact inter-frame timing: a spying
// phy.Listener records every frame's delivery time, from which frame
// start times are reconstructed (delivery = start + airtime).

// spy records deliveries with timestamps.
type spy struct {
	sched  *sim.Scheduler
	events []spyEvent
}

type spyEvent struct {
	at   sim.Time
	kind packet.Kind
	from packet.NodeID
}

func (s *spy) CarrierBusy() {}
func (s *spy) CarrierIdle() {}
func (s *spy) Deliver(f *packet.Frame) {
	s.events = append(s.events, spyEvent{at: s.sched.Now(), kind: f.Kind, from: f.Sender})
}
func (s *spy) DeliverGarbled(*packet.Frame) {}

// TestAckTimingExactlySIFS: the ACK must start exactly SIFS after the
// data frame ends.
func TestAckTimingExactlySIFS(t *testing.T) {
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
	rng := sim.NewRNG(1)
	tm := ch.Timing()

	a := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{} }), rng.Fork(1))
	b := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{X: 100} }), rng.Fork(2))
	b.Receiver = ReceiverFunc(func(*packet.Frame) {})
	watcher := &spy{sched: sched}
	ch.Attach(phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{X: 50} }), watcher)

	a.Enqueue(packet.NewData(packet.NodeID(a.Radio()), packet.NodeID(b.Radio()), 100, "x", geom.Point{}), nil)
	sched.Run()

	var dataEnd, ackEnd sim.Time
	for _, e := range watcher.events {
		switch e.kind {
		case packet.KindData:
			dataEnd = e.at
		case packet.KindAck:
			ackEnd = e.at
		}
	}
	if dataEnd == 0 || ackEnd == 0 {
		t.Fatalf("missing frames in spy trace: %+v", watcher.events)
	}
	ackStart := ackEnd.Add(-tm.Airtime(packet.AckBytes))
	if gap := ackStart.Sub(dataEnd); gap != tm.SIFS {
		t.Errorf("ACK started %v after data end, want exactly SIFS (%v)", gap, tm.SIFS)
	}
}

// TestRTSCTSDataTiming: CTS starts SIFS after RTS ends; data starts SIFS
// after CTS ends.
func TestRTSCTSDataTiming(t *testing.T) {
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
	rng := sim.NewRNG(3)
	tm := ch.Timing()

	a := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{} }), rng.Fork(1))
	b := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{X: 100} }), rng.Fork(2))
	a.SetRTSThreshold(1)
	b.Receiver = ReceiverFunc(func(*packet.Frame) {})
	watcher := &spy{sched: sched}
	ch.Attach(phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{X: 50} }), watcher)

	a.Enqueue(packet.NewData(packet.NodeID(a.Radio()), packet.NodeID(b.Radio()), 200, "x", geom.Point{}), nil)
	sched.Run()

	ends := map[packet.Kind]sim.Time{}
	for _, e := range watcher.events {
		ends[e.kind] = e.at
	}
	for _, k := range []packet.Kind{packet.KindRTS, packet.KindCTS, packet.KindData, packet.KindAck} {
		if ends[k] == 0 {
			t.Fatalf("frame kind %v missing from exchange", k)
		}
	}
	ctsStart := ends[packet.KindCTS].Add(-tm.Airtime(packet.CTSBytes))
	if gap := ctsStart.Sub(ends[packet.KindRTS]); gap != tm.SIFS {
		t.Errorf("CTS gap = %v, want SIFS", gap)
	}
	dataStart := ends[packet.KindData].Add(-tm.Airtime(200))
	if gap := dataStart.Sub(ends[packet.KindCTS]); gap != tm.SIFS {
		t.Errorf("DATA gap = %v, want SIFS", gap)
	}
}

// TestBackoffSlotArithmetic: a frame enqueued at t=0 (idle < DIFS) must
// start at exactly DIFS + k*slot for some k in [0, CWMin].
func TestBackoffSlotArithmetic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		sched := sim.NewScheduler()
		ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
		tm := ch.Timing()
		m := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{} }), sim.NewRNG(seed))
		var start sim.Time
		m.Enqueue(frame(0, 1), TxFuncs{Start: func() { start = sched.Now() }})
		sched.Run()

		offset := start.Sub(sim.Time(0)) - tm.DIFS
		if offset < 0 {
			t.Fatalf("seed %d: started before DIFS", seed)
		}
		if offset%tm.SlotTime != 0 {
			t.Errorf("seed %d: offset %v is not slot-aligned", seed, offset)
		}
		if slots := int(offset / tm.SlotTime); slots > tm.CWMin {
			t.Errorf("seed %d: backoff %d slots exceeds CWMin %d", seed, slots, tm.CWMin)
		}
	}
}

// TestNAVValueMatchesExchange: the RTS announces exactly the remaining
// exchange duration (CTS + DATA + ACK + 3 SIFS).
func TestNAVValueMatchesExchange(t *testing.T) {
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, phy.DSSSTiming(), 500)
	rng := sim.NewRNG(5)
	tm := ch.Timing()

	a := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{} }), rng.Fork(1))
	b := New(sched, ch, phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{X: 100} }), rng.Fork(2))
	a.SetRTSThreshold(1)
	b.Receiver = ReceiverFunc(func(*packet.Frame) {})

	var nav sim.Duration
	watcher := &navSpy{sched: sched, navs: &nav}
	ch.Attach(phy.PositionFunc(func(sim.Time) geom.Point { return geom.Point{X: 50} }), watcher)

	const bytes = 300
	a.Enqueue(packet.NewData(packet.NodeID(a.Radio()), packet.NodeID(b.Radio()), bytes, "x", geom.Point{}), nil)
	sched.Run()

	want := 3*tm.SIFS + tm.Airtime(packet.CTSBytes) + tm.Airtime(bytes) + tm.Airtime(packet.AckBytes)
	if nav != want {
		t.Errorf("RTS NAV = %v, want %v", nav, want)
	}
}

type navSpy struct {
	sched *sim.Scheduler
	navs  *sim.Duration
}

func (s *navSpy) CarrierBusy() {}
func (s *navSpy) CarrierIdle() {}
func (s *navSpy) Deliver(f *packet.Frame) {
	if f.Kind == packet.KindRTS {
		*s.navs = f.NAV
	}
}
func (s *navSpy) DeliverGarbled(*packet.Frame) {}
