// AODV-lite route discovery: the full protocol loop the paper's
// introduction motivates. Route requests flood the network under a
// broadcast-suppression scheme; the target unicasts a route reply back
// along the reverse path (with link-layer ACK/retransmission, as in real
// 802.11); the originator ends up with a usable multihop route.
//
// The interesting question is the paper's: which suppression scheme
// should carry the RREQ flood? This example measures discovery success,
// established route length, latency, and the storm cost per discovery.
//
//	go run ./examples/aodv
package main

import (
	"fmt"

	"repro/storm"
)

func main() {
	const (
		hosts       = 100
		mapUnits    = 5
		discoveries = 60
	)
	fmt.Printf("AODV-lite on a %dx%d map: %d hosts, %d route discoveries per scheme\n\n",
		mapUnits, mapUnits, hosts, discoveries)
	fmt.Printf("%-10s  %-9s  %-7s  %-9s  %-11s  %s\n",
		"scheme", "success", "hops", "latency", "RREQ tx/d", "collisions")

	for _, sch := range []storm.Scheme{
		storm.Flooding{},
		storm.Counter{C: 3},
		storm.AdaptiveCounter{},
		storm.NeighborCoverage{},
	} {
		cfg := storm.RoutingConfig{
			Hosts:       hosts,
			MapUnits:    mapUnits,
			Scheme:      sch,
			Discoveries: discoveries,
			Seed:        21,
		}
		n, err := storm.NewRouting(cfg)
		if err != nil {
			panic(err)
		}
		r := n.Run()
		fmt.Printf("%-10s  %-9s  %-7.2f  %-9s  %-11.1f  %d\n",
			sch.Name(),
			fmt.Sprintf("%.1f%%", 100*r.SuccessRate()),
			r.MeanRouteHops,
			fmt.Sprintf("%.1fms", r.MeanDiscoveryLatency.Milliseconds()),
			r.RequestsPerDiscovery(),
			r.Collisions)
	}

	fmt.Println()
	fmt.Println("Suppression schemes cut the per-discovery request storm (RREQ tx/d)")
	fmt.Println("and its collisions while keeping discovery success close to flooding.")

	// Expanding-ring search: TTL-scoped floods escalate only when the
	// target is far, composing with any suppression storm.
	fmt.Println()
	fmt.Println("Expanding-ring search (TTL 2, then unlimited) on the same workload:")
	fmt.Printf("%-22s  %-9s  %-11s  %s\n", "variant", "success", "RREQ tx/d", "escalations")
	for _, ring := range []struct {
		name string
		ttls []int
	}{
		{"full flood", nil},
		{"ring 2 -> unlimited", []int{2, 0}},
	} {
		cfg := storm.RoutingConfig{
			Hosts:       hosts,
			MapUnits:    mapUnits,
			Scheme:      storm.AdaptiveCounter{},
			Discoveries: discoveries,
			RingTTLs:    ring.ttls,
			Seed:        21,
		}
		n, err := storm.NewRouting(cfg)
		if err != nil {
			panic(err)
		}
		r := n.Run()
		fmt.Printf("%-22s  %-9s  %-11.1f  %d\n",
			ring.name, fmt.Sprintf("%.1f%%", 100*r.SuccessRate()),
			r.RequestsPerDiscovery(), r.RingEscalations)
	}
}
