// Rescue scene: one of the paper's motivating deployments — a MANET
// where no infrastructure exists. A base camp packs many hosts into a
// small area while search parties string out across the terrain, so the
// network is dense and sparse at the same time. Fixed thresholds must
// pick one regime and lose the other; the adaptive schemes handle both.
//
// The example builds that mixed-density topology explicitly, then
// compares a dense-tuned fixed threshold (C=2), a sparse-tuned one
// (C=6), and the adaptive schemes.
//
//	go run ./examples/rescue
package main

import (
	"fmt"
	"math"

	"repro/storm"
)

// buildScene places a 40-host base camp in one corner of a 9x9 map and
// three 20-host search chains fanning out from it.
func buildScene() []storm.Point {
	var pts []storm.Point
	// Base camp: a tight grid well inside one radio radius.
	for i := 0; i < 40; i++ {
		pts = append(pts, storm.Point{
			X: 400 + float64(i%8)*45,
			Y: 400 + float64(i/8)*45,
		})
	}
	// Three chains of searchers, 400 m spacing (multihop but connected).
	dirs := []float64{0.15, 0.75, 1.35} // radians
	for _, dir := range dirs {
		for k := 1; k <= 20; k++ {
			d := float64(k) * 400
			pts = append(pts, storm.Point{
				X: 600 + d*math.Cos(dir),
				Y: 600 + d*math.Sin(dir),
			})
		}
	}
	return pts
}

func main() {
	placement := buildScene()
	fmt.Printf("Rescue scene: %d hosts — 40 in a dense base camp, 60 strung out on search chains\n\n",
		len(placement))
	fmt.Printf("%-10s  %-7s  %-7s  %s\n", "scheme", "RE", "SRB", "latency")

	for _, sch := range []storm.Scheme{
		storm.Flooding{},
		storm.Counter{C: 2},
		storm.Counter{C: 6},
		storm.AdaptiveCounter{},
		storm.NeighborCoverage{},
	} {
		cfg := storm.Config{
			Hosts:     len(placement),
			MapUnits:  19, // big enough to contain the chains
			Static:    true,
			Placement: placement,
			Scheme:    sch,
			Requests:  60,
			Seed:      11,
		}
		net, err := storm.New(cfg)
		if err != nil {
			panic(err)
		}
		s := net.Run()
		fmt.Printf("%-10s  %.3f   %.3f   %.1f ms\n",
			sch.Name(), s.MeanRE, s.MeanSRB, s.MeanLatency.Milliseconds())
	}

	fmt.Println()
	fmt.Println("C=2 suppresses aggressively: fine in camp, fatal on the chains.")
	fmt.Println("C=6 keeps the chains alive but wastes the camp's airtime.")
	fmt.Println("The adaptive schemes read local density and do both jobs at once.")
}
